# Convenience targets for the ACE reproduction. Everything is stdlib
# Go; no external tools are required.

GO ?= go

.PHONY: all check build test race test-race chaos short bench bench-telemetry bench-pstore bench-flow bench-asd experiments examples fuzz fmt vet lint lint-docs clean

all: build vet test

# The full pre-merge gate: build, vet, the ACE-specific analyzers,
# plain tests, race-enabled tests, and the deterministic chaos suite.
check: build vet lint test test-race chaos

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# ACE-specific static analysis (docs/LINT.md): six intraprocedural
# checks (context propagation, locks held across blocking I/O,
# discarded transport errors, verb registration sanity, chaos
# determinism, bounded accept/dispatch spawns) plus four built on the
# package-set-wide call graph (wire-protocol verb conformance,
# deadline propagation, goroutine shutdown edges, metric naming).
lint:
	$(GO) run ./cmd/acelint ./...

# Regenerate the machine-checked documentation from the extracted
# registries: the metric table in docs/METRICS.md (rewritten whole)
# and the verb table spliced between its markers in docs/PROTOCOL.md.
# CI fails when either file is stale.
lint-docs:
	$(GO) run ./cmd/acelint -metrics-doc docs/METRICS.md ./...
	$(GO) run ./cmd/acelint -verbs-doc docs/PROTOCOL.md ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

test-race: race

# Deterministic fault-injection suite: proxies, partitions, corrupted
# frames, and the chaos integration tests. Fixed seeds inside the
# tests make any failure reproducible run-to-run.
chaos:
	$(GO) test -race -count=1 ./internal/chaos/

short:
	$(GO) test -short ./...

# One testing.B benchmark per paper experiment plus the ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

# Measure the cost of the always-on telemetry instrumentation against
# the DisableTelemetry no-op configuration and record the comparison
# in BENCH_telemetry.json. Fails if any hot path regresses over 5%.
bench-telemetry:
	ACE_BENCH_TELEMETRY=1 ACE_BENCH_TELEMETRY_OUT=$(CURDIR)/BENCH_telemetry.json \
		$(GO) test -run 'TestBenchTelemetryOverhead$$' -count=1 -v ./internal/daemon/

# Measure quorum read/write latency against a healthy 3-way cluster
# and against the same cluster with one replica blackholed or dead,
# recording the comparison in BENCH_pstore.json. Fails if a degraded
# operation exceeds half the call timeout — i.e. if the slowest
# replica is back to setting client-visible latency. The healthy
# scenario also measures the bounded-staleness read spectrum and fails
# unless a bounded GET lands under 0.5x the quorum GET with zero
# staleness-bound violations. Also measures a
# fully durable cluster (every ack costs an fsync) plus single-node
# recovery time, and fails if group commit stops amortizing fsyncs
# across concurrent writers. The sharding half drives a keyed zipfian
# storm against rate-pinned nodes and fails unless 4 replica groups
# deliver ≥2.5x the 1-group put throughput with sharded get latency
# within 10% of a plain single-group client.
# The two halves run in separate processes: the quorum half leaves a
# large heap behind, and the sharding half's 10% latency budget is
# tighter than the GC noise that heap causes. The sharding half merges
# its section into the JSON the quorum half wrote.
bench-pstore:
	ACE_BENCH_PSTORE=1 ACE_BENCH_PSTORE_OUT=$(CURDIR)/BENCH_pstore.json \
		$(GO) test -run 'TestBenchPstoreQuorum$$' -count=1 -v ./internal/pstore/
	ACE_BENCH_PSTORE=1 ACE_BENCH_PSTORE_OUT=$(CURDIR)/BENCH_pstore.json \
		$(GO) test -run 'TestBenchPstoreSharding$$' -count=1 -v ./internal/pstore/

# Measure the replicated directory: p99 of a warm-cache lookup storm
# versus the same lookups as directory RPCs, and sustained renewal
# throughput against one replica versus three sharing the store,
# recording the comparison in BENCH_asd.json. Fails if warm-cache
# lookups are less than 10x faster than uncached ones, or if fanning
# renewals across three replicas collapses throughput.
bench-asd:
	ACE_BENCH_ASD=1 ACE_BENCH_ASD_OUT=$(CURDIR)/BENCH_asd.json \
		$(GO) test -run 'TestBenchASD$$' -count=1 -v .

# Offer a pinned-capacity daemon 1x/2x/4x its capacity and record
# goodput, shed counts, and p99 admitted latency in BENCH_flow.json.
# Fails if goodput at 4x drops below 70% of the 1x baseline — i.e. if
# overload degrades the work the daemon admits (congestion collapse).
bench-flow:
	ACE_BENCH_FLOW=1 ACE_BENCH_FLOW_OUT=$(CURDIR)/BENCH_flow.json \
		$(GO) test -run 'TestBenchFlow$$' -count=1 -v .

# Regenerate every experiment table (E1–E15 paper, X1–X5 extensions).
experiments:
	$(GO) run ./cmd/acebench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/conference
	$(GO) run ./examples/audiopipeline
	$(GO) run ./examples/robustapp
	$(GO) run ./examples/futurework

# Brief fuzzing of the wire-facing parsers.
fuzz:
	$(GO) test -fuzz=FuzzParse$$ -fuzztime=30s ./internal/cmdlang/
	$(GO) test -fuzz=FuzzParseAssertion -fuzztime=30s ./internal/keynote/

fmt:
	gofmt -w .

clean:
	$(GO) clean -testcache
