package ace

// Soak test for the §9 long-lived-system requirement: "Central
// services such as the ASD, AUD, WSS, etc must be fully tested for
// large communication loads, persistence, and extended execution
// time." A full environment runs under sustained mixed load while we
// watch for errors, goroutine leaks, and stuck counters.

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ace/internal/asd"
	"ace/internal/cmdlang"
	"ace/internal/core"
	"ace/internal/daemon"
	"ace/internal/flow"
)

func TestSoakMixedLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	env, err := core.Start(core.Options{Name: "soak", WithIdent: true})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Stop()
	rng := rand.New(rand.NewSource(99))
	if _, err := env.RegisterUser("soaker", "Soak User", "pw", rng); err != nil {
		t.Fatal(err)
	}

	const duration = 5 * time.Second
	const workers = 6
	deadline := time.Now().Add(duration)

	var ops, failures atomic.Int64
	var wg sync.WaitGroup

	// Mixed workload: directory lookups, user reads, workspace opens,
	// store writes/reads, notifications subscriptions churn.
	workloads := []func(p *daemon.Pool, i int) error{
		func(p *daemon.Pool, _ int) error {
			_, err := asd.Resolve(p, env.ASD.Addr(), asd.Query{Name: "wss"})
			return err
		},
		func(p *daemon.Pool, _ int) error {
			_, err := p.Call(env.AUD.Addr(), cmdlang.New("getUser").SetWord("username", "soaker"))
			return err
		},
		func(p *daemon.Pool, _ int) error {
			_, err := p.Call(env.WSS.Addr(), cmdlang.New("openWorkspace").SetWord("user", "soaker"))
			return err
		},
		func(p *daemon.Pool, i int) error {
			if _, err := env.StoreClient.Put("/soak/key", []byte{byte(i)}); err != nil {
				return err
			}
			_, _, _, err := env.StoreClient.Get("/soak/key")
			return err
		},
		func(p *daemon.Pool, _ int) error {
			_, err := p.Call(env.NetLog.Addr(), cmdlang.New(daemon.CmdLogEvent).
				SetWord("source", "soaker").SetWord("event", "tick"))
			return err
		},
		func(p *daemon.Pool, _ int) error {
			_, err := p.Call(env.SAL.Addr(), cmdlang.New(daemon.CmdPing))
			return err
		},
	}

	goroutinesBefore := runtime.NumGoroutine()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pool := daemon.NewPool(nil)
			defer pool.Close()
			i := 0
			for time.Now().Before(deadline) {
				if err := workloads[(w+i)%len(workloads)](pool, i); err != nil {
					failures.Add(1)
					if failures.Load() < 4 {
						t.Errorf("worker %d op %d: %v", w, i, err)
					}
				}
				ops.Add(1)
				i++
			}
		}(w)
	}
	wg.Wait()

	total := ops.Load()
	if total < 1000 {
		t.Fatalf("soak only completed %d ops in %s", total, duration)
	}
	if f := failures.Load(); f > 0 {
		t.Fatalf("%d/%d soak operations failed", f, total)
	}

	// The environment still answers cleanly after the load.
	pool := daemon.NewPool(nil)
	defer pool.Close()
	if _, err := pool.Call(env.ASD.Addr(), cmdlang.New(daemon.CmdPing)); err != nil {
		t.Fatalf("ASD unresponsive after soak: %v", err)
	}

	// No unbounded goroutine growth: allow generous slack for pooled
	// connections and GC laziness, but catch leaks proportional to
	// op count (tens of thousands of ops ran).
	time.Sleep(200 * time.Millisecond)
	runtime.GC()
	goroutinesAfter := runtime.NumGoroutine()
	if goroutinesAfter > goroutinesBefore+100 {
		t.Fatalf("goroutine leak: %d → %d across %d ops", goroutinesBefore, goroutinesAfter, total)
	}
	t.Logf("soak: %d ops in %s across %d workers (%.0f ops/s), goroutines %d → %d",
		total, duration, workers, float64(total)/duration.Seconds(), goroutinesBefore, goroutinesAfter)
}

// TestSoakOverload sustains roughly twice a daemon's configured
// capacity for several seconds and checks that overload stays
// degradation, not collapse: goodput holds near the pinned rate, the
// flow controller's shed counters grow (the excess is pushed back as
// busy, not absorbed), and the goroutine count stays bounded — no
// per-request goroutine or queue growth.
func TestSoakOverload(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}

	const rate = 200 // pinned capacity, requests/s
	d := daemon.New(daemon.Config{
		Name: "soak_overload",
		Flow: &flow.Config{
			Rate:          rate,
			Burst:         rate / 10,
			InitialLimit:  8,
			MinLimit:      4,
			MaxLimit:      32,
			TargetLatency: 20 * time.Millisecond,
			QueueLen:      32,
			MaxQueueWait:  25 * time.Millisecond,
		},
	})
	d.Handle(cmdlang.CommandSpec{Name: "work"}, func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		return cmdlang.OK(), nil
	})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	defer d.Stop()

	goroutinesBefore := runtime.NumGoroutine()

	const duration = 5 * time.Second
	const workers = 4
	// Pace each worker to ~rate/workers*2 so the offered load is
	// roughly 2x capacity rather than whatever a spin loop produces.
	pace := time.Duration(float64(workers) * float64(time.Second) / (2 * rate))
	var ok, busy, other atomic.Int64
	var maxGoroutines atomic.Int64
	var wg sync.WaitGroup
	deadline := time.Now().Add(duration)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pool := daemon.NewPoolConfig(daemon.PoolConfig{
				MaxRetries: -1, // surface busy rather than retrying
				Seed:       int64(w + 1),
			})
			defer pool.Close()
			next := time.Now()
			for time.Now().Before(deadline) {
				if sleep := time.Until(next); sleep > 0 {
					time.Sleep(sleep)
				}
				next = next.Add(pace)
				_, err := pool.Call(d.Addr(), cmdlang.New("work"))
				switch {
				case err == nil:
					ok.Add(1)
				case cmdlang.IsRemoteCode(err, cmdlang.CodeBusy):
					busy.Add(1)
				default:
					other.Add(1)
				}
				if g := int64(runtime.NumGoroutine()); g > maxGoroutines.Load() {
					maxGoroutines.Store(g)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	okN, busyN, otherN := ok.Load(), busy.Load(), other.Load()
	goodput := float64(okN) / elapsed.Seconds()
	t.Logf("overload soak: offered %.0f/s for %v, goodput %.0f/s (capacity %d/s), busy %d, other %d, max goroutines %d (start %d)",
		float64(okN+busyN+otherN)/elapsed.Seconds(), elapsed, goodput, rate, busyN, otherN, maxGoroutines.Load(), goroutinesBefore)

	if otherN > 0 {
		t.Fatalf("%d requests failed with something other than busy", otherN)
	}
	// Shed counters must grow: ~2x capacity means roughly half the
	// offered load is pushed back.
	if busyN == 0 {
		t.Fatal("no requests were shed at 2x capacity")
	}
	if s := d.Flow().Snapshot(); s.ShedData == 0 {
		t.Fatalf("flow shed counter did not grow: %+v", s)
	}
	// Goodput holds: at least 70% of the pinned capacity.
	if goodput < 0.7*rate {
		t.Fatalf("goodput %.0f/s at 2x offered load, want >= %.0f/s", goodput, 0.7*rate)
	}
	// Bounded footprint: the storm must not have grown goroutines
	// proportionally to offered load (4 workers, pooled connections,
	// and the daemon's fixed thread set are all that is allowed).
	if max := maxGoroutines.Load(); max > int64(goroutinesBefore)+60 {
		t.Fatalf("goroutines grew under overload: %d -> %d", goroutinesBefore, max)
	}
	deadlineG := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore+20 && time.Now().Before(deadlineG) {
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > goroutinesBefore+20 {
		t.Fatalf("goroutine leak after overload: %d -> %d", goroutinesBefore, g)
	}
}
