package ace

// Soak test for the §9 long-lived-system requirement: "Central
// services such as the ASD, AUD, WSS, etc must be fully tested for
// large communication loads, persistence, and extended execution
// time." A full environment runs under sustained mixed load while we
// watch for errors, goroutine leaks, and stuck counters.

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ace/internal/asd"
	"ace/internal/cmdlang"
	"ace/internal/core"
	"ace/internal/daemon"
)

func TestSoakMixedLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	env, err := core.Start(core.Options{Name: "soak", WithIdent: true})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Stop()
	rng := rand.New(rand.NewSource(99))
	if _, err := env.RegisterUser("soaker", "Soak User", "pw", rng); err != nil {
		t.Fatal(err)
	}

	const duration = 5 * time.Second
	const workers = 6
	deadline := time.Now().Add(duration)

	var ops, failures atomic.Int64
	var wg sync.WaitGroup

	// Mixed workload: directory lookups, user reads, workspace opens,
	// store writes/reads, notifications subscriptions churn.
	workloads := []func(p *daemon.Pool, i int) error{
		func(p *daemon.Pool, _ int) error {
			_, err := asd.Resolve(p, env.ASD.Addr(), asd.Query{Name: "wss"})
			return err
		},
		func(p *daemon.Pool, _ int) error {
			_, err := p.Call(env.AUD.Addr(), cmdlang.New("getUser").SetWord("username", "soaker"))
			return err
		},
		func(p *daemon.Pool, _ int) error {
			_, err := p.Call(env.WSS.Addr(), cmdlang.New("openWorkspace").SetWord("user", "soaker"))
			return err
		},
		func(p *daemon.Pool, i int) error {
			if _, err := env.StoreClient.Put("/soak/key", []byte{byte(i)}); err != nil {
				return err
			}
			_, _, _, err := env.StoreClient.Get("/soak/key")
			return err
		},
		func(p *daemon.Pool, _ int) error {
			_, err := p.Call(env.NetLog.Addr(), cmdlang.New(daemon.CmdLogEvent).
				SetWord("source", "soaker").SetWord("event", "tick"))
			return err
		},
		func(p *daemon.Pool, _ int) error {
			_, err := p.Call(env.SAL.Addr(), cmdlang.New(daemon.CmdPing))
			return err
		},
	}

	goroutinesBefore := runtime.NumGoroutine()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pool := daemon.NewPool(nil)
			defer pool.Close()
			i := 0
			for time.Now().Before(deadline) {
				if err := workloads[(w+i)%len(workloads)](pool, i); err != nil {
					failures.Add(1)
					if failures.Load() < 4 {
						t.Errorf("worker %d op %d: %v", w, i, err)
					}
				}
				ops.Add(1)
				i++
			}
		}(w)
	}
	wg.Wait()

	total := ops.Load()
	if total < 1000 {
		t.Fatalf("soak only completed %d ops in %s", total, duration)
	}
	if f := failures.Load(); f > 0 {
		t.Fatalf("%d/%d soak operations failed", f, total)
	}

	// The environment still answers cleanly after the load.
	pool := daemon.NewPool(nil)
	defer pool.Close()
	if _, err := pool.Call(env.ASD.Addr(), cmdlang.New(daemon.CmdPing)); err != nil {
		t.Fatalf("ASD unresponsive after soak: %v", err)
	}

	// No unbounded goroutine growth: allow generous slack for pooled
	// connections and GC laziness, but catch leaks proportional to
	// op count (tens of thousands of ops ran).
	time.Sleep(200 * time.Millisecond)
	runtime.GC()
	goroutinesAfter := runtime.NumGoroutine()
	if goroutinesAfter > goroutinesBefore+100 {
		t.Fatalf("goroutine leak: %d → %d across %d ops", goroutinesBefore, goroutinesAfter, total)
	}
	t.Logf("soak: %d ops in %s across %d workers (%.0f ops/s), goroutines %d → %d",
		total, duration, workers, float64(total)/duration.Seconds(), goroutinesBefore, goroutinesAfter)
}
