package ace

// One testing.B benchmark per experiment in DESIGN.md's index
// (E1–E15). These exercise the same code paths as cmd/acebench, which
// prints the full tables; EXPERIMENTS.md records paper-vs-measured.

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"ace/internal/apps"
	"ace/internal/asd"
	"ace/internal/authdb"
	"ace/internal/cmdlang"
	"ace/internal/core"
	"ace/internal/daemon"
	"ace/internal/hier"
	"ace/internal/keynote"
	"ace/internal/launcher"
	"ace/internal/media"
	"ace/internal/monitor"
	"ace/internal/pstore"
	"ace/internal/rmi"
	"ace/internal/simhost"
	"ace/internal/wire"
)

// BenchmarkE1CmdRoundTrip measures the Fig 5 loop: build → string →
// parse.
func BenchmarkE1CmdRoundTrip(b *testing.B) {
	cmds := map[string]*cmdlang.CmdLine{
		"bare":    cmdlang.New("ping"),
		"control": cmdlang.New("move").SetFloat("pan", 45.5).SetFloat("tilt", -10.25),
		"typical": cmdlang.New("register").
			SetWord("name", "ptz_cam_1").SetWord("host", "machine25").
			SetInt("port", 1225).SetWord("room", "hawk").
			SetString("class", hier.ClassVCC3).SetInt("lease", 10000),
	}
	for name, cmd := range cmds {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := cmd.String()
				if _, err := cmdlang.Parse(s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE2CmdVsRMI compares a full loopback call through the ACE
// daemon stack against an RMI-style gob call (§2.2 claim).
func BenchmarkE2CmdVsRMI(b *testing.B) {
	b.Run("ace", func(b *testing.B) {
		d := daemon.New(daemon.Config{Name: "e2"})
		d.Handle(cmdlang.CommandSpec{Name: "move", AllowExtra: true},
			func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) { return nil, nil })
		if err := d.Start(); err != nil {
			b.Fatal(err)
		}
		defer d.Stop()
		pool := daemon.NewPool(nil)
		defer pool.Close()
		cmd := cmdlang.New("move").SetFloat("pan", 45.5).SetFloat("tilt", -10.25)
		if _, err := pool.Call(d.Addr(), cmd); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pool.Call(d.Addr(), cmd); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rmi", func(b *testing.B) {
		srv := rmi.NewServer()
		srv.Register("camera", benchCamera{})
		if err := srv.Start("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		defer srv.Stop()
		c, err := rmi.Dial(srv.Addr())
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		if _, err := c.Call("camera", "Move", 45.5, -10.25); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Call("camera", "Move", 45.5, -10.25); err != nil {
				b.Fatal(err)
			}
		}
	})
}

type benchCamera struct{}

// Move is the RMI-side counterpart of the ACE "move" command.
func (benchCamera) Move(pan, tilt float64) string { return "ok" }

// BenchmarkE3ASDLookup measures Fig 7 lookups against a 1000-entry
// directory.
func BenchmarkE3ASDLookup(b *testing.B) {
	dir := asd.New(asd.Config{ReapInterval: time.Hour})
	if err := dir.Start(); err != nil {
		b.Fatal(err)
	}
	defer dir.Stop()
	for i := 0; i < 1000; i++ {
		dir.Directory().Register(asd.Entry{ //nolint:errcheck
			Name: fmt.Sprintf("svc%04d", i), Addr: "h:1",
			Class: hier.ClassPTZCamera, Lease: time.Hour,
		})
	}
	pool := daemon.NewPool(nil)
	defer pool.Close()
	cmd := cmdlang.New(daemon.CmdLookup).SetWord("name", "svc0500")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pool.Call(dir.Addr(), cmd); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4NotifyFanout measures Fig 8 dispatch to 16 listeners.
func BenchmarkE4NotifyFanout(b *testing.B) {
	source := daemon.New(daemon.Config{Name: "e4src"})
	source.Handle(cmdlang.CommandSpec{Name: "tick"},
		func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) { return nil, nil })
	if err := source.Start(); err != nil {
		b.Fatal(err)
	}
	defer source.Stop()

	const listeners = 16
	var delivered atomic.Int64
	pool := daemon.NewPool(nil)
	defer pool.Close()
	for i := 0; i < listeners; i++ {
		sink := daemon.New(daemon.Config{Name: fmt.Sprintf("e4sink%d", i)})
		sink.Handle(cmdlang.CommandSpec{Name: "onTick", AllowExtra: true},
			func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
				delivered.Add(1)
				return nil, nil
			})
		if err := sink.Start(); err != nil {
			b.Fatal(err)
		}
		defer sink.Stop()
		if err := daemon.Subscribe(pool, source.Addr(), "tick", sink.Name(), sink.Addr(), "onTick"); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pool.Call(source.Addr(), cmdlang.New("tick")); err != nil {
			b.Fatal(err)
		}
	}
	// Drain: all notifications delivered before the bench ends.
	want := int64(b.N * listeners)
	for delivered.Load() < want {
		time.Sleep(100 * time.Microsecond)
	}
}

// BenchmarkE5Startup measures the Fig 9 startup sequence (ASD
// registration only; the full three-step sequence is in acebench E5).
func BenchmarkE5Startup(b *testing.B) {
	dir := asd.New(asd.Config{})
	if err := dir.Start(); err != nil {
		b.Fatal(err)
	}
	defer dir.Stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := daemon.New(daemon.Config{Name: fmt.Sprintf("e5_%d", i), ASDAddr: dir.Addr()})
		if err := d.Start(); err != nil {
			b.Fatal(err)
		}
		d.Stop()
	}
}

// BenchmarkE6AuthOverhead measures the Fig 10 gate with cached
// credentials.
func BenchmarkE6AuthOverhead(b *testing.B) {
	ring := keynote.NewKeyring()
	admin, err := keynote.NewPrincipal("admin")
	if err != nil {
		b.Fatal(err)
	}
	ring.Add(admin)
	cred := keynote.MustAssertion("admin", `"user"`, "", "")
	if err := cred.Sign(admin); err != nil {
		b.Fatal(err)
	}
	store := authdb.NewStore()
	if err := store.Add(cred); err != nil {
		b.Fatal(err)
	}
	db := authdb.New(daemon.Config{}, store)
	if err := db.Start(); err != nil {
		b.Fatal(err)
	}
	defer db.Stop()
	policy := keynote.MustAssertion(keynote.Policy, `"admin"`, "", "")
	checker, err := keynote.NewChecker(ring, policy)
	if err != nil {
		b.Fatal(err)
	}
	authz := &authdb.Authorizer{
		Pool: daemon.NewPool(nil), AuthDBAddr: db.Addr(),
		Checker: checker, Service: "svc", CacheSize: 16,
	}
	cmd := cmdlang.New("move").SetFloat("x", 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := authz.Authorize("user", cmd); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7Placement runs a full 32-job placement + drain round per
// iteration (least-loaded policy).
func BenchmarkE7Placement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		srm := monitor.NewSRM(daemon.Config{}, 1)
		if err := srm.Start(); err != nil {
			b.Fatal(err)
		}
		cluster := simhost.NewCluster()
		var stops []func()
		for j, sp := range []float64{100, 200, 400} {
			host := simhost.NewHost(fmt.Sprintf("h%d", j), sp, 1<<30, 0)
			cluster.Add(host)
			hrm := monitor.NewHRM(daemon.Config{}, host)
			if err := hrm.Start(); err != nil {
				b.Fatal(err)
			}
			hal := launcher.NewHAL(daemon.Config{}, host)
			if err := hal.Start(); err != nil {
				b.Fatal(err)
			}
			stops = append(stops, hrm.Stop, hal.Stop)
			srm.AddHost(host.Name(), hrm.Addr(), hal.Addr())
		}
		sal := launcher.NewSAL(daemon.Config{}, srm)
		if err := sal.Start(); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 32; j++ {
			if _, err := sal.Launch(fmt.Sprintf("job%d", j), 50, 0, monitor.PolicyLeastLoaded); err != nil {
				b.Fatal(err)
			}
		}
		cluster.AdvanceUntilIdle(0.5, 10000)
		sal.Stop()
		for _, stop := range stops {
			stop()
		}
		srm.Stop()
	}
}

// BenchmarkE8AudioPipeline measures the per-frame DSP cost of the Fig
// 15 chain: mix two sources, cancel echo, detect speech.
func BenchmarkE8AudioPipeline(b *testing.B) {
	local := media.ToneFrame(0, 700, 5000)
	remote := media.ToneFrame(0, 500, 5000)
	ec := media.NewEchoCanceller(80, 0.6)
	var stc media.SpeechToCommand
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mixed := media.Mix(local, remote)
		clean := ec.Process(mixed, remote)
		stc.Feed(clean) //nolint:errcheck
	}
}

// BenchmarkE9WorkspaceBringup measures scan → workspace credentials on
// a running environment.
func BenchmarkE9WorkspaceBringup(b *testing.B) {
	env, err := core.Start(core.Options{WithIdent: true})
	if err != nil {
		b.Fatal(err)
	}
	defer env.Stop()
	rng := rand.New(rand.NewSource(9))
	user, err := env.RegisterUser("bench_user", "Bench User", "pw", rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.IdentifyByFingerprint(user, "hawk", rng, 0.02); err != nil {
			b.Fatal(err)
		}
		if _, err := env.OpenViewer("bench_user", ""); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10PStore measures quorum puts and gets on a 3-replica
// cluster (Fig 17).
func BenchmarkE10PStore(b *testing.B) {
	cluster, err := pstore.StartCluster(3, "", 0)
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.StopAll()
	pool := daemon.NewPool(nil)
	defer pool.Close()
	client := pstore.NewClient(pool, cluster.Addrs())
	if _, err := client.Put("/bench/k", []byte("v")); err != nil {
		b.Fatal(err)
	}
	b.Run("put", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := client.Put("/bench/k", []byte("v")); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("get-quorum", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, _, err := client.Get("/bench/k"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("get-any", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, _, err := client.GetAny("/bench/k"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE11Scale measures ASD lookup throughput under parallel
// clients (§9).
func BenchmarkE11Scale(b *testing.B) {
	dir := asd.New(asd.Config{})
	if err := dir.Start(); err != nil {
		b.Fatal(err)
	}
	defer dir.Stop()
	dir.Directory().Register(asd.Entry{Name: "target", Addr: "h:1", Lease: time.Hour}) //nolint:errcheck
	b.RunParallel(func(pb *testing.PB) {
		c, err := wire.Dial(nil, dir.Addr())
		if err != nil {
			b.Error(err)
			return
		}
		defer c.Close()
		cmd := cmdlang.New(daemon.CmdLookup).SetWord("name", "target")
		for pb.Next() {
			if _, err := c.Call(cmd); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkE12TLSOverhead compares command latency over TLS and
// plaintext transports (§3.1).
func BenchmarkE12TLSOverhead(b *testing.B) {
	run := func(b *testing.B, serverT, clientT *wire.Transport) {
		d := daemon.New(daemon.Config{Name: "e12", Transport: serverT})
		if err := d.Start(); err != nil {
			b.Fatal(err)
		}
		defer d.Stop()
		c, err := wire.Dial(clientT, d.Addr())
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		cmd := cmdlang.New(daemon.CmdPing)
		if _, err := c.Call(cmd); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Call(cmd); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("plaintext", func(b *testing.B) { run(b, nil, nil) })
	b.Run("tls", func(b *testing.B) {
		ca, err := wire.NewCA("bench")
		if err != nil {
			b.Fatal(err)
		}
		serverT, err := wire.NewTransport(ca, "e12")
		if err != nil {
			b.Fatal(err)
		}
		clientT, err := wire.NewTransport(ca, "client")
		if err != nil {
			b.Fatal(err)
		}
		run(b, serverT, clientT)
	})
}

// BenchmarkE13Recovery measures a robust application's crash→restore
// cycle (§5.3).
func BenchmarkE13Recovery(b *testing.B) {
	cluster, err := pstore.StartCluster(3, "", 0)
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.StopAll()
	pool := daemon.NewPool(nil)
	defer pool.Close()
	ckpt := &apps.Checkpointer{
		Client: pstore.NewClient(pool, cluster.Addrs()),
		Path:   "/bench/counter",
	}
	counter := apps.NewRobustCounter(daemon.Config{Name: "bcounter"}, ckpt)
	if err := counter.Start(); err != nil {
		b.Fatal(err)
	}
	if _, err := pool.Call(counter.Addr(), cmdlang.New("increment")); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counter.Stop()
		counter = apps.NewRobustCounter(daemon.Config{Name: "bcounter"}, ckpt)
		if err := counter.Start(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if counter.Value() != 1 {
		b.Fatalf("state lost: %d", counter.Value())
	}
	counter.Stop()
}

// BenchmarkE14Converter measures raw→"MPEG" conversion of a 64 KiB
// video-like payload (Fig 13).
func BenchmarkE14Converter(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	line := make([]byte, 256)
	rng.Read(line) //nolint:errcheck
	payload := make([]byte, 0, 64*1024)
	for len(payload) < 64*1024 {
		payload = append(payload, line...)
	}
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := media.Convert(payload, media.FormatRaw, media.FormatMPEG); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE15Distribution measures fan-out of one frame to 4 sinks
// through the distribution daemon (Fig 14).
func BenchmarkE15Distribution(b *testing.B) {
	dist := media.NewDistribution(daemon.Config{})
	if err := dist.Start(); err != nil {
		b.Fatal(err)
	}
	defer dist.Stop()
	var counts [4]*atomic.Int64
	for i := range counts {
		counts[i] = &atomic.Int64{}
		sink := media.NewAudioSink(daemon.Config{Name: fmt.Sprintf("bsink%d", i)})
		n := counts[i]
		sink.SetOnFrame(func(media.Frame) { n.Add(1) })
		if err := sink.Start(); err != nil {
			b.Fatal(err)
		}
		defer sink.Stop()
		dist.AddSink(sink.DataAddr())
	}
	capture := media.NewAudioCapture(daemon.Config{})
	if err := capture.Start(); err != nil {
		b.Fatal(err)
	}
	defer capture.Stop()
	frame := media.ToneFrame(0, 440, 4000).Marshal()
	b.SetBytes(int64(len(frame) * len(counts)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := capture.SendData(dist.DataAddr(), frame); err != nil {
			b.Fatal(err)
		}
		if i%64 == 63 {
			// Periodic pacing: let the UDP queues drain so datagram
			// loss does not distort the measurement.
			for counts[0].Load() < int64(i)-32 {
				time.Sleep(50 * time.Microsecond)
			}
		}
	}
}
