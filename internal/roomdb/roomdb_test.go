package roomdb

import (
	"testing"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/hier"
)

func TestDBRoomsAndPlacement(t *testing.T) {
	db := NewDB()
	if err := db.AddRoom(Room{Name: "hawk", Building: "nichols", Dims: Point{8, 6, 3}}); err != nil {
		t.Fatal(err)
	}
	if err := db.AddRoom(Room{}); err == nil {
		t.Fatal("nameless room accepted")
	}
	r, ok := db.Room("hawk")
	if !ok || r.Dims.X != 8 {
		t.Fatalf("room=%+v", r)
	}

	if err := db.Place("hawk", Placement{Service: "cam1", Host: "bar", Class: hier.ClassVCC3, Pos: Point{1, 2, 2.5}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Place("hawk", Placement{Service: "proj1", Host: "bar"}); err != nil {
		t.Fatal(err)
	}
	// Placement into an undefined room creates it implicitly.
	if err := db.Place("eagle", Placement{Service: "cam2"}); err != nil {
		t.Fatal(err)
	}
	if len(db.Rooms()) != 2 {
		t.Fatalf("rooms=%v", db.Rooms())
	}

	svcs := db.Services("hawk")
	if len(svcs) != 2 || svcs[0].Service != "cam1" {
		t.Fatalf("services=%v", svcs)
	}

	room, p, ok := db.WhereIs("cam2")
	if !ok || room != "eagle" {
		t.Fatalf("whereIs: %s %+v %v", room, p, ok)
	}
	if _, _, ok := db.WhereIs("ghost"); ok {
		t.Fatal("phantom placement")
	}

	if err := db.SetPosition("hawk", "cam1", Point{3, 3, 2}); err != nil {
		t.Fatal(err)
	}
	_, p, _ = db.WhereIs("cam1")
	if p.Pos.X != 3 {
		t.Fatalf("pos=%+v", p.Pos)
	}
	if err := db.SetPosition("hawk", "ghost", Point{}); err == nil {
		t.Fatal("positioning a ghost accepted")
	}

	if !db.Remove("hawk", "cam1") || db.Remove("hawk", "cam1") {
		t.Fatal("remove semantics")
	}
}

func startRoomDB(t *testing.T) *Service {
	t.Helper()
	s := New(daemon.Config{}, nil)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s
}

func TestServiceCommands(t *testing.T) {
	s := startRoomDB(t)
	pool := daemon.NewPool(nil)
	defer pool.Close()

	if _, err := pool.Call(s.Addr(), cmdlang.New("addRoom").
		SetWord("room", "hawk").SetWord("building", "nichols").
		Set("dims", cmdlang.FloatVector(8, 6, 3))); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Call(s.Addr(), cmdlang.New(daemon.CmdRegisterService).
		SetWord("room", "hawk").SetWord("service", "cam1").
		SetWord("host", "bar").SetInt("port", 1234).
		SetString("class", hier.ClassVCC3).
		Set("pos", cmdlang.FloatVector(1, 2, 2.5))); err != nil {
		t.Fatal(err)
	}

	info, err := pool.Call(s.Addr(), cmdlang.New("roomInfo").SetWord("room", "hawk"))
	if err != nil {
		t.Fatal(err)
	}
	if got := info.Strings("services"); len(got) != 1 || got[0] != "cam1" {
		t.Fatalf("services=%v", got)
	}
	dims := info.Vector("dims")
	if len(dims) != 3 {
		t.Fatalf("dims=%v", dims)
	}
	if w, _ := dims[0].AsFloat(); w != 8 {
		t.Fatalf("width=%v", dims[0])
	}

	where, err := pool.Call(s.Addr(), cmdlang.New("whereIs").SetWord("service", "cam1"))
	if err != nil {
		t.Fatal(err)
	}
	if where.Str("room", "") != "hawk" {
		t.Fatalf("where=%v", where)
	}

	if _, err := pool.Call(s.Addr(), cmdlang.New("setPosition").
		SetWord("room", "hawk").SetWord("service", "cam1").
		Set("pos", cmdlang.FloatVector(4, 4, 2))); err != nil {
		t.Fatal(err)
	}

	_, err = pool.Call(s.Addr(), cmdlang.New("roomInfo").SetWord("room", "void"))
	if !cmdlang.IsRemoteCode(err, cmdlang.CodeNotFound) {
		t.Fatalf("err=%v", err)
	}

	rooms, err := pool.Call(s.Addr(), cmdlang.New("listRooms"))
	if err != nil {
		t.Fatal(err)
	}
	if got := rooms.Strings("rooms"); len(got) != 1 || got[0] != "hawk" {
		t.Fatalf("rooms=%v", got)
	}
}

func TestDaemonStartupRegistersPlacement(t *testing.T) {
	// Fig 9 step 2: a starting daemon records itself in the room
	// database.
	s := startRoomDB(t)
	d := daemon.New(daemon.Config{Name: "foo", Room: "hawk", Host: "bar", RoomDBAddr: s.Addr()})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	room, p, ok := s.DB().WhereIs("foo")
	if !ok || room != "hawk" || p.Host != "bar" {
		t.Fatalf("placement: %s %+v %v", room, p, ok)
	}
	// Stop removes the placement.
	d.Stop()
	if _, _, ok := s.DB().WhereIs("foo"); ok {
		t.Fatal("placement survives stop")
	}
}
