// Package roomdb implements the ACE Room Database service (§4.11):
// the spatial model of the environment. It stores buildings, rooms,
// room geometry, and the physical placement of services inside rooms,
// so that device daemons (cameras, projectors) can be spatially aware
// and user-facing services can enumerate what a room offers.
package roomdb

import (
	"fmt"
	"sort"
	"sync"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/hier"
)

// ServiceName is the conventional instance name of the room database
// daemon.
const ServiceName = "roomdb"

// Point is a 3-D coordinate in a room's local reference frame
// (meters).
type Point struct{ X, Y, Z float64 }

// Room describes one physical room.
type Room struct {
	Name     string
	Building string
	// Dims are the room's width, depth, and height in meters,
	// establishing its coordinate system for device control.
	Dims Point
}

// Placement records one service's physical position in a room.
type Placement struct {
	Service string
	Host    string
	Port    int
	Class   string
	Pos     Point
}

// DB is the in-memory spatial database, usable directly in-process
// and wrapped by Service as an ACE daemon.
type DB struct {
	mu     sync.Mutex
	rooms  map[string]*Room
	placed map[string]map[string]*Placement // room → service → placement
}

// NewDB returns an empty spatial database.
func NewDB() *DB {
	return &DB{rooms: make(map[string]*Room), placed: make(map[string]map[string]*Placement)}
}

// AddRoom inserts or updates a room definition.
func (db *DB) AddRoom(r Room) error {
	if r.Name == "" {
		return fmt.Errorf("roomdb: room without a name")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	cp := r
	db.rooms[r.Name] = &cp
	if db.placed[r.Name] == nil {
		db.placed[r.Name] = make(map[string]*Placement)
	}
	return nil
}

// Room returns the named room definition.
func (db *DB) Room(name string) (Room, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	r, ok := db.rooms[name]
	if !ok {
		return Room{}, false
	}
	return *r, true
}

// Rooms lists all room names, sorted.
func (db *DB) Rooms() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]string, 0, len(db.rooms))
	for name := range db.rooms {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Place records a service's presence in a room. Unknown rooms are
// created implicitly (daemons may start before an administrator
// defines the room geometry).
func (db *DB) Place(room string, p Placement) error {
	if room == "" || p.Service == "" {
		return fmt.Errorf("roomdb: placement needs room and service names")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.rooms[room]; !ok {
		db.rooms[room] = &Room{Name: room}
	}
	if db.placed[room] == nil {
		db.placed[room] = make(map[string]*Placement)
	}
	cp := p
	db.placed[room][p.Service] = &cp
	return nil
}

// Remove deletes a service's placement from a room, reporting whether
// it existed.
func (db *DB) Remove(room, service string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	m := db.placed[room]
	if m == nil {
		return false
	}
	_, ok := m[service]
	delete(m, service)
	return ok
}

// Services lists the placements in a room, sorted by service name.
func (db *DB) Services(room string) []Placement {
	db.mu.Lock()
	defer db.mu.Unlock()
	m := db.placed[room]
	out := make([]Placement, 0, len(m))
	for _, p := range m {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Service < out[j].Service })
	return out
}

// WhereIs finds the room containing the named service.
func (db *DB) WhereIs(service string) (room string, p Placement, ok bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	for rname, m := range db.placed {
		if pl, found := m[service]; found {
			return rname, *pl, true
		}
	}
	return "", Placement{}, false
}

// SetPosition updates a placed service's physical coordinates.
func (db *DB) SetPosition(room, service string, pos Point) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	m := db.placed[room]
	if m == nil || m[service] == nil {
		return fmt.Errorf("roomdb: %s is not placed in %s", service, room)
	}
	m[service].Pos = pos
	return nil
}

// Service is the room database wrapped as an ACE daemon.
type Service struct {
	*daemon.Daemon
	db *DB
}

// New constructs the room database daemon around an existing DB
// (which may be pre-seeded with room geometry).
func New(dcfg daemon.Config, db *DB) *Service {
	if db == nil {
		db = NewDB()
	}
	if dcfg.Name == "" {
		dcfg.Name = ServiceName
	}
	if dcfg.Class == "" {
		dcfg.Class = hier.ClassDatabase + ".Room"
	}
	s := &Service{Daemon: daemon.New(dcfg), db: db}
	s.install()
	return s
}

// DB exposes the underlying database.
func (s *Service) DB() *DB { return s.db }

func (s *Service) install() {
	s.Handle(cmdlang.CommandSpec{
		Name: "addRoom",
		Doc:  "define a room and its geometry",
		Args: []cmdlang.ArgSpec{
			{Name: "room", Kind: cmdlang.KindWord, Required: true},
			{Name: "building", Kind: cmdlang.KindWord},
			{Name: "dims", Kind: cmdlang.KindVector, Doc: "{w,d,h} meters"},
		},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		r := Room{Name: c.Str("room", ""), Building: c.Str("building", "")}
		if dims := c.Vector("dims"); len(dims) == 3 {
			x, _ := dims[0].AsFloat()
			y, _ := dims[1].AsFloat()
			z, _ := dims[2].AsFloat()
			r.Dims = Point{x, y, z}
		}
		return nil, s.db.AddRoom(r)
	})

	s.Handle(cmdlang.CommandSpec{
		Name: daemon.CmdRegisterService,
		Doc:  "record a service's placement (startup step 2, Fig 9)",
		Args: []cmdlang.ArgSpec{
			{Name: "room", Kind: cmdlang.KindWord, Required: true},
			{Name: "service", Kind: cmdlang.KindWord, Required: true},
			{Name: "host", Kind: cmdlang.KindWord},
			{Name: "port", Kind: cmdlang.KindInt},
			{Name: "class", Kind: cmdlang.KindString},
			{Name: "pos", Kind: cmdlang.KindVector},
		},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		p := Placement{
			Service: c.Str("service", ""),
			Host:    c.Str("host", ""),
			Port:    int(c.Int("port", 0)),
			Class:   c.Str("class", ""),
		}
		if pos := c.Vector("pos"); len(pos) == 3 {
			x, _ := pos[0].AsFloat()
			y, _ := pos[1].AsFloat()
			z, _ := pos[2].AsFloat()
			p.Pos = Point{x, y, z}
		}
		return nil, s.db.Place(c.Str("room", ""), p)
	})

	s.Handle(cmdlang.CommandSpec{
		Name: daemon.CmdRemoveService,
		Args: []cmdlang.ArgSpec{
			{Name: "room", Kind: cmdlang.KindWord, Required: true},
			{Name: "service", Kind: cmdlang.KindWord, Required: true},
		},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		existed := s.db.Remove(c.Str("room", ""), c.Str("service", ""))
		return cmdlang.OK().SetBool("existed", existed), nil
	})

	s.Handle(cmdlang.CommandSpec{Name: "listRooms"}, func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		return cmdlang.OK().Set("rooms", cmdlang.WordVector(s.db.Rooms()...)), nil
	})

	s.Handle(cmdlang.CommandSpec{
		Name: "roomInfo",
		Doc:  "geometry and service inventory of a room",
		Args: []cmdlang.ArgSpec{{Name: "room", Kind: cmdlang.KindWord, Required: true}},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		name := c.Str("room", "")
		r, ok := s.db.Room(name)
		if !ok {
			return cmdlang.Fail(cmdlang.CodeNotFound, "no room "+name), nil
		}
		placements := s.db.Services(name)
		services := make([]string, len(placements))
		classes := make([]string, len(placements))
		for i, p := range placements {
			services[i] = p.Service
			classes[i] = p.Class
		}
		return cmdlang.OK().
			SetWord("room", r.Name).
			SetWord("building", wordOrUnset(r.Building)).
			Set("dims", cmdlang.FloatVector(r.Dims.X, r.Dims.Y, r.Dims.Z)).
			Set("services", cmdlang.WordVector(services...)).
			Set("classes", cmdlang.StringVector(classes...)), nil
	})

	s.Handle(cmdlang.CommandSpec{
		Name: "whereIs",
		Doc:  "locate a service in the environment",
		Args: []cmdlang.ArgSpec{{Name: "service", Kind: cmdlang.KindWord, Required: true}},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		room, p, ok := s.db.WhereIs(c.Str("service", ""))
		if !ok {
			return cmdlang.Fail(cmdlang.CodeNotFound, "service not placed"), nil
		}
		return cmdlang.OK().
			SetWord("room", room).
			SetWord("host", wordOrUnset(p.Host)).
			Set("pos", cmdlang.FloatVector(p.Pos.X, p.Pos.Y, p.Pos.Z)), nil
	})

	s.Handle(cmdlang.CommandSpec{
		Name: "setPosition",
		Args: []cmdlang.ArgSpec{
			{Name: "room", Kind: cmdlang.KindWord, Required: true},
			{Name: "service", Kind: cmdlang.KindWord, Required: true},
			{Name: "pos", Kind: cmdlang.KindVector, Required: true},
		},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		pos := c.Vector("pos")
		if len(pos) != 3 {
			return nil, &cmdlang.SemanticError{Command: "setPosition", Msg: "pos must be {x,y,z}"}
		}
		x, _ := pos[0].AsFloat()
		y, _ := pos[1].AsFloat()
		z, _ := pos[2].AsFloat()
		err := s.db.SetPosition(c.Str("room", ""), c.Str("service", ""), Point{x, y, z})
		if err != nil {
			return cmdlang.Fail(cmdlang.CodeNotFound, err.Error()), nil
		}
		return nil, nil
	})
}

func wordOrUnset(s string) string {
	if s == "" {
		return "unset"
	}
	return s
}
