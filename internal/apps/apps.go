// Package apps implements ACE application lifecycle management (§5):
// temporary applications (allowed to die), restart applications
// (watched and relaunched after a crash), and robust applications
// (restarted with their state recovered from the persistent store).
// The watcher service closes the gap the report identifies as "the
// next step in our current development of ACE": it works with the ASD
// to make sure applications that need to be up are always up.
package apps

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ace/internal/asd"
	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/hier"
	"ace/internal/pstore"
)

// Class is an application's lifecycle class (§5.1–5.3).
type Class int

const (
	// Temporary applications are irrelevant to the system as a whole;
	// nobody restarts them.
	Temporary Class = iota
	// Restart applications must be running and are relaunched after a
	// crash; work since the last run may be lost.
	Restart
	// Robust applications must not stay down and recover their last
	// checkpointed state from the persistent store.
	Robust
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Temporary:
		return "temporary"
	case Restart:
		return "restart"
	case Robust:
		return "robust"
	default:
		return "unknown"
	}
}

// Startable is anything the watcher can bring back: typically an ACE
// daemon (which re-registers with the ASD on Start).
type Startable interface {
	Start() error
	Stop()
}

// Spec registers one application with the watcher.
type Spec struct {
	// Name is the application's ASD service name, the liveness probe.
	Name string
	// Class decides the reaction to absence.
	Class Class
	// Factory builds a replacement instance. It must configure the
	// instance to register under Name.
	Factory func() (Startable, error)
}

// Watcher polls the ASD for each registered application and restarts
// those that have disappeared (their lease expired or they
// deregistered by crashing).
type Watcher struct {
	*daemon.Daemon

	asdAddr  string
	interval time.Duration

	mu       sync.Mutex
	specs    map[string]Spec
	running  map[string]Startable
	restarts map[string]int
	stop     chan struct{}
	wg       sync.WaitGroup
	started  bool
}

// WatcherConfig wires the watcher.
type WatcherConfig struct {
	Daemon daemon.Config
	// ASDAddr is the directory polled for liveness.
	ASDAddr string
	// Interval is the poll period.
	Interval time.Duration
}

// NewWatcher constructs the watcher daemon.
func NewWatcher(cfg WatcherConfig) *Watcher {
	dcfg := cfg.Daemon
	if dcfg.Name == "" {
		dcfg.Name = "appwatcher"
	}
	if dcfg.Class == "" {
		dcfg.Class = hier.Root + ".Watcher"
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	w := &Watcher{
		Daemon:   daemon.New(dcfg),
		asdAddr:  cfg.ASDAddr,
		interval: cfg.Interval,
		specs:    make(map[string]Spec),
		running:  make(map[string]Startable),
		restarts: make(map[string]int),
		stop:     make(chan struct{}),
	}
	w.install()
	return w
}

// Watch registers an application. If inst is non-nil it is adopted as
// the currently running instance.
func (w *Watcher) Watch(spec Spec, inst Startable) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.specs[spec.Name] = spec
	if inst != nil {
		w.running[spec.Name] = inst
	}
}

// Restarts returns how many times the named application has been
// relaunched.
func (w *Watcher) Restarts(name string) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.restarts[name]
}

// Start brings the watcher daemon online and begins polling.
func (w *Watcher) Start() error {
	if err := w.Daemon.Start(); err != nil {
		return err
	}
	w.mu.Lock()
	w.started = true
	w.mu.Unlock()
	w.wg.Add(1)
	go w.loop()
	return nil
}

// Stop halts polling and the daemon. Watched instances are not
// stopped — they are independent applications.
func (w *Watcher) Stop() {
	w.mu.Lock()
	if w.started {
		w.started = false
		close(w.stop)
	}
	w.mu.Unlock()
	w.wg.Wait()
	w.Daemon.Stop()
}

func (w *Watcher) loop() {
	defer w.wg.Done()
	t := time.NewTicker(w.interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.Sweep()
		}
	}
}

// Sweep checks every watched application once and restarts the
// missing ones; it returns the names restarted.
func (w *Watcher) Sweep() []string {
	w.mu.Lock()
	specs := make([]Spec, 0, len(w.specs))
	for _, s := range w.specs {
		specs = append(specs, s)
	}
	w.mu.Unlock()
	sort.Slice(specs, func(i, j int) bool { return specs[i].Name < specs[j].Name })

	var restarted []string
	for _, spec := range specs {
		if spec.Class == Temporary {
			continue // allowed to die (§5.1)
		}
		if w.alive(spec.Name) {
			continue
		}
		if err := w.restart(spec); err == nil {
			restarted = append(restarted, spec.Name)
		}
	}
	return restarted
}

func (w *Watcher) alive(name string) bool {
	_, err := asd.Resolve(w.Pool(), w.asdAddr, asd.Query{Name: name})
	return err == nil
}

func (w *Watcher) restart(spec Spec) error {
	if spec.Factory == nil {
		return fmt.Errorf("apps: %s has no factory", spec.Name)
	}
	inst, err := spec.Factory()
	if err != nil {
		return err
	}
	if err := inst.Start(); err != nil {
		return err
	}
	w.mu.Lock()
	w.running[spec.Name] = inst
	w.restarts[spec.Name]++
	w.mu.Unlock()
	return nil
}

func (w *Watcher) install() {
	w.Handle(cmdlang.CommandSpec{Name: "watched", Doc: "list watched applications and restart counts"},
		func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			w.mu.Lock()
			names := make([]string, 0, len(w.specs))
			for n := range w.specs {
				names = append(names, n)
			}
			sort.Strings(names)
			classes := make([]string, len(names))
			counts := make([]int64, len(names))
			for i, n := range names {
				classes[i] = w.specs[n].Class.String()
				counts[i] = int64(w.restarts[n])
			}
			w.mu.Unlock()
			return cmdlang.OK().
				Set("names", cmdlang.WordVector(names...)).
				Set("classes", cmdlang.WordVector(classes...)).
				Set("restarts", cmdlang.IntVector(counts...)), nil
		})
}

// Checkpointer saves and restores a robust application's state in the
// persistent store's object-oriented namespace.
type Checkpointer struct {
	Client *pstore.Client
	Path   string
}

// Save checkpoints the state blob.
func (c *Checkpointer) Save(state []byte) error {
	_, err := c.Client.Put(c.Path, state)
	return err
}

// Load returns the last checkpoint (ok=false when none exists).
func (c *Checkpointer) Load() (state []byte, ok bool, err error) {
	state, _, ok, err = c.Client.Get(c.Path)
	return state, ok, err
}

// RobustCounter is a reference robust application (§5.3): a counter
// service whose every increment is checkpointed, so a replacement
// instance resumes from the exact last value. It is the shape every
// robust ACE service follows: mutate → checkpoint → reply.
type RobustCounter struct {
	*daemon.Daemon
	ckpt *Checkpointer

	mu    sync.Mutex
	value int64
}

// NewRobustCounter constructs the counter over a checkpointer.
func NewRobustCounter(dcfg daemon.Config, ckpt *Checkpointer) *RobustCounter {
	if dcfg.Name == "" {
		dcfg.Name = "robust_counter"
	}
	r := &RobustCounter{Daemon: daemon.New(dcfg), ckpt: ckpt}
	r.install()
	return r
}

// Start restores the last checkpoint, then serves.
func (r *RobustCounter) Start() error {
	if blob, ok, err := r.ckpt.Load(); err != nil {
		return err
	} else if ok && len(blob) == 8 {
		var v int64
		for i := 0; i < 8; i++ {
			v = v<<8 | int64(blob[i])
		}
		r.mu.Lock()
		r.value = v
		r.mu.Unlock()
	}
	return r.Daemon.Start()
}

// Value returns the current counter value.
func (r *RobustCounter) Value() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.value
}

func (r *RobustCounter) install() {
	r.Handle(cmdlang.CommandSpec{Name: "increment"},
		func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			r.mu.Lock()
			r.value++
			v := r.value
			r.mu.Unlock()
			blob := make([]byte, 8)
			for i := 0; i < 8; i++ {
				blob[7-i] = byte(v >> (8 * i))
			}
			if err := r.ckpt.Save(blob); err != nil {
				return nil, fmt.Errorf("checkpoint failed: %w", err)
			}
			return cmdlang.OK().SetInt("value", v), nil
		})
	r.Handle(cmdlang.CommandSpec{Name: "value"},
		func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			return cmdlang.OK().SetInt("value", r.Value()), nil
		})
}
