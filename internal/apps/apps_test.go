package apps

import (
	"testing"
	"time"

	"ace/internal/asd"
	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/pstore"
)

func startASD(t *testing.T) *asd.Service {
	t.Helper()
	s := asd.New(asd.Config{ReapInterval: 20 * time.Millisecond})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s
}

// echoApp is a trivial restartable application daemon.
func echoApp(name, asdAddr string) *daemon.Daemon {
	d := daemon.New(daemon.Config{Name: name, ASDAddr: asdAddr, LeaseTTL: 60 * time.Millisecond})
	d.Handle(cmdlang.CommandSpec{Name: "echo", AllowExtra: true},
		func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			return cmdlang.OK().SetString("text", c.Str("text", "")), nil
		})
	return d
}

func TestWatcherRestartsCrashedRestartApp(t *testing.T) {
	dir := startASD(t)

	app := echoApp("netlogger_sim", dir.Addr())
	if err := app.Start(); err != nil {
		t.Fatal(err)
	}

	w := NewWatcher(WatcherConfig{ASDAddr: dir.Addr(), Interval: 30 * time.Millisecond})
	w.Watch(Spec{
		Name:  "netlogger_sim",
		Class: Restart,
		Factory: func() (Startable, error) {
			return echoApp("netlogger_sim", dir.Addr()), nil
		},
	}, app)
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)

	// Crash the app: it deregisters (graceful stop simulates the
	// lease-expiry path much faster).
	app.Stop()

	deadline := time.Now().Add(3 * time.Second)
	pool := daemon.NewPool(nil)
	defer pool.Close()
	for {
		if addr, err := asd.Resolve(pool, dir.Addr(), asd.Query{Name: "netlogger_sim"}); err == nil {
			// It's back and answering.
			if _, err := pool.Call(addr, cmdlang.New("echo").SetString("text", "hi")); err == nil {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("restart app never came back")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if w.Restarts("netlogger_sim") < 1 {
		t.Fatal("restart not counted")
	}
}

func TestWatcherIgnoresTemporaryApps(t *testing.T) {
	dir := startASD(t)
	w := NewWatcher(WatcherConfig{ASDAddr: dir.Addr(), Interval: 20 * time.Millisecond})
	w.Watch(Spec{Name: "browser", Class: Temporary, Factory: func() (Startable, error) {
		t.Fatal("temporary app restarted")
		return nil, nil
	}}, nil)
	if restarted := w.Sweep(); len(restarted) != 0 {
		t.Fatalf("restarted=%v", restarted)
	}
}

func TestWatcherSweepReportsAndCommandSurface(t *testing.T) {
	dir := startASD(t)
	w := NewWatcher(WatcherConfig{ASDAddr: dir.Addr(), Interval: time.Hour})
	w.Watch(Spec{
		Name:  "gone_service",
		Class: Restart,
		Factory: func() (Startable, error) {
			return echoApp("gone_service", dir.Addr()), nil
		},
	}, nil)
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)

	restarted := w.Sweep()
	if len(restarted) != 1 || restarted[0] != "gone_service" {
		t.Fatalf("restarted=%v", restarted)
	}
	// Next sweep: alive, nothing to do.
	if restarted := w.Sweep(); len(restarted) != 0 {
		t.Fatalf("second sweep=%v", restarted)
	}

	pool := daemon.NewPool(nil)
	defer pool.Close()
	reply, err := pool.Call(w.Addr(), cmdlang.New("watched"))
	if err != nil {
		t.Fatal(err)
	}
	if names := reply.Strings("names"); len(names) != 1 || names[0] != "gone_service" {
		t.Fatalf("reply=%v", reply)
	}
	counts := reply.Vector("restarts")
	if n, _ := counts[0].AsInt(); n != 1 {
		t.Fatalf("counts=%v", counts)
	}
}

func TestRobustCounterFailover(t *testing.T) {
	// §5.3 + §6: a robust application recovers its exact state from
	// the persistent store after a crash.
	cluster, err := pstore.StartCluster(3, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.StopAll)
	pool := daemon.NewPool(nil)
	defer pool.Close()
	store := pstore.NewClient(pool, cluster.Addrs())
	ckpt := &Checkpointer{Client: store, Path: "/apps/counter/state"}

	c1 := NewRobustCounter(daemon.Config{Name: "counter"}, ckpt)
	if err := c1.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if _, err := pool.Call(c1.Addr(), cmdlang.New("increment")); err != nil {
			t.Fatal(err)
		}
	}
	c1.Stop() // crash

	// A replacement instance resumes from 7, not 0.
	c2 := NewRobustCounter(daemon.Config{Name: "counter"}, ckpt)
	if err := c2.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c2.Stop)
	reply, err := pool.Call(c2.Addr(), cmdlang.New("value"))
	if err != nil {
		t.Fatal(err)
	}
	if reply.Int("value", 0) != 7 {
		t.Fatalf("recovered value=%d", reply.Int("value", 0))
	}
	// And continues correctly.
	inc, err := pool.Call(c2.Addr(), cmdlang.New("increment"))
	if err != nil {
		t.Fatal(err)
	}
	if inc.Int("value", 0) != 8 {
		t.Fatalf("value=%v", inc)
	}
}

func TestRobustCounterSurvivesOneStoreCrash(t *testing.T) {
	cluster, err := pstore.StartCluster(3, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.StopAll)
	pool := daemon.NewPool(nil)
	defer pool.Close()
	store := pstore.NewClient(pool, cluster.Addrs())
	ckpt := &Checkpointer{Client: store, Path: "/apps/counter2/state"}

	c := NewRobustCounter(daemon.Config{Name: "counter2"}, ckpt)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	if _, err := pool.Call(c.Addr(), cmdlang.New("increment")); err != nil {
		t.Fatal(err)
	}
	cluster.Nodes[1].Stop() // one store replica dies
	if _, err := pool.Call(c.Addr(), cmdlang.New("increment")); err != nil {
		t.Fatalf("increment with one store crash: %v", err)
	}
}

func TestClassStrings(t *testing.T) {
	if Temporary.String() != "temporary" || Restart.String() != "restart" || Robust.String() != "robust" {
		t.Fatal("class names")
	}
	if Class(99).String() != "unknown" {
		t.Fatal("unknown class")
	}
}
