// Package keynote implements the KeyNote-style trust-management
// system that ACE integrates for service access control (§3.2, Fig
// 10; RFC 2704). Both users and services hold credentials and
// assertions defining what can and cannot be done in the environment:
// which commands may be issued, which services accessed, and so on.
//
// The package provides principals (ed25519 key pairs), signed
// assertions with licensee and condition expressions, and the
// compliance checker that decides whether a requested action is
// authorized by the policy plus a chain of credentials.
package keynote

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
)

// Policy is the distinguished authorizer of unconditionally trusted
// local policy assertions, which need no signature.
const Policy = "POLICY"

// Principal is an identity in the trust system: a symbolic name bound
// to an ed25519 key pair. Credentials are signed by the authorizer's
// private key and verified against the public key registered in a
// Keyring.
type Principal struct {
	Name string
	Pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// NewPrincipal generates a fresh principal with the given symbolic
// name.
func NewPrincipal(name string) (*Principal, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("keynote: generate key for %s: %w", name, err)
	}
	return &Principal{Name: name, Pub: pub, priv: priv}, nil
}

// KeyID returns the hex key identifier of the principal's public key.
func (p *Principal) KeyID() string { return hex.EncodeToString(p.Pub) }

// Sign signs msg with the principal's private key.
func (p *Principal) Sign(msg []byte) []byte {
	if p.priv == nil {
		return nil
	}
	return ed25519.Sign(p.priv, msg)
}

// CanSign reports whether the principal holds its private key (a
// verifier-side principal holds only the public half).
func (p *Principal) CanSign() bool { return p.priv != nil }

// PublicOnly returns a copy of the principal without the private key,
// as stored by verifiers.
func (p *Principal) PublicOnly() *Principal {
	return &Principal{Name: p.Name, Pub: p.Pub}
}

// Keyring maps symbolic principal names to public keys. It is safe
// for concurrent use.
type Keyring struct {
	mu   sync.RWMutex
	keys map[string]ed25519.PublicKey
}

// NewKeyring returns an empty keyring.
func NewKeyring() *Keyring {
	return &Keyring{keys: make(map[string]ed25519.PublicKey)}
}

// Add registers a principal's public key under its name.
func (k *Keyring) Add(p *Principal) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.keys[p.Name] = p.Pub
}

// AddKey registers a raw public key under a name.
func (k *Keyring) AddKey(name string, pub ed25519.PublicKey) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.keys[name] = pub
}

// Lookup returns the public key for name.
func (k *Keyring) Lookup(name string) (ed25519.PublicKey, bool) {
	k.mu.RLock()
	defer k.mu.RUnlock()
	pub, ok := k.keys[name]
	return pub, ok
}

// Verify checks sig over msg against the named principal's key.
func (k *Keyring) Verify(name string, msg, sig []byte) error {
	pub, ok := k.Lookup(name)
	if !ok {
		return fmt.Errorf("keynote: unknown principal %q", name)
	}
	if !ed25519.Verify(pub, msg, sig) {
		return fmt.Errorf("keynote: bad signature by %q", name)
	}
	return nil
}

// Names returns all registered principal names, sorted.
func (k *Keyring) Names() []string {
	k.mu.RLock()
	defer k.mu.RUnlock()
	out := make([]string, 0, len(k.keys))
	for n := range k.keys {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
