package keynote

import (
	"fmt"
)

// Checker is the KeyNote compliance checker (Fig 10 step 5): given
// locally trusted policy assertions, a set of credential assertions,
// and the action attribute set, it decides whether the requesting
// principals are authorized.
//
// Semantics: a principal is *supported* if it is one of the
// requesters. The checker then takes the monotone fixpoint of: an
// assertion whose conditions hold and whose licensee expression is
// satisfied by supported principals makes its authorizer supported.
// The request complies iff POLICY becomes supported — i.e. there is a
// delegation chain from local policy down to the requester, every
// link of which permits this action.
type Checker struct {
	ring     *Keyring
	policies []*Assertion
}

// NewChecker builds a checker over the given keyring and policy
// assertions. Non-policy assertions in policies are rejected: local
// policy is exactly what the verifier chose to trust unconditionally.
func NewChecker(ring *Keyring, policies ...*Assertion) (*Checker, error) {
	for _, p := range policies {
		if !p.IsPolicy() {
			return nil, fmt.Errorf("keynote: %q assertion used as policy", p.Authorizer)
		}
	}
	return &Checker{ring: ring, policies: policies}, nil
}

// Result explains a compliance decision.
type Result struct {
	Allowed bool
	// Supported lists the principals that became supported during
	// evaluation (requesters plus satisfied delegation hops).
	Supported []string
	// Rejected lists credentials that failed signature verification
	// and were therefore ignored.
	Rejected []string
	// ChainDepth is the number of fixpoint rounds needed, i.e. the
	// longest delegation chain exercised.
	ChainDepth int
}

// Query runs the compliance check: do the requesters, presenting
// credentials, comply with policy for the action described by attrs?
func (c *Checker) Query(requesters []string, credentials []*Assertion, attrs Attributes) Result {
	supported := make(map[string]bool, len(requesters))
	for _, r := range requesters {
		supported[r] = true
	}
	trusted := func(name string) bool { return supported[name] }

	// Verify and condition-filter credentials once.
	var res Result
	var usable []*Assertion
	for _, cred := range credentials {
		if cred.IsPolicy() {
			// Credentials presented by a requester cannot claim to be
			// local policy.
			res.Rejected = append(res.Rejected, "POLICY(credential)")
			continue
		}
		if err := cred.Verify(c.ring); err != nil {
			res.Rejected = append(res.Rejected, cred.Authorizer+": "+err.Error())
			continue
		}
		if cred.Conditions.Eval(attrs) {
			usable = append(usable, cred)
		}
	}

	// Monotone fixpoint over the delegation graph.
	for {
		res.ChainDepth++
		changed := false
		for _, cred := range usable {
			if supported[cred.Authorizer] {
				continue
			}
			if cred.Licensees.Eval(trusted) {
				supported[cred.Authorizer] = true
				changed = true
			}
		}
		if !changed {
			break
		}
		if res.ChainDepth > len(usable)+1 {
			break // safety bound; cannot happen with monotone updates
		}
	}

	// Finally: does any policy assertion, with its conditions
	// satisfied, license a supported principal (directly or through
	// the chain)?
	for _, pol := range c.policies {
		if pol.Conditions.Eval(attrs) && pol.Licensees.Eval(trusted) {
			res.Allowed = true
			break
		}
	}

	for name := range supported {
		res.Supported = append(res.Supported, name)
	}
	return res
}

// Allowed is Query reduced to its boolean.
func (c *Checker) Allowed(requesters []string, credentials []*Assertion, attrs Attributes) bool {
	return c.Query(requesters, credentials, attrs).Allowed
}
