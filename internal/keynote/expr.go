package keynote

import (
	"fmt"
	"strconv"
	"strings"
)

// Attributes is the action attribute set a condition expression is
// evaluated against: the properties of the requested action (command
// name, argument values, target service, room, time of day, ...).
type Attributes map[string]string

// Condition expressions form a small boolean language over action
// attributes:
//
//	expr   := or
//	or     := and { "||" and }
//	and    := not { "&&" not }
//	not    := "!" not | "(" expr ")" | cmp | "true" | "false"
//	cmp    := operand (== != < <= > >=) operand
//	operand:= identifier | "string literal" | number
//
// Comparisons are numeric when both operands parse as numbers, and
// lexicographic on strings otherwise — matching KeyNote's dual
// string/number semantics. An identifier names an action attribute;
// missing attributes evaluate as the empty string.

type exprNode interface {
	eval(a Attributes) bool
	String() string
}

type boolLit bool

func (b boolLit) eval(Attributes) bool { return bool(b) }
func (b boolLit) String() string {
	if b {
		return "true"
	}
	return "false"
}

type notNode struct{ x exprNode }

func (n notNode) eval(a Attributes) bool { return !n.x.eval(a) }
func (n notNode) String() string         { return "!" + n.x.String() }

type binNode struct {
	op   string // "&&" or "||"
	l, r exprNode
}

func (n binNode) eval(a Attributes) bool {
	if n.op == "&&" {
		return n.l.eval(a) && n.r.eval(a)
	}
	return n.l.eval(a) || n.r.eval(a)
}
func (n binNode) String() string {
	return "(" + n.l.String() + " " + n.op + " " + n.r.String() + ")"
}

type operand struct {
	attr    string // attribute reference, if lit == false
	literal string // literal value, if lit == true
	lit     bool
}

func (o operand) value(a Attributes) string {
	if o.lit {
		return o.literal
	}
	return a[o.attr]
}
func (o operand) String() string {
	if o.lit {
		return strconv.Quote(o.literal)
	}
	return o.attr
}

type cmpNode struct {
	op   string
	l, r operand
}

func (n cmpNode) eval(a Attributes) bool {
	lv, rv := n.l.value(a), n.r.value(a)
	lf, lerr := strconv.ParseFloat(lv, 64)
	rf, rerr := strconv.ParseFloat(rv, 64)
	if lerr == nil && rerr == nil {
		switch n.op {
		case "==":
			return lf == rf
		case "!=":
			return lf != rf
		case "<":
			return lf < rf
		case "<=":
			return lf <= rf
		case ">":
			return lf > rf
		case ">=":
			return lf >= rf
		}
	}
	switch n.op {
	case "==":
		return lv == rv
	case "!=":
		return lv != rv
	case "<":
		return lv < rv
	case "<=":
		return lv <= rv
	case ">":
		return lv > rv
	case ">=":
		return lv >= rv
	}
	return false
}
func (n cmpNode) String() string {
	return n.l.String() + " " + n.op + " " + n.r.String()
}

// Condition is a compiled condition expression.
type Condition struct {
	src  string
	root exprNode
}

// ParseCondition compiles a condition expression. The empty string is
// the always-true condition.
func ParseCondition(src string) (*Condition, error) {
	trimmed := strings.TrimSpace(src)
	if trimmed == "" {
		return &Condition{src: src, root: boolLit(true)}, nil
	}
	p := &exprParser{src: trimmed}
	root, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("keynote: trailing input in condition at %d: %q", p.pos, p.src[p.pos:])
	}
	return &Condition{src: src, root: root}, nil
}

// MustCondition is ParseCondition for literal program text; it panics
// on error.
func MustCondition(src string) *Condition {
	c, err := ParseCondition(src)
	if err != nil {
		panic(err)
	}
	return c
}

// Eval evaluates the condition over the action attribute set.
func (c *Condition) Eval(a Attributes) bool { return c.root.eval(a) }

// Source returns the original expression text.
func (c *Condition) Source() string { return c.src }

type exprParser struct {
	src string
	pos int
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n' || p.src[p.pos] == '\r') {
		p.pos++
	}
}

func (p *exprParser) errf(format string, args ...any) error {
	return fmt.Errorf("keynote: condition parse error at %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *exprParser) lookahead(s string) bool {
	p.skipSpace()
	return strings.HasPrefix(p.src[p.pos:], s)
}

func (p *exprParser) accept(s string) bool {
	if p.lookahead(s) {
		p.pos += len(s)
		return true
	}
	return false
}

func (p *exprParser) parseOr() (exprNode, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept("||") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = binNode{op: "||", l: l, r: r}
	}
	return l, nil
}

func (p *exprParser) parseAnd() (exprNode, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept("&&") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = binNode{op: "&&", l: l, r: r}
	}
	return l, nil
}

func (p *exprParser) parseNot() (exprNode, error) {
	if p.accept("!") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return notNode{x: x}, nil
	}
	if p.accept("(") {
		x, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if !p.accept(")") {
			return nil, p.errf("missing ')'")
		}
		return x, nil
	}
	return p.parseCmp()
}

func (p *exprParser) parseCmp() (exprNode, error) {
	l, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	// Bare boolean words.
	if !l.lit && (l.attr == "true" || l.attr == "false") {
		p.skipSpace()
		if p.pos >= len(p.src) || !isCmpStart(p.src[p.pos]) {
			return boolLit(l.attr == "true"), nil
		}
	}
	p.skipSpace()
	var op string
	for _, cand := range []string{"==", "!=", "<=", ">=", "<", ">"} {
		if p.accept(cand) {
			op = cand
			break
		}
	}
	if op == "" {
		return nil, p.errf("expected comparison operator")
	}
	r, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return cmpNode{op: op, l: l, r: r}, nil
}

func isCmpStart(c byte) bool {
	return c == '=' || c == '!' || c == '<' || c == '>'
}

func (p *exprParser) parseOperand() (operand, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return operand{}, p.errf("expected operand")
	}
	c := p.src[p.pos]
	switch {
	case c == '"':
		start := p.pos
		p.pos++
		var b strings.Builder
		for p.pos < len(p.src) {
			switch p.src[p.pos] {
			case '"':
				p.pos++
				return operand{literal: b.String(), lit: true}, nil
			case '\\':
				if p.pos+1 >= len(p.src) {
					return operand{}, p.errf("dangling escape")
				}
				p.pos++
				b.WriteByte(p.src[p.pos])
				p.pos++
			default:
				b.WriteByte(p.src[p.pos])
				p.pos++
			}
		}
		p.pos = start
		return operand{}, p.errf("unterminated string")
	case c >= '0' && c <= '9' || c == '-' || c == '+' || c == '.':
		start := p.pos
		for p.pos < len(p.src) && strings.ContainsRune("0123456789.eE+-", rune(p.src[p.pos])) {
			p.pos++
		}
		lit := p.src[start:p.pos]
		if _, err := strconv.ParseFloat(lit, 64); err != nil {
			return operand{}, p.errf("bad number %q", lit)
		}
		return operand{literal: lit, lit: true}, nil
	case isIdentByte(c):
		start := p.pos
		for p.pos < len(p.src) && isIdentByte(p.src[p.pos]) {
			p.pos++
		}
		return operand{attr: p.src[start:p.pos]}, nil
	default:
		return operand{}, p.errf("unexpected character %q", rune(c))
	}
}

func isIdentByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '.'
}
