package keynote

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"strings"
)

// Assertion is one KeyNote credential or policy: the authorizer
// delegates, to the licensees, authority over actions satisfying the
// conditions. Policy assertions (Authorizer == Policy) are locally
// trusted and unsigned; credential assertions must carry a valid
// signature by their authorizer.
type Assertion struct {
	Authorizer string
	Licensees  *Licensees
	Conditions *Condition
	Comment    string
	Signature  []byte
}

// NewAssertion builds an unsigned assertion from expression sources.
func NewAssertion(authorizer, licensees, conditions, comment string) (*Assertion, error) {
	lic, err := ParseLicensees(licensees)
	if err != nil {
		return nil, err
	}
	cond, err := ParseCondition(conditions)
	if err != nil {
		return nil, err
	}
	return &Assertion{Authorizer: authorizer, Licensees: lic, Conditions: cond, Comment: comment}, nil
}

// MustAssertion is NewAssertion for program literals; panics on error.
func MustAssertion(authorizer, licensees, conditions, comment string) *Assertion {
	a, err := NewAssertion(authorizer, licensees, conditions, comment)
	if err != nil {
		panic(err)
	}
	return a
}

// IsPolicy reports whether this is a locally trusted policy
// assertion.
func (a *Assertion) IsPolicy() bool { return a.Authorizer == Policy }

// canonical returns the byte string that is signed: every field
// except the signature, in fixed order.
func (a *Assertion) canonical() []byte {
	var b strings.Builder
	b.WriteString("keynote-version: 2\n")
	b.WriteString("authorizer: " + a.Authorizer + "\n")
	b.WriteString("licensees: " + a.Licensees.Source() + "\n")
	b.WriteString("conditions: " + a.Conditions.Source() + "\n")
	if a.Comment != "" {
		b.WriteString("comment: " + a.Comment + "\n")
	}
	return []byte(b.String())
}

// Sign attaches the authorizer's signature. The signing principal's
// name must match the assertion's authorizer.
func (a *Assertion) Sign(p *Principal) error {
	if a.IsPolicy() {
		return fmt.Errorf("keynote: policy assertions are not signed")
	}
	if p.Name != a.Authorizer {
		return fmt.Errorf("keynote: signer %q is not the authorizer %q", p.Name, a.Authorizer)
	}
	if !p.CanSign() {
		return fmt.Errorf("keynote: principal %q holds no private key", p.Name)
	}
	a.Signature = p.Sign(a.canonical())
	return nil
}

// Verify checks the assertion's integrity against the keyring. Policy
// assertions always verify; credentials need a valid authorizer
// signature.
func (a *Assertion) Verify(ring *Keyring) error {
	if a.IsPolicy() {
		return nil
	}
	if len(a.Signature) == 0 {
		return fmt.Errorf("keynote: credential by %q is unsigned", a.Authorizer)
	}
	return ring.Verify(a.Authorizer, a.canonical(), a.Signature)
}

// Encode serializes the assertion in the RFC 2704-style textual
// format, signature last.
func (a *Assertion) Encode() string {
	var b strings.Builder
	b.Write(a.canonical())
	if len(a.Signature) > 0 {
		b.WriteString("signature: ed25519:" + hex.EncodeToString(a.Signature) + "\n")
	}
	return b.String()
}

// ParseAssertion parses the textual format produced by Encode.
func ParseAssertion(text string) (*Assertion, error) {
	fields := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		k, v, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("keynote: malformed assertion line %q", line)
		}
		key := strings.ToLower(strings.TrimSpace(k))
		if _, dup := fields[key]; dup {
			return nil, fmt.Errorf("keynote: duplicate field %q", key)
		}
		fields[key] = strings.TrimSpace(v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if v := fields["keynote-version"]; v != "" && v != "2" {
		return nil, fmt.Errorf("keynote: unsupported version %q", v)
	}
	auth := fields["authorizer"]
	if auth == "" {
		return nil, fmt.Errorf("keynote: assertion without authorizer")
	}
	a, err := NewAssertion(auth, fields["licensees"], fields["conditions"], fields["comment"])
	if err != nil {
		return nil, err
	}
	if sig := fields["signature"]; sig != "" {
		hexsig, ok := strings.CutPrefix(sig, "ed25519:")
		if !ok {
			return nil, fmt.Errorf("keynote: unsupported signature algorithm in %q", sig)
		}
		raw, err := hex.DecodeString(hexsig)
		if err != nil {
			return nil, fmt.Errorf("keynote: bad signature hex: %w", err)
		}
		a.Signature = raw
	}
	return a, nil
}
