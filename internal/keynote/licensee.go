package keynote

import (
	"fmt"
	"strconv"
	"strings"
)

// Licensee expressions name the principals an assertion delegates to:
//
//	lexpr := lor
//	lor   := land { "||" land }
//	land  := lprim { "&&" lprim }
//	lprim := principal | "(" lexpr ")" | k "-of" "(" lexpr {"," lexpr} ")"
//
// where principal is a quoted name ("john_doe") or a bare identifier.
// "&&" means both licensees must support the request, "||" either,
// and the k-of threshold form requires at least k of the listed
// sub-expressions — KeyNote's conjunction, disjunction, and threshold
// semantics.

type licNode interface {
	eval(trusted func(string) bool) bool
	principals(set map[string]bool)
	String() string
}

type licPrincipal string

func (p licPrincipal) eval(trusted func(string) bool) bool { return trusted(string(p)) }
func (p licPrincipal) principals(set map[string]bool)      { set[string(p)] = true }
func (p licPrincipal) String() string                      { return strconv.Quote(string(p)) }

type licBin struct {
	op   string
	l, r licNode
}

func (n licBin) eval(trusted func(string) bool) bool {
	if n.op == "&&" {
		return n.l.eval(trusted) && n.r.eval(trusted)
	}
	return n.l.eval(trusted) || n.r.eval(trusted)
}
func (n licBin) principals(set map[string]bool) {
	n.l.principals(set)
	n.r.principals(set)
}
func (n licBin) String() string {
	return "(" + n.l.String() + " " + n.op + " " + n.r.String() + ")"
}

type licThreshold struct {
	k    int
	subs []licNode
}

func (n licThreshold) eval(trusted func(string) bool) bool {
	count := 0
	for _, s := range n.subs {
		if s.eval(trusted) {
			count++
			if count >= n.k {
				return true
			}
		}
	}
	return false
}
func (n licThreshold) principals(set map[string]bool) {
	for _, s := range n.subs {
		s.principals(set)
	}
}
func (n licThreshold) String() string {
	parts := make([]string, len(n.subs))
	for i, s := range n.subs {
		parts[i] = s.String()
	}
	return fmt.Sprintf("%d-of(%s)", n.k, strings.Join(parts, ", "))
}

// Licensees is a compiled licensee expression.
type Licensees struct {
	src  string
	root licNode
}

// ParseLicensees compiles a licensee expression. The empty string
// licenses nobody (the assertion delegates to no one).
func ParseLicensees(src string) (*Licensees, error) {
	trimmed := strings.TrimSpace(src)
	if trimmed == "" {
		return &Licensees{src: src}, nil
	}
	p := &licParser{exprParser{src: trimmed}}
	root, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("keynote: trailing input in licensees at %d: %q", p.pos, p.src[p.pos:])
	}
	return &Licensees{src: src, root: root}, nil
}

// MustLicensees is ParseLicensees for program literals; it panics on
// error.
func MustLicensees(src string) *Licensees {
	l, err := ParseLicensees(src)
	if err != nil {
		panic(err)
	}
	return l
}

// Eval reports whether the expression is satisfied given the trusted
// predicate over principal names.
func (l *Licensees) Eval(trusted func(string) bool) bool {
	if l.root == nil {
		return false
	}
	return l.root.eval(trusted)
}

// Principals returns every principal named in the expression.
func (l *Licensees) Principals() []string {
	set := map[string]bool{}
	if l.root != nil {
		l.root.principals(set)
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	return out
}

// Source returns the original expression text.
func (l *Licensees) Source() string { return l.src }

type licParser struct{ exprParser }

func (p *licParser) parseOr() (licNode, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept("||") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = licBin{op: "||", l: l, r: r}
	}
	return l, nil
}

func (p *licParser) parseAnd() (licNode, error) {
	l, err := p.parsePrim()
	if err != nil {
		return nil, err
	}
	for p.accept("&&") {
		r, err := p.parsePrim()
		if err != nil {
			return nil, err
		}
		l = licBin{op: "&&", l: l, r: r}
	}
	return l, nil
}

func (p *licParser) parsePrim() (licNode, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return nil, p.errf("expected licensee")
	}
	if p.accept("(") {
		x, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if !p.accept(")") {
			return nil, p.errf("missing ')'")
		}
		return x, nil
	}
	c := p.src[p.pos]
	if c == '"' {
		op, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		return licPrincipal(op.literal), nil
	}
	if c >= '0' && c <= '9' {
		// threshold form: k-of(e1, e2, ...)
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
		k, err := strconv.Atoi(p.src[start:p.pos])
		if err != nil || k < 1 {
			return nil, p.errf("bad threshold count")
		}
		if !p.accept("-of") {
			return nil, p.errf("expected -of after threshold count")
		}
		if !p.accept("(") {
			return nil, p.errf("expected '(' after -of")
		}
		var subs []licNode
		for {
			sub, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			subs = append(subs, sub)
			if p.accept(",") {
				continue
			}
			if p.accept(")") {
				break
			}
			return nil, p.errf("expected ',' or ')' in threshold")
		}
		if k > len(subs) {
			return nil, p.errf("threshold %d exceeds %d alternatives", k, len(subs))
		}
		return licThreshold{k: k, subs: subs}, nil
	}
	if isIdentByte(c) {
		startPos := p.pos
		for p.pos < len(p.src) && isIdentByte(p.src[p.pos]) {
			p.pos++
		}
		return licPrincipal(p.src[startPos:p.pos]), nil
	}
	return nil, p.errf("unexpected character %q", rune(c))
}
