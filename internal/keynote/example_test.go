package keynote_test

import (
	"fmt"

	"ace/internal/keynote"
)

// Example shows the full Fig 10 trust decision: local policy
// delegates to an administrator, who signs a credential for a user;
// the compliance checker then decides per-action.
func Example() {
	admin, _ := keynote.NewPrincipal("admin")
	ring := keynote.NewKeyring()
	ring.Add(admin)

	policy := keynote.MustAssertion(keynote.Policy, `"admin"`, `app_domain == "ace"`, "root of trust")
	checker, _ := keynote.NewChecker(ring, policy)

	cred := keynote.MustAssertion("admin", `"john_doe"`,
		`command == "move" && arg_pan < 90`, "camera delegation")
	if err := cred.Sign(admin); err != nil {
		panic(err)
	}
	creds := []*keynote.Assertion{cred}

	allowed := func(attrs keynote.Attributes) bool {
		attrs["app_domain"] = "ace"
		return checker.Allowed([]string{"john_doe"}, creds, attrs)
	}
	fmt.Println(allowed(keynote.Attributes{"command": "move", "arg_pan": "45"}))
	fmt.Println(allowed(keynote.Attributes{"command": "move", "arg_pan": "170"}))
	fmt.Println(allowed(keynote.Attributes{"command": "shutdown"}))
	// Output:
	// true
	// false
	// false
}
