package keynote

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestConditionEval(t *testing.T) {
	attrs := Attributes{
		"app_domain": "ace",
		"command":    "move",
		"x":          "45",
		"room":       "hawk",
		"service":    "ptz1",
	}
	cases := []struct {
		src  string
		want bool
	}{
		{``, true},
		{`true`, true},
		{`false`, false},
		{`!false`, true},
		{`app_domain == "ace"`, true},
		{`app_domain == "oxygen"`, false},
		{`app_domain != "oxygen"`, true},
		{`x < 100`, true},
		{`x >= 45`, true},
		{`x > 45`, false},
		{`x < 100 && command == "move"`, true},
		{`command == "zoom" || command == "move"`, true},
		{`command == "zoom" || command == "pan"`, false},
		{`(command == "zoom" || command == "move") && room == "hawk"`, true},
		{`!(room == "eagle")`, true},
		// Missing attribute evaluates as empty string.
		{`missing == ""`, true},
		{`missing == "x"`, false},
		// Numeric vs string comparison: both numeric → numeric.
		{`x == 45.0`, true},
		// One side non-numeric → lexicographic.
		{`room > "e"`, true},
	}
	for _, tc := range cases {
		c, err := ParseCondition(tc.src)
		if err != nil {
			t.Errorf("ParseCondition(%q): %v", tc.src, err)
			continue
		}
		if got := c.Eval(attrs); got != tc.want {
			t.Errorf("Eval(%q)=%v want %v", tc.src, got, tc.want)
		}
	}
}

func TestConditionParseErrors(t *testing.T) {
	bad := []string{
		`x ==`, `== 5`, `x = 5`, `(x == 5`, `x == 5)`,
		`x == "unterminated`, `&& x == 5`, `x == 5 &&`, `x @ 5`,
	}
	for _, src := range bad {
		if _, err := ParseCondition(src); err == nil {
			t.Errorf("ParseCondition(%q): want error", src)
		}
	}
}

func TestLicenseesEval(t *testing.T) {
	trustedSet := map[string]bool{"alice": true, "bob": true}
	trusted := func(n string) bool { return trustedSet[n] }
	cases := []struct {
		src  string
		want bool
	}{
		{`alice`, true},
		{`"alice"`, true},
		{`carol`, false},
		{`alice && bob`, true},
		{`alice && carol`, false},
		{`carol || bob`, true},
		{`(carol || dave) || (alice && bob)`, true},
		{`2-of(alice, bob, carol)`, true},
		{`3-of(alice, bob, carol)`, false},
		{`1-of(carol, dave)`, false},
		{``, false}, // empty licensees delegate to nobody
	}
	for _, tc := range cases {
		l, err := ParseLicensees(tc.src)
		if err != nil {
			t.Errorf("ParseLicensees(%q): %v", tc.src, err)
			continue
		}
		if got := l.Eval(trusted); got != tc.want {
			t.Errorf("Eval(%q)=%v want %v", tc.src, got, tc.want)
		}
	}
}

func TestLicenseesPrincipalsAndErrors(t *testing.T) {
	l := MustLicensees(`alice || 2-of(bob, "carol d", dave)`)
	got := l.Principals()
	if len(got) != 4 {
		t.Fatalf("principals=%v", got)
	}
	for _, bad := range []string{`alice &&`, `0-of(a,b)`, `3-of(a,b)`, `(a || b`, `a ||`, `@`} {
		if _, err := ParseLicensees(bad); err == nil {
			t.Errorf("ParseLicensees(%q): want error", bad)
		}
	}
}

func TestAssertionSignVerifyRoundTrip(t *testing.T) {
	admin, err := NewPrincipal("admin")
	if err != nil {
		t.Fatal(err)
	}
	ring := NewKeyring()
	ring.Add(admin)

	a := MustAssertion("admin", `"john_doe"`, `command == "move" && x < 90`, "camera delegation")
	if err := a.Sign(admin); err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(ring); err != nil {
		t.Fatal(err)
	}

	// Textual round trip preserves verifiability.
	text := a.Encode()
	back, err := ParseAssertion(text)
	if err != nil {
		t.Fatalf("ParseAssertion:\n%s\n%v", text, err)
	}
	if err := back.Verify(ring); err != nil {
		t.Fatalf("round-tripped assertion fails verify: %v", err)
	}
	if back.Authorizer != "admin" || back.Comment != "camera delegation" {
		t.Fatalf("back=%+v", back)
	}

	// Tampering with any field breaks the signature.
	tampered, err := ParseAssertion(strings.Replace(text, "x < 90", "x < 900", 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := tampered.Verify(ring); err == nil {
		t.Fatal("tampered assertion verified")
	}
}

func TestAssertionSignErrors(t *testing.T) {
	admin, _ := NewPrincipal("admin")
	mallory, _ := NewPrincipal("mallory")

	pol := MustAssertion(Policy, "admin", "", "")
	if err := pol.Sign(admin); err == nil {
		t.Fatal("policy signed")
	}
	a := MustAssertion("admin", "x", "", "")
	if err := a.Sign(mallory); err == nil {
		t.Fatal("foreign signer accepted")
	}
	pubOnly := admin.PublicOnly()
	if err := a.Sign(pubOnly); err == nil {
		t.Fatal("signing without private key accepted")
	}
	// Unsigned credential fails verification.
	ring := NewKeyring()
	ring.Add(admin)
	if err := a.Verify(ring); err == nil {
		t.Fatal("unsigned credential verified")
	}
	// Unknown authorizer fails verification.
	b := MustAssertion("stranger", "x", "", "")
	b.Signature = []byte("junk")
	if err := b.Verify(ring); err == nil {
		t.Fatal("unknown authorizer verified")
	}
}

func TestParseAssertionErrors(t *testing.T) {
	bad := []string{
		"licensees: x\n",                           // no authorizer
		"authorizer: a\nauthorizer: b\n",           // duplicate
		"authorizer a\n",                           // no colon... actually "authorizer a" has no colon → error
		"keynote-version: 3\nauthorizer: a\n",      // bad version
		"authorizer: a\nsignature: rsa:abcd\n",     // unsupported alg
		"authorizer: a\nsignature: ed25519:zzzz\n", // bad hex
		"authorizer: a\nlicensees: b &&\n",         // bad expr
	}
	for _, text := range bad {
		if _, err := ParseAssertion(text); err == nil {
			t.Errorf("ParseAssertion(%q): want error", text)
		}
	}
}

// buildChain creates: POLICY → admin → lead → member, each hop
// restricted to the ace domain.
func buildChain(t *testing.T) (*Checker, []*Assertion) {
	t.Helper()
	ring := NewKeyring()
	admin, _ := NewPrincipal("admin")
	lead, _ := NewPrincipal("lead")
	ring.Add(admin)
	ring.Add(lead)

	policy := MustAssertion(Policy, `"admin"`, `app_domain == "ace"`, "root of trust")
	checker, err := NewChecker(ring, policy)
	if err != nil {
		t.Fatal(err)
	}

	c1 := MustAssertion("admin", `"lead"`, `app_domain == "ace" && command != "shutdown"`, "")
	if err := c1.Sign(admin); err != nil {
		t.Fatal(err)
	}
	c2 := MustAssertion("lead", `"member"`, `command == "move" || command == "zoom"`, "")
	if err := c2.Sign(lead); err != nil {
		t.Fatal(err)
	}
	return checker, []*Assertion{c1, c2}
}

func TestComplianceChain(t *testing.T) {
	checker, creds := buildChain(t)

	attrs := Attributes{"app_domain": "ace", "command": "move"}
	if !checker.Allowed([]string{"member"}, creds, attrs) {
		t.Fatal("chain-authorized request denied")
	}
	// Every link's conditions apply: "shutdown" is cut at hop 1,
	// "pan" at hop 2.
	if checker.Allowed([]string{"member"}, creds, Attributes{"app_domain": "ace", "command": "shutdown"}) {
		t.Fatal("shutdown allowed through restricted chain")
	}
	if checker.Allowed([]string{"member"}, creds, Attributes{"app_domain": "ace", "command": "pan"}) {
		t.Fatal("pan allowed through restricted chain")
	}
	// Policy's own condition applies.
	if checker.Allowed([]string{"member"}, creds, Attributes{"app_domain": "other", "command": "move"}) {
		t.Fatal("foreign domain allowed")
	}
	// The intermediate principal is allowed anything but shutdown.
	if !checker.Allowed([]string{"lead"}, creds[:1], Attributes{"app_domain": "ace", "command": "pan"}) {
		t.Fatal("lead denied")
	}
	// A stranger with no credentials is denied.
	if checker.Allowed([]string{"stranger"}, nil, attrs) {
		t.Fatal("stranger allowed")
	}
	// The root principal needs no credentials.
	if !checker.Allowed([]string{"admin"}, nil, attrs) {
		t.Fatal("admin denied")
	}
}

func TestComplianceRejectsForgedCredential(t *testing.T) {
	ring := NewKeyring()
	admin, _ := NewPrincipal("admin")
	ring.Add(admin)
	policy := MustAssertion(Policy, `"admin"`, "", "")
	checker, _ := NewChecker(ring, policy)

	// Mallory forges a credential claiming admin delegated to her.
	mallory, _ := NewPrincipal("mallory")
	forged := MustAssertion("admin", `"mallory"`, "", "")
	forged.Signature = mallory.Sign(forged.canonical())

	res := checker.Query([]string{"mallory"}, []*Assertion{forged}, Attributes{})
	if res.Allowed {
		t.Fatal("forged credential accepted")
	}
	if len(res.Rejected) != 1 {
		t.Fatalf("rejected=%v", res.Rejected)
	}
}

func TestComplianceRejectsPolicyCredential(t *testing.T) {
	ring := NewKeyring()
	policy := MustAssertion(Policy, `"admin"`, "", "")
	checker, _ := NewChecker(ring, policy)
	// A requester presenting a "POLICY" assertion as a credential
	// cannot self-authorize.
	smuggled := MustAssertion(Policy, `"mallory"`, "", "")
	if checker.Allowed([]string{"mallory"}, []*Assertion{smuggled}, Attributes{}) {
		t.Fatal("smuggled policy accepted")
	}
}

func TestNewCheckerRejectsNonPolicy(t *testing.T) {
	ring := NewKeyring()
	notPolicy := MustAssertion("admin", "x", "", "")
	if _, err := NewChecker(ring, notPolicy); err == nil {
		t.Fatal("non-policy accepted as policy")
	}
}

func TestComplianceThresholdDelegation(t *testing.T) {
	// Two-person rule: policy requires 2-of the three officers.
	ring := NewKeyring()
	policy := MustAssertion(Policy, `2-of("alice","bob","carol")`, "", "")
	checker, _ := NewChecker(ring, policy)
	if checker.Allowed([]string{"alice"}, nil, Attributes{}) {
		t.Fatal("single officer allowed")
	}
	if !checker.Allowed([]string{"alice", "carol"}, nil, Attributes{}) {
		t.Fatal("two officers denied")
	}
}

func TestComplianceConjunctiveLicensees(t *testing.T) {
	ring := NewKeyring()
	policy := MustAssertion(Policy, `"alice" && "bob"`, "", "")
	checker, _ := NewChecker(ring, policy)
	if checker.Allowed([]string{"alice"}, nil, Attributes{}) {
		t.Fatal("conjunction satisfied by one")
	}
	if !checker.Allowed([]string{"alice", "bob"}, nil, Attributes{}) {
		t.Fatal("conjunction denied for both")
	}
}

func TestQuickConditionParserNeverPanics(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		if c, err := ParseCondition(src); err == nil {
			c.Eval(Attributes{"x": "1"})
		}
		if l, err := ParseLicensees(src); err == nil {
			l.Eval(func(string) bool { return true })
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSignedAssertionsAlwaysVerify(t *testing.T) {
	admin, _ := NewPrincipal("admin")
	ring := NewKeyring()
	ring.Add(admin)
	f := func(cmd string, x int16) bool {
		cmd = strings.Map(func(r rune) rune {
			if r >= 'a' && r <= 'z' {
				return r
			}
			return 'q'
		}, cmd)
		a, err := NewAssertion("admin", `"user"`, "", "c:"+cmd)
		if err != nil {
			return false
		}
		if err := a.Sign(admin); err != nil {
			return false
		}
		back, err := ParseAssertion(a.Encode())
		if err != nil {
			return false
		}
		return back.Verify(ring) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
