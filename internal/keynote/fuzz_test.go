package keynote

import "testing"

// FuzzParseCondition: conditions that parse must re-parse from their
// source and evaluate without panicking.
func FuzzParseCondition(f *testing.F) {
	for _, s := range []string{
		`app_domain == "ace" && command == "move"`,
		`x < 100 || (y >= 2 && !z)`,
		`true`, `!false`, `a != b`, `hour >= 9 && hour < 17`,
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		c, err := ParseCondition(s)
		if err != nil {
			return
		}
		c.Eval(Attributes{"x": "1", "command": "move"})
		if _, err := ParseCondition(c.Source()); err != nil {
			t.Fatalf("source %q does not re-parse: %v", c.Source(), err)
		}
	})
}

// FuzzParseLicensees mirrors the condition fuzz for licensee
// expressions.
func FuzzParseLicensees(f *testing.F) {
	for _, s := range []string{
		`"alice"`, `alice && bob`, `2-of(a, b, c)`, `(a || b) && c`,
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		l, err := ParseLicensees(s)
		if err != nil {
			return
		}
		l.Eval(func(string) bool { return true })
		l.Principals()
	})
}

// FuzzParseAssertion: assertion texts must parse or fail cleanly, and
// parsed ones must round-trip through Encode.
func FuzzParseAssertion(f *testing.F) {
	f.Add("keynote-version: 2\nauthorizer: admin\nlicensees: \"user\"\nconditions: x < 5\n")
	f.Add("authorizer: POLICY\nlicensees: a || b\n")
	f.Fuzz(func(t *testing.T, s string) {
		a, err := ParseAssertion(s)
		if err != nil {
			return
		}
		back, err := ParseAssertion(a.Encode())
		if err != nil {
			t.Fatalf("encode of parsed assertion does not re-parse: %v", err)
		}
		if back.Authorizer != a.Authorizer {
			t.Fatalf("authorizer changed: %q -> %q", a.Authorizer, back.Authorizer)
		}
	})
}
