package device

import (
	"fmt"
	"sync"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/hier"
)

// ClassPrinter is the hierarchy class of printer devices.
const ClassPrinter = hier.ClassDevice + ".Printer"

// PrintJob is one queued document.
type PrintJob struct {
	ID    int64
	Owner string
	Title string
	Pages int64
}

// Printer is a simulated network printer daemon — the target of the
// §9 task-automation example ("print this out to the nearest
// printer").
type Printer struct {
	*daemon.Daemon

	mu      sync.Mutex
	on      bool
	nextID  int64
	queue   []PrintJob
	printed []PrintJob
}

// NewPrinter constructs a printer daemon.
func NewPrinter(dcfg daemon.Config) *Printer {
	if dcfg.Name == "" {
		dcfg.Name = "printer"
	}
	if dcfg.Class == "" {
		dcfg.Class = ClassPrinter
	}
	p := &Printer{Daemon: daemon.New(dcfg), on: true}
	p.install()
	return p
}

// Queue returns the pending jobs.
func (p *Printer) Queue() []PrintJob {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]PrintJob(nil), p.queue...)
}

// Printed returns the completed jobs.
func (p *Printer) Printed() []PrintJob {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]PrintJob(nil), p.printed...)
}

func (p *Printer) install() {
	p.Handle(cmdlang.CommandSpec{
		Name: "print",
		Doc:  "queue a document",
		Args: []cmdlang.ArgSpec{
			{Name: "owner", Kind: cmdlang.KindWord},
			{Name: "title", Kind: cmdlang.KindString, Required: true},
			{Name: "pages", Kind: cmdlang.KindInt},
		},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		p.mu.Lock()
		defer p.mu.Unlock()
		if !p.on {
			return cmdlang.Fail(cmdlang.CodeUnavailable, "printer is powered off"), nil
		}
		p.nextID++
		job := PrintJob{
			ID:    p.nextID,
			Owner: c.Str("owner", "anonymous"),
			Title: c.Str("title", ""),
			Pages: c.Int("pages", 1),
		}
		p.queue = append(p.queue, job)
		return cmdlang.OK().SetInt("job", job.ID).SetInt("queued", int64(len(p.queue))), nil
	})

	p.Handle(cmdlang.CommandSpec{Name: "processQueue", Doc: "simulate the print engine draining the queue"},
		func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			p.mu.Lock()
			defer p.mu.Unlock()
			n := len(p.queue)
			p.printed = append(p.printed, p.queue...)
			p.queue = nil
			return cmdlang.OK().SetInt("printed", int64(n)), nil
		})

	p.Handle(cmdlang.CommandSpec{
		Name: "power",
		Args: []cmdlang.ArgSpec{{Name: "on", Kind: cmdlang.KindWord, Required: true}},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		on := c.Bool("on", true)
		p.mu.Lock()
		p.on = on
		p.mu.Unlock()
		return nil, nil
	})

	p.Handle(cmdlang.CommandSpec{Name: "queueStatus"},
		func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			p.mu.Lock()
			defer p.mu.Unlock()
			titles := make([]string, len(p.queue))
			for i, j := range p.queue {
				titles[i] = fmt.Sprintf("#%d %s (%s, %dp)", j.ID, j.Title, j.Owner, j.Pages)
			}
			return cmdlang.OK().
				SetInt("queued", int64(len(p.queue))).
				SetInt("printed", int64(len(p.printed))).
				Set("jobs", cmdlang.StringVector(titles...)), nil
		})
}
