// Package device implements ACE-enabled devices (§1.2, Fig 6): PTZ
// cameras (Canon VCC3 and VCC4 models) and projectors (Epson 7350).
// The physical hardware is simulated with kinematic state; the device
// daemons expose exactly the command surface the architecture needs —
// the low-level interface software that makes a device ACE-enabled.
package device

import (
	"fmt"
	"math"
	"sync"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/hier"
)

// PTZModel describes the capabilities of one camera model; the VCC3
// and VCC4 differ in range and zoom, which is what makes their
// daemons distinct leaves of the hierarchy (Fig 6).
type PTZModel struct {
	Name       string
	Class      string
	PanMin     float64 // degrees
	PanMax     float64
	TiltMin    float64
	TiltMax    float64
	ZoomMax    float64 // magnification factor
	FrameRates []int64 // supported capture rates
}

// VCC3 is the Canon VCC3 model envelope.
var VCC3 = PTZModel{
	Name: "VCC3", Class: hier.ClassVCC3,
	PanMin: -90, PanMax: 90, TiltMin: -25, TiltMax: 25,
	ZoomMax: 10, FrameRates: []int64{5, 15, 30},
}

// VCC4 is the Canon VCC4 model envelope: wider sweep, longer zoom.
var VCC4 = PTZModel{
	Name: "VCC4", Class: hier.ClassVCC4,
	PanMin: -100, PanMax: 100, TiltMin: -30, TiltMax: 90,
	ZoomMax: 16, FrameRates: []int64{5, 15, 30, 60},
}

// PTZState is a camera's controllable state (the right-hand pane of
// the Fig 2 GUI).
type PTZState struct {
	On        bool
	Pan       float64 // degrees
	Tilt      float64
	Zoom      float64
	FrameRate int64
	ResX      int64
	ResY      int64
}

// PTZCamera is a camera device daemon.
type PTZCamera struct {
	*daemon.Daemon
	model PTZModel

	mu    sync.Mutex
	state PTZState
	// pos is the camera's mount position in room coordinates, used
	// by pointAt.
	pos [3]float64
}

// NewPTZCamera constructs a camera daemon for the given model.
func NewPTZCamera(dcfg daemon.Config, model PTZModel) *PTZCamera {
	if dcfg.Name == "" {
		dcfg.Name = "ptz_" + model.Name
	}
	if dcfg.Class == "" {
		dcfg.Class = model.Class
	}
	c := &PTZCamera{
		Daemon: daemon.New(dcfg),
		model:  model,
		state:  PTZState{Zoom: 1, FrameRate: model.FrameRates[0], ResX: 640, ResY: 480},
	}
	c.install()
	return c
}

// Model returns the camera's model envelope.
func (c *PTZCamera) Model() PTZModel { return c.model }

// State snapshots the camera state.
func (c *PTZCamera) State() PTZState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// SetMountPosition places the camera in its room's coordinate system.
func (c *PTZCamera) SetMountPosition(x, y, z float64) {
	c.mu.Lock()
	c.pos = [3]float64{x, y, z}
	c.mu.Unlock()
}

func clamp(v, lo, hi float64) float64 { return math.Max(lo, math.Min(hi, v)) }

func (c *PTZCamera) stateReply() *cmdlang.CmdLine {
	st := c.State()
	return cmdlang.OK().
		SetBool("on", st.On).
		SetFloat("pan", st.Pan).
		SetFloat("tilt", st.Tilt).
		SetFloat("zoom", st.Zoom).
		SetInt("rate", st.FrameRate).
		Set("resolution", cmdlang.IntVector(st.ResX, st.ResY)).
		SetWord("model", c.model.Name)
}

func (c *PTZCamera) install() {
	c.Handle(cmdlang.CommandSpec{
		Name: "power",
		Args: []cmdlang.ArgSpec{{Name: "on", Kind: cmdlang.KindWord, Required: true}},
	}, func(_ *daemon.Ctx, cl *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		on := cl.Bool("on", false)
		c.mu.Lock()
		c.state.On = on
		c.mu.Unlock()
		return nil, nil
	})

	c.Handle(cmdlang.CommandSpec{
		Name: "move",
		Doc:  "point the camera (pan/tilt degrees, clamped to the model envelope)",
		Args: []cmdlang.ArgSpec{
			{Name: "pan", Kind: cmdlang.KindFloat, Required: true},
			{Name: "tilt", Kind: cmdlang.KindFloat, Required: true},
		},
	}, func(_ *daemon.Ctx, cl *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		c.mu.Lock()
		defer c.mu.Unlock()
		if !c.state.On {
			return cmdlang.Fail(cmdlang.CodeUnavailable, "camera is powered off"), nil
		}
		c.state.Pan = clamp(cl.Float("pan", 0), c.model.PanMin, c.model.PanMax)
		c.state.Tilt = clamp(cl.Float("tilt", 0), c.model.TiltMin, c.model.TiltMax)
		return cmdlang.OK().SetFloat("pan", c.state.Pan).SetFloat("tilt", c.state.Tilt), nil
	})

	c.Handle(cmdlang.CommandSpec{
		Name: "zoom",
		Args: []cmdlang.ArgSpec{{Name: "factor", Kind: cmdlang.KindFloat, Required: true}},
	}, func(_ *daemon.Ctx, cl *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		c.mu.Lock()
		defer c.mu.Unlock()
		if !c.state.On {
			return cmdlang.Fail(cmdlang.CodeUnavailable, "camera is powered off"), nil
		}
		c.state.Zoom = clamp(cl.Float("factor", 1), 1, c.model.ZoomMax)
		return cmdlang.OK().SetFloat("zoom", c.state.Zoom), nil
	})

	c.Handle(cmdlang.CommandSpec{
		Name: "capture",
		Doc:  "set frame rate and resolution",
		Args: []cmdlang.ArgSpec{
			{Name: "rate", Kind: cmdlang.KindInt},
			{Name: "resolution", Kind: cmdlang.KindVector},
		},
	}, func(_ *daemon.Ctx, cl *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		c.mu.Lock()
		defer c.mu.Unlock()
		if rate := cl.Int("rate", 0); rate > 0 {
			ok := false
			for _, r := range c.model.FrameRates {
				if r == rate {
					ok = true
				}
			}
			if !ok {
				return nil, &cmdlang.SemanticError{Command: "capture",
					Msg: fmt.Sprintf("rate %d unsupported by %s", rate, c.model.Name)}
			}
			c.state.FrameRate = rate
		}
		if res := cl.Vector("resolution"); len(res) == 2 {
			x, _ := res[0].AsInt()
			y, _ := res[1].AsInt()
			if x > 0 && y > 0 {
				c.state.ResX, c.state.ResY = x, y
			}
		}
		return nil, nil
	})

	c.Handle(cmdlang.CommandSpec{
		Name: "pointAt",
		Doc:  "aim at a 3-D room coordinate (requires spatial awareness, §4.11)",
		Args: []cmdlang.ArgSpec{{Name: "target", Kind: cmdlang.KindVector, Required: true}},
	}, func(_ *daemon.Ctx, cl *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		tv := cl.Vector("target")
		if len(tv) != 3 {
			return nil, &cmdlang.SemanticError{Command: "pointAt", Msg: "target must be {x,y,z}"}
		}
		var tgt [3]float64
		for i, v := range tv {
			tgt[i], _ = v.AsFloat()
		}
		c.mu.Lock()
		defer c.mu.Unlock()
		if !c.state.On {
			return cmdlang.Fail(cmdlang.CodeUnavailable, "camera is powered off"), nil
		}
		dx, dy, dz := tgt[0]-c.pos[0], tgt[1]-c.pos[1], tgt[2]-c.pos[2]
		pan := math.Atan2(dy, dx) * 180 / math.Pi
		tilt := math.Atan2(dz, math.Hypot(dx, dy)) * 180 / math.Pi
		c.state.Pan = clamp(pan, c.model.PanMin, c.model.PanMax)
		c.state.Tilt = clamp(tilt, c.model.TiltMin, c.model.TiltMax)
		reachable := c.state.Pan == pan && c.state.Tilt == tilt
		return cmdlang.OK().
			SetFloat("pan", c.state.Pan).
			SetFloat("tilt", c.state.Tilt).
			SetBool("reachable", reachable), nil
	})

	c.Handle(cmdlang.CommandSpec{Name: "status"},
		func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			return c.stateReply(), nil
		})
}

// ProjectorState is a projector's controllable state.
type ProjectorState struct {
	On         bool
	Input      string // routed source, e.g. "workspace_john" or "camera:ptz1"
	PIP        string // picture-in-picture source (Scenario 5)
	Brightness int64  // percent
}

// Projector is an Epson 7350 projector daemon.
type Projector struct {
	*daemon.Daemon
	mu    sync.Mutex
	state ProjectorState
}

// NewProjector constructs a projector daemon.
func NewProjector(dcfg daemon.Config) *Projector {
	if dcfg.Name == "" {
		dcfg.Name = "projector"
	}
	if dcfg.Class == "" {
		dcfg.Class = hier.ClassEpson7350
	}
	p := &Projector{Daemon: daemon.New(dcfg), state: ProjectorState{Brightness: 80}}
	p.install()
	return p
}

// State snapshots the projector state.
func (p *Projector) State() ProjectorState {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state
}

func (p *Projector) install() {
	p.Handle(cmdlang.CommandSpec{
		Name: "power",
		Args: []cmdlang.ArgSpec{{Name: "on", Kind: cmdlang.KindWord, Required: true}},
	}, func(_ *daemon.Ctx, cl *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		on := cl.Bool("on", false)
		p.mu.Lock()
		p.state.On = on
		if !on {
			p.state.Input, p.state.PIP = "", ""
		}
		p.mu.Unlock()
		return nil, nil
	})

	p.Handle(cmdlang.CommandSpec{
		Name: "display",
		Doc:  "route a source to the screen (Scenario 5: output the workspace)",
		Args: []cmdlang.ArgSpec{{Name: "source", Kind: cmdlang.KindString, Required: true}},
	}, func(_ *daemon.Ctx, cl *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		p.mu.Lock()
		defer p.mu.Unlock()
		if !p.state.On {
			return cmdlang.Fail(cmdlang.CodeUnavailable, "projector is powered off"), nil
		}
		p.state.Input = cl.Str("source", "")
		return nil, nil
	})

	p.Handle(cmdlang.CommandSpec{
		Name: "pip",
		Doc:  "picture-in-picture a second source (Scenario 5: camera over slides)",
		Args: []cmdlang.ArgSpec{{Name: "source", Kind: cmdlang.KindString, Required: true}},
	}, func(_ *daemon.Ctx, cl *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		p.mu.Lock()
		defer p.mu.Unlock()
		if !p.state.On {
			return cmdlang.Fail(cmdlang.CodeUnavailable, "projector is powered off"), nil
		}
		if p.state.Input == "" {
			return cmdlang.Fail(cmdlang.CodeConflict, "no main source routed"), nil
		}
		p.state.PIP = cl.Str("source", "")
		return nil, nil
	})

	p.Handle(cmdlang.CommandSpec{
		Name: "brightness",
		Args: []cmdlang.ArgSpec{{Name: "percent", Kind: cmdlang.KindInt, Required: true}},
	}, func(_ *daemon.Ctx, cl *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		pct := cl.Int("percent", 80)
		if pct < 0 || pct > 100 {
			return nil, &cmdlang.SemanticError{Command: "brightness", Msg: "percent must be 0..100"}
		}
		p.mu.Lock()
		p.state.Brightness = pct
		p.mu.Unlock()
		return nil, nil
	})

	p.Handle(cmdlang.CommandSpec{Name: "status"},
		func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			st := p.State()
			r := cmdlang.OK().SetBool("on", st.On).SetInt("brightness", st.Brightness)
			if st.Input != "" {
				r.SetString("input", st.Input)
			}
			if st.PIP != "" {
				r.SetString("pip", st.PIP)
			}
			return r, nil
		})
}
