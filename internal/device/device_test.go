package device

import (
	"math"
	"testing"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
)

func startCamera(t *testing.T, model PTZModel) (*PTZCamera, *daemon.Pool) {
	t.Helper()
	c := NewPTZCamera(daemon.Config{}, model)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	pool := daemon.NewPool(nil)
	t.Cleanup(pool.Close)
	return c, pool
}

func TestCameraPowerGate(t *testing.T) {
	c, pool := startCamera(t, VCC3)
	// Moving while off is refused.
	_, err := pool.Call(c.Addr(), cmdlang.New("move").SetFloat("pan", 10).SetFloat("tilt", 5))
	if !cmdlang.IsRemoteCode(err, cmdlang.CodeUnavailable) {
		t.Fatalf("err=%v", err)
	}
	if _, err := pool.Call(c.Addr(), cmdlang.New("power").SetBool("on", true)); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Call(c.Addr(), cmdlang.New("move").SetFloat("pan", 10).SetFloat("tilt", 5)); err != nil {
		t.Fatal(err)
	}
	st := c.State()
	if st.Pan != 10 || st.Tilt != 5 {
		t.Fatalf("state=%+v", st)
	}
}

func TestCameraEnvelopeClamping(t *testing.T) {
	c, pool := startCamera(t, VCC3)
	pool.Call(c.Addr(), cmdlang.New("power").SetBool("on", true)) //nolint:errcheck
	reply, err := pool.Call(c.Addr(), cmdlang.New("move").SetFloat("pan", 500).SetFloat("tilt", -500))
	if err != nil {
		t.Fatal(err)
	}
	if reply.Float("pan", 0) != VCC3.PanMax || reply.Float("tilt", 0) != VCC3.TiltMin {
		t.Fatalf("reply=%v", reply)
	}
	// VCC4 has a wider envelope than VCC3.
	c4, pool4 := startCamera(t, VCC4)
	pool4.Call(c4.Addr(), cmdlang.New("power").SetBool("on", true)) //nolint:errcheck
	reply4, err := pool4.Call(c4.Addr(), cmdlang.New("move").SetFloat("pan", 95).SetFloat("tilt", 60))
	if err != nil {
		t.Fatal(err)
	}
	if reply4.Float("pan", 0) != 95 || reply4.Float("tilt", 0) != 60 {
		t.Fatalf("VCC4 clamped a legal move: %v", reply4)
	}
}

func TestCameraZoomAndCapture(t *testing.T) {
	c, pool := startCamera(t, VCC4)
	pool.Call(c.Addr(), cmdlang.New("power").SetBool("on", true)) //nolint:errcheck
	reply, err := pool.Call(c.Addr(), cmdlang.New("zoom").SetFloat("factor", 99))
	if err != nil {
		t.Fatal(err)
	}
	if reply.Float("zoom", 0) != VCC4.ZoomMax {
		t.Fatalf("zoom=%v", reply)
	}
	// Supported frame rate accepted; unsupported rejected.
	if _, err := pool.Call(c.Addr(), cmdlang.New("capture").SetInt("rate", 60).
		Set("resolution", cmdlang.IntVector(1024, 768))); err != nil {
		t.Fatal(err)
	}
	st := c.State()
	if st.FrameRate != 60 || st.ResX != 1024 {
		t.Fatalf("state=%+v", st)
	}
	_, err = pool.Call(c.Addr(), cmdlang.New("capture").SetInt("rate", 23))
	if !cmdlang.IsRemoteCode(err, cmdlang.CodeBadArgument) {
		t.Fatalf("err=%v", err)
	}
	// VCC3 lacks 60fps.
	c3, pool3 := startCamera(t, VCC3)
	if _, err := pool3.Call(c3.Addr(), cmdlang.New("capture").SetInt("rate", 60)); err == nil {
		t.Fatal("VCC3 accepted 60fps")
	}
}

func TestCameraPointAt(t *testing.T) {
	c, pool := startCamera(t, VCC4)
	c.SetMountPosition(0, 0, 2)
	pool.Call(c.Addr(), cmdlang.New("power").SetBool("on", true)) //nolint:errcheck

	// Target straight "east" at mount height: pan 0 (atan2(0,5)=0),
	// tilt 0.
	reply, err := pool.Call(c.Addr(), cmdlang.New("pointAt").
		Set("target", cmdlang.FloatVector(5, 0, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(reply.Float("pan", 99)) > 1e-9 || math.Abs(reply.Float("tilt", 99)) > 1e-9 {
		t.Fatalf("reply=%v", reply)
	}
	if !reply.Bool("reachable", false) {
		t.Fatal("straight-ahead target unreachable")
	}

	// Target north: pan 90.
	reply, _ = pool.Call(c.Addr(), cmdlang.New("pointAt").Set("target", cmdlang.FloatVector(0, 5, 2)))
	if math.Abs(reply.Float("pan", 0)-90) > 1e-9 {
		t.Fatalf("pan=%v", reply.Float("pan", 0))
	}

	// Target directly below a VCC3 (tilt -90) is out of envelope.
	c3, pool3 := startCamera(t, VCC3)
	c3.SetMountPosition(0, 0, 3)
	pool3.Call(c3.Addr(), cmdlang.New("power").SetBool("on", true)) //nolint:errcheck
	reply, err = pool3.Call(c3.Addr(), cmdlang.New("pointAt").Set("target", cmdlang.FloatVector(0, 0, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if reply.Bool("reachable", true) {
		t.Fatal("floor target should be unreachable for VCC3 tilt envelope")
	}
	if reply.Float("tilt", 0) != VCC3.TiltMin {
		t.Fatalf("tilt=%v", reply.Float("tilt", 0))
	}
}

func TestProjectorScenario5(t *testing.T) {
	p := NewProjector(daemon.Config{})
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Stop)
	pool := daemon.NewPool(nil)
	defer pool.Close()

	// Display while off refused; PIP before main source refused.
	_, err := pool.Call(p.Addr(), cmdlang.New("display").SetString("source", "workspace_john"))
	if !cmdlang.IsRemoteCode(err, cmdlang.CodeUnavailable) {
		t.Fatalf("err=%v", err)
	}
	pool.Call(p.Addr(), cmdlang.New("power").SetBool("on", true)) //nolint:errcheck
	_, err = pool.Call(p.Addr(), cmdlang.New("pip").SetString("source", "camera:ptz1"))
	if !cmdlang.IsRemoteCode(err, cmdlang.CodeConflict) {
		t.Fatalf("err=%v", err)
	}

	// John turns the projector on, outputs the workspace, PIPs the
	// camera.
	if _, err := pool.Call(p.Addr(), cmdlang.New("display").SetString("source", "workspace_john")); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Call(p.Addr(), cmdlang.New("pip").SetString("source", "camera:ptz1")); err != nil {
		t.Fatal(err)
	}
	st := p.State()
	if st.Input != "workspace_john" || st.PIP != "camera:ptz1" {
		t.Fatalf("state=%+v", st)
	}

	// Brightness bounds.
	if _, err := pool.Call(p.Addr(), cmdlang.New("brightness").SetInt("percent", 101)); err == nil {
		t.Fatal("out-of-range brightness accepted")
	}
	if _, err := pool.Call(p.Addr(), cmdlang.New("brightness").SetInt("percent", 40)); err != nil {
		t.Fatal(err)
	}

	// Power off clears routing.
	pool.Call(p.Addr(), cmdlang.New("power").SetBool("on", false)) //nolint:errcheck
	if st := p.State(); st.Input != "" || st.PIP != "" {
		t.Fatalf("routing survives power-off: %+v", st)
	}

	status, err := pool.Call(p.Addr(), cmdlang.New("status"))
	if err != nil {
		t.Fatal(err)
	}
	if status.Bool("on", true) {
		t.Fatalf("status=%v", status)
	}
}

func TestCameraStatusReportsModel(t *testing.T) {
	c, pool := startCamera(t, VCC4)
	st, err := pool.Call(c.Addr(), cmdlang.New("status"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Str("model", "") != "VCC4" {
		t.Fatalf("status=%v", st)
	}
	res := st.Vector("resolution")
	if len(res) != 2 {
		t.Fatalf("resolution=%v", res)
	}
}
