// Package hier models the ACE service daemon hierarchy (§2.3, Fig 6):
// a tree of service classes rooted at "Service", in which child
// classes inherit the command semantics and behaviour of their
// parents. Classes are written as dotted paths from the root, e.g.
// "Service.Device.PTZCamera.VCC4".
package hier

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Root is the class every ACE service descends from.
const Root = "Service"

// Standard classes from Fig 6 of the report.
const (
	ClassDatabase         = "Service.Database"
	ClassDevice           = "Service.Device"
	ClassServiceDirectory = "Service.ServiceDirectory"
	ClassAuthentication   = "Service.Authentication"
	ClassPTZCamera        = "Service.Device.PTZCamera"
	ClassVCC3             = "Service.Device.PTZCamera.VCC3"
	ClassVCC4             = "Service.Device.PTZCamera.VCC4"
	ClassProjector        = "Service.Device.Projector"
	ClassEpson7350        = "Service.Device.Projector.Epson7350"
)

// Valid reports whether class is a well-formed dotted path rooted at
// "Service" with non-empty word segments.
func Valid(class string) bool {
	if class == "" {
		return false
	}
	segs := strings.Split(class, ".")
	if segs[0] != Root {
		return false
	}
	for _, s := range segs {
		if s == "" {
			return false
		}
		for i := 0; i < len(s); i++ {
			c := s[i]
			ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
			if !ok {
				return false
			}
		}
	}
	return true
}

// Parent returns the parent class of class, or "" for the root.
func Parent(class string) string {
	i := strings.LastIndexByte(class, '.')
	if i < 0 {
		return ""
	}
	return class[:i]
}

// Depth returns the number of segments in the class path.
func Depth(class string) int {
	if class == "" {
		return 0
	}
	return strings.Count(class, ".") + 1
}

// Leaf returns the final segment of the class path.
func Leaf(class string) string {
	i := strings.LastIndexByte(class, '.')
	return class[i+1:]
}

// IsSubclassOf reports whether child is parent or a descendant of
// parent. Every valid class is a subclass of "Service".
func IsSubclassOf(child, parent string) bool {
	if child == parent {
		return true
	}
	return strings.HasPrefix(child, parent+".")
}

// Ancestors returns the chain from the root down to class itself.
func Ancestors(class string) []string {
	segs := strings.Split(class, ".")
	out := make([]string, len(segs))
	for i := range segs {
		out[i] = strings.Join(segs[:i+1], ".")
	}
	return out
}

// Tree is a registry of known service classes. Registering a class
// implicitly registers its ancestors, so the tree always stays
// connected. Tree is safe for concurrent use.
type Tree struct {
	mu      sync.RWMutex
	classes map[string]bool
}

// NewTree returns a tree pre-seeded with the Fig 6 standard classes.
func NewTree() *Tree {
	t := &Tree{classes: make(map[string]bool)}
	for _, c := range []string{
		Root, ClassDatabase, ClassDevice, ClassServiceDirectory,
		ClassAuthentication, ClassPTZCamera, ClassVCC3, ClassVCC4,
		ClassProjector, ClassEpson7350,
	} {
		t.classes[c] = true
	}
	return t
}

// Register adds a class (and its ancestors). It returns an error for
// malformed class paths.
func (t *Tree) Register(class string) error {
	if !Valid(class) {
		return fmt.Errorf("hier: invalid class %q", class)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, a := range Ancestors(class) {
		t.classes[a] = true
	}
	return nil
}

// Known reports whether the class has been registered.
func (t *Tree) Known(class string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.classes[class]
}

// Children returns the direct children of class, sorted.
func (t *Tree) Children(class string) []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []string
	for c := range t.classes {
		if Parent(c) == class {
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}

// All returns every registered class, sorted.
func (t *Tree) All() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.classes))
	for c := range t.classes {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Describe renders an indented tree rooted at "Service", as the
// acectl service browser shows it (Fig 2's left pane).
func (t *Tree) Describe() string {
	var b strings.Builder
	var walk func(class string, depth int)
	walk = func(class string, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(Leaf(class))
		b.WriteByte('\n')
		for _, c := range t.Children(class) {
			walk(c, depth+1)
		}
	}
	walk(Root, 0)
	return b.String()
}
