package hier

import (
	"strings"
	"testing"
)

func TestValid(t *testing.T) {
	good := []string{Root, ClassDevice, ClassVCC4, "Service.X_1.y2"}
	bad := []string{"", "Device", "Service.", ".Service", "Service..X", "Service.a-b", "service"}
	for _, c := range good {
		if !Valid(c) {
			t.Errorf("Valid(%q)=false", c)
		}
	}
	for _, c := range bad {
		if Valid(c) {
			t.Errorf("Valid(%q)=true", c)
		}
	}
}

func TestParentDepthLeaf(t *testing.T) {
	if Parent(ClassVCC4) != ClassPTZCamera {
		t.Fatal("parent")
	}
	if Parent(Root) != "" {
		t.Fatal("root parent")
	}
	if Depth(ClassVCC4) != 4 || Depth(Root) != 1 || Depth("") != 0 {
		t.Fatal("depth")
	}
	if Leaf(ClassVCC4) != "VCC4" || Leaf(Root) != "Service" {
		t.Fatal("leaf")
	}
}

func TestIsSubclassOf(t *testing.T) {
	cases := []struct {
		child, parent string
		want          bool
	}{
		{ClassVCC4, ClassPTZCamera, true},
		{ClassVCC4, ClassDevice, true},
		{ClassVCC4, Root, true},
		{ClassVCC4, ClassVCC4, true},
		{ClassPTZCamera, ClassVCC4, false},
		{ClassProjector, ClassPTZCamera, false},
		// Prefix must respect segment boundaries.
		{"Service.DeviceX", ClassDevice, false},
	}
	for _, tc := range cases {
		if got := IsSubclassOf(tc.child, tc.parent); got != tc.want {
			t.Errorf("IsSubclassOf(%q,%q)=%v want %v", tc.child, tc.parent, got, tc.want)
		}
	}
}

func TestAncestors(t *testing.T) {
	got := Ancestors(ClassVCC3)
	want := []string{Root, ClassDevice, ClassPTZCamera, ClassVCC3}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestTreeRegisterImplicitAncestors(t *testing.T) {
	tr := NewTree()
	if err := tr.Register("Service.Media.Audio.Mixer"); err != nil {
		t.Fatal(err)
	}
	for _, c := range []string{"Service.Media", "Service.Media.Audio", "Service.Media.Audio.Mixer"} {
		if !tr.Known(c) {
			t.Errorf("Known(%q)=false", c)
		}
	}
	if err := tr.Register("NotService.X"); err == nil {
		t.Fatal("invalid class accepted")
	}
}

func TestTreeChildrenAndDescribe(t *testing.T) {
	tr := NewTree()
	kids := tr.Children(ClassPTZCamera)
	if len(kids) != 2 || kids[0] != ClassVCC3 || kids[1] != ClassVCC4 {
		t.Fatalf("children=%v", kids)
	}
	d := tr.Describe()
	for _, want := range []string{"Service\n", "  Device\n", "    PTZCamera\n", "      VCC4\n"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe missing %q:\n%s", want, d)
		}
	}
	if len(tr.All()) < 9 {
		t.Fatalf("All()=%v", tr.All())
	}
}
