// Package authdb implements the ACE Authorization Database Service
// (§4.10) and the daemon-side KeyNote authorization gate (§3.2, Fig
// 10). The database stores user and service authorization assertions;
// ACE services consult it when a client attempts a command, pass the
// retrieved credentials to the KeyNote compliance checker, and
// execute or refuse accordingly.
package authdb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/hier"
	"ace/internal/keynote"
)

// ServiceName is the conventional instance name of the authorization
// database daemon.
const ServiceName = "authdb"

// Store holds credential assertions indexed by the principals they
// license, supporting chain retrieval: fetching credentials "for" a
// principal returns everything needed to build a delegation chain up
// toward policy.
type Store struct {
	mu sync.RWMutex
	// byLicensee maps principal name → credentials licensing it.
	byLicensee map[string][]*keynote.Assertion
	count      int
}

// NewStore returns an empty credential store.
func NewStore() *Store {
	return &Store{byLicensee: make(map[string][]*keynote.Assertion)}
}

// Add inserts a credential assertion. Policy assertions are rejected:
// policy lives with each verifying service, not in the database.
func (s *Store) Add(a *keynote.Assertion) error {
	if a.IsPolicy() {
		return fmt.Errorf("authdb: refusing to store a POLICY assertion")
	}
	principals := a.Licensees.Principals()
	if len(principals) == 0 {
		return fmt.Errorf("authdb: credential licenses nobody")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range principals {
		s.byLicensee[p] = append(s.byLicensee[p], a)
	}
	s.count++
	return nil
}

// CredentialsFor returns the transitive credential set relevant to
// the principal: credentials licensing it, plus credentials licensing
// those credentials' authorizers, and so on (Fig 10 step 3: "looks up
// the necessary information").
func (s *Store) CredentialsFor(principal string) []*keynote.Assertion {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := map[*keynote.Assertion]bool{}
	visited := map[string]bool{}
	var out []*keynote.Assertion
	frontier := []string{principal}
	for len(frontier) > 0 {
		p := frontier[0]
		frontier = frontier[1:]
		if visited[p] {
			continue
		}
		visited[p] = true
		for _, a := range s.byLicensee[p] {
			if seen[a] {
				continue
			}
			seen[a] = true
			out = append(out, a)
			frontier = append(frontier, a.Authorizer)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Encode() < out[j].Encode() })
	return out
}

// Len returns the number of stored credentials.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

// Service is the authorization database wrapped as an ACE daemon.
type Service struct {
	*daemon.Daemon
	store *Store
}

// New constructs the authorization database daemon.
func New(dcfg daemon.Config, store *Store) *Service {
	if store == nil {
		store = NewStore()
	}
	if dcfg.Name == "" {
		dcfg.Name = ServiceName
	}
	if dcfg.Class == "" {
		dcfg.Class = hier.ClassAuthentication + ".AuthorizationDatabase"
	}
	s := &Service{Daemon: daemon.New(dcfg), store: store}
	s.install()
	return s
}

// Store exposes the underlying credential store.
func (s *Service) Store() *Store { return s.store }

func (s *Service) install() {
	s.Handle(cmdlang.CommandSpec{
		Name: "addCredential",
		Doc:  "store a signed credential assertion (RFC 2704 text form)",
		Args: []cmdlang.ArgSpec{{Name: "text", Kind: cmdlang.KindString, Required: true}},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		a, err := keynote.ParseAssertion(c.Str("text", ""))
		if err != nil {
			return nil, err
		}
		if err := s.store.Add(a); err != nil {
			return nil, err
		}
		return cmdlang.OK().SetInt("stored", int64(s.store.Len())), nil
	})

	s.Handle(cmdlang.CommandSpec{
		Name: "credentialsFor",
		Doc:  "retrieve the credential chain relevant to a principal (Fig 10 steps 2-4)",
		Args: []cmdlang.ArgSpec{{Name: "principal", Kind: cmdlang.KindWord, Required: true}},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		creds := s.store.CredentialsFor(c.Str("principal", ""))
		texts := make([]string, len(creds))
		for i, a := range creds {
			texts[i] = a.Encode()
		}
		return cmdlang.OK().SetInt("count", int64(len(creds))).Set("credentials", cmdlang.StringVector(texts...)), nil
	})
}

// AttributesFromCmd builds the KeyNote action attribute set for a
// command attempt: the domain, the executing service, the requesting
// principal, the command name, and every scalar argument value.
func AttributesFromCmd(service, principal string, cmd *cmdlang.CmdLine) keynote.Attributes {
	attrs := keynote.Attributes{
		"app_domain": "ace",
		"service":    service,
		"principal":  principal,
		"command":    cmd.Name(),
	}
	for _, a := range cmd.Args() {
		switch a.Value.Kind() {
		case cmdlang.KindInt, cmdlang.KindFloat, cmdlang.KindWord, cmdlang.KindString:
			attrs["arg_"+a.Name] = a.Value.AsString()
		}
	}
	return attrs
}

// Authorizer is the per-daemon authorization gate of Fig 10: on every
// gated command it retrieves the client's credentials from the
// authorization database service, runs the local KeyNote compliance
// checker, and allows or refuses the command.
//
// Besides the command attributes, the gate contributes environmental
// attributes ("hour", "weekday", "calls") so credentials can express
// the §3.2 restrictions on *when* and *how much* a service may be
// used, e.g. `command == "move" && hour >= 8 && hour < 18` or
// `calls < 1000`.
type Authorizer struct {
	// Pool dials the database (usually the daemon's own pool).
	Pool *daemon.Pool
	// AuthDBAddr is the authorization database daemon. Empty disables
	// remote retrieval (only cached/preloaded credentials are used).
	AuthDBAddr string
	// Checker holds this service's locally trusted policy.
	Checker *keynote.Checker
	// Service is the name reported in action attributes.
	Service string
	// CacheSize bounds the per-principal credential cache (0 = no
	// caching; every command refetches, as the literal Fig 10 flow).
	CacheSize int
	// Now supplies the clock for time-of-day attributes (time.Now
	// when nil).
	Now func() time.Time

	mu    sync.Mutex
	cache map[string][]*keynote.Assertion
	calls map[string]int64 // per-principal gated-command counter

	fetches int64
	hits    int64
}

var _ daemon.Authorizer = (*Authorizer)(nil)

// Authorize implements daemon.Authorizer.
func (a *Authorizer) Authorize(principal string, cmd *cmdlang.CmdLine) error {
	creds, err := a.credentials(principal)
	if err != nil {
		return fmt.Errorf("authorization database unavailable: %w", err)
	}
	attrs := AttributesFromCmd(a.Service, principal, cmd)

	// Environmental attributes for time- and usage-based conditions.
	now := time.Now
	if a.Now != nil {
		now = a.Now
	}
	t := now()
	attrs["hour"] = fmt.Sprint(t.Hour())
	attrs["weekday"] = fmt.Sprint(int(t.Weekday()))
	a.mu.Lock()
	if a.calls == nil {
		a.calls = make(map[string]int64)
	}
	attrs["calls"] = fmt.Sprint(a.calls[principal])
	a.mu.Unlock()

	if !a.Checker.Allowed([]string{principal}, creds, attrs) {
		return fmt.Errorf("principal %q lacks credentials for %q on %q", principal, cmd.Name(), a.Service)
	}
	a.mu.Lock()
	a.calls[principal]++
	a.mu.Unlock()
	return nil
}

func (a *Authorizer) credentials(principal string) ([]*keynote.Assertion, error) {
	if a.CacheSize > 0 {
		a.mu.Lock()
		if creds, ok := a.cache[principal]; ok {
			a.hits++
			a.mu.Unlock()
			return creds, nil
		}
		a.mu.Unlock()
	}
	if a.AuthDBAddr == "" {
		return nil, nil
	}
	reply, err := a.Pool.Call(a.AuthDBAddr, cmdlang.New("credentialsFor").SetWord("principal", principal))
	if err != nil {
		return nil, err
	}
	var creds []*keynote.Assertion
	for _, text := range reply.Strings("credentials") {
		cred, perr := keynote.ParseAssertion(text)
		if perr != nil {
			continue // unverifiable text is simply not a usable credential
		}
		creds = append(creds, cred)
	}
	a.mu.Lock()
	a.fetches++
	if a.CacheSize > 0 {
		if a.cache == nil {
			a.cache = make(map[string][]*keynote.Assertion)
		}
		if len(a.cache) >= a.CacheSize {
			// Simple full flush keeps the cache bounded without an
			// eviction list; credential sets are tiny.
			a.cache = make(map[string][]*keynote.Assertion)
		}
		a.cache[principal] = creds
	}
	a.mu.Unlock()
	return creds, nil
}

// Invalidate drops the cached credentials for a principal (e.g. after
// revocation).
func (a *Authorizer) Invalidate(principal string) {
	a.mu.Lock()
	delete(a.cache, principal)
	a.mu.Unlock()
}

// CacheStats reports fetches from the database and cache hits.
func (a *Authorizer) CacheStats() (fetches, hits int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.fetches, a.hits
}

// EncodeCredential is a helper to render a signed assertion for the
// addCredential command.
func EncodeCredential(a *keynote.Assertion) string { return strings.TrimSpace(a.Encode()) }
