package authdb

import (
	"testing"
	"time"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/keynote"
	"ace/internal/wire"
)

type testCA struct{ ca *wire.CA }

func newTestCA() (*testCA, error) {
	ca, err := wire.NewCA("authtest")
	if err != nil {
		return nil, err
	}
	return &testCA{ca: ca}, nil
}

func (t *testCA) transport(name string) (*wire.Transport, error) {
	return wire.NewTransport(t.ca, name)
}

func TestStoreChainRetrieval(t *testing.T) {
	s := NewStore()
	admin, _ := keynote.NewPrincipal("admin")
	lead, _ := keynote.NewPrincipal("lead")

	c1 := keynote.MustAssertion("admin", `"lead"`, "", "")
	c1.Sign(admin) //nolint:errcheck
	c2 := keynote.MustAssertion("lead", `"member"`, "", "")
	c2.Sign(lead) //nolint:errcheck
	unrelated := keynote.MustAssertion("admin", `"someone_else"`, "", "")
	unrelated.Sign(admin) //nolint:errcheck

	for _, a := range []*keynote.Assertion{c1, c2, unrelated} {
		if err := s.Add(a); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("len=%d", s.Len())
	}

	// Fetching for "member" returns the whole chain (c2 licensing
	// member, plus c1 licensing c2's authorizer) but not the
	// unrelated credential.
	creds := s.CredentialsFor("member")
	if len(creds) != 2 {
		t.Fatalf("creds=%d", len(creds))
	}
	if got := s.CredentialsFor("nobody"); len(got) != 0 {
		t.Fatalf("nobody creds=%d", len(got))
	}
}

func TestStoreRejects(t *testing.T) {
	s := NewStore()
	if err := s.Add(keynote.MustAssertion(keynote.Policy, "x", "", "")); err == nil {
		t.Fatal("policy stored")
	}
	if err := s.Add(keynote.MustAssertion("a", "", "", "")); err == nil {
		t.Fatal("licensee-less credential stored")
	}
}

// buildEnv wires the Fig 10 participants: an authdb, a protected
// service with a KeyNote gate, and signed credentials, all over TLS
// so the client principal comes from the certificate.
func buildEnv(t *testing.T, cacheSize int) (target *daemon.Daemon, pool *daemon.Pool, auth *Authorizer) {
	t.Helper()

	admin, _ := keynote.NewPrincipal("admin")
	ring := keynote.NewKeyring()
	ring.Add(admin)

	// Credential: admin lets john_doe move cameras but not zoom.
	cred := keynote.MustAssertion("admin", `"john_doe"`, `command == "move" && arg_x < 90`, "")
	if err := cred.Sign(admin); err != nil {
		t.Fatal(err)
	}

	db := New(daemon.Config{}, nil)
	if err := db.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Stop)

	pool = daemon.NewPool(nil)
	t.Cleanup(pool.Close)
	if _, err := pool.Call(db.Addr(), cmdlang.New("addCredential").SetString("text", cred.Encode())); err != nil {
		t.Fatal(err)
	}

	policy := keynote.MustAssertion(keynote.Policy, `"admin"`, `app_domain == "ace"`, "")
	checker, err := keynote.NewChecker(ring, policy)
	if err != nil {
		t.Fatal(err)
	}

	auth = &Authorizer{
		Pool:       daemon.NewPool(nil),
		AuthDBAddr: db.Addr(),
		Checker:    checker,
		Service:    "ptz1",
		CacheSize:  cacheSize,
	}
	target = daemon.New(daemon.Config{Name: "ptz1", Authorizer: auth})
	target.Handle(cmdlang.CommandSpec{
		Name: "move",
		Args: []cmdlang.ArgSpec{{Name: "x", Kind: cmdlang.KindFloat, Required: true}},
	}, func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) { return nil, nil })
	target.Handle(cmdlang.CommandSpec{Name: "zoom"},
		func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) { return nil, nil })
	if err := target.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(target.Stop)
	return target, pool, auth
}

func TestFig10AuthorizationFlow(t *testing.T) {
	target, _, _ := buildEnv(t, 0)

	// The test client is "anonymous" on plaintext; simulate john_doe
	// by calling the authorizer directly via a TLS-free shortcut:
	// issue commands through a client whose principal we control by
	// invoking Authorize in-process is tested below; here test the
	// full remote path with the plaintext principal (denied).
	pool := daemon.NewPool(nil)
	defer pool.Close()
	_, err := pool.Call(target.Addr(), cmdlang.New("move").SetFloat("x", 10))
	if !cmdlang.IsRemoteCode(err, cmdlang.CodeDenied) {
		t.Fatalf("anonymous err=%v", err)
	}
}

func TestAuthorizerDecisions(t *testing.T) {
	_, _, auth := buildEnv(t, 0)

	ok := cmdlang.New("move").SetFloat("x", 10)
	if err := auth.Authorize("john_doe", ok); err != nil {
		t.Fatalf("allowed command denied: %v", err)
	}
	// Condition on the argument: x must stay below 90.
	if err := auth.Authorize("john_doe", cmdlang.New("move").SetFloat("x", 170)); err == nil {
		t.Fatal("out-of-range move allowed")
	}
	// Credential only covers "move".
	if err := auth.Authorize("john_doe", cmdlang.New("zoom")); err == nil {
		t.Fatal("zoom allowed")
	}
	// Unknown principal has no credentials.
	if err := auth.Authorize("mallory", ok); err == nil {
		t.Fatal("mallory allowed")
	}
	// The root principal is allowed directly by policy.
	if err := auth.Authorize("admin", cmdlang.New("zoom")); err != nil {
		t.Fatalf("admin denied: %v", err)
	}
}

func TestAuthorizerCache(t *testing.T) {
	_, _, auth := buildEnv(t, 16)
	cmd := cmdlang.New("move").SetFloat("x", 1)
	for i := 0; i < 5; i++ {
		if err := auth.Authorize("john_doe", cmd); err != nil {
			t.Fatal(err)
		}
	}
	fetches, hits := auth.CacheStats()
	if fetches != 1 || hits != 4 {
		t.Fatalf("fetches=%d hits=%d", fetches, hits)
	}
	auth.Invalidate("john_doe")
	if err := auth.Authorize("john_doe", cmd); err != nil {
		t.Fatal(err)
	}
	fetches, _ = auth.CacheStats()
	if fetches != 2 {
		t.Fatalf("fetches after invalidate=%d", fetches)
	}
}

func TestAttributesFromCmd(t *testing.T) {
	cmd := cmdlang.New("move").SetFloat("x", 45).SetWord("mode", "fast").
		Set("path", cmdlang.IntVector(1, 2)) // vectors are not attributes
	attrs := AttributesFromCmd("ptz1", "john_doe", cmd)
	if attrs["command"] != "move" || attrs["service"] != "ptz1" || attrs["principal"] != "john_doe" {
		t.Fatalf("attrs=%v", attrs)
	}
	if attrs["arg_x"] != "45.0" && attrs["arg_x"] != "45" {
		t.Fatalf("arg_x=%q", attrs["arg_x"])
	}
	if attrs["arg_mode"] != "fast" {
		t.Fatalf("arg_mode=%q", attrs["arg_mode"])
	}
	if _, ok := attrs["arg_path"]; ok {
		t.Fatal("vector leaked into attributes")
	}
	if attrs["app_domain"] != "ace" {
		t.Fatal("app_domain missing")
	}
}

func TestEndToEndTLSPrincipalAuthorization(t *testing.T) {
	// Full Fig 10 over the wire: john_doe's TLS identity must unlock
	// the command.
	admin, _ := keynote.NewPrincipal("admin")
	ring := keynote.NewKeyring()
	ring.Add(admin)
	cred := keynote.MustAssertion("admin", `"john_doe"`, `command == "move"`, "")
	if err := cred.Sign(admin); err != nil {
		t.Fatal(err)
	}

	store := NewStore()
	if err := store.Add(cred); err != nil {
		t.Fatal(err)
	}
	db := New(daemon.Config{}, store)
	if err := db.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Stop)

	policy := keynote.MustAssertion(keynote.Policy, `"admin"`, "", "")
	checker, _ := keynote.NewChecker(ring, policy)

	ca, err := newTestCA()
	if err != nil {
		t.Fatal(err)
	}
	serverT, _ := ca.transport("ptz1")
	johnT, _ := ca.transport("john_doe")
	malloryT, _ := ca.transport("mallory")

	target := daemon.New(daemon.Config{
		Name:      "ptz1",
		Transport: serverT,
		Authorizer: &Authorizer{
			Pool:       daemon.NewPool(nil),
			AuthDBAddr: db.Addr(),
			Checker:    checker,
			Service:    "ptz1",
		},
	})
	target.Handle(cmdlang.CommandSpec{
		Name: "move",
		Args: []cmdlang.ArgSpec{{Name: "x", Kind: cmdlang.KindFloat}},
	}, func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) { return nil, nil })
	if err := target.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(target.Stop)

	johnPool := daemon.NewPool(johnT)
	defer johnPool.Close()
	if _, err := johnPool.Call(target.Addr(), cmdlang.New("move").SetFloat("x", 5)); err != nil {
		t.Fatalf("john denied: %v", err)
	}

	malloryPool := daemon.NewPool(malloryT)
	defer malloryPool.Close()
	_, err = malloryPool.Call(target.Addr(), cmdlang.New("move").SetFloat("x", 5))
	if !cmdlang.IsRemoteCode(err, cmdlang.CodeDenied) {
		t.Fatalf("mallory err=%v", err)
	}
}

func TestTimeAndUsageConditions(t *testing.T) {
	// §3.2: credentials also control "for how long services can be
	// utilized, how much of computing resources may be consumed".
	admin, _ := keynote.NewPrincipal("admin")
	ring := keynote.NewKeyring()
	ring.Add(admin)

	// Office hours AND a 3-command quota.
	cred := keynote.MustAssertion("admin", `"intern"`,
		`hour >= 9 && hour < 17 && calls < 3`, "intern restrictions")
	if err := cred.Sign(admin); err != nil {
		t.Fatal(err)
	}
	store := NewStore()
	if err := store.Add(cred); err != nil {
		t.Fatal(err)
	}
	db := New(daemon.Config{}, store)
	if err := db.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Stop)

	policy := keynote.MustAssertion(keynote.Policy, `"admin"`, "", "")
	checker, _ := keynote.NewChecker(ring, policy)

	clockHour := 10
	auth := &Authorizer{
		Pool:       daemon.NewPool(nil),
		AuthDBAddr: db.Addr(),
		Checker:    checker,
		Service:    "lab",
		CacheSize:  16,
		Now: func() time.Time {
			return time.Date(2000, 8, 21, clockHour, 30, 0, 0, time.UTC)
		},
	}
	cmd := cmdlang.New("move").SetFloat("x", 1)

	// During office hours the quota allows exactly 3 commands.
	for i := 0; i < 3; i++ {
		if err := auth.Authorize("intern", cmd); err != nil {
			t.Fatalf("call %d denied: %v", i, err)
		}
	}
	if err := auth.Authorize("intern", cmd); err == nil {
		t.Fatal("quota not enforced")
	}

	// After hours a fresh intern is denied outright.
	clockHour = 22
	auth2 := &Authorizer{
		Pool:       daemon.NewPool(nil),
		AuthDBAddr: db.Addr(),
		Checker:    checker,
		Service:    "lab",
		Now: func() time.Time {
			return time.Date(2000, 8, 21, clockHour, 30, 0, 0, time.UTC)
		},
	}
	if err := auth2.Authorize("intern", cmd); err == nil {
		t.Fatal("after-hours command allowed")
	}
	// Admin is unaffected by intern restrictions.
	if err := auth2.Authorize("admin", cmd); err != nil {
		t.Fatalf("admin denied: %v", err)
	}
}
