// Package taskauto implements the task-automation direction the ACE
// report sketches for the environment's future (§9): "task automation
// (e.g. properly executing the command 'print this out to the nearest
// printer')". It combines the room database's spatial model (§4.11)
// with the service directory to resolve "the nearest X to me" and
// dispatch a command to it.
package taskauto

import (
	"fmt"
	"math"

	"ace/internal/asd"
	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/hier"
	"ace/internal/roomdb"
)

// Candidate is one spatially resolved service.
type Candidate struct {
	Service  string
	Addr     string
	Room     string
	Class    string
	Pos      roomdb.Point
	Distance float64
}

// Resolver answers nearest-service queries against the room database
// and the ASD.
type Resolver struct {
	pool       *daemon.Pool
	asdAddr    string
	roomDBAddr string
}

// NewResolver builds a resolver over the environment's directories.
func NewResolver(pool *daemon.Pool, asdAddr, roomDBAddr string) *Resolver {
	return &Resolver{pool: pool, asdAddr: asdAddr, roomDBAddr: roomDBAddr}
}

func dist(a, b roomdb.Point) float64 {
	dx, dy, dz := a.X-b.X, a.Y-b.Y, a.Z-b.Z
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// Nearest finds the closest live service of the given class to the
// position in the room. Only services that are both placed in the
// room database AND alive in the ASD qualify.
func (r *Resolver) Nearest(room, class string, pos roomdb.Point) (Candidate, error) {
	info, err := r.pool.Call(r.roomDBAddr, cmdlang.New("roomInfo").SetWord("room", room))
	if err != nil {
		return Candidate{}, fmt.Errorf("taskauto: roomInfo(%s): %w", room, err)
	}
	services := info.Strings("services")
	classes := info.Strings("classes")

	best := Candidate{Distance: math.Inf(1)}
	for i, svc := range services {
		var svcClass string
		if i < len(classes) {
			svcClass = classes[i]
		}
		if !hier.IsSubclassOf(svcClass, class) {
			continue
		}
		// Liveness + address through the directory (Fig 7).
		addr, err := asd.Resolve(r.pool, r.asdAddr, asd.Query{Name: svc})
		if err != nil {
			continue
		}
		// Position through the room database.
		where, err := r.pool.Call(r.roomDBAddr, cmdlang.New("whereIs").SetWord("service", svc))
		if err != nil {
			continue
		}
		var p roomdb.Point
		if v := where.Vector("pos"); len(v) == 3 {
			p.X, _ = v[0].AsFloat()
			p.Y, _ = v[1].AsFloat()
			p.Z, _ = v[2].AsFloat()
		}
		d := dist(p, pos)
		if d < best.Distance {
			best = Candidate{Service: svc, Addr: addr, Room: room, Class: svcClass, Pos: p, Distance: d}
		}
	}
	if math.IsInf(best.Distance, 1) {
		return Candidate{}, fmt.Errorf("taskauto: no live %s in %s", class, room)
	}
	return best, nil
}

// Task is a registered automation: a phrase maps to a device class
// and a command builder.
type Task struct {
	// Class of device the task targets.
	Class string
	// Build constructs the device command from the task detail.
	Build func(user, detail string) *cmdlang.CmdLine
}

// Service is the task-automation daemon: it accepts high-level task
// commands ("print this"), resolves the nearest capable device to the
// user's location, and dispatches the device command.
type Service struct {
	*daemon.Daemon
	resolver *Resolver
	tasks    map[string]Task
}

// NewService constructs the automation daemon with the standard task
// set (print / display / watch).
func NewService(dcfg daemon.Config, resolver *Resolver) *Service {
	if dcfg.Name == "" {
		dcfg.Name = "taskauto"
	}
	if dcfg.Class == "" {
		dcfg.Class = hier.Root + ".TaskAutomation"
	}
	s := &Service{
		Daemon:   daemon.New(dcfg),
		resolver: resolver,
		tasks:    make(map[string]Task),
	}
	s.RegisterTask("print", Task{
		Class: hier.ClassDevice + ".Printer",
		Build: func(user, detail string) *cmdlang.CmdLine {
			return cmdlang.New("print").SetWord("owner", user).SetString("title", detail)
		},
	})
	s.RegisterTask("display", Task{
		Class: hier.ClassProjector,
		Build: func(user, detail string) *cmdlang.CmdLine {
			return cmdlang.New("display").SetString("source", detail)
		},
	})
	s.RegisterTask("watch", Task{
		Class: hier.ClassPTZCamera,
		Build: func(_, _ string) *cmdlang.CmdLine {
			return cmdlang.New("power").SetBool("on", true)
		},
	})
	s.install()
	return s
}

// RegisterTask adds or replaces a task mapping.
func (s *Service) RegisterTask(name string, t Task) { s.tasks[name] = t }

// Execute runs a task for a user standing at pos in room: resolve the
// nearest device of the task's class, then send it the built command.
func (s *Service) Execute(task, user, room, detail string, pos roomdb.Point) (Candidate, *cmdlang.CmdLine, error) {
	t, ok := s.tasks[task]
	if !ok {
		return Candidate{}, nil, fmt.Errorf("taskauto: unknown task %q", task)
	}
	target, err := s.resolver.Nearest(room, t.Class, pos)
	if err != nil {
		return Candidate{}, nil, err
	}
	reply, err := s.Pool().Call(target.Addr, t.Build(user, detail))
	if err != nil {
		return target, nil, fmt.Errorf("taskauto: %s on %s: %w", task, target.Service, err)
	}
	return target, reply, nil
}

func (s *Service) install() {
	s.Handle(cmdlang.CommandSpec{
		Name: "task",
		Doc:  `run a high-level task on the nearest capable device (§9: "print this out to the nearest printer")`,
		Args: []cmdlang.ArgSpec{
			{Name: "name", Kind: cmdlang.KindWord, Required: true},
			{Name: "user", Kind: cmdlang.KindWord},
			{Name: "room", Kind: cmdlang.KindWord, Required: true},
			{Name: "detail", Kind: cmdlang.KindString},
			{Name: "pos", Kind: cmdlang.KindVector},
		},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		var pos roomdb.Point
		if v := c.Vector("pos"); len(v) == 3 {
			pos.X, _ = v[0].AsFloat()
			pos.Y, _ = v[1].AsFloat()
			pos.Z, _ = v[2].AsFloat()
		}
		target, deviceReply, err := s.Execute(
			c.Str("name", ""), c.Str("user", "anonymous"),
			c.Str("room", ""), c.Str("detail", ""), pos)
		if err != nil {
			return cmdlang.Fail(cmdlang.CodeNotFound, err.Error()), nil
		}
		r := cmdlang.OK().
			SetWord("device", target.Service).
			SetFloat("distance", target.Distance)
		if deviceReply != nil {
			r.SetString("deviceReply", deviceReply.String())
		}
		return r, nil
	})
}
