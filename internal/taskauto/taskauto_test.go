package taskauto

import (
	"strings"
	"testing"
	"time"

	"ace/internal/asd"
	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/device"
	"ace/internal/roomdb"
)

// rig builds a room with two printers at opposite ends, a projector,
// and the automation service.
type rig struct {
	dir      *asd.Service
	rooms    *roomdb.Service
	near     *device.Printer
	far      *device.Printer
	proj     *device.Projector
	auto     *Service
	pool     *daemon.Pool
	resolver *Resolver
}

func buildRig(t *testing.T) *rig {
	t.Helper()
	r := &rig{}
	r.dir = asd.New(asd.Config{ReapInterval: 20 * time.Millisecond})
	if err := r.dir.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.dir.Stop)

	db := roomdb.NewDB()
	db.AddRoom(roomdb.Room{Name: "hawk", Dims: roomdb.Point{X: 10, Y: 8, Z: 3}}) //nolint:errcheck
	r.rooms = roomdb.New(daemon.Config{ASDAddr: r.dir.Addr()}, db)
	if err := r.rooms.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.rooms.Stop)

	cfg := func(name string) daemon.Config {
		return daemon.Config{
			Name:       name,
			Room:       "hawk",
			ASDAddr:    r.dir.Addr(),
			RoomDBAddr: r.rooms.Addr(),
			LeaseTTL:   100 * time.Millisecond,
		}
	}
	r.near = device.NewPrinter(cfg("printer_door"))
	if err := r.near.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.near.Stop)
	r.far = device.NewPrinter(cfg("printer_window"))
	if err := r.far.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.far.Stop)
	r.proj = device.NewProjector(cfg("projector_hawk"))
	if err := r.proj.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.proj.Stop)

	// Physical placement.
	db.SetPosition("hawk", "printer_door", roomdb.Point{X: 1, Y: 1, Z: 1})     //nolint:errcheck
	db.SetPosition("hawk", "printer_window", roomdb.Point{X: 9, Y: 7, Z: 1})   //nolint:errcheck
	db.SetPosition("hawk", "projector_hawk", roomdb.Point{X: 5, Y: 0, Z: 2.5}) //nolint:errcheck

	r.pool = daemon.NewPool(nil)
	t.Cleanup(r.pool.Close)
	r.resolver = NewResolver(r.pool, r.dir.Addr(), r.rooms.Addr())

	r.auto = NewService(daemon.Config{ASDAddr: r.dir.Addr()}, r.resolver)
	if err := r.auto.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.auto.Stop)
	return r
}

func TestNearestPicksByDistance(t *testing.T) {
	r := buildRig(t)
	// Standing by the door.
	c, err := r.resolver.Nearest("hawk", device.ClassPrinter, roomdb.Point{X: 2, Y: 2, Z: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Service != "printer_door" {
		t.Fatalf("picked %s", c.Service)
	}
	// Standing by the window.
	c, err = r.resolver.Nearest("hawk", device.ClassPrinter, roomdb.Point{X: 8, Y: 7, Z: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Service != "printer_window" {
		t.Fatalf("picked %s", c.Service)
	}
	// Class matching respects the hierarchy (Device finds printers
	// and the projector; the projector at {5,0,2.5} is nearest to the
	// room's front center).
	c, err = r.resolver.Nearest("hawk", "Service.Device", roomdb.Point{X: 5, Y: 1, Z: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.Service != "projector_hawk" {
		t.Fatalf("picked %s", c.Service)
	}
}

func TestNearestSkipsDeadServices(t *testing.T) {
	r := buildRig(t)
	r.near.Stop() // the door printer crashes
	deadline := time.Now().Add(2 * time.Second)
	for {
		c, err := r.resolver.Nearest("hawk", device.ClassPrinter, roomdb.Point{X: 1, Y: 1, Z: 1})
		if err == nil && c.Service == "printer_window" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dead printer still selected: %+v err=%v", c, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestNearestNoCandidates(t *testing.T) {
	r := buildRig(t)
	if _, err := r.resolver.Nearest("hawk", "Service.Device.Toaster", roomdb.Point{}); err == nil {
		t.Fatal("found a toaster")
	}
	if _, err := r.resolver.Nearest("void", device.ClassPrinter, roomdb.Point{}); err == nil {
		t.Fatal("found printers in a non-room")
	}
}

func TestPrintToNearestPrinter(t *testing.T) {
	// The paper's literal §9 example, end to end through the task
	// command.
	r := buildRig(t)
	reply, err := r.pool.Call(r.auto.Addr(), cmdlang.New("task").
		SetWord("name", "print").
		SetWord("user", "john_doe").
		SetWord("room", "hawk").
		SetString("detail", "quarterly-report.pdf").
		Set("pos", cmdlang.FloatVector(1.5, 1.5, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if reply.Str("device", "") != "printer_door" {
		t.Fatalf("reply=%v", reply)
	}
	jobs := r.near.Queue()
	if len(jobs) != 1 || jobs[0].Title != "quarterly-report.pdf" || jobs[0].Owner != "john_doe" {
		t.Fatalf("queue=%v", jobs)
	}
	if len(r.far.Queue()) != 0 {
		t.Fatal("far printer got the job")
	}
}

func TestDisplayTask(t *testing.T) {
	r := buildRig(t)
	// The projector must be on for display to succeed.
	addr, err := asd.Resolve(r.pool, r.dir.Addr(), asd.Query{Name: "projector_hawk"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.pool.Call(addr, cmdlang.New("power").SetBool("on", true)); err != nil {
		t.Fatal(err)
	}
	reply, err := r.pool.Call(r.auto.Addr(), cmdlang.New("task").
		SetWord("name", "display").
		SetWord("room", "hawk").
		SetString("detail", "workspace_john").
		Set("pos", cmdlang.FloatVector(5, 2, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if reply.Str("device", "") != "projector_hawk" {
		t.Fatalf("reply=%v", reply)
	}
	if r.proj.State().Input != "workspace_john" {
		t.Fatalf("projector=%+v", r.proj.State())
	}
}

func TestUnknownTask(t *testing.T) {
	r := buildRig(t)
	_, err := r.pool.Call(r.auto.Addr(), cmdlang.New("task").
		SetWord("name", "teleport").SetWord("room", "hawk"))
	if !cmdlang.IsRemoteCode(err, cmdlang.CodeNotFound) || !strings.Contains(err.Error(), "unknown task") {
		t.Fatalf("err=%v", err)
	}
}

func TestPrinterDevice(t *testing.T) {
	p := device.NewPrinter(daemon.Config{})
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Stop)
	pool := daemon.NewPool(nil)
	defer pool.Close()

	for i := 0; i < 3; i++ {
		if _, err := pool.Call(p.Addr(), cmdlang.New("print").
			SetWord("owner", "u").SetString("title", "doc").SetInt("pages", 2)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := pool.Call(p.Addr(), cmdlang.New("queueStatus"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Int("queued", 0) != 3 {
		t.Fatalf("status=%v", st)
	}
	if _, err := pool.Call(p.Addr(), cmdlang.New("processQueue")); err != nil {
		t.Fatal(err)
	}
	if len(p.Queue()) != 0 || len(p.Printed()) != 3 {
		t.Fatalf("queue=%d printed=%d", len(p.Queue()), len(p.Printed()))
	}
	// Powered-off printers refuse jobs.
	pool.Call(p.Addr(), cmdlang.New("power").SetBool("on", false)) //nolint:errcheck
	_, err = pool.Call(p.Addr(), cmdlang.New("print").SetString("title", "x"))
	if !cmdlang.IsRemoteCode(err, cmdlang.CodeUnavailable) {
		t.Fatalf("err=%v", err)
	}
}
