package ophone

import (
	"strings"
	"testing"
	"time"

	"ace/internal/asd"
	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/media"
)

type rig struct {
	dir   *asd.Service
	alice *Phone
	bob   *Phone
	pool  *daemon.Pool
}

func buildRig(t *testing.T, bobAutoAnswer bool) *rig {
	t.Helper()
	r := &rig{}
	r.dir = asd.New(asd.Config{})
	if err := r.dir.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.dir.Stop)

	r.alice = New(Config{Owner: "alice", ASDAddr: r.dir.Addr()})
	if err := r.alice.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.alice.Stop)

	r.bob = New(Config{Owner: "bob", ASDAddr: r.dir.Addr(), AutoAnswer: bobAutoAnswer})
	if err := r.bob.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.bob.Stop)

	r.pool = daemon.NewPool(nil)
	t.Cleanup(r.pool.Close)
	return r
}

func waitState(t *testing.T, p *Phone, want CallState) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for p.State() != want {
		if time.Now().After(deadline) {
			t.Fatalf("%s stuck in %s, want %s", p.Owner(), p.State(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestCallSetupAnswerHangup(t *testing.T) {
	r := buildRig(t, false)

	// Alice dials bob by username: the phone is found via the ASD.
	if err := r.alice.Dial("bob"); err != nil {
		t.Fatal(err)
	}
	if r.alice.State() != Dialing || r.bob.State() != Ringing {
		t.Fatalf("alice=%s bob=%s", r.alice.State(), r.bob.State())
	}
	if r.bob.Peer() != "alice" {
		t.Fatalf("bob's peer=%q", r.bob.Peer())
	}

	// Bob answers; both go active.
	if err := r.bob.Answer(); err != nil {
		t.Fatal(err)
	}
	waitState(t, r.alice, Active)
	waitState(t, r.bob, Active)

	// Alice hangs up; both return to idle.
	if err := r.alice.Hangup(); err != nil {
		t.Fatal(err)
	}
	waitState(t, r.alice, Idle)
	waitState(t, r.bob, Idle)
}

func TestFullDuplexAudio(t *testing.T) {
	r := buildRig(t, true) // bob auto-answers
	if err := r.alice.Dial("bob"); err != nil {
		t.Fatal(err)
	}
	waitState(t, r.alice, Active)
	waitState(t, r.bob, Active)

	// Both directions simultaneously.
	if _, err := r.alice.SendTone(700, 30); err != nil {
		t.Fatal(err)
	}
	if _, err := r.bob.SendTone(900, 30); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(r.alice.Received()) < 30 || len(r.bob.Received()) < 30 {
		if time.Now().After(deadline) {
			t.Fatalf("audio incomplete: alice=%d bob=%d", len(r.alice.Received()), len(r.bob.Received()))
		}
		time.Sleep(2 * time.Millisecond)
	}
	if r.alice.Received()[0].Energy() < 1e6 {
		t.Fatal("received silence")
	}
}

func TestSpokenTextArrivesIntact(t *testing.T) {
	r := buildRig(t, true)
	if err := r.alice.Dial("bob"); err != nil {
		t.Fatal(err)
	}
	waitState(t, r.alice, Active)

	msg := "meet me in hawk"
	n, err := r.alice.Say(msg)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(r.bob.Received()) < n {
		if time.Now().After(deadline) {
			t.Fatalf("got %d/%d frames", len(r.bob.Received()), n)
		}
		time.Sleep(2 * time.Millisecond)
	}
	var got strings.Builder
	for _, f := range r.bob.Received() {
		if ch, ok := media.DetectLetter(f); ok {
			got.WriteRune(ch)
		}
	}
	want := strings.ReplaceAll(msg, " ", "_")
	if got.String() != want {
		t.Fatalf("decoded %q want %q", got.String(), want)
	}
}

func TestBusyPhoneRefusesSecondCall(t *testing.T) {
	r := buildRig(t, true)
	carol := New(Config{Owner: "carol", ASDAddr: r.dir.Addr()})
	if err := carol.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(carol.Stop)

	if err := r.alice.Dial("bob"); err != nil {
		t.Fatal(err)
	}
	waitState(t, r.alice, Active)

	// Carol calls bob, who is busy.
	err := carol.Dial("bob")
	if err == nil {
		t.Fatal("busy phone accepted a second call")
	}
	if carol.State() != Idle {
		t.Fatalf("carol=%s after refused call", carol.State())
	}
	// Alice also cannot dial while active.
	if err := r.alice.Dial("carol"); err == nil {
		t.Fatal("dial while active accepted")
	}
}

func TestDialUnknownUser(t *testing.T) {
	r := buildRig(t, false)
	if err := r.alice.Dial("nobody"); err == nil {
		t.Fatal("dialed a ghost")
	}
	if r.alice.State() != Idle {
		t.Fatalf("state=%s", r.alice.State())
	}
}

func TestAnswerWithoutRinging(t *testing.T) {
	r := buildRig(t, false)
	if err := r.alice.Answer(); err == nil {
		t.Fatal("answered silence")
	}
	if _, err := r.alice.Say("hi"); err == nil {
		t.Fatal("spoke outside a call")
	}
	if err := r.alice.Hangup(); err != nil {
		t.Fatal("idle hangup should be a no-op")
	}
}

func TestAudioDroppedWhenIdle(t *testing.T) {
	r := buildRig(t, true)
	// Send a frame directly to bob's data channel while idle.
	f := media.ToneFrame(0, 500, 5000)
	if err := r.alice.SendData(r.bob.DataAddr(), f.Marshal()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if len(r.bob.Received()) != 0 {
		t.Fatal("idle phone recorded audio")
	}
}

func TestCommandSurface(t *testing.T) {
	r := buildRig(t, true)
	// Dial via the command channel (as a workspace GUI would).
	reply, err := r.pool.Call(r.alice.Addr(), cmdlang.New("dial").SetWord("user", "bob"))
	if err != nil {
		t.Fatal(err)
	}
	if reply.Str("state", "") != "active" {
		t.Fatalf("reply=%v", reply)
	}
	status, err := r.pool.Call(r.bob.Addr(), cmdlang.New("callStatus"))
	if err != nil {
		t.Fatal(err)
	}
	if status.Str("state", "") != "active" || status.Str("peer", "") != "alice" {
		t.Fatalf("status=%v", status)
	}
	// FindPhone helper.
	addr, err := FindPhone(r.pool, r.dir.Addr(), "bob")
	if err != nil || addr != r.bob.Addr() {
		t.Fatalf("addr=%q err=%v", addr, err)
	}
}
