// Package ophone implements the O-Phone (§5.5): full-duplex telephone
// communication over IP between ACE users. The original integrated
// the open-source Gnome O-Phone as a workspace application; this
// reproduction builds the equivalent natively on the ACE substrate —
// a phone daemon per endpoint, call signalling over the command
// channel (dial / ring / answer / hangup), and two-way audio over the
// daemons' UDP data channels.
//
// Users are reachable wherever they are: a caller dials a *username*,
// and the phone service locates the callee's current phone through
// the ASD, freeing users from having to be near a particular phone.
package ophone

import (
	"fmt"
	"net"
	"strings"
	"sync"

	"ace/internal/asd"
	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/hier"
	"ace/internal/media"
)

// ClassPhone is the hierarchy class of phone endpoints.
const ClassPhone = hier.Root + ".Phone"

// CallState is a phone's call state machine position.
type CallState int

const (
	// Idle: no call.
	Idle CallState = iota
	// Ringing: an incoming call awaits answer.
	Ringing
	// Dialing: an outgoing call awaits the callee's answer.
	Dialing
	// Active: audio is flowing both ways.
	Active
)

// String names the state.
func (s CallState) String() string {
	switch s {
	case Idle:
		return "idle"
	case Ringing:
		return "ringing"
	case Dialing:
		return "dialing"
	case Active:
		return "active"
	default:
		return "unknown"
	}
}

// Phone is one O-Phone endpoint daemon, owned by a user.
type Phone struct {
	*daemon.Daemon

	owner   string
	asdAddr string

	mu       sync.Mutex
	state    CallState
	peerUser string
	peerCmd  string // peer's command address
	peerData string // peer's audio (data channel) address
	seq      uint32

	received []media.Frame
	// onFrame observes received audio (e.g. to drive a speaker).
	onFrame func(media.Frame)
	// autoAnswer answers incoming calls immediately (voicemail-style
	// endpoints and tests).
	autoAnswer bool
}

// Config describes a phone endpoint.
type Config struct {
	// Daemon is the shell configuration; Name defaults to
	// "ophone_<owner>".
	Daemon daemon.Config
	// Owner is the ACE user this phone belongs to.
	Owner string
	// ASDAddr locates peers' phones by owner (required for Dial).
	ASDAddr string
	// AutoAnswer accepts incoming calls without an explicit answer
	// command.
	AutoAnswer bool
}

// New constructs a phone endpoint.
func New(cfg Config) *Phone {
	dcfg := cfg.Daemon
	if dcfg.Name == "" {
		dcfg.Name = "ophone_" + cfg.Owner
	}
	if dcfg.Class == "" {
		dcfg.Class = ClassPhone
	}
	if dcfg.ASDAddr == "" {
		dcfg.ASDAddr = cfg.ASDAddr
	}
	p := &Phone{owner: cfg.Owner, asdAddr: cfg.ASDAddr, autoAnswer: cfg.AutoAnswer}
	dcfg.DataHandler = p.onData
	p.Daemon = daemon.New(dcfg)
	p.install()
	return p
}

// Owner returns the phone's user.
func (p *Phone) Owner() string { return p.owner }

// State returns the call state.
func (p *Phone) State() CallState {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state
}

// Peer returns the current peer user, if any.
func (p *Phone) Peer() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peerUser
}

// SetOnFrame installs the received-audio observer.
func (p *Phone) SetOnFrame(fn func(media.Frame)) {
	p.mu.Lock()
	p.onFrame = fn
	p.mu.Unlock()
}

// Received returns the audio received so far in the current or last
// call.
func (p *Phone) Received() []media.Frame {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]media.Frame(nil), p.received...)
}

func (p *Phone) onData(pkt []byte, _ net.Addr) {
	f, err := media.UnmarshalFrame(pkt)
	if err != nil {
		return
	}
	p.mu.Lock()
	if p.state != Active {
		p.mu.Unlock()
		return // not in a call: drop
	}
	p.received = append(p.received, f)
	fn := p.onFrame
	p.mu.Unlock()
	if fn != nil {
		fn(f)
	}
}

// Dial places a call to another ACE user: the callee's phone is
// located through the ASD by owner, then signalled with "ring".
func (p *Phone) Dial(user string) error {
	if p.asdAddr == "" {
		return fmt.Errorf("ophone: no ASD configured")
	}
	p.mu.Lock()
	if p.state != Idle {
		st := p.state
		p.mu.Unlock()
		return fmt.Errorf("ophone: cannot dial while %s", st)
	}
	p.state = Dialing
	p.mu.Unlock()

	fail := func(err error) error {
		p.mu.Lock()
		p.state = Idle
		p.mu.Unlock()
		return err
	}

	// Find the callee's phone (any endpoint owned by the user).
	entries, err := lookupPhones(p.Pool(), p.asdAddr)
	if err != nil {
		return fail(err)
	}
	var calleeAddr string
	for _, e := range entries {
		if e.owner == user {
			calleeAddr = e.addr
			break
		}
	}
	if calleeAddr == "" {
		return fail(fmt.Errorf("ophone: user %q has no reachable phone", user))
	}

	reply, err := p.Pool().Call(calleeAddr, cmdlang.New("ring").
		SetWord("from", p.owner).
		SetString("cmdAddr", p.Addr()).
		SetString("dataAddr", p.DataAddr()))
	if err != nil {
		return fail(fmt.Errorf("ophone: ringing %s: %w", user, err))
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	p.peerUser = user
	p.peerCmd = calleeAddr
	p.peerData = reply.Str("dataAddr", "")
	if reply.Bool("answered", false) {
		p.state = Active
		p.received = nil
	}
	return nil
}

// Answer accepts a ringing call and notifies the caller. (The
// auto-answer path skips the notification: the ring reply itself
// carries answered=true.)
func (p *Phone) Answer() error {
	p.mu.Lock()
	if err := p.answerLocked(); err != nil {
		p.mu.Unlock()
		return err
	}
	peer := p.peerCmd
	p.mu.Unlock()
	// Tell the caller we picked up. If the notification never lands
	// the caller still thinks the phone is ringing, so tear the call
	// back down rather than sit in a half-open Active state.
	go func() {
		if _, err := p.Pool().Call(peer, cmdlang.New("answered").
			SetWord("from", p.owner).
			SetString("dataAddr", p.DataAddr())); err != nil {
			_ = p.Hangup()
		}
	}()
	return nil
}

func (p *Phone) answerLocked() error {
	if p.state != Ringing {
		return fmt.Errorf("ophone: nothing to answer (state %s)", p.state)
	}
	p.state = Active
	p.received = nil
	return nil
}

// Hangup ends the current call (both sides return to idle).
func (p *Phone) Hangup() error {
	p.mu.Lock()
	if p.state == Idle {
		p.mu.Unlock()
		return nil
	}
	peer := p.peerCmd
	p.state = Idle
	p.peerUser, p.peerCmd, p.peerData = "", "", ""
	p.mu.Unlock()
	if peer != "" {
		// The peer may already be gone; both sides have reset to idle
		// regardless, so a failed notification needs no recovery.
		//acelint:ignore droppederr hangup notification to a possibly-dead peer is fire-and-forget
		p.Pool().Call(peer, cmdlang.New("hangup").SetWord("from", p.owner))
	}
	return nil
}

// Say speaks text into the call (text-to-speech frames over the data
// channel).
func (p *Phone) Say(text string) (int, error) {
	p.mu.Lock()
	if p.state != Active {
		st := p.state
		p.mu.Unlock()
		return 0, fmt.Errorf("ophone: not in a call (state %s)", st)
	}
	dest := p.peerData
	seq := p.seq
	p.mu.Unlock()

	// Spaces travel as the '_' tone (the speech alphabet has no
	// silence symbol).
	frames := media.TextToSpeech(strings.ReplaceAll(text, " ", "_"), seq)
	for _, f := range frames {
		if err := p.SendData(dest, f.Marshal()); err != nil {
			return 0, err
		}
	}
	p.mu.Lock()
	p.seq += uint32(len(frames))
	p.mu.Unlock()
	return len(frames), nil
}

// SendTone streams n frames of a tone into the call (the "voice").
func (p *Phone) SendTone(freq float64, n int) (int, error) {
	p.mu.Lock()
	if p.state != Active {
		st := p.state
		p.mu.Unlock()
		return 0, fmt.Errorf("ophone: not in a call (state %s)", st)
	}
	dest := p.peerData
	seq := p.seq
	p.seq += uint32(n)
	p.mu.Unlock()

	phase := 0.0
	for i := 0; i < n; i++ {
		var samples []int16
		samples, phase = media.Tone(freq, 6000, media.FrameSamples, phase)
		f := media.Frame{Seq: seq + uint32(i), Samples: samples}
		if err := p.SendData(dest, f.Marshal()); err != nil {
			return i, err
		}
	}
	return n, nil
}

type phoneEntry struct{ owner, addr string }

func lookupPhones(pool *daemon.Pool, asdAddr string) ([]phoneEntry, error) {
	reply, err := pool.Call(asdAddr, cmdlang.New(daemon.CmdLookup).SetString("class", ClassPhone))
	if err != nil {
		if cmdlang.IsRemoteCode(err, cmdlang.CodeNotFound) {
			return nil, fmt.Errorf("ophone: no phones registered")
		}
		return nil, err
	}
	names := reply.Strings("names")
	addrs := reply.Strings("addrs")
	entries := make([]phoneEntry, 0, len(names))
	for i, n := range names {
		if i >= len(addrs) {
			break
		}
		// Phones are named ophone_<owner> by convention; confirm with
		// an info call only if the convention doesn't hold.
		owner := n
		if len(n) > 7 && n[:7] == "ophone_" {
			owner = n[7:]
		}
		entries = append(entries, phoneEntry{owner: owner, addr: addrs[i]})
	}
	return entries, nil
}

func (p *Phone) install() {
	p.Handle(cmdlang.CommandSpec{
		Name: "ring",
		Doc:  "incoming call signalling",
		Args: []cmdlang.ArgSpec{
			{Name: "from", Kind: cmdlang.KindWord, Required: true},
			{Name: "cmdAddr", Kind: cmdlang.KindString, Required: true},
			{Name: "dataAddr", Kind: cmdlang.KindString, Required: true},
		},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		p.mu.Lock()
		defer p.mu.Unlock()
		if p.state != Idle {
			return cmdlang.Fail(cmdlang.CodeConflict, "busy ("+p.state.String()+")"), nil
		}
		p.state = Ringing
		p.peerUser = c.Str("from", "")
		p.peerCmd = c.Str("cmdAddr", "")
		p.peerData = c.Str("dataAddr", "")
		reply := cmdlang.OK().SetString("dataAddr", p.DataAddr())
		if p.autoAnswer {
			if err := p.answerLocked(); err == nil {
				reply.SetBool("answered", true)
			}
		} else {
			reply.SetBool("answered", false)
		}
		return reply, nil
	})

	p.Handle(cmdlang.CommandSpec{
		Name: "answered",
		Doc:  "the callee picked up",
		Args: []cmdlang.ArgSpec{
			{Name: "from", Kind: cmdlang.KindWord, Required: true},
			{Name: "dataAddr", Kind: cmdlang.KindString, Required: true},
		},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		p.mu.Lock()
		defer p.mu.Unlock()
		if p.state != Dialing || c.Str("from", "") != p.peerUser {
			return cmdlang.Fail(cmdlang.CodeConflict, "not dialing "+c.Str("from", "")), nil
		}
		p.state = Active
		p.received = nil
		p.peerData = c.Str("dataAddr", "")
		return nil, nil
	})

	p.Handle(cmdlang.CommandSpec{
		Name: "hangup",
		Args: []cmdlang.ArgSpec{{Name: "from", Kind: cmdlang.KindWord}},
	}, func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		p.mu.Lock()
		p.state = Idle
		p.peerUser, p.peerCmd, p.peerData = "", "", ""
		p.mu.Unlock()
		return nil, nil
	})

	p.Handle(cmdlang.CommandSpec{
		Name: "dial",
		Doc:  "place a call to an ACE user, wherever their phone is",
		Args: []cmdlang.ArgSpec{{Name: "user", Kind: cmdlang.KindWord, Required: true}},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		if err := p.Dial(c.Str("user", "")); err != nil {
			return nil, err
		}
		return cmdlang.OK().SetWord("state", p.State().String()), nil
	})

	p.Handle(cmdlang.CommandSpec{Name: "callStatus"},
		func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			p.mu.Lock()
			defer p.mu.Unlock()
			r := cmdlang.OK().SetWord("state", p.state.String())
			if p.peerUser != "" {
				r.SetWord("peer", p.peerUser)
			}
			r.SetInt("receivedFrames", int64(len(p.received)))
			return r, nil
		})
}

// FindPhone resolves a user's phone command address through the ASD.
func FindPhone(pool *daemon.Pool, asdAddr, user string) (string, error) {
	return asd.Resolve(pool, asdAddr, asd.Query{Name: "ophone_" + user})
}
