// Package chaos is a deterministic fault-injection harness for the
// ACE communication stack. A Proxy is an in-process TCP relay that
// sits between any wire client and a daemon and can, per connection
// and per direction, inject latency, refuse or blackhole traffic,
// drop whole frames, truncate frames mid-payload, and flip payload
// bytes. Every probabilistic decision is drawn from a PRNG derived
// deterministically from (proxy seed, connection index, direction),
// so a failure schedule reproduces exactly under the same seed — the
// property the chaos integration tests rely on.
//
// Frame-level faults (DropProb, FlipProb, TruncateProb) parse the
// wire package's 4-byte length-prefixed framing and therefore only
// make sense on plaintext connections; the stream-level faults
// (latency, partition, blackhole) work under TLS too, since they
// never inspect bytes.
package chaos

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Faults describes the active failure modes of one Proxy. The zero
// value forwards traffic untouched.
type Faults struct {
	// RefuseConns makes the proxy accept and immediately close new
	// connections (a partitioned peer: dial succeeds at TCP level but
	// the service is unreachable). Existing connections are killed by
	// Proxy.Partition, not by this flag alone.
	RefuseConns bool
	// Blackhole silently discards forwarded data in both directions:
	// connections stay up, requests vanish, replies never come. This
	// is the "peer stalls" failure mode that exercises call deadlines.
	Blackhole bool
	// Latency is added before each forwarded frame (or chunk, in raw
	// mode) in each direction.
	Latency time.Duration
	// DropProb is the per-frame probability of silently dropping the
	// frame (delivery gap without killing the connection).
	DropProb float64
	// FlipProb is the per-frame probability of flipping one random
	// payload byte (corruption the parser or application must catch).
	FlipProb float64
	// TruncateProb is the per-frame probability of forwarding the
	// header and only half the payload, then killing the connection
	// (a crashed peer mid-frame).
	TruncateProb float64
}

func (f Faults) frameAware() bool {
	return f.DropProb > 0 || f.FlipProb > 0 || f.TruncateProb > 0
}

// Proxy relays TCP connections to a target address, applying the
// configured faults. Safe for concurrent use.
type Proxy struct {
	ln   net.Listener
	seed int64

	mu      sync.Mutex
	target  string
	faults  Faults
	conns   map[net.Conn]struct{}
	connSeq int64
	closed  bool

	wg sync.WaitGroup
}

// NewProxy listens on a fresh loopback port and relays to target.
// All probabilistic fault decisions derive from seed.
func NewProxy(target string, seed int64) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: listen: %w", err)
	}
	p := &Proxy{ln: ln, seed: seed, target: target, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the address clients should dial instead of the target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Target returns the current backend address.
func (p *Proxy) Target() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.target
}

// SetTarget retargets future connections, e.g. after the backend
// daemon restarted on a new port. The proxy address stays stable, so
// clients keep a fixed view of the service across backend restarts.
func (p *Proxy) SetTarget(addr string) {
	p.mu.Lock()
	p.target = addr
	p.mu.Unlock()
}

// SetFaults replaces the active fault set.
func (p *Proxy) SetFaults(f Faults) {
	p.mu.Lock()
	p.faults = f
	p.mu.Unlock()
}

// CurrentFaults snapshots the active fault set.
func (p *Proxy) CurrentFaults() Faults {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.faults
}

// Partition cuts the proxy off: new connections are refused and every
// live connection is killed. Heal undoes it.
func (p *Proxy) Partition() {
	p.mu.Lock()
	p.faults.RefuseConns = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Heal clears every fault; traffic flows untouched again.
func (p *Proxy) Heal() { p.SetFaults(Faults{}) }

// Close shuts the proxy down and severs all relayed connections.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	p.wg.Wait()
}

func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		p.connSeq++
		id := p.connSeq
		refuse := p.faults.RefuseConns
		target := p.target
		closed := p.closed
		p.mu.Unlock()
		if closed || refuse {
			client.Close()
			continue
		}
		p.wg.Add(1)
		//acelint:ignore boundedspawn fault-proxy relays are bounded by the test harness's connection count
		go p.relay(client, target, id)
	}
}

// dirSeed derives the deterministic PRNG seed for one direction of
// one connection. Each direction owns its PRNG, so goroutine
// interleaving between directions cannot perturb the schedule.
func dirSeed(seed, connID int64, dir int) int64 {
	h := uint64(seed)*0x9E3779B97F4A7C15 + uint64(connID)*0xBF58476D1CE4E5B9 + uint64(dir+1)*0x94D049BB133111EB
	h ^= h >> 31
	return int64(h)
}

func (p *Proxy) relay(client net.Conn, target string, id int64) {
	defer p.wg.Done()
	server, err := net.DialTimeout("tcp", target, 5*time.Second)
	if err != nil {
		client.Close()
		return
	}
	if !p.track(client) || !p.track(server) {
		client.Close()
		server.Close()
		p.untrack(client)
		return
	}
	defer func() {
		client.Close()
		server.Close()
		p.untrack(client)
		p.untrack(server)
	}()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		p.pipe(server, client, rand.New(rand.NewSource(dirSeed(p.seed, id, 0))))
	}()
	go func() {
		defer wg.Done()
		p.pipe(client, server, rand.New(rand.NewSource(dirSeed(p.seed, id, 1))))
	}()
	wg.Wait()
}

// pipe forwards src→dst applying the proxy's current faults. When any
// frame-level fault is configured it reads whole 4-byte
// length-prefixed frames so that fault decisions are consumed exactly
// once per frame — the unit that makes schedules deterministic.
func (p *Proxy) pipe(dst, src net.Conn, rng *rand.Rand) {
	buf := make([]byte, 64*1024)
	var hdr [4]byte
	for {
		// The mode (raw vs frame-parsing) is decided before the
		// blocking read; the faults actually applied are re-snapshotted
		// after it, so a fault flipped while the pipe was idle takes
		// effect on the very next chunk.
		if !p.CurrentFaults().frameAware() {
			// Raw mode: chunk-level forwarding (works under TLS).
			n, err := src.Read(buf)
			if n > 0 {
				f := p.CurrentFaults()
				if f.Latency > 0 {
					time.Sleep(f.Latency)
				}
				if !f.Blackhole {
					if _, werr := dst.Write(buf[:n]); werr != nil {
						return
					}
				}
			}
			if err != nil {
				if cw, ok := dst.(*net.TCPConn); ok {
					cw.CloseWrite() //nolint:errcheck
				}
				return
			}
			continue
		}

		// Frame mode.
		if _, err := io.ReadFull(src, hdr[:]); err != nil {
			if cw, ok := dst.(*net.TCPConn); ok {
				cw.CloseWrite() //nolint:errcheck
			}
			return
		}
		size := binary.BigEndian.Uint32(hdr[:])
		if size > 1<<24 {
			// Nonsense framing (or encrypted traffic): bail out rather
			// than buffer gigabytes.
			return
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(src, payload); err != nil {
			return
		}
		f := p.CurrentFaults()

		// One decision per knob per frame, always consumed in the same
		// order, so the schedule depends only on the seed and the
		// frame index — never on timing.
		drop := f.DropProb > 0 && rng.Float64() < f.DropProb
		flip := f.FlipProb > 0 && rng.Float64() < f.FlipProb
		trunc := f.TruncateProb > 0 && rng.Float64() < f.TruncateProb
		flipAt := 0
		if len(payload) > 0 {
			flipAt = rng.Intn(len(payload))
		}

		if f.Latency > 0 {
			time.Sleep(f.Latency)
		}
		if f.Blackhole || drop {
			continue
		}
		if flip && len(payload) > 0 {
			payload[flipAt] ^= 0xFF
		}
		if trunc {
			// Advertise the full length but deliver only half, then
			// kill the connection: the receiver sees ErrUnexpectedEOF.
			dst.Write(hdr[:])           //nolint:errcheck
			dst.Write(payload[:size/2]) //nolint:errcheck
			dst.Close()
			src.Close()
			return
		}
		if _, err := dst.Write(hdr[:]); err != nil {
			return
		}
		if _, err := dst.Write(payload); err != nil {
			return
		}
	}
}
