package chaos_test

import (
	"context"
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"ace/internal/asd"
	"ace/internal/chaos"
	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/pstore"
	"ace/internal/pstore/placement"
	"ace/internal/pstore/storage"
)

// groupFlipSchedule drives frames through one named proxy of a fabric
// whose group carries a FlipProb fault and returns the corrupted frame
// indexes.
func groupFlipSchedule(t *testing.T, target string, seed int64, frames int) []int {
	t.Helper()
	fab := chaos.NewFabric(seed)
	defer fab.Close()
	if _, err := fab.Proxy("a", target); err != nil {
		t.Fatal(err)
	}
	if _, err := fab.Proxy("b", target); err != nil {
		t.Fatal(err)
	}
	fab.DefineGroup("g", "a", "b")
	fab.SetGroupFaults("g", chaos.Faults{FlipProb: 0.3})

	conn, err := net.DialTimeout("tcp", fab.Addr("b"), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second)) //nolint:errcheck

	var corrupted []int
	for i := 0; i < frames; i++ {
		want := []byte(fmt.Sprintf("frame-%04d-payload-abcdefghijklmnop", i))
		writeFrame(t, conn, want)
		if string(readFrame(t, conn)) != string(want) {
			corrupted = append(corrupted, i)
		}
	}
	return corrupted
}

// TestFabricGroupFaultsDeterministic: group-scoped faults inherit the
// per-proxy determinism — the same fabric seed yields the same
// corruption schedule through a grouped proxy, and a different seed a
// different one. Group membership and creation order fix which
// per-proxy seed each member derives.
func TestFabricGroupFaultsDeterministic(t *testing.T) {
	ln := frameEchoServer(t)
	defer ln.Close()
	const frames = 300

	a := groupFlipSchedule(t, ln.Addr().String(), 42, frames)
	b := groupFlipSchedule(t, ln.Addr().String(), 42, frames)
	if len(a) == 0 {
		t.Fatal("no corruption injected through grouped proxy")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same fabric seed, different group schedules:\n%v\n%v", a, b)
	}
	c := groupFlipSchedule(t, ln.Addr().String(), 43, frames)
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different fabric seeds produced identical group schedules")
	}
}

// TestFabricGroupPartitionAndHeal: PartitionGroup severs every member
// at once, HealGroup restores them, and other groups are untouched.
func TestFabricGroupPartitionAndHeal(t *testing.T) {
	d := daemon.New(daemon.Config{Name: "grouped"})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)

	fab := chaos.NewFabric(5)
	defer fab.Close()
	for _, n := range []string{"r1", "r2", "r3"} {
		if _, err := fab.Proxy(n, d.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	fab.DefineGroup("left", "r1", "r2")
	fab.DefineGroup("right", "r3")

	// No breaker: the test pings dead proxies and expects an instant
	// recovery after heal, not a cooldown.
	pool := daemon.NewPoolConfig(daemon.PoolConfig{MaxRetries: -1, BreakerThreshold: -1})
	defer pool.Close()
	ping := func(name string) error {
		_, err := pool.Call(fab.Addr(name), cmdlang.New(daemon.CmdPing))
		return err
	}

	fab.PartitionGroup("left")
	if err := ping("r1"); err == nil {
		t.Fatal("r1 reachable through partitioned group")
	}
	if err := ping("r2"); err == nil {
		t.Fatal("r2 reachable through partitioned group")
	}
	if err := ping("r3"); err != nil {
		t.Fatalf("partitioning group left broke group right: %v", err)
	}
	fab.HealGroup("left")
	if err := ping("r1"); err != nil {
		t.Fatalf("r1 unreachable after HealGroup: %v", err)
	}
}

// TestChaosGroupKillMidRebalance is the sharding durability drill:
// kill an entire destination replica group (process crash + disk
// losing unsynced data + network partition) in the middle of a live
// rebalance that is moving partitions onto it, while a writer keeps
// the cluster under load.
//
//   - No write the storm acked may be lost: pre-kill writes to moving
//     partitions are dual-applied (source AND destination quorums), so
//     the surviving source still holds them.
//   - Reads of partitions owned by the surviving groups keep serving
//     through the outage.
//   - After the dead group restarts from its (crashed) disks, running
//     Rebalance again resumes from the published map and converges to
//     the target — the coordinator keeps no state outside the map.
//   - Replicas inside each group converge to identical digests.
func TestChaosGroupKillMidRebalance(t *testing.T) {
	fab := chaos.NewFabric(11)
	defer fab.Close()

	dir := asd.New(asd.Config{ReapInterval: time.Hour})
	if err := dir.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dir.Stop)

	type member struct {
		name string
		disk *chaos.DiskFS
		node *pstore.Node
	}
	startNode := func(m *member, group string) {
		t.Helper()
		n, err := pstore.NewNode(pstore.Config{
			Daemon:  daemon.Config{Name: m.name},
			Group:   group,
			Dir:     "/data",
			Storage: storage.Options{FS: m.disk, SegmentBytes: 4096, SnapshotBytes: 16384},
		})
		if err != nil {
			t.Fatalf("NewNode %s: %v", m.name, err)
		}
		if err := n.Start(); err != nil {
			t.Fatalf("Start %s: %v", m.name, err)
		}
		m.node = n
	}

	groupNames := []string{"g1", "g2", "g3"}
	members := map[string][]*member{}
	var pgroups []placement.Group
	for _, g := range groupNames {
		var proxyAddrs []string
		var names []string
		for i := 0; i < 3; i++ {
			m := &member{name: fmt.Sprintf("%sn%d", g, i+1), disk: chaos.NewDiskFS()}
			startNode(m, g)
			p, err := fab.Proxy(m.name, m.node.Addr())
			if err != nil {
				t.Fatal(err)
			}
			members[g] = append(members[g], m)
			names = append(names, m.name)
			proxyAddrs = append(proxyAddrs, p.Addr())
		}
		fab.DefineGroup(g, names...)
		for i, m := range members[g] {
			var peers []string
			for j, a := range proxyAddrs {
				if j != i {
					peers = append(peers, a)
				}
			}
			m.node.SetPeers(peers)
		}
		pgroups = append(pgroups, placement.Group{Name: g, Replicas: proxyAddrs})
	}
	t.Cleanup(func() {
		for _, ms := range members {
			for _, m := range ms {
				m.node.Stop()
			}
		}
	})

	// Breakers and retries off: the kill window is short, and the test
	// wants crisp fail-or-serve behavior, not breaker hysteresis.
	pool := daemon.NewPoolConfig(daemon.PoolConfig{MaxRetries: -1, BreakerThreshold: -1})
	defer pool.Close()

	ctx := context.Background()
	co := pstore.NewCoordinator(pool, dir.Addr())
	if _, err := co.Bootstrap(ctx, 7, 32, 64, pgroups[:2]); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}

	const keys = 48
	key := func(i int) string { return fmt.Sprintf("/ace/chaos/%03d", i) }
	seedClient := pstore.NewSharded(pool, placement.NewCache(pool, dir.Addr()))
	defer seedClient.Close()
	var acked sync.Map // path -> highest acked version
	for i := 0; i < keys; i++ {
		ver, err := seedClient.Put(key(i), []byte(fmt.Sprintf("seed-%d", i)))
		if err != nil {
			t.Fatalf("seed put %d: %v", i, err)
		}
		acked.Store(key(i), ver)
	}

	// Writer storm: keeps overwriting the key space for the whole run.
	// Failed puts (dead destination quorum during the outage) are
	// expected and simply not recorded — only acked writes must
	// survive.
	stopWrite := make(chan struct{})
	var writers sync.WaitGroup
	writers.Add(1)
	go func() {
		defer writers.Done()
		w := pstore.NewSharded(pool, placement.NewCache(pool, dir.Addr()))
		defer w.Close()
		for i := 0; ; i++ {
			select {
			case <-stopWrite:
				return
			default:
			}
			path := key(i % keys)
			if ver, err := w.Put(path, []byte(fmt.Sprintf("storm-%d", i))); err == nil {
				acked.Store(path, ver)
			}
		}
	}()
	stopWriter := func() {
		select {
		case <-stopWrite:
		default:
			close(stopWrite)
		}
		writers.Wait()
	}
	defer stopWriter()

	// Slow g3 a little so the rebalance has a real mid-flight window
	// to kill it in.
	fab.SetGroupFaults("g3", chaos.Faults{Latency: 2 * time.Millisecond})

	rebErr := make(chan error, 1)
	go func() {
		_, err := pstore.NewCoordinator(pool, dir.Addr()).Rebalance(ctx, pgroups)
		rebErr <- err
	}()

	// Wait for the window: at least one partition already cut over to
	// g3 (epoch ≥ 3) and more moves still pending.
	var killMap *placement.Map
	deadline := time.Now().Add(20 * time.Second)
	for killMap == nil {
		if time.Now().After(deadline) {
			t.Fatal("rebalance never opened a kill window")
		}
		m, err := co.Current(ctx)
		if err == nil && m != nil {
			if len(m.Moves) > 0 && m.Epoch >= 3 {
				killMap = m
				break
			}
			if len(m.Moves) == 0 && len(m.Groups) == 3 {
				t.Fatal("rebalance finished before the kill window")
			}
		}
		time.Sleep(time.Millisecond)
	}

	// Kill the whole destination group: crash every process, lose all
	// unsynced disk state, sever the network.
	for _, m := range members["g3"] {
		m.node.Crash()
		m.disk.Crash()
	}
	fab.PartitionGroup("g3")

	// The in-flight rebalance cannot finish against a dead destination
	// group — it must fail, not silently cut over unverified data.
	select {
	case err := <-rebErr:
		if err == nil {
			t.Fatal("rebalance reported success with its destination group dead")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("rebalance hung against a dead destination group")
	}

	// Reads of partitions the surviving groups own keep serving.
	g3idx := killMap.GroupIndex("g3")
	reader := pstore.NewSharded(pool, placement.NewCache(pool, dir.Addr()))
	defer reader.Close()
	served := 0
	for i := 0; i < keys; i++ {
		p := placement.PartitionOf(key(i), killMap.Partitions)
		if killMap.Assignment[p] == g3idx {
			continue
		}
		if _, _, ok, err := reader.Get(key(i)); err != nil || !ok {
			t.Fatalf("read of surviving-group key %d failed during outage: ok=%v err=%v", i, ok, err)
		}
		served++
	}
	if served == 0 {
		t.Fatal("no keys owned by surviving groups — test cannot observe availability")
	}

	// Restart g3 from its crashed disks behind the same proxy
	// addresses, heal the partition, and resume: the coordinator finds
	// the transition map still published and finishes the job.
	for _, m := range members["g3"] {
		startNode(m, "g3")
		fab.Get(m.name).SetTarget(m.node.Addr())
	}
	for i, m := range members["g3"] {
		var peers []string
		for j, a := range pgroups[2].Replicas {
			if j != i {
				peers = append(peers, a)
			}
		}
		m.node.SetPeers(peers)
	}
	fab.HealGroup("g3")

	final, err := pstore.NewCoordinator(pool, dir.Addr()).Rebalance(ctx, pgroups)
	if err != nil {
		t.Fatalf("resumed rebalance: %v", err)
	}
	if len(final.Groups) != 3 || len(final.Moves) != 0 {
		t.Fatalf("resumed rebalance did not converge: %d groups, %d moves", len(final.Groups), len(final.Moves))
	}
	if final.Counts()[2] == 0 {
		t.Fatal("converged map assigns g3 nothing")
	}

	stopWriter()

	// Zero acked-write loss: every write the storm acked reads back at
	// its acked version or newer, through the final placement.
	verify := pstore.NewSharded(pool, placement.NewCache(pool, dir.Addr()))
	defer verify.Close()
	checked := 0
	acked.Range(func(k, v any) bool {
		checked++
		path, ver := k.(string), v.(uint64)
		_, got, ok, gerr := verify.Get(path)
		if gerr != nil || !ok {
			t.Fatalf("acked write %s unreadable after recovery: ok=%v err=%v", path, ok, gerr)
		}
		if got < ver {
			t.Fatalf("acked write lost: %s acked at %d, reads back at %d", path, ver, got)
		}
		return true
	})
	if checked != keys {
		t.Fatalf("checked %d paths, want %d", checked, keys)
	}

	// Anti-entropy converges every group's replicas to identical
	// digests — including the restarted g3.
	for round := 0; round < 3; round++ {
		for _, g := range groupNames {
			for _, m := range members[g] {
				m.node.SyncAll()
			}
		}
	}
	for _, g := range groupNames {
		base := members[g][0].node.Digest()
		for _, m := range members[g][1:] {
			if d := m.node.Digest(); !reflect.DeepEqual(base, d) {
				t.Fatalf("group %s replicas diverged after sync: %s has %d entries, %s has %d",
					g, members[g][0].name, len(base), m.name, len(d))
			}
		}
	}
}
