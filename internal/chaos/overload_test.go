package chaos_test

// Overload chaos test for the flow admission-control subsystem: an
// ASD with deliberately pinned capacity is offered several times that
// capacity in lookups while live daemons depend on it for lease
// renewal. The contract under test, end to end:
//
//   - shed requests are answered with a retryable "busy" reply — they
//     never hang and never lose their connection;
//   - data-plane goodput holds at >= 70% of the configured capacity
//     even at ~4x offered load (no congestion collapse);
//   - control traffic (lease renewals) rides the reserved headroom:
//     zero lease expirations while the storm runs.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ace/internal/asd"
	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/flow"
)

// overloadRate is the pinned ASD data-plane capacity in lookups/s.
// Small enough that a handful of closed-loop workers is a several-x
// overload even on a single-core CI machine.
const overloadRate = 150

func TestChaosOverloadGoodputAndLeases(t *testing.T) {
	if testing.Short() {
		t.Skip("overload soak")
	}
	dir := asd.New(asd.Config{
		ReapInterval: 20 * time.Millisecond,
		Daemon: daemon.Config{
			Flow: &flow.Config{
				Rate:          overloadRate,
				Burst:         overloadRate / 5,
				InitialLimit:  4,
				MinLimit:      2,
				MaxLimit:      16,
				TargetLatency: 20 * time.Millisecond,
				QueueLen:      16,
				MaxQueueWait:  30 * time.Millisecond,
			},
		},
	})
	if err := dir.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dir.Stop)

	// Three daemons hold short leases against the swamped directory.
	// Their renewals are control-plane: they must never be shed.
	leaseHolders := []string{"lease_a", "lease_b", "lease_c"}
	for _, name := range leaseHolders {
		d := daemon.New(daemon.Config{
			Name:     name,
			ASDAddr:  dir.Addr(),
			LeaseTTL: 300 * time.Millisecond,
			PoolConfig: &daemon.PoolConfig{
				DialTimeout: 300 * time.Millisecond,
				CallTimeout: time.Second,
				MaxRetries:  1,
				BackoffBase: 5 * time.Millisecond,
				BackoffMax:  20 * time.Millisecond,
				Seed:        chaosSeed,
			},
		})
		if err := d.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(d.Stop)
	}
	for _, name := range leaseHolders {
		if _, ok := dir.Directory().Get(name); !ok {
			t.Fatalf("%s did not register", name)
		}
	}

	goroutinesBefore := runtime.NumGoroutine()

	// The storm: closed-loop lookup workers with retries disabled, so
	// every busy reply surfaces instead of being absorbed by the pool.
	// On one core a handful of spinning workers offers far more than
	// overloadRate; the assertion below checks the overload was real.
	const workers = 4
	const stormDuration = 2 * time.Second
	var ok, busy, other atomic.Int64
	var wg sync.WaitGroup
	deadline := time.Now().Add(stormDuration)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pool := daemon.NewPoolConfig(daemon.PoolConfig{
				DialTimeout: 300 * time.Millisecond,
				CallTimeout: time.Second,
				MaxRetries:  -1, // surface busy; do not retry
				Seed:        chaosSeed + int64(w),
			})
			defer pool.Close()
			for time.Now().Before(deadline) {
				_, err := pool.Call(dir.Addr(), cmdlang.New(daemon.CmdLookup).SetString("class", "Service"))
				switch {
				case err == nil:
					ok.Add(1)
				case cmdlang.IsRemoteCode(err, cmdlang.CodeBusy):
					busy.Add(1)
				default:
					other.Add(1)
					if other.Load() < 4 {
						t.Errorf("worker %d: non-busy failure under overload: %v", w, err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	okN, busyN, otherN := ok.Load(), busy.Load(), other.Load()
	offered := okN + busyN + otherN
	goodput := float64(okN) / elapsed.Seconds()
	t.Logf("overload: offered %d (%.0f/s), goodput %.0f/s (capacity %d/s), busy %d, other %d",
		offered, float64(offered)/elapsed.Seconds(), goodput, overloadRate, busyN, otherN)

	// The overload must have been real (several x capacity) or the
	// test proves nothing.
	if float64(offered) < 3*overloadRate*elapsed.Seconds() {
		t.Skipf("machine too slow to generate overload: offered only %d requests in %v", offered, elapsed)
	}
	if busyN == 0 {
		t.Fatal("overload never shed a request")
	}
	// Shed traffic failed fast and clean: busy replies only.
	if otherN > 0 {
		t.Fatalf("%d requests failed with something other than busy", otherN)
	}
	// No congestion collapse: goodput >= 70% of pinned capacity.
	if goodput < 0.7*overloadRate {
		t.Fatalf("goodput %.0f/s under overload, want >= %.0f/s", goodput, 0.7*overloadRate)
	}

	// Control plane survived: zero lease expirations, zero shed
	// control commands, every lease holder still listed.
	if snap := dir.Telemetry().Snapshot(); snap.Counter(asd.MetricExpirations) != 0 {
		t.Fatalf("%d leases expired during the storm", snap.Counter(asd.MetricExpirations))
	}
	if s := dir.Flow().Snapshot(); s.ShedControl != 0 {
		t.Fatalf("control traffic was shed under overload: %+v", s)
	}
	for _, name := range leaseHolders {
		if _, ok := dir.Directory().Get(name); !ok {
			t.Fatalf("%s lost its directory entry during the storm", name)
		}
	}

	// The storm left no goroutine debris behind.
	deadlineG := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore+20 && time.Now().Before(deadlineG) {
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > goroutinesBefore+20 {
		t.Fatalf("goroutine growth after storm: %d -> %d", goroutinesBefore, g)
	}
}
