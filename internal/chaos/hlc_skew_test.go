package chaos_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"ace/internal/chaos"
	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/pstore"
	"ace/internal/telemetry"
)

// TestChaosBoundedReadFailsSafeUnderSkewAndPartition: the bounded
// read spectrum's safety claim is that it never serves data staler
// than its bound — it falls back to a quorum read instead. This test
// attacks that claim with the two faults that break naive
// staleness estimators:
//
//   - a partition: one replica stops applying writes, then heals
//     holding a value older than the bound. Bounded reads must not
//     serve its stale copy.
//   - clock skew: a node whose wall clock runs 10s fast self-stamps a
//     write, inflating its watermark and the client's frontier, which
//     makes every honest replica look stale. Combined with a
//     partition of the skewed node, bounded reads must degrade to
//     quorum fallbacks — conservative, never wrong.
//
// Every read in the test asserts the latest committed value: a single
// stale answer is a failed test, which is exactly the zero-violation
// guarantee the bench gates on.
func TestChaosBoundedReadFailsSafeUnderSkewAndPartition(t *testing.T) {
	fabric := chaos.NewFabric(chaosSeed)
	defer fabric.Close()

	// Three nodes, each reading wall time through the fabric so skew
	// is injectable, no anti-entropy (heals must come from quorum
	// machinery, not a background sync racing the assertions).
	var nodes []*pstore.Node
	var proxied []string
	for i := 1; i <= 3; i++ {
		name := fmt.Sprintf("r%d", i)
		n, err := pstore.NewNode(pstore.Config{
			Daemon:    daemon.Config{Name: "skew" + name},
			WallClock: fabric.WallClock(name, time.Now),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
		defer n.Stop()
		nodes = append(nodes, n)
		if _, err := fabric.Proxy(name, n.Addr()); err != nil {
			t.Fatal(err)
		}
		proxied = append(proxied, fabric.Addr(name))
	}
	for i, n := range nodes {
		var peers []string
		for j, a := range proxied {
			if j != i {
				peers = append(peers, a)
			}
		}
		n.SetPeers(peers)
	}

	reg := telemetry.NewRegistry()
	pool := daemon.NewPoolConfig(daemon.PoolConfig{
		DialTimeout:     300 * time.Millisecond,
		CallTimeout:     time.Second,
		MaxRetries:      1,
		BackoffBase:     5 * time.Millisecond,
		BackoffMax:      20 * time.Millisecond,
		BreakerCooldown: 100 * time.Millisecond,
		Seed:            chaosSeed,
		Telemetry:       reg,
	})
	defer pool.Close()
	client := pstore.NewClient(pool, proxied)
	defer client.Close()

	const bound = 1200 * time.Millisecond
	mode := pstore.ReadBounded(bound)
	mustRead := func(phase, want string) {
		t.Helper()
		val, _, ok, err := client.GetModeContext(context.Background(), "/skew/a", mode)
		if err != nil || !ok {
			t.Fatalf("%s: bounded read failed: ok=%v err=%v", phase, ok, err)
		}
		if string(val) != want {
			t.Fatalf("%s: bounded read served %q, want %q — staleness bound violated", phase, val, want)
		}
	}

	// Healthy phase: warm the tracker, prove the single-replica path
	// actually engages.
	if _, err := client.Put("/skew/a", []byte("a1")); err != nil {
		t.Fatal(err)
	}
	mustRead("healthy", "a1")
	if h := reg.Snapshot().Counter(pstore.MetricBoundedHits); h != 1 {
		t.Fatalf("healthy bounded read did not take the fast path (hits=%d)", h)
	}

	// Partition phase: cut r3 off, age the cluster past the bound,
	// commit a2 on the surviving majority, then heal r3 still holding
	// a1 — a copy now provably staler than the bound.
	fabric.Partition("r3")
	//acelint:ignore detrand staleness is wall-time lag; the test must age past the bound
	time.Sleep(bound + 300*time.Millisecond)
	if _, err := client.Put("/skew/a", []byte("a2")); err != nil {
		t.Fatalf("quorum write under partition: %v", err)
	}
	fabric.Heal("r3")
	for i := 0; i < 20; i++ {
		mustRead("healed-stale-replica", "a2")
	}

	// Skew phase: run r1's clock 10s fast and have it self-stamp a
	// write (a raw node-level put carries no client HLC, so the node
	// stamps with its own — skewed — clock). Its watermark, and with
	// it the client's frontier, jumps 10s ahead, making the honest
	// replicas look stale. Then partition r1 too: skewed AND
	// unreachable.
	fabric.SetClockSkew("r1", 10*time.Second)
	if _, err := pool.Call(proxied[0], cmdlang.New("psput").
		SetString("path", "/skew/poison").
		SetString("value", "00").
		SetInt("version", 1)); err != nil {
		t.Fatalf("raw skewed write: %v", err)
	}
	// A quorum read of the poisoned path folds r1's inflated
	// watermark into the frontier.
	if _, _, _, err := client.GetContext(context.Background(), "/skew/poison"); err != nil {
		t.Fatalf("quorum read of poisoned path: %v", err)
	}
	fabric.Partition("r1")
	fallbacksBefore := reg.Snapshot().Counter(pstore.MetricBoundedFallbacks)
	for i := 0; i < 20; i++ {
		mustRead("skewed+partitioned", "a2")
	}
	if f := reg.Snapshot().Counter(pstore.MetricBoundedFallbacks); f <= fallbacksBefore {
		t.Fatalf("skew+partition produced no quorum fallbacks (before=%d after=%d) — bounded reads are not failing safe", fallbacksBefore, f)
	}
	_, ctl := client.Staleness()
	if ctl.Share() >= 1 {
		t.Fatal("controller never narrowed under skew+partition")
	}
}
