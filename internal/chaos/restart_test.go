package chaos_test

import (
	"fmt"
	"sync"
	"testing"

	"ace/internal/chaos"
	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/pstore"
	"ace/internal/pstore/storage"
)

// TestKillAndRestartDurableReplica is the end-to-end durability drill:
// crash-stop one replica of a three-node persistent store in the
// middle of a concurrent write storm, then restart it from its disk.
//
//   - While the replica is down, the cluster must keep accepting
//     quorum writes — one crash costs a replica, not availability.
//   - The restarted node must recover its pre-crash durable state from
//     snapshot + WAL (its disk is a chaos.DiskFS, so everything that
//     was never fsynced is really gone, like a process kill).
//   - Anti-entropy must then converge it back to the cluster: every
//     write the storm acked is present on the restarted node at the
//     acked version or newer.
//
// The crashed node sits behind a chaos.Proxy so its client-facing
// address survives the restart.
func TestKillAndRestartDurableReplica(t *testing.T) {
	newNode := func(name string, fs *chaos.DiskFS) *pstore.Node {
		t.Helper()
		n, err := pstore.NewNode(pstore.Config{
			Daemon: daemon.Config{Name: name},
			Dir:    "/data",
			Storage: storage.Options{
				FS: fs,
				// Small segments so the storm exercises rotation and
				// the async snapshot/truncate cycle, not just appends.
				SegmentBytes:  2048,
				SnapshotBytes: 8192,
			},
		})
		if err != nil {
			t.Fatalf("NewNode %s: %v", name, err)
		}
		if err := n.Start(); err != nil {
			t.Fatalf("Start %s: %v", name, err)
		}
		return n
	}

	disk0 := chaos.NewDiskFS()
	n0 := newNode("pstore-r0", disk0)
	n1 := newNode("pstore-r1", chaos.NewDiskFS())
	defer n1.Stop()
	n2 := newNode("pstore-r2", chaos.NewDiskFS())
	defer n2.Stop()

	proxy, err := chaos.NewProxy(n0.Addr(), 1)
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	defer proxy.Close()
	// Peers reach node 0 through the proxy too, so anti-entropy keeps
	// working across the restart without re-wiring.
	n0.SetPeers([]string{n1.Addr(), n2.Addr()})
	n1.SetPeers([]string{proxy.Addr(), n2.Addr()})
	n2.SetPeers([]string{proxy.Addr(), n1.Addr()})

	pool := daemon.NewPool(nil)
	defer pool.Close()
	client := pstore.NewClient(pool, []string{proxy.Addr(), n1.Addr(), n2.Addr()})
	defer client.Close()

	const writers, perWriter, crashAfter = 4, 30, 8
	var acked sync.Map // path -> acked version
	var stormErrs sync.Map
	var preCrash, storm sync.WaitGroup
	for w := 0; w < writers; w++ {
		preCrash.Add(1)
		storm.Add(1)
		go func(w int) {
			defer storm.Done()
			signalled := false
			for i := 0; i < perWriter; i++ {
				path := fmt.Sprintf("/storm/w%d/%03d", w, i)
				ver, perr := client.Put(path, []byte(fmt.Sprintf("payload-%d-%d", w, i)))
				if perr != nil {
					stormErrs.Store(path, perr)
				} else {
					acked.Store(path, ver)
				}
				if i == crashAfter-1 && !signalled {
					signalled = true
					preCrash.Done()
				}
			}
		}(w)
	}

	// Crash node 0 mid-storm: engine abandoned without a clean close,
	// then the disk loses everything that was never fsynced.
	preCrash.Wait()
	n0.Crash()
	disk0.Crash()
	storm.Wait()

	// Availability: the storm never saw a failed write — before,
	// during, or after the crash the healthy majority kept acking.
	stormErrs.Range(func(k, v any) bool {
		t.Errorf("storm put %s failed: %v", k, v)
		return true
	})
	if t.Failed() {
		t.FailNow()
	}

	// Restart node 0 from its surviving disk state.
	n0b := newNode("pstore-r0", disk0)
	defer n0b.Stop()
	n0b.SetPeers([]string{n1.Addr(), n2.Addr()})
	proxy.SetTarget(n0b.Addr())

	info := n0b.Recovery()
	if info.CorruptRecords != 0 || len(info.Quarantined) != 0 {
		t.Fatalf("recovery found corruption after a plain crash: %+v", info)
	}
	if info.SnapshotRecords+info.Replayed == 0 {
		t.Fatalf("restarted node recovered nothing from disk: %+v", info)
	}

	// Converge: the restarted node pulls what it missed while down.
	// Anti-entropy is one-directional pull, so drive it from n0b; a
	// couple of rounds covers writes that landed mid-restart.
	for i := 0; i < 3; i++ {
		n0b.SyncAll()
	}

	// Every acked write is on the restarted node at >= its acked
	// version (a newer overwrite from the storm is fine — versions
	// only move forward).
	total := 0
	acked.Range(func(k, v any) bool {
		total++
		path, ackedVer := k.(string), v.(uint64)
		reply, gerr := pool.Call(n0b.Addr(), cmdlang.New("psget").SetString("path", path))
		if gerr != nil {
			t.Fatalf("restarted node psget %s: %v", path, gerr)
		}
		if got := reply.Int("version", 0); uint64(got) < ackedVer {
			t.Fatalf("restarted node has %s at version %d, acked %d", path, got, ackedVer)
		}
		return true
	})
	if total != writers*perWriter {
		t.Fatalf("storm acked %d writes, want %d", total, writers*perWriter)
	}

	// And the cluster as a whole still serves everything.
	if val, _, ok, err := client.Get("/storm/w0/000"); err != nil || !ok || len(val) == 0 {
		t.Fatalf("cluster read after restart = %q ok=%v err=%v", val, ok, err)
	}
}
