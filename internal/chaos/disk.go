package chaos

import (
	"errors"
	"fmt"
	"io"
	"path"
	"sort"
	"strings"
	"sync"

	"ace/internal/pstore/storage"
)

// DiskFS is a deterministic in-memory filesystem implementing the
// storage engine's FS seam, with the failure modes a real disk has
// and a unit test can't get from the real one on demand:
//
//   - fsync failures (FailSync): writes appear to succeed but
//     durability is refused — the storage engine must stop
//     acknowledging writes, not lie;
//   - torn writes (TornWrites): a write persists only a prefix, then
//     fails — the partial-flush artifact of a crashing kernel;
//   - kill-and-restart (Crash): every byte written since the last
//     successful Sync vanishes and every open handle dies, exactly
//     the state a process kill leaves behind.
//
// Every file tracks two byte ranges: its volatile content (what reads
// and the OS page cache would see) and its durable prefix-state (what
// survives Crash). Sync promotes volatile to durable. Metadata
// operations (create, rename, remove) are modeled as immediately
// durable — the engine separately fsyncs directories on the real
// filesystem, and modeling metadata loss would test the model, not
// the engine.
//
// All behavior is a pure function of the call sequence — no clocks,
// no randomness — so chaos schedules using it reproduce exactly.
type DiskFS struct {
	mu       sync.Mutex
	files    map[string]*diskFile
	failSync error
	torn     bool
	syncs    int64
	writes   int64
	crashes  int64
}

type diskFile struct {
	volatile []byte
	durable  []byte
}

// NewDiskFS returns an empty in-memory disk.
func NewDiskFS() *DiskFS {
	return &DiskFS{files: make(map[string]*diskFile)}
}

// FailSync makes every subsequent Sync (file or directory) fail with
// err; nil heals the disk.
func (d *DiskFS) FailSync(err error) {
	d.mu.Lock()
	d.failSync = err
	d.mu.Unlock()
}

// TornWrites makes every subsequent write persist only the first half
// of its buffer and then fail — the torn-write crash artifact.
func (d *DiskFS) TornWrites(on bool) {
	d.mu.Lock()
	d.torn = on
	d.mu.Unlock()
}

// Crash simulates a process kill plus page-cache loss: all volatile
// (unsynced) content reverts to the last durable state and every open
// handle becomes unusable. The DiskFS itself stays usable — reopen
// files to "restart".
func (d *DiskFS) Crash() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashes++
	for _, f := range d.files {
		f.volatile = append([]byte(nil), f.durable...)
	}
}

// Syncs returns how many successful file Syncs the disk served.
func (d *DiskFS) Syncs() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.syncs
}

// Corrupt flips one byte of name's content (volatile and durable) at
// offset, for constructing mid-log damage deterministically.
func (d *DiskFS) Corrupt(name string, offset int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[path.Clean(name)]
	if !ok {
		return fmt.Errorf("chaos: corrupt %s: no such file", name)
	}
	if offset < 0 || offset >= len(f.volatile) {
		return fmt.Errorf("chaos: corrupt %s: offset %d out of range %d", name, offset, len(f.volatile))
	}
	f.volatile[offset] ^= 0xFF
	if offset < len(f.durable) {
		f.durable[offset] ^= 0xFF
	}
	return nil
}

// TruncateTo cuts name's content (volatile and durable) to size, for
// constructing a torn tail deterministically.
func (d *DiskFS) TruncateTo(name string, size int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[path.Clean(name)]
	if !ok {
		return fmt.Errorf("chaos: truncate %s: no such file", name)
	}
	if size < 0 || size > len(f.volatile) {
		return fmt.Errorf("chaos: truncate %s: size %d out of range %d", name, size, len(f.volatile))
	}
	f.volatile = f.volatile[:size]
	if size < len(f.durable) {
		f.durable = f.durable[:size]
	}
	return nil
}

// Size returns name's current (volatile) length.
func (d *DiskFS) Size(name string) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[path.Clean(name)]
	if !ok {
		return 0, fmt.Errorf("chaos: size %s: no such file", name)
	}
	return len(f.volatile), nil
}

// --- storage.FS implementation ---

// MkdirAll is a no-op: the in-memory disk has a flat keyspace of full
// paths and directories spring into being.
func (d *DiskFS) MkdirAll(string) error { return nil }

// List returns the names of files directly inside dir, sorted.
func (d *DiskFS) List(dir string) ([]string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	prefix := path.Clean(dir) + "/"
	var names []string
	for p := range d.files {
		if strings.HasPrefix(p, prefix) && !strings.Contains(p[len(prefix):], "/") {
			names = append(names, p[len(prefix):])
		}
	}
	sort.Strings(names)
	return names, nil
}

// Open opens name read-only at its current volatile content.
func (d *DiskFS) Open(name string) (storage.File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[path.Clean(name)]
	if !ok {
		return nil, fmt.Errorf("chaos: open %s: no such file", name)
	}
	return &diskHandle{fs: d, f: f, name: path.Clean(name), read: true, gen: d.crashes}, nil
}

// Create opens name for writing, truncating previous content. The
// truncation is metadata: durable immediately, like the real engine's
// create-then-SyncDir sequence.
func (d *DiskFS) Create(name string) (storage.File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f := &diskFile{}
	d.files[path.Clean(name)] = f
	return &diskHandle{fs: d, f: f, name: path.Clean(name), gen: d.crashes}, nil
}

// OpenAppend opens (creating if needed) name for appending.
func (d *DiskFS) OpenAppend(name string) (storage.File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[path.Clean(name)]
	if !ok {
		f = &diskFile{}
		d.files[path.Clean(name)] = f
	}
	return &diskHandle{fs: d, f: f, name: path.Clean(name), gen: d.crashes}, nil
}

// Rename atomically and durably renames a file.
func (d *DiskFS) Rename(oldname, newname string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[path.Clean(oldname)]
	if !ok {
		return fmt.Errorf("chaos: rename %s: no such file", oldname)
	}
	delete(d.files, path.Clean(oldname))
	d.files[path.Clean(newname)] = f
	return nil
}

// Remove durably deletes a file.
func (d *DiskFS) Remove(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.files[path.Clean(name)]; !ok {
		return fmt.Errorf("chaos: remove %s: no such file", name)
	}
	delete(d.files, path.Clean(name))
	return nil
}

// SyncDir honors FailSync; metadata itself is always durable here.
func (d *DiskFS) SyncDir(string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.failSync
}

// diskHandle is one open file. A Crash invalidates it.
type diskHandle struct {
	fs     *DiskFS
	f      *diskFile
	name   string
	read   bool
	off    int // read offset
	closed bool
	gen    int64 // crash count at open; stale handles fail
}

var errHandleDead = errors.New("chaos: file handle died in crash")

func (h *diskHandle) live() error {
	if h.closed {
		return errors.New("chaos: file closed")
	}
	if h.fs.crashes != h.gen {
		return errHandleDead
	}
	// A handle whose file was renamed/removed still points at the old
	// inode, like a real fd — no staleness check needed for that.
	return nil
}

func (h *diskHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.live(); err != nil {
		return 0, err
	}
	if h.off >= len(h.f.volatile) {
		return 0, io.EOF
	}
	n := copy(p, h.f.volatile[h.off:])
	h.off += n
	return n, nil
}

func (h *diskHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.live(); err != nil {
		return 0, err
	}
	h.fs.writes++
	if h.fs.torn {
		n := len(p) / 2
		h.f.volatile = append(h.f.volatile, p[:n]...)
		return n, errors.New("chaos: torn write")
	}
	h.f.volatile = append(h.f.volatile, p...)
	return len(p), nil
}

func (h *diskHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.live(); err != nil {
		return err
	}
	if h.fs.failSync != nil {
		return h.fs.failSync
	}
	h.f.durable = append([]byte(nil), h.f.volatile...)
	h.fs.syncs++
	return nil
}

func (h *diskHandle) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.live(); err != nil {
		return err
	}
	if size < 0 || size > int64(len(h.f.volatile)) {
		return fmt.Errorf("chaos: truncate to %d outside [0,%d]", size, len(h.f.volatile))
	}
	h.f.volatile = h.f.volatile[:size]
	if size < int64(len(h.f.durable)) {
		h.f.durable = h.f.durable[:size]
	}
	return nil
}

func (h *diskHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}
