package chaos

import (
	"fmt"
	"sync"
	"time"
)

// Fabric manages a set of named proxies fronting the daemons of one
// test environment, so partitions can be expressed over sets of
// services ("cut replica 2 and the ASD off") and healed together.
// Per-proxy seeds derive deterministically from the fabric seed and
// the order of creation.
type Fabric struct {
	seed int64

	mu      sync.Mutex
	proxies map[string]*Proxy
	groups  map[string][]string
	skews   map[string]time.Duration
	n       int64
}

// NewFabric creates an empty fabric whose proxies derive their fault
// schedules from seed.
func NewFabric(seed int64) *Fabric {
	return &Fabric{
		seed:    seed,
		proxies: make(map[string]*Proxy),
		groups:  make(map[string][]string),
		skews:   make(map[string]time.Duration),
	}
}

// Proxy creates (or returns) the named proxy fronting target.
func (f *Fabric) Proxy(name, target string) (*Proxy, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if p, ok := f.proxies[name]; ok {
		return p, nil
	}
	f.n++
	p, err := NewProxy(target, dirSeed(f.seed, f.n, 2))
	if err != nil {
		return nil, fmt.Errorf("chaos: proxy %s: %w", name, err)
	}
	f.proxies[name] = p
	return p, nil
}

// Get returns the named proxy, or nil.
func (f *Fabric) Get(name string) *Proxy {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.proxies[name]
}

// Addr returns the client-facing address of the named proxy ("" when
// unknown).
func (f *Fabric) Addr(name string) string {
	if p := f.Get(name); p != nil {
		return p.Addr()
	}
	return ""
}

// Partition cuts the named proxies off: their live connections die
// and new ones are refused, while the rest of the fabric is
// untouched.
func (f *Fabric) Partition(names ...string) {
	for _, n := range names {
		if p := f.Get(n); p != nil {
			p.Partition()
		}
	}
}

// Heal clears all faults on the named proxies (all proxies when none
// are named).
func (f *Fabric) Heal(names ...string) {
	if len(names) == 0 {
		f.mu.Lock()
		proxies := make([]*Proxy, 0, len(f.proxies))
		for _, p := range f.proxies {
			proxies = append(proxies, p)
		}
		f.mu.Unlock()
		for _, p := range proxies {
			p.Heal()
		}
		return
	}
	for _, n := range names {
		if p := f.Get(n); p != nil {
			p.Heal()
		}
	}
}

// DefineGroup names a set of proxies as one replica group, so whole
// -group faults ("kill replica group g3") are a single call instead of
// a proxy list every chaos test re-derives. Redefining a group
// replaces its membership. Proxies need not exist yet — membership is
// resolved at fault time.
func (f *Fabric) DefineGroup(group string, proxies ...string) {
	f.mu.Lock()
	f.groups[group] = append([]string(nil), proxies...)
	f.mu.Unlock()
}

// Group returns the proxy names of a defined group (nil when
// unknown).
func (f *Fabric) Group(group string) []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.groups[group]...)
}

// PartitionGroup cuts every proxy of the named group off at once —
// the "whole replica group dies" failure mode.
func (f *Fabric) PartitionGroup(group string) {
	f.Partition(f.Group(group)...)
}

// HealGroup clears all faults on every proxy of the named group.
func (f *Fabric) HealGroup(group string) {
	f.Heal(f.Group(group)...)
}

// SetClockSkew sets the named node's wall-clock offset — the
// clock-skew fault. It takes effect on the node's next clock read via
// the WallClock source built for it; offset 0 heals the skew. Skews
// are keyed by node name and independent of the proxies, so a node
// can be skewed without being fronted.
func (f *Fabric) SetClockSkew(name string, offset time.Duration) {
	f.mu.Lock()
	if offset == 0 {
		delete(f.skews, name)
	} else {
		f.skews[name] = offset
	}
	f.mu.Unlock()
}

// ClockSkew returns the named node's current wall-clock offset.
func (f *Fabric) ClockSkew(name string) time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.skews[name]
}

// WallClock builds the named node's time source: base shifted by the
// node's skew, re-read on every call so SetClockSkew takes effect on
// a running node. Feed it to the node's injectable clock (e.g.
// pstore.Config.WallClock) with base = time.Now.
func (f *Fabric) WallClock(name string, base func() time.Time) func() time.Time {
	return func() time.Time {
		return base().Add(f.ClockSkew(name))
	}
}

// SetGroupFaults applies the same fault set to every proxy of the
// named group (degrade a whole group without severing it).
func (f *Fabric) SetGroupFaults(group string, faults Faults) {
	for _, n := range f.Group(group) {
		if p := f.Get(n); p != nil {
			p.SetFaults(faults)
		}
	}
}

// Close shuts every proxy down.
func (f *Fabric) Close() {
	f.mu.Lock()
	proxies := make([]*Proxy, 0, len(f.proxies))
	for _, p := range f.proxies {
		proxies = append(proxies, p)
	}
	f.proxies = map[string]*Proxy{}
	f.mu.Unlock()
	for _, p := range proxies {
		p.Close()
	}
}
