package chaos_test

// Chaos-driven integration tests for the resilience layer: the
// paper's robustness claims (services survive daemon crashes, state
// lives in the replicated persistent store, leases heal directory
// state) exercised under injected partitions, stalls, and restarts.
// All fault schedules derive from fixed seeds, so a failure here
// reproduces exactly.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"ace/internal/asd"
	"ace/internal/chaos"
	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/pstore"
	"ace/internal/telemetry"
)

const chaosSeed = 20260806 // fixed: schedules must reproduce run-to-run

// chaosPool builds a client pool tight enough that injected faults
// surface in milliseconds, not dial-timeout seconds.
func chaosPool() *daemon.Pool {
	return daemon.NewPoolConfig(daemon.PoolConfig{
		DialTimeout:     300 * time.Millisecond,
		CallTimeout:     time.Second,
		MaxRetries:      1,
		BackoffBase:     5 * time.Millisecond,
		BackoffMax:      20 * time.Millisecond,
		BreakerCooldown: 100 * time.Millisecond,
		Seed:            chaosSeed,
	})
}

// TestChaosPstoreQuorumUnderPartition: with one replica partitioned
// away, quorum reads and writes stay correct and prompt; after the
// partition heals, read repair converges the lagging replica without
// anti-entropy running.
func TestChaosPstoreQuorumUnderPartition(t *testing.T) {
	cluster, err := pstore.StartCluster(3, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.StopAll()

	fabric := chaos.NewFabric(chaosSeed)
	defer fabric.Close()
	var proxied []string
	for i, addr := range cluster.Addrs() {
		name := fmt.Sprintf("r%d", i+1)
		if _, err := fabric.Proxy(name, addr); err != nil {
			t.Fatal(err)
		}
		proxied = append(proxied, fabric.Addr(name))
	}

	pool := chaosPool()
	defer pool.Close()
	client := pstore.NewClient(pool, proxied)
	defer client.Close()

	if _, err := client.Put("/chaos/x", []byte("v1")); err != nil {
		t.Fatal(err)
	}

	// Partition replica 3 and keep writing/reading through the
	// remaining majority.
	fabric.Partition("r3")
	start := time.Now()
	v2, err := client.Put("/chaos/x", []byte("v2"))
	if err != nil {
		t.Fatalf("quorum write with one replica partitioned: %v", err)
	}
	got, gotVer, ok, err := client.Get("/chaos/x")
	if err != nil || !ok {
		t.Fatalf("quorum read with one replica partitioned: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, []byte("v2")) || gotVer != v2 {
		t.Fatalf("read %q@%d, want v2@%d", got, gotVer, v2)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("degraded quorum round took %v; partition is not cheap", elapsed)
	}

	// Heal. The lagging replica catches up through client read repair
	// alone (the cluster runs no background anti-entropy here).
	fabric.Heal("r3")
	deadline := time.Now().Add(10 * time.Second)
	for {
		client.Get("/chaos/x") //nolint:errcheck — each read triggers repair of laggards
		reply, err := pool.Call(proxied[2], cmdlang.New("psget").SetString("path", "/chaos/x"))
		if err == nil && reply.Str("value", "") != "" && uint64(reply.Int("version", 0)) == v2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica 3 never converged after heal (err=%v)", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestChaosPstoreQuorumFailsClosedWithoutMajority: with two of three
// replicas partitioned, reads and writes fail promptly and
// explicitly rather than hanging or returning stale data as fresh.
func TestChaosPstoreQuorumFailsClosedWithoutMajority(t *testing.T) {
	cluster, err := pstore.StartCluster(3, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.StopAll()

	fabric := chaos.NewFabric(chaosSeed)
	defer fabric.Close()
	var proxied []string
	for i, addr := range cluster.Addrs() {
		name := fmt.Sprintf("r%d", i+1)
		if _, err := fabric.Proxy(name, addr); err != nil {
			t.Fatal(err)
		}
		proxied = append(proxied, fabric.Addr(name))
	}
	pool := chaosPool()
	defer pool.Close()
	client := pstore.NewClient(pool, proxied)
	defer client.Close()

	if _, err := client.Put("/chaos/y", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	fabric.Partition("r1", "r2")
	start := time.Now()
	if _, err := client.Put("/chaos/y", []byte("v2")); err == nil {
		t.Fatal("minority write succeeded")
	}
	if _, _, _, err := client.Get("/chaos/y"); err == nil {
		t.Fatal("minority read reported a quorum")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("minority round took %v; failures are not prompt", elapsed)
	}
}

// TestChaosASDLeaseSurvivesDirectoryRestart: a daemon keeps its
// directory entry alive across an ASD crash and restart on a new
// port (the proxy keeps the well-known address stable), via lease
// renewal discovering the restart and re-registering.
func TestChaosASDLeaseSurvivesDirectoryRestart(t *testing.T) {
	dir1 := asd.New(asd.Config{ReapInterval: 20 * time.Millisecond})
	if err := dir1.Start(); err != nil {
		t.Fatal(err)
	}

	proxy, err := chaos.NewProxy(dir1.Addr(), chaosSeed)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	d := daemon.New(daemon.Config{
		Name:     "phoenix_chaos",
		ASDAddr:  proxy.Addr(),
		LeaseTTL: 200 * time.Millisecond,
		PoolConfig: &daemon.PoolConfig{
			DialTimeout:     200 * time.Millisecond,
			CallTimeout:     500 * time.Millisecond,
			MaxRetries:      -1,
			BreakerCooldown: 100 * time.Millisecond,
			Seed:            chaosSeed,
		},
	})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	if got := dir1.Directory().Lookup(asd.Query{Name: "phoenix_chaos"}); len(got) != 1 {
		t.Fatalf("initial registration missing: %v", got)
	}

	// The directory crashes; renewals fail at the transport level
	// until a fresh, empty directory comes up behind the same proxy
	// address.
	dir1.Stop()
	// Deliberate fault-window pacing, not synchronization: the test
	// holds the directory down long enough for several renewal attempts
	// (one per ~66 ms) to fail at the transport level. There is no
	// externally observable state to poll for a failed renewal.
	//acelint:ignore detrand fixed fault window; failed renewals are not observable to poll
	time.Sleep(300 * time.Millisecond)
	dir2 := asd.New(asd.Config{ReapInterval: 20 * time.Millisecond})
	if err := dir2.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dir2.Stop)
	proxy.SetTarget(dir2.Addr())

	// The daemon's next renewal gets not_found from the new directory
	// and re-registers.
	deadline := time.Now().Add(10 * time.Second)
	for len(dir2.Directory().Lookup(asd.Query{Name: "phoenix_chaos"})) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("daemon never re-registered with the restarted directory")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// And when the daemon stops, its lease expires from the live
	// directory (no zombie entries).
	d.Stop()
	deadline = time.Now().Add(10 * time.Second)
	for len(dir2.Directory().Lookup(asd.Query{Name: "phoenix_chaos"})) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("stopped daemon's lease never expired")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosNotificationDeliveryDegradesGracefully: a blackholed
// listener neither stalls nor crashes the notifying daemon; once the
// path heals, later notifications flow again (delivery is
// at-least-once with no replay of lost ones).
func TestChaosNotificationDeliveryDegradesGracefully(t *testing.T) {
	source := daemon.New(daemon.Config{
		Name: "cam_chaos",
		PoolConfig: &daemon.PoolConfig{
			DialTimeout:     200 * time.Millisecond,
			CallTimeout:     500 * time.Millisecond,
			BreakerCooldown: 100 * time.Millisecond,
			Seed:            chaosSeed,
		},
	})
	source.Handle(cmdlang.CommandSpec{Name: "move", Args: []cmdlang.ArgSpec{{Name: "x", Kind: cmdlang.KindInt}}},
		func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) { return nil, nil })
	if err := source.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(source.Stop)

	var mu sync.Mutex
	seen := 0
	listener := daemon.New(daemon.Config{Name: "tracker_chaos"})
	listener.Handle(cmdlang.CommandSpec{Name: "onMoved", AllowExtra: true},
		func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			mu.Lock()
			seen++
			mu.Unlock()
			return nil, nil
		})
	if err := listener.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(listener.Stop)

	proxy, err := chaos.NewProxy(listener.Addr(), chaosSeed)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	pool := chaosPool()
	defer pool.Close()
	if err := daemon.Subscribe(pool, source.Addr(), "move", "tracker_chaos", proxy.Addr(), "onMoved"); err != nil {
		t.Fatal(err)
	}

	count := func() int {
		mu.Lock()
		defer mu.Unlock()
		return seen
	}

	// Baseline delivery works.
	if _, err := pool.Call(source.Addr(), cmdlang.New("move").SetInt("x", 1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for count() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("baseline notification never delivered")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Blackhole the listener. Commands on the source must stay fast —
	// notification delivery is off the command path.
	proxy.SetFaults(chaos.Faults{Blackhole: true})
	for i := 0; i < 5; i++ {
		start := time.Now()
		if _, err := pool.Call(source.Addr(), cmdlang.New("move").SetInt("x", 2)); err != nil {
			t.Fatalf("source call failed while listener blackholed: %v", err)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("source call took %v with a blackholed listener", elapsed)
		}
	}

	// Heal and keep executing: delivery must resume. (Notifications
	// swallowed during the blackhole stay lost — at-least-once, not
	// replayed — so we only demand that *new* executions get through.)
	proxy.Heal()
	before := count()
	deadline = time.Now().Add(10 * time.Second)
	for count() <= before {
		if _, err := pool.Call(source.Addr(), cmdlang.New("move").SetInt("x", 3)); err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("notifications never resumed after heal")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestChaosPstoreCorruptReplicaCannotWinQuorum: a replica answering
// with corrupt (non-hex) values is treated as failed — it neither
// wins the read nor counts toward the majority — while the healthy
// majority still serves the true value.
func TestChaosPstoreCorruptReplicaCannotWinQuorum(t *testing.T) {
	cluster, err := pstore.StartCluster(3, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.StopAll()

	pool := chaosPool()
	defer pool.Close()

	// A rogue "replica": speaks the psget protocol but returns
	// garbage hex at a sky-high version, simulating on-disk
	// corruption.
	rogue := daemon.New(daemon.Config{Name: "rogue_replica"})
	rogue.Handle(cmdlang.CommandSpec{Name: "psget", AllowExtra: true},
		func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			return cmdlang.OK().SetString("value", "zz_not_hex").SetInt("version", 1<<40), nil
		})
	rogue.Handle(cmdlang.CommandSpec{Name: "psfetch", AllowExtra: true},
		func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			return cmdlang.OK().SetString("value", "zz_not_hex").SetInt("version", 1<<40), nil
		})
	rogue.Handle(cmdlang.CommandSpec{Name: "psput", AllowExtra: true},
		func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			return cmdlang.OK().SetBool("applied", true), nil
		})
	if err := rogue.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rogue.Stop)

	// Seed the healthy pair through a client that doesn't know the
	// rogue.
	healthy := pstore.NewClient(pool, cluster.Addrs()[:2])
	defer healthy.Close()
	version, err := healthy.Put("/chaos/z", []byte("truth"))
	if err != nil {
		t.Fatal(err)
	}

	// Now read through a set where the rogue replaces replica 3.
	mixed := pstore.NewClient(pool, []string{cluster.Addrs()[0], cluster.Addrs()[1], rogue.Addr()})
	defer mixed.Close()
	got, gotVer, ok, err := mixed.Get("/chaos/z")
	if err != nil || !ok {
		t.Fatalf("read with corrupt replica: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, []byte("truth")) || gotVer != version {
		t.Fatalf("corrupt replica won the read: %q@%d", got, gotVer)
	}
}

// TestChaosPstoreBlackholedReplicaDoesNotSetQuorumLatency: the
// regression test for the quorum fast-path. A blackholed replica
// (connection up, bytes vanish) used to hold every Get and Put
// hostage for the full call timeout because the fan-out joined all
// replicas before returning. With the fast-path, the healthy
// majority decides the outcome and the blackholed replica is
// cancelled in the background: client-visible latency must stay far
// under the call timeout, and the stragglers must show up in the
// pool's telemetry.
func TestChaosPstoreBlackholedReplicaDoesNotSetQuorumLatency(t *testing.T) {
	cluster, err := pstore.StartCluster(3, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.StopAll()

	fabric := chaos.NewFabric(chaosSeed)
	defer fabric.Close()
	var proxied []string
	for i, addr := range cluster.Addrs() {
		name := fmt.Sprintf("r%d", i+1)
		if _, err := fabric.Proxy(name, addr); err != nil {
			t.Fatal(err)
		}
		proxied = append(proxied, fabric.Addr(name))
	}

	const callTimeout = time.Second
	reg := telemetry.NewRegistry()
	pool := daemon.NewPoolConfig(daemon.PoolConfig{
		DialTimeout:     300 * time.Millisecond,
		CallTimeout:     callTimeout,
		MaxRetries:      1,
		BackoffBase:     5 * time.Millisecond,
		BackoffMax:      20 * time.Millisecond,
		BreakerCooldown: 100 * time.Millisecond,
		Seed:            chaosSeed,
		Telemetry:       reg,
	})
	defer pool.Close()
	client := pstore.NewClient(pool, proxied)
	defer client.Close()

	// Healthy baseline.
	if _, err := client.Put("/chaos/bh", []byte("v1")); err != nil {
		t.Fatal(err)
	}

	// Blackhole replica 3: its connections stay up but every byte is
	// discarded, so its calls stall until the deadline — the
	// worst-case straggler.
	fabric.Get("r3").SetFaults(chaos.Faults{Blackhole: true})

	for i := 0; i < 3; i++ {
		start := time.Now()
		v, err := client.Put("/chaos/bh", []byte(fmt.Sprintf("v%d", i+2)))
		if err != nil {
			t.Fatalf("round %d: quorum write with blackholed replica: %v", i, err)
		}
		if elapsed := time.Since(start); elapsed > callTimeout/2 {
			t.Fatalf("round %d: Put took %v with one blackholed replica (timeout %v); blackholed replica set the quorum latency", i, elapsed, callTimeout)
		}
		start = time.Now()
		got, gotVer, ok, err := client.Get("/chaos/bh")
		if err != nil || !ok || gotVer != v {
			t.Fatalf("round %d: quorum read: ver=%d ok=%v err=%v", i, gotVer, ok, err)
		}
		if elapsed := time.Since(start); elapsed > callTimeout/2 {
			t.Fatalf("round %d: Get took %v with one blackholed replica (timeout %v); blackholed replica set the quorum latency", i, elapsed, callTimeout)
		}
		if want := []byte(fmt.Sprintf("v%d", i+2)); !bytes.Equal(got, want) {
			t.Fatalf("round %d: read %q, want %q", i, got, want)
		}
	}

	snap := reg.Snapshot()
	if n := snap.Counter(pstore.MetricReadStragglers); n < 1 {
		t.Errorf("read stragglers = %d, want >= 1", n)
	}
	if n := snap.Counter(pstore.MetricWriteStragglers); n < 1 {
		t.Errorf("write stragglers = %d, want >= 1", n)
	}
}

// TestChaosPrimaryDirectoryKillZeroExpirations: the replicated-ASD
// drill. Three directory daemons share one persistent store; a fleet
// of service daemons holds short leases against the first (primary)
// replica with the others as fallbacks. Killing the primary in the
// middle of the renewal storm must cost ZERO lease expirations — the
// durable lease state outlives the daemon that acked it, renewals
// fail over, and the survivors confirm every deadline against the
// store before reaping anything.
func TestChaosPrimaryDirectoryKillZeroExpirations(t *testing.T) {
	cluster, err := pstore.StartCluster(3, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.StopAll()

	pool := chaosPool()
	defer pool.Close()
	store := pstore.NewClient(pool, cluster.Addrs())
	defer store.Close()

	var dirs []*asd.Service
	for i := 0; i < 3; i++ {
		s := asd.New(asd.Config{
			Daemon:       daemon.Config{Name: fmt.Sprintf("asd_chaos%d", i+1)},
			ReapInterval: 50 * time.Millisecond,
			Store:        store,
		})
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Stop)
		dirs = append(dirs, s)
	}
	if err := asd.SubscribeReplicas(pool, dirs); err != nil {
		t.Fatal(err)
	}
	asdAddrs := []string{dirs[0].Addr(), dirs[1].Addr(), dirs[2].Addr()}

	// A fleet of short-lease daemons: every ~130 ms each one renews,
	// so the primary dies with renewals in flight.
	const fleet = 6
	var svcs []*daemon.Daemon
	for i := 0; i < fleet; i++ {
		d := daemon.New(daemon.Config{
			Name:     fmt.Sprintf("storm%d", i),
			ASDAddr:  asdAddrs[0],
			ASDAddrs: asdAddrs[1:],
			LeaseTTL: 400 * time.Millisecond,
			PoolConfig: &daemon.PoolConfig{
				DialTimeout:     200 * time.Millisecond,
				CallTimeout:     time.Second,
				MaxRetries:      1,
				BackoffBase:     5 * time.Millisecond,
				BackoffMax:      20 * time.Millisecond,
				BreakerCooldown: 100 * time.Millisecond,
				Seed:            chaosSeed,
			},
		})
		if err := d.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(d.Stop)
		svcs = append(svcs, d)
	}

	// All registered with the primary.
	for _, d := range svcs {
		if got := dirs[0].Directory().Lookup(asd.Query{Name: d.Name()}); len(got) != 1 {
			t.Fatalf("%s not registered: %v", d.Name(), got)
		}
	}

	// Let the storm reach steady state, then kill the primary.
	//acelint:ignore detrand fixed storm warm-up; in-flight renewals are not observable to poll
	time.Sleep(200 * time.Millisecond)
	dirs[0].Stop()

	// Hold the fault for several lease periods. Survivors must never
	// count an expiration: a lease acked by the dead primary is
	// durable, so a survivor's stale memory reads through instead of
	// reaping.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		for i := 1; i < 3; i++ {
			if _, exp := dirs[i].Directory().Counters(); exp != 0 {
				t.Fatalf("replica %d expired a lease after the primary kill", i+1)
			}
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Every lease is still alive and resolvable through a survivor.
	for _, d := range svcs {
		addr, err := asd.Resolve(pool, dirs[1].Addr(), asd.Query{Name: d.Name()})
		if err != nil || addr != d.Addr() {
			t.Fatalf("%s lost after primary kill: addr=%q err=%v", d.Name(), addr, err)
		}
	}

	// The directory is still writable: a newcomer registers through
	// the survivors...
	late := daemon.New(daemon.Config{
		Name:     "storm_late",
		ASDAddr:  asdAddrs[0], // still points first at the corpse; must fail over
		ASDAddrs: asdAddrs[1:],
		LeaseTTL: 400 * time.Millisecond,
		PoolConfig: &daemon.PoolConfig{
			DialTimeout:     200 * time.Millisecond,
			CallTimeout:     time.Second,
			MaxRetries:      1,
			BackoffBase:     5 * time.Millisecond,
			BackoffMax:      20 * time.Millisecond,
			BreakerCooldown: 100 * time.Millisecond,
			Seed:            chaosSeed,
		},
	})
	if err := late.Start(); err != nil {
		t.Fatalf("registration through survivors failed: %v", err)
	}
	t.Cleanup(late.Stop)
	if addr, err := asd.Resolve(pool, dirs[2].Addr(), asd.Query{Name: "storm_late"}); err != nil || addr != late.Addr() {
		t.Fatalf("newcomer not resolvable: addr=%q err=%v", addr, err)
	}

	// ...and reaping still works — it just demands durable
	// confirmation. A crashed service (registered, never renews)
	// expires from the survivors.
	if _, err := pool.Call(dirs[1].Addr(), cmdlang.New(daemon.CmdRegister).
		SetWord("name", "storm_zombie").SetWord("host", "gone").SetInt("port", 1).
		SetString("addr", "gone:1").SetInt("lease", 200)); err != nil {
		t.Fatal(err)
	}
	expiry := time.Now().Add(10 * time.Second)
	for {
		_, err := asd.Resolve(pool, dirs[1].Addr(), asd.Query{Name: "storm_zombie"})
		if cmdlang.IsRemoteCode(err, cmdlang.CodeNotFound) {
			break
		}
		if time.Now().After(expiry) {
			t.Fatal("crashed service's lease never expired on the survivors")
		}
		time.Sleep(50 * time.Millisecond)
	}
}
