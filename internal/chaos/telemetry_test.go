package chaos_test

// Chaos + telemetry: the metrics layer must faithfully reflect
// injected faults. Latency injection shows up in the call-latency
// histogram, a partitioned peer produces exactly the retry count the
// deterministic schedule dictates, and a blackholed peer produces
// exactly one recorded timeout per abandoned call.

import (
	"testing"
	"time"

	"ace/internal/chaos"
	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/telemetry"
	"ace/internal/wire"
)

// startEchoDaemon runs a plain daemon for fault-injected traffic.
func startEchoDaemon(t *testing.T) *daemon.Daemon {
	t.Helper()
	d := daemon.New(daemon.Config{Name: "echo"})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	return d
}

// TestChaosLatencyShowsInHistogram: calls through a proxy that delays
// every frame by a known amount must observe at least that delay in
// the pool's call-latency histogram — the histogram is trustworthy
// evidence of a slow path.
func TestChaosLatencyShowsInHistogram(t *testing.T) {
	d := startEchoDaemon(t)
	proxy, err := chaos.NewProxy(d.Addr(), chaosSeed)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	const injected = 25 * time.Millisecond
	proxy.SetFaults(chaos.Faults{Latency: injected})

	reg := telemetry.NewRegistry()
	pool := daemon.NewPoolConfig(daemon.PoolConfig{
		CallTimeout: 5 * time.Second,
		MaxRetries:  -1,
		Seed:        chaosSeed,
		Telemetry:   reg,
	})
	defer pool.Close()

	const calls = 3
	for i := 0; i < calls; i++ {
		if _, err := pool.Call(proxy.Addr(), cmdlang.New(daemon.CmdPing)); err != nil {
			t.Fatal(err)
		}
	}

	h := reg.Histogram(wire.MetricCallLatency)
	if h.Count() != calls {
		t.Fatalf("latency observations = %d, want %d", h.Count(), calls)
	}
	// The proxy delays request and reply independently, so every call
	// pays the injected latency at least once each way.
	if min := h.Min(); min < injected {
		t.Fatalf("histogram min %v below injected latency %v", min, injected)
	}
	if avg := time.Duration(int64(h.Sum()) / h.Count()); avg < 2*injected {
		t.Fatalf("histogram avg %v below round-trip injected latency %v", avg, 2*injected)
	}
}

// TestChaosPartitionRetriesMatchSchedule: against a refusing peer
// with the breaker disabled, every call performs exactly MaxRetries
// retries — the pool.retries counter must equal calls × MaxRetries,
// nothing more, nothing less.
func TestChaosPartitionRetriesMatchSchedule(t *testing.T) {
	d := startEchoDaemon(t)
	proxy, err := chaos.NewProxy(d.Addr(), chaosSeed)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	proxy.Partition()

	const maxRetries = 2
	reg := telemetry.NewRegistry()
	pool := daemon.NewPoolConfig(daemon.PoolConfig{
		DialTimeout:      200 * time.Millisecond,
		CallTimeout:      2 * time.Second,
		MaxRetries:       maxRetries,
		BackoffBase:      time.Millisecond,
		BackoffMax:       2 * time.Millisecond,
		BreakerThreshold: -1, // isolate the retry schedule from the breaker
		Seed:             chaosSeed,
		Telemetry:        reg,
	})
	defer pool.Close()

	const calls = 4
	for i := 0; i < calls; i++ {
		if _, err := pool.Call(proxy.Addr(), cmdlang.New(daemon.CmdPing)); err == nil {
			t.Fatal("call through partition succeeded")
		}
	}
	if got := reg.Counter(daemon.MetricPoolRetries).Value(); got != calls*maxRetries {
		t.Fatalf("pool retries = %d, want exactly %d", got, calls*maxRetries)
	}
}

// TestChaosBlackholeCountsTimeouts: a blackholed peer swallows
// requests, so every call dies on its deadline and the timeout
// counter records exactly one timeout per call.
func TestChaosBlackholeCountsTimeouts(t *testing.T) {
	d := startEchoDaemon(t)
	proxy, err := chaos.NewProxy(d.Addr(), chaosSeed)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	proxy.SetFaults(chaos.Faults{Blackhole: true})

	reg := telemetry.NewRegistry()
	pool := daemon.NewPoolConfig(daemon.PoolConfig{
		DialTimeout:      200 * time.Millisecond,
		CallTimeout:      150 * time.Millisecond,
		MaxRetries:       -1, // the pool deadline covers the whole call: no retries
		BreakerThreshold: -1,
		Seed:             chaosSeed,
		Telemetry:        reg,
	})
	defer pool.Close()

	const calls = 3
	for i := 0; i < calls; i++ {
		if _, err := pool.Call(proxy.Addr(), cmdlang.New(daemon.CmdPing)); err == nil {
			t.Fatal("call through blackhole succeeded")
		}
	}
	if got := reg.Counter(wire.MetricCallTimeouts).Value(); got != calls {
		t.Fatalf("timeout counter = %d, want exactly %d", got, calls)
	}
	if sent := reg.Counter(wire.MetricFramesSent).Value(); sent != calls {
		t.Fatalf("frames sent = %d, want %d (one swallowed request per call)", sent, calls)
	}
	if recv := reg.Counter(wire.MetricFramesRecv).Value(); recv != 0 {
		t.Fatalf("frames recv = %d, want 0 through a blackhole", recv)
	}
}
