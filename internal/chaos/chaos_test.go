package chaos_test

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"ace/internal/chaos"
	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/wire"
)

// frameEchoServer echoes 4-byte length-prefixed frames verbatim.
func frameEchoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				var hdr [4]byte
				for {
					if _, err := io.ReadFull(c, hdr[:]); err != nil {
						return
					}
					payload := make([]byte, binary.BigEndian.Uint32(hdr[:]))
					if _, err := io.ReadFull(c, payload); err != nil {
						return
					}
					if _, err := c.Write(hdr[:]); err != nil {
						return
					}
					if _, err := c.Write(payload); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln
}

func writeFrame(t *testing.T, conn net.Conn, payload []byte) {
	t.Helper()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}
}

func readFrame(t *testing.T, conn net.Conn) []byte {
	t.Helper()
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, binary.BigEndian.Uint32(hdr[:]))
	if _, err := io.ReadFull(conn, payload); err != nil {
		t.Fatal(err)
	}
	return payload
}

// corruptionSchedule pumps `frames` frames through a fresh proxy with
// the given seed and FlipProb and returns which frame indexes came
// back corrupted.
func corruptionSchedule(t *testing.T, target string, seed int64, frames int) []int {
	t.Helper()
	p, err := chaos.NewProxy(target, seed)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetFaults(chaos.Faults{FlipProb: 0.3})

	conn, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second)) //nolint:errcheck

	var corrupted []int
	for i := 0; i < frames; i++ {
		want := []byte(fmt.Sprintf("frame-%04d-payload-abcdefghijklmnop", i))
		writeFrame(t, conn, want)
		got := readFrame(t, conn)
		if string(got) != string(want) {
			corrupted = append(corrupted, i)
		}
	}
	return corrupted
}

// TestDeterministicCorruptionSchedule: the same seed produces the
// exact same failure schedule run after run; a different seed
// produces a different one. This is the property that makes chaos
// failures reproducible.
func TestDeterministicCorruptionSchedule(t *testing.T) {
	ln := frameEchoServer(t)
	defer ln.Close()
	const frames = 300

	a := corruptionSchedule(t, ln.Addr().String(), 42, frames)
	b := corruptionSchedule(t, ln.Addr().String(), 42, frames)
	if len(a) == 0 {
		t.Fatal("no corruption injected at FlipProb=0.3 over 300 frames")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", a, b)
	}

	c := corruptionSchedule(t, ln.Addr().String(), 43, frames)
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestProxyPassThrough: a fault-free proxy is transparent to a real
// wire client and daemon.
func TestProxyPassThrough(t *testing.T) {
	d := daemon.New(daemon.Config{Name: "plain"})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)

	p, err := chaos.NewProxy(d.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := wire.Dial(nil, p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(cmdlang.New(daemon.CmdPing)); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionRefusesAndHealRestores: a partitioned proxy kills live
// connections and refuses new ones; healing restores service.
func TestPartitionRefusesAndHealRestores(t *testing.T) {
	d := daemon.New(daemon.Config{Name: "island"})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)

	p, err := chaos.NewProxy(d.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	pool := daemon.NewPoolConfig(daemon.PoolConfig{
		DialTimeout:     300 * time.Millisecond,
		CallTimeout:     500 * time.Millisecond,
		MaxRetries:      -1,
		BreakerCooldown: 50 * time.Millisecond,
	})
	defer pool.Close()

	if _, err := pool.Call(p.Addr(), cmdlang.New(daemon.CmdPing)); err != nil {
		t.Fatal(err)
	}

	p.Partition()
	start := time.Now()
	if _, err := pool.Call(p.Addr(), cmdlang.New(daemon.CmdPing)); err == nil {
		t.Fatal("call across partition succeeded")
	}
	if time.Since(start) > 3*time.Second {
		t.Fatalf("partitioned call took %v; not failing promptly", time.Since(start))
	}

	p.Heal()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := pool.Call(p.Addr(), cmdlang.New(daemon.CmdPing)); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("service never recovered after heal")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestBlackholeTriggersCallDeadline: a blackholed path makes calls
// fail with DeadlineExceeded in bounded time instead of hanging.
func TestBlackholeTriggersCallDeadline(t *testing.T) {
	d := daemon.New(daemon.Config{Name: "void"})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)

	p, err := chaos.NewProxy(d.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := wire.Dial(nil, p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(cmdlang.New(daemon.CmdPing)); err != nil {
		t.Fatal(err)
	}

	p.SetFaults(chaos.Faults{Blackhole: true})
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.CallContext(ctx, cmdlang.New(daemon.CmdPing))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("blackholed call not bounded by deadline")
	}
}

// TestTruncatedFrameFailsCall: mid-frame truncation kills the
// connection and surfaces as a prompt call failure, never a hang.
func TestTruncatedFrameFailsCall(t *testing.T) {
	d := daemon.New(daemon.Config{Name: "chopped"})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)

	p, err := chaos.NewProxy(d.Addr(), 7)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetFaults(chaos.Faults{TruncateProb: 1})

	c, err := wire.Dial(nil, p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := c.CallContext(ctx, cmdlang.New(daemon.CmdPing)); err == nil {
		t.Fatal("call over truncating proxy succeeded")
	}
}

// TestLatencyInjection: injected latency is observed by callers.
func TestLatencyInjection(t *testing.T) {
	d := daemon.New(daemon.Config{Name: "molasses"})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)

	p, err := chaos.NewProxy(d.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := wire.Dial(nil, p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(cmdlang.New(daemon.CmdPing)); err != nil {
		t.Fatal(err)
	}

	p.SetFaults(chaos.Faults{Latency: 60 * time.Millisecond})
	start := time.Now()
	if _, err := c.Call(cmdlang.New(daemon.CmdPing)); err != nil {
		t.Fatal(err)
	}
	// Request and reply directions each add the latency.
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("round trip took %v; latency not injected", elapsed)
	}
}

// TestFabricPartitionSets: partitioning a named subset of the fabric
// leaves the rest reachable.
func TestFabricPartitionSets(t *testing.T) {
	var daemons []*daemon.Daemon
	f := chaos.NewFabric(99)
	defer f.Close()
	for _, name := range []string{"a", "b", "c"} {
		d := daemon.New(daemon.Config{Name: name})
		if err := d.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(d.Stop)
		daemons = append(daemons, d)
		if _, err := f.Proxy(name, d.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	pool := daemon.NewPoolConfig(daemon.PoolConfig{
		DialTimeout: 300 * time.Millisecond,
		CallTimeout: 500 * time.Millisecond,
		MaxRetries:  -1,
	})
	defer pool.Close()

	f.Partition("a", "c")
	if _, err := pool.Call(f.Addr("b"), cmdlang.New(daemon.CmdPing)); err != nil {
		t.Fatalf("unpartitioned service unreachable: %v", err)
	}
	if _, err := pool.Call(f.Addr("a"), cmdlang.New(daemon.CmdPing)); err == nil {
		t.Fatal("partitioned service reachable")
	}
	f.Heal()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := pool.Call(f.Addr("a"), cmdlang.New(daemon.CmdPing)); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("partitioned service never healed")
		}
		time.Sleep(20 * time.Millisecond)
	}
	_ = daemons
}
