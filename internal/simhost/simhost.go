// Package simhost simulates the machines of an ACE environment. The
// paper's HRM/SRM/HAL/SAL stack managed real Unix workstations; the
// reproduction substitutes a deterministic host model: each host has
// a CPU speed (the paper reports speeds in bogomips), memory, disk,
// and network capacity, and executes simulated processes that consume
// a fair share of the CPU until their work is done.
//
// Time is virtual and advanced explicitly, so experiments measuring
// placement quality (E7) are exact and reproducible.
package simhost

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Proc is one simulated process.
type Proc struct {
	PID  int
	Name string
	// Work is the remaining abstract work (bogomips-seconds).
	Work float64
	// Mem is the resident memory demand in bytes.
	Mem int64
	// Started and Finished are virtual timestamps (seconds).
	Started  float64
	Finished float64
}

// Host is one simulated machine.
type Host struct {
	name  string
	speed float64 // bogomips: work units per virtual second, shared fairly
	mem   int64   // bytes
	disk  int64   // bytes

	mu        sync.Mutex
	clock     float64
	nextPID   int
	procs     map[int]*Proc
	completed []Proc
	memUsed   int64
	netLoad   float64 // synthetic network utilization, 0..1
}

// NewHost creates a host with the given capacity.
func NewHost(name string, speed float64, mem, disk int64) *Host {
	if speed <= 0 {
		speed = 1
	}
	return &Host{name: name, speed: speed, mem: mem, disk: disk, procs: make(map[int]*Proc)}
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// Speed returns the host's CPU speed in bogomips.
func (h *Host) Speed() float64 { return h.speed }

// Launch starts a process; it fails when memory is exhausted.
func (h *Host) Launch(name string, work float64, mem int64) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.memUsed+mem > h.mem {
		return 0, fmt.Errorf("simhost %s: out of memory (%d used, %d requested, %d total)", h.name, h.memUsed, mem, h.mem)
	}
	if work <= 0 {
		work = math.SmallestNonzeroFloat64
	}
	h.nextPID++
	p := &Proc{PID: h.nextPID, Name: name, Work: work, Mem: mem, Started: h.clock, Finished: -1}
	h.procs[p.PID] = p
	h.memUsed += mem
	return p.PID, nil
}

// Kill terminates a running process; it reports whether the PID was
// running.
func (h *Host) Kill(pid int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.procs[pid]
	if !ok {
		return false
	}
	delete(h.procs, pid)
	h.memUsed -= p.Mem
	return true
}

// Advance progresses virtual time by dt seconds, running the fair-
// share scheduler: the host's speed is divided equally among runnable
// processes; completions inside the interval are handled exactly.
func (h *Host) Advance(dt float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for dt > 1e-12 && len(h.procs) > 0 {
		share := h.speed / float64(len(h.procs))
		// Time until the next completion at the current share.
		next := math.Inf(1)
		for _, p := range h.procs {
			if t := p.Work / share; t < next {
				next = t
			}
		}
		step := math.Min(dt, next)
		for pid, p := range h.procs {
			p.Work -= share * step
			if p.Work <= 1e-12 {
				p.Work = 0
				p.Finished = h.clock + step
				h.memUsed -= p.Mem
				h.completed = append(h.completed, *p)
				delete(h.procs, pid)
			}
		}
		h.clock += step
		dt -= step
	}
	h.clock += dt
}

// Clock returns the host's virtual time.
func (h *Host) Clock() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.clock
}

// Status is a point-in-time resource report, the HRM's raw material.
type Status struct {
	Host      string
	Speed     float64 // bogomips
	Runnable  int     // processes sharing the CPU
	CPULoad   float64 // runnable count (Unix-style load)
	MemTotal  int64
	MemUsed   int64
	DiskTotal int64
	NetLoad   float64
	Clock     float64
}

// Status reports the host's current resource state.
func (h *Host) Status() Status {
	h.mu.Lock()
	defer h.mu.Unlock()
	return Status{
		Host:      h.name,
		Speed:     h.speed,
		Runnable:  len(h.procs),
		CPULoad:   float64(len(h.procs)),
		MemTotal:  h.mem,
		MemUsed:   h.memUsed,
		DiskTotal: h.disk,
		NetLoad:   h.netLoad,
		Clock:     h.clock,
	}
}

// SetNetLoad sets the synthetic network utilization (0..1).
func (h *Host) SetNetLoad(u float64) {
	h.mu.Lock()
	h.netLoad = math.Max(0, math.Min(1, u))
	h.mu.Unlock()
}

// Running lists the running processes sorted by PID.
func (h *Host) Running() []Proc {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Proc, 0, len(h.procs))
	for _, p := range h.procs {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}

// Completed returns the finished-process log.
func (h *Host) Completed() []Proc {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Proc(nil), h.completed...)
}

// Find returns a running process by PID.
func (h *Host) Find(pid int) (Proc, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.procs[pid]
	if !ok {
		return Proc{}, false
	}
	return *p, true
}

// Cluster is a set of hosts advanced together.
type Cluster struct {
	mu    sync.Mutex
	hosts []*Host
}

// NewCluster groups hosts.
func NewCluster(hosts ...*Host) *Cluster {
	return &Cluster{hosts: append([]*Host(nil), hosts...)}
}

// Add appends a host.
func (c *Cluster) Add(h *Host) {
	c.mu.Lock()
	c.hosts = append(c.hosts, h)
	c.mu.Unlock()
}

// Hosts returns the host list.
func (c *Cluster) Hosts() []*Host {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Host(nil), c.hosts...)
}

// Advance progresses every host by dt.
func (c *Cluster) Advance(dt float64) {
	for _, h := range c.Hosts() {
		h.Advance(dt)
	}
}

// AdvanceUntilIdle advances in dt steps until no host has runnable
// processes (or maxSteps is hit) and returns the largest host clock —
// the makespan.
func (c *Cluster) AdvanceUntilIdle(dt float64, maxSteps int) float64 {
	for step := 0; step < maxSteps; step++ {
		busy := false
		for _, h := range c.Hosts() {
			if h.Status().Runnable > 0 {
				busy = true
			}
		}
		if !busy {
			break
		}
		c.Advance(dt)
	}
	makespan := 0.0
	for _, h := range c.Hosts() {
		for _, p := range h.Completed() {
			if p.Finished > makespan {
				makespan = p.Finished
			}
		}
	}
	return makespan
}
