package simhost

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLaunchAndAdvanceSingleProc(t *testing.T) {
	h := NewHost("bar", 100, 1<<30, 1<<40)
	pid, err := h.Launch("job", 200, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := h.Find(pid); !ok {
		t.Fatal("proc not running")
	}
	// 200 work at speed 100 → 2 seconds.
	h.Advance(1.0)
	p, ok := h.Find(pid)
	if !ok || math.Abs(p.Work-100) > 1e-9 {
		t.Fatalf("p=%+v", p)
	}
	h.Advance(1.5)
	if _, ok := h.Find(pid); ok {
		t.Fatal("proc should have completed")
	}
	done := h.Completed()
	if len(done) != 1 || math.Abs(done[0].Finished-2.0) > 1e-9 {
		t.Fatalf("done=%+v", done)
	}
	// Clock keeps moving when idle.
	if math.Abs(h.Clock()-2.5) > 1e-9 {
		t.Fatalf("clock=%v", h.Clock())
	}
}

func TestFairShareTwoProcs(t *testing.T) {
	h := NewHost("bar", 100, 1<<30, 0)
	h.Launch("a", 100, 0) //nolint:errcheck
	h.Launch("b", 300, 0) //nolint:errcheck
	// Share is 50 each: "a" finishes at t=2; then "b" alone at speed
	// 100 with 200 left → finishes at t=4.
	h.Advance(10)
	done := h.Completed()
	if len(done) != 2 {
		t.Fatalf("done=%+v", done)
	}
	byName := map[string]Proc{}
	for _, p := range done {
		byName[p.Name] = p
	}
	if math.Abs(byName["a"].Finished-2.0) > 1e-9 {
		t.Fatalf("a=%+v", byName["a"])
	}
	if math.Abs(byName["b"].Finished-4.0) > 1e-9 {
		t.Fatalf("b=%+v", byName["b"])
	}
}

func TestMemoryAccounting(t *testing.T) {
	h := NewHost("bar", 1, 100, 0)
	if _, err := h.Launch("big", 1, 101); err == nil {
		t.Fatal("over-memory launch accepted")
	}
	pid, err := h.Launch("a", 1e9, 60)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Launch("b", 1, 60); err == nil {
		t.Fatal("second launch should exhaust memory")
	}
	if st := h.Status(); st.MemUsed != 60 {
		t.Fatalf("memused=%d", st.MemUsed)
	}
	if !h.Kill(pid) {
		t.Fatal("kill failed")
	}
	if st := h.Status(); st.MemUsed != 0 {
		t.Fatalf("memused after kill=%d", st.MemUsed)
	}
	if h.Kill(pid) {
		t.Fatal("double kill")
	}
	// Completion releases memory too.
	h.Launch("c", 10, 70) //nolint:errcheck
	h.Advance(100)
	if st := h.Status(); st.MemUsed != 0 {
		t.Fatalf("memused after completion=%d", st.MemUsed)
	}
}

func TestKillRemovesWithoutCompletion(t *testing.T) {
	h := NewHost("bar", 100, 1<<20, 0)
	pid, _ := h.Launch("doomed", 1000, 1)
	h.Advance(1)
	h.Kill(pid)
	h.Advance(100)
	if len(h.Completed()) != 0 {
		t.Fatal("killed proc completed")
	}
}

// TestQuickWorkConservation: total completed work equals total
// injected work, and completion times are consistent with capacity
// (makespan ≥ total work / speed).
func TestQuickWorkConservation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := NewHost("h", 50+float64(r.Intn(100)), 1<<40, 0)
		n := 1 + r.Intn(8)
		total := 0.0
		for i := 0; i < n; i++ {
			w := 1 + r.Float64()*100
			total += w
			h.Launch("p", w, 0) //nolint:errcheck
		}
		h.Advance(total/h.Speed() + 1)
		done := h.Completed()
		if len(done) != n {
			return false
		}
		makespan := 0.0
		for _, p := range done {
			if p.Finished > makespan {
				makespan = p.Finished
			}
		}
		lower := total / h.Speed()
		return makespan >= lower-1e-6 && makespan <= lower+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClusterAdvanceUntilIdle(t *testing.T) {
	fast := NewHost("fast", 200, 1<<30, 0)
	slow := NewHost("slow", 50, 1<<30, 0)
	c := NewCluster(fast, slow)
	fast.Launch("a", 400, 0) //nolint:errcheck
	slow.Launch("b", 100, 0) //nolint:errcheck
	makespan := c.AdvanceUntilIdle(0.5, 1000)
	if math.Abs(makespan-2.0) > 1e-9 {
		t.Fatalf("makespan=%v", makespan)
	}
	if len(c.Hosts()) != 2 {
		t.Fatal("hosts")
	}
	c.Add(NewHost("extra", 1, 1, 0))
	if len(c.Hosts()) != 3 {
		t.Fatal("add")
	}
}

func TestZeroWorkCompletesImmediately(t *testing.T) {
	h := NewHost("h", 100, 1<<20, 0)
	h.Launch("instant", 0, 0) //nolint:errcheck
	h.Advance(0.001)
	if len(h.Completed()) != 1 {
		t.Fatal("zero-work proc never completed")
	}
}

func TestNetLoadClamped(t *testing.T) {
	h := NewHost("h", 1, 1, 1)
	h.SetNetLoad(7)
	if h.Status().NetLoad != 1 {
		t.Fatal("netload not clamped high")
	}
	h.SetNetLoad(-3)
	if h.Status().NetLoad != 0 {
		t.Fatal("netload not clamped low")
	}
}
