package ident

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/userdb"
	"ace/internal/workspace"
)

func TestTemplateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tpl := NewTemplate(rng)
	back, err := ParseTemplate(tpl.Hex())
	if err != nil {
		t.Fatal(err)
	}
	if Distance(tpl, back) != 0 {
		t.Fatal("round trip changed template")
	}
	if _, err := ParseTemplate("zz"); err == nil {
		t.Fatal("bad hex accepted")
	}
	if _, err := ParseTemplate("abcd"); err == nil {
		t.Fatal("short template accepted")
	}
}

func TestDistanceProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := NewTemplate(rng), NewTemplate(rng)
	if Distance(a, a) != 0 {
		t.Fatal("self distance")
	}
	if Distance(a, b) != Distance(b, a) {
		t.Fatal("asymmetric")
	}
	// Unrelated random 2048-bit templates differ in roughly half the
	// bits.
	d := Distance(a, b)
	if d < 700 || d > 1350 {
		t.Fatalf("unrelated distance=%d", d)
	}
	if Distance(a, a[:10]) <= DefaultThreshold {
		t.Fatal("length mismatch should be distant")
	}
}

func TestMatcherAcceptsNoisyRejectsForeign(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMatcher(0)
	users := []string{"alice", "bob", "carol"}
	tpls := map[string]Template{}
	for _, u := range users {
		tpls[u] = NewTemplate(rng)
		m.Enroll(u, tpls[u])
	}
	if m.Len() != 3 {
		t.Fatalf("len=%d", m.Len())
	}

	// Clean and mildly noisy captures identify correctly.
	for _, u := range users {
		for _, noise := range []float64{0, 0.02, 0.05} {
			got, _, ok := m.Identify(tpls[u].Noisy(rng, noise))
			if !ok || got != u {
				t.Fatalf("noise %.2f: got %q ok=%v want %q", noise, got, ok, u)
			}
		}
	}
	// A stranger's finger is rejected.
	if got, d, ok := m.Identify(NewTemplate(rng)); ok {
		t.Fatalf("stranger accepted as %q (distance %d)", got, d)
	}
	// A hopelessly noisy capture (false rejection) is rejected.
	if _, _, ok := m.Identify(tpls["alice"].Noisy(rng, 0.45)); ok {
		t.Fatal("garbage capture accepted")
	}
}

// TestQuickMatcherNoFalseAccepts: random unenrolled fingers never
// match an enrolled population.
func TestQuickMatcherNoFalseAccepts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewMatcher(0)
	for i := 0; i < 20; i++ {
		m.Enroll(string(rune('a'+i)), NewTemplate(rng))
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		_, _, ok := m.Identify(NewTemplate(r))
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// rig wires AUD + FIU + iButton + ID monitor + WSS + VNC, the Fig 18
// identification topology.
type rig struct {
	aud     *userdb.Service
	fiu     *FIU
	ibutton *IButtonReader
	monitor *IDMonitor
	wss     *workspace.WSS
	vnc     *workspace.VNCServer
	pool    *daemon.Pool

	johnTpl Template
}

func buildRig(t *testing.T, onWorkspace func(string, *cmdlang.CmdLine)) *rig {
	t.Helper()
	r := &rig{pool: daemon.NewPool(nil)}
	t.Cleanup(r.pool.Close)

	rng := rand.New(rand.NewSource(7))
	r.johnTpl = NewTemplate(rng)

	db := userdb.NewDB()
	if err := db.Add(userdb.User{
		Username:    "john_doe",
		FullName:    "John Doe",
		IButton:     4242,
		Fingerprint: r.johnTpl.Hex(),
	}); err != nil {
		t.Fatal(err)
	}
	r.aud = userdb.New(daemon.Config{}, db)
	if err := r.aud.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.aud.Stop)

	r.vnc = workspace.NewVNCServer(daemon.Config{})
	if err := r.vnc.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.vnc.Stop)

	r.wss = workspace.NewWSS(workspace.WSSConfig{VNCAddrs: []string{r.vnc.Addr()}})
	if err := r.wss.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.wss.Stop)
	if _, err := r.wss.Create("john_doe", ""); err != nil {
		t.Fatal(err)
	}

	r.fiu = NewFIU(daemon.Config{}, r.aud.Addr(), 0)
	if err := r.fiu.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.fiu.Stop)

	r.ibutton = NewIButtonReader(daemon.Config{}, r.aud.Addr())
	if err := r.ibutton.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.ibutton.Stop)

	r.monitor = NewIDMonitor(IDMonitorConfig{
		AUDAddr:     r.aud.Addr(),
		WSSAddr:     r.wss.Addr(),
		OnWorkspace: onWorkspace,
	})
	if err := r.monitor.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.monitor.Stop)
	if err := r.monitor.SubscribeTo(r.fiu.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := r.monitor.SubscribeTo(r.ibutton.Addr()); err != nil {
		t.Fatal(err)
	}
	return r
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("timeout waiting for " + what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestFIULoadsTableFromAUD(t *testing.T) {
	r := buildRig(t, nil)
	if r.fiu.Enrolled() != 1 {
		t.Fatalf("enrolled=%d", r.fiu.Enrolled())
	}
}

func TestScenario2FingerprintIdentification(t *testing.T) {
	workspaceOpened := make(chan *cmdlang.CmdLine, 1)
	r := buildRig(t, func(user string, open *cmdlang.CmdLine) {
		if user == "john_doe" {
			workspaceOpened <- open
		}
	})

	rng := rand.New(rand.NewSource(8))
	capture := r.johnTpl.Noisy(rng, 0.03)
	reply, err := r.pool.Call(r.fiu.Addr(), cmdlang.New(CmdScan).
		SetString("capture", capture.Hex()).
		SetWord("location", "hawk"))
	if err != nil {
		t.Fatal(err)
	}
	if reply.Str("username", "") != "john_doe" {
		t.Fatalf("reply=%v", reply)
	}

	// Fig 19: the ID monitor updates the AUD location...
	waitFor(t, "AUD location update", func() bool {
		got, err := r.pool.Call(r.aud.Addr(), cmdlang.New("getUser").SetWord("username", "john_doe"))
		return err == nil && got.Str("location", "") == "hawk"
	})
	// ...and brings the workspace up at the access point.
	select {
	case open := <-workspaceOpened:
		viewer := workspace.NewViewer(r.pool, workspace.Info{
			Owner:    "john_doe",
			Name:     open.Str("name", ""),
			VNCAddr:  open.Str("vnc", ""),
			Password: open.Str("password", ""),
		})
		if _, err := viewer.Screen(); err != nil {
			t.Fatalf("viewer attach failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("workspace never brought up")
	}
	if loc, ok := r.monitor.LastLocation("john_doe"); !ok || loc != "hawk" {
		t.Fatalf("monitor location=%q ok=%v", loc, ok)
	}
}

func TestUnknownFingerprintRejected(t *testing.T) {
	r := buildRig(t, nil)
	rng := rand.New(rand.NewSource(9))
	_, err := r.pool.Call(r.fiu.Addr(), cmdlang.New(CmdScan).
		SetString("capture", NewTemplate(rng).Hex()).
		SetWord("location", "hawk"))
	if !cmdlang.IsRemoteCode(err, cmdlang.CodeNotFound) {
		t.Fatalf("err=%v", err)
	}
	if r.monitor.Identified() != 0 {
		t.Fatal("failed scan identified someone")
	}
}

func TestIButtonIdentification(t *testing.T) {
	r := buildRig(t, nil)
	reply, err := r.pool.Call(r.ibutton.Addr(), cmdlang.New("press").
		SetInt("serial", 4242).SetWord("location", "eagle"))
	if err != nil {
		t.Fatal(err)
	}
	if reply.Str("username", "") != "john_doe" {
		t.Fatalf("reply=%v", reply)
	}
	waitFor(t, "monitor identification", func() bool {
		loc, ok := r.monitor.LastLocation("john_doe")
		return ok && loc == "eagle"
	})

	// Unknown serial fails.
	_, err = r.pool.Call(r.ibutton.Addr(), cmdlang.New("press").SetInt("serial", 999))
	if !cmdlang.IsRemoteCode(err, cmdlang.CodeNotFound) {
		t.Fatalf("err=%v", err)
	}
}

func TestLateEnrollment(t *testing.T) {
	r := buildRig(t, nil)
	rng := rand.New(rand.NewSource(10))
	newTpl := NewTemplate(rng)
	// Enroll directly at the device.
	if _, err := r.pool.Call(r.fiu.Addr(), cmdlang.New("enroll").
		SetWord("username", "late_user").SetString("template", newTpl.Hex())); err != nil {
		t.Fatal(err)
	}
	reply, err := r.pool.Call(r.fiu.Addr(), cmdlang.New(CmdScan).
		SetString("capture", newTpl.Noisy(rng, 0.02).Hex()))
	if err != nil {
		t.Fatal(err)
	}
	if reply.Str("username", "") != "late_user" {
		t.Fatalf("reply=%v", reply)
	}
}
