package ident

import (
	"strconv"
	"sync"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/hier"
)

// Hierarchy classes for the identification daemons.
const (
	ClassFIU       = hier.ClassAuthentication + ".FIU"
	ClassIButton   = hier.ClassAuthentication + ".IButton"
	ClassIDMonitor = hier.ClassAuthentication + ".IDMonitor"
)

// Identification event names delivered through daemon notifications:
// other services subscribe to the FIU/iButton "identify" command and
// are invoked when it executes.
const (
	CmdIdentify = "identify"
	CmdScan     = "scan"
)

// FIU is the fingerprint identification unit service: the interface
// to the (simulated) Sony FIU device. It loads its table of known
// fingerprints from the AUD, identifies user fingerprints, and serves
// identification notifications.
type FIU struct {
	*daemon.Daemon
	audAddr string

	mu      sync.Mutex
	matcher *Matcher
}

// NewFIU constructs the FIU service. audAddr is the user database it
// loads enrolled fingerprints from.
func NewFIU(dcfg daemon.Config, audAddr string, threshold int) *FIU {
	if dcfg.Name == "" {
		dcfg.Name = "fiu"
	}
	if dcfg.Class == "" {
		dcfg.Class = ClassFIU
	}
	f := &FIU{Daemon: daemon.New(dcfg), audAddr: audAddr, matcher: NewMatcher(threshold)}
	f.install()
	return f
}

// Start loads the enrolled-fingerprint table from the AUD (the FIU
// "loads its tables of known fingerprints", §4.8) and serves.
func (f *FIU) Start() error {
	if err := f.Daemon.Start(); err != nil {
		return err
	}
	if f.audAddr != "" {
		if err := f.ReloadTable(); err != nil {
			f.Daemon.Stop()
			return err
		}
	}
	return nil
}

// ReloadTable refreshes the enrolled table from the AUD.
func (f *FIU) ReloadTable() error {
	reply, err := f.Pool().Call(f.audAddr, cmdlang.New("fingerprintTable"))
	if err != nil {
		return err
	}
	users := reply.Strings("usernames")
	templates := reply.Strings("templates")
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, u := range users {
		if i >= len(templates) {
			break
		}
		t, perr := ParseTemplate(templates[i])
		if perr != nil {
			continue
		}
		f.matcher.Enroll(u, t)
	}
	return nil
}

// Enrolled returns the number of loaded templates.
func (f *FIU) Enrolled() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.matcher.Len()
}

func (f *FIU) install() {
	f.Handle(cmdlang.CommandSpec{
		Name: "enroll",
		Doc:  "enroll a fingerprint template directly",
		Args: []cmdlang.ArgSpec{
			{Name: "username", Kind: cmdlang.KindWord, Required: true},
			{Name: "template", Kind: cmdlang.KindString, Required: true},
		},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		t, err := ParseTemplate(c.Str("template", ""))
		if err != nil {
			return nil, err
		}
		f.mu.Lock()
		f.matcher.Enroll(c.Str("username", ""), t)
		f.mu.Unlock()
		return nil, nil
	})

	//acelint:ignore verbconformance operator verb: issued through acectl's dynamic call/raw passthrough
	f.Handle(cmdlang.CommandSpec{Name: "reloadTable", Doc: "reload enrolled templates from the AUD"},
		func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			if f.audAddr == "" {
				return nil, nil
			}
			return nil, f.ReloadTable()
		})

	// scan: a finger is pressed to the device; the capture is matched
	// against the enrolled table. A successful scan executes the
	// "identify" command on ourselves so notification listeners on
	// "identify" fire (the ID daemon "constantly polls the FIU"
	// becomes: the ID monitor subscribes to identify).
	f.Handle(cmdlang.CommandSpec{
		Name: CmdScan,
		Doc:  "process a fingerprint capture from the sensor",
		Args: []cmdlang.ArgSpec{
			{Name: "capture", Kind: cmdlang.KindString, Required: true},
			{Name: "location", Kind: cmdlang.KindWord, Doc: "room of the sensor"},
		},
	}, func(ctx *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		capture, err := ParseTemplate(c.Str("capture", ""))
		if err != nil {
			return nil, err
		}
		f.mu.Lock()
		user, dist, ok := f.matcher.Identify(capture)
		f.mu.Unlock()
		if !ok {
			return cmdlang.Fail(cmdlang.CodeNotFound, "no matching fingerprint (distance "+strconv.Itoa(dist)+")"), nil
		}
		// Execute identify in-process so its notification list fires.
		reply := f.runIdentify(ctx, user, c.Str("location", ""), "fingerprint")
		return reply.SetInt("distance", int64(dist)), nil
	})

	f.Handle(identifySpec(), f.identifyHandler())
}

// identifySpec declares the shared "identify" command executed by
// identification devices on a positive identification.
func identifySpec() cmdlang.CommandSpec {
	return cmdlang.CommandSpec{
		Name: CmdIdentify,
		Doc:  "record a positive user identification (notification source)",
		Args: []cmdlang.ArgSpec{
			{Name: "username", Kind: cmdlang.KindWord, Required: true},
			{Name: "location", Kind: cmdlang.KindWord},
			{Name: "device", Kind: cmdlang.KindWord},
		},
	}
}

func (f *FIU) identifyHandler() daemon.Handler {
	return func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		return cmdlang.OK().
			SetWord("username", c.Str("username", "")).
			SetWord("location", c.Str("location", "unknown")).
			SetWord("device", c.Str("device", "fingerprint")), nil
	}
}

// runIdentify executes the identify command through the daemon's own
// dispatch path so notifications fire exactly as for an external
// command.
func (f *FIU) runIdentify(ctx *daemon.Ctx, user, location, device string) *cmdlang.CmdLine {
	cmd := cmdlang.New(CmdIdentify).SetWord("username", user).SetWord("device", device)
	if location != "" {
		cmd.SetWord("location", location)
	}
	return f.ExecuteLocal(ctx, cmd)
}

// IButtonReader is the iButton reader service: it reads serial
// numbers from (simulated) iButtons, identifies users through the
// AUD, and serves identification notifications like the FIU.
type IButtonReader struct {
	*daemon.Daemon
	audAddr string
}

// NewIButtonReader constructs the reader; audAddr is the user
// database used for serial→user resolution.
func NewIButtonReader(dcfg daemon.Config, audAddr string) *IButtonReader {
	if dcfg.Name == "" {
		dcfg.Name = "ibutton"
	}
	if dcfg.Class == "" {
		dcfg.Class = ClassIButton
	}
	r := &IButtonReader{Daemon: daemon.New(dcfg), audAddr: audAddr}
	r.install()
	return r
}

func (r *IButtonReader) install() {
	r.Handle(cmdlang.CommandSpec{
		Name: "press",
		Doc:  "an iButton touches the reader",
		Args: []cmdlang.ArgSpec{
			{Name: "serial", Kind: cmdlang.KindInt, Required: true},
			{Name: "location", Kind: cmdlang.KindWord},
		},
	}, func(ctx *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		reply, err := r.Pool().CallContext(ctx.TraceContext(), r.audAddr, cmdlang.New("byIButton").SetInt("serial", c.Int("serial", 0)))
		if err != nil {
			return cmdlang.Fail(cmdlang.CodeNotFound, "unknown iButton serial"), nil
		}
		user := reply.Str("username", "")
		cmd := cmdlang.New(CmdIdentify).SetWord("username", user).SetWord("device", "ibutton")
		if loc := c.Str("location", ""); loc != "" {
			cmd.SetWord("location", loc)
		}
		return r.ExecuteLocal(ctx, cmd), nil
	})

	r.Handle(identifySpec(), func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		return cmdlang.OK().
			SetWord("username", c.Str("username", "")).
			SetWord("location", c.Str("location", "unknown")).
			SetWord("device", c.Str("device", "ibutton")), nil
	})
}
