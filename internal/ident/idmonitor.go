package ident

import (
	"sync"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
)

// IDMonitor is the ACE ID Monitor Service (§4.6): it receives user
// identification notifications from identification devices and
// initiates the appropriate actions — on a positive identification it
// updates the user's location in the AUD and asks the WSS to bring
// the user's workspace up at the access location (Fig 19 steps 2–5);
// failures are reported to the network logger.
type IDMonitor struct {
	*daemon.Daemon
	cfg IDMonitorConfig

	mu     sync.Mutex
	lastID map[string]string // username → last location

	identified int64
}

// IDMonitorConfig wires the monitor to its collaborators; any empty
// address disables that action.
type IDMonitorConfig struct {
	Daemon  daemon.Config
	AUDAddr string
	WSSAddr string
	// OnWorkspace, if set, is invoked with the workspace credentials
	// after a successful bring-up — the hook the access point's
	// viewer launcher uses.
	OnWorkspace func(user string, open *cmdlang.CmdLine)
	// OnError, if set, receives errors from best-effort collaborator
	// calls (AUD location updates) that do not abort identification.
	OnError func(error)
}

// NewIDMonitor constructs the ID monitor daemon.
func NewIDMonitor(cfg IDMonitorConfig) *IDMonitor {
	dcfg := cfg.Daemon
	if dcfg.Name == "" {
		dcfg.Name = "idmonitor"
	}
	if dcfg.Class == "" {
		dcfg.Class = ClassIDMonitor
	}
	m := &IDMonitor{Daemon: daemon.New(dcfg), cfg: cfg, lastID: make(map[string]string)}
	m.install()
	return m
}

// SubscribeTo registers this monitor for identification notifications
// from a device daemon (FIU or iButton reader).
func (m *IDMonitor) SubscribeTo(deviceAddr string) error {
	return daemon.Subscribe(m.Pool(), deviceAddr, CmdIdentify, m.Name(), m.Addr(), "onIdentified")
}

// LastLocation returns the last location a user was identified at.
func (m *IDMonitor) LastLocation(user string) (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	loc, ok := m.lastID[user]
	return loc, ok
}

// Identified returns the number of positive identifications handled.
func (m *IDMonitor) Identified() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.identified
}

func (m *IDMonitor) install() {
	// onIdentified is the command-interface method invoked by
	// identification devices through daemon notifications (§2.5).
	m.Handle(cmdlang.CommandSpec{
		Name:       "onIdentified",
		Doc:        "notification method: a device positively identified a user",
		AllowExtra: true,
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		// The original identify command travels in the notification
		// detail; decompose it (Fig 5).
		detail := c.Str(daemon.NotifyDetailArg, "")
		orig, err := cmdlang.Parse(detail)
		if err != nil {
			return nil, err
		}
		user := orig.Str("username", "")
		location := orig.Str("location", "")
		m.handleIdentification(user, location)
		return nil, nil
	})
}

// handleIdentification is Fig 19 steps 3–5.
func (m *IDMonitor) handleIdentification(user, location string) {
	if user == "" {
		return
	}
	m.mu.Lock()
	m.lastID[user] = location
	m.identified++
	m.mu.Unlock()

	// Update the user's current location with the AUD (Scenario 2).
	// Identification proceeds even if the AUD is briefly down; the
	// stale-location window closes on the next sighting.
	if m.cfg.AUDAddr != "" && location != "" {
		if _, err := m.Pool().Call(m.cfg.AUDAddr, cmdlang.New("setLocation").
			SetWord("username", user).SetWord("room", location)); err != nil && m.cfg.OnError != nil {
			m.cfg.OnError(err)
		}
	}

	// Bring the user's workspace up at the access point (Scenario 3).
	if m.cfg.WSSAddr != "" {
		open, err := m.Pool().Call(m.cfg.WSSAddr, cmdlang.New("openWorkspace").SetWord("user", user))
		if err == nil && m.cfg.OnWorkspace != nil {
			m.cfg.OnWorkspace(user, open)
		}
	}
}
