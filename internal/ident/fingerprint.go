// Package ident implements ACE user identification: the FIU —
// Fingerprint Identification Unit service (§4.8), the iButton reader
// service (§4.9), and the ID Monitor service (§4.6) that reacts to
// identification notifications by updating the user database and
// bringing up workspaces.
//
// The Sony FIU-001/500 hardware is simulated: enrolled fingerprints
// are 256-byte templates, a "scan" produces a noisy capture of the
// true template, and the matcher accepts captures within a Hamming-
// distance threshold — exercising the same enroll/identify/notify
// code paths, including false rejections of noisy captures and
// rejection of unknown fingers.
package ident

import (
	"encoding/hex"
	"fmt"
	"math/bits"
	"math/rand"
)

// TemplateSize is the enrolled fingerprint template size in bytes.
const TemplateSize = 256

// DefaultThreshold is the maximum Hamming distance (in bits) at which
// a capture still matches an enrolled template. Templates are random
// 2048-bit strings, so unrelated prints differ in ~1024 bits; a
// threshold of 300 gives astronomically low false-accept odds while
// tolerating ~14% sensor noise.
const DefaultThreshold = 300

// Template is a fingerprint template.
type Template []byte

// NewTemplate generates a random enrolled template from the rng (the
// "true finger").
func NewTemplate(rng *rand.Rand) Template {
	t := make(Template, TemplateSize)
	rng.Read(t) //nolint:errcheck — math/rand Read never fails
	return t
}

// Noisy returns a scan of the template with the given bit-error rate
// (sensor noise, partial contact).
func (t Template) Noisy(rng *rand.Rand, errorRate float64) Template {
	out := make(Template, len(t))
	copy(out, t)
	flips := int(errorRate * float64(len(t)*8))
	for i := 0; i < flips; i++ {
		bit := rng.Intn(len(t) * 8)
		out[bit/8] ^= 1 << (bit % 8)
	}
	return out
}

// Hex encodes the template for storage in the AUD.
func (t Template) Hex() string { return hex.EncodeToString(t) }

// ParseTemplate decodes a hex template.
func ParseTemplate(s string) (Template, error) {
	b, err := hex.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("ident: bad template hex: %w", err)
	}
	if len(b) != TemplateSize {
		return nil, fmt.Errorf("ident: template is %d bytes, want %d", len(b), TemplateSize)
	}
	return Template(b), nil
}

// Distance returns the Hamming distance in bits between two
// templates; mismatched lengths are infinitely distant.
func Distance(a, b Template) int {
	if len(a) != len(b) {
		return len(a)*8 + len(b)*8
	}
	d := 0
	for i := range a {
		d += bits.OnesCount8(a[i] ^ b[i])
	}
	return d
}

// Matcher identifies captures against an enrolled table.
type Matcher struct {
	threshold int
	enrolled  map[string]Template // username → template
}

// NewMatcher builds a matcher with the given acceptance threshold
// (DefaultThreshold when <= 0).
func NewMatcher(threshold int) *Matcher {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	return &Matcher{threshold: threshold, enrolled: make(map[string]Template)}
}

// Enroll registers a user's template.
func (m *Matcher) Enroll(username string, t Template) {
	cp := make(Template, len(t))
	copy(cp, t)
	m.enrolled[username] = cp
}

// Len returns the number of enrolled templates.
func (m *Matcher) Len() int { return len(m.enrolled) }

// Identify returns the enrolled user whose template is nearest to the
// capture, if within the threshold.
func (m *Matcher) Identify(capture Template) (username string, distance int, ok bool) {
	best := -1
	for user, t := range m.enrolled {
		d := Distance(capture, t)
		if best < 0 || d < best {
			best = d
			username = user
		}
	}
	if best < 0 || best > m.threshold {
		return "", best, false
	}
	return username, best, true
}
