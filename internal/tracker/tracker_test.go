package tracker

import (
	"math/rand"
	"testing"
	"time"

	"ace/internal/asd"
	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/ident"
	"ace/internal/userdb"
)

type rig struct {
	dir     *asd.Service
	fiu     *ident.FIU
	ibutton *ident.IButtonReader
	tracker *Tracker
	pool    *daemon.Pool
	aliceT  ident.Template
}

func buildRig(t *testing.T) *rig {
	t.Helper()
	r := &rig{}
	r.dir = asd.New(asd.Config{})
	if err := r.dir.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.dir.Stop)

	rng := rand.New(rand.NewSource(11))
	r.aliceT = ident.NewTemplate(rng)
	db := userdb.NewDB()
	db.Add(userdb.User{Username: "alice", IButton: 777, Fingerprint: r.aliceT.Hex()}) //nolint:errcheck
	db.Add(userdb.User{Username: "bob", IButton: 888})                                //nolint:errcheck
	aud := userdb.New(daemon.Config{ASDAddr: r.dir.Addr()}, db)
	if err := aud.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(aud.Stop)

	r.fiu = ident.NewFIU(daemon.Config{ASDAddr: r.dir.Addr()}, aud.Addr(), 0)
	if err := r.fiu.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.fiu.Stop)
	r.ibutton = ident.NewIButtonReader(daemon.Config{ASDAddr: r.dir.Addr()}, aud.Addr())
	if err := r.ibutton.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.ibutton.Stop)

	r.tracker = New(Config{ASDAddr: r.dir.Addr(), History: 100})
	if err := r.tracker.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.tracker.Stop)

	r.pool = daemon.NewPool(nil)
	t.Cleanup(r.pool.Close)
	return r
}

func waitSightings(t *testing.T, tr *Tracker, n int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for len(tr.History("", 0)) < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d sightings", len(tr.History("", 0)), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestTracksAcrossDevices(t *testing.T) {
	r := buildRig(t)
	rng := rand.New(rand.NewSource(12))

	// Alice fingerprints into hawk, bob badges into eagle, then alice
	// badges into eagle.
	if _, err := r.pool.Call(r.fiu.Addr(), cmdlang.New(ident.CmdScan).
		SetString("capture", r.aliceT.Noisy(rng, 0.02).Hex()).
		SetWord("location", "hawk")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.pool.Call(r.ibutton.Addr(), cmdlang.New("press").
		SetInt("serial", 888).SetWord("location", "eagle")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.pool.Call(r.ibutton.Addr(), cmdlang.New("press").
		SetInt("serial", 777).SetWord("location", "eagle")); err != nil {
		t.Fatal(err)
	}
	waitSightings(t, r.tracker, 3)

	// Alice's latest location is eagle via the iButton device.
	s, ok := r.tracker.LastSeen("alice")
	if !ok || s.Room != "eagle" || s.Device != "ibutton" {
		t.Fatalf("alice=%+v ok=%v", s, ok)
	}
	// Occupancy: both in eagle, nobody left in hawk.
	if got := r.tracker.Occupants("eagle"); len(got) != 2 || got[0] != "alice" || got[1] != "bob" {
		t.Fatalf("eagle=%v", got)
	}
	if got := r.tracker.Occupants("hawk"); len(got) != 0 {
		t.Fatalf("hawk=%v", got)
	}
	// Alice's history shows the movement in order.
	hist := r.tracker.History("alice", 0)
	if len(hist) != 2 || hist[0].Room != "hawk" || hist[1].Room != "eagle" {
		t.Fatalf("history=%v", hist)
	}
}

func TestCommandSurface(t *testing.T) {
	r := buildRig(t)
	if _, err := r.pool.Call(r.ibutton.Addr(), cmdlang.New("press").
		SetInt("serial", 777).SetWord("location", "hawk")); err != nil {
		t.Fatal(err)
	}
	waitSightings(t, r.tracker, 1)

	where, err := r.pool.Call(r.tracker.Addr(), cmdlang.New("whereIsUser").SetWord("user", "alice"))
	if err != nil {
		t.Fatal(err)
	}
	if where.Str("room", "") != "hawk" {
		t.Fatalf("where=%v", where)
	}
	_, err = r.pool.Call(r.tracker.Addr(), cmdlang.New("whereIsUser").SetWord("user", "ghost"))
	if !cmdlang.IsRemoteCode(err, cmdlang.CodeNotFound) {
		t.Fatalf("err=%v", err)
	}
	occ, err := r.pool.Call(r.tracker.Addr(), cmdlang.New("occupants").SetWord("room", "hawk"))
	if err != nil {
		t.Fatal(err)
	}
	if occ.Int("count", 0) != 1 {
		t.Fatalf("occ=%v", occ)
	}
	sl, err := r.pool.Call(r.tracker.Addr(), cmdlang.New("sightings").SetInt("limit", 10))
	if err != nil {
		t.Fatal(err)
	}
	if sl.Int("count", 0) != 1 {
		t.Fatalf("sightings=%v", sl)
	}
}

func TestResubscribePicksUpNewDevices(t *testing.T) {
	r := buildRig(t)
	// A new badge reader appears after the tracker started.
	db := userdb.NewDB()
	db.Add(userdb.User{Username: "carol", IButton: 999}) //nolint:errcheck
	aud2 := userdb.New(daemon.Config{Name: "aud2"}, db)
	if err := aud2.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(aud2.Stop)
	late := ident.NewIButtonReader(daemon.Config{Name: "ibutton_lobby", ASDAddr: r.dir.Addr()}, aud2.Addr())
	if err := late.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(late.Stop)

	reply, err := r.pool.Call(r.tracker.Addr(), cmdlang.New("resubscribe"))
	if err != nil {
		t.Fatal(err)
	}
	if reply.Int("added", 0) != 1 {
		t.Fatalf("added=%v", reply)
	}
	// Events from the late device are tracked.
	if _, err := r.pool.Call(late.Addr(), cmdlang.New("press").
		SetInt("serial", 999).SetWord("location", "lobby")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		if s, ok := r.tracker.LastSeen("carol"); ok && s.Room == "lobby" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("late device's sighting never tracked")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Idempotent: nothing new on the second call.
	reply, err = r.pool.Call(r.tracker.Addr(), cmdlang.New("resubscribe"))
	if err != nil {
		t.Fatal(err)
	}
	if reply.Int("added", 0) != 0 {
		t.Fatalf("resubscribe not idempotent: %v", reply)
	}
}

func TestHistoryBounded(t *testing.T) {
	tr := New(Config{History: 5})
	for i := 0; i < 20; i++ {
		tr.record("u", "r", "d")
	}
	if got := len(tr.History("", 0)); got != 5 {
		t.Fatalf("history=%d", got)
	}
	// Sequence numbers keep increasing.
	hist := tr.History("", 0)
	if hist[4].Seq != 20 {
		t.Fatalf("seq=%d", hist[4].Seq)
	}
}
