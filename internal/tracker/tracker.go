// Package tracker implements a personnel tracking system — the
// report's canonical example of a *non-human ACE user* (§1.1:
// "Non-human users are high-level applications that utilize ACE
// services on their own to provide automation within an ACE.
// Examples of this would be video monitoring systems, personnel
// tracking systems"). The tracker discovers every identification
// device through the ASD, subscribes to their "identify"
// notifications (§2.5), and maintains who-was-where-when: current
// occupancy per room, last known location per user, and a bounded
// sighting history.
package tracker

import (
	"sort"
	"sync"
	"time"

	"ace/internal/asd"
	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/hier"
	"ace/internal/ident"
)

// ClassTracker is the hierarchy class of tracking services.
const ClassTracker = hier.Root + ".Tracker"

// DefaultHistory bounds the retained sighting log.
const DefaultHistory = 10000

// Sighting is one identification event.
type Sighting struct {
	Seq    int64
	Time   time.Time
	User   string
	Room   string
	Device string
}

// Tracker is the personnel tracking daemon.
type Tracker struct {
	*daemon.Daemon
	asdAddr string

	mu       sync.Mutex
	nextSeq  int64
	history  []Sighting
	capacity int
	lastSeen map[string]Sighting // user → latest sighting
	now      func() time.Time

	subscribed map[string]bool // device addr → subscribed
}

// Config describes a tracker.
type Config struct {
	// Daemon is the shell configuration.
	Daemon daemon.Config
	// ASDAddr is used to discover identification devices.
	ASDAddr string
	// History bounds the sighting log (DefaultHistory when 0).
	History int
}

// New constructs a tracker daemon.
func New(cfg Config) *Tracker {
	dcfg := cfg.Daemon
	if dcfg.Name == "" {
		dcfg.Name = "tracker"
	}
	if dcfg.Class == "" {
		dcfg.Class = ClassTracker
	}
	if dcfg.ASDAddr == "" {
		dcfg.ASDAddr = cfg.ASDAddr
	}
	if cfg.History <= 0 {
		cfg.History = DefaultHistory
	}
	tr := &Tracker{
		asdAddr:    cfg.ASDAddr,
		capacity:   cfg.History,
		lastSeen:   make(map[string]Sighting),
		now:        time.Now,
		subscribed: make(map[string]bool),
	}
	tr.Daemon = daemon.New(dcfg)
	tr.install()
	return tr
}

// Start brings the daemon online and subscribes to every currently
// registered identification device. Call Resubscribe later to pick up
// devices that appeared afterwards.
func (tr *Tracker) Start() error {
	if err := tr.Daemon.Start(); err != nil {
		return err
	}
	if tr.asdAddr != "" {
		tr.Resubscribe() //nolint:errcheck — devices may appear later
	}
	return nil
}

// Resubscribe discovers identification devices (everything under the
// Authentication class that executes "identify") and subscribes to
// the ones not yet covered. It returns how many new subscriptions
// were made.
func (tr *Tracker) Resubscribe() (int, error) {
	addrs, err := asd.ResolveAll(tr.Pool(), tr.asdAddr, asd.Query{Class: hier.ClassAuthentication})
	if err != nil {
		return 0, err
	}
	added := 0
	for _, addr := range addrs {
		tr.mu.Lock()
		done := tr.subscribed[addr]
		tr.mu.Unlock()
		if done || addr == tr.Addr() {
			continue
		}
		if err := daemon.Subscribe(tr.Pool(), addr, ident.CmdIdentify, tr.Name(), tr.Addr(), "onSighting"); err != nil {
			continue // not an identify source (e.g. the ID monitor itself refuses unknown commands gracefully)
		}
		tr.mu.Lock()
		tr.subscribed[addr] = true
		tr.mu.Unlock()
		added++
	}
	return added, nil
}

// record stores one sighting.
func (tr *Tracker) record(user, room, device string) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.nextSeq++
	s := Sighting{Seq: tr.nextSeq, Time: tr.now(), User: user, Room: room, Device: device}
	tr.history = append(tr.history, s)
	if len(tr.history) > tr.capacity {
		tr.history = tr.history[len(tr.history)-tr.capacity:]
	}
	tr.lastSeen[user] = s
}

// LastSeen returns a user's most recent sighting.
func (tr *Tracker) LastSeen(user string) (Sighting, bool) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	s, ok := tr.lastSeen[user]
	return s, ok
}

// Occupants returns the users whose latest sighting is in the room,
// sorted.
func (tr *Tracker) Occupants(room string) []string {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	var out []string
	for user, s := range tr.lastSeen {
		if s.Room == room {
			out = append(out, user)
		}
	}
	sort.Strings(out)
	return out
}

// History returns the most recent n sightings for a user ("" = all
// users), newest last.
func (tr *Tracker) History(user string, n int) []Sighting {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	var out []Sighting
	for _, s := range tr.history {
		if user == "" || s.User == user {
			out = append(out, s)
		}
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

func (tr *Tracker) install() {
	// onSighting is the notification method invoked by identification
	// devices.
	tr.Handle(cmdlang.CommandSpec{
		Name:       "onSighting",
		Doc:        "notification method: a device identified a user",
		AllowExtra: true,
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		orig, err := cmdlang.Parse(c.Str(daemon.NotifyDetailArg, ""))
		if err != nil {
			return nil, err
		}
		user := orig.Str("username", "")
		if user == "" {
			return nil, nil
		}
		tr.record(user, orig.Str("location", ""), orig.Str("device", ""))
		return nil, nil
	})

	tr.Handle(cmdlang.CommandSpec{
		Name: "whereIsUser",
		Args: []cmdlang.ArgSpec{{Name: "user", Kind: cmdlang.KindWord, Required: true}},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		s, ok := tr.LastSeen(c.Str("user", ""))
		if !ok {
			return cmdlang.Fail(cmdlang.CodeNotFound, "never sighted"), nil
		}
		return cmdlang.OK().
			SetWord("room", s.Room).
			SetWord("device", s.Device).
			SetInt("sightingSeq", s.Seq), nil
	})

	tr.Handle(cmdlang.CommandSpec{
		Name: "occupants",
		Args: []cmdlang.ArgSpec{{Name: "room", Kind: cmdlang.KindWord, Required: true}},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		users := tr.Occupants(c.Str("room", ""))
		return cmdlang.OK().
			SetInt("count", int64(len(users))).
			Set("users", cmdlang.WordVector(users...)), nil
	})

	tr.Handle(cmdlang.CommandSpec{
		Name: "sightings",
		Args: []cmdlang.ArgSpec{
			{Name: "user", Kind: cmdlang.KindWord},
			{Name: "limit", Kind: cmdlang.KindInt},
		},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		hist := tr.History(c.Str("user", ""), int(c.Int("limit", 0)))
		users := make([]string, len(hist))
		rooms := make([]string, len(hist))
		for i, s := range hist {
			users[i] = s.User
			rooms[i] = s.Room
		}
		return cmdlang.OK().
			SetInt("count", int64(len(hist))).
			Set("users", cmdlang.WordVector(users...)).
			Set("rooms", cmdlang.WordVector(rooms...)), nil
	})

	tr.Handle(cmdlang.CommandSpec{Name: "resubscribe", Doc: "discover and subscribe to new identification devices"},
		func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			added, err := tr.Resubscribe()
			if err != nil {
				return nil, err
			}
			return cmdlang.OK().SetInt("added", int64(added)), nil
		})
}
