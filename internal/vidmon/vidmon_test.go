package vidmon

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
)

func TestFrameMarshalRoundTrip(t *testing.T) {
	f := NewVideoFrame(9, 32, 24)
	f.Set(5, 7, 200)
	back, err := UnmarshalVideoFrame(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.Seq != 9 || back.W != 32 || back.H != 24 || back.At(5, 7) != 200 {
		t.Fatalf("back=%+v", back)
	}
	// Malformed packets rejected.
	if _, err := UnmarshalVideoFrame([]byte{1, 2}); err == nil {
		t.Fatal("short packet accepted")
	}
	bad := f.Marshal()
	binary := bad[4:8]
	binary[0], binary[1], binary[2], binary[3] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := UnmarshalVideoFrame(bad); err == nil {
		t.Fatal("dimension-lying packet accepted")
	}
}

func TestQuickFrameRoundTrip(t *testing.T) {
	f := func(seq uint32, pix []byte) bool {
		if len(pix) == 0 {
			return true
		}
		w := 8
		h := len(pix) / w
		if h == 0 {
			return true
		}
		fr := VideoFrame{Seq: seq, W: w, H: h, Pixels: pix[:w*h]}
		back, err := UnmarshalVideoFrame(fr.Marshal())
		if err != nil || back.Seq != seq || back.W != w || back.H != h {
			return false
		}
		for i := range back.Pixels {
			if back.Pixels[i] != fr.Pixels[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDetectorStaticSceneQuiet(t *testing.T) {
	scene := NewScene(64, 48)
	det := NewDetector()
	for i := 0; i < 50; i++ {
		if _, detected := det.Process(scene.Frame(false, 0, 0, 0, 0)); detected {
			t.Fatalf("false motion on static frame %d", i)
		}
	}
}

func TestDetectorTracksIntruder(t *testing.T) {
	scene := NewScene(64, 48)
	det := NewDetector()
	// Settle the background.
	for i := 0; i < 5; i++ {
		det.Process(scene.Frame(false, 0, 0, 0, 0))
	}
	// The intruder walks left to right; the centroid must follow.
	var lastCX float64 = -1
	detections := 0
	for x := 5; x < 50; x += 5 {
		motion, detected := det.Process(scene.Frame(true, x, 20, 8, 0))
		if !detected {
			continue
		}
		detections++
		if lastCX >= 0 && motion.CX <= lastCX {
			t.Fatalf("centroid not tracking: %.1f after %.1f", motion.CX, lastCX)
		}
		// The centroid should be near the square's center.
		wantCX := float64(x) + 3.5
		if math.Abs(motion.CX-wantCX) > 4 {
			t.Fatalf("centroid %.1f want ≈%.1f", motion.CX, wantCX)
		}
		lastCX = motion.CX
	}
	if detections < 5 {
		t.Fatalf("only %d detections", detections)
	}
}

func TestDetectorAdaptsToLightingDrift(t *testing.T) {
	scene := NewScene(64, 48)
	det := NewDetector()
	det.Process(scene.Frame(false, 0, 0, 0, 0))
	// Brightness creeps up 1 level per frame — well under the pixel
	// threshold each step; the EMA background absorbs it.
	for b := 1; b <= 40; b++ {
		if _, detected := det.Process(scene.Frame(false, 0, 0, 0, b)); detected {
			t.Fatalf("lighting drift flagged as motion at +%d", b)
		}
	}
	// A sudden lighting jump (lights switched on) IS motion.
	if _, detected := det.Process(scene.Frame(false, 0, 0, 0, 120)); !detected {
		t.Fatal("lights-on jump missed")
	}
}

func TestMonitorNotifiesSubscribers(t *testing.T) {
	monitor := NewMonitor(daemon.Config{}, nil)
	if err := monitor.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(monitor.Stop)

	// A security service subscribes to motion.
	alerts := make(chan *cmdlang.CmdLine, 16)
	security := daemon.New(daemon.Config{Name: "security"})
	security.Handle(cmdlang.CommandSpec{Name: "onMotion", AllowExtra: true},
		func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			alerts <- c
			return nil, nil
		})
	if err := security.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(security.Stop)
	pool := daemon.NewPool(nil)
	defer pool.Close()
	if err := daemon.Subscribe(pool, monitor.Addr(), "motionDetected",
		"security", security.Addr(), "onMotion"); err != nil {
		t.Fatal(err)
	}

	// A camera streams: quiet scene, then an intruder.
	source := daemon.New(daemon.Config{Name: "cam_src"})
	if err := source.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(source.Stop)
	scene := NewScene(64, 48)
	for i := 0; i < 5; i++ {
		if err := source.SendData(monitor.DataAddr(), scene.Frame(false, 0, 0, 0, 0).Marshal()); err != nil {
			t.Fatal(err)
		}
	}
	// Wait until the background has settled (frames processed).
	deadline := time.Now().Add(2 * time.Second)
	for monitor.Frames() < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("frames=%d", monitor.Frames())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := source.SendData(monitor.DataAddr(), scene.Frame(true, 30, 20, 10, 0).Marshal()); err != nil {
		t.Fatal(err)
	}

	select {
	case alert := <-alerts:
		detail, err := cmdlang.Parse(alert.Str(daemon.NotifyDetailArg, ""))
		if err != nil {
			t.Fatal(err)
		}
		cx := detail.Float("cx", 0)
		if math.Abs(cx-34.5) > 4 {
			t.Fatalf("alert cx=%.1f", cx)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("security never alerted")
	}

	// Status surfaces counts.
	status, err := pool.Call(monitor.Addr(), cmdlang.New("motionStatus"))
	if err != nil {
		t.Fatal(err)
	}
	if status.Int("events", 0) < 1 || status.Int("frames", 0) < 6 {
		t.Fatalf("status=%v", status)
	}
	if len(monitor.Events()) < 1 {
		t.Fatal("no events recorded")
	}
}

func TestDetectorReinitializesOnResolutionChange(t *testing.T) {
	det := NewDetector()
	small := NewScene(32, 24)
	big := NewScene(64, 48)
	det.Process(small.Frame(false, 0, 0, 0, 0))
	// A resolution change must reinitialize, not panic or detect.
	if _, detected := det.Process(big.Frame(false, 0, 0, 0, 0)); detected {
		t.Fatal("resolution change flagged as motion")
	}
	if _, detected := det.Process(big.Frame(false, 0, 0, 0, 0)); detected {
		t.Fatal("static frame after reinit flagged")
	}
}
