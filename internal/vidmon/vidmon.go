// Package vidmon implements a video monitoring system — the other
// non-human ACE user the report names alongside personnel tracking
// (§1.1: "video monitoring systems"). A monitor daemon consumes a
// camera's video stream on its data channel, runs motion detection
// (adaptive background subtraction), and executes a "motionDetected"
// command on itself whenever significant motion appears — so any
// interested service can subscribe through ordinary ACE notifications
// (§2.5): point a camera at the motion, start a recording, or page
// security.
package vidmon

import (
	"encoding/binary"
	"fmt"
	"math"
	"net"
	"sync"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/hier"
)

// ClassMonitor is the hierarchy class of video monitoring services.
const ClassMonitor = hier.Root + ".VideoMonitor"

// VideoFrame is one grayscale frame.
type VideoFrame struct {
	Seq    uint32
	W, H   int
	Pixels []byte // row-major, W*H bytes
}

// NewVideoFrame allocates a black frame.
func NewVideoFrame(seq uint32, w, h int) VideoFrame {
	return VideoFrame{Seq: seq, W: w, H: h, Pixels: make([]byte, w*h)}
}

// At returns the pixel at (x, y).
func (f VideoFrame) At(x, y int) byte { return f.Pixels[y*f.W+x] }

// Set writes the pixel at (x, y).
func (f VideoFrame) Set(x, y int, v byte) { f.Pixels[y*f.W+x] = v }

// Marshal renders the frame for the UDP data channel.
func (f VideoFrame) Marshal() []byte {
	buf := make([]byte, 12+len(f.Pixels))
	binary.BigEndian.PutUint32(buf[0:4], f.Seq)
	binary.BigEndian.PutUint32(buf[4:8], uint32(f.W))
	binary.BigEndian.PutUint32(buf[8:12], uint32(f.H))
	copy(buf[12:], f.Pixels)
	return buf
}

// UnmarshalVideoFrame parses a data-channel packet.
func UnmarshalVideoFrame(pkt []byte) (VideoFrame, error) {
	if len(pkt) < 12 {
		return VideoFrame{}, fmt.Errorf("vidmon: short packet (%d bytes)", len(pkt))
	}
	w := int(binary.BigEndian.Uint32(pkt[4:8]))
	h := int(binary.BigEndian.Uint32(pkt[8:12]))
	if w <= 0 || h <= 0 || w*h != len(pkt)-12 || w*h > 1<<22 {
		return VideoFrame{}, fmt.Errorf("vidmon: inconsistent dimensions %dx%d for %d pixel bytes", w, h, len(pkt)-12)
	}
	f := VideoFrame{Seq: binary.BigEndian.Uint32(pkt[0:4]), W: w, H: h, Pixels: make([]byte, w*h)}
	copy(f.Pixels, pkt[12:])
	return f, nil
}

// Motion is one detected motion event.
type Motion struct {
	Seq    uint32
	Ratio  float64 // fraction of pixels in motion
	CX, CY float64 // centroid of the moving pixels
	Extent int     // moving pixel count
	FrameW int
	FrameH int
}

// Detector performs adaptive background subtraction: the background
// model is a per-pixel exponential moving average, so slow lighting
// drift is absorbed while fast changes (people) trigger.
type Detector struct {
	// PixelThreshold is the per-pixel |frame−background| level that
	// counts as motion.
	PixelThreshold int
	// MotionRatio is the fraction of moving pixels above which a
	// Motion event is produced.
	MotionRatio float64
	// Alpha is the background adaptation rate per frame (0..1).
	Alpha float64

	bg []float64
	w  int
	h  int
}

// NewDetector builds a detector with sensible defaults (threshold 25
// levels, 0.5% of pixels, 5% adaptation).
func NewDetector() *Detector {
	return &Detector{PixelThreshold: 25, MotionRatio: 0.005, Alpha: 0.05}
}

// Process consumes one frame, updates the background model, and
// reports motion if any. The first frame only initializes the model.
func (d *Detector) Process(f VideoFrame) (Motion, bool) {
	if d.bg == nil || d.w != f.W || d.h != f.H {
		d.bg = make([]float64, len(f.Pixels))
		for i, p := range f.Pixels {
			d.bg[i] = float64(p)
		}
		d.w, d.h = f.W, f.H
		return Motion{}, false
	}
	var moving, sumX, sumY float64
	count := 0
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			i := y*f.W + x
			diff := math.Abs(float64(f.Pixels[i]) - d.bg[i])
			if diff > float64(d.PixelThreshold) {
				moving++
				sumX += float64(x)
				sumY += float64(y)
				count++
			}
			d.bg[i] += d.Alpha * (float64(f.Pixels[i]) - d.bg[i])
		}
	}
	ratio := moving / float64(len(f.Pixels))
	if ratio < d.MotionRatio || count == 0 {
		return Motion{}, false
	}
	return Motion{
		Seq:    f.Seq,
		Ratio:  ratio,
		CX:     sumX / float64(count),
		CY:     sumY / float64(count),
		Extent: count,
		FrameW: f.W,
		FrameH: f.H,
	}, true
}

// Monitor is the video monitoring daemon.
type Monitor struct {
	*daemon.Daemon

	mu       sync.Mutex
	detector *Detector
	events   []Motion
	frames   int64
}

// NewMonitor constructs a monitor daemon (a default Detector when det
// is nil).
func NewMonitor(dcfg daemon.Config, det *Detector) *Monitor {
	if det == nil {
		det = NewDetector()
	}
	if dcfg.Name == "" {
		dcfg.Name = "vidmon"
	}
	if dcfg.Class == "" {
		dcfg.Class = ClassMonitor
	}
	m := &Monitor{detector: det}
	dcfg.DataHandler = m.onData
	m.Daemon = daemon.New(dcfg)
	m.install()
	return m
}

// Events returns the detected motion events.
func (m *Monitor) Events() []Motion {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Motion(nil), m.events...)
}

// Frames returns the number of processed frames.
func (m *Monitor) Frames() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.frames
}

func (m *Monitor) onData(pkt []byte, _ net.Addr) {
	f, err := UnmarshalVideoFrame(pkt)
	if err != nil {
		return
	}
	m.mu.Lock()
	m.frames++
	motion, detected := m.detector.Process(f)
	if detected {
		m.events = append(m.events, motion)
	}
	m.mu.Unlock()
	if detected {
		// Execute motionDetected on ourselves so §2.5 notification
		// listeners fire.
		m.ExecuteLocal(nil, cmdlang.New("motionDetected").
			SetInt("frame", int64(motion.Seq)).
			SetFloat("ratio", motion.Ratio).
			SetFloat("cx", motion.CX).
			SetFloat("cy", motion.CY).
			SetInt("extent", int64(motion.Extent)))
	}
}

func (m *Monitor) install() {
	m.Handle(cmdlang.CommandSpec{
		Name: "motionDetected",
		Doc:  "executed by the monitor itself on each detection (subscribe to this)",
		Args: []cmdlang.ArgSpec{
			{Name: "frame", Kind: cmdlang.KindInt, Required: true},
			{Name: "ratio", Kind: cmdlang.KindFloat, Required: true},
			{Name: "cx", Kind: cmdlang.KindFloat, Required: true},
			{Name: "cy", Kind: cmdlang.KindFloat, Required: true},
			{Name: "extent", Kind: cmdlang.KindInt},
		},
	}, func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		return nil, nil
	})

	m.Handle(cmdlang.CommandSpec{Name: "motionStatus", Doc: "frames processed and events detected"},
		func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			m.mu.Lock()
			defer m.mu.Unlock()
			r := cmdlang.OK().
				SetInt("frames", m.frames).
				SetInt("events", int64(len(m.events)))
			if n := len(m.events); n > 0 {
				last := m.events[n-1]
				r.SetFloat("lastCx", last.CX).SetFloat("lastCy", last.CY).SetInt("lastFrame", int64(last.Seq))
			}
			return r, nil
		})
}

// Scene synthesizes camera footage: a textured static background with
// an optional moving square intruder, for exercising the detector.
type Scene struct {
	W, H int
	seq  uint32
	base VideoFrame
}

// NewScene builds a scene with a deterministic textured background.
func NewScene(w, h int) *Scene {
	s := &Scene{W: w, H: h, base: NewVideoFrame(0, w, h)}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			s.base.Set(x, y, byte(60+(x*7+y*13)%60))
		}
	}
	return s
}

// Frame renders the next frame. If intruder is true, a bright square
// of the given size is drawn at (ix, iy). brightness shifts the whole
// scene (lighting drift).
func (s *Scene) Frame(intruder bool, ix, iy, size int, brightness int) VideoFrame {
	s.seq++
	f := NewVideoFrame(s.seq, s.W, s.H)
	for i, p := range s.base.Pixels {
		v := int(p) + brightness
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		f.Pixels[i] = byte(v)
	}
	if intruder {
		for y := iy; y < iy+size && y < s.H; y++ {
			for x := ix; x < ix+size && x < s.W; x++ {
				if x >= 0 && y >= 0 {
					f.Set(x, y, 230)
				}
			}
		}
	}
	return f
}
