package flow

import "time"

// waiter states, guarded by the Controller mutex.
const (
	waiterQueued = iota
	waiterAdmitted
	waiterRejected
	waiterClosed
)

// waiter is one request parked in the admission queue. The ready
// channel is closed (outside the controller lock) once state leaves
// waiterQueued; the waiting goroutine re-locks to read the outcome.
type waiter struct {
	ready     chan struct{}
	pri       Priority
	principal string
	enq       time.Time
	deadline  time.Time
	state     int
	reject    *RejectedError
}

// waitQueue is a slice-backed deque of waiters, oldest first. The
// controller pops the oldest under light load (FIFO fairness), the
// newest under overload (LIFO freshness), and sheds from the oldest
// end when full.
type waitQueue struct {
	ws []*waiter
}

func (q *waitQueue) len() int { return len(q.ws) }

func (q *waitQueue) push(w *waiter) { q.ws = append(q.ws, w) }

func (q *waitQueue) popOldest() *waiter {
	w := q.ws[0]
	q.ws[0] = nil
	q.ws = q.ws[1:]
	return w
}

func (q *waitQueue) popNewest() *waiter {
	i := len(q.ws) - 1
	w := q.ws[i]
	q.ws[i] = nil
	q.ws = q.ws[:i]
	return w
}

// remove deletes w wherever it sits (a waiter abandoning the queue
// after its deadline fired). Order is preserved.
func (q *waitQueue) remove(w *waiter) {
	for i, x := range q.ws {
		if x == w {
			copy(q.ws[i:], q.ws[i+1:])
			q.ws[len(q.ws)-1] = nil
			q.ws = q.ws[:len(q.ws)-1]
			return
		}
	}
}
