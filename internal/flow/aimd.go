package flow

import (
	"sync"
	"time"
)

// AIMDConfig tunes an AIMDLimiter. Zero fields take the defaults
// noted on each field.
type AIMDConfig struct {
	// Initial seeds the limit (default 64).
	Initial int
	// Min and Max bound the limit (defaults 8 and 1024).
	Min int
	Max int
	// Target is the latency the limiter steers toward (default 50ms).
	Target time.Duration
	// DecreaseFactor is the multiplicative backoff in (0,1)
	// (default 0.75).
	DecreaseFactor float64
	// Cooldown spaces decreases: one congested burst produces one
	// backoff, not one per in-flight request (default Target).
	Cooldown time.Duration
}

func (c AIMDConfig) withDefaults() AIMDConfig {
	if c.Initial <= 0 {
		c.Initial = 64
	}
	if c.Min <= 0 {
		c.Min = 8
	}
	if c.Max <= 0 {
		c.Max = 1024
	}
	if c.Min > c.Max {
		c.Min = c.Max
	}
	if c.Initial < c.Min {
		c.Initial = c.Min
	}
	if c.Initial > c.Max {
		c.Initial = c.Max
	}
	if c.Target <= 0 {
		c.Target = 50 * time.Millisecond
	}
	if c.DecreaseFactor <= 0 || c.DecreaseFactor >= 1 {
		c.DecreaseFactor = 0.75
	}
	if c.Cooldown <= 0 {
		c.Cooldown = c.Target
	}
	return c
}

// AIMDLimiter is an adaptive concurrency limit driven by observed
// request latency, in the spirit of TCP congestion control and the
// gradient/Vegas concurrency limiters: while completions come back
// under the target latency the limit creeps up additively (~one slot
// per limit-many completions, i.e. one per "round trip"); a
// completion over the target cuts it multiplicatively, at most once
// per cooldown so a single congested burst costs one backoff. The
// limit therefore oscillates around the daemon's real capacity
// instead of being a hand-tuned constant.
type AIMDLimiter struct {
	cfg AIMDConfig

	mu           sync.Mutex
	limit        float64
	lastDecrease time.Time
	decreases    int64
}

// NewAIMDLimiter builds a limiter from cfg.
func NewAIMDLimiter(cfg AIMDConfig) *AIMDLimiter {
	cfg = cfg.withDefaults()
	return &AIMDLimiter{cfg: cfg, limit: float64(cfg.Initial)}
}

// Limit returns the current integer limit (never below Min).
func (l *AIMDLimiter) Limit() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int(l.limit)
}

// Decreases returns how many multiplicative backoffs have fired.
func (l *AIMDLimiter) Decreases() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.decreases
}

// Observe feeds one completed request's latency at time now and
// returns the (possibly adjusted) limit.
func (l *AIMDLimiter) Observe(latency time.Duration, now time.Time) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if latency > l.cfg.Target {
		if now.Sub(l.lastDecrease) >= l.cfg.Cooldown {
			l.limit *= l.cfg.DecreaseFactor
			if l.limit < float64(l.cfg.Min) {
				l.limit = float64(l.cfg.Min)
			}
			l.lastDecrease = now
			l.decreases++
		}
	} else {
		l.limit += 1 / l.limit
		if l.limit > float64(l.cfg.Max) {
			l.limit = float64(l.cfg.Max)
		}
	}
	return int(l.limit)
}
