package flow

import (
	"sync"
	"time"
)

// TokenBucket is a classic rate limiter: tokens refill continuously
// at Rate per second up to Burst; each admission takes one. It
// answers a failed take with the exact wait until enough tokens will
// have refilled, which becomes the busy reply's retry_after hint.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

// NewTokenBucket returns a full bucket refilling at rate tokens per
// second with the given burst capacity. clock injects a time source
// (nil means time.Now).
func NewTokenBucket(rate float64, burst int, clock func() time.Time) *TokenBucket {
	if clock == nil {
		clock = time.Now
	}
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{
		rate:   rate,
		burst:  float64(burst),
		tokens: float64(burst),
		last:   clock(),
		now:    clock,
	}
}

// Take attempts to remove n tokens. On success it returns (true, 0);
// on failure, (false, wait) where wait is how long until the bucket
// will hold n tokens at the current rate.
func (b *TokenBucket) Take(n int) (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	elapsed := now.Sub(b.last)
	if elapsed > 0 {
		b.tokens += elapsed.Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	need := float64(n)
	if b.tokens >= need {
		b.tokens -= need
		return true, 0
	}
	wait := time.Duration((need - b.tokens) / b.rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return false, wait
}

// Tokens returns the current token count (after refill accounting).
func (b *TokenBucket) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	elapsed := b.now().Sub(b.last)
	t := b.tokens + elapsed.Seconds()*b.rate
	if t > b.burst {
		t = b.burst
	}
	return t
}
