// Package flow is the admission-control and overload-protection
// subsystem of the ACE reproduction. Every daemon accepts commands
// through a flow Controller, which decides — before any work is done
// — whether a request is executed now, waits briefly in a bounded
// queue, or is shed with a retryable "busy" push-back.
//
// The paper's room-scale substrate accepts unboundedly; at the
// ROADMAP's millions-of-users scale that turns overload into
// collapse (unbounded goroutines, unbounded queues, lease renewals
// starved behind lookup storms). The Controller converts overload
// into graceful degradation with four mechanisms:
//
//   - a token-bucket rate limiter bounding the data-plane admission
//     rate (TokenBucket);
//   - an adaptive concurrency limiter (AIMDLimiter) that probes for
//     capacity additively while latency is below a target and backs
//     off multiplicatively when it is above — in the spirit of
//     TCP-Vegas/gradient concurrency limiters;
//   - a bounded admission queue with per-request deadlines and a
//     LIFO-on-overload policy: when the queue is saturated the
//     oldest waiter (the one that has already burned most of its
//     deadline) is shed and fresh work is served newest-first, so
//     the daemon spends its capacity on requests whose callers are
//     still listening;
//   - priority classes with per-principal fair-share accounting:
//     control-plane verbs (register/renew/heartbeat, pstore sync)
//     admit into reserved headroom above the data-plane limit and
//     bypass the rate and fair-share gates, so leases survive
//     overload, while no single principal can hold more than its
//     share of data-plane slots once the daemon is half full.
//
// Shed requests carry a retry-after hint; the daemon shell converts
// a rejection into the cmdlang "busy" reply and daemon.Pool retries
// it with backoff, so the environment degrades end-to-end instead of
// hanging or dropping connections.
package flow

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ace/internal/telemetry"
)

// Priority classifies a request for admission. Control-plane traffic
// keeps the environment alive (lease renewals, heartbeats, replica
// sync) and is admitted into reserved headroom that data-plane
// commands can never occupy.
type Priority int

const (
	// Control is the infrastructure class: register/renew/heartbeat,
	// pstore anti-entropy, introspection.
	Control Priority = iota
	// Data is every ordinary service command.
	Data
)

// String names the priority ("control" / "data"), used as the metric
// suffix.
func (p Priority) String() string {
	if p == Control {
		return "control"
	}
	return "data"
}

// ErrClosed is returned by Admit after the controller shut down.
var ErrClosed = errors.New("flow: controller closed")

// Rejection reasons carried by RejectedError.
const (
	ReasonRate         = "rate"          // token bucket empty
	ReasonFairShare    = "fair_share"    // principal over its share
	ReasonQueueFull    = "queue_full"    // shed under the LIFO-on-overload policy
	ReasonQueueTimeout = "queue_timeout" // deadline expired while queued
	ReasonConnLimit    = "conn_limit"    // connection cap reached
)

// RejectedError is an admission refusal: the request was never
// executed and the caller should retry after RetryAfter.
type RejectedError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *RejectedError) Error() string {
	return fmt.Sprintf("flow: admission rejected (%s), retry after %v", e.Reason, e.RetryAfter)
}

// IsRejected reports whether err is an admission rejection and
// returns it.
func IsRejected(err error) (*RejectedError, bool) {
	var re *RejectedError
	ok := errors.As(err, &re)
	return re, ok
}

// Config tunes a Controller. The zero value takes every default; all
// defaults are deliberately generous so an idle or lightly loaded
// daemon never notices the controller.
type Config struct {
	// InitialLimit seeds the adaptive concurrency limit.
	// Default 64.
	InitialLimit int
	// MinLimit / MaxLimit bound the adaptive limit. Defaults 8 / 1024.
	MinLimit int
	MaxLimit int
	// TargetLatency is the admit-to-completion latency the adaptive
	// limiter steers toward. Default 50ms.
	TargetLatency time.Duration
	// DecreaseFactor is the multiplicative backoff applied when
	// latency exceeds the target (at most once per cooldown).
	// Default 0.75.
	DecreaseFactor float64
	// DecreaseCooldown spaces multiplicative decreases so one
	// congested burst does not collapse the limit. Default
	// TargetLatency (one congestion interval).
	DecreaseCooldown time.Duration
	// Rate is the data-plane token-bucket refill rate in admissions
	// per second; <= 0 disables rate limiting (the concurrency limit
	// still applies). Default disabled.
	Rate float64
	// Burst is the token-bucket capacity; default max(1, Rate).
	Burst int
	// QueueLen bounds the admission queue per priority. Default 128.
	QueueLen int
	// MaxQueueWait is the per-request queueing deadline. Default
	// 100ms.
	MaxQueueWait time.Duration
	// ControlReserve is the fraction of the data-plane limit reserved
	// as extra headroom for control traffic. Default 0.25.
	ControlReserve float64
	// MaxConns caps concurrently admitted connections at the accept
	// loop. Default 4096.
	MaxConns int
	// Clock injects a time source (tests). Default time.Now.
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.InitialLimit <= 0 {
		c.InitialLimit = 64
	}
	if c.MinLimit <= 0 {
		c.MinLimit = 8
	}
	if c.MaxLimit <= 0 {
		c.MaxLimit = 1024
	}
	if c.MinLimit > c.MaxLimit {
		c.MinLimit = c.MaxLimit
	}
	if c.InitialLimit < c.MinLimit {
		c.InitialLimit = c.MinLimit
	}
	if c.InitialLimit > c.MaxLimit {
		c.InitialLimit = c.MaxLimit
	}
	if c.TargetLatency <= 0 {
		c.TargetLatency = 50 * time.Millisecond
	}
	if c.DecreaseFactor <= 0 || c.DecreaseFactor >= 1 {
		c.DecreaseFactor = 0.75
	}
	if c.DecreaseCooldown <= 0 {
		c.DecreaseCooldown = c.TargetLatency
	}
	if c.Burst <= 0 {
		c.Burst = int(c.Rate)
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 128
	}
	if c.MaxQueueWait <= 0 {
		c.MaxQueueWait = 100 * time.Millisecond
	}
	if c.ControlReserve <= 0 {
		c.ControlReserve = 0.25
	}
	if c.MaxConns <= 0 {
		c.MaxConns = 4096
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Metric names recorded by a Controller.
const (
	MetricAdmittedControl  = "flow.admitted.control"
	MetricAdmittedData     = "flow.admitted.data"
	MetricShedControl      = "flow.shed.control"
	MetricShedData         = "flow.shed.data"
	MetricQueueWaitControl = "flow.queue_wait.control"
	MetricQueueWaitData    = "flow.queue_wait.data"
	MetricLimit            = "flow.limit"
	MetricInflight         = "flow.inflight"
	MetricQueueDepth       = "flow.queue.depth"
	MetricConnsShed        = "flow.conns.shed"
)

// Controller is one daemon's admission gate. A nil *Controller is
// the disabled controller: it admits everything and all its methods
// are no-ops, so call sites need no branches.
type Controller struct {
	cfg Config
	now func() time.Time

	mu           sync.Mutex
	aimd         *AIMDLimiter
	bucket       *TokenBucket
	inflight     int
	perPrincipal map[string]int
	ctlQ         waitQueue
	dataQ        waitQueue
	conns        int
	closed       bool

	// lifetime counters (Snapshot reads these; telemetry mirrors them
	// so they are observable remotely even though the registry may be
	// nil).
	nAdmitted [2]int64
	nShed     [2]int64
	nConnShed int64

	mAdmitted  [2]*telemetry.Counter
	mShed      [2]*telemetry.Counter
	mQueueWait [2]*telemetry.Histogram
	mLimit     *telemetry.Gauge
	mInflight  *telemetry.Gauge
	mQueueLen  *telemetry.Gauge
	mConnsShed *telemetry.Counter
}

// NewController builds a controller from cfg, recording into reg
// (nil disables telemetry but not the controller).
func NewController(cfg Config, reg *telemetry.Registry) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{
		cfg: cfg,
		now: cfg.Clock,
		aimd: NewAIMDLimiter(AIMDConfig{
			Initial:        cfg.InitialLimit,
			Min:            cfg.MinLimit,
			Max:            cfg.MaxLimit,
			Target:         cfg.TargetLatency,
			DecreaseFactor: cfg.DecreaseFactor,
			Cooldown:       cfg.DecreaseCooldown,
		}),
		perPrincipal: make(map[string]int),
		mAdmitted:    [2]*telemetry.Counter{reg.Counter(MetricAdmittedControl), reg.Counter(MetricAdmittedData)},
		mShed:        [2]*telemetry.Counter{reg.Counter(MetricShedControl), reg.Counter(MetricShedData)},
		mQueueWait:   [2]*telemetry.Histogram{reg.Histogram(MetricQueueWaitControl), reg.Histogram(MetricQueueWaitData)},
		mLimit:       reg.Gauge(MetricLimit),
		mInflight:    reg.Gauge(MetricInflight),
		mQueueLen:    reg.Gauge(MetricQueueDepth),
		mConnsShed:   reg.Counter(MetricConnsShed),
	}
	if cfg.Rate > 0 {
		c.bucket = NewTokenBucket(cfg.Rate, cfg.Burst, cfg.Clock)
	}
	c.mLimit.Set(int64(c.aimd.Limit()))
	return c
}

// Ticket is one admitted request. Done must be called exactly when
// the work completes; the admit-to-Done latency drives the adaptive
// limit. A nil Ticket (from a nil Controller) is a no-op.
type Ticket struct {
	c         *Controller
	pri       Priority
	principal string
	start     time.Time
	once      sync.Once
}

// Done releases the ticket's concurrency slot and feeds the observed
// latency to the adaptive limiter. It is idempotent.
func (t *Ticket) Done() {
	if t == nil {
		return
	}
	t.once.Do(func() { t.c.release(t) })
}

// Admit asks for one slot. It returns immediately when capacity is
// free, waits in the bounded admission queue (up to MaxQueueWait,
// the ctx deadline, whichever is sooner) when the daemon is at its
// limit, and fails with *RejectedError when the request is shed or
// ErrClosed after shutdown. On a nil Controller it admits with a nil
// (no-op) Ticket.
func (c *Controller) Admit(ctx context.Context, pri Priority, principal string) (*Ticket, error) {
	if c == nil {
		return nil, nil
	}
	now := c.now()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if pri == Control {
		if c.inflight < c.hardCapLocked() {
			t := c.admitLocked(pri, principal, now, now)
			c.mu.Unlock()
			return t, nil
		}
	} else {
		if c.bucket != nil {
			if ok, retry := c.bucket.Take(1); !ok {
				err := c.shedLocked(pri, ReasonRate, retry)
				c.mu.Unlock()
				return nil, err
			}
		}
		if c.fairShareExceededLocked(principal) {
			err := c.shedLocked(pri, ReasonFairShare, c.retryHintLocked())
			c.mu.Unlock()
			return nil, err
		}
		if c.inflight < c.aimd.Limit() {
			t := c.admitLocked(pri, principal, now, now)
			c.mu.Unlock()
			return t, nil
		}
	}

	// At capacity: join the bounded queue.
	deadline := now.Add(c.cfg.MaxQueueWait)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	w := &waiter{
		ready:     make(chan struct{}),
		pri:       pri,
		principal: principal,
		enq:       now,
		deadline:  deadline,
	}
	q := &c.dataQ
	if pri == Control {
		q = &c.ctlQ
	}
	var dropped *waiter
	if q.len() >= c.cfg.QueueLen {
		// LIFO-on-overload drop policy: shed the oldest waiter — it
		// has burned the most of its deadline and its caller is the
		// least likely to still be listening — and keep the newcomer.
		dropped = q.popOldest()
		dropped.state = waiterRejected
		dropped.reject = c.shedLocked(dropped.pri, ReasonQueueFull, c.retryHintLocked())
	}
	q.push(w)
	c.mQueueLen.Set(int64(c.ctlQ.len() + c.dataQ.len()))
	c.mu.Unlock()
	if dropped != nil {
		close(dropped.ready)
	}

	timer := time.NewTimer(deadline.Sub(now))
	defer timer.Stop()
	select {
	case <-w.ready:
	case <-ctx.Done():
	case <-timer.C:
	}

	c.mu.Lock()
	switch w.state {
	case waiterAdmitted:
		// Admission may have raced the timer; the slot is already
		// held, so take it regardless of which select arm fired.
		t := &Ticket{c: c, pri: pri, principal: principal, start: w.enq}
		c.mQueueWait[pri].Observe(c.now().Sub(w.enq))
		c.mu.Unlock()
		return t, nil
	case waiterRejected:
		err := w.reject
		c.mu.Unlock()
		return nil, err
	case waiterClosed:
		c.mu.Unlock()
		return nil, ErrClosed
	default:
		// Timed out (or ctx cancelled) while still queued.
		q.remove(w)
		err := c.shedLocked(pri, ReasonQueueTimeout, c.retryHintLocked())
		c.mQueueLen.Set(int64(c.ctlQ.len() + c.dataQ.len()))
		c.mu.Unlock()
		return nil, err
	}
}

// admitLocked hands out a slot. start is the admission request time
// (queue wait baseline); the queue-wait histogram records now-start.
func (c *Controller) admitLocked(pri Priority, principal string, start, now time.Time) *Ticket {
	c.inflight++
	c.perPrincipal[principal]++
	c.nAdmitted[pri]++
	c.mAdmitted[pri].Inc()
	c.mInflight.Set(int64(c.inflight))
	c.mQueueWait[pri].Observe(now.Sub(start))
	return &Ticket{c: c, pri: pri, principal: principal, start: start}
}

// shedLocked counts a rejection and builds its error.
func (c *Controller) shedLocked(pri Priority, reason string, retry time.Duration) *RejectedError {
	c.nShed[pri]++
	c.mShed[pri].Inc()
	return &RejectedError{Reason: reason, RetryAfter: retry}
}

// retryHintLocked suggests when a shed caller should retry: one
// target-latency interval — roughly the time a queue drain takes to
// become visible. A precise estimate is not worth the bookkeeping;
// the pool's jittered backoff spreads retries anyway.
func (c *Controller) retryHintLocked() time.Duration {
	return c.cfg.TargetLatency
}

// hardCapLocked is the control-plane ceiling: the data-plane limit
// plus reserved headroom data traffic can never occupy.
func (c *Controller) hardCapLocked() int {
	limit := c.aimd.Limit()
	reserve := int(float64(limit) * c.cfg.ControlReserve)
	if reserve < 1 {
		reserve = 1
	}
	return limit + reserve
}

// fairShareExceededLocked enforces per-principal fairness once the
// data plane is at least half full: each active principal is entitled
// to an equal share of the limit (at least one slot), so one noisy
// client saturating the daemon cannot starve the rest.
func (c *Controller) fairShareExceededLocked(principal string) bool {
	limit := c.aimd.Limit()
	if c.inflight*2 < limit {
		return false
	}
	active := len(c.perPrincipal)
	if c.perPrincipal[principal] == 0 {
		active++ // this principal is about to become active
	}
	share := limit / active
	if share < 1 {
		share = 1
	}
	return c.perPrincipal[principal] >= share
}

// release returns t's slot, feeds the adaptive limiter, and admits
// as many waiters as the new limit allows.
func (c *Controller) release(t *Ticket) {
	now := c.now()
	c.mu.Lock()
	c.inflight--
	if n := c.perPrincipal[t.principal]; n <= 1 {
		delete(c.perPrincipal, t.principal)
	} else {
		c.perPrincipal[t.principal] = n - 1
	}
	limit := c.aimd.Observe(now.Sub(t.start), now)
	c.mLimit.Set(int64(limit))
	wake := c.fillLocked(now)
	c.mInflight.Set(int64(c.inflight))
	c.mQueueLen.Set(int64(c.ctlQ.len() + c.dataQ.len()))
	c.mu.Unlock()
	for _, w := range wake {
		close(w.ready)
	}
}

// fillLocked admits queued waiters into freed capacity: control
// first (into the hard cap), then data (into the adaptive limit).
// Under overload — the data queue at least half full — data waiters
// are served newest-first (LIFO), because the newest waiter has the
// most deadline left and the freshest caller; under light queueing
// FIFO preserves ordering. Expired waiters are shed on the way.
func (c *Controller) fillLocked(now time.Time) []*waiter {
	var wake []*waiter
	for c.ctlQ.len() > 0 && c.inflight < c.hardCapLocked() {
		w := c.ctlQ.popOldest()
		wake = append(wake, c.fillOneLocked(w, now))
	}
	for c.dataQ.len() > 0 && c.inflight < c.aimd.Limit() {
		var w *waiter
		if c.dataQ.len()*2 >= c.cfg.QueueLen {
			w = c.popNewest(&c.dataQ)
		} else {
			w = c.dataQ.popOldest()
		}
		wake = append(wake, c.fillOneLocked(w, now))
	}
	return wake
}

// popNewest is dataQ.popNewest, split out for symmetry with fill.
func (c *Controller) popNewest(q *waitQueue) *waiter { return q.popNewest() }

// fillOneLocked admits or expires one popped waiter.
func (c *Controller) fillOneLocked(w *waiter, now time.Time) *waiter {
	if now.After(w.deadline) {
		w.state = waiterRejected
		w.reject = c.shedLocked(w.pri, ReasonQueueTimeout, c.retryHintLocked())
		return w
	}
	w.state = waiterAdmitted
	c.inflight++
	c.perPrincipal[w.principal]++
	c.nAdmitted[w.pri]++
	c.mAdmitted[w.pri].Inc()
	return w
}

// AdmitConn gates the accept loop: it reports whether a new
// connection may be served, counting a shed when not. A nil
// controller admits everything.
func (c *Controller) AdmitConn() bool {
	if c == nil {
		return true
	}
	c.mu.Lock()
	if c.closed || c.conns >= c.cfg.MaxConns {
		c.nConnShed++
		c.mConnsShed.Inc()
		c.mu.Unlock()
		return false
	}
	c.conns++
	c.mu.Unlock()
	return true
}

// ReleaseConn returns a connection slot taken by AdmitConn.
func (c *Controller) ReleaseConn() {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.conns > 0 {
		c.conns--
	}
	c.mu.Unlock()
}

// Close rejects every queued waiter with ErrClosed and makes all
// future Admits fail. Held tickets may still call Done.
func (c *Controller) Close() {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	var wake []*waiter
	for c.ctlQ.len() > 0 {
		w := c.ctlQ.popOldest()
		w.state = waiterClosed
		wake = append(wake, w)
	}
	for c.dataQ.len() > 0 {
		w := c.dataQ.popOldest()
		w.state = waiterClosed
		wake = append(wake, w)
	}
	c.mQueueLen.Set(0)
	c.mu.Unlock()
	for _, w := range wake {
		close(w.ready)
	}
}

// Snapshot is a point-in-time view of the controller.
type Snapshot struct {
	// Limit is the current adaptive data-plane concurrency limit.
	Limit int
	// HardCap is the control-plane ceiling (limit + reserve).
	HardCap int
	// Inflight is the number of admitted, uncompleted requests.
	Inflight int
	// QueueDepth is the number of queued waiters (both priorities).
	QueueDepth int
	// Conns is the number of admitted connections.
	Conns int
	// Principals is the number of principals holding slots.
	Principals int
	// AdmittedControl/AdmittedData/ShedControl/ShedData/ConnsShed are
	// lifetime counters.
	AdmittedControl int64
	AdmittedData    int64
	ShedControl     int64
	ShedData        int64
	ConnsShed       int64
}

// Snapshot returns the controller's current state (zero value for a
// nil controller).
func (c *Controller) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Snapshot{
		Limit:           c.aimd.Limit(),
		HardCap:         c.hardCapLocked(),
		Inflight:        c.inflight,
		QueueDepth:      c.ctlQ.len() + c.dataQ.len(),
		Conns:           c.conns,
		Principals:      len(c.perPrincipal),
		AdmittedControl: c.nAdmitted[Control],
		AdmittedData:    c.nAdmitted[Data],
		ShedControl:     c.nShed[Control],
		ShedData:        c.nShed[Data],
		ConnsShed:       c.nConnShed,
	}
}
