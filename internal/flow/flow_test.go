package flow

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ace/internal/telemetry"
)

// fakeClock is a manually advanced time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestTokenBucket(t *testing.T) {
	clk := newFakeClock()
	b := NewTokenBucket(10, 2, clk.Now)
	if ok, _ := b.Take(1); !ok {
		t.Fatal("first take should succeed")
	}
	if ok, _ := b.Take(1); !ok {
		t.Fatal("second take should succeed (burst 2)")
	}
	ok, wait := b.Take(1)
	if ok {
		t.Fatal("third take should fail on an empty bucket")
	}
	// One token refills in 100ms at 10/s.
	if wait <= 0 || wait > 150*time.Millisecond {
		t.Fatalf("retry hint %v, want ~100ms", wait)
	}
	clk.Advance(100 * time.Millisecond)
	if ok, _ := b.Take(1); !ok {
		t.Fatal("take after refill should succeed")
	}
	clk.Advance(time.Hour)
	if got := b.Tokens(); got != 2 {
		t.Fatalf("tokens capped at burst: got %v want 2", got)
	}
}

func TestAIMDLimiterIncreaseAndDecrease(t *testing.T) {
	clk := newFakeClock()
	l := NewAIMDLimiter(AIMDConfig{Initial: 10, Min: 2, Max: 20, Target: 50 * time.Millisecond,
		DecreaseFactor: 0.5, Cooldown: 100 * time.Millisecond})

	// Below-target completions grow the limit additively.
	for i := 0; i < 200; i++ {
		l.Observe(time.Millisecond, clk.Now())
	}
	if got := l.Limit(); got <= 10 {
		t.Fatalf("limit should grow under low latency, got %d", got)
	}

	// One over-target completion halves it...
	before := l.Limit()
	l.Observe(time.Second, clk.Now())
	after := l.Limit()
	if after >= before {
		t.Fatalf("limit should drop after over-target latency: %d -> %d", before, after)
	}
	// ...but the cooldown absorbs the rest of the burst.
	l.Observe(time.Second, clk.Now())
	if got := l.Limit(); got != after {
		t.Fatalf("second decrease inside cooldown should be ignored: %d -> %d", after, got)
	}
	if got := l.Decreases(); got != 1 {
		t.Fatalf("decreases = %d, want 1", got)
	}
	// After the cooldown the next congested completion bites again,
	// and the floor holds.
	for i := 0; i < 50; i++ {
		clk.Advance(150 * time.Millisecond)
		l.Observe(time.Second, clk.Now())
	}
	if got := l.Limit(); got != 2 {
		t.Fatalf("limit should bottom out at Min=2, got %d", got)
	}

	// Growth is capped at Max.
	for i := 0; i < 10000; i++ {
		l.Observe(time.Millisecond, clk.Now())
	}
	if got := l.Limit(); got != 20 {
		t.Fatalf("limit should cap at Max=20, got %d", got)
	}
}

// one builds a controller with a pinned concurrency limit.
func pinned(limit, queueLen int, maxWait time.Duration) *Controller {
	return NewController(Config{
		InitialLimit: limit, MinLimit: limit, MaxLimit: limit,
		QueueLen: queueLen, MaxQueueWait: maxWait,
	}, telemetry.NewRegistry())
}

func TestAdmitAndDone(t *testing.T) {
	c := pinned(4, 8, time.Second)
	tk, err := c.Admit(context.Background(), Data, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if s := c.Snapshot(); s.Inflight != 1 || s.AdmittedData != 1 || s.Principals != 1 {
		t.Fatalf("snapshot after admit: %+v", s)
	}
	tk.Done()
	tk.Done() // idempotent
	if s := c.Snapshot(); s.Inflight != 0 || s.Principals != 0 {
		t.Fatalf("snapshot after done: %+v", s)
	}
}

func TestQueueAdmitsWhenSlotFrees(t *testing.T) {
	c := pinned(1, 8, 5*time.Second)
	first, err := c.Admit(context.Background(), Data, "a")
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		tk, err := c.Admit(context.Background(), Data, "b")
		if tk != nil {
			tk.Done()
		}
		got <- err
	}()
	waitForQueueDepth(t, c, 1)
	first.Done()
	if err := <-got; err != nil {
		t.Fatalf("queued admit should succeed once the slot frees: %v", err)
	}
}

func TestQueueTimeout(t *testing.T) {
	c := pinned(1, 8, 30*time.Millisecond)
	first, err := c.Admit(context.Background(), Data, "a")
	if err != nil {
		t.Fatal(err)
	}
	defer first.Done()
	_, err = c.Admit(context.Background(), Data, "b")
	re, ok := IsRejected(err)
	if !ok || re.Reason != ReasonQueueTimeout {
		t.Fatalf("want queue_timeout rejection, got %v", err)
	}
	if re.RetryAfter <= 0 {
		t.Fatalf("rejection should carry a retry hint, got %v", re.RetryAfter)
	}
	if s := c.Snapshot(); s.ShedData != 1 {
		t.Fatalf("shed counter: %+v", s)
	}
}

func TestQueueFullShedsOldestWaiter(t *testing.T) {
	c := pinned(1, 2, 5*time.Second)
	holder, err := c.Admit(context.Background(), Data, "holder")
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Done()

	errs := make(chan error, 2)
	go func() { _, err := c.Admit(context.Background(), Data, "w1"); errs <- err }()
	waitForQueueDepth(t, c, 1)
	go func() { _, err := c.Admit(context.Background(), Data, "w2"); errs <- err }()
	waitForQueueDepth(t, c, 2)

	// The queue is full: a third arrival sheds the oldest waiter (w1)
	// and takes its place.
	done := make(chan struct{})
	go func() {
		_, _ = c.Admit(context.Background(), Data, "w3")
		close(done)
	}()
	err = <-errs
	re, ok := IsRejected(err)
	if !ok || re.Reason != ReasonQueueFull {
		t.Fatalf("oldest waiter should be shed queue_full, got %v", err)
	}
	if s := c.Snapshot(); s.QueueDepth != 2 {
		t.Fatalf("queue depth after drop should stay at bound: %+v", s)
	}
	c.Close()
	<-done
}

func TestControlOutranksData(t *testing.T) {
	c := pinned(2, 4, 50*time.Millisecond)
	// Fill the data-plane limit.
	for i := 0; i < 2; i++ {
		if _, err := c.Admit(context.Background(), Data, "d"); err != nil {
			t.Fatal(err)
		}
	}
	// Data is now queued-then-shed...
	if _, err := c.Admit(context.Background(), Data, "d2"); err == nil {
		t.Fatal("data admit beyond the limit should be rejected")
	}
	// ...but control admits into the reserved headroom immediately.
	tk, err := c.Admit(context.Background(), Control, "infra")
	if err != nil {
		t.Fatalf("control admit should use reserved headroom: %v", err)
	}
	tk.Done()
	s := c.Snapshot()
	if s.AdmittedControl != 1 || s.HardCap <= s.Limit {
		t.Fatalf("control accounting: %+v", s)
	}
}

func TestFairShare(t *testing.T) {
	c := pinned(4, 4, 20*time.Millisecond)
	// A noisy principal grabs three of four slots.
	for i := 0; i < 3; i++ {
		if _, err := c.Admit(context.Background(), Data, "noisy"); err != nil {
			t.Fatal(err)
		}
	}
	// A quiet principal still gets in (share = 4/2 = 2 > 0 held).
	quiet, err := c.Admit(context.Background(), Data, "quiet")
	if err != nil {
		t.Fatalf("quiet principal must not be starved: %v", err)
	}
	defer quiet.Done()
	// The noisy one is over its share now and is shed immediately —
	// no queueing, so the rejection is cheap.
	_, err = c.Admit(context.Background(), Data, "noisy")
	re, ok := IsRejected(err)
	if !ok || re.Reason != ReasonFairShare {
		t.Fatalf("noisy principal should be shed fair_share, got %v", err)
	}
}

func TestRateLimit(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{Rate: 10, Burst: 2, Clock: clk.Now}, nil)
	for i := 0; i < 2; i++ {
		if _, err := c.Admit(context.Background(), Data, "a"); err != nil {
			t.Fatal(err)
		}
	}
	_, err := c.Admit(context.Background(), Data, "a")
	re, ok := IsRejected(err)
	if !ok || re.Reason != ReasonRate {
		t.Fatalf("want rate rejection, got %v", err)
	}
	if re.RetryAfter <= 0 {
		t.Fatal("rate rejection should suggest a retry delay")
	}
	// Control bypasses the bucket entirely.
	if _, err := c.Admit(context.Background(), Control, "infra"); err != nil {
		t.Fatalf("control must bypass the rate limiter: %v", err)
	}
	clk.Advance(time.Second)
	if _, err := c.Admit(context.Background(), Data, "a"); err != nil {
		t.Fatalf("bucket should refill: %v", err)
	}
}

func TestLIFOUnderOverload(t *testing.T) {
	c := pinned(1, 4, 10*time.Second)
	holder, err := c.Admit(context.Background(), Data, "holder")
	if err != nil {
		t.Fatal(err)
	}

	admitted := make(chan int, 4)
	tickets := make(chan *Ticket, 4)
	for i := 1; i <= 4; i++ {
		i := i
		go func() {
			tk, err := c.Admit(context.Background(), Data, "w")
			if err != nil {
				t.Errorf("waiter %d rejected: %v", i, err)
				return
			}
			admitted <- i
			tickets <- tk
		}()
		waitForQueueDepth(t, c, i)
	}

	// Release one slot at a time. With the queue at or above half its
	// bound the newest waiter is served (LIFO); once it drains below
	// half, FIFO resumes. Expected order: 4, 3, 2, then 1.
	order := []int{}
	holder.Done()
	for i := 0; i < 4; i++ {
		order = append(order, <-admitted)
		(<-tickets).Done()
	}
	want := []int{4, 3, 2, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("admission order %v, want %v", order, want)
		}
	}
}

func TestCloseWakesWaiters(t *testing.T) {
	c := pinned(1, 8, 10*time.Second)
	holder, err := c.Admit(context.Background(), Data, "a")
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Done()
	got := make(chan error, 1)
	go func() { _, err := c.Admit(context.Background(), Data, "b"); got <- err }()
	waitForQueueDepth(t, c, 1)
	c.Close()
	if err := <-got; !errors.Is(err, ErrClosed) {
		t.Fatalf("queued waiter should fail ErrClosed, got %v", err)
	}
	if _, err := c.Admit(context.Background(), Data, "c"); !errors.Is(err, ErrClosed) {
		t.Fatalf("admit after close should fail ErrClosed, got %v", err)
	}
}

func TestConnAdmission(t *testing.T) {
	c := NewController(Config{MaxConns: 2}, telemetry.NewRegistry())
	if !c.AdmitConn() || !c.AdmitConn() {
		t.Fatal("first two connections should be admitted")
	}
	if c.AdmitConn() {
		t.Fatal("third connection should be shed")
	}
	if s := c.Snapshot(); s.Conns != 2 || s.ConnsShed != 1 {
		t.Fatalf("conn accounting: %+v", s)
	}
	c.ReleaseConn()
	if !c.AdmitConn() {
		t.Fatal("released slot should be reusable")
	}
}

func TestNilControllerIsDisabled(t *testing.T) {
	var c *Controller
	tk, err := c.Admit(context.Background(), Data, "x")
	if err != nil || tk != nil {
		t.Fatalf("nil controller must admit with a nil ticket, got %v %v", tk, err)
	}
	tk.Done() // must not panic
	if !c.AdmitConn() {
		t.Fatal("nil controller must admit connections")
	}
	c.ReleaseConn()
	c.Close()
	if s := c.Snapshot(); s != (Snapshot{}) {
		t.Fatalf("nil snapshot should be zero: %+v", s)
	}
}

func TestTelemetryInstruments(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := NewController(Config{InitialLimit: 4, MinLimit: 4, MaxLimit: 4, MaxQueueWait: 10 * time.Millisecond}, reg)
	tk, err := c.Admit(context.Background(), Data, "a")
	if err != nil {
		t.Fatal(err)
	}
	tk.Done()
	snap := reg.Snapshot()
	if snap.Counter(MetricAdmittedData) != 1 {
		t.Fatalf("admitted counter not recorded: %+v", snap.Counters)
	}
	if snap.Gauge(MetricLimit) != 4 {
		t.Fatalf("limit gauge = %d, want 4", snap.Gauge(MetricLimit))
	}
	if h, ok := snap.Histogram(MetricQueueWaitData); !ok || h.Count != 1 {
		t.Fatal("queue-wait histogram not recorded")
	}
}

// waitForQueueDepth polls until the controller's queue holds at
// least n waiters.
func waitForQueueDepth(t *testing.T, c *Controller, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if c.Snapshot().QueueDepth >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue never reached depth %d (now %d)", n, c.Snapshot().QueueDepth)
}
