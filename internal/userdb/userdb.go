// Package userdb implements the AUD — ACE User Database Service
// (§4.7, Fig 12): the registry of valid ACE users and their pertinent
// information (username, password, full name, identification data
// such as iButton serials and fingerprint templates, and public
// keys), plus the user's current location as maintained by the ID
// Monitor (§7.2).
package userdb

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/hier"
)

// ServiceName is the conventional instance name of the user database
// daemon.
const ServiceName = "aud"

// User is one registered ACE user.
type User struct {
	Username    string
	FullName    string
	PassHash    string // hex sha256 of the password
	IButton     uint64 // iButton serial number, 0 = none
	Fingerprint string // hex-encoded enrolled fingerprint template
	PublicKey   string // hex public key (LAN account linkage)
	// Location is the user's last identified access point (room), ""
	// when unknown; updated by the ID Monitor on identifications.
	Location string
}

// HashPassword hashes a password for storage.
func HashPassword(pw string) string {
	sum := sha256.Sum256([]byte(pw))
	return hex.EncodeToString(sum[:])
}

// DB is the in-memory user registry, usable directly in-process and
// wrapped by Service as an ACE daemon.
type DB struct {
	mu    sync.RWMutex
	users map[string]*User
}

// NewDB returns an empty user database.
func NewDB() *DB { return &DB{users: make(map[string]*User)} }

// Add registers a new user. It fails on duplicate usernames or
// duplicate iButton serials (a token must identify one person).
func (db *DB) Add(u User) error {
	if u.Username == "" {
		return fmt.Errorf("userdb: user without a username")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.users[u.Username]; exists {
		return fmt.Errorf("userdb: user %q already registered", u.Username)
	}
	if u.IButton != 0 {
		for _, other := range db.users {
			if other.IButton == u.IButton {
				return fmt.Errorf("userdb: iButton %d already bound to %q", u.IButton, other.Username)
			}
		}
	}
	cp := u
	db.users[u.Username] = &cp
	return nil
}

// Get returns the named user.
func (db *DB) Get(username string) (User, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	u, ok := db.users[username]
	if !ok {
		return User{}, false
	}
	return *u, true
}

// Remove deletes a user, reporting whether it existed.
func (db *DB) Remove(username string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	_, ok := db.users[username]
	delete(db.users, username)
	return ok
}

// Update applies fn to the named user under the lock.
func (db *DB) Update(username string, fn func(*User)) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	u, ok := db.users[username]
	if !ok {
		return fmt.Errorf("userdb: no user %q", username)
	}
	fn(u)
	return nil
}

// CheckPassword verifies a username/password pair.
func (db *DB) CheckPassword(username, password string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	u, ok := db.users[username]
	return ok && u.PassHash == HashPassword(password)
}

// ByIButton finds the user bound to an iButton serial.
func (db *DB) ByIButton(serial uint64) (User, bool) {
	if serial == 0 {
		return User{}, false
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, u := range db.users {
		if u.IButton == serial {
			return *u, true
		}
	}
	return User{}, false
}

// SetLocation records the user's current access location.
func (db *DB) SetLocation(username, room string) error {
	return db.Update(username, func(u *User) { u.Location = room })
}

// Usernames lists all registered usernames, sorted.
func (db *DB) Usernames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.users))
	for n := range db.users {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of registered users.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.users)
}

// Fingerprints returns the username → enrolled-template table loaded
// by the FIU service at startup (§4.8).
func (db *DB) Fingerprints() map[string]string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make(map[string]string)
	for n, u := range db.users {
		if u.Fingerprint != "" {
			out[n] = u.Fingerprint
		}
	}
	return out
}

// Service is the AUD wrapped as an ACE daemon (Fig 12: an interface
// for services wishing to store and access user information).
type Service struct {
	*daemon.Daemon
	db *DB
}

// New constructs the user database daemon around db (a fresh DB when
// nil).
func New(dcfg daemon.Config, db *DB) *Service {
	if db == nil {
		db = NewDB()
	}
	if dcfg.Name == "" {
		dcfg.Name = ServiceName
	}
	if dcfg.Class == "" {
		dcfg.Class = hier.ClassDatabase + ".User"
	}
	s := &Service{Daemon: daemon.New(dcfg), db: db}
	s.install()
	return s
}

// DB exposes the underlying registry.
func (s *Service) DB() *DB { return s.db }

func userReply(u User) *cmdlang.CmdLine {
	r := cmdlang.OK().
		SetWord("username", u.Username).
		SetString("fullname", u.FullName).
		SetInt("ibutton", int64(u.IButton)).
		SetString("fingerprint", u.Fingerprint).
		SetString("publickey", u.PublicKey)
	if u.Location != "" {
		r.SetWord("location", u.Location)
	}
	return r
}

func (s *Service) install() {
	s.Handle(cmdlang.CommandSpec{
		Name: "addUser",
		Doc:  "register a new ACE user (Scenario 1)",
		Args: []cmdlang.ArgSpec{
			{Name: "username", Kind: cmdlang.KindWord, Required: true},
			{Name: "fullname", Kind: cmdlang.KindString},
			{Name: "password", Kind: cmdlang.KindString},
			{Name: "ibutton", Kind: cmdlang.KindInt},
			{Name: "fingerprint", Kind: cmdlang.KindString},
			{Name: "publickey", Kind: cmdlang.KindString},
		},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		u := User{
			Username:    c.Str("username", ""),
			FullName:    c.Str("fullname", ""),
			IButton:     uint64(c.Int("ibutton", 0)),
			Fingerprint: c.Str("fingerprint", ""),
			PublicKey:   c.Str("publickey", ""),
		}
		if pw := c.Str("password", ""); pw != "" {
			u.PassHash = HashPassword(pw)
		}
		if err := s.db.Add(u); err != nil {
			return cmdlang.Fail(cmdlang.CodeConflict, err.Error()), nil
		}
		return nil, nil
	})

	s.Handle(cmdlang.CommandSpec{
		Name: "getUser",
		Args: []cmdlang.ArgSpec{{Name: "username", Kind: cmdlang.KindWord, Required: true}},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		u, ok := s.db.Get(c.Str("username", ""))
		if !ok {
			return cmdlang.Fail(cmdlang.CodeNotFound, "no such user"), nil
		}
		return userReply(u), nil
	})

	//acelint:ignore verbconformance operator verb: issued through acectl's dynamic call/raw passthrough
	s.Handle(cmdlang.CommandSpec{
		Name: "removeUser",
		Args: []cmdlang.ArgSpec{{Name: "username", Kind: cmdlang.KindWord, Required: true}},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		existed := s.db.Remove(c.Str("username", ""))
		return cmdlang.OK().SetBool("existed", existed), nil
	})

	s.Handle(cmdlang.CommandSpec{
		Name: "checkPassword",
		Args: []cmdlang.ArgSpec{
			{Name: "username", Kind: cmdlang.KindWord, Required: true},
			{Name: "password", Kind: cmdlang.KindString, Required: true},
		},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		ok := s.db.CheckPassword(c.Str("username", ""), c.Str("password", ""))
		return cmdlang.OK().SetBool("valid", ok), nil
	})

	s.Handle(cmdlang.CommandSpec{
		Name: "byIButton",
		Doc:  "identify the user bound to an iButton serial (§4.9)",
		Args: []cmdlang.ArgSpec{{Name: "serial", Kind: cmdlang.KindInt, Required: true}},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		u, ok := s.db.ByIButton(uint64(c.Int("serial", 0)))
		if !ok {
			return cmdlang.Fail(cmdlang.CodeNotFound, "unknown iButton"), nil
		}
		return userReply(u), nil
	})

	s.Handle(cmdlang.CommandSpec{
		Name: "setLocation",
		Doc:  "record a user's current access location (Scenario 2)",
		Args: []cmdlang.ArgSpec{
			{Name: "username", Kind: cmdlang.KindWord, Required: true},
			{Name: "room", Kind: cmdlang.KindWord, Required: true},
		},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		if err := s.db.SetLocation(c.Str("username", ""), c.Str("room", "")); err != nil {
			return cmdlang.Fail(cmdlang.CodeNotFound, err.Error()), nil
		}
		return nil, nil
	})

	s.Handle(cmdlang.CommandSpec{Name: "listUsers"}, func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		names := s.db.Usernames()
		return cmdlang.OK().SetInt("count", int64(len(names))).Set("usernames", cmdlang.WordVector(names...)), nil
	})

	s.Handle(cmdlang.CommandSpec{
		Name: "fingerprintTable",
		Doc:  "enrolled fingerprint templates, loaded by the FIU at startup",
	}, func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		table := s.db.Fingerprints()
		users := make([]string, 0, len(table))
		for u := range table {
			users = append(users, u)
		}
		sort.Strings(users)
		templates := make([]string, len(users))
		for i, u := range users {
			templates[i] = table[u]
		}
		return cmdlang.OK().
			Set("usernames", cmdlang.WordVector(users...)).
			Set("templates", cmdlang.StringVector(templates...)), nil
	})
}
