package userdb

import (
	"fmt"
	"testing"
	"testing/quick"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
)

func TestDBAddGetRemove(t *testing.T) {
	db := NewDB()
	u := User{Username: "john_doe", FullName: "John Doe", PassHash: HashPassword("hunter2"), IButton: 0xDEADBEEF, Fingerprint: "abcd"}
	if err := db.Add(u); err != nil {
		t.Fatal(err)
	}
	if err := db.Add(u); err == nil {
		t.Fatal("duplicate username accepted")
	}
	if err := db.Add(User{}); err == nil {
		t.Fatal("nameless user accepted")
	}
	if err := db.Add(User{Username: "other", IButton: 0xDEADBEEF}); err == nil {
		t.Fatal("duplicate iButton accepted")
	}

	got, ok := db.Get("john_doe")
	if !ok || got.FullName != "John Doe" {
		t.Fatalf("got=%+v", got)
	}
	if _, ok := db.Get("ghost"); ok {
		t.Fatal("phantom user")
	}
	if !db.Remove("john_doe") || db.Remove("john_doe") {
		t.Fatal("remove semantics")
	}
}

func TestPasswordCheck(t *testing.T) {
	db := NewDB()
	db.Add(User{Username: "u", PassHash: HashPassword("secret")}) //nolint:errcheck
	if !db.CheckPassword("u", "secret") {
		t.Fatal("correct password rejected")
	}
	if db.CheckPassword("u", "wrong") || db.CheckPassword("ghost", "secret") {
		t.Fatal("bad credentials accepted")
	}
}

func TestByIButtonAndLocation(t *testing.T) {
	db := NewDB()
	db.Add(User{Username: "a", IButton: 111}) //nolint:errcheck
	db.Add(User{Username: "b", IButton: 222}) //nolint:errcheck
	db.Add(User{Username: "c"})               //nolint:errcheck

	u, ok := db.ByIButton(222)
	if !ok || u.Username != "b" {
		t.Fatalf("u=%+v", u)
	}
	if _, ok := db.ByIButton(999); ok {
		t.Fatal("phantom serial")
	}
	if _, ok := db.ByIButton(0); ok {
		t.Fatal("zero serial matched")
	}

	if err := db.SetLocation("a", "hawk"); err != nil {
		t.Fatal(err)
	}
	u, _ = db.Get("a")
	if u.Location != "hawk" {
		t.Fatalf("location=%q", u.Location)
	}
	if err := db.SetLocation("ghost", "hawk"); err == nil {
		t.Fatal("located a ghost")
	}
}

func TestFingerprintTable(t *testing.T) {
	db := NewDB()
	db.Add(User{Username: "a", Fingerprint: "f1"}) //nolint:errcheck
	db.Add(User{Username: "b"})                    //nolint:errcheck
	db.Add(User{Username: "c", Fingerprint: "f3"}) //nolint:errcheck
	table := db.Fingerprints()
	if len(table) != 2 || table["a"] != "f1" || table["c"] != "f3" {
		t.Fatalf("table=%v", table)
	}
}

func TestQuickIButtonUniqueness(t *testing.T) {
	// Property: at most one user per non-zero serial, regardless of
	// insertion order.
	f := func(serials []uint32) bool {
		db := NewDB()
		seen := map[uint64]bool{}
		for i, s := range serials {
			err := db.Add(User{Username: fmt.Sprintf("u%d", i), IButton: uint64(s)})
			dup := s != 0 && seen[uint64(s)]
			if dup != (err != nil) {
				return false
			}
			if err == nil && s != 0 {
				seen[uint64(s)] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func startAUD(t *testing.T) *Service {
	t.Helper()
	s := New(daemon.Config{}, nil)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s
}

func TestServiceScenario1NewUser(t *testing.T) {
	// Scenario 1: the administrator registers John Doe via the AUD.
	s := startAUD(t)
	pool := daemon.NewPool(nil)
	defer pool.Close()

	if _, err := pool.Call(s.Addr(), cmdlang.New("addUser").
		SetWord("username", "john_doe").
		SetString("fullname", "John Doe").
		SetString("password", "hunter2").
		SetInt("ibutton", 12345).
		SetString("fingerprint", "a1b2c3")); err != nil {
		t.Fatal(err)
	}

	// Duplicate registration conflicts.
	_, err := pool.Call(s.Addr(), cmdlang.New("addUser").SetWord("username", "john_doe"))
	if !cmdlang.IsRemoteCode(err, cmdlang.CodeConflict) {
		t.Fatalf("err=%v", err)
	}

	got, err := pool.Call(s.Addr(), cmdlang.New("getUser").SetWord("username", "john_doe"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Str("fullname", "") != "John Doe" || got.Int("ibutton", 0) != 12345 {
		t.Fatalf("got=%v", got)
	}

	chk, err := pool.Call(s.Addr(), cmdlang.New("checkPassword").
		SetWord("username", "john_doe").SetString("password", "hunter2"))
	if err != nil {
		t.Fatal(err)
	}
	if !chk.Bool("valid", false) {
		t.Fatal("password rejected")
	}

	by, err := pool.Call(s.Addr(), cmdlang.New("byIButton").SetInt("serial", 12345))
	if err != nil {
		t.Fatal(err)
	}
	if by.Str("username", "") != "john_doe" {
		t.Fatalf("by=%v", by)
	}

	if _, err := pool.Call(s.Addr(), cmdlang.New("setLocation").
		SetWord("username", "john_doe").SetWord("room", "hawk")); err != nil {
		t.Fatal(err)
	}
	got, _ = pool.Call(s.Addr(), cmdlang.New("getUser").SetWord("username", "john_doe"))
	if got.Str("location", "") != "hawk" {
		t.Fatalf("location=%v", got)
	}

	table, err := pool.Call(s.Addr(), cmdlang.New("fingerprintTable"))
	if err != nil {
		t.Fatal(err)
	}
	if names := table.Strings("usernames"); len(names) != 1 || names[0] != "john_doe" {
		t.Fatalf("table=%v", table)
	}

	list, err := pool.Call(s.Addr(), cmdlang.New("listUsers"))
	if err != nil {
		t.Fatal(err)
	}
	if list.Int("count", 0) != 1 {
		t.Fatalf("list=%v", list)
	}
}
