// Package workload generates deterministic keyed workloads for
// benchmarks and experiments. The central piece is a YCSB-style
// zipfian key generator: ambient-environment state (workspace
// documents, device registrations, sensor readouts) is read and
// rewritten with a hot head and a long tail, and a store sharded by
// consistent hashing has to show its scaling under that skew, not
// under a uniform key stream that flatters it.
//
// Everything is seeded explicitly and uses private PRNG state, so two
// generators built with the same parameters emit identical sequences
// regardless of what else the process is doing.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Zipfian draws keys in [0, n) with P(k) ∝ 1/(k+1)^theta — the
// standard YCSB zipfian generator (Gray et al.'s rejection-free
// inversion). theta must be in (0, 1); 0.99 is YCSB's default, 0.9 a
// slightly milder skew. Key 0 is the hottest.
type Zipfian struct {
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
	rng   *rand.Rand
}

// NewZipfian builds a zipfian generator over n keys with skew theta,
// seeded with seed. It panics on invalid parameters (a workload
// misconfiguration is a programming error, not a runtime condition).
func NewZipfian(seed int64, n int, theta float64) *Zipfian {
	if n <= 0 {
		panic(fmt.Sprintf("workload: zipfian over %d keys", n))
	}
	if theta <= 0 || theta >= 1 {
		panic(fmt.Sprintf("workload: zipfian theta %v outside (0, 1)", theta))
	}
	zetan := zeta(n, theta)
	zeta2 := zeta(2, theta)
	z := &Zipfian{
		n:     n,
		theta: theta,
		alpha: 1 / (1 - theta),
		zetan: zetan,
		eta:   (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/zetan),
		rng:   rand.New(rand.NewSource(seed)),
	}
	return z
}

// zeta computes the generalized harmonic number H_{n,theta}.
func zeta(n int, theta float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next returns the next key in [0, n).
func (z *Zipfian) Next() int {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	k := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if k >= z.n {
		k = z.n - 1
	}
	return k
}

// N returns the key-space size.
func (z *Zipfian) N() int { return z.n }

// OpKind distinguishes the operations a Generator emits.
type OpKind int

const (
	// OpGet reads a key.
	OpGet OpKind = iota
	// OpPut overwrites a key.
	OpPut
)

// Op is one keyed operation of a generated stream.
type Op struct {
	Kind OpKind
	Key  int
}

// Generator emits a deterministic stream of keyed get/put operations:
// zipfian key choice, Bernoulli read/write mix. The op-kind PRNG is
// separate from the key PRNG so changing the mix does not perturb the
// key sequence.
type Generator struct {
	keys *Zipfian
	mix  *rand.Rand
	read float64
}

// NewGenerator builds an op stream over n keys with zipfian skew
// theta and the given read fraction in [0, 1].
func NewGenerator(seed int64, n int, theta, readFraction float64) *Generator {
	if readFraction < 0 || readFraction > 1 {
		panic(fmt.Sprintf("workload: read fraction %v outside [0, 1]", readFraction))
	}
	return &Generator{
		keys: NewZipfian(seed, n, theta),
		mix:  rand.New(rand.NewSource(seed ^ 0x5DEECE66D)),
		read: readFraction,
	}
}

// Next returns the next operation.
func (g *Generator) Next() Op {
	kind := OpPut
	if g.mix.Float64() < g.read {
		kind = OpGet
	}
	return Op{Kind: kind, Key: g.keys.Next()}
}

// Path maps a key index to a store path under prefix, zero-padded so
// listings sort numerically.
func Path(prefix string, key int) string {
	return fmt.Sprintf("%s/%05d", prefix, key)
}
