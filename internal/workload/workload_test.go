package workload

import (
	"testing"
)

func TestZipfianDeterministic(t *testing.T) {
	a := NewZipfian(42, 16384, 0.9)
	b := NewZipfian(42, 16384, 0.9)
	for i := 0; i < 10000; i++ {
		if ka, kb := a.Next(), b.Next(); ka != kb {
			t.Fatalf("draw %d diverged: %d vs %d", i, ka, kb)
		}
	}
	c := NewZipfian(43, 16384, 0.9)
	same := true
	a2 := NewZipfian(42, 16384, 0.9)
	for i := 0; i < 1000; i++ {
		if a2.Next() != c.Next() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical key sequences")
	}
}

func TestZipfianSkewAndRange(t *testing.T) {
	const n, draws = 16384, 200000
	z := NewZipfian(7, n, 0.9)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		k := z.Next()
		if k < 0 || k >= n {
			t.Fatalf("key %d outside [0, %d)", k, n)
		}
		counts[k]++
	}
	// Key 0 must be far hotter than uniform (1/n of draws ≈ 12).
	if counts[0] < draws/100 {
		t.Fatalf("hottest key drawn %d/%d times — no zipfian head", counts[0], draws)
	}
	// But the tail must still be exercised: a large fraction of the
	// key space appears at least once.
	touched := 0
	for _, c := range counts {
		if c > 0 {
			touched++
		}
	}
	if touched < n/10 {
		t.Fatalf("only %d/%d keys ever drawn — skew degenerated to a point mass", touched, n)
	}
	// Head mass: the 10 hottest keys carry a meaningful share but not
	// everything.
	head := 0
	for k := 0; k < 10; k++ {
		head += counts[k]
	}
	if head < draws/10 || head > draws*3/4 {
		t.Fatalf("head-10 share %d/%d outside plausible zipfian(0.9) range", head, draws)
	}
}

func TestGeneratorMixAndDeterminism(t *testing.T) {
	g1 := NewGenerator(11, 1024, 0.9, 0.8)
	g2 := NewGenerator(11, 1024, 0.9, 0.8)
	reads := 0
	const ops = 50000
	for i := 0; i < ops; i++ {
		o1, o2 := g1.Next(), g2.Next()
		if o1 != o2 {
			t.Fatalf("op %d diverged: %+v vs %+v", i, o1, o2)
		}
		if o1.Kind == OpGet {
			reads++
		}
	}
	frac := float64(reads) / ops
	if frac < 0.77 || frac > 0.83 {
		t.Fatalf("read fraction %.3f, want ≈0.8", frac)
	}
}

func TestPath(t *testing.T) {
	if got := Path("/bench/shard", 7); got != "/bench/shard/00007" {
		t.Fatalf("Path = %q", got)
	}
}

func TestZipfianRejectsBadParams(t *testing.T) {
	for _, f := range []func(){
		func() { NewZipfian(1, 0, 0.9) },
		func() { NewZipfian(1, 10, 0) },
		func() { NewZipfian(1, 10, 1) },
		func() { NewGenerator(1, 10, 0.9, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid workload parameters did not panic")
				}
			}()
			f()
		}()
	}
}
