package wire

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ace/internal/cmdlang"
	"ace/internal/hlc"
	"ace/internal/telemetry"
)

// ErrClosed is returned by calls on a closed client. A Send that
// fails with ErrClosed is guaranteed to have written nothing: the
// connection was already known dead before the attempt.
var ErrClosed = errors.New("wire: client closed")

// Default timeouts. Both are configurable per Transport (and per
// daemon.Pool) so tests and latency-sensitive daemons can tighten
// them; the package constants are only the fallback.
const (
	// DefaultDialTimeout bounds connection establishment to a daemon.
	DefaultDialTimeout = 5 * time.Second
	// DefaultCallTimeout bounds one request/response exchange when the
	// caller's context carries no deadline of its own. No Call may
	// block forever: a stalled peer surfaces as
	// context.DeadlineExceeded within this bound.
	DefaultCallTimeout = 10 * time.Second
)

// DialTimeout is the historical name for the dial bound, kept for
// callers that reference the package default directly.
const DialTimeout = DefaultDialTimeout

// Client is a connection to one ACE service daemon's command port.
// It is safe for concurrent use: calls are correlated by the "seq"
// argument, so many goroutines can have requests in flight on the
// same connection.
type Client struct {
	conn net.Conn

	writeMu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	pending map[int64]chan *cmdlang.CmdLine
	err     error
	closed  bool

	seq atomic.Int64

	onPush func(*cmdlang.CmdLine)

	callTimeout time.Duration

	metrics atomic.Pointer[Metrics]

	dead     chan struct{} // closed exactly once when the connection fails
	deadOnce sync.Once
}

// SetOnPush installs a handler for commands that arrive without a
// matching pending sequence number (server pushes, e.g. streamed
// notifications on a subscription channel). Pushes arriving before a
// handler is installed are dropped.
func (c *Client) SetOnPush(fn func(*cmdlang.CmdLine)) {
	c.mu.Lock()
	c.onPush = fn
	c.mu.Unlock()
}

// SetCallTimeout overrides the default per-call deadline applied when
// a caller's context has none. d <= 0 restores DefaultCallTimeout.
func (c *Client) SetCallTimeout(d time.Duration) {
	if d <= 0 {
		d = DefaultCallTimeout
	}
	c.mu.Lock()
	c.callTimeout = d
	c.mu.Unlock()
}

func (c *Client) getCallTimeout() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.callTimeout
}

// SetMetrics installs the telemetry instrument group recording this
// connection's traffic (nil disables). Safe to call concurrently
// with in-flight traffic.
func (c *Client) SetMetrics(m *Metrics) { c.metrics.Store(m) }

// m returns the active instrument group; may be nil (no-op).
func (c *Client) m() *Metrics { return c.metrics.Load() }

// Dial connects to a daemon command port using the transport's TLS
// client configuration (or plaintext when the transport is nil or
// plaintext). The transport's DialTimeout and CallTimeout, when set,
// configure the connection.
func Dial(t *Transport, addr string) (*Client, error) {
	return DialContext(context.Background(), t, addr)
}

// DialContext is Dial bounded by ctx; when ctx carries no deadline
// the transport's DialTimeout (default DefaultDialTimeout) applies.
func DialContext(ctx context.Context, t *Transport, addr string) (*Client, error) {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t.dialTimeout())
		defer cancel()
	}
	var d net.Dialer
	raw, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	cfg := t.ClientConfig("")
	var conn net.Conn = raw
	if cfg != nil {
		tc := tls.Client(raw, cfg)
		if err := tc.HandshakeContext(ctx); err != nil {
			raw.Close()
			return nil, fmt.Errorf("wire: TLS handshake with %s: %w", addr, err)
		}
		conn = tc
	}
	c := NewClient(conn)
	if t != nil && t.CallTimeout > 0 {
		c.SetCallTimeout(t.CallTimeout)
	}
	return c, nil
}

// NewClient wraps an established connection (already TLS'd if
// desired) and starts the reader goroutine.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:        conn,
		pending:     make(map[int64]chan *cmdlang.CmdLine),
		callTimeout: DefaultCallTimeout,
		dead:        make(chan struct{}),
	}
	go c.readLoop()
	return c
}

func (c *Client) readLoop() {
	for {
		payload, err := ReadFrame(c.conn)
		if err != nil {
			c.fail(err)
			return
		}
		c.m().FrameRecv(len(payload))
		_, _, text := SplitPayload(payload)
		cmd, err := cmdlang.Parse(string(text))
		if err != nil {
			c.fail(err)
			return
		}
		seq := cmd.Int(cmdlang.SeqArg, -1)
		c.mu.Lock()
		ch, ok := c.pending[seq]
		if ok {
			delete(c.pending, seq)
		}
		push := c.onPush
		c.mu.Unlock()
		switch {
		case ok:
			ch <- cmd
		case seq >= 0:
			// A reply whose call already gave up (deadline exceeded or
			// cancelled). Dropping it keeps late replies from
			// masquerading as server pushes.
		case push != nil:
			push(cmd)
		}
	}
}

func (c *Client) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = err
	}
	for seq, ch := range c.pending {
		delete(c.pending, seq)
		close(ch)
	}
	c.closed = true
	c.deadOnce.Do(func() { close(c.dead) })
	c.conn.Close()
}

// Closed reports whether the connection has terminally failed (or was
// closed). A closed client is guaranteed never to write again.
func (c *Client) Closed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Call sends the command and waits for its return command under the
// client's default call timeout. The "seq" argument is added
// automatically. A "fail" reply is converted to a
// *cmdlang.RemoteError; an "ok" reply is returned as-is so the caller
// can read result arguments.
func (c *Client) Call(cmd *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
	return c.CallContext(context.Background(), cmd)
}

// CallContext is Call bounded by ctx. When ctx has no deadline, the
// client's call timeout applies, so no call can block forever.
// Cancellation abandons the call immediately and removes its pending
// sequence entry; a reply that arrives later is dropped.
func (c *Client) CallContext(ctx context.Context, cmd *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
	reply, err := c.CallRawContext(ctx, cmd)
	if err != nil {
		return nil, err
	}
	if rerr := cmdlang.ReplyError(reply); rerr != nil {
		return nil, rerr
	}
	return reply, nil
}

// CallRaw is Call without reply-status interpretation: it returns
// whatever return command the daemon sent, including "fail".
func (c *Client) CallRaw(cmd *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
	return c.CallRawContext(context.Background(), cmd)
}

// CallRawContext is CallRaw bounded by ctx (see CallContext). When
// ctx carries a telemetry span context, the outgoing frame carries a
// trace header for a fresh child span, so the receiving daemon's
// recorded span parents correctly under the caller's.
func (c *Client) CallRawContext(ctx context.Context, cmd *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.getCallTimeout())
		defer cancel()
	}
	seq := c.seq.Add(1)
	cmd = cmd.Clone()
	cmd.SetInt(cmdlang.SeqArg, seq)

	var trace telemetry.SpanContext
	if sc := telemetry.FromContext(ctx); sc.Valid() {
		trace = sc.NewChild()
	}

	ch := make(chan *cmdlang.CmdLine, 1)
	c.mu.Lock()
	if c.closed {
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return nil, err
	}
	c.pending[seq] = ch
	c.mu.Unlock()

	start := time.Now()
	if err := c.write(ctx, EncodePayload(trace, hlc.FromContext(ctx), cmd.String())); err != nil {
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
		return nil, err
	}

	select {
	case reply, ok := <-ch:
		if !ok {
			return nil, c.terminalErr()
		}
		c.m().CallDone(time.Since(start))
		return reply, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			c.m().CallTimeout()
		}
		return nil, ctx.Err()
	}
}

// write sends one frame under the context's deadline. A write error
// is terminal for the whole connection: part of the frame may already
// be on the wire, so the framing stream can no longer be trusted.
func (c *Client) write(ctx context.Context, payload []byte) error {
	deadline, hasDeadline := ctx.Deadline()
	c.writeMu.Lock()
	if hasDeadline {
		c.conn.SetWriteDeadline(deadline) //nolint:errcheck — best effort on dying conns
	}
	err := WriteFrame(c.conn, payload)
	if hasDeadline {
		c.conn.SetWriteDeadline(time.Time{}) //nolint:errcheck
	}
	c.writeMu.Unlock()
	if err != nil {
		c.fail(err)
		return err
	}
	c.m().FrameSent(len(payload))
	return nil
}

func (c *Client) terminalErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		return ErrClosed
	}
	return c.err
}

// Send transmits a command without waiting for any reply (one-way
// notification delivery). The write is bounded by the client's call
// timeout. If Send returns ErrClosed, nothing was written; any other
// error means bytes may have reached the wire and the connection has
// been torn down.
func (c *Client) Send(cmd *cmdlang.CmdLine) error {
	return c.SendContext(context.Background(), cmd)
}

// SendContext is Send with a caller context: its deadline (if any)
// bounds the write, and a telemetry span context on it is propagated
// as a trace header (a fresh child span per delivery).
func (c *Client) SendContext(ctx context.Context, cmd *cmdlang.CmdLine) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.mu.Unlock()
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.getCallTimeout())
		defer cancel()
	}
	var trace telemetry.SpanContext
	if sc := telemetry.FromContext(ctx); sc.Valid() {
		trace = sc.NewChild()
	}
	return c.write(ctx, EncodePayload(trace, hlc.FromContext(ctx), cmd.String()))
}

// StartHeartbeat begins liveness probing: every interval the client
// issues a built-in "ping" and declares the connection dead if no
// return command (of any kind) arrives within the interval. This
// detects peers that accepted the connection but stopped servicing it
// — the failure mode idle pooled connections otherwise only discover
// on the next real call. Stopping is automatic when the connection
// fails or is closed.
func (c *Client) StartHeartbeat(interval time.Duration) {
	if interval <= 0 {
		return
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-c.dead:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), interval)
				_, err := c.CallRawContext(ctx, cmdlang.New("ping"))
				cancel()
				if err != nil {
					// Any reply — even "fail unknown_command" — proves
					// liveness; CallRaw only errs on transport trouble
					// or a missed deadline.
					c.m().HeartbeatKill()
					c.fail(fmt.Errorf("wire: heartbeat: %w", err))
					return
				}
			}
		}
	}()
}

// Close tears down the connection; outstanding calls fail.
func (c *Client) Close() error {
	c.fail(ErrClosed)
	return nil
}

// Err returns the terminal error of the connection, if any.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == ErrClosed {
		return nil
	}
	return c.err
}
