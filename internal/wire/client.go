package wire

import (
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ace/internal/cmdlang"
)

// ErrClosed is returned by calls on a closed client.
var ErrClosed = errors.New("wire: client closed")

// DialTimeout bounds connection establishment to a daemon.
const DialTimeout = 5 * time.Second

// Client is a connection to one ACE service daemon's command port.
// It is safe for concurrent use: calls are correlated by the "seq"
// argument, so many goroutines can have requests in flight on the
// same connection.
type Client struct {
	conn net.Conn

	writeMu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	pending map[int64]chan *cmdlang.CmdLine
	err     error
	closed  bool

	seq atomic.Int64

	onPush func(*cmdlang.CmdLine)
}

// SetOnPush installs a handler for commands that arrive without a
// matching pending sequence number (server pushes, e.g. streamed
// notifications on a subscription channel). Pushes arriving before a
// handler is installed are dropped.
func (c *Client) SetOnPush(fn func(*cmdlang.CmdLine)) {
	c.mu.Lock()
	c.onPush = fn
	c.mu.Unlock()
}

// Dial connects to a daemon command port using the transport's TLS
// client configuration (or plaintext when the transport is nil or
// plaintext).
func Dial(t *Transport, addr string) (*Client, error) {
	d := net.Dialer{Timeout: DialTimeout}
	raw, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	cfg := t.ClientConfig("")
	var conn net.Conn = raw
	if cfg != nil {
		tc := tls.Client(raw, cfg)
		if err := tc.Handshake(); err != nil {
			raw.Close()
			return nil, fmt.Errorf("wire: TLS handshake with %s: %w", addr, err)
		}
		conn = tc
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (already TLS'd if
// desired) and starts the reader goroutine.
func NewClient(conn net.Conn) *Client {
	c := &Client{conn: conn, pending: make(map[int64]chan *cmdlang.CmdLine)}
	go c.readLoop()
	return c
}

func (c *Client) readLoop() {
	for {
		cmd, err := ReadCmd(c.conn)
		if err != nil {
			c.fail(err)
			return
		}
		seq := cmd.Int(cmdlang.SeqArg, -1)
		c.mu.Lock()
		ch, ok := c.pending[seq]
		if ok {
			delete(c.pending, seq)
		}
		push := c.onPush
		c.mu.Unlock()
		if ok {
			ch <- cmd
		} else if push != nil {
			push(cmd)
		}
	}
}

func (c *Client) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = err
	}
	for seq, ch := range c.pending {
		delete(c.pending, seq)
		close(ch)
	}
	c.closed = true
	c.conn.Close()
}

// Call sends the command and waits for its return command. The "seq"
// argument is added automatically. A "fail" reply is converted to a
// *cmdlang.RemoteError; an "ok" reply is returned as-is so the caller
// can read result arguments.
func (c *Client) Call(cmd *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
	reply, err := c.CallRaw(cmd)
	if err != nil {
		return nil, err
	}
	if rerr := cmdlang.ReplyError(reply); rerr != nil {
		return nil, rerr
	}
	return reply, nil
}

// CallRaw is Call without reply-status interpretation: it returns
// whatever return command the daemon sent, including "fail".
func (c *Client) CallRaw(cmd *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
	seq := c.seq.Add(1)
	cmd = cmd.Clone()
	cmd.SetInt(cmdlang.SeqArg, seq)

	ch := make(chan *cmdlang.CmdLine, 1)
	c.mu.Lock()
	if c.closed {
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return nil, err
	}
	c.pending[seq] = ch
	c.mu.Unlock()

	c.writeMu.Lock()
	err := WriteCmd(c.conn, cmd)
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
		return nil, err
	}

	reply, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return nil, err
	}
	return reply, nil
}

// Send transmits a command without waiting for any reply (one-way
// notification delivery).
func (c *Client) Send(cmd *cmdlang.CmdLine) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return WriteCmd(c.conn, cmd)
}

// Close tears down the connection; outstanding calls fail.
func (c *Client) Close() error {
	c.fail(ErrClosed)
	return nil
}

// Err returns the terminal error of the connection, if any.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == ErrClosed {
		return nil
	}
	return c.err
}
