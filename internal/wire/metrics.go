package wire

import (
	"time"

	"ace/internal/telemetry"
)

// Metric names recorded by the wire layer. One Metrics group is
// typically shared by a daemon's server-side connections and every
// client its pool dials, so the counters describe the daemon's whole
// wire footprint.
const (
	MetricFramesSent     = "wire.frames.sent"
	MetricFramesRecv     = "wire.frames.recv"
	MetricBytesSent      = "wire.bytes.sent"
	MetricBytesRecv      = "wire.bytes.recv"
	MetricCallLatency    = "wire.call.latency"
	MetricCallTimeouts   = "wire.call.timeouts"
	MetricHeartbeatKills = "wire.heartbeat.kills"
)

// Metrics is the wire layer's instrument group. A nil *Metrics (the
// result of NewMetrics over a nil registry) discards all recordings,
// so instrumentation sites never need a guard of their own.
type Metrics struct {
	framesSent     *telemetry.Counter
	framesRecv     *telemetry.Counter
	bytesSent      *telemetry.Counter
	bytesRecv      *telemetry.Counter
	timeouts       *telemetry.Counter
	heartbeatKills *telemetry.Counter
	callLatency    *telemetry.Histogram
}

// NewMetrics creates (or finds) the wire instruments in r. A nil
// registry yields a nil, no-op Metrics.
func NewMetrics(r *telemetry.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		framesSent:     r.Counter(MetricFramesSent),
		framesRecv:     r.Counter(MetricFramesRecv),
		bytesSent:      r.Counter(MetricBytesSent),
		bytesRecv:      r.Counter(MetricBytesRecv),
		timeouts:       r.Counter(MetricCallTimeouts),
		heartbeatKills: r.Counter(MetricHeartbeatKills),
		callLatency:    r.Histogram(MetricCallLatency),
	}
}

// FrameSent records one outgoing frame of n payload bytes.
func (m *Metrics) FrameSent(n int) {
	if m == nil {
		return
	}
	m.framesSent.Inc()
	m.bytesSent.Add(int64(n))
}

// FrameRecv records one incoming frame of n payload bytes.
func (m *Metrics) FrameRecv(n int) {
	if m == nil {
		return
	}
	m.framesRecv.Inc()
	m.bytesRecv.Add(int64(n))
}

// CallDone records one completed request/response exchange.
func (m *Metrics) CallDone(d time.Duration) {
	if m == nil {
		return
	}
	m.callLatency.Observe(d)
}

// CallTimeout records a call abandoned on a deadline.
func (m *Metrics) CallTimeout() {
	if m == nil {
		return
	}
	m.timeouts.Inc()
}

// HeartbeatKill records a connection declared dead by its heartbeat.
func (m *Metrics) HeartbeatKill() {
	if m == nil {
		return
	}
	m.heartbeatKills.Inc()
}
