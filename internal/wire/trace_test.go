package wire

import (
	"bytes"
	"context"
	"encoding/binary"
	"net"
	"testing"
	"time"

	"ace/internal/cmdlang"
	"ace/internal/hlc"
	"ace/internal/telemetry"
)

func TestTracePayloadRoundTrip(t *testing.T) {
	sc := telemetry.SpanContext{TraceID: 0xDEADBEEFCAFEF00D, SpanID: 0x1234, Parent: 0x5678}
	text := `move pan=45.5 tilt=-10.25;`
	payload := EncodePayload(sc, 0, text)
	got, hts, rest := SplitPayload(payload)
	if !hts.IsZero() {
		t.Fatalf("unstamped payload decoded an HLC: %v", hts)
	}
	if got != sc {
		t.Fatalf("trace context lost: %+v != %+v", got, sc)
	}
	if string(rest) != text {
		t.Fatalf("command text lost: %q", rest)
	}
}

func TestUntracedPayloadIsPlainText(t *testing.T) {
	text := `ping;`
	payload := EncodePayload(telemetry.SpanContext{}, 0, text)
	if string(payload) != text {
		t.Fatalf("untraced payload must be byte-identical to the command text, got %q", payload)
	}
	sc, _, rest := SplitPayload(payload)
	if sc.Valid() {
		t.Fatalf("plain payload decoded a trace context: %+v", sc)
	}
	if string(rest) != text {
		t.Fatalf("plain payload text altered: %q", rest)
	}
}

func TestSplitPayloadMalformedHeader(t *testing.T) {
	cases := [][]byte{
		{0x01},                   // bare marker
		{0x01, 24, 0, 0},         // truncated header
		{0x01, 3, 'a', 'b', 'c'}, // hdrlen below the trace header size
		append([]byte{0x01, 30}, make([]byte, 10)...), // hdrlen beyond payload
	}
	for _, payload := range cases {
		sc, _, rest := SplitPayload(payload)
		if sc.Valid() {
			t.Fatalf("malformed payload %v decoded a trace context", payload)
		}
		if !bytes.Equal(rest, payload) {
			t.Fatalf("malformed payload %v not returned whole", payload)
		}
	}
}

func TestSplitPayloadSkipsExtendedHeader(t *testing.T) {
	// A future version may append bytes after the 24 this version
	// understands; current readers must skip them.
	sc := telemetry.SpanContext{TraceID: 7, SpanID: 8, Parent: 9}
	base := EncodePayload(sc, 0, "ping;")
	extended := make([]byte, 0, len(base)+4)
	extended = append(extended, base[:2+hlcHeaderLen]...)
	extended = append(extended, 0xAA, 0xBB, 0xCC, 0xDD) // future header bytes
	extended = append(extended, base[2+hlcHeaderLen:]...)
	extended[1] = hlcHeaderLen + 4
	got, _, rest := SplitPayload(extended)
	if got != sc {
		t.Fatalf("extended header lost the trace context: %+v", got)
	}
	if string(rest) != "ping;" {
		t.Fatalf("extended header misaligned the text: %q", rest)
	}
}

func TestHLCPayloadRoundTrip(t *testing.T) {
	sc := telemetry.SpanContext{TraceID: 1, SpanID: 2, Parent: 3}
	ts := hlc.Make(1720000000123, 42)
	payload := EncodePayload(sc, ts, "psput path=/a value=62;")
	gotSC, gotTS, rest := SplitPayload(payload)
	if gotSC != sc || gotTS != ts {
		t.Fatalf("header lost: %+v %v", gotSC, gotTS)
	}
	if string(rest) != "psput path=/a value=62;" {
		t.Fatalf("command text lost: %q", rest)
	}

	// A stamp with no trace still earns a header: the zero trace IDs
	// decode as an invalid SpanContext, the timestamp survives.
	payload = EncodePayload(telemetry.SpanContext{}, ts, "psput path=/a value=62;")
	gotSC, gotTS, _ = SplitPayload(payload)
	if gotSC.Valid() {
		t.Fatalf("stampless trace decoded valid: %+v", gotSC)
	}
	if gotTS != ts {
		t.Fatalf("timestamp lost without trace: %v", gotTS)
	}
}

// TestLegacyTraceOnlyHeader pins backward compatibility with peers
// that emit the original 24-byte trace-only header: it must decode
// with a zero (unstamped) timestamp.
func TestLegacyTraceOnlyHeader(t *testing.T) {
	sc := telemetry.SpanContext{TraceID: 7, SpanID: 8, Parent: 9}
	text := "ping;"
	legacy := make([]byte, 0, 2+traceHeaderLen+len(text))
	legacy = append(legacy, traceMagic, traceHeaderLen)
	var fld [8]byte
	for _, v := range []uint64{sc.TraceID, sc.SpanID, sc.Parent} {
		binary.BigEndian.PutUint64(fld[:], v)
		legacy = append(legacy, fld[:]...)
	}
	legacy = append(legacy, text...)
	gotSC, gotTS, rest := SplitPayload(legacy)
	if gotSC != sc {
		t.Fatalf("legacy header lost the trace context: %+v", gotSC)
	}
	if !gotTS.IsZero() {
		t.Fatalf("legacy header conjured a timestamp: %v", gotTS)
	}
	if string(rest) != text {
		t.Fatalf("legacy header misaligned the text: %q", rest)
	}
}

// TestMixedVersionFraming proves the backward-compatibility contract:
// an old peer that knows nothing about trace headers keeps working
// against this version's reader, and this version's untraced client
// emits frames an old reader parses unchanged.
func TestMixedVersionFraming(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// New-version echo daemon: reads with the header-aware path,
	// replies headerless (replies never carry trace headers).
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				for {
					cmd, err := ReadCmd(conn)
					if err != nil {
						return
					}
					reply := cmdlang.OK().SetWord("echo", cmd.Name())
					reply.SetInt(cmdlang.SeqArg, cmd.Int(cmdlang.SeqArg, 0))
					if err := WriteCmd(conn, reply); err != nil {
						return
					}
				}
			}(conn)
		}
	}()

	// Old peer: raw conn, plain WriteCmd frames, no headers at all.
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	old := cmdlang.New("ping")
	old.SetInt(cmdlang.SeqArg, 1)
	if err := WriteCmd(raw, old); err != nil {
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	reply, err := ReadCmd(raw)
	if err != nil {
		t.Fatalf("old peer round-trip failed: %v", err)
	}
	if !cmdlang.IsOK(reply) || reply.Str("echo", "") != "ping" {
		t.Fatalf("old peer got wrong reply: %v", reply)
	}

	// New client without a trace context: frames must stay headerless
	// (old daemons would otherwise choke), and calls still work.
	c, err := Dial(nil, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(cmdlang.New("status")); err != nil {
		t.Fatalf("untraced call failed: %v", err)
	}

	// New client with a trace context against the new daemon: the
	// header-bearing frame round-trips too.
	ctx := telemetry.WithSpanContext(context.Background(), telemetry.NewTrace())
	if _, err := c.CallContext(ctx, cmdlang.New("status")); err != nil {
		t.Fatalf("traced call failed: %v", err)
	}
}

// TestOldReaderAcceptsUntracedNewClient pins the on-wire bytes: a
// frame produced by an untraced new client is parseable by the old
// read path (plain Parse of the whole payload), proving old daemons
// interoperate as long as no trace context is in play.
func TestOldReaderAcceptsUntracedNewClient(t *testing.T) {
	cmd := cmdlang.New("lookup").SetWord("name", "asd")
	payload := EncodePayload(telemetry.SpanContext{}, 0, cmd.String())
	parsed, err := cmdlang.Parse(string(payload))
	if err != nil {
		t.Fatalf("old reader rejects new untraced frame: %v", err)
	}
	if !parsed.Equal(cmd) {
		t.Fatalf("old reader mangled the command: %v", parsed)
	}
}

func TestClientMetricsRecordTraffic(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			cmd, err := ReadCmd(conn)
			if err != nil {
				return
			}
			reply := cmdlang.OK()
			reply.SetInt(cmdlang.SeqArg, cmd.Int(cmdlang.SeqArg, 0))
			if err := WriteCmd(conn, reply); err != nil {
				return
			}
		}
	}()

	reg := telemetry.NewRegistry()
	c, err := Dial(nil, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetMetrics(NewMetrics(reg))
	for i := 0; i < 3; i++ {
		if _, err := c.Call(cmdlang.New("ping")); err != nil {
			t.Fatal(err)
		}
	}
	s := reg.Snapshot()
	if got := s.Counter(MetricFramesSent); got != 3 {
		t.Fatalf("frames sent = %d, want 3", got)
	}
	if got := s.Counter(MetricFramesRecv); got != 3 {
		t.Fatalf("frames recv = %d, want 3", got)
	}
	if s.Counter(MetricBytesSent) == 0 || s.Counter(MetricBytesRecv) == 0 {
		t.Fatalf("byte counters empty: %+v", s.Counters)
	}
	h, ok := s.Histogram(MetricCallLatency)
	if !ok || h.Count != 3 {
		t.Fatalf("call latency histogram = %+v ok=%v, want 3 observations", h, ok)
	}
}
