// Package wire provides the transport substrate for ACE daemon
// communications: length-prefixed command frames, TLS identities
// issued by an in-memory environment CA (the paper's "SSL at the
// socket level", §3.1), and a concurrent request/response client.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"

	"ace/internal/cmdlang"
	"ace/internal/telemetry"
)

// MaxFrameSize bounds a single command frame. ACE commands are small
// control messages; bulk data travels on the UDP data channel.
const MaxFrameSize = 1 << 20

// ErrFrameTooLarge is returned when a peer sends an oversized frame.
type ErrFrameTooLarge struct{ Size uint32 }

func (e *ErrFrameTooLarge) Error() string {
	return fmt.Sprintf("wire: frame of %d bytes exceeds limit %d", e.Size, MaxFrameSize)
}

// WriteFrame writes one length-prefixed payload.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return &ErrFrameTooLarge{Size: uint32(len(payload))}
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed payload.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, &ErrFrameTooLarge{Size: n}
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// Trace header. A frame payload optionally begins with a trace
// header carrying the caller's span context:
//
//	[0x01][hdrlen:1][traceID:8][spanID:8][parent:8][command text]
//
// The marker byte 0x01 can never begin a headerless payload, because
// command text always starts with a word character ([A-Za-z_]) or
// whitespace — so readers accept both forms and old peers that send
// plain payloads keep round-tripping unchanged. hdrlen counts the
// bytes between it and the command text; readers skip bytes beyond
// the 24 they understand, giving future versions room to extend the
// header without breaking this one. Headers are only emitted for
// traced calls, so untraced traffic is byte-identical to the old
// format in both directions.
const (
	traceMagic     = 0x01
	traceHeaderLen = 24
)

// EncodePayload renders a frame payload: the command text, prefixed
// with a trace header when sc is valid.
func EncodePayload(sc telemetry.SpanContext, cmdText string) []byte {
	if !sc.Valid() {
		return []byte(cmdText)
	}
	buf := make([]byte, 2+traceHeaderLen+len(cmdText))
	buf[0] = traceMagic
	buf[1] = traceHeaderLen
	binary.BigEndian.PutUint64(buf[2:], sc.TraceID)
	binary.BigEndian.PutUint64(buf[10:], sc.SpanID)
	binary.BigEndian.PutUint64(buf[18:], sc.Parent)
	copy(buf[2+traceHeaderLen:], cmdText)
	return buf
}

// SplitPayload separates a frame payload into its trace context (the
// zero SpanContext when the payload carries no header) and the
// command text. Payloads that merely look like they start a header
// but are malformed are returned whole, so the command parser
// reports them instead of this layer guessing.
func SplitPayload(payload []byte) (telemetry.SpanContext, []byte) {
	if len(payload) < 2 || payload[0] != traceMagic {
		return telemetry.SpanContext{}, payload
	}
	hlen := int(payload[1])
	if hlen < traceHeaderLen || len(payload) < 2+hlen {
		return telemetry.SpanContext{}, payload
	}
	sc := telemetry.SpanContext{
		TraceID: binary.BigEndian.Uint64(payload[2:]),
		SpanID:  binary.BigEndian.Uint64(payload[10:]),
		Parent:  binary.BigEndian.Uint64(payload[18:]),
	}
	return sc, payload[2+hlen:]
}

// WriteCmd renders the command line and writes it as one frame.
func WriteCmd(w io.Writer, c *cmdlang.CmdLine) error {
	return WriteFrame(w, []byte(c.String()))
}

// ReadCmd reads one frame, strips any trace header, and parses the
// command line.
func ReadCmd(r io.Reader) (*cmdlang.CmdLine, error) {
	payload, err := ReadFrame(r)
	if err != nil {
		return nil, err
	}
	_, text := SplitPayload(payload)
	return cmdlang.Parse(string(text))
}
