// Package wire provides the transport substrate for ACE daemon
// communications: length-prefixed command frames, TLS identities
// issued by an in-memory environment CA (the paper's "SSL at the
// socket level", §3.1), and a concurrent request/response client.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"

	"ace/internal/cmdlang"
)

// MaxFrameSize bounds a single command frame. ACE commands are small
// control messages; bulk data travels on the UDP data channel.
const MaxFrameSize = 1 << 20

// ErrFrameTooLarge is returned when a peer sends an oversized frame.
type ErrFrameTooLarge struct{ Size uint32 }

func (e *ErrFrameTooLarge) Error() string {
	return fmt.Sprintf("wire: frame of %d bytes exceeds limit %d", e.Size, MaxFrameSize)
}

// WriteFrame writes one length-prefixed payload.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return &ErrFrameTooLarge{Size: uint32(len(payload))}
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed payload.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, &ErrFrameTooLarge{Size: n}
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// WriteCmd renders the command line and writes it as one frame.
func WriteCmd(w io.Writer, c *cmdlang.CmdLine) error {
	return WriteFrame(w, []byte(c.String()))
}

// ReadCmd reads one frame and parses it as a command line.
func ReadCmd(r io.Reader) (*cmdlang.CmdLine, error) {
	payload, err := ReadFrame(r)
	if err != nil {
		return nil, err
	}
	return cmdlang.Parse(string(payload))
}
