// Package wire provides the transport substrate for ACE daemon
// communications: length-prefixed command frames, TLS identities
// issued by an in-memory environment CA (the paper's "SSL at the
// socket level", §3.1), and a concurrent request/response client.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"

	"ace/internal/cmdlang"
	"ace/internal/hlc"
	"ace/internal/telemetry"
)

// MaxFrameSize bounds a single command frame. ACE commands are small
// control messages; bulk data travels on the UDP data channel.
const MaxFrameSize = 1 << 20

// ErrFrameTooLarge is returned when a peer sends an oversized frame.
type ErrFrameTooLarge struct{ Size uint32 }

func (e *ErrFrameTooLarge) Error() string {
	return fmt.Sprintf("wire: frame of %d bytes exceeds limit %d", e.Size, MaxFrameSize)
}

// WriteFrame writes one length-prefixed payload.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return &ErrFrameTooLarge{Size: uint32(len(payload))}
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed payload.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, &ErrFrameTooLarge{Size: n}
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// Trace header. A frame payload optionally begins with a header
// carrying the caller's span context and hybrid-logical-clock
// timestamp:
//
//	[0x01][hdrlen:1][traceID:8][spanID:8][parent:8][hlc:8][command text]
//
// The marker byte 0x01 can never begin a headerless payload, because
// command text always starts with a word character ([A-Za-z_]) or
// whitespace — so readers accept both forms and old peers that send
// plain payloads keep round-tripping unchanged. hdrlen counts the
// bytes between it and the command text; readers skip bytes beyond
// the ones they understand, which is exactly how the 24-byte
// trace-only header of earlier versions grew the 8-byte packed HLC
// field (hlc.Timestamp: 48-bit wall milliseconds, 16-bit logical
// counter) without breaking old peers — a 24-byte header still
// decodes, with a zero (unstamped) timestamp. Headers are only
// emitted for traced or HLC-stamped calls, so plain traffic is
// byte-identical to the old format in both directions.
const (
	traceMagic     = 0x01
	traceHeaderLen = 24
	hlcHeaderLen   = traceHeaderLen + 8
)

// EncodePayload renders a frame payload: the command text, prefixed
// with a header when sc is valid or ts is a real timestamp.
func EncodePayload(sc telemetry.SpanContext, ts hlc.Timestamp, cmdText string) []byte {
	if !sc.Valid() && ts.IsZero() {
		return []byte(cmdText)
	}
	buf := make([]byte, 2+hlcHeaderLen+len(cmdText))
	buf[0] = traceMagic
	buf[1] = hlcHeaderLen
	binary.BigEndian.PutUint64(buf[2:], sc.TraceID)
	binary.BigEndian.PutUint64(buf[10:], sc.SpanID)
	binary.BigEndian.PutUint64(buf[18:], sc.Parent)
	binary.BigEndian.PutUint64(buf[26:], uint64(ts))
	copy(buf[2+hlcHeaderLen:], cmdText)
	return buf
}

// SplitPayload separates a frame payload into its trace context (the
// zero SpanContext when the payload carries no header), its HLC
// timestamp (zero when absent, including headers from peers that
// predate the HLC field), and the command text. Payloads that merely
// look like they start a header but are malformed are returned whole,
// so the command parser reports them instead of this layer guessing.
func SplitPayload(payload []byte) (telemetry.SpanContext, hlc.Timestamp, []byte) {
	if len(payload) < 2 || payload[0] != traceMagic {
		return telemetry.SpanContext{}, 0, payload
	}
	hlen := int(payload[1])
	if hlen < traceHeaderLen || len(payload) < 2+hlen {
		return telemetry.SpanContext{}, 0, payload
	}
	sc := telemetry.SpanContext{
		TraceID: binary.BigEndian.Uint64(payload[2:]),
		SpanID:  binary.BigEndian.Uint64(payload[10:]),
		Parent:  binary.BigEndian.Uint64(payload[18:]),
	}
	var ts hlc.Timestamp
	if hlen >= hlcHeaderLen {
		ts = hlc.Timestamp(binary.BigEndian.Uint64(payload[26:]))
	}
	return sc, ts, payload[2+hlen:]
}

// WriteCmd renders the command line and writes it as one frame.
func WriteCmd(w io.Writer, c *cmdlang.CmdLine) error {
	return WriteFrame(w, []byte(c.String()))
}

// ReadCmd reads one frame, strips any trace header, and parses the
// command line.
func ReadCmd(r io.Reader) (*cmdlang.CmdLine, error) {
	payload, err := ReadFrame(r)
	if err != nil {
		return nil, err
	}
	_, _, text := SplitPayload(payload)
	return cmdlang.Parse(string(text))
}
