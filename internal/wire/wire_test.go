package wire

import (
	"bytes"
	"crypto/tls"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"ace/internal/cmdlang"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("ab"), 5000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("got %q want %q", got, p)
		}
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, MaxFrameSize+1)); err == nil {
		t.Fatal("oversized write accepted")
	}
	// A malicious header claiming a huge size must be rejected before
	// allocation.
	buf.Reset()
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("oversized read accepted")
	}
	var efl *ErrFrameTooLarge
	buf.Reset()
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	_, err := ReadFrame(&buf)
	if !asErr(err, &efl) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
}

func asErr[T error](err error, target *T) bool {
	for err != nil {
		if e, ok := err.(T); ok {
			*target = e
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestFrameShortRead(t *testing.T) {
	r := bytes.NewReader([]byte{0, 0, 0, 10, 'a', 'b'})
	if _, err := ReadFrame(r); err != io.ErrUnexpectedEOF {
		t.Fatalf("err=%v", err)
	}
}

func TestQuickFrameRoundTrip(t *testing.T) {
	f := func(p []byte) bool {
		if len(p) > MaxFrameSize {
			p = p[:MaxFrameSize]
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, p); err != nil {
			return false
		}
		got, err := ReadFrame(&buf)
		return err == nil && bytes.Equal(got, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCmdOverPipe(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	want := cmdlang.New("move").SetInt("x", 3).SetString("note", "hi there")
	go func() { WriteCmd(a, want) }() //nolint:errcheck
	got, err := ReadCmd(b)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Fatalf("got %v", got)
	}
}

// echoServer accepts connections and answers every command with an
// "ok" echo carrying the same seq.
func echoServer(t *testing.T, ln net.Listener, tlsCfg *tls.Config) {
	t.Helper()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if tlsCfg != nil {
				conn = tls.Server(conn, tlsCfg)
			}
			go func(c net.Conn) {
				defer c.Close()
				var mu sync.Mutex
				for {
					cmd, err := ReadCmd(c)
					if err != nil {
						return
					}
					reply := cmdlang.OK().
						SetInt(cmdlang.SeqArg, cmd.Int(cmdlang.SeqArg, 0)).
						SetWord("echo", cmd.Name())
					mu.Lock()
					WriteCmd(c, reply) //nolint:errcheck
					mu.Unlock()
				}
			}(conn)
		}
	}()
}

func TestClientPlaintextCall(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	echoServer(t, ln, nil)

	c, err := Dial(nil, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reply, err := c.Call(cmdlang.New("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if reply.Str("echo", "") != "ping" {
		t.Fatalf("reply=%v", reply)
	}
}

func TestClientConcurrentCalls(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	echoServer(t, ln, nil)

	c, err := Dial(nil, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const workers = 16
	const per = 50
	var wg sync.WaitGroup
	errs := make(chan error, workers*per)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := []string{"alpha", "beta", "gamma", "delta"}[w%4]
			for i := 0; i < per; i++ {
				reply, err := c.Call(cmdlang.New(name))
				if err != nil {
					errs <- err
					return
				}
				if reply.Str("echo", "") != name {
					t.Errorf("cross-talk: wanted echo=%s got %v", name, reply)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestClientFailReplyBecomesRemoteError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, _ := ln.Accept()
		defer conn.Close()
		cmd, _ := ReadCmd(conn)
		f := cmdlang.Fail(cmdlang.CodeNotFound, "nope").SetInt(cmdlang.SeqArg, cmd.Int(cmdlang.SeqArg, 0))
		WriteCmd(conn, f) //nolint:errcheck
	}()
	c, err := Dial(nil, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Call(cmdlang.New("anything"))
	if !cmdlang.IsRemoteCode(err, cmdlang.CodeNotFound) {
		t.Fatalf("err=%v", err)
	}
}

func TestClientServerGoneUnblocksCalls(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		conn, _ := ln.Accept()
		conn.Close() // immediate hangup
	}()
	c, err := Dial(nil, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(cmdlang.New("ping")); err == nil {
		t.Fatal("call against hung-up server succeeded")
	}
	ln.Close()
}

func TestTLSMutualAuth(t *testing.T) {
	ca, err := NewCA("test")
	if err != nil {
		t.Fatal(err)
	}
	server, err := NewTransport(ca, "asd")
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewTransport(ca, "acectl")
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	echoServer(t, ln, server.ServerConfig())

	c, err := Dial(client, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reply, err := c.Call(cmdlang.New("secure"))
	if err != nil {
		t.Fatal(err)
	}
	if reply.Str("echo", "") != "secure" {
		t.Fatalf("reply=%v", reply)
	}
}

func TestTLSRejectsForeignCA(t *testing.T) {
	caA, _ := NewCA("envA")
	caB, _ := NewCA("envB")
	server, _ := NewTransport(caA, "asd")
	intruder, _ := NewTransport(caB, "spy")

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	echoServer(t, ln, server.ServerConfig())

	c, err := Dial(intruder, ln.Addr().String())
	if err == nil {
		// Handshake may complete lazily; the call must fail.
		if _, cerr := c.Call(cmdlang.New("ping")); cerr == nil {
			t.Fatal("foreign-CA client was served")
		}
		c.Close()
	}
}

func TestTLSRejectsPlaintextClient(t *testing.T) {
	ca, _ := NewCA("env")
	server, _ := NewTransport(ca, "asd")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	echoServer(t, ln, server.ServerConfig())

	c, err := Dial(nil, ln.Addr().String())
	if err != nil {
		return // dial-time rejection is fine too
	}
	defer c.Close()
	if _, err := c.Call(cmdlang.New("ping")); err == nil {
		t.Fatal("plaintext client was served by TLS daemon")
	}
}

func TestTransportPlaintextConfigsAreNil(t *testing.T) {
	pt := PlaintextTransport("x")
	if pt.ServerConfig() != nil || pt.ClientConfig("") != nil {
		t.Fatal("plaintext transport produced TLS configs")
	}
	var nilT *Transport
	if nilT.ServerConfig() != nil || nilT.ClientConfig("") != nil {
		t.Fatal("nil transport produced TLS configs")
	}
}

func TestCAIssueDistinctSerials(t *testing.T) {
	ca, _ := NewCA("env")
	a, err := ca.Issue("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ca.Issue("b")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Certificate[0], b.Certificate[0]) {
		t.Fatal("identical certs issued")
	}
}

func TestClientPushDelivery(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, _ := ln.Accept()
		defer conn.Close()
		cmd, err := ReadCmd(conn)
		if err != nil {
			return
		}
		// Unsolicited push (no seq) strictly before the reply, so the
		// client is guaranteed to see it before Call returns.
		WriteCmd(conn, cmdlang.New("notifyMe").SetWord("event", "boom"))                //nolint:errcheck
		WriteCmd(conn, cmdlang.OK().SetInt(cmdlang.SeqArg, cmd.Int(cmdlang.SeqArg, 0))) //nolint:errcheck
	}()

	pushes := make(chan *cmdlang.CmdLine, 1)
	c, err := Dial(nil, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetOnPush(func(cmd *cmdlang.CmdLine) { pushes <- cmd })
	if _, err := c.Call(cmdlang.New("ping")); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-pushes:
		if p.Name() != "notifyMe" || !strings.Contains(p.Str("event", ""), "boom") {
			t.Fatalf("push=%v", p)
		}
	default:
		t.Fatal("push not delivered")
	}
}
