package wire

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"ace/internal/cmdlang"
)

// stallServer accepts connections and reads frames forever without
// ever replying — the "peer stalls" failure mode.
func stallServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln
}

// TestCallAgainstStalledServerFailsFast: a server that accepts but
// never replies must surface context.DeadlineExceeded within the
// call deadline instead of hanging forever.
func TestCallAgainstStalledServerFailsFast(t *testing.T) {
	ln := stallServer(t)
	defer ln.Close()

	c, err := Dial(nil, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.CallContext(ctx, cmdlang.New("ping"))
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("call took %v; deadline not enforced", elapsed)
	}
	// The abandoned call must not leak its pending entry.
	c.mu.Lock()
	n := len(c.pending)
	c.mu.Unlock()
	if n != 0 {
		t.Fatalf("pending entries leaked: %d", n)
	}
}

// TestCallDefaultTimeoutApplies: with no context deadline at all, the
// client's own call timeout bounds the exchange.
func TestCallDefaultTimeoutApplies(t *testing.T) {
	ln := stallServer(t)
	defer ln.Close()

	c, err := Dial(nil, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetCallTimeout(100 * time.Millisecond)

	start := time.Now()
	_, err = c.Call(cmdlang.New("ping"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("default call timeout not enforced")
	}
}

// TestCallCancellationRemovesPending: cancelling a call abandons it
// immediately and a late reply is dropped, not misdelivered as a
// push.
func TestCallCancellationRemovesPending(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	release := make(chan struct{})
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		cmd, err := ReadCmd(conn)
		if err != nil {
			return
		}
		<-release                                                                       // reply only after the caller gave up
		WriteCmd(conn, cmdlang.OK().SetInt(cmdlang.SeqArg, cmd.Int(cmdlang.SeqArg, 0))) //nolint:errcheck
		// Then answer a second, live call.
		cmd2, err := ReadCmd(conn)
		if err != nil {
			return
		}
		WriteCmd(conn, cmdlang.OK().SetInt(cmdlang.SeqArg, cmd2.Int(cmdlang.SeqArg, 0)).SetWord("echo", cmd2.Name())) //nolint:errcheck
	}()

	c, err := Dial(nil, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	pushes := make(chan *cmdlang.CmdLine, 4)
	c.SetOnPush(func(cmd *cmdlang.CmdLine) { pushes <- cmd })

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	if _, err := c.CallContext(ctx, cmdlang.New("slow")); !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	c.mu.Lock()
	n := len(c.pending)
	c.mu.Unlock()
	if n != 0 {
		t.Fatalf("pending entries leaked after cancel: %d", n)
	}

	close(release) // late reply for the cancelled seq arrives now
	reply, err := c.Call(cmdlang.New("live"))
	if err != nil {
		t.Fatal(err)
	}
	if reply.Str("echo", "") != "live" {
		t.Fatalf("live call corrupted by late reply: %v", reply)
	}
	select {
	case p := <-pushes:
		t.Fatalf("late reply misdelivered as push: %v", p)
	default:
	}
}

// TestHeartbeatDetectsStalledConnection: a connection whose peer
// stops servicing it is detected and killed by the heartbeat probe.
func TestHeartbeatDetectsStalledConnection(t *testing.T) {
	ln := stallServer(t)
	defer ln.Close()

	c, err := Dial(nil, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.StartHeartbeat(50 * time.Millisecond)

	deadline := time.Now().Add(5 * time.Second)
	for !c.Closed() {
		if time.Now().After(deadline) {
			t.Fatal("heartbeat never declared the stalled connection dead")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if c.Err() == nil {
		t.Fatal("dead connection carries no terminal error")
	}
}

// TestHeartbeatKeepsHealthyConnectionAlive: a responsive peer is not
// killed by probing, even one that answers "fail" (liveness is any
// return command).
func TestHeartbeatKeepsHealthyConnectionAlive(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	echoServer(t, ln, nil)

	c, err := Dial(nil, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.StartHeartbeat(20 * time.Millisecond)
	time.Sleep(200 * time.Millisecond)
	if c.Closed() {
		t.Fatalf("healthy connection killed by heartbeat: %v", c.Err())
	}
	if _, err := c.Call(cmdlang.New("still_works")); err != nil {
		t.Fatal(err)
	}
}

// TestTransportTimeoutsConfigurable: per-transport dial/call timeouts
// replace the package defaults.
func TestTransportTimeoutsConfigurable(t *testing.T) {
	ln := stallServer(t)
	defer ln.Close()

	tr := PlaintextTransport("impatient")
	tr.DialTimeout = 200 * time.Millisecond
	tr.CallTimeout = 100 * time.Millisecond

	c, err := Dial(tr, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if _, err := c.Call(cmdlang.New("ping")); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("transport CallTimeout not applied")
	}

	// The configured dial bound is resolved per transport...
	if got := tr.dialTimeout(); got != 200*time.Millisecond {
		t.Fatalf("dialTimeout()=%v", got)
	}
	var nilT *Transport
	if got := nilT.dialTimeout(); got != DefaultDialTimeout {
		t.Fatalf("nil transport dialTimeout()=%v", got)
	}
	// ...and an already-expired context aborts the dial immediately.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DialContext(ctx, tr, ln.Addr().String()); err == nil {
		t.Fatal("dial with cancelled context succeeded")
	}
}

// TestSendErrClosedMeansNothingWritten: Send on an already-failed
// client reports ErrClosed without touching the socket — the contract
// Pool.Send's at-least-once retry relies on.
func TestSendErrClosedMeansNothingWritten(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	c := NewClient(a)
	c.Close()
	if err := c.Send(cmdlang.New("notify")); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}
