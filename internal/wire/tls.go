package wire

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"math/big"
	"sync"
	"time"
)

// CA is the in-memory certificate authority of one ACE environment.
// Every daemon obtains a certificate from it at startup; all command
// connections are then mutually authenticated TLS. This stands in for
// the paper's SSL deployment with an offline-provisioned keystore.
type CA struct {
	cert *x509.Certificate
	key  *ecdsa.PrivateKey
	pool *x509.CertPool

	mu     sync.Mutex
	serial int64
}

// NewCA creates a fresh environment CA.
func NewCA(envName string) (*CA, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("wire: generate CA key: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "ACE CA " + envName, Organization: []string{"ACE"}},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(10 * 365 * 24 * time.Hour),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("wire: self-sign CA: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	pool := x509.NewCertPool()
	pool.AddCert(cert)
	return &CA{cert: cert, key: key, pool: pool, serial: 1}, nil
}

// Issue creates a leaf certificate for a daemon or client with the
// given name, valid for loopback use.
func (ca *CA) Issue(name string) (tls.Certificate, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, err
	}
	ca.mu.Lock()
	ca.serial++
	serial := ca.serial
	ca.mu.Unlock()
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(serial),
		Subject:      pkix.Name{CommonName: name, Organization: []string{"ACE"}},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(365 * 24 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth, x509.ExtKeyUsageClientAuth},
		DNSNames:     []string{name, "localhost"},
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, ca.cert, &key.PublicKey, ca.key)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("wire: issue cert for %s: %w", name, err)
	}
	return tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key}, nil
}

// Pool returns the certificate pool trusting this CA.
func (ca *CA) Pool() *x509.CertPool { return ca.pool }

// Transport bundles the TLS material one daemon uses for both server
// and client roles. A nil Transport (or Plaintext=true) disables
// encryption, which exists only for the E12 overhead experiment.
type Transport struct {
	// Name is the daemon identity baked into its certificate.
	Name string
	// CA is the environment authority.
	CA *CA
	// Cert is this party's leaf certificate.
	Cert tls.Certificate
	// Plaintext disables TLS entirely (benchmarks only).
	Plaintext bool
	// DialTimeout bounds connection establishment through this
	// transport; 0 means DefaultDialTimeout.
	DialTimeout time.Duration
	// CallTimeout is the default per-call deadline for clients dialed
	// through this transport; 0 means DefaultCallTimeout.
	CallTimeout time.Duration
}

// dialTimeout resolves the effective dial bound (nil-safe).
func (t *Transport) dialTimeout() time.Duration {
	if t != nil && t.DialTimeout > 0 {
		return t.DialTimeout
	}
	return DefaultDialTimeout
}

// NewTransport issues a certificate for name from ca.
func NewTransport(ca *CA, name string) (*Transport, error) {
	cert, err := ca.Issue(name)
	if err != nil {
		return nil, err
	}
	return &Transport{Name: name, CA: ca, Cert: cert}, nil
}

// PlaintextTransport returns a transport with encryption disabled.
func PlaintextTransport(name string) *Transport {
	return &Transport{Name: name, Plaintext: true}
}

// ServerConfig returns the TLS config for accepting command
// connections: it presents the daemon certificate and requires a
// client certificate signed by the environment CA (mutual auth).
// Returns nil when the transport is plaintext.
func (t *Transport) ServerConfig() *tls.Config {
	if t == nil || t.Plaintext {
		return nil
	}
	return &tls.Config{
		Certificates: []tls.Certificate{t.Cert},
		ClientAuth:   tls.RequireAndVerifyClientCert,
		ClientCAs:    t.CA.Pool(),
		MinVersion:   tls.VersionTLS13,
	}
}

// ClientConfig returns the TLS config for dialing another daemon.
// serverName may be empty when the peer identity is unknown (the
// certificate is still validated against the CA chain).
func (t *Transport) ClientConfig(serverName string) *tls.Config {
	if t == nil || t.Plaintext {
		return nil
	}
	cfg := &tls.Config{
		Certificates: []tls.Certificate{t.Cert},
		RootCAs:      t.CA.Pool(),
		MinVersion:   tls.VersionTLS13,
	}
	if serverName != "" {
		cfg.ServerName = serverName
	} else {
		// Peer daemons are addressed host:port out of the ASD; trust
		// is anchored in the CA, not in the DNS name.
		cfg.InsecureSkipVerify = true
		cfg.VerifyPeerCertificate = func(rawCerts [][]byte, _ [][]*x509.Certificate) error {
			if len(rawCerts) == 0 {
				return fmt.Errorf("wire: peer presented no certificate")
			}
			cert, err := x509.ParseCertificate(rawCerts[0])
			if err != nil {
				return err
			}
			_, err = cert.Verify(x509.VerifyOptions{Roots: t.CA.Pool(), KeyUsages: []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth}})
			return err
		}
	}
	return cfg
}
