package workspace

import (
	"strings"
	"testing"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/pstore"
)

func startVNC(t *testing.T) *VNCServer {
	t.Helper()
	v := NewVNCServer(daemon.Config{})
	if err := v.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(v.Stop)
	return v
}

func startWSS(t *testing.T, cfg WSSConfig) *WSS {
	t.Helper()
	w := NewWSS(cfg)
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	return w
}

func TestVNCSessionLifecycle(t *testing.T) {
	v := startVNC(t)
	pool := daemon.NewPool(nil)
	defer pool.Close()

	if _, err := pool.Call(v.Addr(), cmdlang.New("vncCreate").
		SetWord("owner", "john").SetWord("name", "default").
		SetString("password", "pw1")); err != nil {
		t.Fatal(err)
	}
	// Duplicate creation conflicts.
	_, err := pool.Call(v.Addr(), cmdlang.New("vncCreate").
		SetWord("owner", "john").SetWord("name", "default").SetString("password", "x"))
	if !cmdlang.IsRemoteCode(err, cmdlang.CodeConflict) {
		t.Fatalf("err=%v", err)
	}

	// Wrong password is refused for every session operation.
	_, err = pool.Call(v.Addr(), cmdlang.New("vncView").
		SetWord("owner", "john").SetWord("name", "default").SetString("password", "wrong"))
	if !cmdlang.IsRemoteCode(err, cmdlang.CodeDenied) {
		t.Fatalf("err=%v", err)
	}

	// Input/output redirection with state retention.
	for _, line := range []string{"echo hello world", "apps"} {
		if _, err := pool.Call(v.Addr(), cmdlang.New("vncInput").
			SetWord("owner", "john").SetWord("name", "default").
			SetString("password", "pw1").SetString("line", line)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pool.Call(v.Addr(), cmdlang.New("vncRun").
		SetWord("owner", "john").SetWord("name", "default").
		SetString("password", "pw1").SetString("app", "o-phone")); err != nil {
		t.Fatal(err)
	}

	view, err := pool.Call(v.Addr(), cmdlang.New("vncView").
		SetWord("owner", "john").SetWord("name", "default").SetString("password", "pw1"))
	if err != nil {
		t.Fatal(err)
	}
	screen := strings.Join(view.Strings("screen"), "\n")
	if !strings.Contains(screen, "hello world") || !strings.Contains(screen, "[started o-phone]") {
		t.Fatalf("screen:\n%s", screen)
	}
	if apps := view.Strings("apps"); len(apps) != 1 || apps[0] != "o-phone" {
		t.Fatalf("apps=%v", apps)
	}

	// Password change via the WSS-style direct manipulation.
	if _, err := pool.Call(v.Addr(), cmdlang.New("vncSetPassword").
		SetWord("owner", "john").SetWord("name", "default").
		SetString("old", "pw1").SetString("new", "pw2")); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Call(v.Addr(), cmdlang.New("vncView").
		SetWord("owner", "john").SetWord("name", "default").SetString("password", "pw1")); err == nil {
		t.Fatal("old password still valid")
	}

	// Delete.
	if _, err := pool.Call(v.Addr(), cmdlang.New("vncDelete").
		SetWord("owner", "john").SetWord("name", "default").SetString("password", "pw2")); err != nil {
		t.Fatal(err)
	}
	if v.SessionCount() != 0 {
		t.Fatalf("sessions=%d", v.SessionCount())
	}
}

func TestWSSCreateOpenListDelete(t *testing.T) {
	v := startVNC(t)
	w := startWSS(t, WSSConfig{VNCAddrs: []string{v.Addr()}})
	pool := daemon.NewPool(nil)
	defer pool.Close()

	// Scenario 1: a default workspace for a new user.
	created, err := pool.Call(w.Addr(), cmdlang.New("createWorkspace").SetWord("user", "john"))
	if err != nil {
		t.Fatal(err)
	}
	if created.Str("name", "") != DefaultWorkspace {
		t.Fatalf("created=%v", created)
	}

	// Scenario 4: a second workspace, then the selector list.
	if _, err := pool.Call(w.Addr(), cmdlang.New("createWorkspace").
		SetWord("user", "john").SetWord("name", "presentation")); err != nil {
		t.Fatal(err)
	}
	list, err := pool.Call(w.Addr(), cmdlang.New("listWorkspaces").SetWord("user", "john"))
	if err != nil {
		t.Fatal(err)
	}
	if names := list.Strings("names"); len(names) != 2 || names[0] != DefaultWorkspace || names[1] != "presentation" {
		t.Fatalf("names=%v", names)
	}

	// Scenario 3: open and attach a viewer; the user never handles
	// the password.
	opened, err := pool.Call(w.Addr(), cmdlang.New("openWorkspace").
		SetWord("user", "john").SetWord("name", "presentation"))
	if err != nil {
		t.Fatal(err)
	}
	viewer := NewViewer(pool, Info{
		Owner:    "john",
		Name:     opened.Str("name", ""),
		VNCAddr:  opened.Str("vnc", ""),
		Password: opened.Str("password", ""),
	})
	if err := viewer.Type("echo setting up slides"); err != nil {
		t.Fatal(err)
	}
	screen, err := viewer.Screen()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(screen, "\n"), "setting up slides") {
		t.Fatalf("screen=%v", screen)
	}
	if err := viewer.Run("slides"); err != nil {
		t.Fatal(err)
	}
	apps, err := viewer.Apps()
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 1 || apps[0] != "slides" {
		t.Fatalf("apps=%v", apps)
	}

	// Workspace state survives detach: a second viewer sees it.
	viewer2 := NewViewer(pool, Info{
		Owner: "john", Name: "presentation",
		VNCAddr: opened.Str("vnc", ""), Password: opened.Str("password", ""),
	})
	screen2, err := viewer2.Screen()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(screen2, "\n"), "setting up slides") {
		t.Fatal("state lost across viewers")
	}

	// Duplicate creation fails; opening a missing workspace fails.
	if _, err := pool.Call(w.Addr(), cmdlang.New("createWorkspace").
		SetWord("user", "john").SetWord("name", "presentation")); err == nil {
		t.Fatal("duplicate created")
	}
	_, err = pool.Call(w.Addr(), cmdlang.New("openWorkspace").SetWord("user", "ghost"))
	if !cmdlang.IsRemoteCode(err, cmdlang.CodeNotFound) {
		t.Fatalf("err=%v", err)
	}

	// Delete removes both the record and the VNC session.
	if _, err := pool.Call(w.Addr(), cmdlang.New("deleteWorkspace").
		SetWord("user", "john").SetWord("name", "presentation")); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 1 || v.SessionCount() != 1 {
		t.Fatalf("wss=%d vnc=%d", w.Count(), v.SessionCount())
	}
}

func TestWSSRoundRobinAcrossVNCServers(t *testing.T) {
	v1 := startVNC(t)
	v2 := startVNC(t)
	w := startWSS(t, WSSConfig{VNCAddrs: []string{v1.Addr(), v2.Addr()}})
	for i, user := range []string{"a", "b", "c", "d"} {
		if _, err := w.Create(user, DefaultWorkspace); err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
	}
	if v1.SessionCount() != 2 || v2.SessionCount() != 2 {
		t.Fatalf("distribution: %d/%d", v1.SessionCount(), v2.SessionCount())
	}
}

func TestWSSIsRobustViaPersistentStore(t *testing.T) {
	// §5.3: the WSS is a robust application — its registry survives a
	// crash through the persistent store.
	cluster, err := pstore.StartCluster(3, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.StopAll)
	pool := daemon.NewPool(nil)
	defer pool.Close()
	store := pstore.NewClient(pool, cluster.Addrs())

	v := startVNC(t)
	w1 := NewWSS(WSSConfig{VNCAddrs: []string{v.Addr()}, Store: store})
	if err := w1.Start(); err != nil {
		t.Fatal(err)
	}
	info, err := w1.Create("john", "default")
	if err != nil {
		t.Fatal(err)
	}
	w1.Stop() // crash

	// A replacement WSS instance recovers the registry and can hand
	// out working credentials for the still-running session.
	w2 := NewWSS(WSSConfig{VNCAddrs: []string{v.Addr()}, Store: store})
	if err := w2.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w2.Stop)
	recovered, err := w2.Open("john", "default")
	if err != nil {
		t.Fatal(err)
	}
	if recovered.Password != info.Password || recovered.VNCAddr != info.VNCAddr {
		t.Fatalf("recovered=%+v want %+v", recovered, info)
	}
	viewer := NewViewer(pool, recovered)
	if _, err := viewer.Screen(); err != nil {
		t.Fatalf("recovered credentials rejected: %v", err)
	}
}

func TestWSSNoVNCServers(t *testing.T) {
	w := startWSS(t, WSSConfig{})
	if _, err := w.Create("john", ""); err == nil {
		t.Fatal("create without VNC servers succeeded")
	}
}

func TestWorkspaceMigration(t *testing.T) {
	// §5.3: vital applications "can be moved from one host to another
	// with minimal to no interruption of service".
	v1 := startVNC(t)
	v2 := startVNC(t)
	w := startWSS(t, WSSConfig{VNCAddrs: []string{v1.Addr(), v2.Addr()}})
	pool := daemon.NewPool(nil)
	defer pool.Close()

	info, err := w.Create("john", "default")
	if err != nil {
		t.Fatal(err)
	}
	// Build up state to carry across.
	viewer := NewViewer(pool, info)
	if err := viewer.Type("echo precious work"); err != nil {
		t.Fatal(err)
	}
	if err := viewer.Run("editor"); err != nil {
		t.Fatal(err)
	}

	moved, err := w.Migrate("john", "default")
	if err != nil {
		t.Fatal(err)
	}
	if moved.VNCAddr == info.VNCAddr {
		t.Fatal("migration stayed on the same server")
	}
	if moved.Password == info.Password {
		t.Fatal("password not rotated on migration")
	}

	// The state followed the workspace.
	viewer2 := NewViewer(pool, moved)
	screen, err := viewer2.Screen()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(screen, "\n"), "precious work") {
		t.Fatalf("screen lost: %v", screen)
	}
	apps, err := viewer2.Apps()
	if err != nil || len(apps) != 1 || apps[0] != "editor" {
		t.Fatalf("apps=%v err=%v", apps, err)
	}

	// Old session gone, old credentials dead, WSS hands out the new
	// location.
	if v1.SessionCount()+v2.SessionCount() != 1 {
		t.Fatalf("sessions: %d + %d", v1.SessionCount(), v2.SessionCount())
	}
	if _, err := NewViewer(pool, info).Screen(); err == nil {
		t.Fatal("old credentials still valid")
	}
	opened, err := w.Open("john", "default")
	if err != nil || opened.VNCAddr != moved.VNCAddr {
		t.Fatalf("opened=%+v err=%v", opened, err)
	}
}

func TestMigrationNeedsSecondServer(t *testing.T) {
	v := startVNC(t)
	w := startWSS(t, WSSConfig{VNCAddrs: []string{v.Addr()}})
	if _, err := w.Create("john", "default"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Migrate("john", "default"); err == nil {
		t.Fatal("migrated with a single server")
	}
	if _, err := w.Migrate("ghost", "default"); err == nil {
		t.Fatal("migrated a ghost workspace")
	}
}

func TestMigrationCommandAndRobustness(t *testing.T) {
	// Migration survives a WSS crash: the checkpointed registry names
	// the new server.
	cluster, err := pstore.StartCluster(3, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.StopAll)
	pool := daemon.NewPool(nil)
	defer pool.Close()
	store := pstore.NewClient(pool, cluster.Addrs())

	v1 := startVNC(t)
	v2 := startVNC(t)
	w1 := NewWSS(WSSConfig{VNCAddrs: []string{v1.Addr(), v2.Addr()}, Store: store})
	if err := w1.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := w1.Create("john", "default"); err != nil {
		t.Fatal(err)
	}
	moved, err := pool.Call(w1.Addr(), cmdlang.New("migrateWorkspace").
		SetWord("user", "john").SetWord("name", "default"))
	if err != nil {
		t.Fatal(err)
	}
	w1.Stop() // crash after migration

	w2 := NewWSS(WSSConfig{VNCAddrs: []string{v1.Addr(), v2.Addr()}, Store: store})
	if err := w2.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w2.Stop)
	recovered, err := w2.Open("john", "default")
	if err != nil {
		t.Fatal(err)
	}
	if recovered.VNCAddr != moved.Str("vnc", "") {
		t.Fatalf("recovered addr %q want %q", recovered.VNCAddr, moved.Str("vnc", ""))
	}
	if _, err := NewViewer(pool, recovered).Screen(); err != nil {
		t.Fatalf("recovered migrated credentials rejected: %v", err)
	}
}
