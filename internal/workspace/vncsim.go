// Package workspace implements ACE user workspaces: the WSS —
// Workspace Server (§4.5) — and a VNC substitute, vncsim (§5.4, Fig
// 16). The real system used AT&T VNC: a server housing the user's
// workspace and redirecting all I/O to remote viewers after password
// verification. vncsim preserves that contract — sessions live on a
// server daemon, keep their full state while detached, are gated by a
// per-session password, and redirect input/output to any viewer —
// without emulating the RFB pixel protocol: the "framebuffer" is a
// scrollback of terminal lines plus the set of running applications.
package workspace

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/hier"
)

// ClassVNCServer is the hierarchy class of vncsim server daemons.
const ClassVNCServer = hier.Root + ".Workspace.VNCServer"

// MaxScrollback bounds a session's retained screen lines.
const MaxScrollback = 1000

// Session is one user workspace living on a VNC server.
type Session struct {
	Owner    string
	Name     string
	password string

	mu     sync.Mutex
	screen []string
	apps   map[string]bool
	// attached counts connected viewers (a workspace may be viewed
	// from several access points).
	attached int
}

// snapshot returns the screen and app list.
func (s *Session) snapshot() (screen []string, apps []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	screen = append(screen, s.screen...)
	for a := range s.apps {
		apps = append(apps, a)
	}
	sort.Strings(apps)
	return screen, apps
}

func (s *Session) appendLine(line string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.screen = append(s.screen, line)
	if len(s.screen) > MaxScrollback {
		s.screen = s.screen[len(s.screen)-MaxScrollback:]
	}
}

// VNCServer is the vncsim server daemon: it houses user workspaces
// and redirects their I/O to viewers.
type VNCServer struct {
	*daemon.Daemon

	mu       sync.Mutex
	sessions map[string]*Session // key: owner+"/"+name
}

// NewVNCServer constructs a vncsim server daemon.
func NewVNCServer(dcfg daemon.Config) *VNCServer {
	if dcfg.Name == "" {
		dcfg.Name = "vncserver"
	}
	if dcfg.Class == "" {
		dcfg.Class = ClassVNCServer
	}
	v := &VNCServer{Daemon: daemon.New(dcfg), sessions: make(map[string]*Session)}
	v.install()
	return v
}

func sessionKey(owner, name string) string { return owner + "/" + name }

// session returns the named session after password verification.
func (v *VNCServer) session(owner, name, password string) (*Session, error) {
	v.mu.Lock()
	s, ok := v.sessions[sessionKey(owner, name)]
	v.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("vncsim: no session %s/%s", owner, name)
	}
	if s.password != password {
		return nil, fmt.Errorf("vncsim: bad password for %s/%s", owner, name)
	}
	return s, nil
}

// SessionCount returns the number of housed sessions.
func (v *VNCServer) SessionCount() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.sessions)
}

func (v *VNCServer) install() {
	v.Handle(cmdlang.CommandSpec{
		Name: "vncCreate",
		Doc:  "create a workspace session (invoked by the WSS)",
		Args: []cmdlang.ArgSpec{
			{Name: "owner", Kind: cmdlang.KindWord, Required: true},
			{Name: "name", Kind: cmdlang.KindWord, Required: true},
			{Name: "password", Kind: cmdlang.KindString, Required: true},
		},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		owner, name := c.Str("owner", ""), c.Str("name", "")
		v.mu.Lock()
		defer v.mu.Unlock()
		key := sessionKey(owner, name)
		if _, exists := v.sessions[key]; exists {
			return cmdlang.Fail(cmdlang.CodeConflict, "session exists"), nil
		}
		v.sessions[key] = &Session{
			Owner:    owner,
			Name:     name,
			password: c.Str("password", ""),
			screen:   []string{"Welcome to workspace " + name + " of " + owner},
			apps:     make(map[string]bool),
		}
		return nil, nil
	})

	v.Handle(cmdlang.CommandSpec{
		Name: "vncDelete",
		Args: []cmdlang.ArgSpec{
			{Name: "owner", Kind: cmdlang.KindWord, Required: true},
			{Name: "name", Kind: cmdlang.KindWord, Required: true},
			{Name: "password", Kind: cmdlang.KindString, Required: true},
		},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		if _, err := v.session(c.Str("owner", ""), c.Str("name", ""), c.Str("password", "")); err != nil {
			return cmdlang.Fail(cmdlang.CodeDenied, err.Error()), nil
		}
		v.mu.Lock()
		delete(v.sessions, sessionKey(c.Str("owner", ""), c.Str("name", "")))
		v.mu.Unlock()
		return nil, nil
	})

	v.Handle(cmdlang.CommandSpec{
		Name: "vncSetPassword",
		Doc:  "direct password-file manipulation, as the WSS performs on VNC (§5.4)",
		Args: []cmdlang.ArgSpec{
			{Name: "owner", Kind: cmdlang.KindWord, Required: true},
			{Name: "name", Kind: cmdlang.KindWord, Required: true},
			{Name: "old", Kind: cmdlang.KindString, Required: true},
			{Name: "new", Kind: cmdlang.KindString, Required: true},
		},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		s, err := v.session(c.Str("owner", ""), c.Str("name", ""), c.Str("old", ""))
		if err != nil {
			return cmdlang.Fail(cmdlang.CodeDenied, err.Error()), nil
		}
		s.password = c.Str("new", "")
		return nil, nil
	})

	view := func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		s, err := v.session(c.Str("owner", ""), c.Str("name", ""), c.Str("password", ""))
		if err != nil {
			return cmdlang.Fail(cmdlang.CodeDenied, err.Error()), nil
		}
		screen, apps := s.snapshot()
		return cmdlang.OK().
			Set("screen", cmdlang.StringVector(screen...)).
			Set("apps", cmdlang.StringVector(apps...)).
			SetInt("lines", int64(len(screen))), nil
	}
	v.Handle(cmdlang.CommandSpec{
		Name: "vncView",
		Doc:  "attach a viewer: returns the workspace's current display",
		Args: []cmdlang.ArgSpec{
			{Name: "owner", Kind: cmdlang.KindWord, Required: true},
			{Name: "name", Kind: cmdlang.KindWord, Required: true},
			{Name: "password", Kind: cmdlang.KindString, Required: true},
		},
	}, view)

	v.Handle(cmdlang.CommandSpec{
		Name: "vncInput",
		Doc:  "viewer input redirected into the workspace",
		Args: []cmdlang.ArgSpec{
			{Name: "owner", Kind: cmdlang.KindWord, Required: true},
			{Name: "name", Kind: cmdlang.KindWord, Required: true},
			{Name: "password", Kind: cmdlang.KindString, Required: true},
			{Name: "line", Kind: cmdlang.KindString, Required: true},
		},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		s, err := v.session(c.Str("owner", ""), c.Str("name", ""), c.Str("password", ""))
		if err != nil {
			return cmdlang.Fail(cmdlang.CodeDenied, err.Error()), nil
		}
		line := c.Str("line", "")
		s.appendLine("$ " + line)
		// Minimal shell emulation so workspaces feel alive.
		switch {
		case strings.HasPrefix(line, "echo "):
			s.appendLine(strings.TrimPrefix(line, "echo "))
		case line == "apps":
			_, apps := s.snapshot()
			s.appendLine(strings.Join(apps, " "))
		}
		return nil, nil
	})

	v.Handle(cmdlang.CommandSpec{
		Name: "vncRun",
		Doc:  "start an application inside the workspace",
		Args: []cmdlang.ArgSpec{
			{Name: "owner", Kind: cmdlang.KindWord, Required: true},
			{Name: "name", Kind: cmdlang.KindWord, Required: true},
			{Name: "password", Kind: cmdlang.KindString, Required: true},
			{Name: "app", Kind: cmdlang.KindString, Required: true},
		},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		s, err := v.session(c.Str("owner", ""), c.Str("name", ""), c.Str("password", ""))
		if err != nil {
			return cmdlang.Fail(cmdlang.CodeDenied, err.Error()), nil
		}
		app := c.Str("app", "")
		s.mu.Lock()
		s.apps[app] = true
		s.mu.Unlock()
		s.appendLine("[started " + app + "]")
		return nil, nil
	})

	v.Handle(cmdlang.CommandSpec{
		Name: "vncExport",
		Doc:  "export a session's full state for migration (§5.3: moved from one host to another)",
		Args: []cmdlang.ArgSpec{
			{Name: "owner", Kind: cmdlang.KindWord, Required: true},
			{Name: "name", Kind: cmdlang.KindWord, Required: true},
			{Name: "password", Kind: cmdlang.KindString, Required: true},
		},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		s, err := v.session(c.Str("owner", ""), c.Str("name", ""), c.Str("password", ""))
		if err != nil {
			return cmdlang.Fail(cmdlang.CodeDenied, err.Error()), nil
		}
		screen, apps := s.snapshot()
		return cmdlang.OK().
			Set("screen", cmdlang.StringVector(screen...)).
			Set("apps", cmdlang.StringVector(apps...)), nil
	})

	v.Handle(cmdlang.CommandSpec{
		Name: "vncImport",
		Doc:  "create a session from exported state (migration target side)",
		Args: []cmdlang.ArgSpec{
			{Name: "owner", Kind: cmdlang.KindWord, Required: true},
			{Name: "name", Kind: cmdlang.KindWord, Required: true},
			{Name: "password", Kind: cmdlang.KindString, Required: true},
			{Name: "screen", Kind: cmdlang.KindVector, Required: true},
			{Name: "apps", Kind: cmdlang.KindVector},
		},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		owner, name := c.Str("owner", ""), c.Str("name", "")
		v.mu.Lock()
		defer v.mu.Unlock()
		key := sessionKey(owner, name)
		if _, exists := v.sessions[key]; exists {
			return cmdlang.Fail(cmdlang.CodeConflict, "session exists"), nil
		}
		s := &Session{
			Owner:    owner,
			Name:     name,
			password: c.Str("password", ""),
			apps:     make(map[string]bool),
		}
		s.screen = append(s.screen, c.Strings("screen")...)
		for _, app := range c.Strings("apps") {
			s.apps[app] = true
		}
		v.sessions[key] = s
		return nil, nil
	})

	//acelint:ignore verbconformance operator verb: issued through acectl's dynamic call/raw passthrough
	v.Handle(cmdlang.CommandSpec{
		Name: "vncList",
		Args: []cmdlang.ArgSpec{{Name: "owner", Kind: cmdlang.KindWord, Required: true}},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		owner := c.Str("owner", "")
		v.mu.Lock()
		var names []string
		for _, s := range v.sessions {
			if s.Owner == owner {
				names = append(names, s.Name)
			}
		}
		v.mu.Unlock()
		sort.Strings(names)
		return cmdlang.OK().SetInt("count", int64(len(names))).Set("names", cmdlang.WordVector(names...)), nil
	})
}

// randomPassword generates a session password for WSS-managed
// sessions; the user never sees it (the WSS performs password
// verification invisibly, §5.4).
func randomPassword() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure is unrecoverable for password generation.
		panic(err)
	}
	return hex.EncodeToString(b[:])
}
