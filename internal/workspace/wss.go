package workspace

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/hier"
	"ace/internal/pstore"
)

// ClassWSS is the hierarchy class of the workspace server.
const ClassWSS = hier.Root + ".Workspace.WSS"

// DefaultWorkspace is the name of the workspace every user gets at
// registration (Scenario 1).
const DefaultWorkspace = "default"

// Info describes one managed workspace instance: whose it is, what it
// is called, which VNC server houses it, and the password the WSS
// manages on the user's behalf.
type Info struct {
	Owner    string
	Name     string
	VNCAddr  string
	Password string
	// Host is where the session's server application was launched
	// (resource accounting via the SAL, when configured).
	Host string
	PID  int
}

// WSSConfig wires the workspace server to its collaborators.
type WSSConfig struct {
	// Daemon is the underlying shell configuration.
	Daemon daemon.Config
	// VNCAddrs are the vncsim servers available to house sessions
	// (round-robin placement across them).
	VNCAddrs []string
	// SALAddr, when set, launches a simulated "vncserver" process per
	// workspace through the system application launcher (Scenario 1).
	SALAddr string
	// Store, when set, checkpoints the workspace registry into the
	// persistent store, making the WSS a robust application (§5.3):
	// a restarted WSS recovers every workspace record.
	Store *pstore.Client
	// StorePath is the namespace path of the registry checkpoint.
	StorePath string
}

// WSS is the Workspace Server daemon: it creates, names, tracks, and
// removes user workspace instances (§4.5).
type WSS struct {
	*daemon.Daemon
	cfg WSSConfig

	mu         sync.Mutex
	workspaces map[string]*Info // key: owner+"/"+name
	rrNext     int
	orphaned   int64 // VNC sessions whose teardown call failed
}

// NewWSS constructs the workspace server.
func NewWSS(cfg WSSConfig) *WSS {
	dcfg := cfg.Daemon
	if dcfg.Name == "" {
		dcfg.Name = "wss"
	}
	if dcfg.Class == "" {
		dcfg.Class = ClassWSS
	}
	if cfg.StorePath == "" {
		cfg.StorePath = "/wss/registry"
	}
	w := &WSS{Daemon: daemon.New(dcfg), cfg: cfg, workspaces: make(map[string]*Info)}
	w.install()
	return w
}

// Start restores the registry from the persistent store (if
// configured) and brings the daemon online.
func (w *WSS) Start() error {
	if w.cfg.Store != nil {
		if err := w.restore(); err != nil {
			return err
		}
	}
	return w.Daemon.Start()
}

// restore loads the checkpointed registry.
func (w *WSS) restore() error {
	blob, _, ok, err := w.cfg.Store.Get(w.cfg.StorePath)
	if err != nil {
		return fmt.Errorf("wss: restore: %w", err)
	}
	if !ok {
		return nil
	}
	var infos []Info
	if err := json.Unmarshal(blob, &infos); err != nil {
		return fmt.Errorf("wss: corrupt registry checkpoint: %w", err)
	}
	w.mu.Lock()
	for i := range infos {
		in := infos[i]
		w.workspaces[sessionKey(in.Owner, in.Name)] = &in
	}
	w.mu.Unlock()
	return nil
}

// checkpoint persists the registry after every mutation.
func (w *WSS) checkpoint(ctx context.Context) error {
	if w.cfg.Store == nil {
		return nil
	}
	w.mu.Lock()
	infos := make([]Info, 0, len(w.workspaces))
	for _, in := range w.workspaces {
		infos = append(infos, *in)
	}
	w.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool {
		return sessionKey(infos[i].Owner, infos[i].Name) < sessionKey(infos[j].Owner, infos[j].Name)
	})
	blob, err := json.Marshal(infos)
	if err != nil {
		return err
	}
	_, err = w.cfg.Store.PutContext(ctx, w.cfg.StorePath, blob)
	return err
}

// Create builds a new workspace for the user: it picks a VNC server,
// creates the session with a WSS-managed password, optionally
// launches a server process through the SAL, records the instance,
// and checkpoints.
func (w *WSS) Create(owner, name string) (Info, error) {
	return w.CreateContext(context.Background(), owner, name)
}

// CreateContext is Create with a caller context, so traced commands
// carry their span onto the SAL, VNC, and store hops.
func (w *WSS) CreateContext(ctx context.Context, owner, name string) (Info, error) {
	if name == "" {
		name = DefaultWorkspace
	}
	if len(w.cfg.VNCAddrs) == 0 {
		return Info{}, fmt.Errorf("wss: no VNC servers configured")
	}
	w.mu.Lock()
	if _, exists := w.workspaces[sessionKey(owner, name)]; exists {
		w.mu.Unlock()
		return Info{}, fmt.Errorf("wss: workspace %s/%s already exists", owner, name)
	}
	vncAddr := w.cfg.VNCAddrs[w.rrNext%len(w.cfg.VNCAddrs)]
	w.rrNext++
	w.mu.Unlock()

	info := Info{Owner: owner, Name: name, VNCAddr: vncAddr, Password: randomPassword()}

	// Scenario 1: the SAL finds a suitable host and its HAL launches
	// the VNC server application there.
	if w.cfg.SALAddr != "" {
		reply, err := w.Pool().CallContext(ctx, w.cfg.SALAddr, cmdlang.New("launch").
			SetString("app", "vncserver_"+owner+"_"+name).
			SetFloat("work", 1e12). // long-running service process
			SetInt("mem", 32<<20))
		if err != nil {
			return Info{}, fmt.Errorf("wss: SAL launch: %w", err)
		}
		info.Host = reply.Str("host", "")
		info.PID = int(reply.Int("pid", 0))
	}

	if _, err := w.Pool().CallContext(ctx, vncAddr, cmdlang.New("vncCreate").
		SetWord("owner", owner).SetWord("name", name).
		SetString("password", info.Password)); err != nil {
		return Info{}, fmt.Errorf("wss: vncCreate: %w", err)
	}

	w.mu.Lock()
	w.workspaces[sessionKey(owner, name)] = &info
	w.mu.Unlock()
	if err := w.checkpoint(ctx); err != nil {
		return Info{}, err
	}
	return info, nil
}

// Open returns the access credentials for a user's workspace so a
// viewer at the user's location can attach; password verification is
// invisible to the user (§5.4).
func (w *WSS) Open(owner, name string) (Info, error) {
	if name == "" {
		name = DefaultWorkspace
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	info, ok := w.workspaces[sessionKey(owner, name)]
	if !ok {
		return Info{}, fmt.Errorf("wss: no workspace %s/%s", owner, name)
	}
	return *info, nil
}

// List names the user's workspace instances (the workspace selector
// of Scenario 4).
func (w *WSS) List(owner string) []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	var names []string
	for _, in := range w.workspaces {
		if in.Owner == owner {
			names = append(names, in.Name)
		}
	}
	sort.Strings(names)
	return names
}

// Migrate moves a workspace to a different VNC server with its full
// state — the §5.3 requirement that vital applications "can be moved
// from one host to another with minimal to no interruption of
// service". The session is exported from its current server, imported
// on the target, and only then removed from the source; the registry
// is checkpointed so the move survives a WSS crash.
func (w *WSS) Migrate(owner, name string) (Info, error) {
	return w.MigrateContext(context.Background(), owner, name)
}

// MigrateContext is Migrate with a caller context, so traced commands
// carry their span onto the export/import/teardown hops.
func (w *WSS) MigrateContext(ctx context.Context, owner, name string) (Info, error) {
	w.mu.Lock()
	info, ok := w.workspaces[sessionKey(owner, name)]
	if !ok {
		w.mu.Unlock()
		return Info{}, fmt.Errorf("wss: no workspace %s/%s", owner, name)
	}
	cur := *info
	var target string
	for _, addr := range w.cfg.VNCAddrs {
		if addr != cur.VNCAddr {
			target = addr
			break
		}
	}
	w.mu.Unlock()
	if target == "" {
		return Info{}, fmt.Errorf("wss: no other VNC server to migrate %s/%s to", owner, name)
	}

	// Export the full session state from the source server.
	exported, err := w.Pool().CallContext(ctx, cur.VNCAddr, cmdlang.New("vncExport").
		SetWord("owner", owner).SetWord("name", name).
		SetString("password", cur.Password))
	if err != nil {
		return Info{}, fmt.Errorf("wss: export for migration: %w", err)
	}

	// Import on the target (fresh password: migration is a natural
	// rotation point).
	moved := cur
	moved.VNCAddr = target
	moved.Password = randomPassword()
	importCmd := cmdlang.New("vncImport").
		SetWord("owner", owner).SetWord("name", name).
		SetString("password", moved.Password).
		Set("screen", cmdlang.StringVector(exported.Strings("screen")...)).
		Set("apps", cmdlang.StringVector(exported.Strings("apps")...))
	if _, err := w.Pool().CallContext(ctx, target, importCmd); err != nil {
		return Info{}, fmt.Errorf("wss: import on %s: %w", target, err)
	}

	// Swap the registry entry, checkpoint, then tear down the source
	// copy (source teardown is best-effort: worst case it lingers
	// until its server restarts).
	w.mu.Lock()
	*info = moved
	w.mu.Unlock()
	if err := w.checkpoint(ctx); err != nil {
		return Info{}, err
	}
	if _, err := w.Pool().CallContext(ctx, cur.VNCAddr, cmdlang.New("vncDelete").
		SetWord("owner", owner).SetWord("name", name).
		SetString("password", cur.Password)); err != nil {
		w.noteOrphan()
	}
	return moved, nil
}

// Delete removes a workspace and its VNC session.
func (w *WSS) Delete(owner, name string) error {
	return w.DeleteContext(context.Background(), owner, name)
}

// DeleteContext is Delete with a caller context.
func (w *WSS) DeleteContext(ctx context.Context, owner, name string) error {
	w.mu.Lock()
	info, ok := w.workspaces[sessionKey(owner, name)]
	if ok {
		delete(w.workspaces, sessionKey(owner, name))
	}
	w.mu.Unlock()
	if !ok {
		return fmt.Errorf("wss: no workspace %s/%s", owner, name)
	}
	// The session may be gone with its server; the workspace record is
	// already removed, so a failed teardown only leaves an orphan.
	if _, err := w.Pool().CallContext(ctx, info.VNCAddr, cmdlang.New("vncDelete").
		SetWord("owner", owner).SetWord("name", name).
		SetString("password", info.Password)); err != nil {
		w.noteOrphan()
	}
	return w.checkpoint(ctx)
}

// Count returns the number of managed workspaces.
func (w *WSS) Count() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.workspaces)
}

// noteOrphan records a VNC session whose best-effort teardown failed;
// the session lingers on its server until that server restarts.
func (w *WSS) noteOrphan() {
	w.mu.Lock()
	w.orphaned++
	w.mu.Unlock()
}

// Orphaned returns the number of VNC sessions left behind by failed
// teardown calls.
func (w *WSS) Orphaned() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.orphaned
}

func infoReply(in Info) *cmdlang.CmdLine {
	r := cmdlang.OK().
		SetWord("owner", in.Owner).
		SetWord("name", in.Name).
		SetString("vnc", in.VNCAddr).
		SetString("password", in.Password)
	if in.Host != "" {
		r.SetWord("host", in.Host).SetInt("pid", int64(in.PID))
	}
	return r
}

func (w *WSS) install() {
	w.Handle(cmdlang.CommandSpec{
		Name: "createWorkspace",
		Doc:  "create (and house) a new workspace for a user",
		Args: []cmdlang.ArgSpec{
			{Name: "user", Kind: cmdlang.KindWord, Required: true},
			{Name: "name", Kind: cmdlang.KindWord},
		},
	}, func(ctx *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		info, err := w.CreateContext(ctx.TraceContext(), c.Str("user", ""), c.Str("name", ""))
		if err != nil {
			return nil, err
		}
		return infoReply(info), nil
	})

	w.Handle(cmdlang.CommandSpec{
		Name: "openWorkspace",
		Doc:  "return viewer credentials for a user's workspace (Scenario 3)",
		Args: []cmdlang.ArgSpec{
			{Name: "user", Kind: cmdlang.KindWord, Required: true},
			{Name: "name", Kind: cmdlang.KindWord},
		},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		info, err := w.Open(c.Str("user", ""), c.Str("name", ""))
		if err != nil {
			return cmdlang.Fail(cmdlang.CodeNotFound, err.Error()), nil
		}
		return infoReply(info), nil
	})

	w.Handle(cmdlang.CommandSpec{
		Name: "listWorkspaces",
		Doc:  "the workspace selector list (Scenario 4)",
		Args: []cmdlang.ArgSpec{{Name: "user", Kind: cmdlang.KindWord, Required: true}},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		names := w.List(c.Str("user", ""))
		return cmdlang.OK().SetInt("count", int64(len(names))).Set("names", cmdlang.WordVector(names...)), nil
	})

	w.Handle(cmdlang.CommandSpec{
		Name: "migrateWorkspace",
		Doc:  "move a workspace to another VNC server with its state (§5.3)",
		Args: []cmdlang.ArgSpec{
			{Name: "user", Kind: cmdlang.KindWord, Required: true},
			{Name: "name", Kind: cmdlang.KindWord, Required: true},
		},
	}, func(ctx *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		info, err := w.MigrateContext(ctx.TraceContext(), c.Str("user", ""), c.Str("name", ""))
		if err != nil {
			return cmdlang.Fail(cmdlang.CodeUnavailable, err.Error()), nil
		}
		return infoReply(info), nil
	})

	w.Handle(cmdlang.CommandSpec{
		Name: "deleteWorkspace",
		Args: []cmdlang.ArgSpec{
			{Name: "user", Kind: cmdlang.KindWord, Required: true},
			{Name: "name", Kind: cmdlang.KindWord, Required: true},
		},
	}, func(ctx *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		if err := w.DeleteContext(ctx.TraceContext(), c.Str("user", ""), c.Str("name", "")); err != nil {
			return cmdlang.Fail(cmdlang.CodeNotFound, err.Error()), nil
		}
		return nil, nil
	})
}

// Viewer is the access-point side of Fig 16: a thin client that
// attaches to a workspace through credentials handed out by the WSS.
type Viewer struct {
	pool *daemon.Pool
	info Info
}

// NewViewer attaches to the workspace described by info.
func NewViewer(pool *daemon.Pool, info Info) *Viewer {
	return &Viewer{pool: pool, info: info}
}

func (v *Viewer) base(cmd string) *cmdlang.CmdLine {
	return cmdlang.New(cmd).
		SetWord("owner", v.info.Owner).
		SetWord("name", v.info.Name).
		SetString("password", v.info.Password)
}

// Screen returns the workspace's current display lines.
func (v *Viewer) Screen() ([]string, error) {
	reply, err := v.pool.Call(v.info.VNCAddr, v.base("vncView"))
	if err != nil {
		return nil, err
	}
	return reply.Strings("screen"), nil
}

// Apps returns the applications running in the workspace.
func (v *Viewer) Apps() ([]string, error) {
	reply, err := v.pool.Call(v.info.VNCAddr, v.base("vncView"))
	if err != nil {
		return nil, err
	}
	return reply.Strings("apps"), nil
}

// Type sends an input line into the workspace.
func (v *Viewer) Type(line string) error {
	_, err := v.pool.Call(v.info.VNCAddr, v.base("vncInput").SetString("line", line))
	return err
}

// Run starts an application inside the workspace.
func (v *Viewer) Run(app string) error {
	_, err := v.pool.Call(v.info.VNCAddr, v.base("vncRun").SetString("app", app))
	return err
}
