// Package launcher implements the ACE application launchers: the HAL
// — Host Application Launcher (§4.3), which runs applications on its
// own host, and the SAL — System Application Launcher (§4.4), which
// delegates launches to an appropriate HAL, choosing the host
// randomly or by resource allocation through the SRM.
package launcher

import (
	"context"
	"fmt"
	"sync"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/hier"
	"ace/internal/monitor"
	"ace/internal/simhost"
)

// Hierarchy classes for the launcher daemons.
const (
	ClassHAL = hier.Root + ".Launcher.HAL"
	ClassSAL = hier.Root + ".Launcher.SAL"
)

// HAL is the host application launcher daemon for one host.
type HAL struct {
	*daemon.Daemon
	host *simhost.Host
}

// NewHAL wraps a host in a HAL daemon.
func NewHAL(dcfg daemon.Config, host *simhost.Host) *HAL {
	if dcfg.Name == "" {
		dcfg.Name = "hal_" + host.Name()
	}
	if dcfg.Class == "" {
		dcfg.Class = ClassHAL
	}
	if dcfg.Host == "" {
		dcfg.Host = host.Name()
	}
	h := &HAL{Daemon: daemon.New(dcfg), host: host}
	h.install()
	return h
}

// Host exposes the underlying host.
func (h *HAL) Host() *simhost.Host { return h.host }

func (h *HAL) install() {
	h.Handle(cmdlang.CommandSpec{
		Name: "launch",
		Doc:  "run an application on this host using local resources",
		Args: []cmdlang.ArgSpec{
			{Name: "app", Kind: cmdlang.KindString, Required: true},
			{Name: "work", Kind: cmdlang.KindFloat, Doc: "bogomips-seconds of compute"},
			{Name: "mem", Kind: cmdlang.KindInt, Doc: "bytes resident"},
		},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		pid, err := h.host.Launch(c.Str("app", ""), c.Float("work", 1), c.Int("mem", 0))
		if err != nil {
			return cmdlang.Fail(cmdlang.CodeUnavailable, err.Error()), nil
		}
		return cmdlang.OK().SetInt("pid", int64(pid)).SetWord("host", h.host.Name()), nil
	})

	h.Handle(cmdlang.CommandSpec{
		Name: "kill",
		Args: []cmdlang.ArgSpec{{Name: "pid", Kind: cmdlang.KindInt, Required: true}},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		killed := h.host.Kill(int(c.Int("pid", 0)))
		return cmdlang.OK().SetBool("killed", killed), nil
	})

	h.Handle(cmdlang.CommandSpec{Name: "listApps"}, func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		procs := h.host.Running()
		pids := make([]int64, len(procs))
		names := make([]string, len(procs))
		for i, p := range procs {
			pids[i] = int64(p.PID)
			names[i] = p.Name
		}
		return cmdlang.OK().
			SetInt("count", int64(len(procs))).
			Set("pids", cmdlang.IntVector(pids...)).
			Set("apps", cmdlang.StringVector(names...)), nil
	})
}

// Placement records where the SAL launched an application.
type Placement struct {
	App  string
	Host string
	PID  int
}

// SAL is the system application launcher daemon.
type SAL struct {
	*daemon.Daemon

	srm *monitor.SRM // in-process SRM for host selection

	mu         sync.Mutex
	placements []Placement
}

// NewSAL constructs the system launcher over an SRM (Fig 18: the SAL
// works in conjunction with the HALs, SRM, and HRMs).
func NewSAL(dcfg daemon.Config, srm *monitor.SRM) *SAL {
	if dcfg.Name == "" {
		dcfg.Name = "sal"
	}
	if dcfg.Class == "" {
		dcfg.Class = ClassSAL
	}
	s := &SAL{Daemon: daemon.New(dcfg), srm: srm}
	s.install()
	return s
}

// Launch places the application on a host chosen by policy and
// delegates the launch to that host's HAL.
func (s *SAL) Launch(app string, work float64, mem int64, policy monitor.Policy) (Placement, error) {
	return s.LaunchContext(context.Background(), app, work, mem, policy)
}

// LaunchContext is Launch with a caller context, so traced commands
// carry their span onto the HAL hop.
func (s *SAL) LaunchContext(ctx context.Context, app string, work float64, mem int64, policy monitor.Policy) (Placement, error) {
	s.srm.Refresh()
	report, err := s.srm.Pick(policy, mem)
	if err != nil {
		return Placement{}, err
	}
	if report.HALAddr == "" {
		return Placement{}, fmt.Errorf("sal: host %s has no HAL", report.Host)
	}
	reply, err := s.Pool().CallContext(ctx, report.HALAddr, cmdlang.New("launch").
		SetString("app", app).SetFloat("work", work).SetInt("mem", mem))
	if err != nil {
		return Placement{}, fmt.Errorf("sal: HAL launch on %s: %w", report.Host, err)
	}
	p := Placement{App: app, Host: reply.Str("host", report.Host), PID: int(reply.Int("pid", 0))}
	s.mu.Lock()
	s.placements = append(s.placements, p)
	s.mu.Unlock()
	return p, nil
}

// Placements returns the launch history.
func (s *SAL) Placements() []Placement {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Placement(nil), s.placements...)
}

func (s *SAL) install() {
	s.Handle(cmdlang.CommandSpec{
		Name: "launch",
		Doc:  "run an application somewhere in the environment (§4.4)",
		Args: []cmdlang.ArgSpec{
			{Name: "app", Kind: cmdlang.KindString, Required: true},
			{Name: "work", Kind: cmdlang.KindFloat},
			{Name: "mem", Kind: cmdlang.KindInt},
			{Name: "policy", Kind: cmdlang.KindWord},
		},
	}, func(ctx *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		p, err := s.LaunchContext(
			ctx.TraceContext(),
			c.Str("app", ""),
			c.Float("work", 1),
			c.Int("mem", 0),
			monitor.Policy(c.Str("policy", string(monitor.PolicyLeastLoaded))),
		)
		if err != nil {
			return cmdlang.Fail(cmdlang.CodeUnavailable, err.Error()), nil
		}
		return cmdlang.OK().SetWord("host", p.Host).SetInt("pid", int64(p.PID)), nil
	})
}
