package launcher

import (
	"fmt"
	"math"
	"testing"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/monitor"
	"ace/internal/simhost"
)

// rig is a small ACE compute plane: hosts, one HRM+HAL each, one SRM,
// one SAL (Fig 11 / Fig 18 topology).
type rig struct {
	cluster *simhost.Cluster
	hrms    []*monitor.HRM
	hals    []*HAL
	srm     *monitor.SRM
	sal     *SAL
}

func buildRig(t *testing.T, speeds []float64) *rig {
	t.Helper()
	r := &rig{cluster: simhost.NewCluster()}
	r.srm = monitor.NewSRM(daemon.Config{}, 1)
	if err := r.srm.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.srm.Stop)

	for i, sp := range speeds {
		host := simhost.NewHost(fmt.Sprintf("host%d", i), sp, 1<<30, 1<<40)
		r.cluster.Add(host)
		hrm := monitor.NewHRM(daemon.Config{}, host)
		if err := hrm.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(hrm.Stop)
		hal := NewHAL(daemon.Config{}, host)
		if err := hal.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(hal.Stop)
		r.hrms = append(r.hrms, hrm)
		r.hals = append(r.hals, hal)
		r.srm.AddHost(host.Name(), hrm.Addr(), hal.Addr())
	}

	r.sal = NewSAL(daemon.Config{}, r.srm)
	if err := r.sal.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.sal.Stop)
	return r
}

func TestHALLaunchKillList(t *testing.T) {
	host := simhost.NewHost("bar", 100, 1<<20, 0)
	hal := NewHAL(daemon.Config{}, host)
	if err := hal.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(hal.Stop)

	pool := daemon.NewPool(nil)
	defer pool.Close()

	reply, err := pool.Call(hal.Addr(), cmdlang.New("launch").
		SetString("app", "vncserver_john").SetFloat("work", 100).SetInt("mem", 64))
	if err != nil {
		t.Fatal(err)
	}
	pid := reply.Int("pid", 0)
	if pid == 0 || reply.Str("host", "") != "bar" {
		t.Fatalf("reply=%v", reply)
	}

	list, err := pool.Call(hal.Addr(), cmdlang.New("listApps"))
	if err != nil {
		t.Fatal(err)
	}
	if list.Int("count", 0) != 1 || list.Strings("apps")[0] != "vncserver_john" {
		t.Fatalf("list=%v", list)
	}

	killReply, err := pool.Call(hal.Addr(), cmdlang.New("kill").SetInt("pid", pid))
	if err != nil {
		t.Fatal(err)
	}
	if !killReply.Bool("killed", false) {
		t.Fatal("not killed")
	}

	// Memory exhaustion surfaces as unavailable.
	_, err = pool.Call(hal.Addr(), cmdlang.New("launch").
		SetString("app", "huge").SetInt("mem", 1<<30))
	if !cmdlang.IsRemoteCode(err, cmdlang.CodeUnavailable) {
		t.Fatalf("err=%v", err)
	}
}

func TestHRMStatusOverWire(t *testing.T) {
	host := simhost.NewHost("bar", 450, 1<<30, 1<<40)
	host.Launch("x", 1000, 1<<20) //nolint:errcheck
	hrm := monitor.NewHRM(daemon.Config{}, host)
	if err := hrm.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(hrm.Stop)

	pool := daemon.NewPool(nil)
	defer pool.Close()
	st, err := pool.Call(hrm.Addr(), cmdlang.New("hostStatus"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Float("speed", 0) != 450 || st.Int("runnable", 0) != 1 {
		t.Fatalf("status=%v", st)
	}
	if st.Int("memavail", 0) != 1<<30-1<<20 {
		t.Fatalf("memavail=%d", st.Int("memavail", 0))
	}
}

func TestSRMPickLeastLoadedIsSpeedAware(t *testing.T) {
	r := buildRig(t, []float64{100, 400})
	// Load the fast host with one job; empty slow host. Speed-aware
	// least-loaded still prefers the fast host: (1+1)/400 < (0+1)/100.
	r.cluster.Hosts()[1].Launch("busy", 1e6, 0) //nolint:errcheck
	r.srm.Refresh()
	pick, err := r.srm.Pick(monitor.PolicyLeastLoaded, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pick.Host != "host1" {
		t.Fatalf("picked %s", pick.Host)
	}
	// Unknown policy is rejected.
	if _, err := r.srm.Pick("psychic", 0); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestSRMPickRespectsMemory(t *testing.T) {
	r := buildRig(t, []float64{100, 100})
	// Fill host0's memory almost completely.
	r.cluster.Hosts()[0].Launch("hog", 1e9, 1<<30-100) //nolint:errcheck
	r.srm.Refresh()
	for i := 0; i < 5; i++ {
		pick, err := r.srm.Pick(monitor.PolicyRandom, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if pick.Host != "host1" {
			t.Fatalf("picked memory-starved host")
		}
	}
	// Nothing fits an absurd demand.
	if _, err := r.srm.Pick(monitor.PolicyLeastLoaded, 1<<40); err == nil {
		t.Fatal("impossible demand satisfied")
	}
}

func TestSALDelegatesToHAL(t *testing.T) {
	r := buildRig(t, []float64{100, 100, 100})
	pool := daemon.NewPool(nil)
	defer pool.Close()

	reply, err := pool.Call(r.sal.Addr(), cmdlang.New("launch").
		SetString("app", "workspace_john").SetFloat("work", 50).SetInt("mem", 1024))
	if err != nil {
		t.Fatal(err)
	}
	host := reply.Str("host", "")
	pid := int(reply.Int("pid", 0))
	// The app must actually be running on the reported host.
	found := false
	for _, h := range r.cluster.Hosts() {
		if h.Name() == host {
			_, found = h.Find(pid)
		}
	}
	if !found {
		t.Fatalf("app not running on %s pid %d", host, pid)
	}
	if got := r.sal.Placements(); len(got) != 1 || got[0].App != "workspace_john" {
		t.Fatalf("placements=%v", got)
	}
}

func TestSALSpreadsLoadBetterThanRandom(t *testing.T) {
	// E7's shape in miniature: least-loaded placement on heterogeneous
	// hosts beats random placement on makespan.
	speeds := []float64{100, 200, 400}
	const jobs = 30
	const work = 100.0

	makespan := func(policy monitor.Policy) float64 {
		r := buildRig(t, speeds)
		for i := 0; i < jobs; i++ {
			if _, err := r.sal.Launch(fmt.Sprintf("job%d", i), work, 0, policy); err != nil {
				t.Fatal(err)
			}
		}
		return r.cluster.AdvanceUntilIdle(0.25, 10000)
	}

	mLL := makespan(monitor.PolicyLeastLoaded)
	mRand := makespan(monitor.PolicyRandom)
	// Ideal makespan: total work / total speed.
	ideal := jobs * work / (100 + 200 + 400)
	if mLL < ideal-1e-6 {
		t.Fatalf("makespan %v below physical bound %v", mLL, ideal)
	}
	if mLL > mRand+1e-9 {
		t.Fatalf("least-loaded (%.2f) worse than random (%.2f)", mLL, mRand)
	}
	// Least-loaded should be close to ideal.
	if mLL > ideal*1.6 {
		t.Fatalf("least-loaded makespan %.2f too far from ideal %.2f", mLL, ideal)
	}
}

func TestSRMUnhealthyHostsExcluded(t *testing.T) {
	r := buildRig(t, []float64{100, 100})
	// Stop host0's HRM: refresh marks it unhealthy.
	r.hrms[0].Stop()
	r.srm.Refresh()
	for i := 0; i < 4; i++ {
		pick, err := r.srm.Pick(monitor.PolicyRandom, 0)
		if err != nil {
			t.Fatal(err)
		}
		if pick.Host == "host0" {
			t.Fatal("unhealthy host picked")
		}
	}
	reports := r.srm.Reports()
	if len(reports) != 2 || reports[0].Healthy || !reports[1].Healthy {
		t.Fatalf("reports=%+v", reports)
	}
}

func TestSystemStatusCommand(t *testing.T) {
	r := buildRig(t, []float64{150, 250})
	pool := daemon.NewPool(nil)
	defer pool.Close()
	st, err := pool.Call(r.srm.Addr(), cmdlang.New("systemStatus"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Int("count", 0) != 2 {
		t.Fatalf("st=%v", st)
	}
	speeds := st.Vector("speeds")
	sum := 0.0
	for _, s := range speeds {
		f, _ := s.AsFloat()
		sum += f
	}
	if math.Abs(sum-400) > 1e-9 {
		t.Fatalf("speeds=%v", speeds)
	}
}

func TestBestHostCommand(t *testing.T) {
	r := buildRig(t, []float64{100, 300})
	pool := daemon.NewPool(nil)
	defer pool.Close()
	reply, err := pool.Call(r.srm.Addr(), cmdlang.New("bestHost").SetWord("policy", "least_loaded"))
	if err != nil {
		t.Fatal(err)
	}
	if reply.Str("host", "") != "host1" {
		t.Fatalf("reply=%v", reply)
	}
	if reply.Str("hal", "") == "" {
		t.Fatal("missing hal addr")
	}
}
