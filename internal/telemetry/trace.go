package telemetry

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// SpanContext identifies one position in a distributed trace: the
// trace it belongs to, the span representing the current operation,
// and that span's parent. The zero SpanContext means "not traced".
//
// A call origin (acectl, a test, an application entry point) starts
// a trace with NewTrace: TraceID set, SpanID zero — it is the
// implicit root. Every outgoing traced call derives a child context
// with NewChild; the receiving daemon records a span under the
// child's SpanID with Parent pointing at the caller's SpanID, so the
// recorded spans across all daemons assemble into one tree.
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
	Parent  uint64
}

// Valid reports whether the context belongs to a trace.
func (sc SpanContext) Valid() bool { return sc.TraceID != 0 }

// NewChild returns the context for an operation caused by sc: same
// trace, fresh span, parented at sc's span.
func (sc SpanContext) NewChild() SpanContext {
	return SpanContext{TraceID: sc.TraceID, SpanID: newID(), Parent: sc.SpanID}
}

// NewTrace returns a root context for a fresh trace.
func NewTrace() SpanContext {
	return SpanContext{TraceID: newID()}
}

// idState seeds the lock-free splitmix64 ID generator from the clock
// once; every newID call is a single atomic add plus mixing.
var idState atomic.Uint64

func init() { idState.Store(uint64(time.Now().UnixNano())) }

// newID returns a non-zero pseudo-random 64-bit identifier.
func newID() uint64 {
	for {
		x := idState.Add(0x9e3779b97f4a7c15)
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		if x != 0 {
			return x
		}
	}
}

// FormatID renders a trace or span ID the way it appears in commands
// and acectl output: 16 lower-case hex digits.
func FormatID(id uint64) string { return fmt.Sprintf("%016x", id) }

// ParseID parses FormatID's output (leading zeros optional).
func ParseID(s string) (uint64, error) {
	id, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("telemetry: bad trace id %q: %w", s, err)
	}
	return id, nil
}

// ctxKey is the context key for SpanContext propagation.
type ctxKey struct{}

// WithSpanContext attaches sc to ctx.
func WithSpanContext(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext extracts the SpanContext from ctx (zero when absent).
func FromContext(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(ctxKey{}).(SpanContext)
	return sc
}

// Span is one recorded operation: a command executed by a daemon (or
// a client-side call) within a trace.
type Span struct {
	TraceID  uint64
	SpanID   uint64
	Parent   uint64
	Name     string // operation, usually the command verb
	Service  string // recording daemon's instance name
	Start    time.Time
	Duration time.Duration
	OK       bool
}

// DefaultTraceBufferSpans bounds a daemon's trace buffer when the
// configuration does not say otherwise.
const DefaultTraceBufferSpans = 4096

// TraceBuffer is a bounded in-process span store. Spans are grouped
// by trace; when the total span budget is exceeded, whole oldest
// traces are evicted (a partial trace is worse than a missing one).
// A nil *TraceBuffer discards all records.
type TraceBuffer struct {
	mu     sync.Mutex
	max    int
	total  int
	traces map[uint64][]Span
	order  []uint64 // trace IDs, oldest first
}

// NewTraceBuffer returns a buffer bounded to maxSpans recorded spans
// (DefaultTraceBufferSpans when maxSpans <= 0).
func NewTraceBuffer(maxSpans int) *TraceBuffer {
	if maxSpans <= 0 {
		maxSpans = DefaultTraceBufferSpans
	}
	return &TraceBuffer{max: maxSpans, traces: make(map[uint64][]Span)}
}

// Record stores one span, evicting oldest traces when over budget.
func (b *TraceBuffer) Record(s Span) {
	if b == nil || s.TraceID == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.traces[s.TraceID]; !ok {
		b.order = append(b.order, s.TraceID)
	}
	b.traces[s.TraceID] = append(b.traces[s.TraceID], s)
	b.total++
	for b.total > b.max && len(b.order) > 1 {
		oldest := b.order[0]
		if oldest == s.TraceID {
			break // never evict the trace being written
		}
		b.order = b.order[1:]
		b.total -= len(b.traces[oldest])
		delete(b.traces, oldest)
	}
}

// Trace returns the recorded spans of one trace, in recording order.
func (b *TraceBuffer) Trace(traceID uint64) []Span {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Span(nil), b.traces[traceID]...)
}

// TraceIDs returns the buffered trace IDs, oldest first.
func (b *TraceBuffer) TraceIDs() []uint64 {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]uint64(nil), b.order...)
}

// Len returns the total number of buffered spans.
func (b *TraceBuffer) Len() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}
