// Package telemetry is the measurement substrate of the ACE
// reproduction: a metrics registry (counters, gauges, fixed-bucket
// latency histograms) with lock-free atomic hot paths, and a
// distributed request-tracing facility (trace contexts propagated in
// the wire frame, spans recorded into bounded per-daemon buffers).
//
// The paper's substrate reports host resources (HRM/SRM) and audit
// events (netlog, §4.14) but nothing quantitative about the calls
// themselves; this package supplies the numbers — call latency,
// retry and breaker churn, quorum health, lease turnover — that the
// "fast as the hardware allows" north star needs before any
// performance change can be trusted.
//
// Instruments are created through a Registry and then used directly;
// creation takes a lock, use never does. A nil *Registry (and the
// nil instruments it hands out) is the no-op implementation: every
// recording method is a nil-guarded no-op, so instrumented hot paths
// can be compiled in unconditionally and disabled per daemon.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing count. The zero value is
// ready to use; a nil Counter discards all updates.
type Counter struct {
	n atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.n.Add(delta)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is an instantaneous value (queue depth, open connections).
// A nil Gauge discards all updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// LatencyBuckets are the fixed upper bounds of every latency
// histogram, chosen to resolve both loopback microseconds and
// multi-second timeout tails. The final implicit bucket is +Inf.
var LatencyBuckets = []time.Duration{
	50 * time.Microsecond,
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2500 * time.Millisecond,
}

// NumBuckets is the bucket count of every histogram, including the
// +Inf overflow bucket.
var NumBuckets = len(LatencyBuckets) + 1

// Histogram is a fixed-bucket latency histogram. Observation is a
// linear scan over 16 buckets plus two atomic adds — no locks, no
// allocation. The total count is derived from the buckets on read,
// keeping the write path as light as possible. A nil Histogram
// discards all observations.
type Histogram struct {
	buckets [16]atomic.Int64 // len(LatencyBuckets)+1; last is +Inf
	sum     atomic.Int64     // nanoseconds
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	i := 0
	for i < len(LatencyBuckets) && d > LatencyBuckets[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the total observed duration (0 for nil).
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Buckets snapshots the per-bucket counts. The last element is the
// +Inf overflow bucket.
func (h *Histogram) Buckets() []int64 {
	if h == nil {
		return make([]int64, NumBuckets)
	}
	out := make([]int64, NumBuckets)
	for i := range out {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Min returns a lower bound for the smallest observation: the upper
// bound of the bucket below the first non-empty one (0 for the first
// bucket). Used by tests asserting injected latency is visible.
func (h *Histogram) Min() time.Duration {
	if h == nil {
		return 0
	}
	for i := 0; i < NumBuckets; i++ {
		if h.buckets[i].Load() > 0 {
			if i == 0 {
				return 0
			}
			return LatencyBuckets[i-1]
		}
	}
	return 0
}

// Registry names and owns a daemon's instruments. Instrument lookup
// is get-or-create under a mutex; the returned instrument is then
// used lock-free. A nil *Registry is the disabled registry: it hands
// out nil instruments and empty snapshots.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named latency histogram, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// ScalarPoint is one named counter or gauge value in a snapshot.
type ScalarPoint struct {
	Name  string
	Value int64
}

// HistogramPoint is one named histogram in a snapshot.
type HistogramPoint struct {
	Name    string
	Count   int64
	Sum     time.Duration
	Buckets []int64 // len == NumBuckets; last is +Inf
}

// Snapshot is a consistent-enough point-in-time copy of a registry:
// each instrument is read atomically, instruments are not mutually
// synchronized (they never are in any metrics system).
type Snapshot struct {
	Counters   []ScalarPoint
	Gauges     []ScalarPoint
	Histograms []HistogramPoint
}

// Counter returns the named counter's value from the snapshot (0
// when absent).
func (s *Snapshot) Counter(name string) int64 {
	for _, p := range s.Counters {
		if p.Name == name {
			return p.Value
		}
	}
	return 0
}

// Gauge returns the named gauge's value from the snapshot (0 when
// absent).
func (s *Snapshot) Gauge(name string) int64 {
	for _, p := range s.Gauges {
		if p.Name == name {
			return p.Value
		}
	}
	return 0
}

// Histogram returns the named histogram point and whether it exists.
func (s *Snapshot) Histogram(name string) (HistogramPoint, bool) {
	for _, p := range s.Histograms {
		if p.Name == name {
			return p, true
		}
	}
	return HistogramPoint{}, false
}

// Snapshot copies every instrument, sorted by name.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, ScalarPoint{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, ScalarPoint{Name: name, Value: g.Value()})
	}
	for name, h := range r.histograms {
		s.Histograms = append(s.Histograms, HistogramPoint{
			Name:    name,
			Count:   h.Count(),
			Sum:     h.Sum(),
			Buckets: h.Buckets(),
		})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}
