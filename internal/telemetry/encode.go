package telemetry

import (
	"fmt"
	"time"

	"ace/internal/cmdlang"
)

// Command-language encoding of snapshots and traces: the `telemetry`
// command every daemon answers returns these shapes, and acectl and
// tests decode them. IDs travel as 16-hex-digit strings (uint64 does
// not fit the language's signed integer), everything else as the
// language's native vectors.

// EncodeSnapshot writes the snapshot's instruments into reply.
func EncodeSnapshot(s *Snapshot, reply *cmdlang.CmdLine) *cmdlang.CmdLine {
	names := make([]string, len(s.Counters))
	vals := make([]int64, len(s.Counters))
	for i, p := range s.Counters {
		names[i] = p.Name
		vals[i] = p.Value
	}
	reply.Set("counters", cmdlang.StringVector(names...))
	reply.Set("countervals", cmdlang.IntVector(vals...))

	names = make([]string, len(s.Gauges))
	vals = make([]int64, len(s.Gauges))
	for i, p := range s.Gauges {
		names[i] = p.Name
		vals[i] = p.Value
	}
	reply.Set("gauges", cmdlang.StringVector(names...))
	reply.Set("gaugevals", cmdlang.IntVector(vals...))

	hnames := make([]string, len(s.Histograms))
	hcounts := make([]int64, len(s.Histograms))
	hsums := make([]int64, len(s.Histograms))
	hbuckets := make([]cmdlang.Value, len(s.Histograms))
	for i, p := range s.Histograms {
		hnames[i] = p.Name
		hcounts[i] = p.Count
		hsums[i] = int64(p.Sum)
		hbuckets[i] = cmdlang.IntVector(p.Buckets...)
	}
	reply.Set("hists", cmdlang.StringVector(hnames...))
	reply.Set("histcounts", cmdlang.IntVector(hcounts...))
	reply.Set("histsums", cmdlang.IntVector(hsums...))
	reply.Set("histbuckets", cmdlang.Array(hbuckets...))
	return reply
}

// DecodeSnapshot is the inverse of EncodeSnapshot.
func DecodeSnapshot(c *cmdlang.CmdLine) (*Snapshot, error) {
	s := &Snapshot{}
	cn := c.Strings("counters")
	cv := c.Vector("countervals")
	if len(cn) != len(cv) {
		return nil, fmt.Errorf("telemetry: counter names/values length mismatch")
	}
	for i, name := range cn {
		v, _ := cv[i].AsInt()
		s.Counters = append(s.Counters, ScalarPoint{Name: name, Value: v})
	}
	gn := c.Strings("gauges")
	gv := c.Vector("gaugevals")
	if len(gn) != len(gv) {
		return nil, fmt.Errorf("telemetry: gauge names/values length mismatch")
	}
	for i, name := range gn {
		v, _ := gv[i].AsInt()
		s.Gauges = append(s.Gauges, ScalarPoint{Name: name, Value: v})
	}
	hn := c.Strings("hists")
	hc := c.Vector("histcounts")
	hs := c.Vector("histsums")
	hb := c.Vector("histbuckets")
	if len(hn) != len(hc) || len(hn) != len(hs) || (len(hn) > 0 && len(hn) != len(hb)) {
		return nil, fmt.Errorf("telemetry: histogram vectors length mismatch")
	}
	for i, name := range hn {
		count, _ := hc[i].AsInt()
		sum, _ := hs[i].AsInt()
		buckets := make([]int64, 0, NumBuckets)
		for _, e := range hb[i].Elems() {
			v, _ := e.AsInt()
			buckets = append(buckets, v)
		}
		s.Histograms = append(s.Histograms, HistogramPoint{
			Name: name, Count: count, Sum: time.Duration(sum), Buckets: buckets,
		})
	}
	return s, nil
}

// EncodeSpans writes a trace's spans into reply.
func EncodeSpans(spans []Span, reply *cmdlang.CmdLine) *cmdlang.CmdLine {
	n := len(spans)
	spanIDs := make([]string, n)
	parents := make([]string, n)
	names := make([]string, n)
	services := make([]string, n)
	starts := make([]int64, n)
	durs := make([]int64, n)
	oks := make([]string, n)
	traceID := ""
	for i, s := range spans {
		if traceID == "" {
			traceID = FormatID(s.TraceID)
		}
		spanIDs[i] = FormatID(s.SpanID)
		parents[i] = FormatID(s.Parent)
		names[i] = s.Name
		services[i] = s.Service
		starts[i] = s.Start.UnixNano()
		durs[i] = int64(s.Duration)
		if s.OK {
			oks[i] = "true"
		} else {
			oks[i] = "false"
		}
	}
	reply.SetInt("count", int64(n))
	if traceID != "" {
		reply.SetString("trace", traceID)
	}
	reply.Set("spanids", cmdlang.StringVector(spanIDs...))
	reply.Set("parents", cmdlang.StringVector(parents...))
	reply.Set("names", cmdlang.StringVector(names...))
	reply.Set("services", cmdlang.StringVector(services...))
	reply.Set("starts", cmdlang.IntVector(starts...))
	reply.Set("durs", cmdlang.IntVector(durs...))
	reply.Set("oks", cmdlang.WordVector(oks...))
	return reply
}

// DecodeSpans is the inverse of EncodeSpans.
func DecodeSpans(c *cmdlang.CmdLine) ([]Span, error) {
	spanIDs := c.Strings("spanids")
	parents := c.Strings("parents")
	names := c.Strings("names")
	services := c.Strings("services")
	starts := c.Vector("starts")
	durs := c.Vector("durs")
	oks := c.Strings("oks")
	n := len(spanIDs)
	if len(parents) != n || len(names) != n || len(services) != n ||
		len(starts) != n || len(durs) != n || len(oks) != n {
		return nil, fmt.Errorf("telemetry: span vectors length mismatch")
	}
	var traceID uint64
	if t := c.Str("trace", ""); t != "" {
		id, err := ParseID(t)
		if err != nil {
			return nil, err
		}
		traceID = id
	}
	spans := make([]Span, 0, n)
	for i := 0; i < n; i++ {
		sid, err := ParseID(spanIDs[i])
		if err != nil {
			return nil, err
		}
		pid, err := ParseID(parents[i])
		if err != nil {
			return nil, err
		}
		start, _ := starts[i].AsInt()
		dur, _ := durs[i].AsInt()
		spans = append(spans, Span{
			TraceID:  traceID,
			SpanID:   sid,
			Parent:   pid,
			Name:     names[i],
			Service:  services[i],
			Start:    time.Unix(0, start),
			Duration: time.Duration(dur),
			OK:       oks[i] == "true",
		})
	}
	return spans, nil
}
