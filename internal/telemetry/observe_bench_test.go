package telemetry

// Micro-benchmarks for the histogram hot path. Observe is called on
// every dispatched command and every wire call, so its cost bounds
// the telemetry overhead measured by `make bench-telemetry`.

import (
	"testing"
	"time"
)

func BenchmarkObserveSerial(b *testing.B) {
	h := NewRegistry().Histogram("bench")
	d := 500 * time.Nanosecond
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(d)
	}
}

func BenchmarkObserveParallel(b *testing.B) {
	h := NewRegistry().Histogram("bench")
	d := 500 * time.Nanosecond
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(d)
		}
	})
}
