package telemetry

import (
	"context"
	"testing"
	"time"

	"ace/internal/cmdlang"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil instruments")
	}
	c.Add(5)
	c.Inc()
	g.Set(7)
	g.Add(1)
	h.Observe(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil instruments must discard updates")
	}
	if s := r.Snapshot(); len(s.Counters) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot must be empty")
	}
	if h.Min() != 0 || len(h.Buckets()) != NumBuckets {
		t.Fatalf("nil histogram accessors must be safe")
	}
}

func TestInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("calls")
	c.Add(2)
	c.Inc()
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	if r.Counter("calls") != c {
		t.Fatalf("same name must return same counter")
	}
	g := r.Gauge("depth")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
	h := r.Histogram("lat")
	h.Observe(30 * time.Microsecond)  // bucket 0 (<=50µs)
	h.Observe(700 * time.Microsecond) // bucket 4 (<=1ms)
	h.Observe(10 * time.Second)       // +Inf bucket
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	b := h.Buckets()
	if b[0] != 1 || b[4] != 1 || b[NumBuckets-1] != 1 {
		t.Fatalf("unexpected bucket layout: %v", b)
	}
	if h.Sum() < 10*time.Second {
		t.Fatalf("sum = %v too small", h.Sum())
	}
	if h.Min() != 0 {
		t.Fatalf("Min = %v, want 0 (first bucket occupied)", h.Min())
	}

	h2 := r.Histogram("lat2")
	h2.Observe(40 * time.Millisecond)
	if h2.Min() != 25*time.Millisecond {
		t.Fatalf("Min = %v, want 25ms lower bound", h2.Min())
	}
}

func TestSnapshotEncodeDecode(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(9)
	r.Counter("a.count").Add(4)
	r.Gauge("depth").Set(3)
	r.Histogram("lat").Observe(2 * time.Millisecond)

	s := r.Snapshot()
	if s.Counters[0].Name != "a.count" {
		t.Fatalf("snapshot not sorted: %+v", s.Counters)
	}
	reply := EncodeSnapshot(s, cmdlang.OK())
	// Round-trip over the wire form, as the telemetry command does.
	parsed, err := cmdlang.Parse(reply.String())
	if err != nil {
		t.Fatalf("reply does not parse: %v", err)
	}
	got, err := DecodeSnapshot(parsed)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Counter("b.count") != 9 || got.Counter("a.count") != 4 {
		t.Fatalf("counters lost: %+v", got.Counters)
	}
	if got.Gauge("depth") != 3 {
		t.Fatalf("gauge lost: %+v", got.Gauges)
	}
	h, ok := got.Histogram("lat")
	if !ok || h.Count != 1 || h.Sum != 2*time.Millisecond || len(h.Buckets) != NumBuckets {
		t.Fatalf("histogram lost: %+v ok=%v", h, ok)
	}
}

func TestSpanContextAndIDs(t *testing.T) {
	root := NewTrace()
	if !root.Valid() || root.SpanID != 0 {
		t.Fatalf("root context malformed: %+v", root)
	}
	child := root.NewChild()
	if child.TraceID != root.TraceID || child.Parent != 0 || child.SpanID == 0 {
		t.Fatalf("child context malformed: %+v", child)
	}
	grand := child.NewChild()
	if grand.Parent != child.SpanID {
		t.Fatalf("grandchild parent = %x, want %x", grand.Parent, child.SpanID)
	}

	id, err := ParseID(FormatID(child.SpanID))
	if err != nil || id != child.SpanID {
		t.Fatalf("id round-trip: %v %x != %x", err, id, child.SpanID)
	}
	if _, err := ParseID("zzz"); err == nil {
		t.Fatalf("bad id must not parse")
	}

	ctx := WithSpanContext(context.Background(), child)
	if got := FromContext(ctx); got != child {
		t.Fatalf("context round-trip: %+v != %+v", got, child)
	}
	if got := FromContext(context.Background()); got.Valid() {
		t.Fatalf("empty context must yield invalid span context")
	}
	if WithSpanContext(context.Background(), SpanContext{}) != context.Background() {
		t.Fatalf("invalid span context must not be attached")
	}
}

func TestTraceBufferBoundsAndEviction(t *testing.T) {
	b := NewTraceBuffer(4)
	for trace := uint64(1); trace <= 3; trace++ {
		for i := 0; i < 2; i++ {
			b.Record(Span{TraceID: trace, SpanID: newID(), Name: "op"})
		}
	}
	// 6 spans recorded into a 4-span budget: trace 1 must be gone.
	if got := len(b.Trace(1)); got != 0 {
		t.Fatalf("oldest trace not evicted: %d spans remain", got)
	}
	if got := len(b.Trace(3)); got != 2 {
		t.Fatalf("newest trace truncated: %d spans", got)
	}
	if b.Len() > 4+1 { // may exceed budget only while the newest trace is protected
		t.Fatalf("buffer over budget: %d", b.Len())
	}
	if ids := b.TraceIDs(); len(ids) == 0 || ids[len(ids)-1] != 3 {
		t.Fatalf("trace order wrong: %v", ids)
	}

	var nilBuf *TraceBuffer
	nilBuf.Record(Span{TraceID: 1})
	if nilBuf.Len() != 0 || nilBuf.Trace(1) != nil || nilBuf.TraceIDs() != nil {
		t.Fatalf("nil buffer must be inert")
	}
}

func TestSpansEncodeDecode(t *testing.T) {
	start := time.Unix(0, 1700000000123456789)
	spans := []Span{
		{TraceID: 0xabc, SpanID: 0x1, Parent: 0, Name: "savepref", Service: "app", Start: start, Duration: 3 * time.Millisecond, OK: true},
		{TraceID: 0xabc, SpanID: 0x2, Parent: 0x1, Name: "lookup", Service: "asd", Start: start.Add(time.Millisecond), Duration: time.Millisecond, OK: false},
	}
	reply := EncodeSpans(spans, cmdlang.OK())
	parsed, err := cmdlang.Parse(reply.String())
	if err != nil {
		t.Fatalf("reply does not parse: %v", err)
	}
	got, err := DecodeSpans(parsed)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("span count = %d", len(got))
	}
	for i := range spans {
		if got[i] != spans[i] {
			t.Fatalf("span %d mismatch:\n got %+v\nwant %+v", i, got[i], spans[i])
		}
	}
}
