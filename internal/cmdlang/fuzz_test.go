package cmdlang

import "testing"

// FuzzParse checks the parser's core invariant on arbitrary input:
// anything that parses must re-encode to a string that parses back to
// an equal command (and must never panic).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"ping;",
		"move x=1 y=2;",
		`register name=ptz host=m25 port=1225 class="Service.Device" lease=10000;`,
		`say text="she said \"hi\"\n";`,
		"cfg dims={640,480} rates={5,15,29.97} modes={auto,manual};",
		"mat m={{1,2},{3,4}};",
		"a b=1,c=2, d=3;",
		"x y={};",
		"neg a=-5 b=-2.5 c=1e9;",
		"bad x=;",
		"{;};",
		`q s="unterminated`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		c, err := Parse(s)
		if err != nil {
			return // malformed input is fine; panics are not
		}
		enc := c.String()
		back, err := Parse(enc)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", enc, s, err)
		}
		if !c.Equal(back) {
			t.Fatalf("re-encode not idempotent: %q -> %q", s, enc)
		}
	})
}

// FuzzParsePrefix checks that stream parsing never panics and always
// consumes forward progress or fails.
func FuzzParsePrefix(f *testing.F) {
	f.Add("a x=1; b y=2; c;")
	f.Add(";;;")
	f.Fuzz(func(t *testing.T, s string) {
		rest := s
		for i := 0; i < 100 && rest != ""; i++ {
			c, r, err := ParsePrefix(rest)
			if err != nil {
				return
			}
			if c == nil {
				t.Fatal("nil command without error")
			}
			if len(r) >= len(rest) {
				t.Fatalf("no forward progress on %q", rest)
			}
			rest = r
		}
	})
}
