package cmdlang

import (
	"fmt"
	"sort"
	"strings"
)

// ArgSpec declares one argument of a command's semantics: its name,
// expected kind, and whether it must be present.
type ArgSpec struct {
	Name     string
	Kind     Kind
	Required bool
	Doc      string
}

// CommandSpec declares the semantics of one command understood by a
// service daemon: the command name, its argument specs, and whether
// arguments outside the declared set are tolerated.
type CommandSpec struct {
	Name       string
	Args       []ArgSpec
	Doc        string
	AllowExtra bool
}

// Arg returns the spec for the named argument, if declared.
func (s *CommandSpec) Arg(name string) (ArgSpec, bool) {
	for _, a := range s.Args {
		if a.Name == name {
			return a, true
		}
	}
	return ArgSpec{}, false
}

// SemanticError reports a command that is syntactically valid but
// violates the receiving daemon's command semantics.
type SemanticError struct {
	Command string
	Msg     string
}

func (e *SemanticError) Error() string {
	return fmt.Sprintf("cmdlang: semantic error in %q: %s", e.Command, e.Msg)
}

// Registry holds the command semantics of one service daemon. Each
// unique daemon implementation defines a set of command and argument
// semantics within the basic language structure; the registry is what
// the ACE Command Parser checks reconstructed commands against.
//
// A Registry is safe for concurrent reads after Declare calls finish.
type Registry struct {
	cmds map[string]*CommandSpec
}

// NewRegistry returns an empty semantics registry.
func NewRegistry() *Registry {
	return &Registry{cmds: make(map[string]*CommandSpec)}
}

// Declare adds a command spec to the registry, replacing any previous
// declaration of the same name. It returns the registry for chaining.
func (r *Registry) Declare(spec CommandSpec) *Registry {
	if !IsWord(spec.Name) {
		panic(fmt.Sprintf("cmdlang: declared command name %q is not a word", spec.Name))
	}
	cp := spec
	cp.Args = append([]ArgSpec(nil), spec.Args...)
	r.cmds[spec.Name] = &cp
	return r
}

// DeclareAll declares several specs at once.
func (r *Registry) DeclareAll(specs ...CommandSpec) *Registry {
	for _, s := range specs {
		r.Declare(s)
	}
	return r
}

// Merge copies every declaration from o into r (o wins on conflict),
// supporting the daemon hierarchy: child daemons inherit the parent's
// command semantics and extend them.
func (r *Registry) Merge(o *Registry) *Registry {
	for name, spec := range o.cmds {
		r.cmds[name] = spec
	}
	return r
}

// Clone returns a copy of the registry that can be extended without
// affecting the original — the mechanism behind hierarchy inheritance.
func (r *Registry) Clone() *Registry {
	n := NewRegistry()
	n.Merge(r)
	return n
}

// Lookup returns the spec for the named command.
func (r *Registry) Lookup(name string) (*CommandSpec, bool) {
	s, ok := r.cmds[name]
	return s, ok
}

// Names returns the declared command names, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.cmds))
	for name := range r.cmds {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of declared commands.
func (r *Registry) Len() int { return len(r.cmds) }

// Validate checks a command line against the registry: the command
// must be declared, required arguments present, kinds compatible, and
// (unless AllowExtra) no undeclared arguments supplied.
//
// Kind compatibility is pragmatic, matching the loosely typed textual
// wire form: an int argument satisfies a float spec; a word satisfies
// a string spec and vice versa when the content is a legal word;
// numeric words satisfy numeric specs.
func (r *Registry) Validate(c *CmdLine) error {
	spec, ok := r.cmds[c.Name()]
	if !ok {
		return &SemanticError{Command: c.Name(), Msg: "unknown command"}
	}
	for _, as := range spec.Args {
		v, present := c.Get(as.Name)
		if !present {
			if as.Required {
				return &SemanticError{Command: c.Name(), Msg: fmt.Sprintf("missing required argument %q", as.Name)}
			}
			continue
		}
		if !kindCompatible(as.Kind, v) {
			return &SemanticError{
				Command: c.Name(),
				Msg:     fmt.Sprintf("argument %q: got %v, want %v", as.Name, v.Kind(), as.Kind),
			}
		}
	}
	if !spec.AllowExtra {
		for _, a := range c.Args() {
			if _, declared := spec.Arg(a.Name); !declared {
				return &SemanticError{Command: c.Name(), Msg: fmt.Sprintf("undeclared argument %q", a.Name)}
			}
		}
	}
	return nil
}

// Parse parses the string and validates the result against the
// registry, mirroring the receiving daemon's behaviour in Fig 5.
func (r *Registry) Parse(s string) (*CmdLine, error) {
	c, err := Parse(s)
	if err != nil {
		return nil, err
	}
	if err := r.Validate(c); err != nil {
		return nil, err
	}
	return c, nil
}

func kindCompatible(want Kind, v Value) bool {
	got := v.Kind()
	if want == got {
		return true
	}
	switch want {
	case KindFloat:
		if got == KindInt {
			return true
		}
		_, ok := v.AsFloat()
		return ok && (got == KindWord || got == KindString)
	case KindInt:
		_, ok := v.AsInt()
		return ok && (got == KindWord || got == KindString)
	case KindString:
		return got == KindWord || got == KindInt || got == KindFloat
	case KindWord:
		return got == KindString && IsWord(v.AsString())
	case KindVector:
		return false
	case KindArray:
		return false
	}
	return false
}

// Describe renders a human-readable summary of the registry, used by
// the built-in "commands" command and acectl.
func (r *Registry) Describe() string {
	var b strings.Builder
	for _, name := range r.Names() {
		spec := r.cmds[name]
		b.WriteString(name)
		for _, a := range spec.Args {
			b.WriteByte(' ')
			if !a.Required {
				b.WriteByte('[')
			}
			b.WriteString(a.Name)
			b.WriteByte(':')
			b.WriteString(a.Kind.String())
			if !a.Required {
				b.WriteByte(']')
			}
		}
		if spec.Doc != "" {
			b.WriteString("  — ")
			b.WriteString(spec.Doc)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
