package cmdlang

import (
	"fmt"
	"sort"
	"strings"
)

// CmdLine is the ACECmdLine object: a command name plus an ordered
// list of named, typed arguments. Every command issued to an ACE
// service is first built as a CmdLine, rendered to a string with
// String, transmitted, and reconstructed by Parse on the far side.
//
// The zero CmdLine is not usable; construct with New.
type CmdLine struct {
	name  string
	args  []Arg
	index map[string]int
}

// Arg is a single named argument of a command line.
type Arg struct {
	Name  string
	Value Value
}

// New returns a CmdLine for the given command name. The name must be
// a legal word; New panics otherwise since command names are always
// program constants.
func New(name string) *CmdLine {
	if !IsWord(name) {
		panic(fmt.Sprintf("cmdlang: command name %q is not a word", name))
	}
	return &CmdLine{name: name, index: make(map[string]int)}
}

// Name returns the command name.
func (c *CmdLine) Name() string { return c.name }

// Set adds or replaces the named argument and returns c for chaining.
// Argument names must be legal words.
func (c *CmdLine) Set(name string, v Value) *CmdLine {
	if !IsWord(name) {
		panic(fmt.Sprintf("cmdlang: argument name %q is not a word", name))
	}
	if i, ok := c.index[name]; ok {
		c.args[i].Value = v
		return c
	}
	c.index[name] = len(c.args)
	c.args = append(c.args, Arg{Name: name, Value: v})
	return c
}

// SetInt is shorthand for Set(name, Int(v)).
func (c *CmdLine) SetInt(name string, v int64) *CmdLine { return c.Set(name, Int(v)) }

// SetFloat is shorthand for Set(name, Float(v)).
func (c *CmdLine) SetFloat(name string, v float64) *CmdLine { return c.Set(name, Float(v)) }

// SetWord is shorthand for Set(name, Word(v)).
func (c *CmdLine) SetWord(name, v string) *CmdLine { return c.Set(name, Word(v)) }

// SetString is shorthand for Set(name, String(v)).
func (c *CmdLine) SetString(name, v string) *CmdLine { return c.Set(name, String(v)) }

// SetBool is shorthand for Set(name, Bool(v)).
func (c *CmdLine) SetBool(name string, v bool) *CmdLine { return c.Set(name, Bool(v)) }

// Get returns the named argument value.
func (c *CmdLine) Get(name string) (Value, bool) {
	i, ok := c.index[name]
	if !ok {
		return Value{}, false
	}
	return c.args[i].Value, true
}

// Has reports whether the named argument is present.
func (c *CmdLine) Has(name string) bool {
	_, ok := c.index[name]
	return ok
}

// Int returns the named argument as an int64, with def as fallback.
func (c *CmdLine) Int(name string, def int64) int64 {
	if v, ok := c.Get(name); ok {
		if n, ok := v.AsInt(); ok {
			return n
		}
	}
	return def
}

// Float returns the named argument as a float64, with def as fallback.
func (c *CmdLine) Float(name string, def float64) float64 {
	if v, ok := c.Get(name); ok {
		if f, ok := v.AsFloat(); ok {
			return f
		}
	}
	return def
}

// Str returns the named argument's textual content, with def as
// fallback.
func (c *CmdLine) Str(name, def string) string {
	if v, ok := c.Get(name); ok {
		return v.AsString()
	}
	return def
}

// Bool returns the named argument as a boolean, with def as fallback.
func (c *CmdLine) Bool(name string, def bool) bool {
	if v, ok := c.Get(name); ok {
		if b, ok := v.AsBool(); ok {
			return b
		}
	}
	return def
}

// Vector returns the elements of the named vector argument, or nil.
func (c *CmdLine) Vector(name string) []Value {
	if v, ok := c.Get(name); ok {
		return v.Elems()
	}
	return nil
}

// Strings returns the elements of the named vector as strings.
func (c *CmdLine) Strings(name string) []string {
	elems := c.Vector(name)
	if elems == nil {
		return nil
	}
	out := make([]string, len(elems))
	for i, e := range elems {
		out[i] = e.AsString()
	}
	return out
}

// Del removes the named argument if present.
func (c *CmdLine) Del(name string) {
	i, ok := c.index[name]
	if !ok {
		return
	}
	c.args = append(c.args[:i], c.args[i+1:]...)
	delete(c.index, name)
	for j := i; j < len(c.args); j++ {
		c.index[c.args[j].Name] = j
	}
}

// Args returns the arguments in insertion order. The slice is shared;
// callers must not modify it.
func (c *CmdLine) Args() []Arg { return c.args }

// NumArgs returns the argument count.
func (c *CmdLine) NumArgs() int { return len(c.args) }

// ArgNames returns the argument names in insertion order.
func (c *CmdLine) ArgNames() []string {
	out := make([]string, len(c.args))
	for i, a := range c.args {
		out[i] = a.Name
	}
	return out
}

// SortedArgNames returns the argument names sorted lexically; useful
// for deterministic diagnostics.
func (c *CmdLine) SortedArgNames() []string {
	out := c.ArgNames()
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the command line.
func (c *CmdLine) Clone() *CmdLine {
	n := New(c.name)
	for _, a := range c.args {
		n.Set(a.Name, a.Value)
	}
	return n
}

// Equal reports whether two command lines have the same name and the
// same arguments with equal values, ignoring argument order.
func (c *CmdLine) Equal(o *CmdLine) bool {
	if c == nil || o == nil {
		return c == o
	}
	if c.name != o.name || len(c.args) != len(o.args) {
		return false
	}
	for _, a := range c.args {
		ov, ok := o.Get(a.Name)
		if !ok || !a.Value.Equal(ov) {
			return false
		}
	}
	return true
}

// String renders the command line in the ACE textual grammar,
// terminated by ';'. The result parses back to an equal CmdLine.
func (c *CmdLine) String() string {
	var b strings.Builder
	b.WriteString(c.name)
	for _, a := range c.args {
		b.WriteByte(' ')
		b.WriteString(a.Name)
		b.WriteByte('=')
		a.Value.encode(&b)
	}
	b.WriteByte(';')
	return b.String()
}

// Validate checks every argument value's structural invariants.
func (c *CmdLine) Validate() error {
	if !IsWord(c.name) {
		return fmt.Errorf("cmdlang: command name %q is not a word", c.name)
	}
	for _, a := range c.args {
		if err := a.Value.Validate(); err != nil {
			return fmt.Errorf("cmdlang: argument %q: %w", a.Name, err)
		}
	}
	return nil
}
