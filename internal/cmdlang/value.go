// Package cmdlang implements the ACE service command language: the
// typed values, the ACECmdLine command object, the wire (string)
// encoding, the parser, and the per-daemon command semantics registry.
//
// The language follows the grammar given in the ACE architecture
// report (§2.2):
//
//	<CMND>     := <CMNDNAME><space>[<ARGLIST>];
//	<ARGUMENT> := <ARGNAME>'='<ARGVALUE>
//	<ARGVALUE> := <INTEGER>|<FLOAT>|<WORD>|<STRING>|<VECTOR>|<ARRAY>
//
// Commands are built as CmdLine objects, rendered to a compact textual
// string, transmitted, and re-parsed on the receiving side, optionally
// validated against the receiver's command semantics (Registry).
package cmdlang

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind identifies the type of a Value. The ACE language has four
// scalar kinds plus homogeneous vectors and arrays of vectors.
type Kind int

const (
	// KindInvalid is the zero Kind; no valid Value has it.
	KindInvalid Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit IEEE float.
	KindFloat
	// KindWord is a contiguous run of alphanumerics and underscores.
	KindWord
	// KindString is an arbitrary printable string (quoted on the wire).
	KindString
	// KindVector is a homogeneous sequence of scalar values.
	KindVector
	// KindArray is a sequence of vectors.
	KindArray
)

// String returns the lower-case name of the kind as used in command
// semantics declarations ("int", "float", "word", "string", "vector",
// "array").
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindWord:
		return "word"
	case KindString:
		return "string"
	case KindVector:
		return "vector"
	case KindArray:
		return "array"
	default:
		return "invalid"
	}
}

// KindFromString is the inverse of Kind.String. It returns KindInvalid
// for unknown names.
func KindFromString(s string) Kind {
	switch s {
	case "int":
		return KindInt
	case "float":
		return KindFloat
	case "word":
		return KindWord
	case "string":
		return KindString
	case "vector":
		return KindVector
	case "array":
		return KindArray
	default:
		return KindInvalid
	}
}

// Value is one ACE command-language value. The zero Value is invalid;
// construct values with Int, Float, Word, String, Vector, or Array.
// Values are immutable once constructed.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	vec  []Value // vector: scalar elements; array: vector elements
}

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a float value. NaN and infinities are not expressible
// in the textual grammar; they are clamped to zero.
func Float(v float64) Value {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		v = 0
	}
	return Value{kind: KindFloat, f: v}
}

// Bool returns the conventional ACE encoding of a boolean: the words
// "true" and "false".
func Bool(v bool) Value {
	if v {
		return Word("true")
	}
	return Word("false")
}

// Word returns a word value. If s is not a valid word (empty, or
// contains characters outside [A-Za-z0-9_]), it is returned as a
// String value instead, so the round-trip stays lossless.
func Word(s string) Value {
	if !IsWord(s) {
		return String(s)
	}
	return Value{kind: KindWord, s: s}
}

// String returns a string value. Arbitrary contents are permitted;
// the encoder escapes quotes, backslashes, and control characters.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Vector returns a vector value from scalar elements. All elements
// must be scalars of the same kind; offending elements degrade the
// whole construction to an error sentinel caught by Validate. The
// empty vector is legal.
func Vector(elems ...Value) Value {
	cp := make([]Value, len(elems))
	copy(cp, elems)
	return Value{kind: KindVector, vec: cp}
}

// IntVector builds a vector of integers.
func IntVector(vs ...int64) Value {
	elems := make([]Value, len(vs))
	for i, v := range vs {
		elems[i] = Int(v)
	}
	return Value{kind: KindVector, vec: elems}
}

// FloatVector builds a vector of floats.
func FloatVector(vs ...float64) Value {
	elems := make([]Value, len(vs))
	for i, v := range vs {
		elems[i] = Float(v)
	}
	return Value{kind: KindVector, vec: elems}
}

// WordVector builds a vector of words.
func WordVector(vs ...string) Value {
	elems := make([]Value, len(vs))
	for i, v := range vs {
		elems[i] = Word(v)
	}
	return Value{kind: KindVector, vec: elems}
}

// StringVector builds a vector of strings.
func StringVector(vs ...string) Value {
	elems := make([]Value, len(vs))
	for i, v := range vs {
		elems[i] = String(v)
	}
	return Value{kind: KindVector, vec: elems}
}

// Array returns an array value from vector elements. Every element
// must itself be a vector. The empty array is indistinguishable from
// the empty vector in the textual grammar ("{}"), so it canonicalizes
// to the empty vector.
func Array(vectors ...Value) Value {
	if len(vectors) == 0 {
		return Vector()
	}
	cp := make([]Value, len(vectors))
	copy(cp, vectors)
	return Value{kind: KindArray, vec: cp}
}

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether the value was properly constructed.
func (v Value) IsValid() bool { return v.kind != KindInvalid }

// AsInt returns the integer content. Floats are truncated; words and
// strings are parsed if they look numeric. ok is false otherwise.
func (v Value) AsInt() (val int64, ok bool) {
	switch v.kind {
	case KindInt:
		return v.i, true
	case KindFloat:
		return int64(v.f), true
	case KindWord, KindString:
		n, err := strconv.ParseInt(v.s, 10, 64)
		return n, err == nil
	default:
		return 0, false
	}
}

// AsFloat returns the float content, converting ints and numeric
// words/strings. ok is false otherwise.
func (v Value) AsFloat() (val float64, ok bool) {
	switch v.kind {
	case KindFloat:
		return v.f, true
	case KindInt:
		return float64(v.i), true
	case KindWord, KindString:
		f, err := strconv.ParseFloat(v.s, 64)
		return f, err == nil
	default:
		return 0, false
	}
}

// AsString returns the textual content of a word or string value, or
// the rendered form of any other value.
func (v Value) AsString() string {
	switch v.kind {
	case KindWord, KindString:
		return v.s
	default:
		return v.Encode()
	}
}

// AsBool interprets the conventional boolean words. ok is false when
// the value is not a recognizable boolean.
func (v Value) AsBool() (val, ok bool) {
	switch strings.ToLower(v.AsString()) {
	case "true", "yes", "on", "1":
		return true, true
	case "false", "no", "off", "0":
		return false, true
	}
	return false, false
}

// Elems returns the elements of a vector or array value (nil for
// scalars). The returned slice must not be modified.
func (v Value) Elems() []Value {
	if v.kind == KindVector || v.kind == KindArray {
		return v.vec
	}
	return nil
}

// Len returns the element count of a vector or array, 0 for scalars.
func (v Value) Len() int { return len(v.Elems()) }

// Equal reports deep equality of two values, including kind.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindInt:
		return v.i == o.i
	case KindFloat:
		return v.f == o.f
	case KindWord, KindString:
		return v.s == o.s
	case KindVector, KindArray:
		if len(v.vec) != len(o.vec) {
			return false
		}
		for i := range v.vec {
			if !v.vec[i].Equal(o.vec[i]) {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// Validate checks the structural invariants of the value: vectors are
// homogeneous and contain only scalars; arrays contain only vectors.
func (v Value) Validate() error {
	switch v.kind {
	case KindInvalid:
		return fmt.Errorf("cmdlang: invalid value")
	case KindVector:
		var elemKind Kind
		for i, e := range v.vec {
			switch e.kind {
			case KindInt, KindFloat, KindWord, KindString:
			default:
				return fmt.Errorf("cmdlang: vector element %d has non-scalar kind %v", i, e.kind)
			}
			if elemKind == KindInvalid {
				elemKind = e.kind
			} else if e.kind != elemKind {
				return fmt.Errorf("cmdlang: vector is not homogeneous: element %d is %v, expected %v", i, e.kind, elemKind)
			}
		}
		return nil
	case KindArray:
		for i, e := range v.vec {
			if e.kind != KindVector {
				return fmt.Errorf("cmdlang: array element %d is %v, not vector", i, e.kind)
			}
			if err := e.Validate(); err != nil {
				return fmt.Errorf("cmdlang: array element %d: %w", i, err)
			}
		}
		return nil
	default:
		return nil
	}
}

// Encode renders the value in the ACE textual grammar.
func (v Value) Encode() string {
	var b strings.Builder
	v.encode(&b)
	return b.String()
}

func (v Value) encode(b *strings.Builder) {
	switch v.kind {
	case KindInt:
		b.WriteString(strconv.FormatInt(v.i, 10))
	case KindFloat:
		s := strconv.FormatFloat(v.f, 'g', -1, 64)
		b.WriteString(s)
		// A float must stay lexically distinct from an integer.
		if !strings.ContainsAny(s, ".eE") {
			b.WriteString(".0")
		}
	case KindWord:
		b.WriteString(v.s)
	case KindString:
		quoteString(b, v.s)
	case KindVector, KindArray:
		b.WriteByte('{')
		for i, e := range v.vec {
			if i > 0 {
				b.WriteByte(',')
			}
			e.encode(b)
		}
		b.WriteByte('}')
	}
}

func quoteString(b *strings.Builder, s string) {
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
}

// IsWord reports whether s is a legal <WORD>: a non-empty run of
// ASCII letters, digits, and underscores that does not begin with a
// digit or sign (so words never collide lexically with numbers).
func IsWord(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
