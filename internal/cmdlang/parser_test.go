package cmdlang

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, s string) *CmdLine {
	t.Helper()
	c, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return c
}

func TestParseBareCommand(t *testing.T) {
	c := mustParse(t, "ping;")
	if c.Name() != "ping" || c.NumArgs() != 0 {
		t.Fatalf("got %v", c)
	}
}

func TestParseWhitespaceTolerance(t *testing.T) {
	c := mustParse(t, "  move \t x=1   y=2\n z=3 ;")
	if c.Name() != "move" || c.Int("x", 0) != 1 || c.Int("y", 0) != 2 || c.Int("z", 0) != 3 {
		t.Fatalf("got %v", c)
	}
}

func TestParseCommaSeparatedArgs(t *testing.T) {
	c := mustParse(t, "move x=1,y=2, z=3;")
	if c.Int("x", 0) != 1 || c.Int("y", 0) != 2 || c.Int("z", 0) != 3 {
		t.Fatalf("got %v", c)
	}
}

func TestParseScalarKinds(t *testing.T) {
	c := mustParse(t, `set i=-42 f=3.25 w=hello s="hello world" e=1e3 neg=-0.5;`)
	cases := []struct {
		arg  string
		kind Kind
	}{
		{"i", KindInt}, {"f", KindFloat}, {"w", KindWord},
		{"s", KindString}, {"e", KindFloat}, {"neg", KindFloat},
	}
	for _, tc := range cases {
		v, ok := c.Get(tc.arg)
		if !ok || v.Kind() != tc.kind {
			t.Errorf("arg %s: kind=%v ok=%v, want %v", tc.arg, v.Kind(), ok, tc.kind)
		}
	}
	if c.Int("i", 0) != -42 {
		t.Errorf("i=%d", c.Int("i", 0))
	}
	if c.Float("f", 0) != 3.25 {
		t.Errorf("f=%g", c.Float("f", 0))
	}
	if c.Str("s", "") != "hello world" {
		t.Errorf("s=%q", c.Str("s", ""))
	}
	if c.Float("e", 0) != 1000 {
		t.Errorf("e=%g", c.Float("e", 0))
	}
}

func TestParseStringEscapes(t *testing.T) {
	c := mustParse(t, `log msg="a \"b\" \\ \n\t\r end";`)
	want := "a \"b\" \\ \n\t\r end"
	if got := c.Str("msg", ""); got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestParseVectors(t *testing.T) {
	c := mustParse(t, `set iv={1,2,3} fv={1.5,2.5} wv={a,b,c} sv={"x y","z"} ev={};`)
	if got := c.Vector("iv"); len(got) != 3 || got[2].Kind() != KindInt {
		t.Fatalf("iv=%v", got)
	}
	if got := c.Vector("fv"); len(got) != 2 || got[0].Kind() != KindFloat {
		t.Fatalf("fv=%v", got)
	}
	if got := c.Strings("wv"); strings.Join(got, "") != "abc" {
		t.Fatalf("wv=%v", got)
	}
	if got := c.Strings("sv"); got[0] != "x y" {
		t.Fatalf("sv=%v", got)
	}
	if got := c.Vector("ev"); len(got) != 0 {
		t.Fatalf("ev=%v", got)
	}
}

func TestParseArray(t *testing.T) {
	c := mustParse(t, "mat m={{1,2},{3,4},{5,6}};")
	m, _ := c.Get("m")
	if m.Kind() != KindArray || m.Len() != 3 {
		t.Fatalf("m=%v", m)
	}
	row := m.Elems()[1]
	if row.Kind() != KindVector {
		t.Fatalf("row kind %v", row.Kind())
	}
	if n, _ := row.Elems()[0].AsInt(); n != 3 {
		t.Fatalf("row[0]=%v", row.Elems()[0])
	}
}

func TestParseHeterogeneousVectorRejected(t *testing.T) {
	if _, err := Parse(`set v={1,a};`); err == nil {
		t.Fatal("want error for heterogeneous vector")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                 // empty
		";",                // no name
		"cmd",              // missing semicolon
		"cmd x=;",          // missing value
		"cmd x;",           // missing '='
		"cmd =1;",          // missing name
		`cmd s="abc;`,      // unterminated string
		"cmd v={1,2;",      // unterminated vector
		"cmd x=1 x=2;",     // duplicate arg
		"cmd a=1; extra",   // trailing garbage
		"cmd x=@;",         // bad char
		`cmd s="a\q";`,     // bad escape
		"cmd a={{1},2};",   // array mixing vector and scalar
		"1cmd a=1;",        // name starts with digit
		"cmd a={{1},{a}};", // fine per-vector but let's check homogeneous arrays allowed
	}
	for _, s := range bad[:len(bad)-1] {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q): want error, got nil", s)
		}
	}
	// Arrays of differently-typed vectors are allowed (each vector is
	// internally homogeneous).
	if _, err := Parse(bad[len(bad)-1]); err != nil {
		t.Errorf("Parse(%q): %v", bad[len(bad)-1], err)
	}
}

func TestParseErrorOffset(t *testing.T) {
	_, err := Parse("cmd x=@;")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("want *ParseError, got %T", err)
	}
	if pe.Offset != 6 {
		t.Fatalf("offset=%d want 6", pe.Offset)
	}
}

func TestParsePrefixStream(t *testing.T) {
	input := "a x=1; b y=2;  c;"
	var names []string
	rest := input
	for strings.TrimSpace(rest) != "" {
		c, r, err := ParsePrefix(rest)
		if err != nil {
			t.Fatalf("ParsePrefix(%q): %v", rest, err)
		}
		names = append(names, c.Name())
		rest = r
	}
	if strings.Join(names, ",") != "a,b,c" {
		t.Fatalf("names=%v", names)
	}
}

func TestParseIntOverflowDegradesToFloat(t *testing.T) {
	c := mustParse(t, "big n=99999999999999999999999999;")
	v, _ := c.Get("n")
	if v.Kind() != KindFloat {
		t.Fatalf("kind=%v want float", v.Kind())
	}
}

func TestRoundTripExamples(t *testing.T) {
	cmds := []*CmdLine{
		New("ping"),
		New("move").SetInt("x", 5).SetFloat("y", -2.75).SetWord("mode", "fast"),
		New("say").SetString("text", `she said "hi"`+"\n\\done"),
		New("cfg").Set("dims", IntVector(640, 480)).Set("rates", FloatVector(29.97, 30)),
		New("mat").Set("m", Array(IntVector(1, 2), IntVector(3, 4))),
		New("mix").Set("names", StringVector("a b", "c")).SetBool("on", true),
		New("empty").Set("v", Vector()),
	}
	for _, c := range cmds {
		s := c.String()
		back, err := Parse(s)
		if err != nil {
			t.Errorf("Parse(%q): %v", s, err)
			continue
		}
		if !c.Equal(back) {
			t.Errorf("round trip mismatch: %v -> %q -> %v", c, s, back)
		}
	}
}
