package cmdlang

import (
	"errors"
	"time"
)

// Return commands: the ACE convention for replying to an attempted
// command. A reply is itself a command line named "ok" or "fail",
// correlated to its request by the "seq" argument, which the daemon
// runtime copies from request to reply.

const (
	// ReplyOKName is the command name of a successful return command.
	ReplyOKName = "ok"
	// ReplyFailName is the command name of a failed return command.
	ReplyFailName = "fail"
	// SeqArg is the request/reply correlation argument.
	SeqArg = "seq"
	// ErrorArg carries the failure description on a "fail" reply.
	ErrorArg = "error"
	// CodeArg carries a machine-readable failure code on a "fail" reply.
	CodeArg = "code"
	// RetryAfterArg carries the server's suggested retry delay in
	// milliseconds on a "busy" fail reply.
	RetryAfterArg = "retry_after"
)

// Failure codes carried in the CodeArg of "fail" replies.
const (
	CodeUnknownCommand = "unknown_command"
	CodeBadArgument    = "bad_argument"
	CodeDenied         = "denied"
	CodeNotFound       = "not_found"
	CodeConflict       = "conflict"
	CodeInternal       = "internal"
	CodeUnavailable    = "unavailable"
	// CodeBusy is the admission-control push-back: the daemon shed the
	// command instead of queueing it. Unlike every other code it is
	// retryable — the command was never executed, so clients retry with
	// backoff, honoring the reply's retry_after hint when present.
	CodeBusy = "busy"
	// CodeWrongGroup is the placement redirect: the daemon is not (or
	// no longer) responsible for the addressed partition, or the
	// request's placement epoch predates the partition's last routing
	// change. The command was not executed. It is retryable — but at
	// the routing layer, not the transport layer: the caller must
	// refresh its placement map and re-route, so the pool returns it
	// immediately without charging the circuit breaker.
	CodeWrongGroup = "wrong_group"
)

// OK builds a successful return command. Result arguments are added
// by the caller with Set.
func OK() *CmdLine { return New(ReplyOKName) }

// Fail builds a failed return command carrying the error text and a
// machine-readable code.
func Fail(code, msg string) *CmdLine {
	return New(ReplyFailName).SetWord(CodeArg, code).SetString(ErrorArg, msg)
}

// FailErr builds a failed return command from a Go error, mapping
// known error types to codes.
func FailErr(err error) *CmdLine {
	code := CodeInternal
	var sem *SemanticError
	var pe *ParseError
	switch {
	case errors.As(err, &sem):
		code = CodeBadArgument
	case errors.As(err, &pe):
		code = CodeBadArgument
	}
	return Fail(code, err.Error())
}

// Busy builds the overload push-back return command. A positive
// retryAfter is the server's hint for when capacity should be back;
// it rides along as retry_after in milliseconds (rounded up so a
// sub-millisecond hint does not encode as "retry immediately").
func Busy(retryAfter time.Duration) *CmdLine {
	c := Fail(CodeBusy, "server overloaded; retry later")
	if retryAfter > 0 {
		ms := (retryAfter + time.Millisecond - 1) / time.Millisecond
		c.SetInt(RetryAfterArg, int64(ms))
	}
	return c
}

// IsOK reports whether the command line is a successful return
// command.
func IsOK(c *CmdLine) bool { return c != nil && c.Name() == ReplyOKName }

// IsFail reports whether the command line is a failed return command.
func IsFail(c *CmdLine) bool { return c != nil && c.Name() == ReplyFailName }

// IsReply reports whether the command line is any return command.
func IsReply(c *CmdLine) bool { return IsOK(c) || IsFail(c) }

// ReplyError converts a "fail" return command into a Go error; it
// returns nil for "ok" replies.
func ReplyError(c *CmdLine) error {
	if c == nil {
		return errors.New("cmdlang: nil reply")
	}
	if IsOK(c) {
		return nil
	}
	if IsFail(c) {
		return &RemoteError{
			Code:       c.Str(CodeArg, CodeInternal),
			Msg:        c.Str(ErrorArg, "unspecified failure"),
			RetryAfter: time.Duration(c.Int(RetryAfterArg, 0)) * time.Millisecond,
		}
	}
	return errors.New("cmdlang: reply is not a return command: " + c.Name())
}

// RemoteError is a failure reported by the remote daemon through a
// "fail" return command.
type RemoteError struct {
	Code string
	Msg  string
	// RetryAfter is the server-suggested retry delay on CodeBusy
	// replies (zero when the server sent no hint).
	RetryAfter time.Duration
}

func (e *RemoteError) Error() string { return "ace: remote error (" + e.Code + "): " + e.Msg }

// IsRemoteCode reports whether err is a RemoteError with the given
// code.
func IsRemoteCode(err error, code string) bool {
	var re *RemoteError
	return errors.As(err, &re) && re.Code == code
}
