package cmdlang

import (
	"strings"
	"testing"
)

func ptzRegistry() *Registry {
	return NewRegistry().DeclareAll(
		CommandSpec{
			Name: "move",
			Doc:  "point the camera",
			Args: []ArgSpec{
				{Name: "x", Kind: KindFloat, Required: true},
				{Name: "y", Kind: KindFloat, Required: true},
				{Name: "z", Kind: KindFloat},
			},
		},
		CommandSpec{
			Name: "zoom",
			Args: []ArgSpec{{Name: "factor", Kind: KindFloat, Required: true}},
		},
		CommandSpec{Name: "power", Args: []ArgSpec{{Name: "on", Kind: KindWord, Required: true}}},
	)
}

func TestRegistryValidateOK(t *testing.T) {
	r := ptzRegistry()
	for _, s := range []string{
		"move x=1.5 y=2.5;",
		"move x=1 y=2 z=3;", // ints satisfy float specs
		"zoom factor=2.0;",
		"power on=true;",
	} {
		if _, err := r.Parse(s); err != nil {
			t.Errorf("Parse(%q): %v", s, err)
		}
	}
}

func TestRegistryValidateErrors(t *testing.T) {
	r := ptzRegistry()
	cases := []struct {
		in, want string
	}{
		{"fly x=1 y=2;", "unknown command"},
		{"move x=1;", `missing required argument "y"`},
		{"move x=1 y=2 q=3;", `undeclared argument "q"`},
		{"move x=hello y=2;", `argument "x"`},
		{"zoom factor={1,2};", `argument "factor"`},
	}
	for _, tc := range cases {
		_, err := r.Parse(tc.in)
		if err == nil {
			t.Errorf("Parse(%q): want error containing %q", tc.in, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q): err %q, want containing %q", tc.in, err, tc.want)
		}
	}
}

func TestRegistryAllowExtra(t *testing.T) {
	r := NewRegistry().Declare(CommandSpec{Name: "log", AllowExtra: true})
	if _, err := r.Parse("log anything=1 more=yes;"); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryNumericWordsSatisfyNumericSpecs(t *testing.T) {
	r := NewRegistry().Declare(CommandSpec{
		Name: "set",
		Args: []ArgSpec{
			{Name: "n", Kind: KindInt, Required: true},
			{Name: "s", Kind: KindString, Required: true},
		},
	})
	// A quoted numeric string satisfies an int spec; a word satisfies
	// a string spec.
	if _, err := r.Parse(`set n="42" s=word;`); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Parse(`set n="4x2" s=word;`); err == nil {
		t.Fatal("want kind error for non-numeric string in int slot")
	}
}

func TestRegistryInheritanceCloneMerge(t *testing.T) {
	// The daemon hierarchy (Fig 6): child daemons inherit parent
	// semantics and extend or override them.
	base := NewRegistry().DeclareAll(
		CommandSpec{Name: "ping"},
		CommandSpec{Name: "info"},
	)
	device := base.Clone().Declare(CommandSpec{
		Name: "power", Args: []ArgSpec{{Name: "on", Kind: KindWord, Required: true}},
	})
	ptz := device.Clone().Declare(CommandSpec{
		Name: "move", Args: []ArgSpec{{Name: "x", Kind: KindFloat, Required: true}},
	})

	if base.Len() != 2 || device.Len() != 3 || ptz.Len() != 4 {
		t.Fatalf("lens: %d %d %d", base.Len(), device.Len(), ptz.Len())
	}
	if _, ok := base.Lookup("power"); ok {
		t.Fatal("child declaration leaked into parent")
	}
	if _, err := ptz.Parse("ping;"); err != nil {
		t.Fatalf("inherited command rejected: %v", err)
	}

	// Override in a child replaces the parent spec.
	vcc4 := ptz.Clone().Declare(CommandSpec{
		Name: "move",
		Args: []ArgSpec{
			{Name: "x", Kind: KindFloat, Required: true},
			{Name: "speed", Kind: KindInt, Required: true},
		},
	})
	if _, err := vcc4.Parse("move x=1;"); err == nil {
		t.Fatal("override not applied")
	}
	if _, err := ptz.Parse("move x=1;"); err != nil {
		t.Fatalf("parent spec damaged by child override: %v", err)
	}
}

func TestRegistryDescribe(t *testing.T) {
	d := ptzRegistry().Describe()
	for _, want := range []string{"move", "x:float", "[z:float]", "point the camera"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe missing %q in:\n%s", want, d)
		}
	}
}

func TestReplyHelpers(t *testing.T) {
	okc := OK().SetInt(SeqArg, 7)
	if !IsOK(okc) || !IsReply(okc) || IsFail(okc) {
		t.Fatal("ok reply misclassified")
	}
	if err := ReplyError(okc); err != nil {
		t.Fatalf("ReplyError(ok)=%v", err)
	}

	f := Fail(CodeNotFound, "no such service")
	if !IsFail(f) || !IsReply(f) {
		t.Fatal("fail reply misclassified")
	}
	err := ReplyError(f)
	if err == nil || !IsRemoteCode(err, CodeNotFound) {
		t.Fatalf("ReplyError(fail)=%v", err)
	}
	if !strings.Contains(err.Error(), "no such service") {
		t.Fatalf("err=%v", err)
	}

	if err := ReplyError(New("notareply")); err == nil {
		t.Fatal("non-reply accepted")
	}
}

func TestFailErrMapsCodes(t *testing.T) {
	if c := FailErr(&SemanticError{Command: "x", Msg: "bad"}); c.Str(CodeArg, "") != CodeBadArgument {
		t.Fatalf("semantic error code=%s", c.Str(CodeArg, ""))
	}
	if c := FailErr(&ParseError{Offset: 0, Msg: "bad"}); c.Str(CodeArg, "") != CodeBadArgument {
		t.Fatalf("parse error code=%s", c.Str(CodeArg, ""))
	}
}

func TestCmdLineDelAndClone(t *testing.T) {
	c := New("a").SetInt("x", 1).SetInt("y", 2).SetInt("z", 3)
	cl := c.Clone()
	c.Del("y")
	if c.Has("y") || c.NumArgs() != 2 {
		t.Fatalf("Del failed: %v", c)
	}
	if c.Int("z", 0) != 3 {
		t.Fatal("index corrupted after Del")
	}
	if !cl.Has("y") {
		t.Fatal("Clone shares state with original")
	}
	c.Del("nonexistent") // no-op
}

func TestValueHelpers(t *testing.T) {
	if v, ok := Int(5).AsFloat(); !ok || v != 5 {
		t.Fatal("int as float")
	}
	if v, ok := Float(5.9).AsInt(); !ok || v != 5 {
		t.Fatal("float as int truncation")
	}
	if v, ok := Word("17").AsInt(); !ok || v != 17 {
		t.Fatal("numeric word as int")
	}
	if _, ok := Vector().AsInt(); ok {
		t.Fatal("vector as int should fail")
	}
	if b, ok := Word("yes").AsBool(); !ok || !b {
		t.Fatal("yes as bool")
	}
	if b, ok := Int(0).AsBool(); !ok || b {
		t.Fatal("0 as bool")
	}
	if _, ok := Word("maybe").AsBool(); ok {
		t.Fatal("maybe as bool should fail")
	}
	// Word() on a non-word degrades to String for losslessness.
	if Word("has space").Kind() != KindString {
		t.Fatal("Word with space should degrade to string")
	}
	if KindFromString("vector") != KindVector || KindFromString("junk") != KindInvalid {
		t.Fatal("KindFromString")
	}
}
