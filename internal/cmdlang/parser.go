package cmdlang

import (
	"fmt"
	"strconv"
	"strings"
	"unicode/utf8"
)

// ParseError describes a syntax error with its byte offset in the
// input string.
type ParseError struct {
	Offset int
	Msg    string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("cmdlang: parse error at offset %d: %s", e.Offset, e.Msg)
}

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokWord
	tokInt
	tokFloat
	tokString
	tokEquals
	tokComma
	tokLBrace
	tokRBrace
	tokSemi
)

type token struct {
	kind tokenKind
	text string // word/string content (unescaped), or number literal
	i    int64
	f    float64
	off  int
}

type lexer struct {
	src string
	pos int
}

func (l *lexer) errf(off int, format string, args ...any) *ParseError {
	return &ParseError{Offset: off, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case ' ', '\t', '\r', '\n':
			l.pos++
		default:
			return
		}
	}
}

func isWordByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next scans the next token.
func (l *lexer) next() (token, *ParseError) {
	l.skipSpace()
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, off: start}, nil
	}
	c := l.src[l.pos]
	switch c {
	case '=':
		l.pos++
		return token{kind: tokEquals, off: start}, nil
	case ',':
		l.pos++
		return token{kind: tokComma, off: start}, nil
	case '{':
		l.pos++
		return token{kind: tokLBrace, off: start}, nil
	case '}':
		l.pos++
		return token{kind: tokRBrace, off: start}, nil
	case ';':
		l.pos++
		return token{kind: tokSemi, off: start}, nil
	case '"':
		return l.lexString()
	}
	if c == '+' || c == '-' || isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])) {
		return l.lexNumber()
	}
	if isWordByte(c) {
		for l.pos < len(l.src) && isWordByte(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokWord, text: l.src[start:l.pos], off: start}, nil
	}
	return token{}, l.errf(start, "unexpected character %q", rune(c))
}

func (l *lexer) lexString() (token, *ParseError) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '"':
			l.pos++
			return token{kind: tokString, text: b.String(), off: start}, nil
		case '\\':
			if l.pos+1 >= len(l.src) {
				return token{}, l.errf(l.pos, "dangling escape at end of input")
			}
			l.pos++
			switch e := l.src[l.pos]; e {
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case 't':
				b.WriteByte('\t')
			default:
				return token{}, l.errf(l.pos, "unknown escape \\%c", e)
			}
			l.pos++
		default:
			r, size := utf8.DecodeRuneInString(l.src[l.pos:])
			b.WriteRune(r)
			l.pos += size
		}
	}
	return token{}, l.errf(start, "unterminated string")
}

func (l *lexer) lexNumber() (token, *ParseError) {
	start := l.pos
	if c := l.src[l.pos]; c == '+' || c == '-' {
		l.pos++
	}
	isFloat := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.':
			isFloat = true
			l.pos++
		case c == 'e' || c == 'E':
			isFloat = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			goto done
		}
	}
done:
	lit := l.src[start:l.pos]
	if isFloat {
		f, err := strconv.ParseFloat(lit, 64)
		if err != nil {
			return token{}, l.errf(start, "bad float literal %q", lit)
		}
		return token{kind: tokFloat, f: f, text: lit, off: start}, nil
	}
	i, err := strconv.ParseInt(lit, 10, 64)
	if err != nil {
		// Overflowing integers degrade to float, matching the
		// "any integer valued number" grammar pragmatically.
		f, ferr := strconv.ParseFloat(lit, 64)
		if ferr != nil {
			return token{}, l.errf(start, "bad integer literal %q", lit)
		}
		return token{kind: tokFloat, f: f, text: lit, off: start}, nil
	}
	return token{kind: tokInt, i: i, text: lit, off: start}, nil
}

// parser is the ACE Command Parser: it checks the incoming string for
// syntactic correctness and reconstructs the CmdLine object.
type parser struct {
	lex lexer
	tok token
}

func (p *parser) advance() *ParseError {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// Parse parses a single ACE command string (terminated by ';') into a
// CmdLine. Trailing input after the semicolon is an error; use
// ParsePrefix to parse streams.
func Parse(s string) (*CmdLine, error) {
	c, rest, err := ParsePrefix(s)
	if err != nil {
		return nil, err
	}
	if strings.TrimSpace(rest) != "" {
		return nil, &ParseError{Offset: len(s) - len(rest), Msg: "trailing input after command"}
	}
	return c, nil
}

// ParsePrefix parses one command from the front of s and returns the
// unconsumed remainder, allowing several commands to be concatenated
// in one buffer.
func ParsePrefix(s string) (*CmdLine, string, error) {
	p := &parser{lex: lexer{src: s}}
	if err := p.advance(); err != nil {
		return nil, "", err
	}
	if p.tok.kind != tokWord {
		return nil, "", &ParseError{Offset: p.tok.off, Msg: "expected command name"}
	}
	c := New(p.tok.text)
	if err := p.advance(); err != nil {
		return nil, "", err
	}
	for {
		switch p.tok.kind {
		case tokSemi:
			return c, s[p.lex.pos:], nil
		case tokComma:
			// Commas may separate arguments in the arg list.
			if err := p.advance(); err != nil {
				return nil, "", err
			}
			continue
		case tokWord:
			name := p.tok.text
			nameOff := p.tok.off
			if err := p.advance(); err != nil {
				return nil, "", err
			}
			if p.tok.kind != tokEquals {
				return nil, "", &ParseError{Offset: nameOff, Msg: fmt.Sprintf("argument %q missing '='", name)}
			}
			if err := p.advance(); err != nil {
				return nil, "", err
			}
			v, err := p.parseValue()
			if err != nil {
				return nil, "", err
			}
			if c.Has(name) {
				return nil, "", &ParseError{Offset: nameOff, Msg: fmt.Sprintf("duplicate argument %q", name)}
			}
			c.Set(name, v)
		case tokEOF:
			return nil, "", &ParseError{Offset: p.tok.off, Msg: "unterminated command (missing ';')"}
		default:
			return nil, "", &ParseError{Offset: p.tok.off, Msg: "expected argument name"}
		}
	}
}

// parseValue parses the token(s) of one <ARGVALUE> and leaves p.tok
// on the token following the value.
func (p *parser) parseValue() (Value, *ParseError) {
	switch p.tok.kind {
	case tokInt:
		v := Int(p.tok.i)
		return v, p.advance()
	case tokFloat:
		v := Float(p.tok.f)
		return v, p.advance()
	case tokWord:
		v := Word(p.tok.text)
		return v, p.advance()
	case tokString:
		v := String(p.tok.text)
		return v, p.advance()
	case tokLBrace:
		return p.parseBraced()
	default:
		return Value{}, &ParseError{Offset: p.tok.off, Msg: "expected value"}
	}
}

// parseBraced parses either a vector {s1,s2,...} or an array
// {{..},{..}} depending on the first inner token.
func (p *parser) parseBraced() (Value, *ParseError) {
	open := p.tok.off
	if err := p.advance(); err != nil {
		return Value{}, err
	}
	if p.tok.kind == tokRBrace { // empty vector
		return Vector(), p.advance()
	}
	if p.tok.kind == tokLBrace {
		// Array of vectors.
		var vecs []Value
		for {
			v, err := p.parseBraced()
			if err != nil {
				return Value{}, err
			}
			vecs = append(vecs, v)
			switch p.tok.kind {
			case tokComma:
				if err := p.advance(); err != nil {
					return Value{}, err
				}
			case tokRBrace:
				arr := Array(vecs...)
				if verr := arr.Validate(); verr != nil {
					return Value{}, &ParseError{Offset: open, Msg: verr.Error()}
				}
				return arr, p.advance()
			default:
				return Value{}, &ParseError{Offset: p.tok.off, Msg: "expected ',' or '}' in array"}
			}
		}
	}
	// Vector of scalars.
	var elems []Value
	for {
		v, err := p.parseValue()
		if err != nil {
			return Value{}, err
		}
		elems = append(elems, v)
		switch p.tok.kind {
		case tokComma:
			if err := p.advance(); err != nil {
				return Value{}, err
			}
		case tokRBrace:
			vec := Vector(elems...)
			if verr := vec.Validate(); verr != nil {
				return Value{}, &ParseError{Offset: open, Msg: verr.Error()}
			}
			return vec, p.advance()
		default:
			return Value{}, &ParseError{Offset: p.tok.off, Msg: "expected ',' or '}' in vector"}
		}
	}
}
