package cmdlang

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// randWord generates a legal <WORD>.
func randWord(r *rand.Rand) string {
	const first = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
	const rest = first + "0123456789"
	n := 1 + r.Intn(12)
	var b strings.Builder
	b.WriteByte(first[r.Intn(len(first))])
	for i := 1; i < n; i++ {
		b.WriteByte(rest[r.Intn(len(rest))])
	}
	return b.String()
}

// randString generates arbitrary printable-ish content including
// characters that need escaping.
func randString(r *rand.Rand) string {
	runes := []rune(`abc XYZ 0189 "\\{};=,._-+ éλ日` + "\n\t\r")
	n := r.Intn(20)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteRune(runes[r.Intn(len(runes))])
	}
	return b.String()
}

func randScalar(r *rand.Rand, kind Kind) Value {
	switch kind {
	case KindInt:
		return Int(r.Int63() - r.Int63())
	case KindFloat:
		f := math.Trunc(r.NormFloat64()*1e6) / 64
		return Float(f)
	case KindWord:
		return Word(randWord(r))
	default:
		return String(randString(r))
	}
}

func randVector(r *rand.Rand) Value {
	kind := []Kind{KindInt, KindFloat, KindWord, KindString}[r.Intn(4)]
	n := r.Intn(6)
	elems := make([]Value, n)
	for i := range elems {
		elems[i] = randScalar(r, kind)
	}
	return Vector(elems...)
}

func randValue(r *rand.Rand) Value {
	switch r.Intn(6) {
	case 0:
		return randScalar(r, KindInt)
	case 1:
		return randScalar(r, KindFloat)
	case 2:
		return randScalar(r, KindWord)
	case 3:
		return randScalar(r, KindString)
	case 4:
		return randVector(r)
	default:
		n := r.Intn(4)
		vecs := make([]Value, n)
		for i := range vecs {
			vecs[i] = randVector(r)
		}
		return Array(vecs...)
	}
}

func randCmdLine(r *rand.Rand) *CmdLine {
	c := New(randWord(r))
	n := r.Intn(8)
	for i := 0; i < n; i++ {
		c.Set(randWord(r), randValue(r))
	}
	return c
}

// TestQuickRoundTrip is the core property test: for any well-formed
// CmdLine, String() produces a string that Parse() reconstructs into
// an equal CmdLine (Fig 5's build → transmit → reconstruct loop is
// lossless).
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randCmdLine(r)
		s := c.String()
		back, err := Parse(s)
		if err != nil {
			t.Logf("seed %d: Parse(%q): %v", seed, s, err)
			return false
		}
		if !c.Equal(back) {
			t.Logf("seed %d: mismatch %q", seed, s)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickValueEncodeParse checks value-level encode/parse fidelity.
func TestQuickValueEncodeParse(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randValue(r)
		c := New("x").Set("v", v)
		back, err := Parse(c.String())
		if err != nil {
			return false
		}
		got, _ := back.Get("v")
		return v.Equal(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFloatFidelity: every float survives the textual encoding
// bit-exactly (FormatFloat 'g' -1 guarantees shortest exact form).
func TestQuickFloatFidelity(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true // not expressible, clamped by Float()
		}
		c := New("f").SetFloat("v", x)
		back, err := Parse(c.String())
		if err != nil {
			return false
		}
		got := back.Float("v", math.NaN())
		return got == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIntFidelity: every int64 survives encoding.
func TestQuickIntFidelity(t *testing.T) {
	f := func(x int64) bool {
		c := New("i").SetInt("v", x)
		back, err := Parse(c.String())
		if err != nil {
			return false
		}
		return back.Int("v", 0) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickStringFidelity: arbitrary (valid-UTF-8) strings survive
// quoting and unquoting.
func TestQuickStringFidelity(t *testing.T) {
	f := func(s string) bool {
		if !strings.Contains(strings.ToValidUTF8(s, ""), "") { // always true; keep s as-is
			return true
		}
		s = strings.ToValidUTF8(s, "�")
		c := New("s").SetString("v", s)
		back, err := Parse(c.String())
		if err != nil {
			return false
		}
		return back.Str("v", "") == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickParserNeverPanics feeds random byte soup to the parser and
// requires it to fail gracefully rather than panic.
func TestQuickParserNeverPanics(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		Parse(string(data))       //nolint:errcheck — errors are expected
		ParsePrefix(string(data)) //nolint:errcheck
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
