package cmdlang_test

import (
	"fmt"

	"ace/internal/cmdlang"
)

// ExampleParse shows the Fig 5 receiving side: a wire string becomes
// a CmdLine whose typed arguments are directly accessible.
func ExampleParse() {
	cmd, err := cmdlang.Parse(`move pan=45.5 tilt=-10.25 mode=fast;`)
	if err != nil {
		panic(err)
	}
	fmt.Println(cmd.Name())
	fmt.Println(cmd.Float("pan", 0))
	fmt.Println(cmd.Str("mode", ""))
	// Output:
	// move
	// 45.5
	// fast
}

// ExampleCmdLine_String shows the sending side: build a command
// object, render it for transmission.
func ExampleCmdLine_String() {
	cmd := cmdlang.New("register").
		SetWord("name", "ptz_cam_1").
		SetInt("port", 1225).
		Set("dims", cmdlang.IntVector(640, 480))
	fmt.Println(cmd.String())
	// Output:
	// register name=ptz_cam_1 port=1225 dims={640,480};
}

// ExampleRegistry_Parse shows semantic validation against a daemon's
// declared command set.
func ExampleRegistry_Parse() {
	reg := cmdlang.NewRegistry().Declare(cmdlang.CommandSpec{
		Name: "zoom",
		Args: []cmdlang.ArgSpec{{Name: "factor", Kind: cmdlang.KindFloat, Required: true}},
	})
	if _, err := reg.Parse("zoom factor=4;"); err != nil {
		panic(err)
	}
	_, err := reg.Parse("zoom;")
	fmt.Println(err)
	// Output:
	// cmdlang: semantic error in "zoom": missing required argument "factor"
}
