package experiments

import (
	"fmt"
	"sync"
	"time"

	"ace/internal/apps"
	"ace/internal/asd"
	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/pstore"
)

func init() {
	register("E10", "persistent store: replication, availability, recovery", RunE10)
	register("E13", "restart/robust application recovery time", RunE13)
}

// RunE10 reproduces Fig 17's claims: redundant storage keeps data
// available through one and two server failures, removes the
// single-server read bottleneck, and resynchronizes recovered nodes.
func RunE10() (*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   "persistent store: 1 vs 3 replicas",
		Source:  "Fig 17, §6",
		Columns: []string{"metric", "1 replica", "3 replicas"},
	}

	type result struct {
		putUs, getUs, getAnyUs float64
		parallelReadRate       float64
		maxNodeShare           float64 // fraction of reads served by the busiest node
	}
	run := func(n int) (result, error) {
		var res result
		cluster, err := pstore.StartCluster(n, "", 0)
		if err != nil {
			return res, err
		}
		defer cluster.StopAll()
		pool := daemon.NewPool(nil)
		defer pool.Close()
		client := pstore.NewClient(pool, cluster.Addrs())

		const items = 200
		putStart := time.Now()
		for i := 0; i < items; i++ {
			if _, err := client.Put(fmt.Sprintf("/e10/%03d", i), []byte("state-blob")); err != nil {
				return res, err
			}
		}
		res.putUs = float64(time.Since(putStart).Microseconds()) / items

		var getErr error
		res.getUs = float64(timeOp(500, func() {
			if _, _, _, err := client.Get("/e10/100"); err != nil && getErr == nil {
				getErr = err
			}
		})) / float64(time.Microsecond)
		res.getAnyUs = float64(timeOp(500, func() {
			if _, _, _, err := client.GetAny("/e10/100"); err != nil && getErr == nil {
				getErr = err
			}
		})) / float64(time.Microsecond)
		if getErr != nil {
			return res, getErr
		}

		// Bottleneck removal: many concurrent readers, each using
		// GetAny spread over its own replica-ordered client.
		const readers = 32
		const perReader = 300
		before := make([]int64, len(cluster.Nodes))
		for i, node := range cluster.Nodes {
			before[i] = node.Stats().CommandsOK
		}
		var wg sync.WaitGroup
		readErrs := make(chan error, readers)
		start := time.Now()
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				// Rotate the replica list so readers spread out.
				addrs := cluster.Addrs()
				rot := append(addrs[r%len(addrs):], addrs[:r%len(addrs)]...)
				p := daemon.NewPool(nil)
				defer p.Close()
				c := pstore.NewClient(p, rot)
				for i := 0; i < perReader; i++ {
					if _, _, _, err := c.GetAny(fmt.Sprintf("/e10/%03d", i%items)); err != nil {
						readErrs <- err
						return
					}
				}
			}(r)
		}
		wg.Wait()
		select {
		case err := <-readErrs:
			return res, err
		default:
		}
		res.parallelReadRate = float64(readers*perReader) / time.Since(start).Seconds()
		var total, max int64
		for i, node := range cluster.Nodes {
			served := node.Stats().CommandsOK - before[i]
			total += served
			if served > max {
				max = served
			}
		}
		if total > 0 {
			res.maxNodeShare = float64(max) / float64(total)
		}
		return res, nil
	}

	r1, err := run(1)
	if err != nil {
		return nil, err
	}
	r3, err := run(3)
	if err != nil {
		return nil, err
	}
	t.AddRow("put µs/op (quorum)", r1.putUs, r3.putUs)
	t.AddRow("get µs/op (quorum)", r1.getUs, r3.getUs)
	t.AddRow("get µs/op (any replica)", r1.getAnyUs, r3.getAnyUs)
	t.AddRow("32-reader throughput ops/s", r1.parallelReadRate, r3.parallelReadRate)
	t.AddRow("busiest node's share of reads",
		fmt.Sprintf("%.0f%%", 100*r1.maxNodeShare),
		fmt.Sprintf("%.0f%%", 100*r3.maxNodeShare))

	// Availability under crashes (3-replica cluster).
	cluster, err := pstore.StartCluster(3, "", 0)
	if err != nil {
		return nil, err
	}
	defer cluster.StopAll()
	pool := daemon.NewPool(nil)
	defer pool.Close()
	client := pstore.NewClient(pool, cluster.Addrs())
	if _, err := client.Put("/e10/avail", []byte("x")); err != nil {
		return nil, err
	}
	// Seed a realistic corpus so the recovery measurement below has
	// something to pull.
	const corpus = 300
	for i := 0; i < corpus; i++ {
		if _, err := client.Put(fmt.Sprintf("/e10/corpus/%03d", i), []byte("workspace-state-blob")); err != nil {
			return nil, err
		}
	}
	avail := func() (string, string) {
		_, _, qok, qerr := client.Get("/e10/avail")
		_, _, aok, aerr := client.GetAny("/e10/avail")
		q := "yes"
		if qerr != nil || !qok {
			q = "no"
		}
		a := "yes"
		if aerr != nil || !aok {
			a = "no"
		}
		return q, a
	}
	q0, a0 := avail()
	cluster.Nodes[0].Stop()
	q1, a1 := avail()
	cluster.Nodes[1].Stop()
	q2, a2 := avail()
	t.AddRow("quorum read available (0/1/2 crashes)", "-", fmt.Sprintf("%s/%s/%s", q0, q1, q2))
	t.AddRow("any-replica read available (0/1/2 crashes)", "-", fmt.Sprintf("%s/%s/%s", a0, a1, a2))

	// Recovery: a wiped replacement node resynchronizes via
	// anti-entropy from the surviving peer.
	fresh, err := pstore.NewNode(pstore.Config{Daemon: daemon.Config{Name: "e10fresh"}})
	if err != nil {
		return nil, err
	}
	if err := fresh.Start(); err != nil {
		return nil, err
	}
	defer fresh.Stop()
	fresh.SetPeers([]string{cluster.Nodes[2].Addr()})
	syncStart := time.Now()
	pulled := fresh.SyncAll()
	syncDur := time.Since(syncStart)
	t.AddRow("anti-entropy recovery", "-",
		fmt.Sprintf("%d items in %s (%.0f items/s)", pulled, syncDur.Round(time.Millisecond), float64(pulled)/syncDur.Seconds()))

	t.Notes = append(t.Notes,
		"expected shape: quorum ops cost more with 3 replicas; the read load spreads to ~1/3 per node (the bottleneck-removal claim) and reads survive 2 crashes",
		"on a single-core runner aggregate wall-clock throughput is CPU-bound; the per-node share row shows the bottleneck removal directly")
	return t, nil
}

// RunE13 measures §5.2/§5.3: how long a restart application is down
// before the watcher relaunches it, and how long a robust application
// takes to fail over with its state intact.
func RunE13() (*Table, error) {
	t := &Table{
		ID:      "E13",
		Title:   "application recovery times",
		Source:  "§5.2, §5.3, §6",
		Columns: []string{"application class", "trials", "recovery ms (mean)", "recovery ms (p95)", "state preserved"},
	}

	// Restart application: downtime from crash to re-resolvable.
	dir := asd.New(asd.Config{ReapInterval: 10 * time.Millisecond})
	if err := dir.Start(); err != nil {
		return nil, err
	}
	defer dir.Stop()
	makeApp := func() *daemon.Daemon {
		return daemon.New(daemon.Config{Name: "e13app", ASDAddr: dir.Addr(), LeaseTTL: 50 * time.Millisecond})
	}
	watcher := apps.NewWatcher(apps.WatcherConfig{ASDAddr: dir.Addr(), Interval: 10 * time.Millisecond})
	app := makeApp()
	if err := app.Start(); err != nil {
		return nil, err
	}
	watcher.Watch(apps.Spec{
		Name:  "e13app",
		Class: apps.Restart,
		Factory: func() (apps.Startable, error) {
			a := makeApp()
			return a, nil
		},
	}, app)
	if err := watcher.Start(); err != nil {
		return nil, err
	}
	defer watcher.Stop()

	pool := daemon.NewPool(nil)
	defer pool.Close()
	const trials = 10
	var restartTimes []time.Duration
	app.Stop()
	for i := 0; i < trials; i++ {
		start := time.Now()
		for {
			if _, err := asd.Resolve(pool, dir.Addr(), asd.Query{Name: "e13app"}); err == nil {
				break
			}
			if time.Since(start) > 10*time.Second {
				return nil, fmt.Errorf("E13: restart app never recovered")
			}
			time.Sleep(time.Millisecond)
		}
		restartTimes = append(restartTimes, time.Since(start))
		// Crash it again for the next trial.
		if _, err := pool.Call(dir.Addr(), cmdlang.New(daemon.CmdUnregister).SetWord("name", "e13app")); err != nil {
			return nil, fmt.Errorf("E13: deregistering e13app for trial %d: %w", i, err)
		}
	}
	t.AddRow("restart (watcher relaunch)", trials,
		meanMs(restartTimes), float64(percentile(restartTimes, 95))/float64(time.Millisecond), "n/a")

	// Robust application: failover with state restored from the
	// persistent store.
	cluster, err := pstore.StartCluster(3, "", 0)
	if err != nil {
		return nil, err
	}
	defer cluster.StopAll()
	store := pstore.NewClient(pool, cluster.Addrs())
	ckpt := &apps.Checkpointer{Client: store, Path: "/e13/counter"}

	var failoverTimes []time.Duration
	allPreserved := true
	counter := apps.NewRobustCounter(daemon.Config{Name: "e13counter"}, ckpt)
	if err := counter.Start(); err != nil {
		return nil, err
	}
	expected := int64(0)
	for i := 0; i < trials; i++ {
		for j := 0; j < 5; j++ {
			if _, err := pool.Call(counter.Addr(), cmdlang.New("increment")); err != nil {
				return nil, err
			}
			expected++
		}
		counter.Stop() // crash
		start := time.Now()
		counter = apps.NewRobustCounter(daemon.Config{Name: "e13counter"}, ckpt)
		if err := counter.Start(); err != nil {
			return nil, err
		}
		failoverTimes = append(failoverTimes, time.Since(start))
		if counter.Value() != expected {
			allPreserved = false
		}
	}
	counter.Stop()
	preserved := "yes"
	if !allPreserved {
		preserved = "NO"
	}
	t.AddRow("robust (pstore failover)", trials,
		meanMs(failoverTimes), float64(percentile(failoverTimes, 95))/float64(time.Millisecond), preserved)

	t.Notes = append(t.Notes,
		"restart recovery is dominated by the watcher poll interval (10 ms here)",
		"robust recovery includes the quorum state read at startup")
	return t, nil
}

func meanMs(ds []time.Duration) float64 {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return float64(sum/time.Duration(len(ds))) / float64(time.Millisecond)
}
