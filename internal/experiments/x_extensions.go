package experiments

import (
	"bytes"
	"fmt"
	"time"

	"ace/internal/asd"
	"ace/internal/daemon"
	"ace/internal/hier"
	"ace/internal/media"
	"ace/internal/mobile"
	"ace/internal/ophone"
	"ace/internal/pathcreate"
)

// X-series experiments measure the §9 future-work features this
// reproduction implements beyond the paper's shipped system. They are
// not paper figures; they quantify the extensions' costs.

func init() {
	register("X1", "mobile sockets: failover latency", RunX1)
	register("X2", "automatic path creation: planning and execution cost", RunX2)
	register("X3", "O-Phone: call setup and audio latency", RunX3)
}

// RunX1 measures how quickly a mobile socket recovers a call after
// its service instance dies, with and without a hot spare.
func RunX1() (*Table, error) {
	t := &Table{
		ID:      "X1",
		Title:   "mobile socket recovery after instance death",
		Source:  "§9 future work (mobile sockets)",
		Columns: []string{"scenario", "trials", "recovery ms (mean)", "recovery ms (p95)"},
	}
	dir := asd.New(asd.Config{ReapInterval: 10 * time.Millisecond})
	if err := dir.Start(); err != nil {
		return nil, err
	}
	defer dir.Stop()

	newInst := func(name, class string) *daemon.Daemon {
		d := daemon.New(daemon.Config{Name: name, Class: class, ASDAddr: dir.Addr(), LeaseTTL: 50 * time.Millisecond})
		return d
	}

	const trials = 10

	// Scenario A: hot spare — a second instance of the class is
	// already registered; failover is one re-resolution.
	{
		pool := daemon.NewPool(nil)
		defer pool.Close()
		class := hier.Root + ".X1A"
		a := newInst("x1a_primary", class)
		if err := a.Start(); err != nil {
			return nil, err
		}
		b := newInst("x1a_spare", class)
		if err := b.Start(); err != nil {
			return nil, err
		}
		defer b.Stop()
		sock := mobile.NewSocket(pool, dir.Addr(), asd.Query{Class: class})
		if err := sock.Ping(); err != nil {
			return nil, err
		}
		var times []time.Duration
		dead := a
		for i := 0; i < trials; i++ {
			dead.Stop()
			start := time.Now()
			if err := sock.Ping(); err != nil {
				return nil, fmt.Errorf("X1 hot spare trial %d: %w", i, err)
			}
			times = append(times, time.Since(start))
			// Bring a fresh instance up and kill the other next time.
			fresh := newInst(fmt.Sprintf("x1a_n%d", i), class)
			if err := fresh.Start(); err != nil {
				return nil, err
			}
			if i%2 == 0 {
				dead = b
				b = fresh
			} else {
				dead = fresh
			}
		}
		t.AddRow("hot spare (class failover)", trials, meanMs(times),
			float64(percentile(times, 95))/float64(time.Millisecond))
	}

	// Scenario B: cold restart — the sole instance dies and a
	// replacement appears 20 ms later; recovery includes waiting for
	// the re-registration.
	{
		pool := daemon.NewPool(nil)
		defer pool.Close()
		inst := newInst("x1b_solo", hier.Root+".X1B")
		if err := inst.Start(); err != nil {
			return nil, err
		}
		sock := mobile.NewSocket(pool, dir.Addr(), asd.Query{Name: "x1b_solo"})
		if err := sock.Ping(); err != nil {
			return nil, err
		}
		var times []time.Duration
		for i := 0; i < trials; i++ {
			inst.Stop()
			startErr := make(chan error, 1)
			go func() {
				time.Sleep(20 * time.Millisecond)
				inst = newInst("x1b_solo", hier.Root+".X1B")
				startErr <- inst.Start()
			}()
			start := time.Now()
			// A failed respawn would leave Ping polling until its
			// timeout; surface the root cause instead.
			if err := <-startErr; err != nil {
				return nil, fmt.Errorf("X1 cold restart trial %d: respawn: %w", i, err)
			}
			if err := sock.Ping(); err != nil {
				return nil, fmt.Errorf("X1 cold restart trial %d: %w", i, err)
			}
			times = append(times, time.Since(start))
		}
		inst.Stop()
		t.AddRow("cold restart (+20 ms respawn)", trials, meanMs(times),
			float64(percentile(times, 95))/float64(time.Millisecond))
	}
	t.Notes = append(t.Notes, "hot-spare failover costs one directory lookup; cold restart adds the respawn delay and the re-resolution poll interval")
	return t, nil
}

// RunX2 measures automatic path creation: planning cost vs converter
// population, and the per-hop execution overhead vs a direct
// in-process conversion.
func RunX2() (*Table, error) {
	t := &Table{
		ID:      "X2",
		Title:   "automatic path creation cost",
		Source:  "§8.1/§9 (Ninja APC)",
		Columns: []string{"metric", "value"},
	}
	dir := asd.New(asd.Config{})
	if err := dir.Start(); err != nil {
		return nil, err
	}
	defer dir.Stop()
	pool := daemon.NewPool(nil)
	defer pool.Close()

	// A population of specialized converters (two hops needed for
	// rle→mpegsim).
	specs := []struct {
		name  string
		pairs []media.Pair
	}{
		{"xc_rle", []media.Pair{{From: media.FormatRLE, To: media.FormatRaw}, {From: media.FormatRaw, To: media.FormatRLE}}},
		{"xc_mpeg", []media.Pair{{From: media.FormatRaw, To: media.FormatMPEG}, {From: media.FormatMPEG, To: media.FormatRaw}}},
		{"xc_mulaw", []media.Pair{{From: media.FormatMulaw, To: media.FormatRaw}, {From: media.FormatRaw, To: media.FormatMulaw}}},
	}
	for _, s := range specs {
		c := media.NewConverter(daemon.Config{Name: s.name, ASDAddr: dir.Addr()}, s.pairs...)
		if err := c.Start(); err != nil {
			return nil, err
		}
		defer c.Stop()
	}

	planner := pathcreate.NewPlanner(pool, dir.Addr())
	planLat := timeOp(200, func() {
		planner.Plan(media.FormatRLE, media.FormatMPEG) //nolint:errcheck
	})
	t.AddRow("plan 2-hop path (µs, incl. discovery)", float64(planLat)/float64(time.Microsecond))

	payload := bytes.Repeat([]byte("scanline data "), 512)
	rleForm, err := media.Convert(payload, media.FormatRaw, media.FormatRLE)
	if err != nil {
		return nil, err
	}
	path, err := planner.Plan(media.FormatRLE, media.FormatMPEG)
	if err != nil {
		return nil, err
	}
	execLat := timeOp(100, func() {
		planner.Execute(path, rleForm) //nolint:errcheck
	})
	direct := timeOp(100, func() {
		raw, _ := media.Convert(rleForm, media.FormatRLE, media.FormatRaw)
		media.Convert(raw, media.FormatRaw, media.FormatMPEG) //nolint:errcheck
	})
	t.AddRow("execute 2-hop path (µs, over the wire)", float64(execLat)/float64(time.Microsecond))
	t.AddRow("same conversions in-process (µs)", float64(direct)/float64(time.Microsecond))
	t.AddRow("service-hop overhead", fmt.Sprintf("%.1fx", float64(execLat)/float64(direct)))
	t.Notes = append(t.Notes, "planning re-discovers live converters every time, so paths always reflect the current environment")
	return t, nil
}

// RunX3 measures the O-Phone: how fast a call is established through
// directory lookup + signalling, and the one-way frame latency in an
// active call.
func RunX3() (*Table, error) {
	t := &Table{
		ID:      "X3",
		Title:   "O-Phone call setup and audio latency",
		Source:  "§5.5",
		Columns: []string{"metric", "ms (mean)", "ms (p95)"},
	}
	dir := asd.New(asd.Config{})
	if err := dir.Start(); err != nil {
		return nil, err
	}
	defer dir.Stop()

	alice := ophone.New(ophone.Config{Owner: "alice", ASDAddr: dir.Addr()})
	if err := alice.Start(); err != nil {
		return nil, err
	}
	defer alice.Stop()
	bob := ophone.New(ophone.Config{Owner: "bob", ASDAddr: dir.Addr(), AutoAnswer: true})
	if err := bob.Start(); err != nil {
		return nil, err
	}
	defer bob.Stop()

	const trials = 20
	var setup, audio []time.Duration
	for i := 0; i < trials; i++ {
		start := time.Now()
		if err := alice.Dial("bob"); err != nil {
			return nil, err
		}
		setup = append(setup, time.Since(start))

		// One frame, timed to arrival.
		before := len(bob.Received())
		start = time.Now()
		if _, err := alice.SendTone(700, 1); err != nil {
			return nil, err
		}
		deadline := time.Now().Add(2 * time.Second)
		for len(bob.Received()) <= before {
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("X3: frame never arrived")
			}
			time.Sleep(50 * time.Microsecond)
		}
		audio = append(audio, time.Since(start))
		if err := alice.Hangup(); err != nil {
			return nil, err
		}
		// Let bob's side settle back to idle.
		for bob.State() != ophone.Idle {
			time.Sleep(time.Millisecond)
		}
	}
	t.AddRow("dial → active (lookup + ring + answer)", meanMs(setup), float64(percentile(setup, 95))/float64(time.Millisecond))
	t.AddRow("one-way audio frame latency", meanMs(audio), float64(percentile(audio, 95))/float64(time.Millisecond))
	return t, nil
}
