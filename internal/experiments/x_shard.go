package experiments

import (
	"context"
	"fmt"
	"time"

	"ace/internal/asd"
	"ace/internal/daemon"
	"ace/internal/flow"
	"ace/internal/pstore"
	"ace/internal/pstore/placement"
	"ace/internal/workload"
)

func init() {
	register("X6", "sharded pstore: throughput scaling across replica groups", RunX6)
}

// RunX6 measures how acked put throughput scales as the pstore
// namespace is sharded across 1, 2, and 4 replica groups. Every node's
// admission controller is pinned to the same token-bucket rate, so the
// per-node capacity ceiling is fixed and the measured scaling isolates
// what consistent-hash placement provides: more groups admit more
// aggregate load iff routing actually spreads the key space. The
// workload is the keyed zipfian storm from internal/workload — skewed
// like real ambient-environment state, not a uniform stream that
// flatters the hash.
func RunX6() (*Table, error) {
	t := &Table{
		ID:      "X6",
		Title:   "sharded pstore scaling under a keyed zipfian storm",
		Source:  "extension: consistent-hash placement over replica groups",
		Columns: []string{"groups", "nodes", "acked puts/s", "speedup"},
	}

	const (
		nodeRate = 150.0 // admissions/s pinned per node
		workers  = 8
		storm    = 800 * time.Millisecond
		keys     = 4096
		theta    = 0.9
	)

	run := func(groupCount int) (float64, func(), error) {
		var cleanup []func()
		stop := func() {
			for i := len(cleanup) - 1; i >= 0; i-- {
				cleanup[i]()
			}
		}
		var groups []placement.Group
		for g := 1; g <= groupCount; g++ {
			var addrs []string
			var nodes []*pstore.Node
			for i := 1; i <= 3; i++ {
				cfg := pstore.Config{
					Daemon: daemon.Config{
						Name: fmt.Sprintf("x6_g%dn%d", g, i),
						Flow: &flow.Config{Rate: nodeRate, Burst: 16},
					},
					Group: fmt.Sprintf("g%d", g),
				}
				n, err := pstore.NewNode(cfg)
				if err != nil {
					stop()
					return 0, nil, err
				}
				if err := n.Start(); err != nil {
					stop()
					return 0, nil, err
				}
				cleanup = append(cleanup, n.Stop)
				nodes = append(nodes, n)
				addrs = append(addrs, n.Addr())
			}
			for i, n := range nodes {
				var peers []string
				for j, a := range addrs {
					if j != i {
						peers = append(peers, a)
					}
				}
				n.SetPeers(peers)
			}
			groups = append(groups, placement.Group{Name: fmt.Sprintf("g%d", g), Replicas: addrs})
		}
		dir := asd.New(asd.Config{ReapInterval: time.Hour})
		if err := dir.Start(); err != nil {
			stop()
			return 0, nil, err
		}
		cleanup = append(cleanup, dir.Stop)

		pool := daemon.NewPool(nil)
		cleanup = append(cleanup, pool.Close)
		co := pstore.NewCoordinator(pool, dir.Addr())
		if _, err := co.Bootstrap(context.Background(), 7, 32, 64, groups); err != nil {
			stop()
			return 0, nil, err
		}
		sc := pstore.NewSharded(pool, placement.NewCache(pool, dir.Addr()))
		cleanup = append(cleanup, sc.Close)

		acked := make(chan int, workers)
		halt := make(chan struct{})
		for w := 0; w < workers; w++ {
			go func(w int) {
				gen := workload.NewZipfian(int64(200+w), keys, theta)
				n := 0
				for i := 0; ; i++ {
					select {
					case <-halt:
						acked <- n
						return
					default:
					}
					path := workload.Path("/x6/shard", gen.Next())
					if _, err := sc.Put(path, []byte(fmt.Sprintf("w%d-%d", w, i))); err == nil {
						n++
					}
				}
			}(w)
		}
		start := time.Now()
		time.Sleep(storm)
		close(halt)
		total := 0
		for w := 0; w < workers; w++ {
			total += <-acked
		}
		return float64(total) / time.Since(start).Seconds(), stop, nil
	}

	var baseline float64
	for _, groupCount := range []int{1, 2, 4} {
		rate, stop, err := run(groupCount)
		if err != nil {
			return nil, err
		}
		stop()
		if groupCount == 1 {
			baseline = rate
		}
		t.AddRow(groupCount, groupCount*3, rate, fmt.Sprintf("%.2fx", rate/baseline))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("each node admission-pinned at %.0f ops/s; %d workers, zipfian(%.1f) over %d keys", nodeRate, workers, theta, keys))
	return t, nil
}
