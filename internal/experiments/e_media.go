package experiments

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"time"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/media"
)

func init() {
	register("E8", "two-site audio conferencing pipeline", RunE8)
	register("E14", "converter service throughput", RunE14)
	register("E15", "distribution service fan-out", RunE15)
}

// RunE8 reproduces Fig 15's shape: two sites exchange audio through
// distribution services; each site cancels the echo of the remote
// signal; the recorder taps the stream; speech-to-command recognizes
// a spoken ACE command.
func RunE8() (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "two-site conferencing: throughput, echo, command recognition",
		Source:  "Fig 15, §4.15",
		Columns: []string{"metric", "value"},
	}

	// Inter-site hop: a distribution daemon per direction, real UDP.
	distAtoB := media.NewDistribution(daemon.Config{Name: "dist_a_to_b"})
	if err := distAtoB.Start(); err != nil {
		return nil, err
	}
	defer distAtoB.Stop()
	sinkB := media.NewAudioSink(daemon.Config{Name: "site_b_in"})
	if err := sinkB.Start(); err != nil {
		return nil, err
	}
	defer sinkB.Stop()
	recorder := media.NewAudioSink(daemon.Config{Name: "recorder"})
	if err := recorder.Start(); err != nil {
		return nil, err
	}
	defer recorder.Stop()
	distAtoB.AddSink(sinkB.DataAddr())
	distAtoB.AddSink(recorder.DataAddr())

	arrived := make(chan media.Frame, 4096)
	sinkB.SetOnFrame(func(f media.Frame) { arrived <- f })

	capture := media.NewAudioCapture(daemon.Config{Name: "site_a_mic"})
	if err := capture.Start(); err != nil {
		return nil, err
	}
	defer capture.Stop()

	// Site A speaks a command, then keeps talking (tone).
	const toneFrames = 400
	start := time.Now()
	spoken, err := media.EncodeCommand("camera on", 0)
	if err != nil {
		return nil, err
	}
	for _, f := range spoken {
		if err := capture.SendData(distAtoB.DataAddr(), f.Marshal()); err != nil {
			return nil, err
		}
	}
	if _, err := capture.StreamTone(distAtoB.DataAddr(), 500, 6000, toneFrames); err != nil {
		return nil, err
	}
	total := len(spoken) + toneFrames

	// Site B: the mic hears local speech plus an echo of the remote
	// signal played on the room speakers; the echo canceller, fed the
	// remote frames as reference, removes it.
	const echoDelay = 80 // samples
	const echoGain = 0.6
	ec := media.NewEchoCanceller(echoDelay, echoGain)
	echoPath := media.NewEchoCanceller(echoDelay, -echoGain) // reuse as delay line to *add* echo
	noise := rand.New(rand.NewSource(8))
	var echoEnergy, residualEnergy float64
	received := 0
	deadline := time.After(10 * time.Second)
	for received < total {
		select {
		case remote := <-arrived:
			received++
			// Synthesize B's mic: room noise + echo of remote.
			room := media.NewFrame(remote.Seq)
			for i := range room.Samples {
				room.Samples[i] = int16(noise.Intn(9) - 4)
			}
			mic := echoPath.Process(room, remote) // room - (-gain)*delayed = room + echo
			echoEnergy += mic.Energy()
			clean := ec.Process(mic, remote)
			residualEnergy += clean.Energy()
		case <-deadline:
			return nil, fmt.Errorf("E8: only %d/%d frames arrived", received, total)
		}
	}
	elapsed := time.Since(start)

	// Wait for the recorder tap and the spoken command recognition.
	recDeadline := time.Now().Add(5 * time.Second)
	for len(recorder.Recorded()) < total || len(recorder.Commands()) == 0 {
		if time.Now().After(recDeadline) {
			return nil, fmt.Errorf("E8: recorder has %d frames, %d commands",
				len(recorder.Recorded()), len(recorder.Commands()))
		}
		time.Sleep(time.Millisecond)
	}

	realtime := float64(total) * media.FrameSamples / media.SampleRate
	suppressionDB := 10 * logRatio(echoEnergy, residualEnergy)
	t.AddRow("frames end-to-end", total)
	t.AddRow("pipeline throughput (frames/s)", float64(total)/elapsed.Seconds())
	t.AddRow("realtime factor", fmt.Sprintf("%.0fx", realtime/elapsed.Seconds()))
	t.AddRow("echo suppression (dB)", suppressionDB)
	t.AddRow("recorder frames", len(recorder.Recorded()))
	t.AddRow("recognized command", recorder.Commands()[0])
	t.Notes = append(t.Notes, "expected shape: pipeline runs far faster than realtime; echo suppressed by tens of dB; the spoken command is recognized at the far site")
	return t, nil
}

func logRatio(num, den float64) float64 {
	if den <= 0 {
		den = 1e-12
	}
	if num <= 0 {
		num = 1e-12
	}
	return math.Log10(num / den)
}

// RunE14 measures the Converter service (Fig 13): raw→"MPEG"
// throughput for video-like payloads over the command channel.
func RunE14() (*Table, error) {
	t := &Table{
		ID:      "E14",
		Title:   "converter service throughput (raw→mpegsim)",
		Source:  "Fig 13, §4.12",
		Columns: []string{"payload KB", "compressed KB", "ratio", "convert MB/s (in-process)", "service calls/s"},
	}
	conv := media.NewConverter(daemon.Config{})
	if err := conv.Start(); err != nil {
		return nil, err
	}
	defer conv.Stop()
	pool := daemon.NewPool(nil)
	defer pool.Close()

	rng := rand.New(rand.NewSource(14))
	for _, kb := range []int{4, 64, 512} {
		// Video-like payload: repetitive scanlines with noise.
		line := make([]byte, 256)
		rng.Read(line) //nolint:errcheck
		payload := bytes.Repeat(line, kb*1024/len(line))

		out, err := media.Convert(payload, media.FormatRaw, media.FormatMPEG)
		if err != nil {
			return nil, err
		}
		const n = 40
		d := timeOp(n, func() { media.Convert(payload, media.FormatRaw, media.FormatMPEG) }) //nolint:errcheck
		mbs := float64(len(payload)) / d.Seconds() / (1 << 20)

		// Over the command channel (hex encoding + framing included);
		// cap the payload to the frame limit.
		svcPayload := payload
		if len(svcPayload) > 256*1024 {
			svcPayload = svcPayload[:256*1024]
		}
		hexData := fmt.Sprintf("%x", svcPayload)
		callCmd := cmdlang.New("convert").
			SetString("data", hexData).
			SetWord("from", media.FormatRaw).SetWord("to", media.FormatMPEG)
		if _, err := pool.Call(conv.Addr(), callCmd); err != nil {
			return nil, err
		}
		var convErr error
		sd := timeOp(10, func() {
			if _, err := pool.Call(conv.Addr(), callCmd); err != nil && convErr == nil {
				convErr = err
			}
		})
		if convErr != nil {
			return nil, convErr
		}

		t.AddRow(kb, float64(len(out))/1024,
			fmt.Sprintf("%.1f%%", 100*float64(len(out))/float64(len(payload))),
			mbs, 1/sd.Seconds())
	}
	return t, nil
}

// RunE15 measures the Distribution service (Fig 14): forwarding rate
// versus the number of subscribed sinks.
func RunE15() (*Table, error) {
	t := &Table{
		ID:      "E15",
		Title:   "distribution fan-out: delivery vs sink count",
		Source:  "Fig 14, §4.13",
		Columns: []string{"sinks", "frames in", "frames delivered", "deliver rate kpkt/s"},
	}
	for _, sinks := range []int{1, 2, 4, 8} {
		dist := media.NewDistribution(daemon.Config{})
		if err := dist.Start(); err != nil {
			return nil, err
		}
		var sinkDaemons []*media.AudioSink
		for i := 0; i < sinks; i++ {
			s := media.NewAudioSink(daemon.Config{Name: fmt.Sprintf("e15sink%d", i)})
			if err := s.Start(); err != nil {
				return nil, err
			}
			sinkDaemons = append(sinkDaemons, s)
			dist.AddSink(s.DataAddr())
		}
		capture := media.NewAudioCapture(daemon.Config{})
		if err := capture.Start(); err != nil {
			return nil, err
		}

		const frames = 300
		start := time.Now()
		if _, err := capture.StreamTone(dist.DataAddr(), 440, 4000, frames); err != nil {
			return nil, err
		}
		want := frames * sinks
		deadline := time.Now().Add(5 * time.Second)
		delivered := 0
		for {
			delivered = 0
			for _, s := range sinkDaemons {
				delivered += len(s.Recorded())
			}
			if delivered >= want*95/100 || time.Now().After(deadline) {
				break
			}
			time.Sleep(time.Millisecond)
		}
		elapsed := time.Since(start)
		t.AddRow(sinks, frames, delivered, float64(delivered)/elapsed.Seconds()/1000)

		capture.Stop()
		for _, s := range sinkDaemons {
			s.Stop()
		}
		dist.Stop()
	}
	t.Notes = append(t.Notes, "UDP semantics: delivery ≥95% counts as complete; rate scales with sink count")
	return t, nil
}
