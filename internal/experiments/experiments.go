// Package experiments regenerates every evaluated figure and claim of
// the ACE report as a measured experiment (see DESIGN.md's experiment
// index and EXPERIMENTS.md for paper-vs-measured). Each experiment
// builds the relevant slice of the system, drives a workload, and
// returns a printable table; cmd/acebench prints them and the root
// bench_test.go wraps the same code paths in testing.B benchmarks.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Table is one experiment's result.
type Table struct {
	ID      string
	Title   string
	Source  string // figure/section the experiment regenerates
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "  (reproduces %s)\n", t.Source)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		b.WriteString("  ")
		for i, cell := range cells {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// Experiment is one registered experiment.
type Experiment struct {
	ID   string
	Name string
	Run  func() (*Table, error)
}

var registry []Experiment

func register(id, name string, run func() (*Table, error)) {
	registry = append(registry, Experiment{ID: id, Name: name, Run: run})
}

// All returns every registered experiment sorted by ID: the paper's
// E-series numerically, then the extension X-series.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	key := func(id string) (series byte, n int) {
		if id == "" {
			return 0, 0
		}
		fmt.Sscanf(id[1:], "%d", &n) //nolint:errcheck
		return id[0], n
	}
	sort.Slice(out, func(i, j int) bool {
		si, ni := key(out[i].ID)
		sj, nj := key(out[j].ID)
		if si != sj {
			return si < sj
		}
		return ni < nj
	})
	return out
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range registry {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// timeOp runs fn n times and returns the mean duration per op.
func timeOp(n int, fn func()) time.Duration {
	start := time.Now()
	for i := 0; i < n; i++ {
		fn()
	}
	return time.Since(start) / time.Duration(n)
}

// percentile returns the p-th percentile (0..100) of durations.
func percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}
