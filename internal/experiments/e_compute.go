package experiments

import (
	"fmt"
	"math"

	"ace/internal/daemon"
	"ace/internal/launcher"
	"ace/internal/monitor"
	"ace/internal/simhost"
)

func init() {
	register("E7", "SAL placement policy: least-loaded vs random", RunE7)
}

// computeRig builds the Fig 11 plane: heterogeneous hosts, one
// HRM+HAL each, an SRM and a SAL.
type computeRig struct {
	cluster *simhost.Cluster
	sal     *launcher.SAL
	stop    []func()
}

func newComputeRig(speeds []float64) (*computeRig, error) {
	r := &computeRig{cluster: simhost.NewCluster()}
	srm := monitor.NewSRM(daemon.Config{}, 1)
	if err := srm.Start(); err != nil {
		return nil, err
	}
	r.stop = append(r.stop, srm.Stop)
	for i, sp := range speeds {
		host := simhost.NewHost(fmt.Sprintf("host%02d", i), sp, 4<<30, 1<<40)
		r.cluster.Add(host)
		hrm := monitor.NewHRM(daemon.Config{}, host)
		if err := hrm.Start(); err != nil {
			r.teardown()
			return nil, err
		}
		r.stop = append(r.stop, hrm.Stop)
		hal := launcher.NewHAL(daemon.Config{}, host)
		if err := hal.Start(); err != nil {
			r.teardown()
			return nil, err
		}
		r.stop = append(r.stop, hal.Stop)
		srm.AddHost(host.Name(), hrm.Addr(), hal.Addr())
	}
	r.sal = launcher.NewSAL(daemon.Config{}, srm)
	if err := r.sal.Start(); err != nil {
		r.teardown()
		return nil, err
	}
	r.stop = append(r.stop, r.sal.Stop)
	return r, nil
}

func (r *computeRig) teardown() {
	for i := len(r.stop) - 1; i >= 0; i-- {
		r.stop[i]()
	}
}

// RunE7 compares placement policies on a heterogeneous cluster: the
// paper says the SAL picks "randomly or by resource allocation by
// communicating with the SRM" — this quantifies why resource
// allocation matters.
func RunE7() (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "placement quality on heterogeneous hosts (64 jobs)",
		Source:  "Fig 11, §4.2–§4.4",
		Columns: []string{"policy", "makespan s", "vs ideal", "host-finish stddev s"},
	}
	speeds := []float64{100, 100, 200, 400, 800}
	const jobs = 64
	const work = 200.0
	totalSpeed := 0.0
	for _, s := range speeds {
		totalSpeed += s
	}
	ideal := jobs * work / totalSpeed

	for _, policy := range []monitor.Policy{monitor.PolicyRandom, monitor.PolicyLeastLoaded} {
		rig, err := newComputeRig(speeds)
		if err != nil {
			return nil, err
		}
		for j := 0; j < jobs; j++ {
			if _, err := rig.sal.Launch(fmt.Sprintf("job%02d", j), work, 1<<20, policy); err != nil {
				rig.teardown()
				return nil, err
			}
		}
		makespan := rig.cluster.AdvanceUntilIdle(0.2, 100000)

		// Per-host last-finish spread: a balanced placement drains all
		// hosts at roughly the same time.
		var finishes []float64
		for _, h := range rig.cluster.Hosts() {
			last := 0.0
			for _, p := range h.Completed() {
				if p.Finished > last {
					last = p.Finished
				}
			}
			finishes = append(finishes, last)
		}
		mean := 0.0
		for _, f := range finishes {
			mean += f
		}
		mean /= float64(len(finishes))
		varsum := 0.0
		for _, f := range finishes {
			varsum += (f - mean) * (f - mean)
		}
		stddev := math.Sqrt(varsum / float64(len(finishes)))

		t.AddRow(string(policy), makespan,
			fmt.Sprintf("%.2fx", makespan/ideal), stddev)
		rig.teardown()
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("ideal makespan (total work / total speed) = %.2f s", ideal),
		"expected shape: least_loaded approaches ideal; random overloads slow hosts")
	return t, nil
}
