package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"ace/internal/cmdlang"
	"ace/internal/core"
	"ace/internal/ident"
	"ace/internal/roomdb"
	"ace/internal/workspace"
)

func init() {
	register("E9", "identification → workspace bring-up latency", RunE9)
}

// RunE9 measures Fig 19 end to end: from the finger touching the
// scanner to the user's workspace being attachable at the access
// point, across the FIU, ID monitor, AUD, WSS, SAL/HAL and VNC
// daemons.
func RunE9() (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "scan → workspace visible, end to end",
		Source:  "Figs 18/19, Scenarios 1–4",
		Columns: []string{"stage", "ms (mean)", "ms (p95)"},
	}

	opened := make(chan struct{}, 16)
	env, err := core.Start(core.Options{
		WithIdent: true,
		Rooms:     []roomdb.Room{{Name: "hawk", Dims: roomdb.Point{X: 10, Y: 8, Z: 3}}},
	})
	if err != nil {
		return nil, err
	}
	defer env.Stop()
	// Re-wire the ID monitor's workspace hook by subscribing our own
	// listener: run identification through the environment API and
	// time the observable effects instead.
	_ = opened

	rng := rand.New(rand.NewSource(9))
	user, err := env.RegisterUser("john_doe", "John Doe", "pw", rng)
	if err != nil {
		return nil, err
	}

	const trials = 20
	var scanTimes, locTimes, viewTimes []time.Duration
	for i := 0; i < trials; i++ {
		room := fmt.Sprintf("room%02d", i%4)

		start := time.Now()
		reply, err := env.IdentifyByFingerprint(user, room, rng, 0.03)
		if err != nil {
			return nil, err
		}
		if reply.Str("username", "") != "john_doe" {
			return nil, fmt.Errorf("E9: misidentified: %v", reply)
		}
		scanTimes = append(scanTimes, time.Since(start))

		if err := env.WaitLocation("john_doe", room, 5*time.Second); err != nil {
			return nil, err
		}
		locTimes = append(locTimes, time.Since(start))

		viewer, err := env.OpenViewer("john_doe", "")
		if err != nil {
			return nil, err
		}
		if _, err := viewer.Screen(); err != nil {
			return nil, err
		}
		viewTimes = append(viewTimes, time.Since(start))
	}

	t.AddRow("fingerprint scan + match", meanMs(scanTimes), float64(percentile(scanTimes, 95))/float64(time.Millisecond))
	t.AddRow("+ AUD location updated", meanMs(locTimes), float64(percentile(locTimes, 95))/float64(time.Millisecond))
	t.AddRow("+ workspace attached & drawn", meanMs(viewTimes), float64(percentile(viewTimes, 95))/float64(time.Millisecond))

	// Multiple workspaces (Scenario 4): creation latency through the
	// SAL placement chain.
	var createTimes []time.Duration
	for i := 0; i < 10; i++ {
		start := time.Now()
		if _, err := env.WSS.Create("john_doe", fmt.Sprintf("ws%02d", i)); err != nil {
			return nil, err
		}
		createTimes = append(createTimes, time.Since(start))
	}
	t.AddRow("new workspace via SAL/HAL", meanMs(createTimes), float64(percentile(createTimes, 95))/float64(time.Millisecond))

	// Use the identifying rig once more through the iButton path.
	start := time.Now()
	if _, err := env.Pool().Call(env.IButton.Addr(), cmdlang.New("press").
		SetInt("serial", int64(user.IButton)).SetWord("location", "hawk")); err != nil {
		return nil, err
	}
	ib := time.Since(start)
	t.AddRow("iButton press + identify", float64(ib)/float64(time.Millisecond), float64(ib)/float64(time.Millisecond))

	t.Notes = append(t.Notes,
		fmt.Sprintf("fingerprint matcher: %d-byte templates, threshold %d bits", ident.TemplateSize, ident.DefaultThreshold),
		fmt.Sprintf("workspaces housed on %d VNC server(s); default workspace %q", 1, workspace.DefaultWorkspace))
	return t, nil
}
