package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"ace/internal/vidmon"
)

func init() {
	register("X5", "video monitoring: detection quality and throughput", RunX5)
}

// RunX5 characterizes the video monitoring system (§1.1's non-human
// user): detection rate versus intruder size under pixel noise, false
// alarms on clean and noisy static scenes, and raw detector
// throughput.
func RunX5() (*Table, error) {
	t := &Table{
		ID:      "X5",
		Title:   "motion detection: quality vs intruder size (64×48 frames, ±6 pixel noise)",
		Source:  "§1.1 (video monitoring systems)",
		Columns: []string{"intruder px", "frames", "detected", "rate", "mean centroid err px"},
	}
	rng := rand.New(rand.NewSource(55))

	noisyFrame := func(scene *vidmon.Scene, intruder bool, x, y, size int) vidmon.VideoFrame {
		f := scene.Frame(intruder, x, y, size, 0)
		for i := range f.Pixels {
			v := int(f.Pixels[i]) + rng.Intn(13) - 6
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			f.Pixels[i] = byte(v)
		}
		return f
	}

	for _, size := range []int{2, 4, 8, 16} {
		scene := vidmon.NewScene(64, 48)
		det := vidmon.NewDetector()
		// Settle the background with noisy static frames.
		for i := 0; i < 10; i++ {
			det.Process(noisyFrame(scene, false, 0, 0, 0))
		}
		const trials = 30
		detected := 0
		var centroidErr float64
		for i := 0; i < trials; i++ {
			x := 4 + rng.Intn(64-size-8)
			y := 4 + rng.Intn(48-size-8)
			m, ok := det.Process(noisyFrame(scene, true, x, y, size))
			// Clear the intruder so the next trial starts clean.
			det.Process(noisyFrame(scene, false, 0, 0, 0))
			if !ok {
				continue
			}
			detected++
			wantCX := float64(x) + float64(size)/2 - 0.5
			wantCY := float64(y) + float64(size)/2 - 0.5
			centroidErr += abs(m.CX-wantCX) + abs(m.CY-wantCY)
		}
		if detected > 0 {
			centroidErr /= float64(2 * detected)
		}
		t.AddRow(fmt.Sprintf("%d×%d", size, size), trials, detected,
			fmt.Sprintf("%.0f%%", 100*float64(detected)/trials), centroidErr)
	}

	// False alarms on a noisy static scene.
	scene := vidmon.NewScene(64, 48)
	det := vidmon.NewDetector()
	for i := 0; i < 10; i++ {
		det.Process(noisyFrame(scene, false, 0, 0, 0))
	}
	false1 := 0
	const quiet = 200
	for i := 0; i < quiet; i++ {
		if _, ok := det.Process(noisyFrame(scene, false, 0, 0, 0)); ok {
			false1++
		}
	}
	t.AddRow("(static, noisy)", quiet, false1,
		fmt.Sprintf("%.1f%% false", 100*float64(false1)/quiet), "-")

	// Raw detector throughput at QVGA.
	big := vidmon.NewScene(320, 240)
	det2 := vidmon.NewDetector()
	det2.Process(big.Frame(false, 0, 0, 0, 0))
	frame := big.Frame(true, 100, 100, 20, 0)
	per := timeOp(50, func() { det2.Process(frame) })
	t.AddRow("(throughput 320×240)", "-", "-",
		fmt.Sprintf("%.0f fps", float64(time.Second)/float64(per)), "-")

	t.Notes = append(t.Notes,
		"4×4-pixel intruders (~0.5% of the frame) sit at the MotionRatio threshold; larger intruders detect every time with sub-pixel centroids")
	return t, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
