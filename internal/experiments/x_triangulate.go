package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"ace/internal/roomdb"
	"ace/internal/triangulate"
)

func init() {
	register("X4", "sound triangulation accuracy vs timing noise", RunX4)
}

// RunX4 sweeps per-microphone timing noise and measures the
// localization error of the TDOA solver over random in-room sources —
// the feasibility envelope for §1.2/§9's sound-triangulation
// services (aiming cameras at speakers, locating users).
func RunX4() (*Table, error) {
	t := &Table{
		ID:      "X4",
		Title:   "TDOA localization error vs timing noise (10×8×3 m room, 5 mics)",
		Source:  "§1.2/§9 (sound triangulation)",
		Columns: []string{"timing noise σ", "range noise", "error m (mean)", "error m (p95)", "solved"},
	}
	array, err := triangulate.RoomArray(roomdb.Point{X: 10, Y: 8, Z: 3})
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(44))
	const sources = 80
	for _, sigma := range []float64{0, 10e-6, 50e-6, 100e-6, 500e-6} {
		var errs []float64
		solved := 0
		for i := 0; i < sources; i++ {
			src := roomdb.Point{
				X: 0.5 + rng.Float64()*9,
				Y: 0.5 + rng.Float64()*7,
				Z: 0.2 + rng.Float64()*2,
			}
			noise := func() float64 { return rng.NormFloat64() * sigma }
			if sigma == 0 {
				noise = nil
			}
			fix, err := array.Locate(array.Simulate(src, rng.Float64()*60, noise))
			if err != nil {
				continue
			}
			solved++
			dx, dy, dz := fix.Pos.X-src.X, fix.Pos.Y-src.Y, fix.Pos.Z-src.Z
			errs = append(errs, math.Sqrt(dx*dx+dy*dy+dz*dz))
		}
		mean := 0.0
		for _, e := range errs {
			mean += e
		}
		if len(errs) > 0 {
			mean /= float64(len(errs))
		}
		// p95 of the float errors.
		p95 := 0.0
		if len(errs) > 0 {
			sorted := append([]float64(nil), errs...)
			for i := 1; i < len(sorted); i++ {
				for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
					sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
				}
			}
			p95 = sorted[int(0.95*float64(len(sorted)-1))]
		}
		t.AddRow(
			fmt.Sprintf("%.0f µs", sigma*1e6),
			fmt.Sprintf("%.1f mm", sigma*triangulate.SpeedOfSound*1e3),
			mean, p95,
			solved,
		)
	}
	t.Notes = append(t.Notes,
		"room-scale TDOA geometry dilutes precision ~30×: 10 µs mic sync (3.4 mm range noise) yields ~10 cm fixes — enough to aim a camera; 500 µs still resolves which part of the room",
		"the podium mic breaks the ceiling plane's mirror ambiguity; coplanar arrays cannot resolve height")
	return t, nil
}
