package experiments

import (
	"fmt"
	"time"

	"ace/internal/authdb"
	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/keynote"
)

func init() {
	register("E6", "KeyNote authorization overhead per command", RunE6)
}

// RunE6 measures the Fig 10 gate: per-command latency without
// authorization, with the full remote credential fetch, with caching,
// and versus delegation chain depth.
func RunE6() (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "per-command authorization overhead (Fig 10 flow)",
		Source:  "Fig 10, §3.2",
		Columns: []string{"configuration", "chain depth", "µs/call", "overhead vs ungated"},
	}

	// Authorization database with a delegation chain: admin → l1 → l2
	// → l3 → user.
	ring := keynote.NewKeyring()
	admin, err := keynote.NewPrincipal("admin")
	if err != nil {
		return nil, err
	}
	ring.Add(admin)
	store := authdb.NewStore()

	prev := admin
	prevName := "admin"
	chainCreds := map[int]string{} // depth → final licensee principal
	chainCreds[0] = "admin"
	for depth := 1; depth <= 3; depth++ {
		name := fmt.Sprintf("delegate%d", depth)
		p, err := keynote.NewPrincipal(name)
		if err != nil {
			return nil, err
		}
		ring.Add(p)
		cred := keynote.MustAssertion(prevName, fmt.Sprintf("%q", name), `app_domain == "ace"`, "")
		if err := cred.Sign(prev); err != nil {
			return nil, err
		}
		if err := store.Add(cred); err != nil {
			return nil, err
		}
		chainCreds[depth] = name
		prev, prevName = p, name
	}

	db := authdb.New(daemon.Config{}, store)
	if err := db.Start(); err != nil {
		return nil, err
	}
	defer db.Stop()

	policy := keynote.MustAssertion(keynote.Policy, `"admin"`, `app_domain == "ace"`, "")
	checker, err := keynote.NewChecker(ring, policy)
	if err != nil {
		return nil, err
	}

	startTarget := func(authz daemon.Authorizer) (*daemon.Daemon, *daemon.Pool, error) {
		d := daemon.New(daemon.Config{Name: "e6svc", Authorizer: authz})
		d.Handle(cmdlang.CommandSpec{Name: "move", AllowExtra: true},
			func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) { return nil, nil })
		if err := d.Start(); err != nil {
			return nil, nil, err
		}
		return d, daemon.NewPool(nil), nil
	}

	const n = 1500
	cmd := cmdlang.New("move").SetFloat("x", 1)

	// Baseline: no gate.
	base, basePool, err := startTarget(nil)
	if err != nil {
		return nil, err
	}
	// A failed call would make the latency sample meaningless, so the
	// measurement loop records the first error and aborts the run.
	var callErr error
	baseline := timeOp(n, func() {
		if _, err := basePool.Call(base.Addr(), cmd); err != nil && callErr == nil {
			callErr = err
		}
	})
	if callErr != nil {
		return nil, fmt.Errorf("E6 baseline: %w", callErr)
	}
	basePool.Close()
	base.Stop()
	t.AddRow("ungated", 0, float64(baseline)/float64(time.Microsecond), "1.00x")

	// principalAuthorizer runs the gate as a fixed principal (the
	// plaintext test client has no TLS identity to carry).
	type fixedPrincipal struct {
		inner *authdb.Authorizer
		as    string
	}
	gate := func(cacheSize int, principal string) *fixedPrincipal {
		return &fixedPrincipal{
			inner: &authdb.Authorizer{
				Pool:       daemon.NewPool(nil),
				AuthDBAddr: db.Addr(),
				Checker:    checker,
				Service:    "e6svc",
				CacheSize:  cacheSize,
			},
			as: principal,
		}
	}
	for _, cfg := range []struct {
		label string
		depth int
		cache int
	}{
		{"gated, remote fetch per call", 1, 0},
		{"gated, remote fetch per call", 3, 0},
		{"gated, cached credentials", 1, 64},
		{"gated, cached credentials", 3, 64},
	} {
		g := gate(cfg.cache, chainCreds[cfg.depth])
		d, pool, err := startTarget(authorizeAs{g.inner, g.as})
		if err != nil {
			return nil, err
		}
		if _, err := pool.Call(d.Addr(), cmd); err != nil {
			return nil, fmt.Errorf("E6 %s depth %d: %w", cfg.label, cfg.depth, err)
		}
		callErr = nil
		lat := timeOp(n, func() {
			if _, err := pool.Call(d.Addr(), cmd); err != nil && callErr == nil {
				callErr = err
			}
		})
		if callErr != nil {
			return nil, fmt.Errorf("E6 %s depth %d: %w", cfg.label, cfg.depth, callErr)
		}
		t.AddRow(cfg.label, cfg.depth,
			float64(lat)/float64(time.Microsecond),
			fmt.Sprintf("%.2fx", float64(lat)/float64(baseline)))
		pool.Close()
		d.Stop()
	}
	t.Notes = append(t.Notes, "expected shape: bounded overhead, dominated by the credential fetch; caching recovers most of it")
	return t, nil
}

// authorizeAs overrides the wire principal with a fixed one, so the
// experiment controls identity without a TLS stack per trial.
type authorizeAs struct {
	inner *authdb.Authorizer
	as    string
}

func (a authorizeAs) Authorize(_ string, cmd *cmdlang.CmdLine) error {
	return a.inner.Authorize(a.as, cmd)
}
