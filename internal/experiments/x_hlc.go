package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"ace/internal/daemon"
	"ace/internal/pstore"
	"ace/internal/pstore/staleness"
	"ace/internal/telemetry"
)

func init() {
	register("X8", "read spectrum: quorum vs bounded vs any GET latency on a healthy cluster", RunX8)
}

// RunX8 measures the pstore read spectrum on a healthy three-replica
// cluster: the same keyed GET workload under quorum (all replicas, a
// majority decides), bounded staleness (single replica when a
// freshness lease proves the bound), and any (first replica, no
// bound). The bounded column is the tentpole claim — with live
// leases it collapses a three-way fan-out into one replica RTT — and
// the violations column is the safety claim: on a healthy cluster no
// lease holder may ever answer below its quorum-proven version.
func RunX8() (*Table, error) {
	t := &Table{
		ID:      "X8",
		Title:   "consistency spectrum: GET latency by read mode (3 replicas)",
		Source:  "extension: hybrid logical clocks and bounded-staleness reads",
		Columns: []string{"mode", "p50 us", "p95 us", "bounded hits", "fallbacks", "violations"},
	}

	cluster, err := pstore.StartCluster(3, "", 0)
	if err != nil {
		return nil, err
	}
	defer cluster.StopAll()
	reg := telemetry.NewRegistry()
	pool := daemon.NewPoolConfig(daemon.PoolConfig{Telemetry: reg})
	defer pool.Close()
	client := pstore.NewClient(pool, cluster.Addrs())
	defer client.Close()

	const (
		keys   = 64
		reads  = 600
		warmup = 50
		bound  = 2 * time.Second
	)
	key := func(i int) string { return fmt.Sprintf("/x8/spectrum/%03d", i%keys) }
	for i := 0; i < keys; i++ {
		if _, err := client.Put(key(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			return nil, err
		}
	}

	modes := []pstore.ReadMode{pstore.ReadQuorum(), pstore.ReadBounded(bound), pstore.ReadAny()}
	for _, mode := range modes {
		before := reg.Snapshot()
		lat := make([]time.Duration, 0, reads)
		for i := 0; i < warmup+reads; i++ {
			start := time.Now()
			_, _, ok, err := client.GetModeContext(context.Background(), key(i), mode)
			if err != nil || !ok {
				return nil, fmt.Errorf("x8: %v read %d: ok=%v err=%v", mode, i, ok, err)
			}
			if i >= warmup {
				lat = append(lat, time.Since(start))
			}
		}
		after := reg.Snapshot()
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		p50 := lat[len(lat)/2]
		p95 := lat[len(lat)*95/100]
		t.AddRow(mode.String(),
			p50.Microseconds(), p95.Microseconds(),
			after.Counter(pstore.MetricBoundedHits)-before.Counter(pstore.MetricBoundedHits),
			after.Counter(pstore.MetricBoundedFallbacks)-before.Counter(pstore.MetricBoundedFallbacks),
			after.Counter(staleness.MetricViolations)-before.Counter(staleness.MetricViolations))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d reads per mode over %d keys after %d warmup; bounded Δ=%v (skew margin %v)",
			reads, keys, warmup, bound, client.Clock().MaxOffset()))
	return t, nil
}
