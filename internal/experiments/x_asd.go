package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ace/internal/asd"
	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/pstore"
)

func init() {
	register("X7", "replicated directory: edge-cached lookups and primary-kill lease survival", RunX7)
}

// RunX7 measures what replicating the service directory over the
// persistent store buys. Three directory daemons share one 3-node
// pstore; the lookup half compares directory-RPC latency against the
// client-side cache that §2.6 notifications keep coherent, and the
// failover half kills the primary replica in the middle of a renewal
// storm and counts lease expirations — the paper's robustness claim
// demands zero, because every lease deadline is durable and survivors
// confirm expiry against the store, never their own stale memory.
func RunX7() (*Table, error) {
	t := &Table{
		ID:      "X7",
		Title:   "replicated ASD: lookup caching and primary-kill survival",
		Source:  "extension: §2.5 directory over the persistent store",
		Columns: []string{"measure", "value"},
	}

	const services = 16

	cluster, err := pstore.StartCluster(3, "", 0)
	if err != nil {
		return nil, err
	}
	defer cluster.StopAll()
	pool := daemon.NewPool(nil)
	defer pool.Close()
	store := pstore.NewClient(pool, cluster.Addrs())
	defer store.Close()

	var dirs []*asd.Service
	for i := 0; i < 3; i++ {
		s := asd.New(asd.Config{
			Daemon:       daemon.Config{Name: fmt.Sprintf("x7_asd%d", i+1)},
			ReapInterval: 50 * time.Millisecond,
			Store:        store,
		})
		if err := s.Start(); err != nil {
			return nil, err
		}
		defer s.Stop()
		dirs = append(dirs, s)
	}
	if err := asd.SubscribeReplicas(pool, dirs); err != nil {
		return nil, err
	}

	names := make([]string, services)
	for i := range names {
		names[i] = fmt.Sprintf("x7_svc%d", i)
		_, err := pool.Call(dirs[i%3].Addr(), cmdlang.New(daemon.CmdRegister).
			SetWord("name", names[i]).SetWord("host", "h").SetInt("port", 1).
			SetString("addr", names[i]+":1").SetInt("lease", 600000))
		if err != nil {
			return nil, err
		}
	}

	// Lookup half: directory RPC vs warm edge cache.
	const uncachedN, warmN = 1000, 20000
	uncached := make([]time.Duration, 0, uncachedN)
	for i := 0; i < uncachedN; i++ {
		cmd := cmdlang.New(daemon.CmdLookup).SetWord("name", names[i%services])
		t0 := time.Now()
		if _, err := pool.Call(dirs[i%3].Addr(), cmd); err != nil {
			return nil, err
		}
		uncached = append(uncached, time.Since(t0))
	}
	cpool := daemon.NewPool(nil)
	defer cpool.Close()
	client := asd.NewClient(cpool, dirs[0].Addr(), dirs[1].Addr(), dirs[2].Addr())
	for _, name := range names {
		if _, err := client.Resolve(asd.Query{Name: name}); err != nil {
			return nil, err
		}
	}
	warm := make([]time.Duration, 0, warmN)
	for i := 0; i < warmN; i++ {
		t0 := time.Now()
		if _, err := client.Resolve(asd.Query{Name: names[i%services]}); err != nil {
			return nil, err
		}
		warm = append(warm, time.Since(t0))
	}
	uncachedP99 := percentile(uncached, 99)
	warmP99 := percentile(warm, 99)
	t.AddRow("uncached lookup p99", uncachedP99)
	t.AddRow("warm-cache lookup p99", warmP99)
	t.AddRow("cache speedup", fmt.Sprintf("%.0fx", float64(uncachedP99)/float64(warmP99)))

	// Failover half: renewal storm, primary killed mid-flight. Workers
	// walk the replica list on transport failure, like real daemons.
	const workers = 4
	const storm = 600 * time.Millisecond
	addrs := []string{dirs[0].Addr(), dirs[1].Addr(), dirs[2].Addr()}
	var acked atomic.Int64
	var wg sync.WaitGroup
	deadline := time.Now().Add(storm)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wpool := daemon.NewPoolConfig(daemon.PoolConfig{
				DialTimeout: 200 * time.Millisecond,
				MaxRetries:  1,
				Seed:        int64(w + 1),
			})
			defer wpool.Close()
			for i := w; time.Now().Before(deadline); i += workers {
				cmd := cmdlang.New(daemon.CmdRenew).
					SetWord("name", names[i%services]).SetInt("lease", 600000)
				for _, addr := range addrs {
					if _, err := wpool.Call(addr, cmd.Clone()); err == nil {
						acked.Add(1)
						break
					}
				}
			}
		}(w)
	}
	time.Sleep(storm / 3)
	dirs[0].Stop() // the primary dies mid-storm
	wg.Wait()

	// Several reap intervals after the kill, every lease must still be
	// resolvable through a survivor and no survivor may have counted
	// an expiration.
	time.Sleep(200 * time.Millisecond)
	surviving := 0
	for _, name := range names {
		if addr, err := asd.Resolve(pool, dirs[1].Addr(), asd.Query{Name: name}); err == nil && addr != "" {
			surviving++
		}
	}
	var expirations int64
	for _, d := range dirs[1:] {
		_, exp := d.Directory().Counters()
		expirations += exp
	}
	t.AddRow("renewals acked through primary kill", acked.Load())
	t.AddRow("leases surviving primary kill", fmt.Sprintf("%d/%d", surviving, services))
	t.AddRow("lease expirations after primary kill", expirations)
	if expirations != 0 {
		return nil, fmt.Errorf("x7: %d leases expired after the primary kill", expirations)
	}
	if surviving != services {
		return nil, fmt.Errorf("x7: only %d/%d leases survived the primary kill", surviving, services)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("3 directory replicas over a 3-node store; %d services; primary killed %v into a %v renewal storm", services, storm/3, storm))
	return t, nil
}
