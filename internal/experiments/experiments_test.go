package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 23 {
		t.Fatalf("registered %d experiments, want 23", len(all))
	}
	// E-series sorted numerically, then the extension X-series.
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "X1", "X2", "X3", "X4", "X5", "X6", "X7", "X8"}
	for i, e := range all {
		if e.ID != want[i] {
			t.Errorf("position %d: got %s want %s", i, e.ID, want[i])
		}
	}
	if _, ok := Find("e10"); !ok {
		t.Fatal("case-insensitive Find failed")
	}
	if _, ok := Find("E99"); ok {
		t.Fatal("phantom experiment found")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID: "EX", Title: "demo", Source: "Fig 0",
		Columns: []string{"a", "b"},
	}
	tab.AddRow("x", 1.2345)
	tab.AddRow(42, time.Millisecond+time.Microsecond*500)
	tab.Notes = append(tab.Notes, "a note")
	s := tab.String()
	for _, want := range []string{"EX — demo", "Fig 0", "1.23", "42", "1.5ms", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}

func TestPercentile(t *testing.T) {
	ds := []time.Duration{5, 1, 4, 2, 3}
	if percentile(ds, 0) != 1 || percentile(ds, 100) != 5 {
		t.Fatal("percentile bounds")
	}
	if percentile(ds, 50) != 3 {
		t.Fatalf("median=%v", percentile(ds, 50))
	}
	if percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
}

// TestExperimentsSmoke runs the cheap experiments end to end; the
// expensive ones are exercised by cmd/acebench and the root benches.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are integration-scale")
	}
	for _, id := range []string{"E1", "E7", "E8", "E13", "E14", "E15", "X3", "X4", "X5", "X6", "X7", "X8"} {
		e, ok := Find(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		tab, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
	}
}

// TestE7ShapeHolds asserts the reproduction's key directional claim:
// resource-aware placement beats random placement.
func TestE7ShapeHolds(t *testing.T) {
	tab, err := RunE7()
	if err != nil {
		t.Fatal(err)
	}
	var random, ll float64
	for _, row := range tab.Rows {
		v, perr := strconv.ParseFloat(row[1], 64)
		if perr != nil {
			t.Fatalf("row %v: %v", row, perr)
		}
		switch row[0] {
		case "random":
			random = v
		case "least_loaded":
			ll = v
		}
	}
	if ll > random {
		t.Fatalf("least_loaded (%.2f) worse than random (%.2f)", ll, random)
	}
}
