package experiments

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/rmi"
)

func init() {
	register("E1", "command language round trip", RunE1)
	register("E2", "ACE command language vs RMI-style serialization", RunE2)
}

// sampleCommands builds representative commands of growing size.
func sampleCommands() map[string]*cmdlang.CmdLine {
	return map[string]*cmdlang.CmdLine{
		"bare":    cmdlang.New("ping"),
		"control": cmdlang.New("move").SetFloat("pan", 45.5).SetFloat("tilt", -10.25),
		"typical": cmdlang.New("register").
			SetWord("name", "ptz_cam_1").SetWord("host", "machine25").
			SetInt("port", 1225).SetWord("room", "hawk").
			SetString("class", "Service.Device.PTZCamera.VCC3").SetInt("lease", 10000),
		//acelint:ignore verbconformance benchmark corpus: serialized and parsed in-process, never dispatched to a daemon
		"vectors": cmdlang.New("cfg").
			Set("dims", cmdlang.IntVector(640, 480)).
			Set("rates", cmdlang.FloatVector(5, 15, 29.97)).
			Set("modes", cmdlang.WordVector("auto", "manual", "tracking")),
		//acelint:ignore verbconformance benchmark corpus: serialized and parsed in-process, never dispatched to a daemon
		"matrix": cmdlang.New("calibrate").Set("m", cmdlang.Array(
			cmdlang.FloatVector(1, 0, 0), cmdlang.FloatVector(0, 1, 0), cmdlang.FloatVector(0, 0, 1))),
	}
}

// RunE1 measures Fig 5's loop: build → string → transmit → parse.
func RunE1() (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "CmdLine build→encode→parse round trip",
		Source:  "Fig 5, §2.2",
		Columns: []string{"command", "wire bytes", "encode ns/op", "parse ns/op", "round trip ns/op"},
	}
	order := []string{"bare", "control", "typical", "vectors", "matrix"}
	cmds := sampleCommands()
	const n = 20000
	for _, name := range order {
		cmd := cmds[name]
		wire := cmd.String()
		enc := timeOp(n, func() { _ = cmd.String() })
		parse := timeOp(n, func() { cmdlang.Parse(wire) }) //nolint:errcheck
		rt := timeOp(n, func() {
			s := cmd.String()
			cmdlang.Parse(s) //nolint:errcheck
		})
		t.AddRow(name, len(wire), enc.Nanoseconds(), parse.Nanoseconds(), rt.Nanoseconds())
	}
	return t, nil
}

// rmiCamera mirrors the ACE "move" service for the E2 comparison.
type rmiCamera struct{}

// Move points the camera.
func (rmiCamera) Move(pan, tilt float64) string { return "ok" }

// Register mirrors the typical directory registration message.
func (rmiCamera) Register(name, host string, port int64, room, class string, lease int64) string {
	return "ok"
}

// RunE2 pits the ACE command language against RMI-style gob
// serialization over identical loopback TCP round trips — the §2.2
// claim that ACE communications are "much more lightweight than
// utilizing something like RMI".
func RunE2() (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "ACE command vs RMI-style call (loopback TCP)",
		Source:  "§2.2 / §8.1 lightweightness claim",
		Columns: []string{"message", "ACE bytes", "RMI bytes", "ACE µs/call", "RMI µs/call", "byte ratio"},
	}

	// ACE side: a daemon with the two commands.
	d := daemon.New(daemon.Config{Name: "e2cam"})
	ok := func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) { return nil, nil }
	d.Handle(cmdlang.CommandSpec{Name: "move", AllowExtra: true}, ok)
	d.Handle(cmdlang.CommandSpec{Name: "register", AllowExtra: true}, ok)
	if err := d.Start(); err != nil {
		return nil, err
	}
	defer d.Stop()
	pool := daemon.NewPool(nil)
	defer pool.Close()

	// RMI side.
	srv := rmi.NewServer()
	srv.Register("camera", rmiCamera{})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return nil, err
	}
	defer srv.Stop()
	rc, err := rmi.Dial(srv.Addr())
	if err != nil {
		return nil, err
	}
	defer rc.Close()

	type msg struct {
		name    string
		aceCmd  *cmdlang.CmdLine
		rmiCall func() error
		rmiArgs []any
	}
	msgs := []msg{
		{
			name:   "move(pan,tilt)",
			aceCmd: cmdlang.New("move").SetFloat("pan", 45.5).SetFloat("tilt", -10.25),
			rmiCall: func() error {
				_, err := rc.Call("camera", "Move", 45.5, -10.25)
				return err
			},
		},
		{
			name: "register(6 fields)",
			aceCmd: cmdlang.New("register").
				SetWord("name", "ptz_cam_1").SetWord("host", "machine25").
				SetInt("port", 1225).SetWord("room", "hawk").
				SetString("class", "Service.Device.PTZCamera.VCC3").SetInt("lease", 10000),
			rmiCall: func() error {
				_, err := rc.Call("camera", "Register", "ptz_cam_1", "machine25", int64(1225), "hawk", "Service.Device.PTZCamera.VCC3", int64(10000))
				return err
			},
		},
	}

	const n = 2000
	for _, m := range msgs {
		// ACE wire bytes: frame header + request + framed reply.
		reqBytes := 4 + len(m.aceCmd.String()) + len(" seq=1000")
		replyBytes := 4 + len("ok seq=1000;")
		aceBytes := reqBytes + replyBytes

		// Warm up and time ACE.
		if _, err := pool.Call(d.Addr(), m.aceCmd); err != nil {
			return nil, err
		}
		var aceErr error
		aceLat := timeOp(n, func() {
			if _, err := pool.Call(d.Addr(), m.aceCmd); err != nil && aceErr == nil {
				aceErr = err
			}
		})
		if aceErr != nil {
			return nil, aceErr
		}

		// RMI bytes: measure the steady-state per-call delta (gob
		// sends type descriptors once per stream, like Java's
		// serialization headers; steady state is the fair comparison).
		if err := m.rmiCall(); err != nil {
			return nil, err
		}
		s0, r0 := rc.Traffic()
		for i := 0; i < 10; i++ {
			if err := m.rmiCall(); err != nil {
				return nil, err
			}
		}
		s1, r1 := rc.Traffic()
		rmiBytes := int((s1 - s0 + r1 - r0) / 10)
		rmiLat := timeOp(n, func() { m.rmiCall() }) //nolint:errcheck

		t.AddRow(m.name, aceBytes, rmiBytes,
			float64(aceLat)/float64(time.Microsecond),
			float64(rmiLat)/float64(time.Microsecond),
			fmt.Sprintf("%.2fx", float64(rmiBytes)/float64(aceBytes)))
	}
	// Serialization-only comparison (no network, no dispatch): the
	// purest form of the lightweightness claim.
	moveCmd := msgs[0].aceCmd
	aceSer := timeOp(20000, func() {
		s := moveCmd.String()
		cmdlang.Parse(s) //nolint:errcheck
	})
	var gobBytes int
	gobSer := timeOp(20000, func() {
		var buf bytes.Buffer
		enc := gob.NewEncoder(&buf)
		enc.Encode(&rmi.Request{Seq: 1, Service: "camera", Method: "Move", Args: []any{45.5, -10.25}}) //nolint:errcheck
		gobBytes = buf.Len()
		var req rmi.Request
		gob.NewDecoder(&buf).Decode(&req) //nolint:errcheck
	})
	t.AddRow("serialize-only move", len(moveCmd.String()), gobBytes,
		float64(aceSer)/float64(time.Microsecond),
		float64(gobSer)/float64(time.Microsecond),
		fmt.Sprintf("%.2fx", float64(gobBytes)/float64(len(moveCmd.String()))))

	t.Notes = append(t.Notes,
		"expected shape: ACE text commands are smaller than gob/RMI object serialization (the paper's lightweightness claim)",
		"fresh-stream gob cost includes the type descriptors Java-style serialization resends per stream")
	return t, nil
}
