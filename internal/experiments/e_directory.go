package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ace/internal/asd"
	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/hier"
	"ace/internal/netlog"
	"ace/internal/roomdb"
	"ace/internal/userdb"
	"ace/internal/wire"
	"ace/internal/workspace"
)

func init() {
	register("E3", "ASD lookup under growing directories", RunE3)
	register("E4", "notification fan-out latency", RunE4)
	register("E5", "daemon startup sequence latency", RunE5)
	register("E11", "central-service scalability (ASD/AUD/WSS)", RunE11)
	register("E12", "TLS vs plaintext command transport", RunE12)
}

// RunE3 measures the Fig 7 lookup path as the directory grows, plus
// lease-expiry reaping.
func RunE3() (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "ASD register/lookup throughput and lease reaping",
		Source:  "Fig 7, §2.4",
		Columns: []string{"directory size", "register µs/op", "lookup-by-name µs/op", "lookup-by-class µs/op", "reaped"},
	}
	for _, size := range []int{10, 100, 1000} {
		dir := asd.New(asd.Config{ReapInterval: time.Hour})
		if err := dir.Start(); err != nil {
			return nil, err
		}
		pool := daemon.NewPool(nil)

		regCmd := func(i int) *cmdlang.CmdLine {
			return cmdlang.New(daemon.CmdRegister).
				SetWord("name", fmt.Sprintf("svc%05d", i)).
				SetWord("host", "h").SetInt("port", int64(i)).
				SetString("addr", fmt.Sprintf("h:%d", i)).
				SetString("class", hier.ClassPTZCamera).
				SetInt("lease", 60000)
		}
		regStart := time.Now()
		for i := 0; i < size; i++ {
			if _, err := pool.Call(dir.Addr(), regCmd(i)); err != nil {
				return nil, err
			}
		}
		regUs := float64(time.Since(regStart).Microseconds()) / float64(size)

		// Record the first lookup failure: a dead directory would
		// otherwise be reported as an impossibly fast lookup time.
		var lookupErr error
		const lookups = 2000
		byName := timeOp(lookups, func() {
			if _, err := pool.Call(dir.Addr(), cmdlang.New(daemon.CmdLookup).
				SetWord("name", fmt.Sprintf("svc%05d", size/2))); err != nil && lookupErr == nil {
				lookupErr = err
			}
		})
		byClass := timeOp(200, func() {
			if _, err := pool.Call(dir.Addr(), cmdlang.New(daemon.CmdLookup).
				SetString("class", hier.ClassDevice).SetInt("limit", 5)); err != nil && lookupErr == nil {
				lookupErr = err
			}
		})
		if lookupErr != nil {
			return nil, fmt.Errorf("E10 lookups at size %d: %w", size, lookupErr)
		}

		// Expire half the directory and reap.
		for i := 0; i < size/2; i++ {
			dir.Directory().Register(asd.Entry{ //nolint:errcheck
				Name: fmt.Sprintf("svc%05d", i), Lease: time.Nanosecond,
			})
		}
		time.Sleep(2 * time.Millisecond)
		reaped := len(dir.Directory().Reap())

		t.AddRow(size, regUs,
			float64(byName)/float64(time.Microsecond),
			float64(byClass)/float64(time.Microsecond),
			reaped)
		pool.Close()
		dir.Stop()
	}
	return t, nil
}

// RunE4 measures Fig 8: time from command execution to delivery at
// every notified service, versus the listener count.
func RunE4() (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "notification dispatch latency vs listener count",
		Source:  "Fig 8, §2.5",
		Columns: []string{"listeners", "all-delivered ms (mean)", "all-delivered ms (p95)"},
	}
	for _, listeners := range []int{1, 4, 16, 64} {
		source := daemon.New(daemon.Config{Name: "e4src"})
		source.Handle(cmdlang.CommandSpec{Name: "tick"},
			func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) { return nil, nil })
		if err := source.Start(); err != nil {
			return nil, err
		}

		var delivered atomic.Int64
		var sinks []*daemon.Daemon
		pool := daemon.NewPool(nil)
		for i := 0; i < listeners; i++ {
			sink := daemon.New(daemon.Config{Name: fmt.Sprintf("e4sink%d", i)})
			sink.Handle(cmdlang.CommandSpec{Name: "onTick", AllowExtra: true},
				func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
					delivered.Add(1)
					return nil, nil
				})
			if err := sink.Start(); err != nil {
				return nil, err
			}
			sinks = append(sinks, sink)
			if err := daemon.Subscribe(pool, source.Addr(), "tick", sink.Name(), sink.Addr(), "onTick"); err != nil {
				return nil, err
			}
		}

		const rounds = 30
		var times []time.Duration
		for r := 0; r < rounds; r++ {
			want := int64((r + 1) * listeners)
			start := time.Now()
			if _, err := pool.Call(source.Addr(), cmdlang.New("tick")); err != nil {
				return nil, err
			}
			for delivered.Load() < want {
				time.Sleep(50 * time.Microsecond)
			}
			times = append(times, time.Since(start))
		}
		var sum time.Duration
		for _, d := range times {
			sum += d
		}
		t.AddRow(listeners,
			float64(sum/time.Duration(rounds))/float64(time.Millisecond),
			float64(percentile(times, 95))/float64(time.Millisecond))

		pool.Close()
		for _, s := range sinks {
			s.Stop()
		}
		source.Stop()
	}
	return t, nil
}

// RunE5 measures the Fig 9 startup sequence: room database, ASD
// registration, net-logger record.
func RunE5() (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "daemon startup sequence (roomdb→ASD→netlog) latency",
		Source:  "Fig 9, §2.6",
		Columns: []string{"transport", "steps", "startup ms (mean)", "startup ms (p95)"},
	}
	run := func(label string, transportFor func(string) (*wire.Transport, error)) error {
		tp := func(name string) *wire.Transport {
			if transportFor == nil {
				return nil
			}
			tr, _ := transportFor(name)
			return tr
		}
		dir := asd.New(asd.Config{Daemon: daemon.Config{Transport: tp("asd")}})
		if err := dir.Start(); err != nil {
			return err
		}
		defer dir.Stop()
		rooms := roomdb.New(daemon.Config{Transport: tp("roomdb"), ASDAddr: dir.Addr()}, nil)
		if err := rooms.Start(); err != nil {
			return err
		}
		defer rooms.Stop()
		logger := netlog.New(daemon.Config{Transport: tp("netlog"), ASDAddr: dir.Addr()}, 0)
		if err := logger.Start(); err != nil {
			return err
		}
		defer logger.Stop()

		const trials = 40
		var times []time.Duration
		for i := 0; i < trials; i++ {
			d := daemon.New(daemon.Config{
				Name:       fmt.Sprintf("e5svc%d", i),
				Room:       "hawk",
				Transport:  tp(fmt.Sprintf("e5svc%d", i)),
				ASDAddr:    dir.Addr(),
				RoomDBAddr: rooms.Addr(),
				NetLogAddr: logger.Addr(),
			})
			start := time.Now()
			if err := d.Start(); err != nil {
				return err
			}
			times = append(times, time.Since(start))
			d.Stop()
		}
		var sum time.Duration
		for _, d := range times {
			sum += d
		}
		t.AddRow(label, "roomdb+asd+netlog",
			float64(sum/time.Duration(trials))/float64(time.Millisecond),
			float64(percentile(times, 95))/float64(time.Millisecond))
		return nil
	}
	if err := run("plaintext", nil); err != nil {
		return nil, err
	}
	ca, err := wire.NewCA("e5")
	if err != nil {
		return nil, err
	}
	if err := run("TLS", func(name string) (*wire.Transport, error) {
		return wire.NewTransport(ca, name)
	}); err != nil {
		return nil, err
	}
	return t, nil
}

// RunE11 measures the §9 scalability goal: central services under
// growing concurrent client counts.
func RunE11() (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   "central-service throughput vs concurrent clients",
		Source:  "§9 (\"hundreds and even thousands of users\")",
		Columns: []string{"clients", "ASD lookups/s", "AUD getUser/s", "WSS open/s"},
	}

	dir := asd.New(asd.Config{})
	if err := dir.Start(); err != nil {
		return nil, err
	}
	defer dir.Stop()
	adminPool := daemon.NewPool(nil)
	defer adminPool.Close()
	if _, err := adminPool.Call(dir.Addr(), cmdlang.New(daemon.CmdRegister).
		SetWord("name", "target").SetWord("host", "h").SetInt("port", 1).
		SetString("addr", "h:1").SetInt("lease", 600000)); err != nil {
		return nil, err
	}

	aud := userdb.New(daemon.Config{}, nil)
	if err := aud.Start(); err != nil {
		return nil, err
	}
	defer aud.Stop()
	aud.DB().Add(userdb.User{Username: "john_doe", FullName: "John Doe"}) //nolint:errcheck

	vnc := workspace.NewVNCServer(daemon.Config{})
	if err := vnc.Start(); err != nil {
		return nil, err
	}
	defer vnc.Stop()
	wss := workspace.NewWSS(workspace.WSSConfig{VNCAddrs: []string{vnc.Addr()}})
	if err := wss.Start(); err != nil {
		return nil, err
	}
	defer wss.Stop()
	if _, err := wss.Create("john_doe", ""); err != nil {
		return nil, err
	}

	measure := func(clients int, addr string, cmd func() *cmdlang.CmdLine) (float64, error) {
		const perClient = 100
		var wg sync.WaitGroup
		errCh := make(chan error, clients)
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				cl, err := wire.Dial(nil, addr)
				if err != nil {
					errCh <- err
					return
				}
				defer func() { _ = cl.Close() }()
				for i := 0; i < perClient; i++ {
					if _, err := cl.Call(cmd()); err != nil {
						errCh <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		select {
		case err := <-errCh:
			return 0, err
		default:
		}
		total := float64(clients * perClient)
		return total / time.Since(start).Seconds(), nil
	}

	for _, clients := range []int{1, 10, 50, 200} {
		asdRate, err := measure(clients, dir.Addr(), func() *cmdlang.CmdLine {
			return cmdlang.New(daemon.CmdLookup).SetWord("name", "target")
		})
		if err != nil {
			return nil, err
		}
		audRate, err := measure(clients, aud.Addr(), func() *cmdlang.CmdLine {
			return cmdlang.New("getUser").SetWord("username", "john_doe")
		})
		if err != nil {
			return nil, err
		}
		wssRate, err := measure(clients, wss.Addr(), func() *cmdlang.CmdLine {
			return cmdlang.New("openWorkspace").SetWord("user", "john_doe")
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(clients, asdRate, audRate, wssRate)
	}
	t.Notes = append(t.Notes, "each client performs 100 sequential calls on its own connection")
	return t, nil
}

// RunE12 measures the §3.1 security tax: TLS vs plaintext transport.
func RunE12() (*Table, error) {
	t := &Table{
		ID:      "E12",
		Title:   "TLS vs plaintext command transport",
		Source:  "§3.1",
		Columns: []string{"transport", "dial+handshake ms", "ping µs/call"},
	}
	run := func(label string, serverT, clientT *wire.Transport) error {
		d := daemon.New(daemon.Config{Name: "e12", Transport: serverT})
		if err := d.Start(); err != nil {
			return err
		}
		defer d.Stop()

		const dials = 20
		dialStart := time.Now()
		for i := 0; i < dials; i++ {
			c, err := wire.Dial(clientT, d.Addr())
			if err != nil {
				return err
			}
			if _, err := c.Call(cmdlang.New(daemon.CmdPing)); err != nil {
				return err
			}
			_ = c.Close()
		}
		dialMs := float64(time.Since(dialStart)/dials) / float64(time.Millisecond)

		c, err := wire.Dial(clientT, d.Addr())
		if err != nil {
			return err
		}
		defer func() { _ = c.Close() }()
		var pingErr error
		lat := timeOp(3000, func() {
			if _, err := c.Call(cmdlang.New(daemon.CmdPing)); err != nil && pingErr == nil {
				pingErr = err
			}
		})
		if pingErr != nil {
			return pingErr
		}
		t.AddRow(label, dialMs, float64(lat)/float64(time.Microsecond))
		return nil
	}
	if err := run("plaintext", nil, nil); err != nil {
		return nil, err
	}
	ca, err := wire.NewCA("e12")
	if err != nil {
		return nil, err
	}
	serverT, err := wire.NewTransport(ca, "e12")
	if err != nil {
		return nil, err
	}
	clientT, err := wire.NewTransport(ca, "client")
	if err != nil {
		return nil, err
	}
	if err := run("TLS 1.3 mutual", serverT, clientT); err != nil {
		return nil, err
	}
	return t, nil
}
