package monitor

import (
	"testing"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/simhost"
)

// Cross-daemon SRM/HAL behaviour is covered in the launcher package;
// these tests pin the monitor-local logic.

func TestHRMDefaults(t *testing.T) {
	host := simhost.NewHost("bar", 450, 1<<30, 1<<40)
	h := NewHRM(daemon.Config{}, host)
	if h.Name() != "hrm_bar" || h.Class() != ClassHRM {
		t.Fatalf("name=%q class=%q", h.Name(), h.Class())
	}
	if h.Host() != host {
		t.Fatal("host not retained")
	}
}

func TestSRMPickDeterministicWithSeed(t *testing.T) {
	a := NewSRM(daemon.Config{Name: "srmA"}, 7)
	b := NewSRM(daemon.Config{Name: "srmB"}, 7)
	for _, s := range []*SRM{a, b} {
		for i, name := range []string{"h1", "h2", "h3", "h4"} {
			s.AddHost(name, "", "")
			// Mark healthy by hand (no HRM in this unit test).
			s.mu.Lock()
			s.hosts[name].Healthy = true
			s.hosts[name].Status.Speed = float64(100 * (i + 1))
			s.mu.Unlock()
		}
	}
	for i := 0; i < 10; i++ {
		pa, errA := a.Pick(PolicyRandom, 0)
		pb, errB := b.Pick(PolicyRandom, 0)
		if errA != nil || errB != nil {
			t.Fatal(errA, errB)
		}
		if pa.Host != pb.Host {
			t.Fatalf("same-seed SRMs diverged: %s vs %s", pa.Host, pb.Host)
		}
	}
}

func TestSRMRemoveHost(t *testing.T) {
	s := NewSRM(daemon.Config{}, 1)
	s.AddHost("gone", "", "")
	s.RemoveHost("gone")
	if len(s.Reports()) != 0 {
		t.Fatal("host not removed")
	}
	if _, err := s.Pick(PolicyLeastLoaded, 0); err == nil {
		t.Fatal("pick from empty pool succeeded")
	}
}

func TestSRMLeastLoadedPrefersFasterWhenEqualLoad(t *testing.T) {
	s := NewSRM(daemon.Config{}, 1)
	for name, speed := range map[string]float64{"slow": 100, "fast": 500} {
		s.AddHost(name, "", "")
		s.mu.Lock()
		s.hosts[name].Healthy = true
		s.hosts[name].Status.Speed = speed
		s.mu.Unlock()
	}
	pick, err := s.Pick(PolicyLeastLoaded, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pick.Host != "fast" {
		t.Fatalf("picked %s", pick.Host)
	}
}

func TestSRMOptimisticAccounting(t *testing.T) {
	// Repeated picks between refreshes should spread over hosts, not
	// pile onto the same one.
	s := NewSRM(daemon.Config{}, 1)
	for _, name := range []string{"h1", "h2"} {
		s.AddHost(name, "", "")
		s.mu.Lock()
		s.hosts[name].Healthy = true
		s.hosts[name].Status.Speed = 100
		s.mu.Unlock()
	}
	counts := map[string]int{}
	for i := 0; i < 10; i++ {
		p, err := s.Pick(PolicyLeastLoaded, 0)
		if err != nil {
			t.Fatal(err)
		}
		counts[p.Host]++
	}
	if counts["h1"] != 5 || counts["h2"] != 5 {
		t.Fatalf("burst not spread: %v", counts)
	}
}

func TestAddHostCommand(t *testing.T) {
	s := NewSRM(daemon.Config{}, 1)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	pool := daemon.NewPool(nil)
	defer pool.Close()
	if _, err := pool.Call(s.Addr(), cmdlang.New("addHost").
		SetWord("host", "remote1").SetString("hrm", "r:1").SetString("hal", "r:2")); err != nil {
		t.Fatal(err)
	}
	reports := s.Reports()
	if len(reports) != 1 || reports[0].HRMAddr != "r:1" || reports[0].HALAddr != "r:2" {
		t.Fatalf("reports=%+v", reports)
	}
	if _, err := pool.Call(s.Addr(), cmdlang.New("removeHost").SetWord("host", "remote1")); err != nil {
		t.Fatal(err)
	}
	if len(s.Reports()) != 0 {
		t.Fatal("removeHost command failed")
	}
}
