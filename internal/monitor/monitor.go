// Package monitor implements the ACE resource monitors: the HRM —
// Host Resource Monitor (§4.1), which reports one host's CPU load,
// CPU speed (in bogomips), memory, disk, and network state, and the
// SRM — System Resource Monitor (§4.2), which aggregates all HRMs to
// provide uniform allocation of system resources (Fig 11).
package monitor

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/hier"
	"ace/internal/simhost"
)

// Hierarchy classes for the monitor daemons.
const (
	ClassHRM = hier.Root + ".Monitor.HRM"
	ClassSRM = hier.Root + ".Monitor.SRM"
)

// HRM is the host resource monitor daemon for one (simulated) host.
type HRM struct {
	*daemon.Daemon
	host *simhost.Host
}

// NewHRM wraps a host in an HRM daemon.
func NewHRM(dcfg daemon.Config, host *simhost.Host) *HRM {
	if dcfg.Name == "" {
		dcfg.Name = "hrm_" + host.Name()
	}
	if dcfg.Class == "" {
		dcfg.Class = ClassHRM
	}
	if dcfg.Host == "" {
		dcfg.Host = host.Name()
	}
	h := &HRM{Daemon: daemon.New(dcfg), host: host}
	h.install()
	return h
}

// Host exposes the monitored host.
func (h *HRM) Host() *simhost.Host { return h.host }

func statusReply(st simhost.Status) *cmdlang.CmdLine {
	return cmdlang.OK().
		SetWord("host", st.Host).
		SetFloat("speed", st.Speed).
		SetFloat("cpuload", st.CPULoad).
		SetInt("runnable", int64(st.Runnable)).
		SetInt("memtotal", st.MemTotal).
		SetInt("memused", st.MemUsed).
		SetInt("memavail", st.MemTotal-st.MemUsed).
		SetInt("disktotal", st.DiskTotal).
		SetFloat("netload", st.NetLoad)
}

func (h *HRM) install() {
	h.Handle(cmdlang.CommandSpec{
		Name: "hostStatus",
		Doc:  "report this host's resource state (CPU load, bogomips, memory, disk, net)",
	}, func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		return statusReply(h.host.Status()), nil
	})
}

// HostReport is the SRM's view of one host.
type HostReport struct {
	Host    string
	HRMAddr string
	HALAddr string
	Status  simhost.Status
	Healthy bool
	LastErr string
}

// Policy selects how the SRM picks a host for a new application.
type Policy string

const (
	// PolicyRandom places uniformly at random — the baseline the SAL
	// may use "randomly or by resource allocation" (§4.4).
	PolicyRandom Policy = "random"
	// PolicyLeastLoaded minimizes expected completion share:
	// (runnable+1)/speed, i.e. speed-aware least-loaded.
	PolicyLeastLoaded Policy = "least_loaded"
)

// SRM is the system resource monitor daemon.
type SRM struct {
	*daemon.Daemon

	mu    sync.Mutex
	hosts map[string]*HostReport // host name → report
	rng   *rand.Rand
}

// NewSRM constructs the system monitor.
func NewSRM(dcfg daemon.Config, seed int64) *SRM {
	if dcfg.Name == "" {
		dcfg.Name = "srm"
	}
	if dcfg.Class == "" {
		dcfg.Class = ClassSRM
	}
	s := &SRM{
		Daemon: daemon.New(dcfg),
		hosts:  make(map[string]*HostReport),
		rng:    rand.New(rand.NewSource(seed)),
	}
	s.install()
	return s
}

// AddHost registers a host's HRM (and optionally HAL) address with
// the system monitor.
func (s *SRM) AddHost(host, hrmAddr, halAddr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hosts[host] = &HostReport{Host: host, HRMAddr: hrmAddr, HALAddr: halAddr}
}

// RemoveHost drops a host from the pool.
func (s *SRM) RemoveHost(host string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.hosts, host)
}

// Refresh polls every registered HRM for its status (the regular
// communication the SRM holds with all the HRMs in the network).
func (s *SRM) Refresh() {
	s.mu.Lock()
	hosts := make([]*HostReport, 0, len(s.hosts))
	for _, h := range s.hosts {
		hosts = append(hosts, h)
	}
	s.mu.Unlock()

	for _, h := range hosts {
		reply, err := s.Pool().Call(h.HRMAddr, cmdlang.New("hostStatus"))
		s.mu.Lock()
		if err != nil {
			h.Healthy = false
			h.LastErr = err.Error()
		} else {
			h.Healthy = true
			h.LastErr = ""
			h.Status = simhost.Status{
				Host:     reply.Str("host", h.Host),
				Speed:    reply.Float("speed", 0),
				CPULoad:  reply.Float("cpuload", 0),
				Runnable: int(reply.Int("runnable", 0)),
				MemTotal: reply.Int("memtotal", 0),
				MemUsed:  reply.Int("memused", 0),
				NetLoad:  reply.Float("netload", 0),
			}
		}
		s.mu.Unlock()
	}
}

// Reports returns the current per-host view, sorted by host name.
func (s *SRM) Reports() []HostReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]HostReport, 0, len(s.hosts))
	for _, h := range s.hosts {
		out = append(out, *h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Host < out[j].Host })
	return out
}

// Pick chooses a host for a new application under the given policy,
// requiring minMem bytes available. It returns the chosen report.
func (s *SRM) Pick(policy Policy, minMem int64) (HostReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var candidates []*HostReport
	for _, h := range s.hosts {
		if !h.Healthy {
			continue
		}
		if minMem > 0 && h.Status.MemTotal-h.Status.MemUsed < minMem {
			continue
		}
		candidates = append(candidates, h)
	}
	if len(candidates) == 0 {
		return HostReport{}, fmt.Errorf("srm: no healthy host with %d bytes free", minMem)
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].Host < candidates[j].Host })
	switch policy {
	case PolicyRandom:
		return *candidates[s.rng.Intn(len(candidates))], nil
	case PolicyLeastLoaded, "":
		best := candidates[0]
		bestScore := math.Inf(1)
		for _, h := range candidates {
			speed := h.Status.Speed
			if speed <= 0 {
				speed = 1
			}
			score := (float64(h.Status.Runnable) + 1) / speed
			if score < bestScore {
				bestScore = score
				best = h
			}
		}
		// Optimistically account for the placement so bursts spread
		// out between refreshes.
		best.Status.Runnable++
		r := *best
		r.Status.Runnable--
		return r, nil
	default:
		return HostReport{}, fmt.Errorf("srm: unknown policy %q", policy)
	}
}

func (s *SRM) install() {
	s.Handle(cmdlang.CommandSpec{
		Name: "addHost",
		Doc:  "register a host's HRM (and optional HAL) with the system monitor",
		Args: []cmdlang.ArgSpec{
			{Name: "host", Kind: cmdlang.KindWord, Required: true},
			{Name: "hrm", Kind: cmdlang.KindString, Required: true},
			{Name: "hal", Kind: cmdlang.KindString},
		},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		s.AddHost(c.Str("host", ""), c.Str("hrm", ""), c.Str("hal", ""))
		return nil, nil
	})

	s.Handle(cmdlang.CommandSpec{
		Name: "removeHost",
		Args: []cmdlang.ArgSpec{{Name: "host", Kind: cmdlang.KindWord, Required: true}},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		s.RemoveHost(c.Str("host", ""))
		return nil, nil
	})

	s.Handle(cmdlang.CommandSpec{
		Name: "systemStatus",
		Doc:  "refresh and report every host's resource state",
	}, func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		s.Refresh()
		reports := s.Reports()
		hosts := make([]string, len(reports))
		loads := make([]float64, len(reports))
		speeds := make([]float64, len(reports))
		for i, r := range reports {
			hosts[i] = r.Host
			loads[i] = r.Status.CPULoad
			speeds[i] = r.Status.Speed
		}
		return cmdlang.OK().
			SetInt("count", int64(len(reports))).
			Set("hosts", cmdlang.WordVector(hosts...)).
			Set("loads", cmdlang.FloatVector(loads...)).
			Set("speeds", cmdlang.FloatVector(speeds...)), nil
	})

	s.Handle(cmdlang.CommandSpec{
		Name: "bestHost",
		Doc:  "pick a host for a new application",
		Args: []cmdlang.ArgSpec{
			{Name: "policy", Kind: cmdlang.KindWord},
			{Name: "mem", Kind: cmdlang.KindInt},
		},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		s.Refresh()
		r, err := s.Pick(Policy(c.Str("policy", string(PolicyLeastLoaded))), c.Int("mem", 0))
		if err != nil {
			return cmdlang.Fail(cmdlang.CodeUnavailable, err.Error()), nil
		}
		reply := cmdlang.OK().SetWord("host", r.Host).SetString("hrm", r.HRMAddr)
		if r.HALAddr != "" {
			reply.SetString("hal", r.HALAddr)
		}
		return reply, nil
	})
}
