// Package netlog implements the ACE Network Logger service (§4.14):
// the environment's history. Services report lifecycle events and
// security-relevant activity (failed identifications, denied
// commands) so administrators can audit the system later.
package netlog

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/hier"
)

// ServiceName is the conventional instance name of the logger daemon.
const ServiceName = "netlog"

// DefaultCapacity bounds the in-memory history ring.
const DefaultCapacity = 65536

// Entry is one logged event.
type Entry struct {
	Seq    int64
	Time   time.Time
	Source string
	Event  string
	Host   string
	Room   string
	Detail string
}

// Log is a bounded, append-only event history with query support.
type Log struct {
	mu      sync.Mutex
	entries []Entry
	start   int // ring start index
	count   int
	nextSeq int64
	now     func() time.Time
}

// NewLog returns a log holding up to capacity entries (DefaultCapacity
// if capacity <= 0).
func NewLog(capacity int) *Log {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Log{entries: make([]Entry, capacity), now: time.Now, nextSeq: 1}
}

// SetClock injects a time source (tests).
func (l *Log) SetClock(now func() time.Time) { l.now = now }

// Append records an event and returns its sequence number.
func (l *Log) Append(e Entry) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	e.Seq = l.nextSeq
	l.nextSeq++
	if e.Time.IsZero() {
		e.Time = l.now()
	}
	idx := (l.start + l.count) % len(l.entries)
	if l.count == len(l.entries) {
		l.start = (l.start + 1) % len(l.entries)
		l.entries[idx] = e
	} else {
		l.entries[idx] = e
		l.count++
	}
	return e.Seq
}

// Query filters the history. Zero fields match everything.
type Query struct {
	Source   string
	Event    string
	SinceSeq int64
	Contains string
	Limit    int
}

// Search returns matching entries in append order.
func (l *Log) Search(q Query) []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Entry
	for i := 0; i < l.count; i++ {
		e := l.entries[(l.start+i)%len(l.entries)]
		if q.Source != "" && e.Source != q.Source {
			continue
		}
		if q.Event != "" && e.Event != q.Event {
			continue
		}
		if q.SinceSeq > 0 && e.Seq <= q.SinceSeq {
			continue
		}
		if q.Contains != "" && !strings.Contains(e.Detail, q.Contains) {
			continue
		}
		out = append(out, e)
		if q.Limit > 0 && len(out) >= q.Limit {
			break
		}
	}
	return out
}

// Len returns the number of retained entries.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// Service is the logger wrapped as an ACE daemon.
type Service struct {
	*daemon.Daemon
	log *Log
}

// New constructs the logger daemon.
func New(dcfg daemon.Config, capacity int) *Service {
	if dcfg.Name == "" {
		dcfg.Name = ServiceName
	}
	if dcfg.Class == "" {
		dcfg.Class = hier.Root + ".Logger"
	}
	s := &Service{Daemon: daemon.New(dcfg), log: NewLog(capacity)}
	s.install()
	return s
}

// Log exposes the underlying history.
func (s *Service) Log() *Log { return s.log }

func (s *Service) install() {
	s.Handle(cmdlang.CommandSpec{
		Name: daemon.CmdLogEvent,
		Doc:  "record an event in the environment history",
		Args: []cmdlang.ArgSpec{
			{Name: "source", Kind: cmdlang.KindWord, Required: true},
			{Name: "event", Kind: cmdlang.KindWord, Required: true},
			{Name: "host", Kind: cmdlang.KindWord},
			{Name: "room", Kind: cmdlang.KindWord},
			{Name: "detail", Kind: cmdlang.KindString},
		},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		seq := s.log.Append(Entry{
			Source: c.Str("source", ""),
			Event:  c.Str("event", ""),
			Host:   c.Str("host", ""),
			Room:   c.Str("room", ""),
			Detail: c.Str("detail", ""),
		})
		return cmdlang.OK().SetInt("logseq", seq), nil
	})

	s.Handle(cmdlang.CommandSpec{
		Name: "query",
		Doc:  "search the event history",
		Args: []cmdlang.ArgSpec{
			{Name: "source", Kind: cmdlang.KindWord},
			{Name: "event", Kind: cmdlang.KindWord},
			{Name: "since", Kind: cmdlang.KindInt},
			{Name: "contains", Kind: cmdlang.KindString},
			{Name: "limit", Kind: cmdlang.KindInt},
		},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		entries := s.log.Search(Query{
			Source:   c.Str("source", ""),
			Event:    c.Str("event", ""),
			SinceSeq: c.Int("since", 0),
			Contains: c.Str("contains", ""),
			Limit:    int(c.Int("limit", 0)),
		})
		lines := make([]string, len(entries))
		for i, e := range entries {
			lines[i] = fmt.Sprintf("%d %s %s %s %s", e.Seq, e.Time.Format(time.RFC3339), e.Source, e.Event, e.Detail)
		}
		return cmdlang.OK().SetInt("count", int64(len(entries))).Set("lines", cmdlang.StringVector(lines...)), nil
	})
}
