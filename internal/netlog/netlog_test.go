package netlog

import (
	"fmt"
	"testing"
	"time"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
)

func TestLogAppendAndSearch(t *testing.T) {
	l := NewLog(16)
	l.Append(Entry{Source: "fiu", Event: "id_failed", Detail: "unknown fingerprint at hawk door"})
	l.Append(Entry{Source: "fiu", Event: "id_ok", Detail: "john_doe at hawk door"})
	l.Append(Entry{Source: "asd", Event: "expired", Detail: "service cam1 lease expired"})

	if got := l.Search(Query{Source: "fiu"}); len(got) != 2 {
		t.Fatalf("fiu=%v", got)
	}
	if got := l.Search(Query{Event: "id_failed"}); len(got) != 1 {
		t.Fatalf("failed=%v", got)
	}
	if got := l.Search(Query{Contains: "john_doe"}); len(got) != 1 {
		t.Fatalf("contains=%v", got)
	}
	if got := l.Search(Query{SinceSeq: 2}); len(got) != 1 || got[0].Source != "asd" {
		t.Fatalf("since=%v", got)
	}
	if got := l.Search(Query{Limit: 2}); len(got) != 2 {
		t.Fatalf("limit=%v", got)
	}
	if l.Len() != 3 {
		t.Fatalf("len=%d", l.Len())
	}
}

func TestLogRingOverwrite(t *testing.T) {
	l := NewLog(4)
	for i := 0; i < 10; i++ {
		l.Append(Entry{Source: "s", Event: "e", Detail: fmt.Sprintf("d%d", i)})
	}
	if l.Len() != 4 {
		t.Fatalf("len=%d", l.Len())
	}
	got := l.Search(Query{})
	if len(got) != 4 || got[0].Detail != "d6" || got[3].Detail != "d9" {
		t.Fatalf("got=%v", got)
	}
	// Sequence numbers keep increasing monotonically.
	for i := 1; i < len(got); i++ {
		if got[i].Seq != got[i-1].Seq+1 {
			t.Fatalf("seqs=%v", got)
		}
	}
}

func TestLogClockStamps(t *testing.T) {
	l := NewLog(4)
	fixed := time.Date(2000, 8, 21, 12, 0, 0, 0, time.UTC)
	l.SetClock(func() time.Time { return fixed })
	l.Append(Entry{Source: "x", Event: "y"})
	got := l.Search(Query{})
	if !got[0].Time.Equal(fixed) {
		t.Fatalf("time=%v", got[0].Time)
	}
}

func TestServiceLogAndQuery(t *testing.T) {
	s := New(daemon.Config{}, 128)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)

	pool := daemon.NewPool(nil)
	defer pool.Close()

	reply, err := pool.Call(s.Addr(), cmdlang.New(daemon.CmdLogEvent).
		SetWord("source", "foo").SetWord("event", "started").
		SetWord("host", "bar").SetWord("room", "hawk").
		SetString("detail", "service foo started on host bar"))
	if err != nil {
		t.Fatal(err)
	}
	if reply.Int("logseq", 0) != 1 {
		t.Fatalf("seq=%v", reply)
	}

	res, err := pool.Call(s.Addr(), cmdlang.New("query").SetWord("source", "foo"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Int("count", 0) != 1 {
		t.Fatalf("count=%v", res)
	}
	lines := res.Strings("lines")
	if len(lines) != 1 {
		t.Fatalf("lines=%v", lines)
	}
}

func TestDaemonStartupLogsEvent(t *testing.T) {
	// Fig 9 step 5: a starting daemon records its start in the logger.
	s := New(daemon.Config{}, 128)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)

	d := daemon.New(daemon.Config{Name: "foo", Host: "bar", Room: "hawk", NetLogAddr: s.Addr()})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	started := s.Log().Search(Query{Source: "foo", Event: "started"})
	if len(started) != 1 {
		t.Fatalf("started events=%v", started)
	}
	d.Stop()
	stopped := s.Log().Search(Query{Source: "foo", Event: "stopped"})
	if len(stopped) != 1 {
		t.Fatalf("stopped events=%v", stopped)
	}
}
