package mobile

import (
	"testing"
	"time"

	"ace/internal/asd"
	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/hier"
)

func startDir(t *testing.T) *asd.Service {
	t.Helper()
	dir := asd.New(asd.Config{ReapInterval: 10 * time.Millisecond})
	if err := dir.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dir.Stop)
	return dir
}

func startEcho(t *testing.T, name, class, asdAddr string) *daemon.Daemon {
	t.Helper()
	d := daemon.New(daemon.Config{Name: name, Class: class, ASDAddr: asdAddr, LeaseTTL: 50 * time.Millisecond})
	d.Handle(cmdlang.CommandSpec{Name: "whoami"},
		func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			return cmdlang.OK().SetWord("name", name), nil
		})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFollowsRestartedService(t *testing.T) {
	dir := startDir(t)
	inst := startEcho(t, "tracker", hier.Root+".Demo", dir.Addr())

	pool := daemon.NewPool(nil)
	defer pool.Close()
	sock := NewSocket(pool, dir.Addr(), asd.Query{Name: "tracker"})

	if err := sock.Ping(); err != nil {
		t.Fatal(err)
	}
	firstAddr := sock.Addr()

	// The service "moves": it stops and a replacement with the same
	// name comes up on a different port.
	inst.Stop()
	done := make(chan *daemon.Daemon, 1)
	go func() {
		time.Sleep(100 * time.Millisecond)
		done <- startEcho(t, "tracker", hier.Root+".Demo", dir.Addr())
	}()

	// The next call transparently finds the new instance.
	reply, err := sock.Call(cmdlang.New("whoami"))
	if err != nil {
		t.Fatal(err)
	}
	if reply.Str("name", "") != "tracker" {
		t.Fatalf("reply=%v", reply)
	}
	if sock.Addr() == firstAddr {
		t.Fatal("socket did not move with the service")
	}
	re, _ := sock.Stats()
	if re < 1 {
		t.Fatal("no re-resolution counted")
	}
	(<-done).Stop()
}

func TestFailsOverToAnotherInstance(t *testing.T) {
	dir := startDir(t)
	a := startEcho(t, "conv_a", hier.Root+".Media.Converter", dir.Addr())
	b := startEcho(t, "conv_b", hier.Root+".Media.Converter", dir.Addr())
	t.Cleanup(b.Stop)

	pool := daemon.NewPool(nil)
	defer pool.Close()
	sock := NewSocket(pool, dir.Addr(), asd.Query{Class: hier.Root + ".Media.Converter"})

	reply, err := sock.Call(cmdlang.New("whoami"))
	if err != nil {
		t.Fatal(err)
	}
	first := reply.Str("name", "")

	// Kill whichever instance we were using; calls continue against
	// the other.
	if first == "conv_a" {
		a.Stop()
	} else {
		b.Stop()
	}
	reply, err = sock.Call(cmdlang.New("whoami"))
	if err != nil {
		t.Fatal(err)
	}
	second := reply.Str("name", "")
	if second == first {
		t.Fatalf("still served by dead instance %q", first)
	}
	if first != "conv_a" {
		a.Stop()
	}
	_, fo := sock.Stats()
	if fo < 1 {
		t.Fatal("failover not counted")
	}
}

func TestRemoteErrorsDoNotTriggerMobility(t *testing.T) {
	dir := startDir(t)
	inst := startEcho(t, "svc", hier.Root+".Demo", dir.Addr())
	t.Cleanup(inst.Stop)

	pool := daemon.NewPool(nil)
	defer pool.Close()
	sock := NewSocket(pool, dir.Addr(), asd.Query{Name: "svc"})
	start := time.Now()
	_, err := sock.Call(cmdlang.New("nosuchcommand"))
	if !cmdlang.IsRemoteCode(err, cmdlang.CodeUnknownCommand) {
		t.Fatalf("err=%v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("remote error burned the retry window")
	}
	re, _ := sock.Stats()
	if re > 1 {
		t.Fatalf("reresolves=%d for an answered call", re)
	}
}

func TestGivesUpAfterRetryWindow(t *testing.T) {
	dir := startDir(t)
	pool := daemon.NewPool(nil)
	defer pool.Close()
	sock := NewSocket(pool, dir.Addr(), asd.Query{Name: "ghost"})
	sock.RetryWindow = 150 * time.Millisecond
	start := time.Now()
	if err := sock.Ping(); err == nil {
		t.Fatal("ghost ping succeeded")
	}
	elapsed := time.Since(start)
	if elapsed < 100*time.Millisecond || elapsed > 2*time.Second {
		t.Fatalf("window not honored: %v", elapsed)
	}
}
