// Package mobile implements the "mobile sockets" the report lists as
// required future work (§9): "research and development of mobile
// sockets must be integrated with the current ACE service
// infrastructure to handle downed ACE services, allowing clients to
// quickly resume their tasks with other service instances and to
// ensure service mobility."
//
// A mobile.Socket is a client handle bound to a *directory query*
// rather than a network address: every call resolves the service
// through the ASD (cached while healthy), and on transport failure it
// re-resolves and retries — transparently following a service that
// restarted on another host/port, or failing over to another live
// instance of the same class.
package mobile

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ace/internal/asd"
	"ace/internal/cmdlang"
	"ace/internal/daemon"
)

// Socket is a mobility-transparent client handle. It is safe for
// concurrent use.
type Socket struct {
	pool    *daemon.Pool
	asdAddr string
	query   asd.Query

	// RetryWindow bounds how long a call waits for the service to
	// reappear in the directory after a failure.
	RetryWindow time.Duration
	// RetryInterval is the re-resolution poll period within the
	// window.
	RetryInterval time.Duration

	mu       sync.Mutex
	addr     string // cached resolved address
	lastGood string // most recent address that resolved (for failover accounting)

	reresolves atomic.Int64
	failovers  atomic.Int64
}

// NewSocket binds a mobile socket to a directory query. The query
// may name a specific service (mobility: follow it wherever it
// re-registers) or a class (failover: any live instance will do).
func NewSocket(pool *daemon.Pool, asdAddr string, query asd.Query) *Socket {
	return &Socket{
		pool:          pool,
		asdAddr:       asdAddr,
		query:         query,
		RetryWindow:   3 * time.Second,
		RetryInterval: 20 * time.Millisecond,
	}
}

// Stats reports how often the socket had to re-resolve and how many
// of those were failovers to a different address.
func (s *Socket) Stats() (reresolves, failovers int64) {
	return s.reresolves.Load(), s.failovers.Load()
}

// Addr returns the currently cached service address ("" if never
// resolved).
func (s *Socket) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addr
}

// resolve returns a dialable address, preferring the cache; skip
// lists addresses known to be bad in this attempt round.
func (s *Socket) resolve(skip map[string]bool) (string, error) {
	s.mu.Lock()
	cached := s.addr
	s.mu.Unlock()
	if cached != "" && !skip[cached] {
		return cached, nil
	}
	addrs, err := asd.ResolveAll(s.pool, s.asdAddr, s.query)
	if err != nil {
		return "", err
	}
	s.reresolves.Add(1)
	for _, a := range addrs {
		if skip[a] {
			continue
		}
		s.mu.Lock()
		if s.lastGood != "" && s.lastGood != a {
			s.failovers.Add(1)
		}
		s.addr = a
		s.lastGood = a
		s.mu.Unlock()
		return a, nil
	}
	return "", fmt.Errorf("mobile: every instance of %+v is excluded", s.query)
}

// Call issues the command, transparently re-resolving through the
// directory when the current instance is unreachable. Remote "fail"
// replies are returned immediately — the service answered; only
// transport-level failures trigger mobility.
func (s *Socket) Call(cmd *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
	deadline := time.Now().Add(s.RetryWindow)
	skip := map[string]bool{}
	var lastErr error
	for {
		addr, err := s.resolve(skip)
		if err == nil {
			reply, callErr := s.pool.Call(addr, cmd)
			if callErr == nil {
				return reply, nil
			}
			if _, isRemote := callErr.(*cmdlang.RemoteError); isRemote {
				return nil, callErr
			}
			// Transport failure: this address is bad for now.
			lastErr = callErr
			skip[addr] = true
			s.mu.Lock()
			if s.addr == addr {
				s.addr = ""
			}
			s.mu.Unlock()
		} else {
			lastErr = err
			// The directory knows no (new) instance yet; widen the
			// net again on the next round.
			skip = map[string]bool{}
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("mobile: service %+v unreachable after %s: %w", s.query, s.RetryWindow, lastErr)
		}
		time.Sleep(s.RetryInterval)
	}
}

// Ping verifies liveness through the mobility path.
func (s *Socket) Ping() error {
	_, err := s.Call(cmdlang.New(daemon.CmdPing))
	return err
}
