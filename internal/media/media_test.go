package media

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
)

func TestFrameMarshalRoundTrip(t *testing.T) {
	f := ToneFrame(42, 440, 8000)
	back, err := UnmarshalFrame(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.Seq != 42 || len(back.Samples) != FrameSamples {
		t.Fatalf("back=%+v", back)
	}
	for i := range f.Samples {
		if f.Samples[i] != back.Samples[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
	// Malformed packets rejected.
	if _, err := UnmarshalFrame([]byte{1, 2, 3}); err == nil {
		t.Fatal("short packet accepted")
	}
	bad := f.Marshal()
	bad[4], bad[5], bad[6], bad[7] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := UnmarshalFrame(bad); err == nil {
		t.Fatal("length-lying packet accepted")
	}
}

func TestQuickFrameRoundTrip(t *testing.T) {
	f := func(seq uint32, raw []int16) bool {
		if len(raw) > 1024 {
			raw = raw[:1024]
		}
		fr := Frame{Seq: seq, Samples: raw}
		back, err := UnmarshalFrame(fr.Marshal())
		if err != nil || back.Seq != seq || len(back.Samples) != len(raw) {
			return false
		}
		for i := range raw {
			if raw[i] != back.Samples[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMixSumsAndSaturates(t *testing.T) {
	a := ToneFrame(0, 500, 10000)
	b := ToneFrame(0, 500, 10000)
	mixed := Mix(a, b)
	// Same-phase same-frequency tones double (where not saturated).
	for i := range mixed.Samples {
		want := int32(a.Samples[i]) * 2
		got := int32(mixed.Samples[i])
		if want <= math.MaxInt16 && want >= math.MinInt16 && got != want {
			t.Fatalf("sample %d: got %d want %d", i, got, want)
		}
	}
	// Saturation at the rails.
	loud1 := ToneFrame(0, 500, 30000)
	loud2 := ToneFrame(0, 500, 30000)
	sat := Mix(loud1, loud2)
	for _, s := range sat.Samples {
		if s > math.MaxInt16 || s < math.MinInt16 {
			t.Fatal("unclamped sample")
		}
	}
	// Mixing with silence is identity.
	silent := NewFrame(0)
	id := Mix(a, silent)
	for i := range a.Samples {
		if id.Samples[i] != a.Samples[i] {
			t.Fatal("silence changed the signal")
		}
	}
}

func TestEchoCancellerRemovesDelayedEcho(t *testing.T) {
	const delay = 40 // samples
	const gain = 0.5
	ec := NewEchoCanceller(delay, gain)

	// Build a far-end reference stream and a mic stream that hears
	// the reference delayed and attenuated (plus nothing else: the
	// room is quiet).
	rng := rand.New(rand.NewSource(5))
	var refHist []int16
	var rawEnergy, cleanEnergy float64
	for n := 0; n < 20; n++ {
		ref := NewFrame(uint32(n))
		for i := range ref.Samples {
			ref.Samples[i] = int16(rng.Intn(16000) - 8000)
		}
		refHist = append(refHist, ref.Samples...)

		mic := NewFrame(uint32(n))
		for i := range mic.Samples {
			abs := n*FrameSamples + i
			if abs-delay >= 0 {
				mic.Samples[i] = int16(gain * float64(refHist[abs-delay]))
			}
		}
		rawEnergy += mic.Energy()
		clean := ec.Process(mic, ref)
		cleanEnergy += clean.Energy()
	}
	if rawEnergy == 0 {
		t.Fatal("test produced no echo")
	}
	// The canceller should remove essentially all of the echo (only
	// int16 rounding remains).
	if cleanEnergy > rawEnergy*0.01 {
		t.Fatalf("residual energy %.1f of %.1f", cleanEnergy, rawEnergy)
	}
}

func TestEchoCancellerPreservesNearEndSpeech(t *testing.T) {
	ec := NewEchoCanceller(0, 1.0)
	speech := ToneFrame(0, 700, 5000)
	silentRef := NewFrame(0)
	out := ec.Process(speech, silentRef)
	if math.Abs(out.Energy()-speech.Energy()) > speech.Energy()*0.01 {
		t.Fatal("near-end speech damaged with silent far end")
	}
}

func TestTextToSpeechAndDetect(t *testing.T) {
	frames := TextToSpeech("abz_;", 0)
	if len(frames) != 5 {
		t.Fatalf("frames=%d", len(frames))
	}
	want := []rune{'a', 'b', 'z', '_', ';'}
	for i, f := range frames {
		r, ok := DetectLetter(f)
		if !ok || r != want[i] {
			t.Fatalf("frame %d: got %q ok=%v want %q", i, r, ok, want[i])
		}
	}
	// Silence and unknown tones are not letters.
	if _, ok := DetectLetter(NewFrame(0)); ok {
		t.Fatal("silence detected as letter")
	}
	// Off-grid tones (ordinary audio) must not be mistaken for
	// letters even at high amplitude — the 440 Hz case that would
	// otherwise read as a stream of 'b's.
	for _, freq := range []float64{430, 440, 730, 1150, 1990} {
		if r, ok := DetectLetter(ToneFrame(0, freq, 8000)); ok {
			t.Errorf("off-grid %v Hz detected as %q", freq, r)
		}
	}
}

func TestSpeechToCommandAssembly(t *testing.T) {
	frames, err := EncodeCommand("camera on", 0)
	if err != nil {
		t.Fatal(err)
	}
	var stc SpeechToCommand
	var got []string
	for _, f := range frames {
		if cmd, ok := stc.Feed(f); ok {
			got = append(got, cmd)
		}
	}
	if len(got) != 1 || got[0] != "camera on;" {
		t.Fatalf("got=%v", got)
	}
	// Noise frames between letters don't break assembly (no
	// terminator yet, so the letters stay pending).
	frames2 := TextToSpeech("zoom", 0)
	var stc2 SpeechToCommand
	for _, f := range frames2 {
		stc2.Feed(f)           //nolint:errcheck
		stc2.Feed(NewFrame(0)) //nolint:errcheck — interleaved silence
	}
	if stc2.Pending() != "zoom" {
		t.Fatalf("pending=%q", stc2.Pending())
	}
	// Unsupported characters are rejected by the encoder.
	if _, err := EncodeCommand("über", 0); err == nil {
		t.Fatal("non-encodable text accepted")
	}
}

func TestConvertRoundTrip(t *testing.T) {
	payload := bytes.Repeat([]byte("video-scanline-data "), 200)
	compressed, err := Convert(payload, FormatRaw, FormatMPEG)
	if err != nil {
		t.Fatal(err)
	}
	if len(compressed) >= len(payload) {
		t.Fatalf("compression failed: %d -> %d", len(payload), len(compressed))
	}
	back, err := Convert(compressed, FormatMPEG, FormatRaw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, payload) {
		t.Fatal("lossy round trip")
	}
	// Identity and unsupported pairs.
	same, err := Convert(payload, FormatRaw, FormatRaw)
	if err != nil || !bytes.Equal(same, payload) {
		t.Fatal("identity conversion")
	}
	if _, err := Convert(payload, "avi", FormatMPEG); err == nil {
		t.Fatal("unknown format accepted")
	}
	if _, err := Convert([]byte("garbage"), FormatMPEG, FormatRaw); err == nil {
		t.Fatal("corrupt payload accepted")
	}
}

func TestQuickConvertRoundTrip(t *testing.T) {
	f := func(payload []byte) bool {
		c, err := Convert(payload, FormatRaw, FormatMPEG)
		if err != nil {
			return false
		}
		back, err := Convert(c, FormatMPEG, FormatRaw)
		return err == nil && bytes.Equal(back, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func startDaemon[T interface {
	Start() error
	Stop()
}](t *testing.T, d T) T {
	t.Helper()
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	return d
}

func waitFrames(t *testing.T, sink *AudioSink, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for len(sink.Recorded()) < n {
		if time.Now().After(deadline) {
			t.Fatalf("sink has %d/%d frames", len(sink.Recorded()), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestConverterService(t *testing.T) {
	conv := startDaemon(t, NewConverter(daemon.Config{}))
	pool := daemon.NewPool(nil)
	defer pool.Close()

	payload := bytes.Repeat([]byte("frame"), 500)
	reply, err := pool.Call(conv.Addr(), cmdlang.New("convert").
		SetString("data", hexEncode(payload)).
		SetWord("from", FormatRaw).SetWord("to", FormatMPEG))
	if err != nil {
		t.Fatal(err)
	}
	if reply.Int("outBytes", 0) >= reply.Int("inBytes", 0) {
		t.Fatalf("no compression: %v", reply)
	}
	back, err := pool.Call(conv.Addr(), cmdlang.New("convert").
		SetString("data", reply.Str("data", "")).
		SetWord("from", FormatMPEG).SetWord("to", FormatRaw))
	if err != nil {
		t.Fatal(err)
	}
	if back.Str("data", "") != hexEncode(payload) {
		t.Fatal("round trip through service failed")
	}
}

func TestDistributionFanout(t *testing.T) {
	dist := startDaemon(t, NewDistribution(daemon.Config{}))
	sinkA := startDaemon(t, NewAudioSink(daemon.Config{Name: "sinkA"}))
	sinkB := startDaemon(t, NewAudioSink(daemon.Config{Name: "sinkB"}))
	capture := startDaemon(t, NewAudioCapture(daemon.Config{}))

	pool := daemon.NewPool(nil)
	defer pool.Close()
	for _, sink := range []*AudioSink{sinkA, sinkB} {
		if _, err := pool.Call(dist.Addr(), cmdlang.New("addSink").
			SetString("addr", sink.DataAddr())); err != nil {
			t.Fatal(err)
		}
	}

	// Capture streams into the distribution service, which fans out
	// to both sinks (Fig 14).
	if _, err := pool.Call(capture.Addr(), cmdlang.New("captureTone").
		SetString("dest", dist.DataAddr()).
		SetFloat("freq", 440).SetInt("frames", 25)); err != nil {
		t.Fatal(err)
	}
	waitFrames(t, sinkA, 25)
	waitFrames(t, sinkB, 25)
	if dist.Forwarded() != 25 {
		t.Fatalf("forwarded=%d", dist.Forwarded())
	}
	// The tone arrives intact.
	rec := sinkA.Recorded()
	if rec[0].Energy() < 1e6 {
		t.Fatalf("energy=%f", rec[0].Energy())
	}
}

func TestSpokenCommandThroughPipeline(t *testing.T) {
	// Fig 15's speech-to-command path: a spoken command streamed
	// through a distribution service is recognized at the sink.
	dist := startDaemon(t, NewDistribution(daemon.Config{}))
	sink := startDaemon(t, NewAudioSink(daemon.Config{}))
	capture := startDaemon(t, NewAudioCapture(daemon.Config{}))

	pool := daemon.NewPool(nil)
	defer pool.Close()
	if _, err := pool.Call(dist.Addr(), cmdlang.New("addSink").
		SetString("addr", sink.DataAddr())); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Call(capture.Addr(), cmdlang.New("say").
		SetString("dest", dist.DataAddr()).
		SetString("text", "camera on")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(sink.Commands()) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no command recognized; %d frames, pending %q",
				len(sink.Recorded()), sink.stc.Pending())
		}
		time.Sleep(5 * time.Millisecond)
	}
	cmds := sink.Commands()
	if cmds[0] != "camera on;" {
		t.Fatalf("cmds=%v", cmds)
	}
	// The sink's recorded command surfaces over the command channel
	// too.
	reply, err := pool.Call(sink.Addr(), cmdlang.New("recorded"))
	if err != nil {
		t.Fatal(err)
	}
	if got := reply.Strings("commands"); len(got) != 1 || !strings.Contains(got[0], "camera on") {
		t.Fatalf("recorded=%v", reply)
	}
}

func hexEncode(b []byte) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 2*len(b))
	for i, c := range b {
		out[2*i] = digits[c>>4]
		out[2*i+1] = digits[c&0xF]
	}
	return string(out)
}
