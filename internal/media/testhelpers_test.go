package media

import (
	"encoding/hex"
	"testing"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
)

func daemonConfigForTest(name string) daemon.Config {
	return daemon.Config{Name: name}
}

func poolForTest(t *testing.T) *daemon.Pool {
	t.Helper()
	p := daemon.NewPool(nil)
	t.Cleanup(p.Close)
	return p
}

func convertCmd(payload []byte, from, to string) *cmdlang.CmdLine {
	return cmdlang.New("convert").
		SetString("data", hex.EncodeToString(payload)).
		SetWord("from", from).SetWord("to", to)
}

func capabilitiesCmd() *cmdlang.CmdLine { return cmdlang.New("capabilities") }
