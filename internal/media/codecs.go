package media

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
)

// Additional formats understood by converter services. Every coded
// format converts to and from FormatRaw; multi-format paths are
// composed by the path-creation planner (internal/pathcreate).
const (
	// FormatMulaw is ITU-T G.711 µ-law companding: 16-bit PCM →
	// 8-bit log-compressed samples (lossy, 2:1).
	FormatMulaw = "mulaw"
	// FormatRLE is byte run-length encoding (lossless; effective on
	// synthetic video scanlines).
	FormatRLE = "rle"
)

// codec converts between FormatRaw and one coded format.
type codec struct {
	encode func([]byte) ([]byte, error) // raw → coded
	decode func([]byte) ([]byte, error) // coded → raw
}

var codecs = map[string]codec{
	FormatMPEG:  {encode: flateEncode, decode: flateDecode},
	FormatMulaw: {encode: mulawEncode, decode: mulawDecode},
	FormatRLE:   {encode: rleEncode, decode: rleDecode},
}

// Formats lists every format converters understand, sorted, with
// FormatRaw first.
func Formats() []string {
	out := []string{FormatRaw}
	coded := make([]string, 0, len(codecs))
	for name := range codecs {
		coded = append(coded, name)
	}
	sort.Strings(coded)
	return append(out, coded...)
}

// KnownFormat reports whether converters understand the format.
func KnownFormat(f string) bool {
	if f == FormatRaw {
		return true
	}
	_, ok := codecs[f]
	return ok
}

func flateEncode(payload []byte) ([]byte, error) {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(payload); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func flateDecode(payload []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(payload))
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("media: corrupt %s payload: %w", FormatMPEG, err)
	}
	return out, nil
}

// µ-law companding (G.711): 14-bit magnitude → 8-bit logarithmic.
const (
	mulawBias = 0x84
	mulawClip = 32635
)

func mulawEncodeSample(s int16) byte {
	sign := byte(0)
	v := int32(s)
	if v < 0 {
		v = -v
		sign = 0x80
	}
	if v > mulawClip {
		v = mulawClip
	}
	v += mulawBias
	exp := byte(7)
	for mask := int32(0x4000); exp > 0 && v&mask == 0; mask >>= 1 {
		exp--
	}
	mantissa := byte((v >> (exp + 3)) & 0x0F)
	return ^(sign | exp<<4 | mantissa)
}

func mulawDecodeSample(b byte) int16 {
	b = ^b
	sign := b & 0x80
	exp := (b >> 4) & 0x07
	mantissa := b & 0x0F
	v := ((int32(mantissa) << 3) + mulawBias) << exp
	v -= mulawBias
	if sign != 0 {
		v = -v
	}
	if v > math.MaxInt16 {
		v = math.MaxInt16
	}
	if v < math.MinInt16 {
		v = math.MinInt16
	}
	return int16(v)
}

// mulawEncode treats the raw payload as big-endian int16 PCM and
// compands it 2:1.
func mulawEncode(payload []byte) ([]byte, error) {
	if len(payload)%2 != 0 {
		return nil, fmt.Errorf("media: µ-law input must be 16-bit PCM (odd length %d)", len(payload))
	}
	out := make([]byte, len(payload)/2)
	for i := range out {
		s := int16(binary.BigEndian.Uint16(payload[2*i:]))
		out[i] = mulawEncodeSample(s)
	}
	return out, nil
}

func mulawDecode(payload []byte) ([]byte, error) {
	out := make([]byte, len(payload)*2)
	for i, b := range payload {
		binary.BigEndian.PutUint16(out[2*i:], uint16(mulawDecodeSample(b)))
	}
	return out, nil
}

// rleEncode: (count,value) pairs with count 1..255.
func rleEncode(payload []byte) ([]byte, error) {
	var out []byte
	for i := 0; i < len(payload); {
		v := payload[i]
		run := 1
		for i+run < len(payload) && payload[i+run] == v && run < 255 {
			run++
		}
		out = append(out, byte(run), v)
		i += run
	}
	return out, nil
}

func rleDecode(payload []byte) ([]byte, error) {
	if len(payload)%2 != 0 {
		return nil, fmt.Errorf("media: corrupt RLE payload (odd length)")
	}
	var out []byte
	for i := 0; i < len(payload); i += 2 {
		run := int(payload[i])
		if run == 0 {
			return nil, fmt.Errorf("media: corrupt RLE payload (zero run)")
		}
		for j := 0; j < run; j++ {
			out = append(out, payload[i+1])
		}
	}
	return out, nil
}
