package media

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"
)

func TestFormatsRegistry(t *testing.T) {
	fs := Formats()
	if fs[0] != FormatRaw || len(fs) != 4 {
		t.Fatalf("formats=%v", fs)
	}
	for _, f := range fs {
		if !KnownFormat(f) {
			t.Errorf("KnownFormat(%q)=false", f)
		}
	}
	if KnownFormat("avi") {
		t.Fatal("phantom format")
	}
}

func TestRLERoundTrip(t *testing.T) {
	cases := [][]byte{
		nil,
		{42},
		bytes.Repeat([]byte{7}, 1000),
		{1, 2, 3, 4, 5},
		append(bytes.Repeat([]byte{0}, 300), bytes.Repeat([]byte{255}, 300)...),
	}
	for _, payload := range cases {
		coded, err := Convert(payload, FormatRaw, FormatRLE)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Convert(coded, FormatRLE, FormatRaw)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, payload) {
			t.Fatalf("RLE lossy for %d bytes", len(payload))
		}
	}
	// Long runs compress massively.
	coded, _ := Convert(bytes.Repeat([]byte{9}, 10000), FormatRaw, FormatRLE)
	if len(coded) > 100 {
		t.Fatalf("10000-byte run coded to %d bytes", len(coded))
	}
	// Corrupt payloads are rejected.
	if _, err := Convert([]byte{1}, FormatRLE, FormatRaw); err == nil {
		t.Fatal("odd RLE accepted")
	}
	if _, err := Convert([]byte{0, 5}, FormatRLE, FormatRaw); err == nil {
		t.Fatal("zero-run RLE accepted")
	}
}

func TestQuickRLERoundTrip(t *testing.T) {
	f := func(payload []byte) bool {
		coded, err := Convert(payload, FormatRaw, FormatRLE)
		if err != nil {
			return false
		}
		back, err := Convert(coded, FormatRLE, FormatRaw)
		return err == nil && bytes.Equal(back, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMulawProperties(t *testing.T) {
	// Odd-length input rejected.
	if _, err := Convert([]byte{1, 2, 3}, FormatRaw, FormatMulaw); err == nil {
		t.Fatal("odd PCM accepted")
	}
	// Companding halves the size; decoding doubles it back.
	pcm := make([]byte, 2000)
	for i := 0; i < 1000; i++ {
		binary.BigEndian.PutUint16(pcm[2*i:], uint16(int16(i*30-15000)))
	}
	coded, err := Convert(pcm, FormatRaw, FormatMulaw)
	if err != nil || len(coded) != 1000 {
		t.Fatalf("coded=%d err=%v", len(coded), err)
	}
	back, err := Convert(coded, FormatMulaw, FormatRaw)
	if err != nil || len(back) != 2000 {
		t.Fatalf("back=%d err=%v", len(back), err)
	}
}

// TestQuickMulawMonotoneAndBounded: companding preserves sign and
// ordering of magnitudes, and decode(encode(x)) stays within the
// segment's quantization error.
func TestQuickMulawMonotoneAndBounded(t *testing.T) {
	f := func(x int16) bool {
		b := mulawEncodeSample(x)
		y := mulawDecodeSample(b)
		// Sign preserved (zero may decode slightly off zero).
		if x > 100 && y <= 0 {
			return false
		}
		if x < -100 && y >= 0 {
			return false
		}
		// Quantization error bounded: µ-law segments grow with
		// magnitude; the worst-case step at full scale is ~2048.
		diff := math.Abs(float64(x) - float64(y))
		mag := math.Abs(float64(x))
		return diff <= 32+mag/8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConverterCapabilitySubset(t *testing.T) {
	c := NewConverter(daemonConfigForTest("subset"),
		Pair{From: FormatRaw, To: FormatRLE})
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	pool := poolForTest(t)

	// Supported conversion works.
	if _, err := pool.Call(c.Addr(), convertCmd([]byte{1, 1, 1}, FormatRaw, FormatRLE)); err != nil {
		t.Fatal(err)
	}
	// Unsupported direction is refused even though the codec exists.
	if _, err := pool.Call(c.Addr(), convertCmd([]byte{2, 1}, FormatRLE, FormatRaw)); err == nil {
		t.Fatal("unadvertised conversion served")
	}
	// Capabilities advertise exactly the subset.
	caps, err := pool.Call(c.Addr(), capabilitiesCmd())
	if err != nil {
		t.Fatal(err)
	}
	if got := caps.Strings("from"); len(got) != 1 || got[0] != FormatRaw {
		t.Fatalf("caps=%v", caps)
	}
}
