package media

import (
	"fmt"
	"math"
	"strings"
)

// Tone synthesizes n samples of a sine at freq Hz with the given
// amplitude, continuing from the given phase; it returns the samples
// and the phase to continue with.
func Tone(freq float64, amp float64, n int, phase float64) ([]int16, float64) {
	out := make([]int16, n)
	step := 2 * math.Pi * freq / SampleRate
	for i := range out {
		out[i] = int16(amp * math.Sin(phase))
		phase += step
	}
	return out, math.Mod(phase, 2*math.Pi)
}

// ToneFrame builds one frame of a pure tone.
func ToneFrame(seq uint32, freq, amp float64) Frame {
	samples, _ := Tone(freq, amp, FrameSamples, 0)
	return Frame{Seq: seq, Samples: samples}
}

// Mix sums aligned frames sample-by-sample with saturation — the
// Audio Mixer element ("combines multiple audio signals into one").
func Mix(frames ...Frame) Frame {
	out := NewFrame(0)
	if len(frames) > 0 {
		out.Seq = frames[0].Seq
	}
	for i := range out.Samples {
		var acc int32
		for _, f := range frames {
			if i < len(f.Samples) {
				acc += int32(f.Samples[i])
			}
		}
		out.Samples[i] = saturate(acc)
	}
	return out
}

func saturate(v int32) int16 {
	switch {
	case v > math.MaxInt16:
		return math.MaxInt16
	case v < math.MinInt16:
		return math.MinInt16
	default:
		return int16(v)
	}
}

// EchoCanceller removes a delayed copy of a known reference signal
// from an input signal (the Echo Cancellation element: "removes
// redundant audio signals (with an arbitrary amount of delay)").
// Frames are processed in lockstep: each call feeds the far-end
// reference frame that played locally while the mic frame was
// captured; the canceller subtracts the reference, delayed by the
// echo path and scaled by its gain.
type EchoCanceller struct {
	delay int // echo path delay in samples
	gain  float64

	hist      []int16 // reference sample history
	histStart int     // absolute index of hist[0]
	processed int     // absolute index of the next mic sample
}

// NewEchoCanceller builds a canceller for an echo path with the given
// sample delay and amplitude gain.
func NewEchoCanceller(delaySamples int, gain float64) *EchoCanceller {
	if delaySamples < 0 {
		delaySamples = 0
	}
	return &EchoCanceller{delay: delaySamples, gain: gain}
}

func (e *EchoCanceller) refAt(abs int) int16 {
	i := abs - e.histStart
	if i < 0 || i >= len(e.hist) {
		return 0
	}
	return e.hist[i]
}

// Process feeds the far-end reference frame and cleans the aligned
// mic frame, returning the echo-cancelled mic frame.
func (e *EchoCanceller) Process(mic, reference Frame) Frame {
	e.hist = append(e.hist, reference.Samples...)
	out := mic.Clone()
	for i := range out.Samples {
		abs := e.processed + i
		echoIdx := abs - e.delay
		if echoIdx >= 0 {
			echo := float64(e.refAt(echoIdx)) * e.gain
			out.Samples[i] = saturate(int32(float64(out.Samples[i]) - echo))
		}
	}
	e.processed += len(mic.Samples)
	// Trim history to what future frames can still reference.
	if keep := e.delay + 2*FrameSamples; len(e.hist) > keep {
		drop := len(e.hist) - keep
		e.hist = append(e.hist[:0], e.hist[drop:]...)
		e.histStart += drop
	}
	return out
}

// goertzel returns the signal power at freq.
func goertzel(samples []int16, freq float64) float64 {
	k := 2 * math.Cos(2*math.Pi*freq/SampleRate)
	var s0, s1, s2 float64
	for _, x := range samples {
		s0 = float64(x) + k*s1 - s2
		s2 = s1
		s1 = s0
	}
	power := s1*s1 + s2*s2 - k*s1*s2
	return power / float64(len(samples))
}

// Letter tone code: each lower-case letter (plus '_' and the ';'
// terminator) maps to a distinct voice-band frequency. This is the
// simulated speech channel of the text-to-speech and
// speech-to-command services.
const (
	toneBase = 400.0
	toneStep = 60.0
)

// speech alphabet order: a..z, '_', ';'.
const speechAlphabet = "abcdefghijklmnopqrstuvwxyz_;"

// letterFreq returns the code frequency of a speech-alphabet rune.
func letterFreq(r rune) (float64, bool) {
	i := strings.IndexRune(speechAlphabet, r)
	if i < 0 {
		return 0, false
	}
	return toneBase + float64(i)*toneStep, true
}

// TextToSpeech converts a text message into an audible signal: one
// frame per encodable rune (unsupported runes are skipped). The seq
// numbers continue from startSeq.
func TextToSpeech(text string, startSeq uint32) []Frame {
	var frames []Frame
	seq := startSeq
	for _, r := range strings.ToLower(text) {
		freq, ok := letterFreq(r)
		if !ok {
			continue
		}
		frames = append(frames, ToneFrame(seq, freq, 8000))
		seq++
	}
	return frames
}

// SpeechDetectThreshold is the minimum Goertzel power for a frame to
// count as a letter tone.
const SpeechDetectThreshold = 1e6

// DetectLetter identifies the speech-alphabet rune a frame encodes.
// Off-grid tones (ordinary audio) leak comparable power into several
// letter bins, so a detection additionally requires the best bin to
// dominate the runner-up.
func DetectLetter(f Frame) (rune, bool) {
	best := -1
	bestPower, secondPower := 0.0, 0.0
	for i, r := range speechAlphabet {
		freq := toneBase + float64(i)*toneStep
		p := goertzel(f.Samples, freq)
		if p > bestPower {
			secondPower = bestPower
			bestPower = p
			best = int(r)
		} else if p > secondPower {
			secondPower = p
		}
	}
	if best < 0 || bestPower < SpeechDetectThreshold {
		return 0, false
	}
	// A coherent on-grid letter dominates its neighbours by ~40x;
	// an off-grid tone (ordinary audio) by ~10x. Split the difference.
	if secondPower > 0 && bestPower < 20*secondPower {
		return 0, false // ambiguous: not a letter tone
	}
	return rune(best), true
}

// SpeechToCommand analyses an input audio signal for voice commands
// and converts them to well-known ACE service command text: it
// accumulates detected letters until the ';' terminator and returns
// each complete command string. Letters separated by silence are
// still assembled into one command until the terminator.
type SpeechToCommand struct {
	buf strings.Builder
}

// Feed processes one frame, returning a complete command string when
// the terminator arrives.
func (s *SpeechToCommand) Feed(f Frame) (cmd string, complete bool) {
	r, ok := DetectLetter(f)
	if !ok {
		return "", false
	}
	if r == ';' {
		text := s.buf.String()
		s.buf.Reset()
		if text == "" {
			return "", false
		}
		return strings.ReplaceAll(text, "_", " ") + ";", true
	}
	s.buf.WriteRune(r)
	return "", false
}

// Pending returns the letters accumulated so far (diagnostics).
func (s *SpeechToCommand) Pending() string { return s.buf.String() }

// EncodeCommand renders a spoken ACE command ("camera_on") as speech
// frames ending with the terminator tone.
func EncodeCommand(command string, startSeq uint32) ([]Frame, error) {
	command = strings.TrimSuffix(strings.ToLower(command), ";")
	for _, r := range command {
		if _, ok := letterFreq(r); !ok && r != ' ' {
			return nil, fmt.Errorf("media: rune %q not encodable as speech", r)
		}
	}
	return TextToSpeech(strings.ReplaceAll(command, " ", "_")+";", startSeq), nil
}
