// Package media implements the ACE media substrate: audio frames and
// the processing services of §4.15/Fig 15 (capture, play, mixing,
// echo cancellation, recording, text-to-speech, speech-to-command),
// the ACE Converter service (§4.12, Fig 13), and the ACE Distribution
// service (§4.13, Fig 14).
//
// Audio hardware is simulated: capture services synthesize PCM
// tones in the voice band, and "speech" is a tone-per-letter code —
// enough signal for the full pipeline (mix, cancel echo, detect
// commands) to run end-to-end and be measured.
package media

import (
	"encoding/binary"
	"fmt"
)

// SampleRate is the pipeline's PCM rate in Hz.
const SampleRate = 8000

// FrameSamples is the number of samples per frame (20 ms at 8 kHz).
const FrameSamples = 160

// Frame is one PCM audio frame.
type Frame struct {
	Seq     uint32
	Samples []int16
}

// NewFrame allocates a silent frame.
func NewFrame(seq uint32) Frame {
	return Frame{Seq: seq, Samples: make([]int16, FrameSamples)}
}

// Clone deep-copies the frame.
func (f Frame) Clone() Frame {
	out := Frame{Seq: f.Seq, Samples: make([]int16, len(f.Samples))}
	copy(out.Samples, f.Samples)
	return out
}

// Marshal renders the frame for the UDP data channel.
func (f Frame) Marshal() []byte {
	buf := make([]byte, 8+2*len(f.Samples))
	binary.BigEndian.PutUint32(buf[0:4], f.Seq)
	binary.BigEndian.PutUint32(buf[4:8], uint32(len(f.Samples)))
	for i, s := range f.Samples {
		binary.BigEndian.PutUint16(buf[8+2*i:], uint16(s))
	}
	return buf
}

// UnmarshalFrame parses a data-channel packet into a frame.
func UnmarshalFrame(pkt []byte) (Frame, error) {
	if len(pkt) < 8 {
		return Frame{}, fmt.Errorf("media: short frame packet (%d bytes)", len(pkt))
	}
	n := binary.BigEndian.Uint32(pkt[4:8])
	if int(n) > (len(pkt)-8)/2 || n > 1<<16 {
		return Frame{}, fmt.Errorf("media: frame claims %d samples, packet holds %d bytes", n, len(pkt)-8)
	}
	f := Frame{Seq: binary.BigEndian.Uint32(pkt[0:4]), Samples: make([]int16, n)}
	for i := range f.Samples {
		f.Samples[i] = int16(binary.BigEndian.Uint16(pkt[8+2*i:]))
	}
	return f, nil
}

// Energy returns the frame's mean squared amplitude.
func (f Frame) Energy() float64 {
	if len(f.Samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range f.Samples {
		sum += float64(s) * float64(s)
	}
	return sum / float64(len(f.Samples))
}
