package media

import (
	"encoding/hex"
	"fmt"
	"net"
	"sync"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/hier"
)

// Hierarchy classes for the media daemons.
const (
	ClassConverter    = hier.Root + ".Media.Converter"
	ClassDistribution = hier.Root + ".Media.Distribution"
	ClassCapture      = hier.Root + ".Media.AudioCapture"
	ClassSink         = hier.Root + ".Media.AudioSink"
)

// Converter formats. The paper's example converts raw video to MPEG;
// the simulated codec performs real compression work (DEFLATE)
// behind the same service interface.
const (
	FormatRaw  = "raw"
	FormatMPEG = "mpegsim"
)

// Convert transforms a payload between formats (§4.12). One call
// performs one hop: identity, raw→coded, or coded→raw. Coded→coded
// paths are composed by the path-creation planner.
func Convert(payload []byte, from, to string) ([]byte, error) {
	switch {
	case from == to:
		return payload, nil
	case from == FormatRaw:
		c, ok := codecs[to]
		if !ok {
			return nil, fmt.Errorf("media: no conversion %s→%s", from, to)
		}
		return c.encode(payload)
	case to == FormatRaw:
		c, ok := codecs[from]
		if !ok {
			return nil, fmt.Errorf("media: no conversion %s→%s", from, to)
		}
		return c.decode(payload)
	default:
		return nil, fmt.Errorf("media: no single-hop conversion %s→%s (use path creation)", from, to)
	}
}

// Pair is one supported conversion direction.
type Pair struct{ From, To string }

// Converter is the ACE Converter service daemon (Fig 13): it sits
// between a producer and a consumer and converts data from one format
// to another. An instance may support only a subset of the known
// conversions, which is what makes automatic path creation necessary.
type Converter struct {
	*daemon.Daemon
	pairs []Pair
}

// AllPairs returns every single-hop conversion the codec table
// supports (raw↔each coded format).
func AllPairs() []Pair {
	var out []Pair
	for _, f := range Formats() {
		if f == FormatRaw {
			continue
		}
		out = append(out, Pair{FormatRaw, f}, Pair{f, FormatRaw})
	}
	return out
}

// NewConverter constructs the converter daemon. With no pairs given
// it supports every known conversion.
func NewConverter(dcfg daemon.Config, pairs ...Pair) *Converter {
	if dcfg.Name == "" {
		dcfg.Name = "converter"
	}
	if dcfg.Class == "" {
		dcfg.Class = ClassConverter
	}
	if len(pairs) == 0 {
		pairs = AllPairs()
	}
	c := &Converter{Daemon: daemon.New(dcfg), pairs: pairs}
	c.Handle(cmdlang.CommandSpec{
		Name: "convert",
		Doc:  "convert a payload between formats",
		Args: []cmdlang.ArgSpec{
			{Name: "data", Kind: cmdlang.KindString, Required: true, Doc: "hex payload"},
			{Name: "from", Kind: cmdlang.KindWord, Required: true},
			{Name: "to", Kind: cmdlang.KindWord, Required: true},
		},
	}, func(_ *daemon.Ctx, cl *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		from, to := cl.Str("from", ""), cl.Str("to", "")
		if !c.supports(from, to) {
			return cmdlang.Fail(cmdlang.CodeUnavailable,
				fmt.Sprintf("this converter does not support %s→%s", from, to)), nil
		}
		payload, err := hex.DecodeString(cl.Str("data", ""))
		if err != nil {
			return nil, fmt.Errorf("media: bad payload hex: %w", err)
		}
		out, err := Convert(payload, from, to)
		if err != nil {
			return nil, err
		}
		return cmdlang.OK().
			SetString("data", hex.EncodeToString(out)).
			SetInt("inBytes", int64(len(payload))).
			SetInt("outBytes", int64(len(out))), nil
	})
	c.Handle(cmdlang.CommandSpec{
		Name: "capabilities",
		Doc:  "advertise supported conversions (consumed by path creation)",
	}, func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		froms := make([]string, len(c.pairs))
		tos := make([]string, len(c.pairs))
		for i, p := range c.pairs {
			froms[i] = p.From
			tos[i] = p.To
		}
		return cmdlang.OK().
			Set("from", cmdlang.WordVector(froms...)).
			Set("to", cmdlang.WordVector(tos...)), nil
	})
	return c
}

func (c *Converter) supports(from, to string) bool {
	if from == to {
		return true
	}
	for _, p := range c.pairs {
		if p.From == from && p.To == to {
			return true
		}
	}
	return false
}

// Distribution is the ACE Distribution service daemon (Fig 14): it
// takes an input data stream on its UDP data channel and forwards it
// to a set of one or more destination services.
type Distribution struct {
	*daemon.Daemon

	mu    sync.Mutex
	sinks map[string]bool // data-channel addresses

	forwarded int64
	dropped   int64
}

// NewDistribution constructs the distribution daemon.
func NewDistribution(dcfg daemon.Config) *Distribution {
	d := &Distribution{sinks: make(map[string]bool)}
	if dcfg.Name == "" {
		dcfg.Name = "distribution"
	}
	if dcfg.Class == "" {
		dcfg.Class = ClassDistribution
	}
	dcfg.DataHandler = d.onData
	d.Daemon = daemon.New(dcfg)
	d.install()
	return d
}

func (d *Distribution) onData(pkt []byte, _ net.Addr) {
	d.mu.Lock()
	sinks := make([]string, 0, len(d.sinks))
	for s := range d.sinks {
		sinks = append(sinks, s)
	}
	d.forwarded++
	d.mu.Unlock()
	// Datagram semantics: a failed forward never stalls the stream,
	// but drops are counted so sinks that fall off are visible.
	for _, s := range sinks {
		if err := d.SendData(s, pkt); err != nil {
			d.mu.Lock()
			d.dropped++
			d.mu.Unlock()
		}
	}
}

// AddSink registers a destination data-channel address.
func (d *Distribution) AddSink(addr string) {
	d.mu.Lock()
	d.sinks[addr] = true
	d.mu.Unlock()
}

// Dropped returns the number of forwards that failed to send.
func (d *Distribution) Dropped() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dropped
}

// Forwarded returns the number of packets fanned out.
func (d *Distribution) Forwarded() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.forwarded
}

func (d *Distribution) install() {
	d.Handle(cmdlang.CommandSpec{
		Name: "addSink",
		Doc:  "forward the input stream to another service's data channel",
		Args: []cmdlang.ArgSpec{{Name: "addr", Kind: cmdlang.KindString, Required: true}},
	}, func(_ *daemon.Ctx, cl *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		d.AddSink(cl.Str("addr", ""))
		return nil, nil
	})
	//acelint:ignore verbconformance operator verb: issued through acectl's dynamic call/raw passthrough
	d.Handle(cmdlang.CommandSpec{
		Name: "removeSink",
		Args: []cmdlang.ArgSpec{{Name: "addr", Kind: cmdlang.KindString, Required: true}},
	}, func(_ *daemon.Ctx, cl *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		d.mu.Lock()
		delete(d.sinks, cl.Str("addr", ""))
		d.mu.Unlock()
		return nil, nil
	})
	//acelint:ignore verbconformance operator verb: issued through acectl's dynamic call/raw passthrough
	d.Handle(cmdlang.CommandSpec{Name: "listSinks"},
		func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			d.mu.Lock()
			var addrs []string
			for s := range d.sinks {
				addrs = append(addrs, s)
			}
			d.mu.Unlock()
			return cmdlang.OK().SetInt("count", int64(len(addrs))).Set("addrs", cmdlang.StringVector(addrs...)), nil
		})
}

// AudioCapture is the Audio Capture service: it "captures" (here:
// synthesizes) an audio signal, digitizes it, and streams it to a
// destination data channel.
type AudioCapture struct {
	*daemon.Daemon
	mu  sync.Mutex
	seq uint32
}

// NewAudioCapture constructs the capture daemon.
func NewAudioCapture(dcfg daemon.Config) *AudioCapture {
	if dcfg.Name == "" {
		dcfg.Name = "audiocapture"
	}
	if dcfg.Class == "" {
		dcfg.Class = ClassCapture
	}
	a := &AudioCapture{Daemon: daemon.New(dcfg)}
	a.Handle(cmdlang.CommandSpec{
		Name: "captureTone",
		Doc:  "capture n frames of a tone and stream them to a data channel",
		Args: []cmdlang.ArgSpec{
			{Name: "dest", Kind: cmdlang.KindString, Required: true},
			{Name: "freq", Kind: cmdlang.KindFloat, Required: true},
			{Name: "frames", Kind: cmdlang.KindInt, Required: true},
			{Name: "amp", Kind: cmdlang.KindFloat},
		},
	}, func(_ *daemon.Ctx, cl *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		dest := cl.Str("dest", "")
		n := int(cl.Int("frames", 0))
		sent, err := a.StreamTone(dest, cl.Float("freq", 440), cl.Float("amp", 8000), n)
		if err != nil {
			return nil, err
		}
		return cmdlang.OK().SetInt("sent", int64(sent)), nil
	})
	a.Handle(cmdlang.CommandSpec{
		Name: "say",
		Doc:  "capture a spoken command and stream it (speech simulation)",
		Args: []cmdlang.ArgSpec{
			{Name: "dest", Kind: cmdlang.KindString, Required: true},
			{Name: "text", Kind: cmdlang.KindString, Required: true},
		},
	}, func(_ *daemon.Ctx, cl *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		frames, err := EncodeCommand(cl.Str("text", ""), a.nextSeq(0))
		if err != nil {
			return nil, err
		}
		dest := cl.Str("dest", "")
		for _, f := range frames {
			if err := a.SendData(dest, f.Marshal()); err != nil {
				return nil, err
			}
		}
		a.nextSeq(uint32(len(frames)))
		return cmdlang.OK().SetInt("sent", int64(len(frames))), nil
	})
	return a
}

func (a *AudioCapture) nextSeq(advance uint32) uint32 {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := a.seq
	a.seq += advance
	return s
}

// StreamTone sends n tone frames to dest.
func (a *AudioCapture) StreamTone(dest string, freq, amp float64, n int) (int, error) {
	start := a.nextSeq(uint32(n))
	phase := 0.0
	for i := 0; i < n; i++ {
		var samples []int16
		samples, phase = Tone(freq, amp, FrameSamples, phase)
		f := Frame{Seq: start + uint32(i), Samples: samples}
		if err := a.SendData(dest, f.Marshal()); err != nil {
			return i, err
		}
	}
	return n, nil
}

// AudioSink receives frames on its data channel; it serves as Audio
// Play (driving a speaker), Audio Recorder ("records on hard media"),
// and the input side of Speech-to-Command, depending on what the
// caller does with the frames.
type AudioSink struct {
	*daemon.Daemon

	mu     sync.Mutex
	frames []Frame
	stc    SpeechToCommand
	cmds   []string
	// OnFrame, if set, observes every received frame.
	onFrame func(Frame)
}

// NewAudioSink constructs a sink daemon.
func NewAudioSink(dcfg daemon.Config) *AudioSink {
	s := &AudioSink{}
	if dcfg.Name == "" {
		dcfg.Name = "audiosink"
	}
	if dcfg.Class == "" {
		dcfg.Class = ClassSink
	}
	dcfg.DataHandler = s.onData
	s.Daemon = daemon.New(dcfg)
	s.install()
	return s
}

// SetOnFrame installs a frame observer (used by pipeline stages).
func (s *AudioSink) SetOnFrame(fn func(Frame)) {
	s.mu.Lock()
	s.onFrame = fn
	s.mu.Unlock()
}

func (s *AudioSink) onData(pkt []byte, _ net.Addr) {
	f, err := UnmarshalFrame(pkt)
	if err != nil {
		return
	}
	s.mu.Lock()
	s.frames = append(s.frames, f)
	if cmd, ok := s.stc.Feed(f); ok {
		s.cmds = append(s.cmds, cmd)
	}
	fn := s.onFrame
	s.mu.Unlock()
	if fn != nil {
		fn(f)
	}
}

// Recorded returns the received frames (the recording).
func (s *AudioSink) Recorded() []Frame {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Frame(nil), s.frames...)
}

// Commands returns the ACE commands recognized from the stream.
func (s *AudioSink) Commands() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.cmds...)
}

func (s *AudioSink) install() {
	s.Handle(cmdlang.CommandSpec{Name: "recorded", Doc: "how much audio has been recorded"},
		func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			s.mu.Lock()
			n := len(s.frames)
			var energy float64
			for _, f := range s.frames {
				energy += f.Energy()
			}
			cmds := append([]string(nil), s.cmds...)
			s.mu.Unlock()
			if n > 0 {
				energy /= float64(n)
			}
			return cmdlang.OK().
				SetInt("frames", int64(n)).
				SetFloat("meanEnergy", energy).
				Set("commands", cmdlang.StringVector(cmds...)), nil
		})
}
