package rmi

import (
	"errors"
	"strings"
	"testing"
)

// CameraService is a reference remote object.
type CameraService struct{ pan, tilt float64 }

// Move points the camera.
func (c *CameraService) Move(pan, tilt float64) string {
	c.pan, c.tilt = pan, tilt
	return "moved"
}

// Position returns the camera's pose.
func (c *CameraService) Position() []float64 { return []float64{c.pan, c.tilt} }

// Fail always errors.
func (c *CameraService) Fail() error { return errors.New("lens cap on") }

// Explode panics (misbehaving service object).
func (c *CameraService) Explode() { panic("boom") }

func startServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	s := NewServer()
	s.Register("camera", &CameraService{})
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return s, c
}

func TestCallRoundTrip(t *testing.T) {
	_, c := startServer(t)
	res, err := c.Call("camera", "Move", 10.0, 20.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].(string) != "moved" {
		t.Fatalf("res=%v", res)
	}
	pos, err := c.Call("camera", "Position")
	if err != nil {
		t.Fatal(err)
	}
	got := pos[0].([]float64)
	if got[0] != 10 || got[1] != 20 {
		t.Fatalf("pos=%v", got)
	}
}

func TestArgumentConversion(t *testing.T) {
	_, c := startServer(t)
	// int args convert to the float64 parameters.
	if _, err := c.Call("camera", "Move", 1, 2); err != nil {
		t.Fatal(err)
	}
	// Wrong arity and unconvertible types fail.
	if _, err := c.Call("camera", "Move", 1.0); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, err := c.Call("camera", "Move", "a", "b"); err == nil {
		t.Fatal("string-for-float accepted")
	}
}

func TestRemoteErrors(t *testing.T) {
	_, c := startServer(t)
	_, err := c.Call("camera", "Fail")
	if err == nil || !strings.Contains(err.Error(), "lens cap on") {
		t.Fatalf("err=%v", err)
	}
	if _, err := c.Call("nosuch", "Move"); err == nil {
		t.Fatal("unknown service accepted")
	}
	if _, err := c.Call("camera", "NoSuchMethod"); err == nil {
		t.Fatal("unknown method accepted")
	}
	// A panicking method becomes a remote error, and the connection
	// survives.
	if _, err := c.Call("camera", "Explode"); err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("err=%v", err)
	}
	if _, err := c.Call("camera", "Position"); err != nil {
		t.Fatalf("connection dead after panic: %v", err)
	}
}

func TestTrafficCounting(t *testing.T) {
	_, c := startServer(t)
	s0, r0 := c.Traffic()
	if _, err := c.Call("camera", "Move", 1.0, 2.0); err != nil {
		t.Fatal(err)
	}
	s1, r1 := c.Traffic()
	if s1 <= s0 || r1 <= r0 {
		t.Fatalf("traffic not counted: %d→%d, %d→%d", s0, s1, r0, r1)
	}
	// gob's self-describing streams are heavy: a two-float call costs
	// well over the ~40 bytes the equivalent ACE command takes. This
	// pins the E2 claim's direction.
	if s1-s0 < 60 {
		t.Fatalf("suspiciously light RMI call: %d bytes", s1-s0)
	}
}
