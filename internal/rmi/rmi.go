// Package rmi is the comparison baseline for the ACE command
// language's lightweightness claim (§2.2, §8.1): an RMI-style remote
// invocation system built on object serialization (encoding/gob — the
// closest stdlib analogue of Java serialization) and reflective
// method dispatch. ACE deliberately chose its textual command
// language over this style; experiment E2 measures the difference in
// wire bytes and call latency.
package rmi

import (
	"encoding/gob"
	"fmt"
	"net"
	"reflect"
	"sync"
	"sync/atomic"

	"ace/internal/flow"
)

// Request is the serialized invocation envelope.
type Request struct {
	Seq     uint64
	Service string
	Method  string
	Args    []any
}

// Response is the serialized result envelope.
type Response struct {
	Seq     uint64
	Results []any
	Err     string
}

func init() {
	// Common argument types, mirroring Java serialization's
	// self-describing streams.
	gob.Register(int(0))
	gob.Register(int64(0))
	gob.Register(float64(0))
	gob.Register("")
	gob.Register(true)
	gob.Register([]int64(nil))
	gob.Register([]float64(nil))
	gob.Register([]string(nil))
	gob.Register(map[string]any(nil))
}

// Server dispatches serialized invocations to registered objects via
// reflection.
type Server struct {
	mu   sync.Mutex
	ln   net.Listener
	svcs map[string]reflect.Value
	wg   sync.WaitGroup
	// fl caps concurrent connections, like every other ACE daemon;
	// the baseline should not be the one server that accepts unboundedly.
	fl *flow.Controller
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{
		svcs: make(map[string]reflect.Value),
		fl:   flow.NewController(flow.Config{}, nil),
	}
}

// Register exposes every exported method of impl under the service
// name.
func (s *Server) Register(name string, impl any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.svcs[name] = reflect.ValueOf(impl)
}

// Start listens on addr ("127.0.0.1:0" typical) and serves until
// Stop.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the listen address.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Stop closes the listener and waits for connection handlers.
func (s *Server) Stop() {
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		if !s.fl.AdmitConn() {
			conn.Close()
			continue
		}
		s.wg.Add(1)
		go func() {
			defer func() {
				s.fl.ReleaseConn()
				s.wg.Done()
			}()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := s.invoke(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) invoke(req *Request) (resp *Response) {
	resp = &Response{Seq: req.Seq}
	s.mu.Lock()
	svc, ok := s.svcs[req.Service]
	s.mu.Unlock()
	if !ok {
		resp.Err = fmt.Sprintf("rmi: unknown service %q", req.Service)
		return resp
	}
	method := svc.MethodByName(req.Method)
	if !method.IsValid() {
		resp.Err = fmt.Sprintf("rmi: %s has no method %q", req.Service, req.Method)
		return resp
	}
	mt := method.Type()
	if mt.NumIn() != len(req.Args) {
		resp.Err = fmt.Sprintf("rmi: %s.%s takes %d args, got %d", req.Service, req.Method, mt.NumIn(), len(req.Args))
		return resp
	}
	in := make([]reflect.Value, len(req.Args))
	for i, a := range req.Args {
		av := reflect.ValueOf(a)
		want := mt.In(i)
		if !av.IsValid() {
			av = reflect.Zero(want)
		} else if av.Type() != want {
			if av.Type().ConvertibleTo(want) {
				av = av.Convert(want)
			} else {
				resp.Err = fmt.Sprintf("rmi: arg %d is %T, want %s", i, a, want)
				return resp
			}
		}
		in[i] = av
	}
	defer func() {
		if r := recover(); r != nil {
			resp.Err = fmt.Sprintf("rmi: invocation panic: %v", r)
			resp.Results = nil
		}
	}()
	out := method.Call(in)
	resp.Results = make([]any, 0, len(out))
	for _, o := range out {
		// The Java-ish convention: a trailing error return becomes the
		// remote exception.
		if err, isErr := o.Interface().(error); isErr {
			if err != nil {
				resp.Err = err.Error()
			}
			continue
		}
		resp.Results = append(resp.Results, o.Interface())
	}
	return resp
}

// countingConn tallies wire traffic for the E2 comparison.
type countingConn struct {
	net.Conn
	sent, recv *atomic.Int64
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.sent.Add(int64(n))
	return n, err
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.recv.Add(int64(n))
	return n, err
}

// Client invokes methods on a remote Server. It is safe for
// sequential use; guard with a mutex for concurrency (the bench
// compares single-stream behaviour).
type Client struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	seq  uint64

	sent atomic.Int64
	recv atomic.Int64
	mu   sync.Mutex
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn}
	cc := &countingConn{Conn: conn, sent: &c.sent, recv: &c.recv}
	c.enc = gob.NewEncoder(cc)
	c.dec = gob.NewDecoder(cc)
	return c, nil
}

// Call invokes service.method with args and returns the results.
func (c *Client) Call(service, method string, args ...any) ([]any, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	req := Request{Seq: c.seq, Service: service, Method: method, Args: args}
	if err := c.enc.Encode(&req); err != nil {
		return nil, err
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return resp.Results, fmt.Errorf("rmi: remote: %s", resp.Err)
	}
	return resp.Results, nil
}

// Traffic returns total bytes sent and received on this connection.
func (c *Client) Traffic() (sent, recv int64) {
	return c.sent.Load(), c.recv.Load()
}

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }
