// Package hlc implements hybrid logical clocks (Kulkarni et al.,
// "Logical Physical Clocks and Consistent Snapshots in Globally
// Distributed Databases"): timestamps that track physical wall time
// closely enough to bound staleness in real units, while preserving
// the happens-before ordering of logical clocks even when the wall
// clocks of the machines involved disagree.
//
// A timestamp packs a 48-bit wall component (milliseconds since the
// Unix epoch) and a 16-bit logical counter into one uint64, so
// integer comparison is HLC ordering and the value rides in a single
// wire-header field and WAL column. Millisecond resolution is
// deliberate: staleness bounds in ACE are tens of milliseconds to
// seconds, and the logical counter disambiguates events inside the
// same millisecond.
//
// The Clock's wall source is injectable so the chaos fabric can skew
// individual nodes deterministically; Update clamps remote wall
// components to the local physical clock plus MaxOffset, so one
// machine with a wildly wrong clock cannot drag the whole cluster's
// timeline into the future (it burns logical counter instead, and the
// clamp is counted for telemetry).
package hlc

import (
	"fmt"
	"sync"
	"time"

	"ace/internal/telemetry"
)

// Timestamp is a packed hybrid-logical-clock reading:
//
//	bits 63..16  wall clock, milliseconds since the Unix epoch
//	bits 15..0   logical counter within the millisecond
//
// The zero Timestamp means "unstamped" and sorts before every real
// reading; real readings are never zero because Clock floors its wall
// component at 1ms. Integer comparison of two Timestamps is exactly
// HLC ordering.
type Timestamp uint64

const (
	logicalBits = 16
	logicalMask = (1 << logicalBits) - 1
	maxWallMS   = (1 << 48) - 1
)

// Make assembles a Timestamp from a wall reading in milliseconds and
// a logical counter.
func Make(wallMS int64, logical uint16) Timestamp {
	if wallMS < 0 {
		wallMS = 0
	}
	if wallMS > maxWallMS {
		wallMS = maxWallMS
	}
	return Timestamp(uint64(wallMS)<<logicalBits | uint64(logical))
}

// WallMS returns the wall component in milliseconds since the epoch.
func (t Timestamp) WallMS() int64 { return int64(t >> logicalBits) }

// Logical returns the logical counter component.
func (t Timestamp) Logical() uint16 { return uint16(t & logicalMask) }

// IsZero reports whether t is the unstamped sentinel.
func (t Timestamp) IsZero() bool { return t == 0 }

// Sub returns the wall-component difference t − u as a Duration. The
// logical counters are ignored: staleness bounds are physical-time
// quantities, and inside one millisecond the bound is zero.
func (t Timestamp) Sub(u Timestamp) time.Duration {
	return time.Duration(t.WallMS()-u.WallMS()) * time.Millisecond
}

// Time returns the wall component as a time.Time (UTC, millisecond
// resolution). For display and debugging; ordering decisions should
// compare Timestamps directly.
func (t Timestamp) Time() time.Time {
	return time.UnixMilli(t.WallMS()).UTC()
}

func (t Timestamp) String() string {
	if t.IsZero() {
		return "hlc:0"
	}
	return fmt.Sprintf("hlc:%d.%d", t.WallMS(), t.Logical())
}

// Metric names recorded by hybrid-logical clocks. Every Clock created
// with a non-nil registry registers them there; pstore nodes pass
// their daemon registry and clients the pool registry.
const (
	// MetricSkewClamps counts Update calls whose remote wall component
	// ran more than MaxOffset ahead of the local physical clock and
	// was clamped. A steady tick means some peer's clock is skewed
	// beyond the configured tolerance.
	MetricSkewClamps = "pstore.hlc.skew_clamps"
	// MetricOverflows counts logical-counter overflows: 65536 events
	// inside one clamped millisecond forced the wall component forward
	// 1ms. Rare in healthy clusters; sustained ticking means the
	// physical clock is stuck or far behind its peers.
	MetricOverflows = "pstore.hlc.logical_overflows"
)

// DefaultMaxOffset is the skew tolerance used when a Clock is built
// with a zero MaxOffset: remote timestamps may run at most this far
// ahead of the local physical clock before being clamped.
const DefaultMaxOffset = 500 * time.Millisecond

// Clock is a hybrid logical clock. All methods are safe for
// concurrent use.
type Clock struct {
	wall      func() time.Time
	maxOffset time.Duration

	mu   sync.Mutex
	last Timestamp

	skewClamps *telemetry.Counter
	overflows  *telemetry.Counter
}

// New builds a Clock. wall is the physical-clock source (nil means
// time.Now; the chaos fabric injects skewed sources here). maxOffset
// is the skew tolerance for Update (zero means DefaultMaxOffset).
// reg, when non-nil, receives the pstore.hlc.* counters.
func New(wall func() time.Time, maxOffset time.Duration, reg *telemetry.Registry) *Clock {
	if wall == nil {
		wall = time.Now
	}
	if maxOffset <= 0 {
		maxOffset = DefaultMaxOffset
	}
	c := &Clock{wall: wall, maxOffset: maxOffset}
	if reg != nil {
		c.skewClamps = reg.Counter(MetricSkewClamps)
		c.overflows = reg.Counter(MetricOverflows)
	}
	return c
}

// MaxOffset returns the clock's skew tolerance.
func (c *Clock) MaxOffset() time.Duration { return c.maxOffset }

// physMS reads the physical clock in milliseconds, floored at 1 so a
// real reading is never the zero Timestamp even with a test wall
// source pinned at the epoch.
func (c *Clock) physMS() int64 {
	ms := c.wall().UnixMilli()
	if ms < 1 {
		ms = 1
	}
	if ms > maxWallMS {
		ms = maxWallMS
	}
	return ms
}

// Now returns the next local timestamp: the physical clock when it
// has advanced past the last reading, otherwise the last reading with
// the logical counter ticked.
func (c *Clock) Now() Timestamp {
	pt := c.physMS()
	c.mu.Lock()
	defer c.mu.Unlock()
	if pt > c.last.WallMS() {
		c.last = Make(pt, 0)
		return c.last
	}
	c.tickLocked()
	return c.last
}

// Update merges a remote timestamp into the clock (the receive rule)
// and returns the resulting local timestamp, which is strictly
// greater than both the previous local reading and the remote one.
// Remote wall components more than MaxOffset ahead of the local
// physical clock are clamped to pt+MaxOffset — the clamp is what
// keeps one skewed machine from dragging the cluster timeline
// forward, and what makes the MaxOffset margin in the staleness proof
// rule sound.
func (c *Clock) Update(remote Timestamp) Timestamp {
	pt := c.physMS()
	rw := remote.WallMS()
	limit := pt + int64(c.maxOffset/time.Millisecond)
	if rw > limit {
		// Clamped: the merged value no longer exceeds the remote
		// reading (that guarantee is surrendered deliberately — it is
		// the remote clock that is broken), but local time can advance
		// at most MaxOffset past the physical clock.
		rw = limit
		remote = Make(rw, remote.Logical())
		if c.skewClamps != nil {
			c.skewClamps.Add(1)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case pt > c.last.WallMS() && pt > rw:
		c.last = Make(pt, 0)
	case remote > c.last:
		c.last = remote
		c.tickLocked()
	default:
		c.tickLocked()
	}
	return c.last
}

// Forward advances the clock to at least ts without clamping. It is
// the restart-recovery rule: the WAL's persisted high-water mark is
// trusted absolutely, because issuing any timestamp at or below it
// would break monotonicity across the crash.
func (c *Clock) Forward(ts Timestamp) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ts > c.last {
		c.last = ts
	}
}

// Last returns the most recent timestamp issued or merged. Zero means
// the clock has issued nothing yet.
func (c *Clock) Last() Timestamp {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}

// tickLocked increments the logical counter of c.last, rolling the
// wall component forward 1ms when the counter overflows.
func (c *Clock) tickLocked() {
	if c.last.Logical() == logicalMask {
		c.last = Make(c.last.WallMS()+1, 0)
		if c.overflows != nil {
			c.overflows.Add(1)
		}
		return
	}
	c.last++
}
