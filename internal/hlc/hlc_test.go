package hlc

import (
	"context"
	"sync"
	"testing"
	"time"

	"ace/internal/telemetry"
)

// fixedWall returns a wall source pinned to a settable instant.
type fixedWall struct {
	mu sync.Mutex
	t  time.Time
}

func (w *fixedWall) now() time.Time {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.t
}

func (w *fixedWall) set(t time.Time) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.t = t
}

func TestTimestampPacking(t *testing.T) {
	ts := Make(1234567890123, 77)
	if ts.WallMS() != 1234567890123 {
		t.Fatalf("WallMS = %d", ts.WallMS())
	}
	if ts.Logical() != 77 {
		t.Fatalf("Logical = %d", ts.Logical())
	}
	if got := ts.Sub(Make(1234567890000, 9999)); got != 123*time.Millisecond {
		t.Fatalf("Sub = %v", got)
	}
	// Integer comparison is HLC ordering: wall dominates, logical
	// breaks ties.
	if !(Make(10, 0) < Make(10, 1) && Make(10, 65535) < Make(11, 0)) {
		t.Fatal("packed ordering broken")
	}
	if !Timestamp(0).IsZero() || Make(1, 0).IsZero() {
		t.Fatal("IsZero broken")
	}
	// Out-of-range wall readings saturate instead of wrapping into
	// the logical bits.
	if Make(-5, 3).WallMS() != 0 || Make(1<<60, 3).WallMS() != maxWallMS {
		t.Fatal("saturation broken")
	}
}

func TestNowMonotonicWithinStuckClock(t *testing.T) {
	w := &fixedWall{t: time.UnixMilli(5000)}
	c := New(w.now, 0, nil)
	prev := c.Now()
	for i := 0; i < 1000; i++ {
		ts := c.Now()
		if ts <= prev {
			t.Fatalf("Now not monotonic: %v then %v", prev, ts)
		}
		prev = ts
	}
	if prev.WallMS() != 5000 {
		t.Fatalf("stuck clock advanced wall: %v", prev)
	}
	// Physical progress resets the logical counter.
	w.set(time.UnixMilli(6000))
	ts := c.Now()
	if ts.WallMS() != 6000 || ts.Logical() != 0 {
		t.Fatalf("advance = %v", ts)
	}
}

func TestUpdateMergesRemote(t *testing.T) {
	w := &fixedWall{t: time.UnixMilli(5000)}
	c := New(w.now, time.Second, nil)
	remote := Make(5100, 7) // 100ms ahead: within tolerance
	got := c.Update(remote)
	if got <= remote {
		t.Fatalf("Update result %v not after remote %v", got, remote)
	}
	if got.WallMS() != 5100 {
		t.Fatalf("Update wall = %v", got)
	}
	// A stale remote must not move the clock backwards.
	got2 := c.Update(Make(100, 0))
	if got2 <= got {
		t.Fatalf("stale remote regressed clock: %v then %v", got, got2)
	}
}

func TestUpdateClampsSkewedRemote(t *testing.T) {
	reg := telemetry.NewRegistry()
	w := &fixedWall{t: time.UnixMilli(5000)}
	c := New(w.now, 200*time.Millisecond, reg)
	// Remote 10s ahead: clamped to pt+MaxOffset.
	got := c.Update(Make(15000, 0))
	if got.WallMS() > 5200 {
		t.Fatalf("clamp failed: wall ran to %d", got.WallMS())
	}
	snap := reg.Snapshot()
	if snap.Counter(MetricSkewClamps) != 1 {
		t.Fatalf("skew_clamps = %d", snap.Counter(MetricSkewClamps))
	}
}

func TestLogicalOverflowNearMaxSkew(t *testing.T) {
	reg := telemetry.NewRegistry()
	w := &fixedWall{t: time.UnixMilli(5000)}
	c := New(w.now, 100*time.Millisecond, reg)
	// Drive the clock to the clamp limit, then exhaust the 16-bit
	// logical space inside that one clamped millisecond. The wall
	// component must roll forward 1ms instead of the counter
	// wrapping to zero (which would order new events before old).
	prev := c.Update(Make(99999, 0)) // clamped to 5100
	if prev.WallMS() != 5100 {
		t.Fatalf("setup: wall = %d", prev.WallMS())
	}
	for i := 0; i < 70000; i++ {
		ts := c.Now()
		if ts <= prev {
			t.Fatalf("overflow broke monotonicity: %v then %v", prev, ts)
		}
		prev = ts
	}
	if prev.WallMS() <= 5100 {
		t.Fatal("logical overflow never rolled the wall forward")
	}
	if reg.Snapshot().Counter(MetricOverflows) == 0 {
		t.Fatal("overflow not counted")
	}
}

func TestForwardRestoresRestartMonotonicity(t *testing.T) {
	// Simulate a crash/restart where the machine clock went backwards
	// while the process was down: the WAL high-water mark must still
	// dominate every timestamp the reborn clock issues.
	w := &fixedWall{t: time.UnixMilli(9000)}
	before := New(w.now, 0, nil)
	var mark Timestamp
	for i := 0; i < 10; i++ {
		mark = before.Now()
	}

	w.set(time.UnixMilli(3000)) // clock regressed across the restart
	after := New(w.now, 0, nil)
	after.Forward(mark) // recovery replays the persisted high-water mark
	ts := after.Now()
	if ts <= mark {
		t.Fatalf("restart broke monotonicity: mark %v, first new %v", mark, ts)
	}
	// Forward trusts even far-future marks (no clamp): refusing would
	// guarantee duplicate timestamps.
	far := Make(1<<40, 0)
	after.Forward(far)
	if after.Now() <= far {
		t.Fatal("Forward clamped the recovery mark")
	}
}

func TestConcurrentNowUpdate(t *testing.T) {
	// Run Now/Update/Forward from many goroutines under -race, and
	// check per-goroutine monotonicity of the returned readings.
	c := New(time.Now, 0, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var prev Timestamp
			for i := 0; i < 2000; i++ {
				var ts Timestamp
				switch i % 3 {
				case 0:
					ts = c.Now()
				case 1:
					ts = c.Update(Make(int64(4000+i), uint16(g)))
				default:
					c.Forward(Make(int64(3000+i), 0))
					ts = c.Now()
				}
				if ts <= prev {
					panic("per-goroutine monotonicity violated")
				}
				prev = ts
			}
		}(g)
	}
	wg.Wait()
}

func TestContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if !FromContext(ctx).IsZero() {
		t.Fatal("empty context not zero")
	}
	ts := Make(777, 3)
	if got := FromContext(WithTimestamp(ctx, ts)); got != ts {
		t.Fatalf("round trip = %v", got)
	}
}
