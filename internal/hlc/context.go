package hlc

import "context"

type ctxKey struct{}

// WithTimestamp returns a context carrying ts. The wire client reads
// it when encoding a frame, so a pstore write stamped by the client's
// clock arrives at every replica with the same timestamp in the frame
// header.
func WithTimestamp(ctx context.Context, ts Timestamp) context.Context {
	return context.WithValue(ctx, ctxKey{}, ts)
}

// FromContext returns the timestamp carried by ctx, or zero when the
// context is unstamped.
func FromContext(ctx context.Context) Timestamp {
	ts, _ := ctx.Value(ctxKey{}).(Timestamp)
	return ts
}
