package asd

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/hier"
	"ace/internal/pstore/placement"
	"ace/internal/telemetry"
)

// ServiceName is the conventional instance name of the directory
// daemon.
const ServiceName = "asd"

// CmdExpired is the lease-expiry event verb. The directory executes
// it through its own dispatch path for every confirmed expiration, so
// §2.6 subscribers to "expired" hear about reaped services the same
// way register/unregister subscribers hear about live ones. The
// handler itself is a no-op — the command exists for its notification
// side effect.
const CmdExpired = "expired"

// Service is the ACE Service Directory daemon: the Directory wrapped
// in the standard daemon shell and exposed through ACE commands.
type Service struct {
	*daemon.Daemon
	dir       *Directory
	reapEvery time.Duration
	stopReap  chan struct{}
	stopOnce  sync.Once

	// rep is the store-backed replica layer; nil in standalone
	// (single in-memory directory) mode.
	rep          *replica
	storeTimeout time.Duration

	// The published pstore placement map. The ASD is its authority:
	// coordinators publish through placeset, clients fetch through
	// placeget, and the daemon's notification machinery tells placeset
	// subscribers to invalidate their caches.
	placeMu sync.Mutex
	place   *placement.Map

	mRegistrations *telemetry.Counter
	mRenewals      *telemetry.Counter
	mLookupLatency *telemetry.Histogram
	mPlaceEpoch    *telemetry.Gauge
}

// Config tailors the directory daemon.
type Config struct {
	// Daemon is the underlying shell configuration. ASDAddr is
	// ignored — the directory never registers with itself.
	Daemon daemon.Config
	// ReapInterval is how often expired leases are collected. In
	// replicated mode it is also the store sync cadence, which bounds
	// the staleness of scan lookups served from this replica's memory.
	ReapInterval time.Duration
	// Store, when set, replicates the directory over the persistent
	// store: every registration and renewal is quorum-written before
	// it is acked, and any directory daemon backed by the same store
	// serves the same entries. Nil keeps the standalone in-memory
	// directory.
	Store Store
	// StoreTimeout bounds each store operation issued on behalf of one
	// command (default 2s).
	StoreTimeout time.Duration
}

// New constructs the directory service.
func New(cfg Config) *Service {
	dcfg := cfg.Daemon
	dcfg.ASDAddr = "" // the ASD is the well-known root; it has no directory above it
	dcfg.ASDAddrs = nil
	if dcfg.Name == "" {
		dcfg.Name = ServiceName
	}
	if dcfg.Class == "" {
		dcfg.Class = hier.ClassServiceDirectory
	}
	if cfg.ReapInterval <= 0 {
		cfg.ReapInterval = 250 * time.Millisecond
	}
	if cfg.StoreTimeout <= 0 {
		cfg.StoreTimeout = 2 * time.Second
	}
	// Placement publication is control-plane: a rebalance must be able
	// to land its cutover even while the directory is shedding load.
	dcfg.ControlVerbs = append(dcfg.ControlVerbs, placement.CmdPlaceSet, placement.CmdPlaceGet)
	s := &Service{
		Daemon:       daemon.New(dcfg),
		dir:          NewDirectory(),
		reapEvery:    cfg.ReapInterval,
		stopReap:     make(chan struct{}),
		storeTimeout: cfg.StoreTimeout,
	}
	tel := s.Telemetry()
	if cfg.Store != nil {
		s.rep = newReplica(s.dir, cfg.Store, tel)
	}
	s.mRegistrations = tel.Counter(MetricRegistrations)
	s.mRenewals = tel.Counter(MetricRenewals)
	s.mLookupLatency = tel.Histogram(MetricLookupLatency)
	s.mPlaceEpoch = tel.Gauge(placement.MetricEpoch)
	expirations := tel.Counter(MetricExpirations)
	s.dir.SetOnExpire(func(Entry) { expirations.Inc() })
	s.install()
	return s
}

// Directory exposes the underlying listing (read-mostly; used by
// in-process experiments).
func (s *Service) Directory() *Directory { return s.dir }

// Replicated reports whether this directory is backed by the
// persistent store.
func (s *Service) Replicated() bool { return s.rep != nil }

// Placement returns the currently published placement map (nil when
// none has been published).
func (s *Service) Placement() *placement.Map {
	s.placeMu.Lock()
	defer s.placeMu.Unlock()
	return s.place
}

// Start brings the daemon online and starts the lease reaper.
func (s *Service) Start() error {
	if err := s.Daemon.Start(); err != nil {
		return err
	}
	go s.reapLoop()
	return nil
}

// Stop halts the reaper and the daemon. Safe to call more than once
// (chaos drills kill daemons that deferred cleanups stop again).
func (s *Service) Stop() {
	s.stopOnce.Do(func() { close(s.stopReap) })
	s.Daemon.Stop()
}

func (s *Service) reapLoop() {
	t := time.NewTicker(s.reapEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stopReap:
			return
		case <-t.C:
			var reaped []Entry
			if s.rep != nil {
				// Replicated: the reap pass is a store sync — expiry is
				// confirmed against the durable deadline, never local
				// state alone, and entries registered through sibling
				// replicas are pulled in.
				ctx, cancel := context.WithTimeout(context.Background(), s.storeTimeout)
				reaped = s.rep.sync(ctx)
				cancel()
			} else {
				reaped = s.dir.Reap()
			}
			for _, e := range reaped {
				// Executing the expired verb through the daemon's own
				// dispatch path is what fires the §2.6 notifications to
				// expired-subscribers (lookup-cache eviction rides it).
				s.ExecuteLocal(nil, cmdlang.New(CmdExpired).
					SetWord("name", e.Name).SetString("addr", e.Addr))
			}
		}
	}
}

// lookupReply renders a lookup result set (or its not-found failure).
func lookupReply(entries []Entry, limit int) *cmdlang.CmdLine {
	if limit > 0 && len(entries) > limit {
		entries = entries[:limit]
	}
	if len(entries) == 0 {
		return cmdlang.Fail(cmdlang.CodeNotFound, "no matching service")
	}
	names := make([]string, len(entries))
	addrs := make([]string, len(entries))
	rooms := make([]string, len(entries))
	classes := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name
		addrs[i] = e.Addr
		rooms[i] = e.Room
		classes[i] = e.Class
	}
	reply := entryReply(entries[0])
	reply.Set("names", cmdlang.WordVector(names...))
	reply.Set("addrs", cmdlang.StringVector(addrs...))
	reply.Set("rooms", cmdlang.WordVector(rooms...))
	reply.Set("classes", cmdlang.StringVector(classes...))
	reply.SetInt("count", int64(len(entries)))
	return reply
}

// replicaFail maps a replica-layer error to its return command:
// client-fixable not-found failures keep the standalone directory's
// code, store trouble is a retryable unavailable.
func replicaFail(err error) *cmdlang.CmdLine {
	var nf *notFoundError
	if errors.As(err, &nf) {
		return cmdlang.Fail(cmdlang.CodeNotFound, err.Error())
	}
	return cmdlang.Fail(cmdlang.CodeUnavailable, err.Error())
}

// detachStore runs work — a handler continuation ending in one or
// more quorum store rounds — off the serial control thread when the
// invocation can detach and a pipeline slot is free, so concurrent
// renewals overlap their store fan-outs instead of serializing behind
// one another. With no free slot the work runs inline on the control
// thread, which is the natural backpressure; ExecuteLocal invocations
// (which cannot detach) also run inline. The returned reply is nil
// exactly when the invocation detached (the daemon discards it).
func (s *Service) detachStore(hctx *daemon.Ctx, work func(ctx context.Context) *cmdlang.CmdLine) *cmdlang.CmdLine {
	finish, ok := hctx.Detach()
	if !ok {
		ctx, cancel := context.WithTimeout(hctx.TraceContext(), s.storeTimeout)
		defer cancel()
		return work(ctx)
	}
	select {
	case s.rep.storeSem <- struct{}{}:
		tctx := hctx.TraceContext()
		go func() {
			defer func() { <-s.rep.storeSem }()
			ctx, cancel := context.WithTimeout(tctx, s.storeTimeout)
			defer cancel()
			finish(work(ctx))
		}()
	default:
		ctx, cancel := context.WithTimeout(hctx.TraceContext(), s.storeTimeout)
		finish(work(ctx))
		cancel()
	}
	return nil
}

func entryReply(e Entry) *cmdlang.CmdLine {
	return cmdlang.OK().
		SetWord("name", e.Name).
		SetWord("host", e.Host).
		SetInt("port", int64(e.Port)).
		SetString("addr", e.Addr).
		SetWord("room", e.Room).
		SetString("class", e.Class).
		SetInt("lease", int64(e.Lease/time.Millisecond))
}

func (s *Service) install() {
	s.Handle(cmdlang.CommandSpec{
		Name: daemon.CmdRegister,
		Doc:  "enter the service directory with a lease",
		Args: []cmdlang.ArgSpec{
			{Name: "name", Kind: cmdlang.KindWord, Required: true},
			{Name: "host", Kind: cmdlang.KindWord, Required: true},
			{Name: "port", Kind: cmdlang.KindInt, Required: true},
			{Name: "addr", Kind: cmdlang.KindString, Required: true},
			{Name: "room", Kind: cmdlang.KindWord},
			{Name: "class", Kind: cmdlang.KindString},
			{Name: "lease", Kind: cmdlang.KindInt, Doc: "milliseconds"},
		},
	}, func(hctx *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		e := Entry{
			Name:  c.Str("name", ""),
			Host:  c.Str("host", ""),
			Port:  int(c.Int("port", 0)),
			Addr:  c.Str("addr", ""),
			Room:  c.Str("room", ""),
			Class: c.Str("class", hier.Root),
			Lease: time.Duration(c.Int("lease", 0)) * time.Millisecond,
		}
		if s.rep == nil {
			lease, err := s.dir.Register(e)
			if err != nil {
				return nil, err
			}
			s.mRegistrations.Inc()
			return cmdlang.OK().SetInt("lease", int64(lease/time.Millisecond)), nil
		}
		return s.detachStore(hctx, func(ctx context.Context) *cmdlang.CmdLine {
			lease, err := s.rep.register(ctx, e)
			if err != nil {
				return replicaFail(err)
			}
			s.mRegistrations.Inc()
			return cmdlang.OK().SetInt("lease", int64(lease/time.Millisecond))
		}), nil
	})

	s.Handle(cmdlang.CommandSpec{
		Name: daemon.CmdRenew,
		Doc:  "renew a service lease",
		Args: []cmdlang.ArgSpec{
			{Name: "name", Kind: cmdlang.KindWord, Required: true},
			{Name: "lease", Kind: cmdlang.KindInt},
		},
	}, func(hctx *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		name := c.Str("name", "")
		lease := time.Duration(c.Int("lease", 0)) * time.Millisecond
		if s.rep == nil {
			granted, err := s.dir.Renew(name, lease)
			if err != nil {
				return cmdlang.Fail(cmdlang.CodeNotFound, err.Error()), nil
			}
			s.mRenewals.Inc()
			return cmdlang.OK().SetInt("lease", int64(granted/time.Millisecond)), nil
		}
		return s.detachStore(hctx, func(ctx context.Context) *cmdlang.CmdLine {
			granted, err := s.rep.renew(ctx, name, lease)
			if err != nil {
				return replicaFail(err)
			}
			s.mRenewals.Inc()
			return cmdlang.OK().SetInt("lease", int64(granted/time.Millisecond))
		}), nil
	})

	s.Handle(cmdlang.CommandSpec{
		Name: daemon.CmdUnregister,
		Doc:  "leave the directory",
		Args: []cmdlang.ArgSpec{{Name: "name", Kind: cmdlang.KindWord, Required: true}},
	}, func(hctx *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		name := c.Str("name", "")
		if s.rep == nil {
			return cmdlang.OK().SetBool("existed", s.dir.Unregister(name)), nil
		}
		return s.detachStore(hctx, func(ctx context.Context) *cmdlang.CmdLine {
			existed, err := s.rep.unregister(ctx, name)
			if err != nil {
				return replicaFail(err)
			}
			return cmdlang.OK().SetBool("existed", existed)
		}), nil
	})

	s.Handle(cmdlang.CommandSpec{
		Name: daemon.CmdLookup,
		Doc:  "find services by name, class, and/or room (Fig 7)",
		Args: []cmdlang.ArgSpec{
			{Name: "name", Kind: cmdlang.KindWord},
			{Name: "class", Kind: cmdlang.KindString},
			{Name: "room", Kind: cmdlang.KindWord},
			{Name: "limit", Kind: cmdlang.KindInt},
		},
	}, func(hctx *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		q := Query{
			Name:  c.Str("name", ""),
			Class: c.Str("class", ""),
			Room:  c.Str("room", ""),
		}
		limit := int(c.Int("limit", 0))
		lookupStart := time.Now()
		entries := s.dir.Lookup(q)
		s.mLookupLatency.Observe(time.Since(lookupStart))
		if len(entries) == 0 && q.Name != "" && s.rep != nil {
			// The replica may never have cached this name; the miss
			// reads through to the store (off the control thread — a
			// quorum read must not stall the lookup hot path).
			return s.detachStore(hctx, func(ctx context.Context) *cmdlang.CmdLine {
				return lookupReply(s.rep.lookup(ctx, q), limit)
			}), nil
		}
		return lookupReply(entries, limit), nil
	})

	s.Handle(cmdlang.CommandSpec{
		Name: placement.CmdPlaceSet,
		Doc:  "publish the pstore placement map (epoch must not regress)",
		Args: []cmdlang.ArgSpec{{Name: "map", Kind: cmdlang.KindString, Required: true}},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		m, err := placement.DecodeString(c.Str("map", ""))
		if err != nil {
			return cmdlang.Fail(cmdlang.CodeBadArgument, err.Error()), nil
		}
		s.placeMu.Lock()
		if s.place != nil && m.Epoch < s.place.Epoch {
			cur := s.place.Epoch
			s.placeMu.Unlock()
			return cmdlang.Fail(cmdlang.CodeConflict,
				fmt.Sprintf("map epoch %d older than published %d", m.Epoch, cur)).
				SetInt("epoch", int64(cur)), nil
		}
		s.place = m
		s.placeMu.Unlock()
		s.mPlaceEpoch.Set(int64(m.Epoch))
		// Returning ok is what fires the placementChanged notification
		// to placeset subscribers (§2.6 command-completion events).
		return cmdlang.OK().SetInt("epoch", int64(m.Epoch)), nil
	})

	s.Handle(cmdlang.CommandSpec{
		Name: placement.CmdPlaceGet,
		Doc:  "fetch the published pstore placement map",
	}, func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		s.placeMu.Lock()
		m := s.place
		s.placeMu.Unlock()
		if m == nil {
			return cmdlang.Fail(cmdlang.CodeNotFound, "no placement map published"), nil
		}
		return cmdlang.OK().SetString("map", m.EncodeString()).SetInt("epoch", int64(m.Epoch)), nil
	})

	s.Handle(cmdlang.CommandSpec{
		Name: CmdExpired,
		Doc:  "lease-expiry event (fired internally per reaped entry so §2.6 subscribers hear it)",
		Args: []cmdlang.ArgSpec{
			{Name: "name", Kind: cmdlang.KindWord, Required: true},
			{Name: "addr", Kind: cmdlang.KindString},
		},
	}, func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		// The command is its notification side effect.
		return cmdlang.OK(), nil
	})

	if s.rep != nil {
		// A sibling replica's change event evicts this replica's
		// in-memory copy, so the next touch reads the store the
		// sibling already updated (SubscribeReplicas wires this up).
		s.Handle(cmdlang.CommandSpec{
			Name: InvalidateVerb,
			Doc:  "directory change notification from a sibling replica",
			Args: []cmdlang.ArgSpec{
				{Name: daemon.NotifySourceArg, Kind: cmdlang.KindWord},
				{Name: daemon.NotifyEventArg, Kind: cmdlang.KindWord},
				{Name: daemon.NotifyDetailArg, Kind: cmdlang.KindString},
			},
		}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			if name := invalidationName(c); name != "" {
				s.rep.invalidate(name, ^uint64(0))
			}
			return cmdlang.OK(), nil
		})
	}

	s.Handle(cmdlang.CommandSpec{
		Name: "list",
		Doc:  "list every live entry",
	}, func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		entries := s.dir.Lookup(Query{})
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name
		}
		return cmdlang.OK().Set("names", cmdlang.WordVector(names...)).SetInt("count", int64(len(entries))), nil
	})
}

// Resolve is the client-side Fig 7 flow: ask the ASD at asdAddr for a
// service matching the query and return its dialable address.
func Resolve(p *daemon.Pool, asdAddr string, q Query) (string, error) {
	cmd := cmdlang.New(daemon.CmdLookup)
	if q.Name != "" {
		cmd.SetWord("name", q.Name)
	}
	if q.Class != "" {
		cmd.SetString("class", q.Class)
	}
	if q.Room != "" {
		cmd.SetWord("room", q.Room)
	}
	reply, err := p.Call(asdAddr, cmd)
	if err != nil {
		return "", err
	}
	return reply.Str("addr", ""), nil
}

// ResolveAll returns the addresses of every matching service.
func ResolveAll(p *daemon.Pool, asdAddr string, q Query) ([]string, error) {
	cmd := cmdlang.New(daemon.CmdLookup)
	if q.Name != "" {
		cmd.SetWord("name", q.Name)
	}
	if q.Class != "" {
		cmd.SetString("class", q.Class)
	}
	if q.Room != "" {
		cmd.SetWord("room", q.Room)
	}
	reply, err := p.Call(asdAddr, cmd)
	if err != nil {
		return nil, err
	}
	return reply.Strings("addrs"), nil
}
