package asd

import (
	"fmt"
	"sync"
	"time"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/hier"
	"ace/internal/pstore/placement"
	"ace/internal/telemetry"
)

// ServiceName is the conventional instance name of the directory
// daemon.
const ServiceName = "asd"

// Service is the ACE Service Directory daemon: the Directory wrapped
// in the standard daemon shell and exposed through ACE commands.
type Service struct {
	*daemon.Daemon
	dir       *Directory
	reapEvery time.Duration
	stopReap  chan struct{}

	// The published pstore placement map. The ASD is its authority:
	// coordinators publish through placeset, clients fetch through
	// placeget, and the daemon's notification machinery tells placeset
	// subscribers to invalidate their caches.
	placeMu sync.Mutex
	place   *placement.Map

	mRegistrations *telemetry.Counter
	mRenewals      *telemetry.Counter
	mLookupLatency *telemetry.Histogram
	mPlaceEpoch    *telemetry.Gauge
}

// Config tailors the directory daemon.
type Config struct {
	// Daemon is the underlying shell configuration. ASDAddr is
	// ignored — the directory never registers with itself.
	Daemon daemon.Config
	// ReapInterval is how often expired leases are collected.
	ReapInterval time.Duration
}

// New constructs the directory service.
func New(cfg Config) *Service {
	dcfg := cfg.Daemon
	dcfg.ASDAddr = "" // the ASD is the well-known root; it has no directory above it
	if dcfg.Name == "" {
		dcfg.Name = ServiceName
	}
	if dcfg.Class == "" {
		dcfg.Class = hier.ClassServiceDirectory
	}
	if cfg.ReapInterval <= 0 {
		cfg.ReapInterval = 250 * time.Millisecond
	}
	// Placement publication is control-plane: a rebalance must be able
	// to land its cutover even while the directory is shedding load.
	dcfg.ControlVerbs = append(dcfg.ControlVerbs, placement.CmdPlaceSet, placement.CmdPlaceGet)
	s := &Service{
		Daemon:    daemon.New(dcfg),
		dir:       NewDirectory(),
		reapEvery: cfg.ReapInterval,
		stopReap:  make(chan struct{}),
	}
	tel := s.Telemetry()
	s.mRegistrations = tel.Counter(MetricRegistrations)
	s.mRenewals = tel.Counter(MetricRenewals)
	s.mLookupLatency = tel.Histogram(MetricLookupLatency)
	s.mPlaceEpoch = tel.Gauge(placement.MetricEpoch)
	expirations := tel.Counter(MetricExpirations)
	s.dir.SetOnExpire(func(Entry) { expirations.Inc() })
	s.install()
	return s
}

// Directory exposes the underlying listing (read-mostly; used by
// in-process experiments).
func (s *Service) Directory() *Directory { return s.dir }

// Placement returns the currently published placement map (nil when
// none has been published).
func (s *Service) Placement() *placement.Map {
	s.placeMu.Lock()
	defer s.placeMu.Unlock()
	return s.place
}

// Start brings the daemon online and starts the lease reaper.
func (s *Service) Start() error {
	if err := s.Daemon.Start(); err != nil {
		return err
	}
	go s.reapLoop()
	return nil
}

// Stop halts the reaper and the daemon.
func (s *Service) Stop() {
	close(s.stopReap)
	s.Daemon.Stop()
}

func (s *Service) reapLoop() {
	t := time.NewTicker(s.reapEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stopReap:
			return
		case <-t.C:
			s.dir.Reap()
		}
	}
}

func entryReply(e Entry) *cmdlang.CmdLine {
	return cmdlang.OK().
		SetWord("name", e.Name).
		SetWord("host", e.Host).
		SetInt("port", int64(e.Port)).
		SetString("addr", e.Addr).
		SetWord("room", e.Room).
		SetString("class", e.Class).
		SetInt("lease", int64(e.Lease/time.Millisecond))
}

func (s *Service) install() {
	s.Handle(cmdlang.CommandSpec{
		Name: daemon.CmdRegister,
		Doc:  "enter the service directory with a lease",
		Args: []cmdlang.ArgSpec{
			{Name: "name", Kind: cmdlang.KindWord, Required: true},
			{Name: "host", Kind: cmdlang.KindWord, Required: true},
			{Name: "port", Kind: cmdlang.KindInt, Required: true},
			{Name: "addr", Kind: cmdlang.KindString, Required: true},
			{Name: "room", Kind: cmdlang.KindWord},
			{Name: "class", Kind: cmdlang.KindString},
			{Name: "lease", Kind: cmdlang.KindInt, Doc: "milliseconds"},
		},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		lease, err := s.dir.Register(Entry{
			Name:  c.Str("name", ""),
			Host:  c.Str("host", ""),
			Port:  int(c.Int("port", 0)),
			Addr:  c.Str("addr", ""),
			Room:  c.Str("room", ""),
			Class: c.Str("class", hier.Root),
			Lease: time.Duration(c.Int("lease", 0)) * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		s.mRegistrations.Inc()
		return cmdlang.OK().SetInt("lease", int64(lease/time.Millisecond)), nil
	})

	s.Handle(cmdlang.CommandSpec{
		Name: daemon.CmdRenew,
		Doc:  "renew a service lease",
		Args: []cmdlang.ArgSpec{
			{Name: "name", Kind: cmdlang.KindWord, Required: true},
			{Name: "lease", Kind: cmdlang.KindInt},
		},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		lease, err := s.dir.Renew(c.Str("name", ""), time.Duration(c.Int("lease", 0))*time.Millisecond)
		if err != nil {
			return cmdlang.Fail(cmdlang.CodeNotFound, err.Error()), nil
		}
		s.mRenewals.Inc()
		return cmdlang.OK().SetInt("lease", int64(lease/time.Millisecond)), nil
	})

	s.Handle(cmdlang.CommandSpec{
		Name: daemon.CmdUnregister,
		Doc:  "leave the directory",
		Args: []cmdlang.ArgSpec{{Name: "name", Kind: cmdlang.KindWord, Required: true}},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		existed := s.dir.Unregister(c.Str("name", ""))
		return cmdlang.OK().SetBool("existed", existed), nil
	})

	s.Handle(cmdlang.CommandSpec{
		Name: daemon.CmdLookup,
		Doc:  "find services by name, class, and/or room (Fig 7)",
		Args: []cmdlang.ArgSpec{
			{Name: "name", Kind: cmdlang.KindWord},
			{Name: "class", Kind: cmdlang.KindString},
			{Name: "room", Kind: cmdlang.KindWord},
			{Name: "limit", Kind: cmdlang.KindInt},
		},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		lookupStart := time.Now()
		entries := s.dir.Lookup(Query{
			Name:  c.Str("name", ""),
			Class: c.Str("class", ""),
			Room:  c.Str("room", ""),
		})
		s.mLookupLatency.Observe(time.Since(lookupStart))
		if limit := int(c.Int("limit", 0)); limit > 0 && len(entries) > limit {
			entries = entries[:limit]
		}
		if len(entries) == 0 {
			return cmdlang.Fail(cmdlang.CodeNotFound, "no matching service"), nil
		}
		names := make([]string, len(entries))
		addrs := make([]string, len(entries))
		rooms := make([]string, len(entries))
		classes := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name
			addrs[i] = e.Addr
			rooms[i] = e.Room
			classes[i] = e.Class
		}
		reply := entryReply(entries[0])
		reply.Set("names", cmdlang.WordVector(names...))
		reply.Set("addrs", cmdlang.StringVector(addrs...))
		reply.Set("rooms", cmdlang.WordVector(rooms...))
		reply.Set("classes", cmdlang.StringVector(classes...))
		reply.SetInt("count", int64(len(entries)))
		return reply, nil
	})

	s.Handle(cmdlang.CommandSpec{
		Name: placement.CmdPlaceSet,
		Doc:  "publish the pstore placement map (epoch must not regress)",
		Args: []cmdlang.ArgSpec{{Name: "map", Kind: cmdlang.KindString, Required: true}},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		m, err := placement.DecodeString(c.Str("map", ""))
		if err != nil {
			return cmdlang.Fail(cmdlang.CodeBadArgument, err.Error()), nil
		}
		s.placeMu.Lock()
		if s.place != nil && m.Epoch < s.place.Epoch {
			cur := s.place.Epoch
			s.placeMu.Unlock()
			return cmdlang.Fail(cmdlang.CodeConflict,
				fmt.Sprintf("map epoch %d older than published %d", m.Epoch, cur)).
				SetInt("epoch", int64(cur)), nil
		}
		s.place = m
		s.placeMu.Unlock()
		s.mPlaceEpoch.Set(int64(m.Epoch))
		// Returning ok is what fires the placementChanged notification
		// to placeset subscribers (§2.6 command-completion events).
		return cmdlang.OK().SetInt("epoch", int64(m.Epoch)), nil
	})

	s.Handle(cmdlang.CommandSpec{
		Name: placement.CmdPlaceGet,
		Doc:  "fetch the published pstore placement map",
	}, func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		s.placeMu.Lock()
		m := s.place
		s.placeMu.Unlock()
		if m == nil {
			return cmdlang.Fail(cmdlang.CodeNotFound, "no placement map published"), nil
		}
		return cmdlang.OK().SetString("map", m.EncodeString()).SetInt("epoch", int64(m.Epoch)), nil
	})

	s.Handle(cmdlang.CommandSpec{
		Name: "list",
		Doc:  "list every live entry",
	}, func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		entries := s.dir.Lookup(Query{})
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name
		}
		return cmdlang.OK().Set("names", cmdlang.WordVector(names...)).SetInt("count", int64(len(entries))), nil
	})
}

// Resolve is the client-side Fig 7 flow: ask the ASD at asdAddr for a
// service matching the query and return its dialable address.
func Resolve(p *daemon.Pool, asdAddr string, q Query) (string, error) {
	cmd := cmdlang.New(daemon.CmdLookup)
	if q.Name != "" {
		cmd.SetWord("name", q.Name)
	}
	if q.Class != "" {
		cmd.SetString("class", q.Class)
	}
	if q.Room != "" {
		cmd.SetWord("room", q.Room)
	}
	reply, err := p.Call(asdAddr, cmd)
	if err != nil {
		return "", err
	}
	return reply.Str("addr", ""), nil
}

// ResolveAll returns the addresses of every matching service.
func ResolveAll(p *daemon.Pool, asdAddr string, q Query) ([]string, error) {
	cmd := cmdlang.New(daemon.CmdLookup)
	if q.Name != "" {
		cmd.SetWord("name", q.Name)
	}
	if q.Class != "" {
		cmd.SetString("class", q.Class)
	}
	if q.Room != "" {
		cmd.SetWord("room", q.Room)
	}
	reply, err := p.Call(asdAddr, cmd)
	if err != nil {
		return nil, err
	}
	return reply.Strings("addrs"), nil
}
