package asd

import (
	"testing"
	"time"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/hier"
)

func startASD(t *testing.T, reap time.Duration) *Service {
	t.Helper()
	s := New(Config{ReapInterval: reap})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s
}

func TestServiceRegisterLookupFlow(t *testing.T) {
	s := startASD(t, 0)
	pool := daemon.NewPool(nil)
	defer pool.Close()

	// Fig 7: a PTZ camera daemon registers...
	_, err := pool.Call(s.Addr(), cmdlang.New(daemon.CmdRegister).
		SetWord("name", "ptz1").SetWord("host", "machine25").SetInt("port", 1225).
		SetString("addr", "machine25:1225").SetWord("room", "hawk").
		SetString("class", hier.ClassVCC3).SetInt("lease", 60000))
	if err != nil {
		t.Fatal(err)
	}

	// ...and a client asks "PTZ Camera Address??".
	addr, err := Resolve(pool, s.Addr(), Query{Class: hier.ClassPTZCamera})
	if err != nil {
		t.Fatal(err)
	}
	if addr != "machine25:1225" {
		t.Fatalf("addr=%q", addr)
	}

	// Lookup for something absent fails with not_found.
	_, err = Resolve(pool, s.Addr(), Query{Class: hier.ClassProjector})
	if !cmdlang.IsRemoteCode(err, cmdlang.CodeNotFound) {
		t.Fatalf("err=%v", err)
	}
}

func TestServiceLeaseReaping(t *testing.T) {
	s := startASD(t, 20*time.Millisecond)
	pool := daemon.NewPool(nil)
	defer pool.Close()

	_, err := pool.Call(s.Addr(), cmdlang.New(daemon.CmdRegister).
		SetWord("name", "flaky").SetWord("host", "h").SetInt("port", 1).
		SetString("addr", "h:1").SetInt("lease", 50))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Directory().Get("flaky"); !ok {
		t.Fatal("not registered")
	}
	// The daemon "crashes" (never renews); the ASD removes it so other
	// services don't waste time connecting to a defunct service.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok := s.Directory().Get("flaky"); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("expired service never reaped")
		}
		time.Sleep(10 * time.Millisecond)
	}
	_, err = Resolve(pool, s.Addr(), Query{Name: "flaky"})
	if !cmdlang.IsRemoteCode(err, cmdlang.CodeNotFound) {
		t.Fatalf("err=%v", err)
	}
}

func TestDaemonAutoRegistrationAndRenewal(t *testing.T) {
	s := startASD(t, 20*time.Millisecond)

	// A daemon configured with the ASD address registers itself at
	// startup (Fig 9 step 3) and stays listed via lease renewal.
	d := daemon.New(daemon.Config{
		Name:     "autocam",
		Class:    hier.ClassVCC4,
		Room:     "hawk",
		ASDAddr:  s.Addr(),
		LeaseTTL: 60 * time.Millisecond,
	})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}

	e, ok := s.Directory().Get("autocam")
	if !ok || e.Class != hier.ClassVCC4 {
		t.Fatalf("entry=%+v ok=%v", e, ok)
	}

	// Stay up well past several lease periods: renewals must keep it
	// listed.
	time.Sleep(300 * time.Millisecond)
	if _, ok := s.Directory().Get("autocam"); !ok {
		t.Fatal("lease renewal failed to keep daemon listed")
	}

	// Graceful stop unregisters immediately.
	d.Stop()
	if _, ok := s.Directory().Get("autocam"); ok {
		t.Fatal("stopped daemon still listed")
	}
}

func TestCrashedDaemonReapedFromASD(t *testing.T) {
	s := startASD(t, 20*time.Millisecond)
	d := daemon.New(daemon.Config{
		Name:     "crashy",
		ASDAddr:  s.Addr(),
		LeaseTTL: 80 * time.Millisecond,
	})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Directory().Get("crashy"); !ok {
		t.Fatal("not registered")
	}
	d.Stop()
	// Re-register a tombstone manually to simulate a crash that left
	// the entry behind without renewals.
	s.Directory().Register(Entry{Name: "crashy", Addr: "gone:1", Lease: 50 * time.Millisecond}) //nolint:errcheck

	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok := s.Directory().Get("crashy"); !ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("crashed daemon never reaped")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRegistrationTriggersNotification(t *testing.T) {
	// Fig 9 step 4: services awaiting notification on "register" learn
	// that a new service is available.
	s := startASD(t, 0)

	events := make(chan *cmdlang.CmdLine, 1)
	watcher := daemon.New(daemon.Config{Name: "watcher"})
	watcher.Handle(cmdlang.CommandSpec{Name: "onServiceUp", AllowExtra: true},
		func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			events <- c
			return nil, nil
		})
	if err := watcher.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(watcher.Stop)

	pool := daemon.NewPool(nil)
	defer pool.Close()
	if err := daemon.Subscribe(pool, s.Addr(), daemon.CmdRegister, "watcher", watcher.Addr(), "onServiceUp"); err != nil {
		t.Fatal(err)
	}

	newSvc := daemon.New(daemon.Config{Name: "foo", ASDAddr: s.Addr()})
	if err := newSvc.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(newSvc.Stop)

	select {
	case ev := <-events:
		if ev.Str(daemon.NotifyEventArg, "") != daemon.CmdRegister {
			t.Fatalf("event=%v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("registration notification not delivered")
	}
}

func TestResolveAll(t *testing.T) {
	s := startASD(t, 0)
	pool := daemon.NewPool(nil)
	defer pool.Close()
	for _, name := range []string{"c1", "c2", "c3"} {
		_, err := pool.Call(s.Addr(), cmdlang.New(daemon.CmdRegister).
			SetWord("name", name).SetWord("host", "h").SetInt("port", 9).
			SetString("addr", name+":9").SetString("class", hier.ClassPTZCamera))
		if err != nil {
			t.Fatal(err)
		}
	}
	addrs, err := ResolveAll(pool, s.Addr(), Query{Class: hier.ClassPTZCamera})
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 3 || addrs[0] != "c1:9" {
		t.Fatalf("addrs=%v", addrs)
	}
}
