// Package asd implements the ACE Service Directory (§2.4, Fig 7):
// the central listing of services currently available in the
// environment. Services register at startup, renew leases
// periodically, and are reaped automatically when a lease expires —
// the mechanism that removes daemons that died without unregistering.
package asd

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ace/internal/hier"
)

// DefaultLease is applied when a registration does not request one.
const DefaultLease = 10 * time.Second

// MaxLease caps requested leases so a buggy daemon cannot pin a dead
// entry for hours.
const MaxLease = 5 * time.Minute

// Entry is one directory listing.
type Entry struct {
	Name       string
	Host       string
	Port       int
	Addr       string // dialable "host:port"
	Room       string
	Class      string
	Lease      time.Duration
	Expires    time.Time
	Registered time.Time
	Renewals   int
	// Version is the persistent-store version of this entry in a
	// replicated directory (zero in a standalone in-memory directory).
	// A replica only overwrites its in-memory copy with an entry whose
	// version is at least as new, so a lease deadline acked by another
	// replica can never be regressed by stale local state.
	Version uint64
}

// Directory is the lease-managed listing. It is independent of the
// daemon shell so it can be unit-tested with a synthetic clock; the
// Service type wraps it as an ACE daemon.
type Directory struct {
	mu      sync.RWMutex
	entries map[string]*Entry
	now     func() time.Time

	// onExpire, if set, is called (outside the lock) for each reaped
	// entry.
	onExpire func(Entry)

	registrations int64
	expirations   int64
}

// NewDirectory returns an empty directory using the real clock.
func NewDirectory() *Directory {
	return &Directory{entries: make(map[string]*Entry), now: time.Now}
}

// SetClock injects a time source (tests).
func (d *Directory) SetClock(now func() time.Time) { d.now = now }

// SetOnExpire installs the expiry callback.
func (d *Directory) SetOnExpire(fn func(Entry)) {
	d.mu.Lock()
	d.onExpire = fn
	d.mu.Unlock()
}

// Register inserts or replaces the named service's entry and returns
// the granted lease.
func (d *Directory) Register(e Entry) (time.Duration, error) {
	if e.Name == "" {
		return 0, fmt.Errorf("asd: registration without a name")
	}
	if e.Class == "" {
		e.Class = hier.Root
	}
	if !hier.Valid(e.Class) {
		return 0, fmt.Errorf("asd: invalid class %q", e.Class)
	}
	lease := clampLease(e.Lease)
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.now()
	e.Lease = lease
	e.Registered = now
	e.Expires = now.Add(lease)
	d.entries[e.Name] = &e
	d.registrations++
	return lease, nil
}

func clampLease(l time.Duration) time.Duration {
	switch {
	case l <= 0:
		return DefaultLease
	case l > MaxLease:
		return MaxLease
	default:
		return l
	}
}

// Renew extends the named service's lease. It fails if the service is
// not (or no longer) listed, prompting the daemon to re-register.
func (d *Directory) Renew(name string, lease time.Duration) (time.Duration, error) {
	lease = clampLease(lease)
	d.mu.Lock()
	e, ok := d.entries[name]
	if !ok {
		d.mu.Unlock()
		return 0, fmt.Errorf("asd: %q is not registered", name)
	}
	if d.now().After(e.Expires) {
		// Lease already lapsed; treat as gone so the caller
		// re-registers with fresh details. This is an expiration like
		// any Reap discovers, so the expiry callback fires too —
		// otherwise the asd.expirations telemetry counter and expiry
		// notifications silently diverge from Counters().
		reaped := *e
		delete(d.entries, name)
		d.expirations++
		cb := d.onExpire
		d.mu.Unlock()
		if cb != nil {
			cb(reaped)
		}
		return 0, fmt.Errorf("asd: lease of %q expired", name)
	}
	e.Expires = d.now().Add(lease)
	e.Lease = lease
	e.Renewals++
	d.mu.Unlock()
	return lease, nil
}

// Unregister removes the named service; it reports whether the entry
// existed.
func (d *Directory) Unregister(name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.entries[name]
	delete(d.entries, name)
	return ok
}

// Get returns the live entry for name.
func (d *Directory) Get(name string) (Entry, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	e, ok := d.entries[name]
	if !ok || d.now().After(e.Expires) {
		return Entry{}, false
	}
	return *e, true
}

// Query describes a directory search: any non-zero field must match.
// Class matches subclasses (asking for "Service.Device" finds every
// device).
type Query struct {
	Name  string
	Class string
	Room  string
}

// Lookup returns all live entries matching q, sorted by name.
//
// Lookups are the directory's hot path, and under a lookup storm any
// time spent holding the write-excluding lock is time lease renewals
// cannot run — exactly the window in which live services expire. So
// Lookup takes only a read lock (lookups proceed in parallel with one
// another), serves name queries with a single map probe, and for scan
// queries snapshots the candidate entries under the lock while doing
// the expensive part — class-hierarchy matching and sorting — outside
// it.
func (d *Directory) Lookup(q Query) []Entry {
	now := d.now()
	if q.Name != "" {
		// Name is the unique key: one map probe, no scan, no sort.
		d.mu.RLock()
		e, ok := d.entries[q.Name]
		var snap Entry
		if ok {
			snap = *e
		}
		d.mu.RUnlock()
		if !ok || now.After(snap.Expires) ||
			(q.Class != "" && !hier.IsSubclassOf(snap.Class, q.Class)) ||
			(q.Room != "" && snap.Room != q.Room) {
			return nil
		}
		return []Entry{snap}
	}

	d.mu.RLock()
	candidates := make([]Entry, 0, len(d.entries))
	for _, e := range d.entries {
		// Cheap equality filters run under the lock (they shrink the
		// copy); everything costlier waits until the lock is released.
		if now.After(e.Expires) {
			continue
		}
		if q.Room != "" && e.Room != q.Room {
			continue
		}
		candidates = append(candidates, *e)
	}
	d.mu.RUnlock()

	out := candidates[:0]
	for i := range candidates {
		if q.Class != "" && !hier.IsSubclassOf(candidates[i].Class, q.Class) {
			continue
		}
		out = append(out, candidates[i])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Reap removes every expired entry and returns the reaped listings.
func (d *Directory) Reap() []Entry {
	d.mu.Lock()
	now := d.now()
	var reaped []Entry
	for name, e := range d.entries {
		if now.After(e.Expires) {
			reaped = append(reaped, *e)
			delete(d.entries, name)
			d.expirations++
		}
	}
	cb := d.onExpire
	d.mu.Unlock()
	if cb != nil {
		for _, e := range reaped {
			cb(e)
		}
	}
	return reaped
}

// Len returns the number of listings (including not-yet-reaped
// expired ones).
func (d *Directory) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.entries)
}

// Counters returns lifetime registration and expiration counts.
func (d *Directory) Counters() (registrations, expirations int64) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.registrations, d.expirations
}

// The methods below are the raw cache surface the replicated
// directory (replica.go) is built on: they move entries in and out of
// memory without lease bookkeeping, because in replicated mode the
// persistent store — not this map — is the authority.

// Peek returns the named entry even when its lease has lapsed. The
// replica layer uses it to find candidates whose expiry must be
// confirmed against the store before anything is reaped.
func (d *Directory) Peek(name string) (Entry, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	e, ok := d.entries[name]
	if !ok {
		return Entry{}, false
	}
	return *e, true
}

// Install inserts or replaces the named entry iff it is at least as
// new (by store version) as what memory holds, reporting whether it
// was applied. Unlike Register it validates nothing and bumps no
// counter: the entry was already admitted by whichever replica wrote
// it to the store.
func (d *Directory) Install(e Entry) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if cur, ok := d.entries[e.Name]; ok && e.Version < cur.Version {
		return false
	}
	d.entries[e.Name] = &e
	return true
}

// Drop removes the named entry iff memory does not hold a version
// newer than maxVersion, reporting whether it was removed. It bumps
// no expiration counter — it is for entries some other replica
// already expired or unregistered (and counted).
func (d *Directory) Drop(name string, maxVersion uint64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	cur, ok := d.entries[name]
	if !ok || cur.Version > maxVersion {
		return false
	}
	delete(d.entries, name)
	return true
}

// Expire removes the named entry as a confirmed lease expiration:
// the expiration counter bumps and the expiry callback fires, exactly
// like a Reap discovery. The replica layer calls it only after the
// store agreed the lease lapsed.
func (d *Directory) Expire(name string) (Entry, bool) {
	d.mu.Lock()
	e, ok := d.entries[name]
	if !ok {
		d.mu.Unlock()
		return Entry{}, false
	}
	reaped := *e
	delete(d.entries, name)
	d.expirations++
	cb := d.onExpire
	d.mu.Unlock()
	if cb != nil {
		cb(reaped)
	}
	return reaped, true
}

// Names returns every listed name, lapsed entries included.
func (d *Directory) Names() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.entries))
	for name := range d.entries {
		out = append(out, name)
	}
	return out
}
