package asd

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"ace/internal/hier"
)

// fakeClock is a manually advanced time source.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2000, 8, 21, 9, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestDir() (*Directory, *fakeClock) {
	d := NewDirectory()
	c := newFakeClock()
	d.SetClock(c.now)
	return d, c
}

func TestRegisterAndGet(t *testing.T) {
	d, _ := newTestDir()
	lease, err := d.Register(Entry{Name: "cam1", Host: "bar", Port: 1225, Addr: "bar:1225", Room: "hawk", Class: hier.ClassVCC3, Lease: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if lease != time.Second {
		t.Fatalf("lease=%v", lease)
	}
	e, ok := d.Get("cam1")
	if !ok || e.Addr != "bar:1225" || e.Room != "hawk" {
		t.Fatalf("e=%+v ok=%v", e, ok)
	}
	if _, ok := d.Get("nobody"); ok {
		t.Fatal("phantom entry")
	}
}

func TestRegisterValidation(t *testing.T) {
	d, _ := newTestDir()
	if _, err := d.Register(Entry{}); err == nil {
		t.Fatal("nameless registration accepted")
	}
	if _, err := d.Register(Entry{Name: "x", Class: "Bogus.Class"}); err == nil {
		t.Fatal("invalid class accepted")
	}
	// Empty class defaults to the root.
	if _, err := d.Register(Entry{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	e, _ := d.Get("x")
	if e.Class != hier.Root {
		t.Fatalf("class=%q", e.Class)
	}
}

func TestLeaseClamping(t *testing.T) {
	d, _ := newTestDir()
	lease, _ := d.Register(Entry{Name: "a"})
	if lease != DefaultLease {
		t.Fatalf("default lease=%v", lease)
	}
	lease, _ = d.Register(Entry{Name: "b", Lease: time.Hour})
	if lease != MaxLease {
		t.Fatalf("clamped lease=%v", lease)
	}
}

func TestLeaseExpiryAndReap(t *testing.T) {
	d, clock := newTestDir()
	d.Register(Entry{Name: "shortlived", Lease: time.Second}) //nolint:errcheck
	d.Register(Entry{Name: "longlived", Lease: time.Minute})  //nolint:errcheck

	var expired []string
	d.SetOnExpire(func(e Entry) { expired = append(expired, e.Name) })

	clock.advance(2 * time.Second)
	// Expired entries are invisible to lookups even before reaping.
	if _, ok := d.Get("shortlived"); ok {
		t.Fatal("expired entry visible")
	}
	if got := d.Lookup(Query{}); len(got) != 1 || got[0].Name != "longlived" {
		t.Fatalf("lookup=%v", got)
	}

	reaped := d.Reap()
	if len(reaped) != 1 || reaped[0].Name != "shortlived" {
		t.Fatalf("reaped=%v", reaped)
	}
	if len(expired) != 1 || expired[0] != "shortlived" {
		t.Fatalf("callback=%v", expired)
	}
	if d.Len() != 1 {
		t.Fatalf("len=%d", d.Len())
	}
	_, exp := d.Counters()
	if exp != 1 {
		t.Fatalf("expirations=%d", exp)
	}
}

func TestRenewExtendsLease(t *testing.T) {
	d, clock := newTestDir()
	d.Register(Entry{Name: "svc", Lease: time.Second}) //nolint:errcheck
	for i := 0; i < 5; i++ {
		clock.advance(600 * time.Millisecond)
		if _, err := d.Renew("svc", time.Second); err != nil {
			t.Fatalf("renew %d: %v", i, err)
		}
	}
	e, ok := d.Get("svc")
	if !ok || e.Renewals != 5 {
		t.Fatalf("e=%+v", e)
	}

	// Renewal after expiry fails and removes the stale entry.
	clock.advance(3 * time.Second)
	if _, err := d.Renew("svc", time.Second); err == nil {
		t.Fatal("expired renewal accepted")
	}
	if _, ok := d.Get("svc"); ok {
		t.Fatal("stale entry survives failed renewal")
	}
	// Renewing an unknown name fails.
	if _, err := d.Renew("ghost", time.Second); err == nil {
		t.Fatal("ghost renewal accepted")
	}
}

func TestLookupByClassMatchesSubclasses(t *testing.T) {
	d, _ := newTestDir()
	d.Register(Entry{Name: "cam_vcc3", Class: hier.ClassVCC3, Room: "hawk"})     //nolint:errcheck
	d.Register(Entry{Name: "cam_vcc4", Class: hier.ClassVCC4, Room: "eagle"})    //nolint:errcheck
	d.Register(Entry{Name: "proj", Class: hier.ClassEpson7350, Room: "hawk"})    //nolint:errcheck
	d.Register(Entry{Name: "userdb", Class: hier.ClassDatabase, Room: "server"}) //nolint:errcheck

	if got := d.Lookup(Query{Class: hier.ClassPTZCamera}); len(got) != 2 {
		t.Fatalf("cameras=%v", got)
	}
	if got := d.Lookup(Query{Class: hier.ClassDevice}); len(got) != 3 {
		t.Fatalf("devices=%v", got)
	}
	if got := d.Lookup(Query{Class: hier.ClassDevice, Room: "hawk"}); len(got) != 2 {
		t.Fatalf("hawk devices=%v", got)
	}
	if got := d.Lookup(Query{Name: "proj"}); len(got) != 1 || got[0].Class != hier.ClassEpson7350 {
		t.Fatalf("by name=%v", got)
	}
	if got := d.Lookup(Query{Class: hier.Root}); len(got) != 4 {
		t.Fatalf("all=%v", got)
	}
	// Results are sorted by name.
	got := d.Lookup(Query{})
	for i := 1; i < len(got); i++ {
		if got[i-1].Name > got[i].Name {
			t.Fatalf("unsorted: %v", got)
		}
	}
}

func TestReRegisterReplacesEntry(t *testing.T) {
	d, _ := newTestDir()
	d.Register(Entry{Name: "svc", Addr: "old:1", Lease: time.Second}) //nolint:errcheck
	d.Register(Entry{Name: "svc", Addr: "new:2", Lease: time.Second}) //nolint:errcheck
	e, _ := d.Get("svc")
	if e.Addr != "new:2" {
		t.Fatalf("addr=%s", e.Addr)
	}
	if d.Len() != 1 {
		t.Fatalf("len=%d", d.Len())
	}
}

func TestUnregister(t *testing.T) {
	d, _ := newTestDir()
	d.Register(Entry{Name: "svc"}) //nolint:errcheck
	if !d.Unregister("svc") {
		t.Fatal("unregister existing")
	}
	if d.Unregister("svc") {
		t.Fatal("unregister twice")
	}
}

// TestQuickLeaseInvariant: under any interleaving of register/renew/
// advance operations, an entry is visible iff its last grant is newer
// than the clock.
func TestQuickLeaseInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		d, clock := newTestDir()
		// Model: name → expiry time.
		model := map[string]time.Time{}
		names := []string{"a", "b", "c"}
		for _, op := range ops {
			name := names[int(op)%len(names)]
			switch (op / 8) % 3 {
			case 0:
				d.Register(Entry{Name: name, Lease: time.Second}) //nolint:errcheck
				model[name] = clock.now().Add(time.Second)
			case 1:
				_, err := d.Renew(name, time.Second)
				exp, ok := model[name]
				alive := ok && !clock.now().After(exp)
				if alive != (err == nil) {
					return false
				}
				if err == nil {
					model[name] = clock.now().Add(time.Second)
				} else {
					delete(model, name)
				}
			case 2:
				clock.advance(time.Duration(op%16) * 100 * time.Millisecond)
			}
			// Check visibility matches the model.
			for _, n := range names {
				exp, ok := model[n]
				wantVisible := ok && !clock.now().After(exp)
				_, visible := d.Get(n)
				if visible != wantVisible {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLookupScalesToThousands(t *testing.T) {
	d, _ := newTestDir()
	for i := 0; i < 2000; i++ {
		d.Register(Entry{Name: fmt.Sprintf("svc%04d", i), Class: hier.ClassDevice, Lease: time.Minute}) //nolint:errcheck
	}
	if got := len(d.Lookup(Query{Class: hier.ClassDevice})); got != 2000 {
		t.Fatalf("got %d", got)
	}
	if got := d.Lookup(Query{Name: "svc1234"}); len(got) != 1 {
		t.Fatalf("got %v", got)
	}
}
