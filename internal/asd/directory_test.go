package asd

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"ace/internal/hier"
)

// fakeClock is a manually advanced time source.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2000, 8, 21, 9, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestDir() (*Directory, *fakeClock) {
	d := NewDirectory()
	c := newFakeClock()
	d.SetClock(c.now)
	return d, c
}

func TestRegisterAndGet(t *testing.T) {
	d, _ := newTestDir()
	lease, err := d.Register(Entry{Name: "cam1", Host: "bar", Port: 1225, Addr: "bar:1225", Room: "hawk", Class: hier.ClassVCC3, Lease: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if lease != time.Second {
		t.Fatalf("lease=%v", lease)
	}
	e, ok := d.Get("cam1")
	if !ok || e.Addr != "bar:1225" || e.Room != "hawk" {
		t.Fatalf("e=%+v ok=%v", e, ok)
	}
	if _, ok := d.Get("nobody"); ok {
		t.Fatal("phantom entry")
	}
}

func TestRegisterValidation(t *testing.T) {
	d, _ := newTestDir()
	if _, err := d.Register(Entry{}); err == nil {
		t.Fatal("nameless registration accepted")
	}
	if _, err := d.Register(Entry{Name: "x", Class: "Bogus.Class"}); err == nil {
		t.Fatal("invalid class accepted")
	}
	// Empty class defaults to the root.
	if _, err := d.Register(Entry{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	e, _ := d.Get("x")
	if e.Class != hier.Root {
		t.Fatalf("class=%q", e.Class)
	}
}

func TestLeaseClamping(t *testing.T) {
	d, _ := newTestDir()
	lease, _ := d.Register(Entry{Name: "a"})
	if lease != DefaultLease {
		t.Fatalf("default lease=%v", lease)
	}
	lease, _ = d.Register(Entry{Name: "b", Lease: time.Hour})
	if lease != MaxLease {
		t.Fatalf("clamped lease=%v", lease)
	}
}

func TestLeaseExpiryAndReap(t *testing.T) {
	d, clock := newTestDir()
	d.Register(Entry{Name: "shortlived", Lease: time.Second}) //nolint:errcheck
	d.Register(Entry{Name: "longlived", Lease: time.Minute})  //nolint:errcheck

	var expired []string
	d.SetOnExpire(func(e Entry) { expired = append(expired, e.Name) })

	clock.advance(2 * time.Second)
	// Expired entries are invisible to lookups even before reaping.
	if _, ok := d.Get("shortlived"); ok {
		t.Fatal("expired entry visible")
	}
	if got := d.Lookup(Query{}); len(got) != 1 || got[0].Name != "longlived" {
		t.Fatalf("lookup=%v", got)
	}

	reaped := d.Reap()
	if len(reaped) != 1 || reaped[0].Name != "shortlived" {
		t.Fatalf("reaped=%v", reaped)
	}
	if len(expired) != 1 || expired[0] != "shortlived" {
		t.Fatalf("callback=%v", expired)
	}
	if d.Len() != 1 {
		t.Fatalf("len=%d", d.Len())
	}
	_, exp := d.Counters()
	if exp != 1 {
		t.Fatalf("expirations=%d", exp)
	}
}

func TestRenewExtendsLease(t *testing.T) {
	d, clock := newTestDir()
	d.Register(Entry{Name: "svc", Lease: time.Second}) //nolint:errcheck
	for i := 0; i < 5; i++ {
		clock.advance(600 * time.Millisecond)
		if _, err := d.Renew("svc", time.Second); err != nil {
			t.Fatalf("renew %d: %v", i, err)
		}
	}
	e, ok := d.Get("svc")
	if !ok || e.Renewals != 5 {
		t.Fatalf("e=%+v", e)
	}

	// Renewal after expiry fails and removes the stale entry.
	clock.advance(3 * time.Second)
	if _, err := d.Renew("svc", time.Second); err == nil {
		t.Fatal("expired renewal accepted")
	}
	if _, ok := d.Get("svc"); ok {
		t.Fatal("stale entry survives failed renewal")
	}
	// Renewing an unknown name fails.
	if _, err := d.Renew("ghost", time.Second); err == nil {
		t.Fatal("ghost renewal accepted")
	}
}

func TestLookupByClassMatchesSubclasses(t *testing.T) {
	d, _ := newTestDir()
	d.Register(Entry{Name: "cam_vcc3", Class: hier.ClassVCC3, Room: "hawk"})     //nolint:errcheck
	d.Register(Entry{Name: "cam_vcc4", Class: hier.ClassVCC4, Room: "eagle"})    //nolint:errcheck
	d.Register(Entry{Name: "proj", Class: hier.ClassEpson7350, Room: "hawk"})    //nolint:errcheck
	d.Register(Entry{Name: "userdb", Class: hier.ClassDatabase, Room: "server"}) //nolint:errcheck

	if got := d.Lookup(Query{Class: hier.ClassPTZCamera}); len(got) != 2 {
		t.Fatalf("cameras=%v", got)
	}
	if got := d.Lookup(Query{Class: hier.ClassDevice}); len(got) != 3 {
		t.Fatalf("devices=%v", got)
	}
	if got := d.Lookup(Query{Class: hier.ClassDevice, Room: "hawk"}); len(got) != 2 {
		t.Fatalf("hawk devices=%v", got)
	}
	if got := d.Lookup(Query{Name: "proj"}); len(got) != 1 || got[0].Class != hier.ClassEpson7350 {
		t.Fatalf("by name=%v", got)
	}
	if got := d.Lookup(Query{Class: hier.Root}); len(got) != 4 {
		t.Fatalf("all=%v", got)
	}
	// Results are sorted by name.
	got := d.Lookup(Query{})
	for i := 1; i < len(got); i++ {
		if got[i-1].Name > got[i].Name {
			t.Fatalf("unsorted: %v", got)
		}
	}
}

func TestReRegisterReplacesEntry(t *testing.T) {
	d, _ := newTestDir()
	d.Register(Entry{Name: "svc", Addr: "old:1", Lease: time.Second}) //nolint:errcheck
	d.Register(Entry{Name: "svc", Addr: "new:2", Lease: time.Second}) //nolint:errcheck
	e, _ := d.Get("svc")
	if e.Addr != "new:2" {
		t.Fatalf("addr=%s", e.Addr)
	}
	if d.Len() != 1 {
		t.Fatalf("len=%d", d.Len())
	}
}

func TestUnregister(t *testing.T) {
	d, _ := newTestDir()
	d.Register(Entry{Name: "svc"}) //nolint:errcheck
	if !d.Unregister("svc") {
		t.Fatal("unregister existing")
	}
	if d.Unregister("svc") {
		t.Fatal("unregister twice")
	}
}

// TestQuickLeaseInvariant: under any interleaving of register/renew/
// advance operations, an entry is visible iff its last grant is newer
// than the clock.
func TestQuickLeaseInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		d, clock := newTestDir()
		// Model: name → expiry time.
		model := map[string]time.Time{}
		names := []string{"a", "b", "c"}
		for _, op := range ops {
			name := names[int(op)%len(names)]
			switch (op / 8) % 3 {
			case 0:
				d.Register(Entry{Name: name, Lease: time.Second}) //nolint:errcheck
				model[name] = clock.now().Add(time.Second)
			case 1:
				_, err := d.Renew(name, time.Second)
				exp, ok := model[name]
				alive := ok && !clock.now().After(exp)
				if alive != (err == nil) {
					return false
				}
				if err == nil {
					model[name] = clock.now().Add(time.Second)
				} else {
					delete(model, name)
				}
			case 2:
				clock.advance(time.Duration(op%16) * 100 * time.Millisecond)
			}
			// Check visibility matches the model.
			for _, n := range names {
				exp, ok := model[n]
				wantVisible := ok && !clock.now().After(exp)
				_, visible := d.Get(n)
				if visible != wantVisible {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLookupScalesToThousands(t *testing.T) {
	d, _ := newTestDir()
	for i := 0; i < 2000; i++ {
		d.Register(Entry{Name: fmt.Sprintf("svc%04d", i), Class: hier.ClassDevice, Lease: time.Minute}) //nolint:errcheck
	}
	if got := len(d.Lookup(Query{Class: hier.ClassDevice})); got != 2000 {
		t.Fatalf("got %d", got)
	}
	if got := d.Lookup(Query{Name: "svc1234"}); len(got) != 1 {
		t.Fatalf("got %v", got)
	}
}

// Regression: every removal the expiration counter counts must also
// fire the SetOnExpire callback, whichever path discovered the lapse
// (Renew, Reap, or Get) — otherwise the asd.expirations telemetry
// counter and expiry notifications silently diverge from Counters().
func TestExpiryCounterCallbackAgreement(t *testing.T) {
	d, c := newTestDir()
	var fired []string
	d.SetOnExpire(func(e Entry) { fired = append(fired, e.Name) })

	check := func(step string) {
		t.Helper()
		_, exp := d.Counters()
		if int(exp) != len(fired) {
			t.Fatalf("%s: expirations counter=%d but callback fired %d times (%v)", step, exp, len(fired), fired)
		}
	}

	// Renew discovers the lapse.
	d.Register(Entry{Name: "a", Lease: time.Second}) //nolint:errcheck
	c.advance(2 * time.Second)
	if _, err := d.Renew("a", time.Second); err == nil {
		t.Fatal("lapsed renewal succeeded")
	}
	check("renew")
	if len(fired) != 1 || fired[0] != "a" {
		t.Fatalf("fired=%v", fired)
	}

	// Reap discovers the lapse.
	d.Register(Entry{Name: "b", Lease: time.Second}) //nolint:errcheck
	c.advance(2 * time.Second)
	d.Reap()
	check("reap")

	// Get filters a lapsed entry without reaping it: neither the
	// counter nor the callback may move until Reap collects it.
	d.Register(Entry{Name: "c", Lease: time.Second}) //nolint:errcheck
	c.advance(2 * time.Second)
	if _, ok := d.Get("c"); ok {
		t.Fatal("lapsed entry served")
	}
	check("get")
	d.Reap()
	check("reap after get")
	if len(fired) != 3 {
		t.Fatalf("fired=%v", fired)
	}
}

// The replica cache primitives never regress store versions and never
// touch the expiration counter except through Expire.
func TestReplicaCachePrimitives(t *testing.T) {
	d, c := newTestDir()
	fired := 0
	d.SetOnExpire(func(Entry) { fired++ })
	exp := func() time.Time { return c.now().Add(time.Minute) }

	if !d.Install(Entry{Name: "x", Addr: "a:1", Version: 3, Expires: exp()}) {
		t.Fatal("install rejected")
	}
	// An older version must not overwrite.
	if d.Install(Entry{Name: "x", Addr: "stale:1", Version: 2, Expires: exp()}) {
		t.Fatal("older version installed")
	}
	// Same version re-installs (read-repair idempotence).
	if !d.Install(Entry{Name: "x", Addr: "a:2", Version: 3, Expires: exp()}) {
		t.Fatal("same version rejected")
	}
	if e, _ := d.Peek("x"); e.Addr != "a:2" {
		t.Fatalf("addr=%q", e.Addr)
	}
	// Drop refuses when memory is newer than the event.
	if d.Drop("x", 2) {
		t.Fatal("drop removed a newer entry")
	}
	if !d.Drop("x", 3) {
		t.Fatal("drop refused")
	}
	if _, ok := d.Peek("x"); ok {
		t.Fatal("still present")
	}
	if _, exp := d.Counters(); exp != 0 || fired != 0 {
		t.Fatalf("drop counted as expiration: exp=%d fired=%d", exp, fired)
	}

	// Expire is the counted, callback-firing removal.
	d.Install(Entry{Name: "y", Version: 1, Expires: exp()})
	if _, ok := d.Expire("y"); !ok {
		t.Fatal("expire missed")
	}
	if _, exp := d.Counters(); exp != 1 || fired != 1 {
		t.Fatalf("exp=%d fired=%d", exp, fired)
	}
	// Peek sees lapsed entries that Get filters.
	d.Install(Entry{Name: "z", Version: 1, Expires: c.now().Add(-time.Second)})
	if _, ok := d.Get("z"); ok {
		t.Fatal("Get served a lapsed entry")
	}
	if _, ok := d.Peek("z"); !ok {
		t.Fatal("Peek filtered a lapsed entry")
	}
}
