package asd

import (
	"fmt"
	"testing"
	"time"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/pstore"
	"ace/internal/telemetry"
)

// startReplicatedTrio stands up a 3-node pstore cluster and three
// directory daemons replicated over it, cross-subscribed so a change
// acked by one replica evicts the others' in-memory copies.
func startReplicatedTrio(t *testing.T, reap time.Duration) ([]*Service, *daemon.Pool) {
	t.Helper()
	cluster, err := pstore.StartCluster(3, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.StopAll)

	pool := daemon.NewPool(nil)
	t.Cleanup(pool.Close)
	store := pstore.NewClient(pool, cluster.Addrs())
	t.Cleanup(store.Close)

	var svcs []*Service
	for i := 0; i < 3; i++ {
		s := New(Config{
			Daemon:       daemon.Config{Name: fmt.Sprintf("asdrep%d", i+1)},
			ReapInterval: reap,
			Store:        store,
		})
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Stop)
		svcs = append(svcs, s)
	}
	if err := SubscribeReplicas(pool, svcs); err != nil {
		t.Fatal(err)
	}
	return svcs, pool
}

func registerVia(t *testing.T, pool *daemon.Pool, asdAddr, name, svcAddr string, leaseMS int64) {
	t.Helper()
	_, err := pool.Call(asdAddr, cmdlang.New(daemon.CmdRegister).
		SetWord("name", name).SetWord("host", "h").SetInt("port", 1).
		SetString("addr", svcAddr).SetInt("lease", leaseMS))
	if err != nil {
		t.Fatal(err)
	}
}

// Any replica serves any entry: a registration acked by one directory
// daemon is resolvable and renewable through its siblings, because
// the store — not any single daemon's memory — is the authority.
func TestReplicatedDirectoryServesFromAnyReplica(t *testing.T) {
	svcs, pool := startReplicatedTrio(t, 50*time.Millisecond)

	registerVia(t, pool, svcs[0].Addr(), "cam1", "m25:1225", 60000)

	// Lookup through a replica that never saw the registration reads
	// through to the store.
	addr, err := Resolve(pool, svcs[1].Addr(), Query{Name: "cam1"})
	if err != nil || addr != "m25:1225" {
		t.Fatalf("addr=%q err=%v", addr, err)
	}

	// Renewal through a third replica succeeds on the same evidence.
	reply, err := pool.Call(svcs[2].Addr(), cmdlang.New(daemon.CmdRenew).
		SetWord("name", "cam1").SetInt("lease", 60000))
	if err != nil {
		t.Fatalf("renew via sibling: %v", err)
	}
	if reply.Int("lease", 0) != 60000 {
		t.Fatalf("lease=%d", reply.Int("lease", 0))
	}

	// An unregister through one replica disappears from all of them
	// (notification-evicted or sync-dropped, whichever lands first).
	if _, err := pool.Call(svcs[1].Addr(), cmdlang.New(daemon.CmdUnregister).SetWord("name", "cam1")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := Resolve(pool, svcs[0].Addr(), Query{Name: "cam1"})
		if cmdlang.IsRemoteCode(err, cmdlang.CodeNotFound) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("unregistered entry still resolvable via sibling: err=%v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// None of that was a lease expiration.
	for i, s := range svcs {
		if _, exp := s.Directory().Counters(); exp != 0 {
			t.Fatalf("replica %d counted %d expirations", i+1, exp)
		}
	}
}

// A re-registration at a new address evicts sibling replicas' stale
// memory via §2.6 notifications alone: the reap/sync interval is an
// hour, so only the directoryChanged delivery can explain the
// convergence.
func TestReplicaSiblingEvictionViaNotification(t *testing.T) {
	svcs, pool := startReplicatedTrio(t, time.Hour)

	registerVia(t, pool, svcs[0].Addr(), "mover", "old:1", 60000)
	// Warm replica B's memory with the old address.
	if addr, err := Resolve(pool, svcs[1].Addr(), Query{Name: "mover"}); err != nil || addr != "old:1" {
		t.Fatalf("addr=%q err=%v", addr, err)
	}

	// The service moves: re-register at a new address through A.
	registerVia(t, pool, svcs[0].Addr(), "mover", "new:2", 60000)

	// B's stale copy is evicted by A's register notification; the next
	// name lookup reads through and serves the new address. Sync
	// cannot rescue this test — it never runs.
	deadline := time.Now().Add(5 * time.Second)
	for {
		addr, err := Resolve(pool, svcs[1].Addr(), Query{Name: "mover"})
		if err == nil && addr == "new:2" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sibling never converged: addr=%q err=%v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Satellite race 1: a client holds a warm positive cache entry for a
// service that re-registers at a new address. The register
// notification must evict the stale positive — positive entries have
// no TTL here, so nothing else can — and the next resolve through the
// (updated) preferred replica returns the new address.
func TestClientCacheStalePositiveEvictedOnReregister(t *testing.T) {
	svcs, pool := startReplicatedTrio(t, time.Hour)

	tel := telemetry.NewRegistry()
	cpool := daemon.NewPoolConfig(daemon.PoolConfig{Telemetry: tel})
	defer cpool.Close()
	client := NewClient(cpool, svcs[0].Addr(), svcs[1].Addr(), svcs[2].Addr())

	edge := daemon.New(daemon.Config{Name: "edge_cache1"})
	client.HandleInvalidation(edge)
	if err := edge.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(edge.Stop)
	if err := client.SubscribeInvalidation(edge); err != nil {
		t.Fatal(err)
	}

	registerVia(t, pool, svcs[0].Addr(), "roamer", "old:1", 60000)

	// First resolve warms the cache (and pins svcs[0] as preferred);
	// the second is served without leaving the process.
	for i := 0; i < 2; i++ {
		if addr, err := client.Resolve(Query{Name: "roamer"}); err != nil || addr != "old:1" {
			t.Fatalf("resolve %d: addr=%q err=%v", i, addr, err)
		}
	}
	if hits := tel.Counter(daemon.MetricLookupCacheHits).Value(); hits != 1 {
		t.Fatalf("cache hits=%d, want 1", hits)
	}

	// The service moves. Re-registering through the client's preferred
	// replica updates that replica's memory synchronously with the
	// ack, so once the client's cache entry is evicted the re-fetch
	// cannot resurrect the old address.
	registerVia(t, pool, svcs[0].Addr(), "roamer", "new:2", 60000)

	deadline := time.Now().Add(5 * time.Second)
	for {
		addr, err := client.Resolve(Query{Name: "roamer"})
		if err == nil && addr == "new:2" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stale positive never evicted: addr=%q err=%v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if inv := tel.Counter(daemon.MetricLookupCacheInvalidations).Value(); inv == 0 {
		t.Fatal("convergence without a recorded invalidation")
	}
}

// Satellite race 2: a cached negative answer outlives a late
// registration by at most the negative TTL. This client deliberately
// has no notification subscription — the TTL is the backstop for
// exactly that (lost or absent delivery), so absence must age out on
// its own.
func TestClientCacheNegativeTTLExpiryAfterLateRegistration(t *testing.T) {
	svcs, pool := startReplicatedTrio(t, time.Hour)

	tel := telemetry.NewRegistry()
	cpool := daemon.NewPoolConfig(daemon.PoolConfig{
		Telemetry:         tel,
		LookupNegativeTTL: 500 * time.Millisecond,
	})
	defer cpool.Close()
	client := NewClient(cpool, svcs[0].Addr(), svcs[1].Addr(), svcs[2].Addr())

	// Miss, then cached miss.
	for i := 0; i < 2; i++ {
		if _, err := client.Resolve(Query{Name: "latecomer"}); !cmdlang.IsRemoteCode(err, cmdlang.CodeNotFound) {
			t.Fatalf("resolve %d: err=%v", i, err)
		}
	}
	if neg := tel.Counter(daemon.MetricLookupCacheNegativeHits).Value(); neg != 1 {
		t.Fatalf("negative hits=%d, want 1", neg)
	}

	// The service registers late. With no notification path, the
	// cached absence keeps answering until its TTL…
	registerVia(t, pool, svcs[0].Addr(), "latecomer", "late:9", 60000)
	if _, err := client.Resolve(Query{Name: "latecomer"}); !cmdlang.IsRemoteCode(err, cmdlang.CodeNotFound) {
		t.Fatalf("negative entry did not mask the late registration: err=%v", err)
	}

	// …after which the registration becomes visible.
	deadline := time.Now().Add(5 * time.Second)
	for {
		addr, err := client.Resolve(Query{Name: "latecomer"})
		if err == nil && addr == "late:9" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("negative entry never expired: err=%v", err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// A daemon configured with the full replica list keeps its lease
// alive through the loss of its preferred directory: renewals fail
// over to a surviving replica that honors the same durable lease.
func TestDaemonLeaseFailsOverAcrossReplicas(t *testing.T) {
	svcs, _ := startReplicatedTrio(t, 50*time.Millisecond)

	d := daemon.New(daemon.Config{
		Name:     "failover_client",
		ASDAddr:  svcs[0].Addr(),
		ASDAddrs: []string{svcs[1].Addr(), svcs[2].Addr()},
		LeaseTTL: 300 * time.Millisecond,
		PoolConfig: &daemon.PoolConfig{
			DialTimeout: 200 * time.Millisecond,
			CallTimeout: time.Second,
			MaxRetries:  1,
		},
	})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)

	// Kill the daemon's preferred (primary) directory.
	svcs[0].Stop()

	// The lease must stay alive through failover: across several lease
	// periods the entry remains resolvable via survivors and no
	// survivor ever counts an expiration for it.
	deadline := time.Now().Add(1500 * time.Millisecond)
	for time.Now().Before(deadline) {
		if _, exp := svcs[1].Directory().Counters(); exp != 0 {
			t.Fatalf("replica 2 expired the lease during failover")
		}
		if _, exp := svcs[2].Directory().Counters(); exp != 0 {
			t.Fatalf("replica 3 expired the lease during failover")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if got := svcs[1].Directory().Lookup(Query{Name: "failover_client"}); len(got) != 1 {
		t.Fatalf("lease lost after primary kill: %v", got)
	}
}

// The resolve-path read-through takes the store's bounded-staleness
// entry point (single replica when provably fresh, quorum fallback
// otherwise), while renewals keep the quorum path: the bounded
// instruments tick only for the lookup.
func TestReplicaResolveReadThroughUsesBoundedPath(t *testing.T) {
	cluster, err := pstore.StartCluster(3, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.StopAll)
	reg := telemetry.NewRegistry()
	pool := daemon.NewPoolConfig(daemon.PoolConfig{Telemetry: reg})
	t.Cleanup(pool.Close)
	store := pstore.NewClient(pool, cluster.Addrs())
	t.Cleanup(store.Close)

	var svcs []*Service
	for i := 0; i < 2; i++ {
		s := New(Config{
			Daemon:       daemon.Config{Name: fmt.Sprintf("asdbnd%d", i+1)},
			ReapInterval: time.Hour,
			Store:        store,
		})
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Stop)
		svcs = append(svcs, s)
	}

	registerVia(t, pool, svcs[0].Addr(), "cam7", "m7:1207", 60000)
	addr, err := Resolve(pool, svcs[1].Addr(), Query{Name: "cam7"})
	if err != nil || addr != "m7:1207" {
		t.Fatalf("addr=%q err=%v", addr, err)
	}
	if rt := svcs[1].Telemetry().Snapshot().Counter(MetricReplicaReadThroughs); rt != 1 {
		t.Fatalf("read-throughs = %d, want 1", rt)
	}
	snap := reg.Snapshot()
	bounded := snap.Counter(pstore.MetricBoundedHits) + snap.Counter(pstore.MetricBoundedFallbacks)
	if bounded != 1 {
		t.Fatalf("bounded reads = %d, want 1 (resolve read-through must use the bounded path)", bounded)
	}
}
