package asd

// Metric names recorded by the directory daemon, in addition to the
// shell's own daemon.* and wire.* instruments.
const (
	MetricRegistrations = "asd.registrations"
	MetricRenewals      = "asd.renewals"
	MetricExpirations   = "asd.expirations"
	MetricLookupLatency = "asd.lookup.latency"
)
