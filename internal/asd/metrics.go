package asd

// Metric names recorded by the directory daemon, in addition to the
// shell's own daemon.* and wire.* instruments.
const (
	MetricRegistrations = "asd.registrations"
	MetricRenewals      = "asd.renewals"
	MetricExpirations   = "asd.expirations"
	MetricLookupLatency = "asd.lookup.latency"
)

// Metric names recorded only by a replicated (store-backed) directory
// daemon.
const (
	// MetricReplicaStoreReads counts quorum reads issued to the
	// backing persistent store.
	MetricReplicaStoreReads = "asd.replica.store_reads"
	// MetricReplicaStoreWrites counts quorum writes issued to the
	// backing persistent store.
	MetricReplicaStoreWrites = "asd.replica.store_writes"
	// MetricReplicaStoreErrors counts failed store operations.
	MetricReplicaStoreErrors = "asd.replica.store_errors"
	// MetricReplicaReadThroughs counts name lookups that missed in
	// memory and were answered from the store.
	MetricReplicaReadThroughs = "asd.replica.read_throughs"
	// MetricReplicaSyncRounds counts convergence passes against the
	// store keyspace.
	MetricReplicaSyncRounds = "asd.replica.sync_rounds"
	// MetricReplicaRenewSaves counts locally-lapsed leases rescued by
	// a sibling replica's renewal found in the store — each one is an
	// expiration that replication prevented.
	MetricReplicaRenewSaves = "asd.replica.renew_saves"
	// MetricReplicaEntries gauges the in-memory entry count after each
	// sync pass.
	MetricReplicaEntries = "asd.replica.entries"
)
