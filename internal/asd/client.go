package asd

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
)

// InvalidateVerb is the notification method directory subscribers
// install to hear register/unregister/expired events — the §2.6
// machinery that keeps client lookup caches (and sibling replicas'
// memory) coherent with directory changes.
const InvalidateVerb = "directoryChanged"

// invalidationEvents are the directory verbs whose execution changes
// lookup answers.
var invalidationEvents = []string{daemon.CmdRegister, daemon.CmdUnregister, CmdExpired}

// Client is the caching, failover-aware directory client. It resolves
// queries through the pool's LookupCache first — a warm lookup never
// leaves the process — and walks the replica list on transport
// failure, so one dead directory daemon costs a resolution
// milliseconds once, not an outage.
type Client struct {
	pool  *daemon.Pool
	addrs []string
	// preferred indexes the replica that last answered.
	preferred atomic.Int32
}

// NewClient builds a client resolving against the given directory
// replicas (one address = the classic single ASD).
func NewClient(pool *daemon.Pool, addrs ...string) *Client {
	return &Client{pool: pool, addrs: addrs}
}

// Addrs returns the configured replica list.
func (c *Client) Addrs() []string { return append([]string(nil), c.addrs...) }

// queryKey canonicalizes a query for cache keying.
func queryKey(q Query) string {
	var b strings.Builder
	b.WriteString("n=")
	b.WriteString(q.Name)
	b.WriteString("|c=")
	b.WriteString(q.Class)
	b.WriteString("|r=")
	b.WriteString(q.Room)
	return b.String()
}

func lookupCmd(q Query) *cmdlang.CmdLine {
	cmd := cmdlang.New(daemon.CmdLookup)
	if q.Name != "" {
		cmd.SetWord("name", q.Name)
	}
	if q.Class != "" {
		cmd.SetString("class", q.Class)
	}
	if q.Room != "" {
		cmd.SetWord("room", q.Room)
	}
	return cmd
}

// call walks the replica list starting at the last responsive one.
// Remote errors (the directory answered) return immediately; only
// transport failures fail over.
func (c *Client) call(ctx context.Context, cmd *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
	n := len(c.addrs)
	if n == 0 {
		return nil, fmt.Errorf("asd: client has no directory address")
	}
	start := int(c.preferred.Load()) % n
	var lastErr error
	for i := 0; i < n; i++ {
		idx := (start + i) % n
		reply, err := c.pool.CallContext(ctx, c.addrs[idx], cmd)
		if err == nil {
			c.preferred.Store(int32(idx))
			return reply, nil
		}
		lastErr = err
		if _, isRemote := err.(*cmdlang.RemoteError); isRemote {
			c.preferred.Store(int32(idx))
			return nil, err
		}
	}
	return nil, lastErr
}

// ResolveAllContext returns the addresses of every service matching
// q, served from the pool's lookup cache when warm. A cached negative
// answer returns the same not_found remote error an uncached miss
// would, so callers cannot tell (except by latency) where the answer
// came from.
func (c *Client) ResolveAllContext(ctx context.Context, q Query) ([]string, error) {
	cache := c.pool.Lookups()
	key := queryKey(q)
	if addrs, negative, ok := cache.Get(key); ok {
		if negative {
			return nil, &cmdlang.RemoteError{Code: cmdlang.CodeNotFound, Msg: "no matching service"}
		}
		return addrs, nil
	}
	reply, err := c.call(ctx, lookupCmd(q))
	if err != nil {
		if cmdlang.IsRemoteCode(err, cmdlang.CodeNotFound) {
			cache.PutNegative(key)
		}
		return nil, err
	}
	names := reply.Strings("names")
	addrs := reply.Strings("addrs")
	cache.PutPositive(key, names, addrs, q.Name == "")
	return addrs, nil
}

// ResolveAll is ResolveAllContext with a background context.
func (c *Client) ResolveAll(q Query) ([]string, error) {
	return c.ResolveAllContext(context.Background(), q)
}

// ResolveContext returns one matching service's dialable address.
func (c *Client) ResolveContext(ctx context.Context, q Query) (string, error) {
	addrs, err := c.ResolveAllContext(ctx, q)
	if err != nil {
		return "", err
	}
	if len(addrs) == 0 {
		return "", &cmdlang.RemoteError{Code: cmdlang.CodeNotFound, Msg: "no matching service"}
	}
	return addrs[0], nil
}

// Resolve is ResolveContext with a background context.
func (c *Client) Resolve(q Query) (string, error) {
	return c.ResolveContext(context.Background(), q)
}

// invalidationName extracts the service name a directoryChanged
// notification concerns from its detail argument (the full original
// register/unregister/expired command string).
func invalidationName(c *cmdlang.CmdLine) string {
	detail, err := cmdlang.Parse(c.Str(daemon.NotifyDetailArg, ""))
	if err != nil {
		return ""
	}
	return detail.Str("name", "")
}

// HandleInvalidation installs the notification method that applies
// directory change events to the pool's lookup cache. Call before the
// daemon starts (handlers are fixed at start).
func (c *Client) HandleInvalidation(d *daemon.Daemon) {
	cache := c.pool.Lookups()
	d.Handle(cmdlang.CommandSpec{
		Name: InvalidateVerb,
		Doc:  "directory change notification (register/unregister/expired)",
		Args: []cmdlang.ArgSpec{
			{Name: daemon.NotifySourceArg, Kind: cmdlang.KindWord},
			{Name: daemon.NotifyEventArg, Kind: cmdlang.KindWord},
			{Name: daemon.NotifyDetailArg, Kind: cmdlang.KindString},
		},
	}, func(_ *daemon.Ctx, cl *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		if name := invalidationName(cl); name != "" {
			cache.Invalidate(cl.Str(daemon.NotifyEventArg, ""), name)
		}
		return cmdlang.OK(), nil
	})
}

// SubscribeInvalidation registers the started daemon on every
// directory replica's notification list for register, unregister, and
// expired, completing what HandleInvalidation began: from here on a
// directory change evicts this pool's cached lookups within one
// notification delivery instead of one negative TTL.
func (c *Client) SubscribeInvalidation(d *daemon.Daemon) error {
	for _, addr := range c.addrs {
		for _, event := range invalidationEvents {
			if err := daemon.Subscribe(c.pool, addr, event, d.Name(), d.Addr(), InvalidateVerb); err != nil {
				return err
			}
		}
	}
	return nil
}

// SubscribeReplicas cross-subscribes every replicated directory
// daemon to its siblings' change events, so a registration acked by
// one replica evicts the others' stale memory within one notification
// delivery instead of one sync pass. Call once every replica is
// started.
func SubscribeReplicas(p *daemon.Pool, replicas []*Service) error {
	for _, listener := range replicas {
		for _, source := range replicas {
			if source == listener {
				continue
			}
			for _, event := range invalidationEvents {
				if err := daemon.Subscribe(p, source.Addr(), event, listener.Name(), listener.Addr(), InvalidateVerb); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
