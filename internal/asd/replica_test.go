package asd

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"ace/internal/telemetry"
)

// memStore is an in-process Store fake with pstore-like versioning:
// every put bumps the path's version by one, reads return the stored
// version, deletes remove the path. It lets replica-layer semantics
// (version fencing, confirmed expiry, sync convergence) be tested
// with a synthetic clock and no cluster.
type memStore struct {
	mu    sync.Mutex
	items map[string]memItem
	fail  error // when set, every operation returns it
}

type memItem struct {
	value   []byte
	version uint64
}

func newMemStore() *memStore { return &memStore{items: make(map[string]memItem)} }

func (m *memStore) GetContext(_ context.Context, path string) ([]byte, uint64, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.fail != nil {
		return nil, 0, false, m.fail
	}
	it, ok := m.items[path]
	if !ok {
		return nil, 0, false, nil
	}
	return it.value, it.version, true, nil
}

func (m *memStore) PutContext(_ context.Context, path string, value []byte) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.fail != nil {
		return 0, m.fail
	}
	it := m.items[path]
	it.version++
	it.value = append([]byte(nil), value...)
	m.items[path] = it
	return it.version, nil
}

func (m *memStore) DeleteContext(_ context.Context, path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.fail != nil {
		return m.fail
	}
	delete(m.items, path)
	return nil
}

func (m *memStore) ListContext(_ context.Context, prefix string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.fail != nil {
		return nil, m.fail
	}
	var out []string
	for p := range m.items {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	return out, nil
}

// newTestReplica builds a replica over store sharing one fake clock
// between the directory and the replica layer.
func newTestReplica(store Store) (*replica, *fakeClock) {
	dir := NewDirectory()
	clock := newFakeClock()
	dir.SetClock(clock.now)
	r := newReplica(dir, store, telemetry.NewRegistry())
	r.now = clock.now
	return r, clock
}

func TestEntryCodecRoundTrip(t *testing.T) {
	in := Entry{
		Name: "cam1", Host: "bar", Port: 1225, Addr: "bar:1225",
		Room: "hawk", Class: "Service.Device.PTZCamera",
		Lease:      1500 * time.Millisecond,
		Expires:    time.Unix(0, 1234567890),
		Registered: time.Unix(0, 1234000000),
		Renewals:   7,
	}
	out, err := decodeEntry(encodeEntry(in), 42)
	if err != nil {
		t.Fatal(err)
	}
	in.Version = 42
	if out != in {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
	if _, err := decodeEntry([]byte("not a document"), 1); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestReplicaRegisterVisibleAcrossReplicas(t *testing.T) {
	store := newMemStore()
	a, _ := newTestReplica(store)
	b, _ := newTestReplica(store)
	ctx := context.Background()

	lease, err := a.register(ctx, Entry{Name: "cam1", Addr: "bar:1225", Lease: time.Minute})
	if err != nil || lease != time.Minute {
		t.Fatalf("lease=%v err=%v", lease, err)
	}
	// B never saw the registration; its name lookup reads through.
	got := b.lookup(ctx, Query{Name: "cam1"})
	if len(got) != 1 || got[0].Addr != "bar:1225" {
		t.Fatalf("got=%v", got)
	}
	if b.mReadThroughs.Value() != 1 {
		t.Fatalf("read_throughs=%d", b.mReadThroughs.Value())
	}
	// Second lookup is served from memory.
	if got := b.lookup(ctx, Query{Name: "cam1"}); len(got) != 1 {
		t.Fatalf("got=%v", got)
	}
	if b.mReadThroughs.Value() != 1 {
		t.Fatalf("read_throughs=%d after warm lookup", b.mReadThroughs.Value())
	}
}

// Satellite: a renewal acked by one replica just before it dies must
// not be lost by the replica that takes over. The renewal carried the
// store version, so the survivor's stale memory can never regress the
// lease deadline — it adopts the newer durable deadline instead of
// expiring the entry.
func TestReplicaRenewalSurvivesFailover(t *testing.T) {
	store := newMemStore()
	a, clockA := newTestReplica(store)
	b, clockB := newTestReplica(store)
	ctx := context.Background()

	if _, err := a.register(ctx, Entry{Name: "svc", Addr: "h:1", Lease: time.Second}); err != nil {
		t.Fatal(err)
	}
	// B caches the registration-era entry (deadline T0+1s).
	if got := b.lookup(ctx, Query{Name: "svc"}); len(got) != 1 {
		t.Fatalf("got=%v", got)
	}

	// The "primary" A acks one more renewal at T0+800ms (durable
	// deadline now T0+1.8s)… and dies.
	clockA.advance(800 * time.Millisecond)
	clockB.advance(800 * time.Millisecond)
	if _, err := a.renew(ctx, "svc", time.Second); err != nil {
		t.Fatal(err)
	}

	// At T0+1.2s B's cached deadline has lapsed but the durable one
	// has not. B must serve the renewal, not expire the lease.
	clockB.advance(400 * time.Millisecond)
	if _, err := b.renew(ctx, "svc", time.Second); err != nil {
		t.Fatalf("takeover renewal failed: %v", err)
	}
	if saves := b.mRenewSaves.Value(); saves != 1 {
		t.Fatalf("renew_saves=%d", saves)
	}
	if _, exp := b.dir.Counters(); exp != 0 {
		t.Fatalf("expirations=%d — failover lost the renewal", exp)
	}

	// Same protection on the sync path: a stale local deadline with a
	// fresh durable one is rescued, not reaped.
	if _, err := b.renew(ctx, "svc", time.Second); err != nil {
		t.Fatal(err)
	}
	a.dir.SetClock(clockB.now)
	a.now = clockB.now
	// A's memory still holds the pre-takeover deadline (T0+1.8s); B's
	// latest renewal pushed the durable one to T0+2.2s. At T0+2.0s
	// A's copy looks lapsed but the lease is alive.
	clockB.advance(800 * time.Millisecond)
	if reaped := a.sync(ctx); len(reaped) != 0 {
		t.Fatalf("sync reaped %v despite a durable renewal", reaped)
	}
	if _, exp := a.dir.Counters(); exp != 0 {
		t.Fatalf("expirations=%d", exp)
	}
}

func TestReplicaConfirmedExpiry(t *testing.T) {
	store := newMemStore()
	a, clock := newTestReplica(store)
	ctx := context.Background()

	if _, err := a.register(ctx, Entry{Name: "dead", Addr: "h:1", Lease: time.Second}); err != nil {
		t.Fatal(err)
	}
	clock.advance(2 * time.Second)

	// Renewal after a durable lapse is a confirmed expiration: the
	// entry leaves the store, the counter bumps, and the error is the
	// client-fixable kind.
	_, err := a.renew(ctx, "dead", time.Second)
	var nf *notFoundError
	if !errors.As(err, &nf) {
		t.Fatalf("err=%v", err)
	}
	if _, exp := a.dir.Counters(); exp != 1 {
		t.Fatalf("expirations=%d", exp)
	}
	if _, _, ok, _ := store.GetContext(ctx, entryPath("dead")); ok {
		t.Fatal("expired entry still in store")
	}

	// The sync path reaps durably-lapsed entries the same way.
	if _, err := a.register(ctx, Entry{Name: "dead2", Addr: "h:2", Lease: time.Second}); err != nil {
		t.Fatal(err)
	}
	clock.advance(2 * time.Second)
	reaped := a.sync(ctx)
	if len(reaped) != 1 || reaped[0].Name != "dead2" {
		t.Fatalf("reaped=%v", reaped)
	}
	if _, exp := a.dir.Counters(); exp != 2 {
		t.Fatalf("expirations=%d", exp)
	}
}

// A store outage must never expire leases: expiry requires the
// store's confirmation, so an unreachable store fails renewals
// (retryable) and stalls reaping rather than killing live services.
func TestReplicaStoreOutageNeverExpires(t *testing.T) {
	store := newMemStore()
	a, clock := newTestReplica(store)
	ctx := context.Background()

	if _, err := a.register(ctx, Entry{Name: "svc", Addr: "h:1", Lease: time.Second}); err != nil {
		t.Fatal(err)
	}
	store.mu.Lock()
	store.fail = fmt.Errorf("quorum lost")
	store.mu.Unlock()
	clock.advance(2 * time.Second)

	_, err := a.renew(ctx, "svc", time.Second)
	if err == nil {
		t.Fatal("renewal succeeded without a store")
	}
	var nf *notFoundError
	if errors.As(err, &nf) {
		t.Fatalf("store outage reported as not-found: %v", err)
	}
	if reaped := a.sync(ctx); len(reaped) != 0 {
		t.Fatalf("sync reaped %v on local state alone", reaped)
	}
	if _, exp := a.dir.Counters(); exp != 0 {
		t.Fatalf("expirations=%d during store outage", exp)
	}
}

func TestReplicaSyncConvergence(t *testing.T) {
	store := newMemStore()
	a, _ := newTestReplica(store)
	b, _ := newTestReplica(store)
	ctx := context.Background()

	for i := 0; i < 5; i++ {
		if _, err := a.register(ctx, Entry{Name: fmt.Sprintf("s%d", i), Addr: "h:1", Lease: time.Minute}); err != nil {
			t.Fatal(err)
		}
	}
	// B's sync pulls in everything it never saw.
	b.sync(ctx)
	if n := b.dir.Len(); n != 5 {
		t.Fatalf("after sync len=%d", n)
	}
	// An unregister through A disappears from B on its next sync.
	if _, err := a.unregister(ctx, "s3"); err != nil {
		t.Fatal(err)
	}
	b.sync(ctx)
	if _, ok := b.dir.Peek("s3"); ok {
		t.Fatal("unregistered entry survived sync")
	}
	if _, exp := b.dir.Counters(); exp != 0 {
		t.Fatalf("sibling unregister counted as expiration: %d", exp)
	}
}

func TestReplicaUnregisterUncached(t *testing.T) {
	store := newMemStore()
	a, _ := newTestReplica(store)
	b, _ := newTestReplica(store)
	ctx := context.Background()

	if _, err := a.register(ctx, Entry{Name: "svc", Addr: "h:1", Lease: time.Minute}); err != nil {
		t.Fatal(err)
	}
	// B never cached it; unregistering through B must still report it
	// existed and remove it durably.
	existed, err := b.unregister(ctx, "svc")
	if err != nil || !existed {
		t.Fatalf("existed=%v err=%v", existed, err)
	}
	if _, _, ok, _ := store.GetContext(ctx, entryPath("svc")); ok {
		t.Fatal("still in store")
	}
	// A's memory is allowed to serve the shadow until its next sync
	// (or a directoryChanged notification, in the full service); the
	// sync pass must then drop it without counting an expiration.
	a.sync(ctx)
	if got := a.lookup(ctx, Query{Name: "svc"}); len(got) != 0 {
		t.Fatalf("A still resolves it after sync: %v", got)
	}
	if _, exp := a.dir.Counters(); exp != 0 {
		t.Fatalf("sibling unregister counted as expiration: %d", exp)
	}
}
