package asd

// Replicated directory state (ROADMAP item 2). When a Service is
// configured with a Store, the in-memory Directory demotes itself to
// a cache: every registration, renewal, and unregistration is written
// through the persistent store's quorum fast path before it is acked,
// and any of N directory daemons backed by the same store can serve
// any request. Killing one replica loses nothing — the others read
// the lease state straight back out of the store.
//
// Coherence contract:
//
//   - The store is the authority. Memory is overwritten only by
//     entries with an equal-or-newer store version (Directory.Install),
//     so a replica with stale memory can never regress a lease
//     deadline another replica already acked (the renewal carried the
//     pstore version).
//   - Name lookups that miss in memory read through to the store, so
//     a replica that never saw a registration still resolves it.
//   - Expiry is confirmed, never assumed: a locally-lapsed entry is
//     re-read from the store first, and only reaped when the durable
//     deadline also lapsed. A renewal served by a sibling replica
//     therefore rescues the entry instead of expiring it.
//   - Scan lookups serve from memory; the sync loop (one pass per
//     reap interval) bounds their staleness by list-diffing the store
//     keyspace against memory.

import (
	"context"
	"fmt"
	"time"

	"ace/internal/cmdlang"
	"ace/internal/hier"
	"ace/internal/telemetry"
)

// Store is the slice of the persistent-store client surface the
// replicated directory needs. Both *pstore.Client and *pstore.Sharded
// satisfy it.
type Store interface {
	GetContext(ctx context.Context, path string) (value []byte, version uint64, ok bool, err error)
	PutContext(ctx context.Context, path string, value []byte) (uint64, error)
	DeleteContext(ctx context.Context, path string) error
	ListContext(ctx context.Context, prefix string) ([]string, error)
}

// boundedStore is the optional bounded-staleness read surface of a
// Store (*pstore.Client and *pstore.Sharded both provide it): a
// single-replica read proven no staler than bound, with a quorum
// fallback whenever the bound cannot be proven.
type boundedStore interface {
	GetBoundedContext(ctx context.Context, path string, bound time.Duration) (value []byte, version uint64, ok bool, err error)
}

// ResolveStaleness is the staleness bound for resolve-path store
// reads (name-lookup read-throughs). It is deliberately conservative:
// directory leases are seconds-scale, so a resolve up to 2s stale is
// within the liveness slack the lease protocol already tolerates —
// while the common case drops from a cross-replica quorum round to
// one replica's RTT. Lease renewals, expiry confirmation, and the
// sync loop never use it: those reads decide durable state and stay
// on the quorum path.
const ResolveStaleness = 2 * time.Second

// StorePrefix is the pstore keyspace holding directory entries, one
// object per registered service.
const StorePrefix = "/asd/entries"

// entryPath returns the store path for a service name. Names are
// cmdlang words (letters, digits, underscore), so they are always
// legal single path segments.
func entryPath(name string) string { return StorePrefix + "/" + name }

// entryDocName is the document encoding a directory entry is stored
// under. It reuses the cmdlang grammar the way placement maps do:
// it is a value format, not a wire verb.
const entryDocName = "dirent"

// encodeEntry renders an entry to its store representation.
func encodeEntry(e Entry) []byte {
	//acelint:ignore verbconformance dirent is a document encoding stored in pstore values, never dispatched as a command
	doc := cmdlang.New(entryDocName).
		SetWord("name", e.Name).
		SetWord("host", e.Host).
		SetInt("port", int64(e.Port)).
		SetString("addr", e.Addr).
		SetString("class", e.Class).
		SetInt("lease_ms", int64(e.Lease/time.Millisecond)).
		SetInt("expires_ns", e.Expires.UnixNano()).
		SetInt("registered_ns", e.Registered.UnixNano()).
		SetInt("renewals", int64(e.Renewals))
	if e.Room != "" {
		doc.SetWord("room", e.Room)
	}
	return []byte(doc.String())
}

// decodeEntry parses a store value back into an entry carrying the
// store version it was read at.
func decodeEntry(value []byte, version uint64) (Entry, error) {
	doc, err := cmdlang.Parse(string(value))
	if err != nil {
		return Entry{}, fmt.Errorf("asd: corrupt directory entry: %w", err)
	}
	if doc.Name() != entryDocName {
		return Entry{}, fmt.Errorf("asd: directory entry has unexpected encoding %q", doc.Name())
	}
	name := doc.Str("name", "")
	if name == "" {
		return Entry{}, fmt.Errorf("asd: directory entry without a name")
	}
	return Entry{
		Name:       name,
		Host:       doc.Str("host", ""),
		Port:       int(doc.Int("port", 0)),
		Addr:       doc.Str("addr", ""),
		Room:       doc.Str("room", ""),
		Class:      doc.Str("class", ""),
		Lease:      time.Duration(doc.Int("lease_ms", 0)) * time.Millisecond,
		Expires:    time.Unix(0, doc.Int("expires_ns", 0)),
		Registered: time.Unix(0, doc.Int("registered_ns", 0)),
		Renewals:   int(doc.Int("renewals", 0)),
		Version:    version,
	}, nil
}

// notFoundError marks replica failures the client fixes by
// re-registering (not listed, lease lapsed) as opposed to store
// trouble, which maps to a retryable unavailable reply instead.
type notFoundError struct{ msg string }

func (e *notFoundError) Error() string { return e.msg }

// replica is the store-backed implementation behind a replicated
// directory Service. It is nil on a standalone (in-memory) Service.
type replica struct {
	dir   *Directory
	store Store
	now   func() time.Time

	// storeSem bounds the detached store writes in flight (see
	// Service handlers): registration and renewal handlers detach off
	// the serial control thread so concurrent renewals pipeline their
	// quorum rounds, but never more than cap(storeSem) at once — over
	// the bound the handler falls back to doing the work inline, which
	// is the natural backpressure.
	storeSem chan struct{}

	mStoreReads   *telemetry.Counter
	mStoreWrites  *telemetry.Counter
	mStoreErrors  *telemetry.Counter
	mReadThroughs *telemetry.Counter
	mSyncRounds   *telemetry.Counter
	mRenewSaves   *telemetry.Counter
	mEntries      *telemetry.Gauge
}

// storeSlots is the bound on detached store operations in flight per
// directory replica.
const storeSlots = 32

func newReplica(dir *Directory, store Store, tel *telemetry.Registry) *replica {
	return &replica{
		dir:           dir,
		store:         store,
		now:           time.Now,
		storeSem:      make(chan struct{}, storeSlots),
		mStoreReads:   tel.Counter(MetricReplicaStoreReads),
		mStoreWrites:  tel.Counter(MetricReplicaStoreWrites),
		mStoreErrors:  tel.Counter(MetricReplicaStoreErrors),
		mReadThroughs: tel.Counter(MetricReplicaReadThroughs),
		mSyncRounds:   tel.Counter(MetricReplicaSyncRounds),
		mRenewSaves:   tel.Counter(MetricReplicaRenewSaves),
		mEntries:      tel.Gauge(MetricReplicaEntries),
	}
}

// load reads one entry from the store through the quorum path,
// installing it into memory when found. ok is false when the store
// holds nothing for the name.
func (r *replica) load(ctx context.Context, name string) (Entry, bool, error) {
	return r.loadWith(ctx, name, r.store.GetContext)
}

// loadResolve is load for the resolve path: when the store offers the
// bounded read spectrum, the entry comes from a single replica proven
// no staler than ResolveStaleness (quorum fallback inside the store
// client otherwise). Safe for the directory cache because Install
// only admits equal-or-newer store versions — a stale read can never
// regress memory.
func (r *replica) loadResolve(ctx context.Context, name string) (Entry, bool, error) {
	bs, ok := r.store.(boundedStore)
	if !ok {
		return r.load(ctx, name)
	}
	return r.loadWith(ctx, name, func(ctx context.Context, path string) ([]byte, uint64, bool, error) {
		return bs.GetBoundedContext(ctx, path, ResolveStaleness)
	})
}

func (r *replica) loadWith(ctx context.Context, name string, get func(context.Context, string) ([]byte, uint64, bool, error)) (Entry, bool, error) {
	r.mStoreReads.Inc()
	value, version, ok, err := get(ctx, entryPath(name))
	if err != nil {
		r.mStoreErrors.Inc()
		return Entry{}, false, fmt.Errorf("asd: directory store read: %w", err)
	}
	if !ok {
		return Entry{}, false, nil
	}
	e, err := decodeEntry(value, version)
	if err != nil {
		r.mStoreErrors.Inc()
		return Entry{}, false, err
	}
	r.dir.Install(e)
	return e, true, nil
}

// save writes one entry through the store's quorum path and installs
// the result (carrying the new store version) into memory.
func (r *replica) save(ctx context.Context, e Entry) (Entry, error) {
	r.mStoreWrites.Inc()
	version, err := r.store.PutContext(ctx, entryPath(e.Name), encodeEntry(e))
	if err != nil {
		r.mStoreErrors.Inc()
		return Entry{}, fmt.Errorf("asd: directory store write: %w", err)
	}
	e.Version = version
	r.dir.Install(e)
	return e, nil
}

// register admits a new (or replacing) registration: validated, lease
// clamped, quorum-written, then cached.
func (r *replica) register(ctx context.Context, e Entry) (time.Duration, error) {
	if err := validateEntry(&e); err != nil {
		return 0, err
	}
	now := r.now()
	e.Lease = clampLease(e.Lease)
	e.Registered = now
	e.Expires = now.Add(e.Lease)
	if _, err := r.save(ctx, e); err != nil {
		return 0, err
	}
	return e.Lease, nil
}

// renew extends a lease. The current entry comes from memory when
// live there; a miss or a locally-lapsed deadline reads through to
// the store first, which is what lets any replica take over renewals
// for entries it never registered — including one whose last renewal
// was acked by a replica that died a millisecond later.
func (r *replica) renew(ctx context.Context, name string, lease time.Duration) (time.Duration, error) {
	lease = clampLease(lease)
	now := r.now()
	e, inMem := r.dir.Peek(name)
	if !inMem || now.After(e.Expires) {
		se, inStore, err := r.load(ctx, name)
		if err != nil {
			return 0, err
		}
		switch {
		case !inStore && !inMem:
			return 0, &notFoundError{fmt.Sprintf("asd: %q is not registered", name)}
		case !inStore:
			// Memory had it, the store does not: another replica
			// already expired or unregistered it (and fired the
			// notifications). Drop the shadow silently.
			r.dir.Drop(name, e.Version)
			return 0, &notFoundError{fmt.Sprintf("asd: %q is not registered", name)}
		default:
			if inMem && now.After(e.Expires) && !now.After(se.Expires) {
				// The local deadline lapsed but the durable one did
				// not — a sibling replica renewed this lease. The
				// store version on the renewal is what saved it.
				r.mRenewSaves.Inc()
			}
			e = se
		}
	}
	if now.After(e.Expires) {
		// The durable lease lapsed too. Confirmed expiration: remove
		// from the store and from memory, counters and callbacks
		// agreeing with the Reap path.
		if err := r.store.DeleteContext(ctx, entryPath(name)); err != nil {
			r.mStoreErrors.Inc()
			// The entry stays; the sync loop retries the removal.
			return 0, fmt.Errorf("asd: directory store delete: %w", err)
		}
		r.dir.Expire(name)
		return 0, &notFoundError{fmt.Sprintf("asd: lease of %q expired", name)}
	}
	e.Expires = now.Add(lease)
	e.Lease = lease
	e.Renewals++
	if _, err := r.save(ctx, e); err != nil {
		return 0, err
	}
	return lease, nil
}

// unregister removes a service from the store and memory, reporting
// whether anything was listed anywhere.
func (r *replica) unregister(ctx context.Context, name string) (bool, error) {
	existed := r.dir.Unregister(name)
	if !existed {
		// The entry may live in the store without this replica ever
		// having cached it.
		_, inStore, err := r.load(ctx, name)
		if err != nil {
			return false, err
		}
		if inStore {
			r.dir.Unregister(name)
		}
		existed = inStore
	}
	if err := r.store.DeleteContext(ctx, entryPath(name)); err != nil {
		r.mStoreErrors.Inc()
		return existed, fmt.Errorf("asd: directory store delete: %w", err)
	}
	return existed, nil
}

// lookup serves a query. Name queries that miss in memory read
// through to the store before answering not-found, so a fresh replica
// resolves services registered through its siblings; scan queries
// serve from memory, whose staleness the sync loop bounds.
func (r *replica) lookup(ctx context.Context, q Query) []Entry {
	out := r.dir.Lookup(q)
	if len(out) > 0 || q.Name == "" {
		return out
	}
	if _, cached := r.dir.Peek(q.Name); cached {
		// Memory holds the entry but Lookup filtered it (lapsed, or
		// the class/room filters excluded it). The store would say
		// the same or be handled by the sync loop; no read-through.
		return nil
	}
	r.mReadThroughs.Inc()
	if _, ok, err := r.loadResolve(ctx, q.Name); err != nil || !ok {
		return nil
	}
	return r.dir.Lookup(q)
}

// invalidate evicts the named entry from memory unless memory holds a
// strictly newer version; the next touch reads through. Driven by
// sibling-replica change notifications.
func (r *replica) invalidate(name string, version uint64) {
	r.dir.Drop(name, version)
}

// sync is one convergence pass, run every reap interval in place of
// the standalone reaper:
//
//  1. the store keyspace is list-diffed against memory — entries in
//     the store this replica never cached are loaded, entries in
//     memory the store no longer holds are dropped (a sibling expired
//     or unregistered them);
//  2. every locally-lapsed entry is confirmed against the store:
//     still-live durable leases are adopted (a sibling renewed),
//     lapsed ones are deleted from the store and expired locally.
//
// It returns the confirmed expirations so the Service can fire the
// §2.6 "expired" notifications.
func (r *replica) sync(ctx context.Context) []Entry {
	r.mSyncRounds.Inc()
	inStore := map[string]bool{}
	paths, err := r.store.ListContext(ctx, StorePrefix+"/")
	if err != nil {
		r.mStoreErrors.Inc()
	} else {
		for _, p := range paths {
			name := p[len(StorePrefix)+1:]
			inStore[name] = true
			if _, ok := r.dir.Peek(name); !ok {
				if _, _, err := r.load(ctx, name); err != nil {
					break // store trouble; retry next pass
				}
			}
		}
	}
	var expired []Entry
	now := r.now()
	for _, name := range r.dir.Names() {
		e, ok := r.dir.Peek(name)
		if !ok {
			continue
		}
		if err == nil && !inStore[name] {
			// Gone from the store: a sibling already removed (and
			// counted, and notified) it.
			r.dir.Drop(name, e.Version)
			continue
		}
		if !now.After(e.Expires) {
			continue
		}
		se, stillThere, lerr := r.load(ctx, name)
		if lerr != nil {
			continue // can't confirm; never expire on local state alone
		}
		if !stillThere {
			r.dir.Drop(name, e.Version)
			continue
		}
		if !now.After(se.Expires) {
			r.mRenewSaves.Inc() // sibling's renewal rescued it
			continue
		}
		if derr := r.store.DeleteContext(ctx, entryPath(name)); derr != nil {
			r.mStoreErrors.Inc()
			continue // retried next pass
		}
		if reaped, ok := r.dir.Expire(name); ok {
			expired = append(expired, reaped)
		}
	}
	r.mEntries.Set(int64(r.dir.Len()))
	return expired
}

// validateEntry applies the Register-path validation to a replicated
// registration.
func validateEntry(e *Entry) error {
	if e.Name == "" {
		return fmt.Errorf("asd: registration without a name")
	}
	if e.Class == "" {
		e.Class = hier.Root
	}
	if !hier.Valid(e.Class) {
		return fmt.Errorf("asd: invalid class %q", e.Class)
	}
	return nil
}
