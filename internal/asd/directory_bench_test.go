package asd

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// seedDirectory fills d with n services spread over a class hierarchy
// and a handful of rooms.
func seedDirectory(b *testing.B, d *Directory, n int) {
	b.Helper()
	classes := []string{
		"Service.Device.PTZCamera",
		"Service.Device.Display",
		"Service.Software.Recognizer",
		"Service.Software.Logger",
	}
	for i := 0; i < n; i++ {
		_, err := d.Register(Entry{
			Name:  fmt.Sprintf("svc_%04d", i),
			Host:  "bench",
			Port:  1000 + i,
			Addr:  "127.0.0.1:0",
			Room:  fmt.Sprintf("room_%d", i%8),
			Class: classes[i%len(classes)],
			Lease: time.Hour,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLookupScan measures a class-filtered scan lookup by itself.
func BenchmarkLookupScan(b *testing.B) {
	d := NewDirectory()
	seedDirectory(b, d, 1024)
	q := Query{Class: "Service.Device"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := d.Lookup(q); len(got) == 0 {
			b.Fatal("lookup found nothing")
		}
	}
}

// BenchmarkLookupByName measures the name fast path: one map probe
// instead of a full scan and sort.
func BenchmarkLookupByName(b *testing.B) {
	d := NewDirectory()
	seedDirectory(b, d, 1024)
	q := Query{Name: "svc_0512"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := d.Lookup(q); len(got) != 1 {
			b.Fatal("name lookup missed")
		}
	}
}

// BenchmarkRenewUnderLookupStorm is the regression scenario this
// package's locking exists for: lease renewals racing a lookup storm.
// The benchmark measures renew latency while GOMAXPROCS-many
// goroutines run scan lookups flat out — the case where a mutex-held
// full scan+sort previously serialized every renewal behind every
// lookup. Reported as ns/op of Renew.
func BenchmarkRenewUnderLookupStorm(b *testing.B) {
	d := NewDirectory()
	seedDirectory(b, d, 1024)

	stop := make(chan struct{})
	var storm sync.WaitGroup
	var lookups atomic.Int64
	for i := 0; i < runtime.GOMAXPROCS(0); i++ {
		storm.Add(1)
		go func() {
			defer storm.Done()
			q := Query{Class: "Service.Device"}
			for {
				select {
				case <-stop:
					return
				default:
				}
				d.Lookup(q)
				lookups.Add(1)
			}
		}()
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Renew(fmt.Sprintf("svc_%04d", i%1024), time.Hour); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	storm.Wait()
	b.ReportMetric(float64(lookups.Load())/b.Elapsed().Seconds(), "lookups/s")
}

// BenchmarkRenewIdle is the baseline: renewals with no competing
// lookups, for comparison against BenchmarkRenewUnderLookupStorm.
func BenchmarkRenewIdle(b *testing.B) {
	d := NewDirectory()
	seedDirectory(b, d, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Renew(fmt.Sprintf("svc_%04d", i%1024), time.Hour); err != nil {
			b.Fatal(err)
		}
	}
}
