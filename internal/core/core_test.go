package core

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"ace/internal/asd"
	"ace/internal/cmdlang"
	"ace/internal/hier"
	"ace/internal/netlog"
	"ace/internal/roomdb"
)

func startEnv(t *testing.T, opts Options) *Environment {
	t.Helper()
	e, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Stop)
	return e
}

func TestEnvironmentBootsAndRegistersInfrastructure(t *testing.T) {
	e := startEnv(t, Options{})
	// Every infrastructure daemon is discoverable through the ASD.
	for _, name := range []string{"roomdb", "netlog", "aud", "authdb", "srm", "sal", "wss", "vncserver1", "hrm_bar", "hal_tube"} {
		if _, err := asd.Resolve(e.Pool(), e.ASD.Addr(), asd.Query{Name: name}); err != nil {
			t.Errorf("%s not in directory: %v", name, err)
		}
	}
	// Startup events reached the network logger.
	if got := e.NetLog.Log().Search(netlog.Query{Source: "wss", Event: "started"}); len(got) != 1 {
		t.Errorf("wss start not logged: %v", got)
	}
}

func TestFullScenarioFlowPlaintext(t *testing.T) {
	runFullScenario(t, Options{WithIdent: true, Rooms: []roomdb.Room{
		{Name: "hawk", Building: "nichols", Dims: roomdb.Point{X: 10, Y: 8, Z: 3}},
	}})
}

func TestFullScenarioFlowTLS(t *testing.T) {
	if testing.Short() {
		t.Skip("TLS environment boot is slow")
	}
	runFullScenario(t, Options{TLS: true, WithIdent: true, Rooms: []roomdb.Room{
		{Name: "hawk", Building: "nichols", Dims: roomdb.Point{X: 10, Y: 8, Z: 3}},
	}})
}

// runFullScenario drives Scenarios 1–5 end to end on one environment.
func runFullScenario(t *testing.T, opts Options) {
	t.Helper()
	e := startEnv(t, opts)
	rng := rand.New(rand.NewSource(42))

	// Scenario 1: new user John Doe with a default workspace.
	john, err := e.RegisterUser("john_doe", "John Doe", "hunter2", rng)
	if err != nil {
		t.Fatal(err)
	}
	if john.Workspace.Host == "" {
		t.Fatal("workspace server process not placed on any host")
	}
	// The VNC server application really runs on the reported host.
	placed := false
	for _, h := range e.Cluster.Hosts() {
		if h.Name() == john.Workspace.Host {
			_, placed = h.Find(john.Workspace.PID)
		}
	}
	if !placed {
		t.Fatalf("vncserver process missing on %s", john.Workspace.Host)
	}

	// Scenario 2: John identifies himself at the hawk podium.
	reply, err := e.IdentifyByFingerprint(john, "hawk", rng, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Str("username", "") != "john_doe" {
		t.Fatalf("scan reply=%v", reply)
	}
	if err := e.WaitLocation("john_doe", "hawk", 2*time.Second); err != nil {
		t.Fatal(err)
	}

	// Scenario 3: his workspace comes up at the podium.
	viewer, err := e.OpenViewer("john_doe", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := viewer.Type("echo preparing presentation"); err != nil {
		t.Fatal(err)
	}
	screen, err := viewer.Screen()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(screen, "\n"), "preparing presentation") {
		t.Fatalf("screen=%v", screen)
	}

	// Scenario 4: a second workspace and the selector list.
	if _, err := e.WSS.Create("john_doe", "slides"); err != nil {
		t.Fatal(err)
	}
	if names := e.WSS.List("john_doe"); len(names) != 2 {
		t.Fatalf("workspaces=%v", names)
	}

	// Scenario 5: conference room devices.
	cr, err := e.SetupConferenceRoom("hawk")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Scenario5("hawk", "john_doe", [3]float64{5, 2, 1.2}); err != nil {
		t.Fatal(err)
	}
	cam := cr.Camera.State()
	if !cam.On || cam.Zoom != 4 {
		t.Fatalf("camera=%+v", cam)
	}
	proj := cr.Projector.State()
	if !proj.On || proj.Input != "workspace_john_doe" || proj.PIP != "camera:hawk" {
		t.Fatalf("projector=%+v", proj)
	}
}

func TestAuthorizationIntegration(t *testing.T) {
	e := startEnv(t, Options{TLS: true})
	// A gated camera: only principals with admin-signed credentials
	// may move it.
	if err := e.GrantCredential("john_doe", `command == "move"`, "camera rights"); err != nil {
		t.Fatal(err)
	}
	authz, err := e.Authorizer("cam1", 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := e.DaemonConfig("cam1", hier.ClassVCC3, "hawk")
	cfg.Authorizer = authz
	cam := newTestService(cfg)
	if err := cam.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cam.Stop)

	// john_doe (TLS identity) may move.
	johnT, err := e.transport("john_doe")
	if err != nil {
		t.Fatal(err)
	}
	johnPool := newPool(johnT)
	defer johnPool.Close()
	if _, err := johnPool.Call(cam.Addr(), cmdlang.New("move").SetFloat("x", 1)); err != nil {
		t.Fatalf("john denied: %v", err)
	}
	// ...but not zoom.
	if _, err := johnPool.Call(cam.Addr(), cmdlang.New("zoom")); !cmdlang.IsRemoteCode(err, cmdlang.CodeDenied) {
		t.Fatalf("zoom err=%v", err)
	}
	// A stranger may do nothing.
	stT, _ := e.transport("stranger")
	stPool := newPool(stT)
	defer stPool.Close()
	if _, err := stPool.Call(cam.Addr(), cmdlang.New("move").SetFloat("x", 1)); !cmdlang.IsRemoteCode(err, cmdlang.CodeDenied) {
		t.Fatalf("stranger err=%v", err)
	}
}

func TestServiceTreeRendersRooms(t *testing.T) {
	e := startEnv(t, Options{})
	if _, err := e.SetupConferenceRoom("hawk"); err != nil {
		t.Fatal(err)
	}
	tree := e.ServiceTree()
	if !strings.Contains(tree, "hawk") || !strings.Contains(tree, "ptz_hawk") {
		t.Fatalf("tree:\n%s", tree)
	}
	if !strings.Contains(tree, "(environment)") {
		t.Fatalf("tree missing environment group:\n%s", tree)
	}
}

func TestWSSRecoveryThroughEnvironmentStore(t *testing.T) {
	e := startEnv(t, Options{})
	if _, err := e.WSS.Create("alice", ""); err != nil {
		t.Fatal(err)
	}
	// The registry checkpoint is in the replicated store.
	paths, err := e.StoreClient.List("/wss/")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("paths=%v", paths)
	}
}
