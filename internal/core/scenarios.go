package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"ace/internal/asd"
	"ace/internal/cmdlang"
	"ace/internal/device"
	"ace/internal/hier"
	"ace/internal/ident"
	"ace/internal/userdb"
	"ace/internal/workspace"
)

func cmdAddCredential(text string) *cmdlang.CmdLine {
	return cmdlang.New("addCredential").SetString("text", text)
}

// User bundles what Scenario 1 creates for a new employee.
type User struct {
	Username    string
	Fingerprint ident.Template
	IButton     uint64
	Workspace   workspace.Info
}

// RegisterUser runs Scenario 1: the administrator registers the user
// in the AUD (password, iButton, scanned fingerprint) and the WSS
// creates the user's constantly running default workspace through the
// SAL/HAL/SRM/HRM chain.
func (e *Environment) RegisterUser(username, fullName, password string, rng *rand.Rand) (*User, error) {
	if rng == nil {
		rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	u := &User{
		Username:    username,
		Fingerprint: ident.NewTemplate(rng),
		IButton:     uint64(rng.Int63())/2 + 1,
	}
	if err := e.AUD.DB().Add(userdb.User{
		Username:    username,
		FullName:    fullName,
		PassHash:    userdb.HashPassword(password),
		IButton:     u.IButton,
		Fingerprint: u.Fingerprint.Hex(),
	}); err != nil {
		return nil, err
	}
	info, err := e.WSS.Create(username, workspace.DefaultWorkspace)
	if err != nil {
		return nil, err
	}
	u.Workspace = info
	if e.FIU != nil {
		if err := e.FIU.ReloadTable(); err != nil {
			return nil, err
		}
	}
	return u, nil
}

// IdentifyByFingerprint runs Scenario 2: a (noisy) capture of the
// user's finger is scanned at an access point in the given room; the
// FIU identifies it, the ID monitor updates the AUD and brings up the
// workspace. It returns the scan reply.
func (e *Environment) IdentifyByFingerprint(u *User, room string, rng *rand.Rand, noise float64) (*cmdlang.CmdLine, error) {
	if e.FIU == nil {
		return nil, fmt.Errorf("core: environment started without identification services")
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	capture := u.Fingerprint.Noisy(rng, noise)
	return e.pool.Call(e.FIU.Addr(), cmdlang.New(ident.CmdScan).
		SetString("capture", capture.Hex()).
		SetWord("location", room))
}

// OpenViewer runs Scenario 3's final step: attach a viewer to the
// user's workspace using WSS-issued credentials.
func (e *Environment) OpenViewer(username, wsName string) (*workspace.Viewer, error) {
	info, err := e.WSS.Open(username, wsName)
	if err != nil {
		return nil, err
	}
	return workspace.NewViewer(e.pool, info), nil
}

// WaitLocation polls until the AUD records the user at the room
// (Scenario 2's asynchronous completion), up to the timeout.
func (e *Environment) WaitLocation(username, room string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		u, ok := e.AUD.DB().Get(username)
		if ok && u.Location == room {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("core: %s never located in %s (last %q)", username, room, u.Location)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// ConferenceRoom bundles the Scenario 5 devices of one room.
type ConferenceRoom struct {
	Room      string
	Camera    *device.PTZCamera
	Projector *device.Projector
}

// SetupConferenceRoom starts a PTZ camera and a projector placed in
// the named room, registered with the directory and room database.
func (e *Environment) SetupConferenceRoom(room string) (*ConferenceRoom, error) {
	cam := device.NewPTZCamera(e.DaemonConfig("ptz_"+room, hier.ClassVCC4, room), device.VCC4)
	if err := cam.Start(); err != nil {
		return nil, err
	}
	e.stoppers = append(e.stoppers, cam.Stop)
	proj := device.NewProjector(e.DaemonConfig("projector_"+room, hier.ClassEpson7350, room))
	if err := proj.Start(); err != nil {
		return nil, err
	}
	e.stoppers = append(e.stoppers, proj.Stop)
	return &ConferenceRoom{Room: room, Camera: cam, Projector: proj}, nil
}

// Scenario5 drives the presentation-prep flow: discover the room's
// devices through the room database and ASD, power the projector,
// route the workspace, PIP the camera, and point the camera at the
// podium.
func (e *Environment) Scenario5(room, username string, podium [3]float64) error {
	// The device GUI asks the room database what is present.
	info, err := e.pool.Call(e.RoomDB.Addr(), cmdlang.New("roomInfo").SetWord("room", room))
	if err != nil {
		return fmt.Errorf("scenario5: roomInfo: %w", err)
	}
	services := info.Strings("services")
	classes := info.Strings("classes")

	var camAddr, projAddr string
	for i, svc := range services {
		var class string
		if i < len(classes) {
			class = classes[i]
		}
		// Clients find daemons via the ASD (Fig 7).
		addr, err := asd.Resolve(e.pool, e.ASD.Addr(), asd.Query{Name: svc})
		if err != nil {
			continue
		}
		switch {
		case hier.IsSubclassOf(class, hier.ClassPTZCamera):
			camAddr = addr
		case hier.IsSubclassOf(class, hier.ClassProjector):
			projAddr = addr
		}
	}
	if camAddr == "" || projAddr == "" {
		return fmt.Errorf("scenario5: devices not discoverable (cam=%q proj=%q)", camAddr, projAddr)
	}

	// Turn the projector on and output the workspace to the screen.
	if _, err := e.pool.Call(projAddr, cmdlang.New("power").SetBool("on", true)); err != nil {
		return err
	}
	if _, err := e.pool.Call(projAddr, cmdlang.New("display").
		SetString("source", "workspace_"+username)); err != nil {
		return err
	}
	// Select the camera output as picture-in-picture.
	if _, err := e.pool.Call(projAddr, cmdlang.New("pip").
		SetString("source", "camera:"+room)); err != nil {
		return err
	}
	// Power the camera and pan/tilt/zoom it toward the podium.
	if _, err := e.pool.Call(camAddr, cmdlang.New("power").SetBool("on", true)); err != nil {
		return err
	}
	if _, err := e.pool.Call(camAddr, cmdlang.New("pointAt").
		Set("target", cmdlang.FloatVector(podium[0], podium[1], podium[2]))); err != nil {
		return err
	}
	if _, err := e.pool.Call(camAddr, cmdlang.New("zoom").SetFloat("factor", 4)); err != nil {
		return err
	}
	return nil
}

// ServiceTree renders the Fig 2 left-hand pane: every live service
// grouped by room, as acectl shows it.
func (e *Environment) ServiceTree() string {
	entries := e.ASD.Directory().Lookup(asd.Query{})
	byRoom := map[string][]string{}
	for _, en := range entries {
		room := en.Room
		if room == "" {
			room = "(environment)"
		}
		byRoom[room] = append(byRoom[room], fmt.Sprintf("%s [%s] %s", en.Name, en.Class, en.Addr))
	}
	var rooms []string
	for r := range byRoom {
		rooms = append(rooms, r)
	}
	sort.Strings(rooms)
	var b strings.Builder
	for _, r := range rooms {
		fmt.Fprintf(&b, "%s\n", r)
		for _, line := range byRoom[r] {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}
	return b.String()
}
