package core

import (
	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/wire"
)

// newTestService builds a minimal camera-like daemon with move/zoom
// commands for authorization tests.
func newTestService(cfg daemon.Config) *daemon.Daemon {
	d := daemon.New(cfg)
	d.Handle(cmdlang.CommandSpec{
		Name: "move",
		Args: []cmdlang.ArgSpec{{Name: "x", Kind: cmdlang.KindFloat}},
	}, func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) { return nil, nil })
	d.Handle(cmdlang.CommandSpec{Name: "zoom"},
		func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) { return nil, nil })
	return d
}

func newPool(t *wire.Transport) *daemon.Pool { return daemon.NewPool(t) }
