// Package core assembles a complete Ambient Computational Environment
// from the substrate packages: the service directory, room database,
// network logger, user and authorization databases, the persistent
// store cluster, the resource-monitor/launcher plane, workspace
// servers, and identification devices — the full Fig 18 topology —
// behind one Environment type.
//
// The Environment is the library's main entry point: examples, the
// aced/acectl tools, the scenario drivers, and the benchmark harness
// all build on it.
package core

import (
	"fmt"

	"ace/internal/asd"
	"ace/internal/authdb"
	"ace/internal/daemon"
	"ace/internal/ident"
	"ace/internal/keynote"
	"ace/internal/launcher"
	"ace/internal/monitor"
	"ace/internal/netlog"
	"ace/internal/pstore"
	"ace/internal/roomdb"
	"ace/internal/simhost"
	"ace/internal/userdb"
	"ace/internal/wire"
	"ace/internal/workspace"
)

// HostSpec describes one simulated compute host of the environment.
type HostSpec struct {
	Name  string
	Speed float64 // bogomips
	Mem   int64   // bytes
}

// Options configure an Environment. The zero value yields a useful
// small environment: plaintext transport, three store nodes, two
// hosts, one VNC server.
type Options struct {
	// Name labels the environment (CA name, logs).
	Name string
	// TLS enables mutually authenticated TLS on every daemon.
	TLS bool
	// StoreNodes is the persistent-store cluster size (default 3,
	// Fig 17). 0 uses the default; negative disables the store.
	StoreNodes int
	// StoreDir enables on-disk WALs for the store when non-empty.
	StoreDir string
	// Hosts are the simulated machines (default: bar and tube).
	Hosts []HostSpec
	// VNCServers is how many workspace servers to run (default 1).
	VNCServers int
	// Rooms pre-seeds the room database.
	Rooms []roomdb.Room
	// WithIdent starts the FIU, iButton reader, and ID monitor.
	WithIdent bool
}

// Environment is a running ACE.
type Environment struct {
	opts Options

	// CA is the environment certificate authority (nil when TLS is
	// off).
	CA *wire.CA

	// Infrastructure services.
	ASD    *asd.Service
	RoomDB *roomdb.Service
	NetLog *netlog.Service
	AUD    *userdb.Service
	AuthDB *authdb.Service

	// Persistent store (nil when disabled).
	Store       *pstore.Cluster
	StoreClient *pstore.Client

	// Compute plane.
	Cluster *simhost.Cluster
	SRM     *monitor.SRM
	SAL     *launcher.SAL
	HRMs    []*monitor.HRM
	HALs    []*launcher.HAL

	// Workspaces.
	VNCs []*workspace.VNCServer
	WSS  *workspace.WSS

	// Identification (when WithIdent).
	FIU       *ident.FIU
	IButton   *ident.IButtonReader
	IDMonitor *ident.IDMonitor

	// Admin is the root trust principal: environment policy
	// delegates to it, and it signs user credentials.
	Admin   *keynote.Principal
	Keyring *keynote.Keyring
	Policy  *keynote.Assertion

	pool     *daemon.Pool
	stoppers []func()
}

// Start builds and boots an environment.
func Start(opts Options) (*Environment, error) {
	if opts.Name == "" {
		opts.Name = "ace"
	}
	if opts.StoreNodes == 0 {
		opts.StoreNodes = 3
	}
	if len(opts.Hosts) == 0 {
		opts.Hosts = []HostSpec{
			{Name: "bar", Speed: 400, Mem: 1 << 30},
			{Name: "tube", Speed: 250, Mem: 1 << 30},
		}
	}
	if opts.VNCServers <= 0 {
		opts.VNCServers = 1
	}

	e := &Environment{opts: opts, Cluster: simhost.NewCluster()}
	ok := false
	defer func() {
		if !ok {
			e.Stop()
		}
	}()

	if opts.TLS {
		ca, err := wire.NewCA(opts.Name)
		if err != nil {
			return nil, err
		}
		e.CA = ca
	}

	admin, err := keynote.NewPrincipal("admin")
	if err != nil {
		return nil, err
	}
	e.Admin = admin
	e.Keyring = keynote.NewKeyring()
	e.Keyring.Add(admin)
	e.Policy = keynote.MustAssertion(keynote.Policy, `"admin"`, `app_domain == "ace"`, opts.Name+" root of trust")

	clientT, err := e.transport(opts.Name + "_env")
	if err != nil {
		return nil, err
	}
	e.pool = daemon.NewPool(clientT)
	e.stoppers = append(e.stoppers, e.pool.Close)

	// Infrastructure, in Fig 9 dependency order: the ASD first (it is
	// the well-known root), then room DB and logger, then the rest.
	asdT, err := e.transport("asd")
	if err != nil {
		return nil, err
	}
	e.ASD = asd.New(asd.Config{Daemon: daemon.Config{Transport: asdT}})
	if err := e.ASD.Start(); err != nil {
		return nil, err
	}
	e.stoppers = append(e.stoppers, e.ASD.Stop)

	roomDB := roomdb.NewDB()
	for _, r := range opts.Rooms {
		if err := roomDB.AddRoom(r); err != nil {
			return nil, err
		}
	}
	e.RoomDB = roomdb.New(e.daemonConfig("roomdb", "", ""), roomDB)
	if err := e.RoomDB.Start(); err != nil {
		return nil, err
	}
	e.stoppers = append(e.stoppers, e.RoomDB.Stop)

	e.NetLog = netlog.New(e.daemonConfig("netlog", "", ""), 0)
	if err := e.NetLog.Start(); err != nil {
		return nil, err
	}
	e.stoppers = append(e.stoppers, e.NetLog.Stop)

	e.AUD = userdb.New(e.DaemonConfig("aud", "", ""), nil)
	if err := e.AUD.Start(); err != nil {
		return nil, err
	}
	e.stoppers = append(e.stoppers, e.AUD.Stop)

	e.AuthDB = authdb.New(e.DaemonConfig("authdb", "", ""), nil)
	if err := e.AuthDB.Start(); err != nil {
		return nil, err
	}
	e.stoppers = append(e.stoppers, e.AuthDB.Stop)

	// Persistent store cluster (Fig 17).
	if opts.StoreNodes > 0 {
		cluster, err := pstore.StartClusterT(opts.StoreNodes, opts.StoreDir, 0, e.transportOrNil())
		if err != nil {
			return nil, err
		}
		e.Store = cluster
		e.stoppers = append(e.stoppers, cluster.StopAll)
		e.StoreClient = pstore.NewClient(e.pool, cluster.Addrs())
		// Drain straggler fan-outs and in-flight read repairs before the
		// cluster and pool (registered earlier, stopped later) go down.
		e.stoppers = append(e.stoppers, e.StoreClient.Close)
	}

	// Compute plane: one HRM + HAL per host, one SRM, one SAL.
	e.SRM = monitor.NewSRM(e.DaemonConfig("srm", monitor.ClassSRM, ""), 1)
	if err := e.SRM.Start(); err != nil {
		return nil, err
	}
	e.stoppers = append(e.stoppers, e.SRM.Stop)
	for _, hs := range opts.Hosts {
		host := simhost.NewHost(hs.Name, hs.Speed, hs.Mem, 1<<40)
		e.Cluster.Add(host)
		hrm := monitor.NewHRM(e.DaemonConfig("hrm_"+hs.Name, monitor.ClassHRM, ""), host)
		if err := hrm.Start(); err != nil {
			return nil, err
		}
		e.stoppers = append(e.stoppers, hrm.Stop)
		hal := launcher.NewHAL(e.DaemonConfig("hal_"+hs.Name, launcher.ClassHAL, ""), host)
		if err := hal.Start(); err != nil {
			return nil, err
		}
		e.stoppers = append(e.stoppers, hal.Stop)
		e.HRMs = append(e.HRMs, hrm)
		e.HALs = append(e.HALs, hal)
		e.SRM.AddHost(hs.Name, hrm.Addr(), hal.Addr())
	}
	e.SAL = launcher.NewSAL(e.DaemonConfig("sal", launcher.ClassSAL, ""), e.SRM)
	if err := e.SAL.Start(); err != nil {
		return nil, err
	}
	e.stoppers = append(e.stoppers, e.SAL.Stop)

	// Workspaces.
	var vncAddrs []string
	for i := 0; i < opts.VNCServers; i++ {
		name := fmt.Sprintf("vncserver%d", i+1)
		v := workspace.NewVNCServer(e.DaemonConfig(name, workspace.ClassVNCServer, ""))
		if err := v.Start(); err != nil {
			return nil, err
		}
		e.stoppers = append(e.stoppers, v.Stop)
		e.VNCs = append(e.VNCs, v)
		vncAddrs = append(vncAddrs, v.Addr())
	}
	e.WSS = workspace.NewWSS(workspace.WSSConfig{
		Daemon:   e.DaemonConfig("wss", workspace.ClassWSS, ""),
		VNCAddrs: vncAddrs,
		SALAddr:  e.SAL.Addr(),
		Store:    e.StoreClient,
	})
	if err := e.WSS.Start(); err != nil {
		return nil, err
	}
	e.stoppers = append(e.stoppers, e.WSS.Stop)

	// Identification devices and the ID monitor.
	if opts.WithIdent {
		e.FIU = ident.NewFIU(e.DaemonConfig("fiu", ident.ClassFIU, ""), e.AUD.Addr(), 0)
		if err := e.FIU.Start(); err != nil {
			return nil, err
		}
		e.stoppers = append(e.stoppers, e.FIU.Stop)

		e.IButton = ident.NewIButtonReader(e.DaemonConfig("ibutton", ident.ClassIButton, ""), e.AUD.Addr())
		if err := e.IButton.Start(); err != nil {
			return nil, err
		}
		e.stoppers = append(e.stoppers, e.IButton.Stop)

		e.IDMonitor = ident.NewIDMonitor(ident.IDMonitorConfig{
			Daemon:  e.DaemonConfig("idmonitor", ident.ClassIDMonitor, ""),
			AUDAddr: e.AUD.Addr(),
			WSSAddr: e.WSS.Addr(),
		})
		if err := e.IDMonitor.Start(); err != nil {
			return nil, err
		}
		e.stoppers = append(e.stoppers, e.IDMonitor.Stop)
		if err := e.IDMonitor.SubscribeTo(e.FIU.Addr()); err != nil {
			return nil, err
		}
		if err := e.IDMonitor.SubscribeTo(e.IButton.Addr()); err != nil {
			return nil, err
		}
	}

	ok = true
	return e, nil
}

// transport issues a TLS identity (or nil in plaintext environments).
func (e *Environment) transport(name string) (*wire.Transport, error) {
	if e.CA == nil {
		return nil, nil
	}
	return wire.NewTransport(e.CA, name)
}

// transportOrNil adapts transport for factories that accept nil in
// plaintext environments.
func (e *Environment) transportOrNil() func(string) (*wire.Transport, error) {
	if e.CA == nil {
		return nil
	}
	return e.transport
}

// daemonConfig builds an infrastructure daemon's config (registered
// with the ASD but not gated — infrastructure must answer before
// authorization can work).
func (e *Environment) daemonConfig(name, class, room string) daemon.Config {
	t, err := e.transport(name)
	if err != nil {
		t = nil
	}
	return daemon.Config{
		Name:      name,
		Class:     class,
		Room:      room,
		Transport: t,
		ASDAddr:   e.ASD.Addr(),
	}
}

// DaemonConfig returns a daemon configuration fully wired into the
// environment (TLS identity, ASD registration, room database
// placement, and network-logger lifecycle events) — what any new
// service needs to join this ACE.
func (e *Environment) DaemonConfig(name, class, room string) daemon.Config {
	cfg := e.daemonConfig(name, class, room)
	cfg.RoomDBAddr = e.RoomDB.Addr()
	cfg.NetLogAddr = e.NetLog.Addr()
	return cfg
}

// Authorizer builds a Fig 10 KeyNote gate for a service: the
// environment policy plus credentials fetched from the authorization
// database. Attach it to a daemon.Config before starting the daemon.
func (e *Environment) Authorizer(serviceName string, cacheSize int) (*authdb.Authorizer, error) {
	checker, err := keynote.NewChecker(e.Keyring, e.Policy)
	if err != nil {
		return nil, err
	}
	t, _ := e.transport(serviceName + "_authz")
	return &authdb.Authorizer{
		Pool:       daemon.NewPool(t),
		AuthDBAddr: e.AuthDB.Addr(),
		Checker:    checker,
		Service:    serviceName,
		CacheSize:  cacheSize,
	}, nil
}

// GrantCredential signs (with the environment admin key) and stores a
// credential licensing the principal under the given conditions.
func (e *Environment) GrantCredential(principal, conditions, comment string) error {
	cred, err := keynote.NewAssertion("admin", fmt.Sprintf("%q", principal), conditions, comment)
	if err != nil {
		return err
	}
	if err := cred.Sign(e.Admin); err != nil {
		return err
	}
	_, err = e.pool.Call(e.AuthDB.Addr(), cmdAddCredential(cred.Encode()))
	return err
}

// Pool returns the environment's shared client pool.
func (e *Environment) Pool() *daemon.Pool { return e.pool }

// Stop tears the environment down in reverse start order.
func (e *Environment) Stop() {
	for i := len(e.stoppers) - 1; i >= 0; i-- {
		e.stoppers[i]()
	}
	e.stoppers = nil
}
