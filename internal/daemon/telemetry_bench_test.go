package daemon

// Telemetry overhead benchmarks. The instrumented hot paths (dispatch
// histogram, wire frame counters, span recording) must stay within a
// few percent of the no-op configuration (DisableTelemetry), because
// telemetry is on by default for every daemon.
//
// `make bench-telemetry` runs TestBenchTelemetryOverhead with
// ACE_BENCH_TELEMETRY=1, which measures both configurations with
// testing.Benchmark and writes the comparison to BENCH_telemetry.json
// at the repo root. The plain test suite skips it so tier-1 runs stay
// fast and deterministic.

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"ace/internal/cmdlang"
	"ace/internal/telemetry"
)

// benchDaemon starts a daemon for dispatch benchmarking.
func benchDaemon(b testing.TB, disabled bool) *Daemon {
	d := New(Config{Name: "bench", DisableTelemetry: disabled})
	if err := d.Start(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(d.Stop)
	return d
}

// runDispatch is the measured loop: a local dispatch of the ping
// builtin — command lookup, handler, reply bookkeeping, and (when
// enabled) the per-verb latency histogram.
func runDispatch(b *testing.B, d *Daemon, ctx *Ctx) {
	cmd := cmdlang.New(CmdPing)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if reply := d.ExecuteLocal(ctx, cmd); !cmdlang.IsOK(reply) {
			b.Fatalf("ping failed: %v", reply)
		}
	}
}

func BenchmarkDispatchTelemetryOn(b *testing.B) {
	d := benchDaemon(b, false)
	runDispatch(b, d, nil)
}

func BenchmarkDispatchTelemetryOff(b *testing.B) {
	d := benchDaemon(b, true)
	runDispatch(b, d, nil)
}

// BenchmarkDispatchTraced adds an active span context, so every
// dispatch also records a span into the trace buffer.
func BenchmarkDispatchTraced(b *testing.B) {
	d := benchDaemon(b, false)
	runDispatch(b, d, &Ctx{D: d, Principal: "bench", RemoteAddr: "local", Trace: telemetry.NewTrace()})
}

// BenchmarkWireCallTelemetryOn/Off measure a full loopback round trip
// through the connection pool, which exercises the wire frame and
// call-latency instruments on top of dispatch.
func benchWireCall(b *testing.B, disabled bool) {
	d := benchDaemon(b, disabled)
	var reg *telemetry.Registry
	if !disabled {
		reg = telemetry.NewRegistry()
	}
	pool := NewPoolConfig(PoolConfig{Telemetry: reg})
	defer pool.Close()
	cmd := cmdlang.New(CmdPing)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pool.Call(d.Addr(), cmd); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireCallTelemetryOn(b *testing.B)  { benchWireCall(b, false) }
func BenchmarkWireCallTelemetryOff(b *testing.B) { benchWireCall(b, true) }

// benchReport is one measured scenario in BENCH_telemetry.json.
type benchReport struct {
	Scenario    string  `json:"scenario"`
	NsPerOpOn   float64 `json:"ns_per_op_telemetry_on"`
	NsPerOpOff  float64 `json:"ns_per_op_telemetry_off"`
	OverheadPct float64 `json:"overhead_pct"`
}

// TestBenchTelemetryOverhead is the gate behind `make bench-telemetry`.
// It is skipped unless ACE_BENCH_TELEMETRY=1 so the regular test
// suite never pays for benchmarking.
func TestBenchTelemetryOverhead(t *testing.T) {
	if os.Getenv("ACE_BENCH_TELEMETRY") == "" {
		t.Skip("set ACE_BENCH_TELEMETRY=1 (or run `make bench-telemetry`) to measure telemetry overhead")
	}

	measure := func(name string, run func(b *testing.B)) float64 {
		// testing.Benchmark's own calibration ramp doubles as warmup;
		// pool dials and lazy instrument creation happen in the short
		// early rounds and are amortized away in the final one.
		r := testing.Benchmark(run)
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		t.Logf("%-28s %10.1f ns/op  (%d iterations)", name, ns, r.N)
		return ns
	}

	var reports []benchReport
	for _, sc := range []struct {
		name    string
		on, off func(b *testing.B)
		budget  float64 // max tolerated overhead, percent
	}{
		{"local-dispatch", BenchmarkDispatchTelemetryOn, BenchmarkDispatchTelemetryOff, 5},
		{"wire-call", BenchmarkWireCallTelemetryOn, BenchmarkWireCallTelemetryOff, 5},
	} {
		on := measure(sc.name+"/on", sc.on)
		off := measure(sc.name+"/off", sc.off)
		pct := (on - off) / off * 100
		reports = append(reports, benchReport{
			Scenario:    sc.name,
			NsPerOpOn:   on,
			NsPerOpOff:  off,
			OverheadPct: pct,
		})
		t.Logf("%-28s overhead %+.2f%% (budget %.0f%%)", sc.name, pct, sc.budget)
		if pct > sc.budget {
			t.Errorf("%s: telemetry overhead %.2f%% exceeds %.0f%% budget (on=%.1fns off=%.1fns)",
				sc.name, pct, sc.budget, on, off)
		}
	}

	out := os.Getenv("ACE_BENCH_TELEMETRY_OUT")
	if out == "" {
		out = "BENCH_telemetry.json"
	}
	payload := map[string]any{
		"benchmark": "telemetry-overhead",
		"date":      time.Now().UTC().Format(time.RFC3339),
		"results":   reports,
	}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
