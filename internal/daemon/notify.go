package daemon

import (
	"sync"

	"ace/internal/cmdlang"
)

// Notifications (§2.5, Fig 8): every daemon keeps a running list of
// commands being "listened" for and the services to notify when such
// commands execute. After the control thread successfully executes a
// command, the listed command-interface methods are invoked on the
// notified services.

// NotifyMethodArgs are the arguments carried by an invoked
// notification method: who notified, which command executed, and the
// full original command string for the notified service to decompose.
const (
	NotifySourceArg = "source"
	NotifyEventArg  = "event"
	NotifyDetailArg = "detail"
)

type notifyTarget struct {
	Service string
	Addr    string
	Method  string
}

// notifySlots bounds the concurrent notification deliveries in
// flight per daemon. When all slots are taken the delivery is dropped
// and counted as a notify error: notifications are best-effort
// one-way messages, and an unbounded fan-out goroutine per listener
// is exactly the overload amplifier the flow subsystem exists to
// prevent.
const notifySlots = 64

type notifyTable struct {
	mu      sync.Mutex
	targets map[string][]notifyTarget // command name → targets
}

func (t *notifyTable) add(cmd string, nt notifyTarget) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.targets == nil {
		t.targets = make(map[string][]notifyTarget)
	}
	for _, existing := range t.targets[cmd] {
		if existing == nt {
			return // idempotent
		}
	}
	t.targets[cmd] = append(t.targets[cmd], nt)
}

func (t *notifyTable) remove(cmd, service, method string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	list := t.targets[cmd]
	kept := list[:0]
	removed := 0
	for _, nt := range list {
		if nt.Service == service && nt.Method == method {
			removed++
			continue
		}
		kept = append(kept, nt)
	}
	if len(kept) == 0 {
		delete(t.targets, cmd)
	} else {
		t.targets[cmd] = kept
	}
	return removed
}

func (t *notifyTable) list(cmd string) []notifyTarget {
	t.mu.Lock()
	defer t.mu.Unlock()
	if cmd != "" {
		return append([]notifyTarget(nil), t.targets[cmd]...)
	}
	var all []notifyTarget
	for _, l := range t.targets {
		all = append(all, l...)
	}
	return all
}

// dispatchNotifications runs on the control thread after a command
// executes successfully (Fig 8 steps 2–3). Delivery itself happens
// off-thread so a slow or dead listener cannot stall command
// execution; invocation is one-way (no seq → no reply expected).
// When the triggering command was traced, each notification frame
// carries that trace's context so the fan-out appears in the
// assembled trace.
func (d *Daemon) dispatchNotifications(ctx *Ctx, cmd *cmdlang.CmdLine) {
	targets := d.notify.list(cmd.Name())
	if len(targets) == 0 {
		return
	}
	tctx := ctx.TraceContext()
	detail := cmd.Clone()
	detail.Del(cmdlang.SeqArg)
	detailStr := detail.String()
	for _, nt := range targets {
		msg := cmdlang.New(nt.Method).
			SetWord(NotifySourceArg, wordOr(d.cfg.Name)).
			SetWord(NotifyEventArg, cmd.Name()).
			SetString(NotifyDetailArg, detailStr)
		target := nt
		// Deliveries are bounded by the notify semaphore rather than the
		// flow controller: notifications are outbound best-effort, so
		// under overload they are dropped (and counted) instead of queued.
		select {
		case d.notifySem <- struct{}{}:
		default:
			d.notifyErrs.Inc()
			continue
		}
		d.nNotify.Add(1)
		d.notifySent.Inc()
		d.wg.Add(1)
		//acelint:ignore boundedspawn fan-out is bounded by notifySem above
		go func() {
			defer func() {
				<-d.notifySem
				d.wg.Done()
			}()
			// Listeners may be gone (ASD lease expiry reaps them);
			// count the failure instead of stalling the fan-out.
			if err := d.pool.SendContext(tctx, target.Addr, msg); err != nil {
				d.notifyErrs.Inc()
			}
		}()
	}
}

// Subscribe is the client-side convenience for §2.5: it asks the
// daemon at addr to invoke method on subscriber (listening at
// subscriberAddr) whenever cmd executes.
func Subscribe(p *Pool, addr, cmd, subscriber, subscriberAddr, method string) error {
	_, err := p.Call(addr, cmdlang.New(CmdAddNotification).
		SetWord("cmd", cmd).
		SetWord("service", subscriber).
		SetString("addr", subscriberAddr).
		SetWord("method", method))
	return err
}
