// Package daemon implements the basic ACE service daemon (§2.1): the
// independent, multithreaded shell that every ACE service is built
// on. A daemon runs four threads of execution joined by message
// queues, exactly as the architecture report describes:
//
//   - the main thread initializes the daemon (room database
//     registration, ASD registration, net-logger announcement — the
//     Fig 9 startup sequence), renews the service lease, and manages
//     the other threads;
//   - a command thread per client connection accepts the socket,
//     reads incoming command frames, and parses them;
//   - the control thread executes commands serially and services
//     notifications (§2.5);
//   - the data thread handles datagram stream operations over a UDP
//     channel.
//
// Services are implemented by declaring command semantics
// (cmdlang.Registry) and registering handlers; everything else —
// encrypted certified socket communications, service registration,
// lease renewal, return commands, notifications — is provided by this
// shell.
package daemon

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ace/internal/cmdlang"
	"ace/internal/flow"
	"ace/internal/hlc"
	"ace/internal/telemetry"
	"ace/internal/wire"
)

// Well-known infrastructure command names used during the startup
// sequence (Fig 9). The ASD, room database, and network logger
// daemons declare handlers under these names.
const (
	CmdRegister        = "register"        // ASD: enter the service directory
	CmdRenew           = "renew"           // ASD: renew the service lease
	CmdUnregister      = "unregister"      // ASD: leave the directory
	CmdLookup          = "lookup"          // ASD: find services
	CmdRegisterService = "registerService" // room DB: record placement
	CmdRemoveService   = "removeService"   // room DB: remove placement
	CmdLogEvent        = "logEvent"        // net logger: record history
)

// DefaultLeaseTTL is the ASD lease duration requested by daemons that
// do not configure their own.
const DefaultLeaseTTL = 10 * time.Second

// Handler executes one service command on the control thread. It
// returns a return command ("ok" with result arguments) or an error,
// which the shell converts to a "fail" return command. Returning
// (nil, nil) is shorthand for a bare "ok".
type Handler func(ctx *Ctx, cmd *cmdlang.CmdLine) (*cmdlang.CmdLine, error)

// Authorizer gates command execution (§3.2). The daemon consults it
// on the control thread before every non-built-in command; a non-nil
// error refuses execution with a "denied" return command.
type Authorizer interface {
	Authorize(principal string, cmd *cmdlang.CmdLine) error
}

// Ctx carries per-invocation context to handlers.
type Ctx struct {
	// D is the executing daemon.
	D *Daemon
	// Principal is the authenticated peer identity (TLS certificate
	// common name), or "anonymous" on plaintext transports.
	Principal string
	// RemoteAddr is the peer's network address.
	RemoteAddr string
	// Trace is the span context the command arrived under (the zero
	// value when the caller sent no trace header). Handlers that call
	// downstream services should pass TraceContext() so the remote
	// spans join the same trace.
	Trace telemetry.SpanContext
	// HLC is the hybrid-logical-clock timestamp the command arrived
	// under (zero when the caller sent none). Pstore nodes use it to
	// stamp writes so every replica applies the same client-assigned
	// timestamp.
	HLC hlc.Timestamp

	// async is armed by the control thread for the duration of one
	// dispatch; Detach consumes it.
	async *asyncInvocation
}

// asyncInvocation carries everything the control thread would have
// done after the handler returned, so Detach can defer it to finish.
type asyncInvocation struct {
	detached bool
	d        *Daemon
	e        *handlerEntry
	msg      ctlMsg
	ctx      *Ctx
	start    time.Time
}

// Detach releases the serial control thread from this invocation: the
// handler returns immediately (its return value is discarded) and the
// reply is delivered later, when the handler's continuation calls
// finish with it — from any goroutine, exactly once. This is for
// handlers whose commit point is genuinely slow (an fsync, a quorum
// round): without detaching, that wait would stall every other
// command on the daemon, and concurrent writes could never batch.
// Admission tickets, dispatch latency, and notifications all account
// to the moment finish is called, so flow control keeps seeing the
// true cost.
//
// ok is false when the invocation cannot detach (ExecuteLocal, or a
// nested dispatch): the handler must then do the work synchronously.
func (c *Ctx) Detach() (finish func(reply *cmdlang.CmdLine), ok bool) {
	a := c.async
	if a == nil {
		return nil, false
	}
	a.detached = true
	return func(reply *cmdlang.CmdLine) {
		if reply == nil {
			reply = cmdlang.OK()
		}
		a.msg.ticket.Done()
		a.d.observe(a.e, a.ctx, a.msg.cmd, reply, a.start)
		if a.msg.respond != nil {
			a.msg.respond(reply)
		}
		if cmdlang.IsOK(reply) {
			a.d.nOK.Add(1)
			a.d.dispatchNotifications(a.ctx, a.msg.cmd)
		} else {
			a.d.nFail.Add(1)
		}
	}, true
}

// TraceContext returns a context carrying the invocation's span
// context, for handlers issuing downstream calls via the pool. With
// no active trace it is a plain background context.
func (c *Ctx) TraceContext() context.Context {
	if c == nil || !c.Trace.Valid() {
		return context.Background()
	}
	return telemetry.WithSpanContext(context.Background(), c.Trace)
}

// Config describes one ACE service daemon.
type Config struct {
	// Name is the unique service instance name (e.g. "ptz_cam_1").
	Name string
	// Class is the position in the service daemon hierarchy (Fig 6),
	// dotted from the root, e.g. "Service.Device.PTZCamera.VCC4".
	Class string
	// Room is the room this service lives in (Fig 9's "hawk").
	Room string
	// Host is the logical host machine name (Fig 9's "bar").
	Host string
	// Transport supplies TLS identity; nil means plaintext (tests and
	// the E12 experiment only).
	Transport *wire.Transport
	// Registry declares the service's command semantics. The shell
	// adds the built-in commands. Nil creates an empty registry.
	Registry *cmdlang.Registry
	// ASDAddr is the well-known socket of the ACE Service Directory;
	// empty disables registration (the ASD itself does this).
	ASDAddr string
	// ASDAddrs lists additional directory replicas (replicated ASD
	// deployments). Registration, lease renewal, and deregistration
	// prefer ASDAddr (or the first replica) and fail over to the next
	// on transport failure, so killing one directory daemon never
	// costs a daemon its lease.
	ASDAddrs []string
	// RoomDBAddr is the room database daemon; empty skips step 2 of
	// the startup sequence.
	RoomDBAddr string
	// NetLogAddr is the network logger; empty skips step 5.
	NetLogAddr string
	// LeaseTTL is the directory lease requested at registration.
	LeaseTTL time.Duration
	// Authorizer gates command execution; nil allows everything.
	Authorizer Authorizer
	// DataHandler receives datagrams from the UDP data thread; nil
	// installs a counting sink.
	DataHandler func(pkt []byte, from net.Addr)
	// ControlQueueLen sizes the command→control message queue.
	ControlQueueLen int
	// Listen is the TCP listen address; empty means "127.0.0.1:0".
	Listen string
	// PoolConfig optionally tunes the daemon's outgoing connection
	// pool (timeouts, retries, circuit breaker). Nil uses defaults.
	// Its Transport, Telemetry and Metrics fields are overwritten so
	// the pool records into the daemon's registry.
	PoolConfig *PoolConfig
	// Telemetry receives the daemon's metrics and spans; nil creates a
	// private registry, so telemetry is on by default.
	Telemetry *telemetry.Registry
	// DisableTelemetry turns all instrumentation into no-ops. It
	// exists for benchmarks measuring instrumentation overhead and for
	// deployments that want the old zero-cost behavior.
	DisableTelemetry bool
	// TraceBufferSpans bounds the in-process span buffer; 0 means
	// telemetry.DefaultTraceBufferSpans.
	TraceBufferSpans int
	// Flow optionally tunes the daemon's admission controller. Nil
	// takes flow.Config defaults, which are generous enough that an
	// unloaded daemon never notices the controller.
	Flow *flow.Config
	// DisableFlow turns admission control off entirely (benchmarks and
	// tests of the unprotected path).
	DisableFlow bool
	// ControlVerbs names additional commands classified as
	// control-plane for admission: they are admitted into reserved
	// headroom and bypass the rate limiter and fair-share accounting.
	// The lease/heartbeat protocol verbs (register, renew, unregister,
	// ping, telemetry, stats) are always control-plane; a pstore node
	// adds its anti-entropy verbs here.
	ControlVerbs []string
}

// Stats are the daemon's execution counters.
type Stats struct {
	Connections   int64
	CommandsOK    int64
	CommandsFail  int64
	Denied        int64
	Notifications int64
	DataPackets   int64
}

// ctlMsg is the unit of work queued from a command thread to the
// control thread.
type ctlMsg struct {
	cmd     *cmdlang.CmdLine
	ctx     *Ctx
	respond func(*cmdlang.CmdLine) // nil for one-way commands
	ticket  *flow.Ticket           // admission slot; released after execution
}

// handlerEntry pairs a command handler with its per-verb dispatch
// latency histogram. The histogram is filled in Start (handlers are
// frozen by then), so the dispatch hot path resolves both with a
// single map lookup.
type handlerEntry struct {
	fn   Handler
	hist *telemetry.Histogram
}

// Daemon is a running ACE service daemon.
type Daemon struct {
	cfg      Config
	registry *cmdlang.Registry
	handlers map[string]*handlerEntry

	listener net.Listener
	udp      *net.UDPConn
	ctlQ     chan ctlMsg
	done     chan struct{}
	wg       sync.WaitGroup
	pool     *Pool

	// flow is the admission controller guarding the accept loop and
	// dispatch path; nil when Config.DisableFlow is set (a nil
	// controller admits everything).
	flow         *flow.Controller
	controlVerbs map[string]bool
	// asdAddrs is the deduplicated directory replica list (ASDAddr
	// first); asdPreferred indexes the replica that last answered, so
	// the lease protocol sticks to a live directory instead of paying
	// the failover walk every renewal.
	asdAddrs     []string
	asdPreferred atomic.Int32
	// notifySem bounds concurrent notification deliveries; see
	// dispatchNotifications.
	notifySem chan struct{}

	notify notifyTable

	mu      sync.Mutex
	started bool
	stopped bool

	connsMu sync.Mutex
	conns   map[net.Conn]struct{}

	nConns  atomic.Int64
	nOK     atomic.Int64
	nFail   atomic.Int64
	nDenied atomic.Int64
	nNotify atomic.Int64
	nData   atomic.Int64

	tel         *telemetry.Registry
	traces      *telemetry.TraceBuffer
	wireMetrics *wire.Metrics
	// dispatchOther times commands without a registered handler;
	// per-verb histograms live on each handlerEntry.
	dispatchOther *telemetry.Histogram
	notifySent    *telemetry.Counter
	notifyErrs    *telemetry.Counter
	deregErrs     *telemetry.Counter
	connsActive   *telemetry.Gauge
}

// Daemon metric names. Per-verb dispatch latency appears as
// MetricDispatchPrefix + verb; commands without a handler fall into
// MetricDispatchOther.
const (
	MetricDispatchPrefix = "daemon.dispatch."
	MetricDispatchOther  = "daemon.dispatch.other"
	MetricNotifySent     = "daemon.notify.sent"
	MetricNotifyErrors   = "daemon.notify.errors"
	MetricDeregErrors    = "daemon.stop.dereg_errors"
	MetricConnsActive    = "daemon.conns.active"
)

// New constructs a daemon from cfg and installs the built-in command
// set. Handlers for the service's own commands are added with Handle
// before Start.
func New(cfg Config) *Daemon {
	if cfg.Name == "" {
		cfg.Name = "ace_service"
	}
	if cfg.Class == "" {
		cfg.Class = "Service"
	}
	if cfg.Host == "" {
		cfg.Host, _ = hostName()
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.ControlQueueLen <= 0 {
		cfg.ControlQueueLen = 256
	}
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	reg := cmdlang.NewRegistry()
	if cfg.Registry != nil {
		reg.Merge(cfg.Registry)
	}
	var tel *telemetry.Registry
	var traces *telemetry.TraceBuffer
	if !cfg.DisableTelemetry {
		tel = cfg.Telemetry
		if tel == nil {
			tel = telemetry.NewRegistry()
		}
		traces = telemetry.NewTraceBuffer(cfg.TraceBufferSpans)
	}
	wm := wire.NewMetrics(tel)
	pc := PoolConfig{Transport: cfg.Transport}
	if cfg.PoolConfig != nil {
		pc = *cfg.PoolConfig
		pc.Transport = cfg.Transport
	}
	// Server-side and pool-side wire traffic share one instrument
	// group, so the wire.* metrics describe the daemon's whole
	// footprint.
	pc.Telemetry = tel
	pc.Metrics = wm
	d := &Daemon{
		cfg:           cfg,
		registry:      reg,
		handlers:      make(map[string]*handlerEntry),
		ctlQ:          make(chan ctlMsg, cfg.ControlQueueLen),
		notifySem:     make(chan struct{}, notifySlots),
		done:          make(chan struct{}),
		conns:         make(map[net.Conn]struct{}),
		pool:          NewPoolConfig(pc),
		tel:           tel,
		traces:        traces,
		wireMetrics:   wm,
		dispatchOther: tel.Histogram(MetricDispatchOther),
		notifySent:    tel.Counter(MetricNotifySent),
		notifyErrs:    tel.Counter(MetricNotifyErrors),
		deregErrs:     tel.Counter(MetricDeregErrors),
		connsActive:   tel.Gauge(MetricConnsActive),
	}
	if !cfg.DisableFlow {
		fc := flow.Config{}
		if cfg.Flow != nil {
			fc = *cfg.Flow
		}
		d.flow = flow.NewController(fc, tel)
	}
	// The lease/heartbeat protocol is always control-plane: these verbs
	// must survive overload or the directory forgets live services.
	d.controlVerbs = map[string]bool{
		CmdRegister:   true,
		CmdRenew:      true,
		CmdUnregister: true,
		CmdPing:       true,
		CmdStats:      true,
		CmdTelemetry:  true,
	}
	for _, v := range cfg.ControlVerbs {
		d.controlVerbs[v] = true
	}
	seen := map[string]bool{}
	for _, addr := range append([]string{cfg.ASDAddr}, cfg.ASDAddrs...) {
		if addr == "" || seen[addr] {
			continue
		}
		seen[addr] = true
		d.asdAddrs = append(d.asdAddrs, addr)
	}
	d.installBuiltins()
	return d
}

// Flow returns the daemon's admission controller (nil when disabled).
func (d *Daemon) Flow() *flow.Controller { return d.flow }

// Telemetry returns the daemon's metrics registry (nil when telemetry
// is disabled).
func (d *Daemon) Telemetry() *telemetry.Registry { return d.tel }

// Traces returns the daemon's span buffer (nil when telemetry is
// disabled).
func (d *Daemon) Traces() *telemetry.TraceBuffer { return d.traces }

func hostName() (string, error) { return "localhost", nil }

// Handle registers a handler and (optionally) its command spec. It
// must be called before Start.
func (d *Daemon) Handle(spec cmdlang.CommandSpec, h Handler) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.started {
		panic("daemon: Handle after Start")
	}
	d.registry.Declare(spec)
	d.handlers[spec.Name] = &handlerEntry{fn: h}
}

// bind installs a built-in handler without re-declaring its spec.
func (d *Daemon) bind(name string, h Handler) {
	d.handlers[name] = &handlerEntry{fn: h}
}

// Name returns the service instance name.
func (d *Daemon) Name() string { return d.cfg.Name }

// Class returns the hierarchy class.
func (d *Daemon) Class() string { return d.cfg.Class }

// Room returns the configured room.
func (d *Daemon) Room() string { return d.cfg.Room }

// Registry exposes the daemon's command semantics (read-only after
// Start).
func (d *Daemon) Registry() *cmdlang.Registry { return d.registry }

// Pool returns the daemon's outgoing client pool, for handlers that
// need to call other services.
func (d *Daemon) Pool() *Pool { return d.pool }

// Addr returns the command socket address ("host:port"); valid after
// Start.
func (d *Daemon) Addr() string {
	if d.listener == nil {
		return ""
	}
	return d.listener.Addr().String()
}

// Port returns the TCP command port; valid after Start.
func (d *Daemon) Port() int {
	if d.listener == nil {
		return 0
	}
	return d.listener.Addr().(*net.TCPAddr).Port
}

// DataAddr returns the UDP data channel address; valid after Start.
func (d *Daemon) DataAddr() string {
	if d.udp == nil {
		return ""
	}
	return d.udp.LocalAddr().String()
}

// Stats snapshots the execution counters.
func (d *Daemon) Stats() Stats {
	return Stats{
		Connections:   d.nConns.Load(),
		CommandsOK:    d.nOK.Load(),
		CommandsFail:  d.nFail.Load(),
		Denied:        d.nDenied.Load(),
		Notifications: d.nNotify.Load(),
		DataPackets:   d.nData.Load(),
	}
}

// Start brings the daemon online: it opens the command and data
// sockets, starts the control and data threads, runs the Fig 9
// startup sequence, and begins lease renewal. Start returns once the
// daemon is registered and serving.
func (d *Daemon) Start() error {
	d.mu.Lock()
	if d.started {
		d.mu.Unlock()
		return errors.New("daemon: already started")
	}
	d.started = true
	d.mu.Unlock()

	// The handlers map is frozen now (Handle panics after Start), so
	// the per-verb dispatch histograms can be materialized once and
	// read lock-free by the control thread.
	if d.tel != nil {
		for name, e := range d.handlers {
			e.hist = d.tel.Histogram(MetricDispatchPrefix + name)
		}
	}

	ln, err := net.Listen("tcp", d.cfg.Listen)
	if err != nil {
		return fmt.Errorf("daemon %s: listen: %w", d.cfg.Name, err)
	}
	d.listener = ln

	udpAddr := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0}
	udp, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		ln.Close()
		return fmt.Errorf("daemon %s: udp listen: %w", d.cfg.Name, err)
	}
	// Media streams arrive in bursts; a roomy socket buffer keeps the
	// data thread from dropping frames while it dispatches.
	udp.SetReadBuffer(4 << 20)  //nolint:errcheck — best effort
	udp.SetWriteBuffer(4 << 20) //nolint:errcheck
	d.udp = udp

	// Control thread.
	d.wg.Add(1)
	go d.controlThread()
	// Data thread.
	d.wg.Add(1)
	go d.dataThread()
	// Accept loop feeding per-connection command threads.
	d.wg.Add(1)
	go d.acceptLoop()

	if err := d.startupSequence(); err != nil {
		d.Stop()
		return err
	}

	// Main thread duties continue in the background: lease renewal.
	if len(d.asdAddrs) > 0 {
		d.wg.Add(1)
		go d.leaseLoop()
	}
	return nil
}

// startupSequence performs Fig 9 steps 2–5: room database placement,
// ASD registration (which may trigger notifications inside the ASD),
// and the net-logger start record.
func (d *Daemon) startupSequence() error {
	if d.cfg.RoomDBAddr != "" {
		cmd := cmdlang.New(CmdRegisterService).
			SetWord("room", wordOr(d.cfg.Room)).
			SetWord("service", wordOr(d.cfg.Name)).
			SetWord("host", wordOr(d.cfg.Host)).
			SetInt("port", int64(d.Port())).
			SetString("class", d.cfg.Class)
		if _, err := d.pool.Call(d.cfg.RoomDBAddr, cmd); err != nil {
			return fmt.Errorf("daemon %s: room database: %w", d.cfg.Name, err)
		}
	}
	if len(d.asdAddrs) > 0 {
		if err := d.registerASD(); err != nil {
			return err
		}
	}
	if d.cfg.NetLogAddr != "" {
		cmd := cmdlang.New(CmdLogEvent).
			SetWord("source", wordOr(d.cfg.Name)).
			SetWord("event", "started").
			SetWord("host", wordOr(d.cfg.Host)).
			SetString("detail", "service "+d.cfg.Name+" started on host "+d.cfg.Host)
		if d.cfg.Room != "" {
			cmd.SetWord("room", wordOr(d.cfg.Room))
		}
		if _, err := d.pool.Call(d.cfg.NetLogAddr, cmd); err != nil {
			return fmt.Errorf("daemon %s: net logger: %w", d.cfg.Name, err)
		}
	}
	return nil
}

// asdCall issues one lease-protocol command against the directory,
// starting at the replica that last answered and failing over to the
// next on transport failure. A remote error means the directory
// answered — it is returned immediately, since every replica serves
// the same replicated state and would say the same.
func (d *Daemon) asdCall(cmd *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
	n := len(d.asdAddrs)
	start := int(d.asdPreferred.Load()) % n
	var lastErr error
	for i := 0; i < n; i++ {
		idx := (start + i) % n
		reply, err := d.pool.Call(d.asdAddrs[idx], cmd)
		if err == nil {
			d.asdPreferred.Store(int32(idx))
			return reply, nil
		}
		lastErr = err
		var re *cmdlang.RemoteError
		if errors.As(err, &re) {
			d.asdPreferred.Store(int32(idx))
			return nil, err
		}
	}
	return nil, lastErr
}

func (d *Daemon) registerASD() error {
	cmd := cmdlang.New(CmdRegister).
		SetWord("name", wordOr(d.cfg.Name)).
		SetWord("host", wordOr(d.cfg.Host)).
		SetInt("port", int64(d.Port())).
		SetString("addr", d.Addr()).
		SetString("class", d.cfg.Class).
		SetInt("lease", int64(d.cfg.LeaseTTL/time.Millisecond))
	if d.cfg.Room != "" {
		cmd.SetWord("room", wordOr(d.cfg.Room))
	}
	_, err := d.asdCall(cmd)
	if err != nil {
		return fmt.Errorf("daemon %s: ASD register: %w", d.cfg.Name, err)
	}
	return nil
}

// leaseLoop periodically renews the ASD lease; if a renewal finds the
// registration gone (e.g. the ASD restarted), it re-registers.
func (d *Daemon) leaseLoop() {
	defer d.wg.Done()
	interval := d.cfg.LeaseTTL / 3
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-d.done:
			return
		case <-t.C:
			cmd := cmdlang.New(CmdRenew).
				SetWord("name", d.cfg.Name).
				SetInt("lease", int64(d.cfg.LeaseTTL/time.Millisecond))
			if _, err := d.asdCall(cmd); err != nil {
				// A renewal racing Stop's unregister gets not_found
				// from our own graceful exit; re-registering then
				// would resurrect the entry we just removed.
				d.mu.Lock()
				stopping := d.stopped
				d.mu.Unlock()
				if cmdlang.IsRemoteCode(err, cmdlang.CodeNotFound) && !stopping {
					d.registerASD() //nolint:errcheck — retried next tick
				}
			}
		}
	}
}

// Stop shuts the daemon down: it unregisters from the ASD and room
// database, records the stop event, closes sockets, and joins all
// threads.
func (d *Daemon) Stop() {
	d.mu.Lock()
	if !d.started || d.stopped {
		d.mu.Unlock()
		return
	}
	d.stopped = true
	d.mu.Unlock()

	// Graceful deregistration (best effort; infrastructure daemons
	// may already be gone). Failures never block shutdown, but they
	// are counted so an operator can see when services exit without
	// cleanly leaving the directory.
	if len(d.asdAddrs) > 0 {
		if _, err := d.asdCall(cmdlang.New(CmdUnregister).SetWord("name", wordOr(d.cfg.Name))); err != nil {
			d.deregErrs.Inc()
		}
	}
	if d.cfg.RoomDBAddr != "" {
		if _, err := d.pool.Call(d.cfg.RoomDBAddr, cmdlang.New(CmdRemoveService).
			SetWord("room", wordOr(d.cfg.Room)).SetWord("service", wordOr(d.cfg.Name))); err != nil {
			d.deregErrs.Inc()
		}
	}
	if d.cfg.NetLogAddr != "" {
		stopCmd := cmdlang.New(CmdLogEvent).
			SetWord("source", wordOr(d.cfg.Name)).SetWord("event", "stopped").
			SetWord("host", wordOr(d.cfg.Host)).
			SetString("detail", "service "+d.cfg.Name+" stopped")
		if d.cfg.Room != "" {
			stopCmd.SetWord("room", wordOr(d.cfg.Room))
		}
		if _, err := d.pool.Call(d.cfg.NetLogAddr, stopCmd); err != nil {
			d.deregErrs.Inc()
		}
	}

	close(d.done)
	// Closing the flow controller wakes every queued waiter with
	// ErrClosed, so no command thread blocks shutdown inside Admit.
	d.flow.Close()
	d.listener.Close()
	d.udp.Close()
	d.connsMu.Lock()
	for c := range d.conns {
		c.Close()
	}
	d.connsMu.Unlock()
	d.pool.Close()
	d.wg.Wait()
}

// acceptLoop is run by the main thread's accept goroutine; each
// admitted connection gets its own command thread. Connections beyond
// the flow controller's cap are closed immediately — a bounded number
// of command threads is the first line of overload defense.
func (d *Daemon) acceptLoop() {
	defer d.wg.Done()
	tlsCfg := d.cfg.Transport.ServerConfig()
	for {
		raw, err := d.listener.Accept()
		if err != nil {
			return
		}
		if !d.flow.AdmitConn() {
			raw.Close()
			continue
		}
		d.nConns.Add(1)
		var conn net.Conn = raw
		if tlsCfg != nil {
			conn = tls.Server(raw, tlsCfg)
		}
		d.connsMu.Lock()
		d.conns[conn] = struct{}{}
		d.connsMu.Unlock()
		d.wg.Add(1)
		go d.commandThread(conn)
	}
}

// commandThread reads and parses commands from one client connection
// and posts them to the control queue (Fig 5's receiving side).
func (d *Daemon) commandThread(conn net.Conn) {
	defer d.wg.Done()
	defer func() {
		conn.Close()
		d.connsMu.Lock()
		delete(d.conns, conn)
		d.connsMu.Unlock()
		d.flow.ReleaseConn()
	}()

	principal := "anonymous"
	if tc, ok := conn.(*tls.Conn); ok {
		if err := tc.Handshake(); err != nil {
			return
		}
		state := tc.ConnectionState()
		if len(state.PeerCertificates) > 0 {
			principal = state.PeerCertificates[0].Subject.CommonName
		}
	}
	ctx := &Ctx{D: d, Principal: principal, RemoteAddr: conn.RemoteAddr().String()}
	d.connsActive.Add(1)
	defer d.connsActive.Add(-1)

	var writeMu sync.Mutex
	respond := func(reply *cmdlang.CmdLine) {
		payload := []byte(reply.String())
		writeMu.Lock()
		defer writeMu.Unlock()
		if err := wire.WriteFrame(conn, payload); err == nil {
			d.wireMetrics.FrameSent(len(payload))
		} // peer may be gone; drop the reply
	}

	for {
		payload, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		d.wireMetrics.FrameRecv(len(payload))
		sc, hts, text := wire.SplitPayload(payload)
		cmd, perr := cmdlang.Parse(string(text))
		if perr != nil {
			// Syntactically broken input is answered directly by the
			// command thread; it never reaches control.
			respond(cmdlang.FailErr(perr))
			continue
		}
		// Per-message Ctx copy, unconditionally: the trace context and
		// HLC stamp differ call to call on one connection, and the
		// control thread stashes the in-flight invocation on the Ctx
		// (Detach) — a message sharing the connection Ctx would race
		// that write against this thread's copy of the next message.
		c := *ctx
		c.Trace = sc
		c.HLC = hts
		mctx := &c
		msg := ctlMsg{cmd: cmd, ctx: mctx}
		if cmd.Has(cmdlang.SeqArg) {
			seq := cmd.Int(cmdlang.SeqArg, 0)
			msg.respond = func(reply *cmdlang.CmdLine) {
				reply.SetInt(cmdlang.SeqArg, seq)
				respond(reply)
			}
		}
		// Admission control happens here, on the command thread, before
		// the message reaches the serial control thread: shedding must
		// not consume control-thread time, and a shed request is
		// answered with a retryable busy reply instead of hanging.
		pri := flow.Data
		if d.controlVerbs[cmd.Name()] {
			pri = flow.Control
		}
		ticket, err := d.flow.Admit(context.Background(), pri, mctx.Principal)
		if err != nil {
			if errors.Is(err, flow.ErrClosed) {
				return // daemon is stopping
			}
			if msg.respond != nil {
				var retry time.Duration
				if re, ok := flow.IsRejected(err); ok {
					retry = re.RetryAfter
				}
				msg.respond(cmdlang.Busy(retry))
			}
			continue
		}
		msg.ticket = ticket
		select {
		case d.ctlQ <- msg:
		case <-d.done:
			ticket.Done()
			return
		}
	}
}

// controlThread executes commands serially and services
// notifications, as §2.1.1 specifies.
func (d *Daemon) controlThread() {
	defer d.wg.Done()
	for {
		select {
		case <-d.done:
			return
		case msg := <-d.ctlQ:
			d.execute(msg)
		}
	}
}

func (d *Daemon) execute(msg ctlMsg) {
	start := time.Now()
	e := d.handlers[msg.cmd.Name()]
	// Arm Detach for this dispatch. Every message carries its own Ctx
	// copy (commandThread), so stashing the invocation on it is
	// race-free; it is cleared before the next dispatch.
	a := &asyncInvocation{d: d, e: e, msg: msg, ctx: msg.ctx, start: start}
	msg.ctx.async = a
	reply := d.dispatch(e, msg.ctx, msg.cmd)
	msg.ctx.async = nil
	if a.detached {
		// The handler owns the rest of the invocation: its finish
		// callback will release the ticket and deliver the reply.
		return
	}
	// The ticket's admit-to-Done latency (control-queue wait plus
	// execution) is the congestion signal driving the adaptive limit.
	msg.ticket.Done()
	d.observe(e, msg.ctx, msg.cmd, reply, start)
	if msg.respond != nil {
		msg.respond(reply)
	}
	if cmdlang.IsOK(reply) {
		d.nOK.Add(1)
		d.dispatchNotifications(msg.ctx, msg.cmd)
	} else {
		d.nFail.Add(1)
	}
}

// observe records the dispatch latency and, for traced invocations,
// a span in the daemon's trace buffer.
func (d *Daemon) observe(e *handlerEntry, ctx *Ctx, cmd *cmdlang.CmdLine, reply *cmdlang.CmdLine, start time.Time) {
	dur := time.Since(start)
	if e != nil {
		e.hist.Observe(dur)
	} else {
		d.dispatchOther.Observe(dur)
	}
	if tc := ctx.Trace; tc.Valid() {
		d.traces.Record(telemetry.Span{
			TraceID:  tc.TraceID,
			SpanID:   tc.SpanID,
			Parent:   tc.Parent,
			Name:     cmd.Name(),
			Service:  d.cfg.Name,
			Start:    start,
			Duration: dur,
			OK:       cmdlang.IsOK(reply),
		})
	}
}

func (d *Daemon) dispatch(e *handlerEntry, ctx *Ctx, cmd *cmdlang.CmdLine) *cmdlang.CmdLine {
	name := cmd.Name()
	if e == nil {
		return cmdlang.Fail(cmdlang.CodeUnknownCommand, "unknown command "+strconv.Quote(name))
	}
	// Semantic validation against the declared registry. The seq
	// argument is protocol-level, so strip it for validation.
	vc := cmd
	if cmd.Has(cmdlang.SeqArg) {
		vc = cmd.Clone()
		vc.Del(cmdlang.SeqArg)
	}
	if err := d.registry.Validate(vc); err != nil {
		return cmdlang.FailErr(err)
	}
	// Authorization gate (§3.2). Built-in protocol commands are
	// always permitted; everything else consults the authorizer.
	if d.cfg.Authorizer != nil && !builtinCommands[name] {
		if err := d.cfg.Authorizer.Authorize(ctx.Principal, vc); err != nil {
			d.nDenied.Add(1)
			return cmdlang.Fail(cmdlang.CodeDenied, err.Error())
		}
	}
	res, err := e.fn(ctx, vc)
	if err != nil {
		return cmdlang.FailErr(err)
	}
	if res == nil {
		res = cmdlang.OK()
	}
	return res
}

// ExecuteLocal runs a command through the daemon's own dispatch path
// — validation, authorization, handler, notifications — on the
// calling goroutine. It exists for handlers that need to execute
// another of their daemon's commands (e.g. a device scan that
// internally executes "identify" so its notification listeners fire):
// calling the daemon over its own socket from the control thread
// would deadlock, since the control thread is single.
func (d *Daemon) ExecuteLocal(ctx *Ctx, cmd *cmdlang.CmdLine) *cmdlang.CmdLine {
	if ctx == nil {
		ctx = &Ctx{D: d, Principal: d.cfg.Name, RemoteAddr: "local"}
	}
	start := time.Now()
	e := d.handlers[cmd.Name()]
	reply := d.dispatch(e, ctx, cmd)
	d.observe(e, ctx, cmd, reply, start)
	if cmdlang.IsOK(reply) {
		d.nOK.Add(1)
		d.dispatchNotifications(ctx, cmd)
	} else {
		d.nFail.Add(1)
	}
	return reply
}

// dataThread receives datagrams on the UDP channel and hands them to
// the configured data handler.
func (d *Daemon) dataThread() {
	defer d.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, from, err := d.udp.ReadFromUDP(buf)
		if err != nil {
			return
		}
		d.nData.Add(1)
		if d.cfg.DataHandler != nil {
			pkt := make([]byte, n)
			copy(pkt, buf[:n])
			d.cfg.DataHandler(pkt, from)
		}
	}
}

// SendData transmits a datagram to another daemon's data channel.
func (d *Daemon) SendData(addr string, pkt []byte) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	_, err = d.udp.WriteToUDP(pkt, ua)
	return err
}
