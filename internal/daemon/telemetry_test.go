package daemon

import (
	"context"
	"sync"
	"testing"
	"time"

	"ace/internal/cmdlang"
	"ace/internal/telemetry"
	"ace/internal/wire"
)

// transitionLog collects breaker transitions delivered through the
// pool's OnBreakerChange hook.
type transitionLog struct {
	mu   sync.Mutex
	seen []string
}

func (l *transitionLog) record(addr, from, to string) {
	l.mu.Lock()
	l.seen = append(l.seen, from+">"+to)
	l.mu.Unlock()
}

func (l *transitionLog) snapshot() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.seen...)
}

// TestBreakerOnStateChangeHalfOpenToClosed: the closing transition of
// a successful half-open probe fires the hook exactly once, and
// further successes do not re-fire it.
func TestBreakerOnStateChangeHalfOpenToClosed(t *testing.T) {
	var log transitionLog
	p := tightPool(PoolConfig{
		MaxRetries:       -1,
		BreakerThreshold: 2,
		BreakerCooldown:  30 * time.Millisecond,
		OnBreakerChange:  log.record,
		Telemetry:        telemetry.NewRegistry(),
	})
	defer p.Close()
	addr := deadAddr(t)

	for i := 0; i < 2; i++ {
		p.Call(addr, cmdlang.New(CmdPing)) //nolint:errcheck
	}

	// Resurrect the peer on the same address.
	d := New(Config{Name: "lazarus", Listen: addr})
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := d.Start(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("could not rebind address")
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Cleanup(d.Stop)

	deadline = time.Now().Add(5 * time.Second)
	for {
		if _, err := p.Call(addr, cmdlang.New(CmdPing)); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never recovered")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// More successes after recovery: already closed, must not re-fire.
	for i := 0; i < 3; i++ {
		if _, err := p.Call(addr, cmdlang.New(CmdPing)); err != nil {
			t.Fatal(err)
		}
	}

	var closings int
	for _, tr := range log.snapshot() {
		if tr == "half-open>closed" {
			closings++
		}
	}
	if closings != 1 {
		t.Fatalf("half-open>closed fired %d times, want exactly 1: %v", closings, log.snapshot())
	}
	if got := p.Telemetry().Counter(MetricBreakerTransitions).Value(); got < 3 {
		// closed>open, open>half-open, half-open>closed at minimum.
		t.Fatalf("breaker transition counter = %d, want >= 3", got)
	}
}

// TestBreakerOnStateChangeHalfOpenToOpen: a failed half-open probe
// fires the reopening transition exactly once.
func TestBreakerOnStateChangeHalfOpenToOpen(t *testing.T) {
	var log transitionLog
	p := tightPool(PoolConfig{
		MaxRetries:       -1,
		BreakerThreshold: 1,
		BreakerCooldown:  30 * time.Millisecond,
		OnBreakerChange:  log.record,
	})
	defer p.Close()
	addr := deadAddr(t)

	p.Call(addr, cmdlang.New(CmdPing)) //nolint:errcheck
	time.Sleep(50 * time.Millisecond)
	if _, err := p.Call(addr, cmdlang.New(CmdPing)); err == nil {
		t.Fatal("probe against dead peer succeeded")
	}

	var reopens int
	for _, tr := range log.snapshot() {
		if tr == "half-open>open" {
			reopens++
		}
	}
	if reopens != 1 {
		t.Fatalf("half-open>open fired %d times, want exactly 1: %v", reopens, log.snapshot())
	}
}

// TestTelemetryCommandMetrics: the built-in telemetry command exposes
// the daemon's registry over the wire, including per-verb dispatch
// histograms and the server-side wire counters.
func TestTelemetryCommandMetrics(t *testing.T) {
	d := startTestDaemon(t, Config{Name: "metered"}, nil)
	c := dialTest(t, d)

	for i := 0; i < 4; i++ {
		if _, err := c.Call(cmdlang.New(CmdPing)); err != nil {
			t.Fatal(err)
		}
	}

	reply, err := c.Call(cmdlang.New(CmdTelemetry).SetWord("op", "metrics"))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := telemetry.DecodeSnapshot(reply)
	if err != nil {
		t.Fatal(err)
	}
	h, ok := snap.Histogram(MetricDispatchPrefix + CmdPing)
	if !ok || h.Count < 4 {
		t.Fatalf("dispatch histogram for ping = %+v ok=%v, want >= 4 observations", h, ok)
	}
	// At snapshot time the telemetry command itself has been received
	// but its reply not yet sent: 5 frames in, 4 ping replies out.
	if snap.Counter(wire.MetricFramesRecv) < 5 {
		t.Fatalf("server frames recv = %d, want >= 5", snap.Counter(wire.MetricFramesRecv))
	}
	if snap.Counter(wire.MetricFramesSent) < 4 {
		t.Fatalf("server frames sent = %d, want >= 4", snap.Counter(wire.MetricFramesSent))
	}
	if snap.Gauge(MetricConnsActive) < 1 {
		t.Fatalf("active connections gauge = %d, want >= 1", snap.Gauge(MetricConnsActive))
	}
}

// TestTraceSpanRecordedAndServed: a traced call leaves a span in the
// daemon's buffer, retrievable through `telemetry op=trace`, with the
// IDs the wire header carried.
func TestTraceSpanRecordedAndServed(t *testing.T) {
	d := startTestDaemon(t, Config{Name: "traced"}, nil)
	c := dialTest(t, d)

	root := telemetry.NewTrace()
	ctx := telemetry.WithSpanContext(context.Background(), root)
	if _, err := c.CallContext(ctx, cmdlang.New(CmdPing)); err != nil {
		t.Fatal(err)
	}

	reply, err := c.Call(cmdlang.New(CmdTelemetry).
		SetWord("op", "trace").
		SetString("id", telemetry.FormatID(root.TraceID)))
	if err != nil {
		t.Fatal(err)
	}
	spans, err := telemetry.DecodeSpans(reply)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1: %+v", len(spans), spans)
	}
	s := spans[0]
	if s.TraceID != root.TraceID {
		t.Fatalf("span trace id %x, want %x", s.TraceID, root.TraceID)
	}
	if s.Parent != root.SpanID {
		t.Fatalf("span parent %x, want origin span %x", s.Parent, root.SpanID)
	}
	if s.Name != CmdPing || s.Service != "traced" || !s.OK {
		t.Fatalf("span = %+v", s)
	}

	// The untraced metrics query above must not have added spans.
	if got := d.Traces().Len(); got != 1 {
		t.Fatalf("trace buffer holds %d spans, want 1", got)
	}
}

// TestTelemetryDisabled: DisableTelemetry turns the instruments into
// no-ops and the telemetry command reports unavailable.
func TestTelemetryDisabled(t *testing.T) {
	d := startTestDaemon(t, Config{Name: "dark", DisableTelemetry: true}, nil)
	c := dialTest(t, d)

	if _, err := c.Call(cmdlang.New(CmdPing)); err != nil {
		t.Fatal(err)
	}
	if d.Telemetry() != nil || d.Traces() != nil {
		t.Fatal("disabled daemon still exposes telemetry")
	}
	_, err := c.Call(cmdlang.New(CmdTelemetry).SetWord("op", "metrics"))
	if !cmdlang.IsRemoteCode(err, cmdlang.CodeUnavailable) {
		t.Fatalf("want unavailable, got %v", err)
	}
}
