package daemon

import (
	"net"
	"sync"
	"testing"
	"time"

	"ace/internal/cmdlang"
	"ace/internal/wire"
)

// asdStub is a minimal directory: it accepts register/unregister and
// fails renew for unknown names, which is all the lease loop needs.
type asdStub struct {
	*Daemon
	mu         sync.Mutex
	registered map[string]int
}

func (s *asdStub) count(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.registered[name]
}

func newASDStub(t *testing.T, listen string) *asdStub {
	t.Helper()
	s := &asdStub{registered: map[string]int{}}
	d := New(Config{Name: "asdstub", Listen: listen})
	d.Handle(cmdlang.CommandSpec{Name: CmdRegister, AllowExtra: true},
		func(_ *Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			s.mu.Lock()
			s.registered[c.Str("name", "")]++
			s.mu.Unlock()
			return cmdlang.OK().SetInt("lease", c.Int("lease", 1000)), nil
		})
	d.Handle(cmdlang.CommandSpec{Name: CmdRenew, AllowExtra: true},
		func(_ *Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			if s.count(c.Str("name", "")) == 0 {
				return cmdlang.Fail(cmdlang.CodeNotFound, "not registered"), nil
			}
			return cmdlang.OK().SetInt("lease", c.Int("lease", 1000)), nil
		})
	d.Handle(cmdlang.CommandSpec{Name: CmdUnregister, AllowExtra: true},
		func(_ *Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			s.mu.Lock()
			delete(s.registered, c.Str("name", ""))
			s.mu.Unlock()
			return nil, nil
		})
	s.Daemon = d
	return s
}

// TestReRegistersAfterDirectoryRestart: a daemon whose directory
// forgot it (ASD crash/restart) re-registers on the next lease tick.
func TestReRegistersAfterDirectoryRestart(t *testing.T) {
	stub := newASDStub(t, "127.0.0.1:0")
	if err := stub.Start(); err != nil {
		t.Fatal(err)
	}
	addr := stub.Addr()

	d := New(Config{Name: "phoenix", ASDAddr: addr, LeaseTTL: 60 * time.Millisecond})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	if stub.count("phoenix") != 1 {
		t.Fatalf("initial registrations=%d", stub.count("phoenix"))
	}

	// The directory restarts empty at the SAME address.
	stub.Stop()
	stub2 := newASDStub(t, addr)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := stub2.Start(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("could not rebind stub address")
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Cleanup(stub2.Stop)

	// The daemon's renewals now get not_found → it re-registers.
	deadline = time.Now().Add(5 * time.Second)
	for stub2.count("phoenix") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("daemon never re-registered with the restarted directory")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPoolRedialsAfterServerRestart: a pooled connection that dies is
// transparently replaced on the next Call.
func TestPoolRedialsAfterServerRestart(t *testing.T) {
	d := New(Config{Name: "flappy", Listen: "127.0.0.1:0"})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	addr := d.Addr()

	pool := NewPool(nil)
	defer pool.Close()
	if _, err := pool.Call(addr, cmdlang.New(CmdPing)); err != nil {
		t.Fatal(err)
	}

	// Restart the daemon on the same address.
	d.Stop()
	d2 := New(Config{Name: "flappy", Listen: addr})
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := d2.Start(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("could not rebind")
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Cleanup(d2.Stop)

	// The pool's cached connection is dead; Call retries on a fresh
	// one.
	if _, err := pool.Call(addr, cmdlang.New(CmdPing)); err != nil {
		t.Fatalf("pool did not recover: %v", err)
	}
}

// TestOversizedFrameDropsConnectionGracefully: a client claiming an
// absurd frame size is disconnected without harming the daemon.
func TestOversizedFrameDropsConnectionGracefully(t *testing.T) {
	d := New(Config{Name: "hardened"})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)

	conn, err := net.Dial("tcp", d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Header advertising 4 GiB.
	if _, err := conn.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 'x'}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 16)
	if _, err := conn.Read(buf); err == nil {
		t.Log("daemon answered; acceptable as long as it stays alive")
	}

	// The daemon still serves other clients.
	c, err := wire.Dial(nil, d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(cmdlang.New(CmdPing)); err != nil {
		t.Fatalf("daemon damaged by oversized frame: %v", err)
	}
}

// TestControlQueueBackpressure: a flood of one-way commands neither
// deadlocks nor crashes the daemon.
func TestControlQueueBackpressure(t *testing.T) {
	d := New(Config{Name: "flooded", ControlQueueLen: 4})
	processed := make(chan struct{}, 4096)
	d.Handle(cmdlang.CommandSpec{Name: "flood"},
		func(_ *Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			processed <- struct{}{}
			return nil, nil
		})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)

	conn, err := net.Dial("tcp", d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	const n = 500
	for i := 0; i < n; i++ {
		if err := wire.WriteCmd(conn, cmdlang.New("flood")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	got := 0
	for got < n {
		select {
		case <-processed:
			got++
		default:
			if time.Now().After(deadline) {
				t.Fatalf("processed %d/%d", got, n)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// TestDataThreadSurvivesGarbage: random datagrams never kill the
// data thread.
func TestDataThreadSurvivesGarbage(t *testing.T) {
	got := make(chan []byte, 16)
	d := New(Config{Name: "udpsafe", DataHandler: func(pkt []byte, _ net.Addr) { got <- pkt }})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)

	src := New(Config{Name: "udpsrc"})
	if err := src.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(src.Stop)

	for _, pkt := range [][]byte{{}, {0}, []byte("garbage"), make([]byte, 60000)} {
		if err := src.SendData(d.DataAddr(), pkt); err != nil {
			t.Fatal(err)
		}
	}
	// A normal packet still arrives afterwards.
	if err := src.SendData(d.DataAddr(), []byte("ok")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		select {
		case pkt := <-got:
			if string(pkt) == "ok" {
				return
			}
		default:
			if time.Now().After(deadline) {
				t.Fatal("normal packet never arrived after garbage")
			}
			time.Sleep(time.Millisecond)
		}
	}
}
