package daemon

import (
	"testing"
	"time"

	"ace/internal/telemetry"
)

func newTestCache(posTTL, negTTL time.Duration) (*LookupCache, *time.Time) {
	c := NewLookupCache(posTTL, negTTL, telemetry.NewRegistry())
	now := time.Date(2000, 8, 21, 9, 0, 0, 0, time.UTC)
	c.SetClock(func() time.Time { return now })
	return c, &now
}

func TestLookupCachePositive(t *testing.T) {
	c, _ := newTestCache(0, 0)
	if _, _, ok := c.Get("k"); ok {
		t.Fatal("hit on empty cache")
	}
	c.PutPositive("k", []string{"svc"}, []string{"h:1"}, false)
	addrs, neg, ok := c.Get("k")
	if !ok || neg || len(addrs) != 1 || addrs[0] != "h:1" {
		t.Fatalf("addrs=%v neg=%v ok=%v", addrs, neg, ok)
	}
	if c.hits.Value() != 1 || c.misses.Value() != 1 {
		t.Fatalf("hits=%d misses=%d", c.hits.Value(), c.misses.Value())
	}
}

func TestLookupCacheNegativeTTL(t *testing.T) {
	c, now := newTestCache(0, 500*time.Millisecond)
	c.PutNegative("k")
	if _, neg, ok := c.Get("k"); !ok || !neg {
		t.Fatalf("neg=%v ok=%v", neg, ok)
	}
	// Within the TTL the absence is served from the cache…
	*now = now.Add(400 * time.Millisecond)
	if _, neg, ok := c.Get("k"); !ok || !neg {
		t.Fatal("negative entry gone before TTL")
	}
	// …after it, the entry ages out so a late registration becomes
	// visible even if its notification was lost.
	*now = now.Add(200 * time.Millisecond)
	if _, _, ok := c.Get("k"); ok {
		t.Fatal("negative entry survived its TTL")
	}
	if c.negHits.Value() != 2 {
		t.Fatalf("negHits=%d", c.negHits.Value())
	}
}

func TestLookupCacheInvalidateByName(t *testing.T) {
	c, _ := newTestCache(0, 0)
	c.PutPositive("name:a", []string{"a"}, []string{"a:1"}, false)
	c.PutPositive("name:b", []string{"b"}, []string{"b:1"}, false)
	c.PutPositive("scan:cams", []string{"a", "b"}, []string{"a:1", "b:1"}, true)

	// An event about "a" evicts its name query and the scan whose
	// answer included it; "b" stays warm.
	c.Invalidate(CmdUnregister, "a")
	if _, _, ok := c.Get("name:a"); ok {
		t.Fatal("stale name entry survived")
	}
	if _, _, ok := c.Get("scan:cams"); ok {
		t.Fatal("stale scan entry survived")
	}
	if _, _, ok := c.Get("name:b"); !ok {
		t.Fatal("unrelated entry evicted")
	}
}

func TestLookupCacheRegisterFlushesNegativesAndScans(t *testing.T) {
	c, _ := newTestCache(0, 0)
	c.PutNegative("name:newcomer")
	c.PutPositive("scan:all", []string{"x"}, []string{"x:1"}, true)
	c.PutPositive("name:x", []string{"x"}, []string{"x:1"}, false)

	// A registration can satisfy any previously-empty query and can
	// join any scan's result set; exact-name positives for other
	// services are untouched.
	c.Invalidate(CmdRegister, "newcomer")
	if _, _, ok := c.Get("name:newcomer"); ok {
		t.Fatal("negative entry survived a registration")
	}
	if _, _, ok := c.Get("scan:all"); ok {
		t.Fatal("scan entry survived a registration")
	}
	if _, _, ok := c.Get("name:x"); !ok {
		t.Fatal("unrelated name entry evicted")
	}
}

func TestLookupCacheReplaceReindexes(t *testing.T) {
	c, _ := newTestCache(0, 0)
	c.PutPositive("k", []string{"old"}, []string{"old:1"}, false)
	c.PutPositive("k", []string{"new"}, []string{"new:1"}, false)
	// The stale index entry must not linger: an event about "old"
	// no longer concerns key k…
	c.Invalidate(CmdUnregister, "old")
	if _, _, ok := c.Get("k"); !ok {
		t.Fatal("entry evicted via a stale name index")
	}
	// …but one about "new" does.
	c.Invalidate(CmdUnregister, "new")
	if _, _, ok := c.Get("k"); ok {
		t.Fatal("entry survived its own name event")
	}
}
