package daemon

import (
	"errors"
	"sync"
	"time"
)

// ErrCircuitOpen is returned (wrapped, with the address) when a call
// is refused because the per-address circuit breaker is open: the
// peer has failed consecutively and the cooldown has not yet elapsed.
// Failing fast here is the point — a dead pstore replica or ASD costs
// the caller microseconds instead of a full dial timeout per call.
var ErrCircuitOpen = errors.New("daemon: circuit breaker open")

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-address circuit breaker: closed → open after
// `threshold` consecutive transport failures → half-open after
// `cooldown`, admitting a single probe → closed on probe success,
// back to open on probe failure. Remote errors (the daemon answered)
// never trip it; only transport-level trouble does.
//
// onChange, when set, observes every state transition (telemetry,
// tests). It fires exactly once per transition, after the breaker's
// lock is released, so observers may freely query pool state.
type breaker struct {
	mu        sync.Mutex
	state     breakerState
	failures  int
	openedAt  time.Time
	probing   bool
	threshold int
	cooldown  time.Duration

	onChange func(from, to breakerState)
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// setLocked moves the breaker to `to` and returns the transition to
// report after unlock (from == to means no transition happened).
func (b *breaker) setLocked(to breakerState) (from, unused breakerState) {
	from = b.state
	b.state = to
	return from, to
}

// fire invokes the observer for a real transition.
func (b *breaker) fire(from, to breakerState) {
	if from != to && b.onChange != nil {
		b.onChange(from, to)
	}
}

// allow reports whether a call may proceed right now. In half-open
// state only one probe is admitted at a time.
func (b *breaker) allow() error {
	b.mu.Lock()
	switch b.state {
	case breakerClosed:
		b.mu.Unlock()
		return nil
	case breakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			b.mu.Unlock()
			return ErrCircuitOpen
		}
		from, to := b.setLocked(breakerHalfOpen)
		b.probing = true
		b.mu.Unlock()
		b.fire(from, to)
		return nil
	default: // half-open
		if b.probing {
			b.mu.Unlock()
			return ErrCircuitOpen
		}
		b.probing = true
		b.mu.Unlock()
		return nil
	}
}

// success records a completed exchange and closes the breaker.
func (b *breaker) success() {
	b.mu.Lock()
	from, to := b.setLocked(breakerClosed)
	b.failures = 0
	b.probing = false
	b.mu.Unlock()
	b.fire(from, to)
}

// abandon releases a probe slot without judging the peer: the caller
// cancelled the call before it resolved (e.g. a quorum fast-path
// dropping a straggler), which says nothing about the peer's health.
// Without this, a cancelled half-open probe would leave `probing` set
// and wedge the breaker open for every future caller.
func (b *breaker) abandon() {
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// failure records a transport failure, opening the breaker when the
// consecutive-failure threshold is reached (or immediately when a
// half-open probe fails).
func (b *breaker) failure() {
	b.mu.Lock()
	from, to := b.state, b.state
	switch b.state {
	case breakerHalfOpen:
		from, to = b.setLocked(breakerOpen)
		b.openedAt = time.Now()
		b.probing = false
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			from, to = b.setLocked(breakerOpen)
			b.openedAt = time.Now()
		}
	case breakerOpen:
		// Already open; a straggling in-flight failure keeps it open.
		b.openedAt = time.Now()
	}
	b.mu.Unlock()
	b.fire(from, to)
}

// currentState snapshots the state (for stats and tests).
func (b *breaker) currentState() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
