package daemon

import (
	"errors"
	"sync"
	"time"
)

// ErrCircuitOpen is returned (wrapped, with the address) when a call
// is refused because the per-address circuit breaker is open: the
// peer has failed consecutively and the cooldown has not yet elapsed.
// Failing fast here is the point — a dead pstore replica or ASD costs
// the caller microseconds instead of a full dial timeout per call.
var ErrCircuitOpen = errors.New("daemon: circuit breaker open")

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-address circuit breaker: closed → open after
// `threshold` consecutive transport failures → half-open after
// `cooldown`, admitting a single probe → closed on probe success,
// back to open on probe failure. Remote errors (the daemon answered)
// never trip it; only transport-level trouble does.
type breaker struct {
	mu        sync.Mutex
	state     breakerState
	failures  int
	openedAt  time.Time
	probing   bool
	threshold int
	cooldown  time.Duration
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a call may proceed right now. In half-open
// state only one probe is admitted at a time.
func (b *breaker) allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			return ErrCircuitOpen
		}
		b.state = breakerHalfOpen
		b.probing = true
		return nil
	default: // half-open
		if b.probing {
			return ErrCircuitOpen
		}
		b.probing = true
		return nil
	}
}

// success records a completed exchange and closes the breaker.
func (b *breaker) success() {
	b.mu.Lock()
	b.state = breakerClosed
	b.failures = 0
	b.probing = false
	b.mu.Unlock()
}

// failure records a transport failure, opening the breaker when the
// consecutive-failure threshold is reached (or immediately when a
// half-open probe fails).
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = time.Now()
		b.probing = false
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = breakerOpen
			b.openedAt = time.Now()
		}
	case breakerOpen:
		// Already open; a straggling in-flight failure keeps it open.
		b.openedAt = time.Now()
	}
}

// currentState snapshots the state (for stats and tests).
func (b *breaker) currentState() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
