package daemon

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ace/internal/cmdlang"
	"ace/internal/flow"
	"ace/internal/wire"
)

// tinyFlow pins the admission controller to one data-plane slot and a
// one-deep queue with a short wait, so overload is reachable with a
// single blocked handler.
func tinyFlow() *flow.Config {
	return &flow.Config{
		InitialLimit: 1, MinLimit: 1, MaxLimit: 1,
		QueueLen:     1,
		MaxQueueWait: 10 * time.Millisecond,
	}
}

// TestOverloadShedsWithBusyReply: once the daemon is at its
// concurrency limit with a full queue, further data-plane commands
// are answered with a retryable busy reply carrying a retry_after
// hint — they neither hang nor lose their connection.
func TestOverloadShedsWithBusyReply(t *testing.T) {
	release := make(chan struct{})
	d := startTestDaemon(t, Config{Name: "swamped", Flow: tinyFlow()}, func(d *Daemon) {
		d.Handle(cmdlang.CommandSpec{Name: "slow"}, func(_ *Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			<-release
			return cmdlang.OK(), nil
		})
	})
	defer close(release)

	// Occupy the single slot.
	first := dialTest(t, d)
	firstDone := make(chan error, 1)
	go func() {
		_, err := first.Call(cmdlang.New("slow"))
		firstDone <- err
	}()

	// Wait until the slow command holds its admission ticket.
	waitFor(t, func() bool { return d.Flow().Snapshot().Inflight >= 1 })

	// Each further command queues (depth 1), times out after 10ms, and
	// comes back busy on the same, still-healthy connection.
	c := dialTest(t, d)
	sawBusy := 0
	for i := 0; i < 3; i++ {
		_, err := c.Call(cmdlang.New("slow"))
		if err == nil {
			t.Fatal("command should have been shed")
		}
		if !cmdlang.IsRemoteCode(err, cmdlang.CodeBusy) {
			t.Fatalf("want busy reply, got %v", err)
		}
		var re *cmdlang.RemoteError
		if errors.As(err, &re) && re.RetryAfter > 0 {
			sawBusy++
		}
	}
	if sawBusy == 0 {
		t.Fatal("busy replies carried no retry_after hint")
	}
	if s := d.Flow().Snapshot(); s.ShedData == 0 {
		t.Fatalf("shed counter did not move: %+v", s)
	}

	release <- struct{}{}
	if err := <-firstDone; err != nil {
		t.Fatalf("occupying call should complete once released: %v", err)
	}

	// The shed connection survived its busy replies and is still
	// usable now that the control thread is free again.
	if _, err := c.Call(cmdlang.New(CmdPing)); err != nil {
		t.Fatalf("connection broken after busy replies: %v", err)
	}
}

// TestControlVerbsSurviveOverload: a data-plane storm that sheds most
// of its own traffic must never shed a control verb — heartbeats and
// lease renewals admit into reserved headroom.
func TestControlVerbsSurviveOverload(t *testing.T) {
	d := startTestDaemon(t, Config{Name: "stormy", Flow: tinyFlow()}, func(d *Daemon) {
		d.Handle(cmdlang.CommandSpec{Name: "work"}, func(_ *Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			time.Sleep(2 * time.Millisecond)
			return cmdlang.OK(), nil
		})
	})

	stop := make(chan struct{})
	var storm sync.WaitGroup
	var stormBusy atomic.Int64
	for i := 0; i < 8; i++ {
		storm.Add(1)
		c := dialTest(t, d)
		go func() {
			defer storm.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.Call(cmdlang.New("work")); err != nil {
					if !cmdlang.IsRemoteCode(err, cmdlang.CodeBusy) {
						return // daemon shutting down
					}
					stormBusy.Add(1)
				}
			}
		}()
	}

	// Heartbeats issued during the storm: all must succeed.
	hb := dialTest(t, d)
	for i := 0; i < 50; i++ {
		if _, err := hb.Call(cmdlang.New(CmdPing)); err != nil {
			t.Fatalf("heartbeat %d failed under overload: %v", i, err)
		}
	}
	close(stop)
	storm.Wait()

	s := d.Flow().Snapshot()
	if s.ShedData == 0 {
		t.Fatalf("storm never overloaded the daemon: %+v (busy seen: %d)", s, stormBusy.Load())
	}
	if s.ShedControl != 0 {
		t.Fatalf("control traffic was shed: %+v", s)
	}
}

// TestConnectionCapSheds: connections beyond Flow.MaxConns are closed
// at accept; releasing one re-opens the door.
func TestConnectionCapSheds(t *testing.T) {
	fc := tinyFlow()
	fc.MaxConns = 2
	d := startTestDaemon(t, Config{Name: "full", Flow: fc}, nil)

	c1 := dialTest(t, d)
	c2 := dialTest(t, d)
	for _, c := range []*wire.Client{c1, c2} {
		if _, err := c.Call(cmdlang.New(CmdPing)); err != nil {
			t.Fatalf("admitted connection unusable: %v", err)
		}
	}

	// The third connection is accepted by the kernel but closed by the
	// accept loop before any reply can flow.
	c3, err := wire.Dial(nil, d.Addr())
	if err == nil {
		_, err = c3.Call(cmdlang.New(CmdPing))
		c3.Close()
	}
	if err == nil {
		t.Fatal("third connection should have been shed")
	}
	waitFor(t, func() bool { return d.Flow().Snapshot().ConnsShed >= 1 })

	// Freeing a slot lets a new connection in.
	c1.Close()
	waitFor(t, func() bool { return d.Flow().Snapshot().Conns < 2 })
	c4 := dialTest(t, d)
	if _, err := c4.Call(cmdlang.New(CmdPing)); err != nil {
		t.Fatalf("connection after release should be admitted: %v", err)
	}
}

// TestDisableFlow: DisableFlow removes the controller entirely.
func TestDisableFlow(t *testing.T) {
	d := startTestDaemon(t, Config{Name: "open", DisableFlow: true}, nil)
	if d.Flow() != nil {
		t.Fatal("DisableFlow should leave no controller")
	}
	c := dialTest(t, d)
	if _, err := c.Call(cmdlang.New(CmdPing)); err != nil {
		t.Fatal(err)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never held")
}
