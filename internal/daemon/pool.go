package daemon

import (
	"sync"

	"ace/internal/cmdlang"
	"ace/internal/wire"
)

// Pool caches outgoing client connections by address so that daemons
// calling each other repeatedly (lease renewals, notifications,
// lookups) reuse sockets instead of re-handshaking TLS per command.
type Pool struct {
	transport *wire.Transport

	mu      sync.Mutex
	clients map[string]*wire.Client
	closed  bool
}

// NewPool returns a pool dialing with the given transport (nil =
// plaintext).
func NewPool(t *wire.Transport) *Pool {
	return &Pool{transport: t, clients: make(map[string]*wire.Client)}
}

// Get returns a live client to addr, dialing if necessary.
func (p *Pool) Get(addr string) (*wire.Client, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, wire.ErrClosed
	}
	if c, ok := p.clients[addr]; ok {
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()

	c, err := wire.Dial(p.transport, addr)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		c.Close()
		return nil, wire.ErrClosed
	}
	if existing, ok := p.clients[addr]; ok {
		p.mu.Unlock()
		c.Close()
		return existing, nil
	}
	p.clients[addr] = c
	p.mu.Unlock()
	return c, nil
}

// drop removes a client after a transport failure so the next call
// redials.
func (p *Pool) drop(addr string, c *wire.Client) {
	p.mu.Lock()
	if p.clients[addr] == c {
		delete(p.clients, addr)
	}
	p.mu.Unlock()
	c.Close()
}

// Call issues a request/response command to addr, transparently
// redialing once if the pooled connection has died.
func (p *Pool) Call(addr string, cmd *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
	c, err := p.Get(addr)
	if err != nil {
		return nil, err
	}
	reply, err := c.Call(cmd)
	if err == nil {
		return reply, nil
	}
	if _, isRemote := err.(*cmdlang.RemoteError); isRemote {
		return nil, err // daemon answered; connection is fine
	}
	// Transport-level failure: retry once on a fresh connection.
	p.drop(addr, c)
	c, derr := p.Get(addr)
	if derr != nil {
		return nil, err
	}
	return c.Call(cmd)
}

// Send transmits a one-way command (no reply expected) to addr.
func (p *Pool) Send(addr string, cmd *cmdlang.CmdLine) error {
	c, err := p.Get(addr)
	if err != nil {
		return err
	}
	if err := c.Send(cmd); err != nil {
		p.drop(addr, c)
		c, derr := p.Get(addr)
		if derr != nil {
			return err
		}
		return c.Send(cmd)
	}
	return nil
}

// Close closes every pooled connection.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	clients := p.clients
	p.clients = map[string]*wire.Client{}
	p.mu.Unlock()
	for _, c := range clients {
		c.Close()
	}
}
