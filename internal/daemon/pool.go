package daemon

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"ace/internal/cmdlang"
	"ace/internal/telemetry"
	"ace/internal/wire"
)

// Pool resilience defaults. All are overridable through PoolConfig.
const (
	// DefaultPoolRetries is how many times a Call is retried after a
	// transport failure (so up to 1+DefaultPoolRetries attempts).
	DefaultPoolRetries = 2
	// DefaultBackoffBase is the first retry delay; it doubles per
	// retry up to DefaultBackoffMax, with ±50% jitter.
	DefaultBackoffBase = 10 * time.Millisecond
	// DefaultBackoffMax caps the exponential backoff.
	DefaultBackoffMax = 500 * time.Millisecond
	// DefaultBreakerThreshold is the consecutive transport failures
	// that open an address's circuit breaker.
	DefaultBreakerThreshold = 3
	// DefaultBreakerCooldown is how long an open breaker refuses
	// calls before admitting a half-open probe.
	DefaultBreakerCooldown = 500 * time.Millisecond
)

// PoolConfig tunes a Pool's connection handling and resilience
// behavior. The zero value (plus a Transport) gives the defaults
// above with the wire package's default timeouts.
type PoolConfig struct {
	// Transport supplies TLS identity; nil means plaintext.
	Transport *wire.Transport
	// DialTimeout bounds connection establishment; 0 falls back to
	// the transport's DialTimeout, then wire.DefaultDialTimeout.
	DialTimeout time.Duration
	// CallTimeout is the default per-call deadline applied when a
	// caller's context has none; 0 falls back to the transport's
	// CallTimeout, then wire.DefaultCallTimeout.
	CallTimeout time.Duration
	// MaxRetries is the number of transport-failure retries per Call;
	// negative disables retries entirely. 0 means DefaultPoolRetries.
	MaxRetries int
	// BackoffBase and BackoffMax shape the capped exponential backoff
	// between retries. 0 means the defaults.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BreakerThreshold is the consecutive-failure count that opens an
	// address's breaker; 0 means DefaultBreakerThreshold, negative
	// disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is the open→half-open delay; 0 means
	// DefaultBreakerCooldown.
	BreakerCooldown time.Duration
	// HeartbeatInterval, when positive, starts a liveness probe on
	// every pooled connection so idle connections to dead peers are
	// detected and dropped before the next real call.
	HeartbeatInterval time.Duration
	// Seed seeds the jitter PRNG, making retry schedules reproducible
	// in tests; 0 means a fixed default seed.
	Seed int64
	// Telemetry, when non-nil, receives the pool's counters
	// (pool.retries, pool.breaker.transitions) and — unless Metrics is
	// set explicitly — the wire instruments of every dialed client.
	Telemetry *telemetry.Registry
	// Metrics is the wire instrument group installed on dialed clients;
	// nil derives one from Telemetry (or stays no-op when both are nil).
	Metrics *wire.Metrics
	// OnBreakerChange, when set, observes every circuit breaker state
	// transition. It is called outside breaker locks, once per real
	// transition, with the address and the "closed"/"open"/"half-open"
	// state names.
	OnBreakerChange func(addr, from, to string)
	// LookupPositiveTTL bounds positive entries in the pool's
	// service-discovery cache; 0 keeps them until an invalidation
	// event evicts them.
	LookupPositiveTTL time.Duration
	// LookupNegativeTTL bounds negative ("no matching service")
	// entries; 0 means DefaultLookupNegativeTTL.
	LookupNegativeTTL time.Duration
}

func (cfg PoolConfig) withDefaults() PoolConfig {
	if cfg.DialTimeout <= 0 {
		if cfg.Transport != nil && cfg.Transport.DialTimeout > 0 {
			cfg.DialTimeout = cfg.Transport.DialTimeout
		} else {
			cfg.DialTimeout = wire.DefaultDialTimeout
		}
	}
	if cfg.CallTimeout <= 0 {
		if cfg.Transport != nil && cfg.Transport.CallTimeout > 0 {
			cfg.CallTimeout = cfg.Transport.CallTimeout
		} else {
			cfg.CallTimeout = wire.DefaultCallTimeout
		}
	}
	switch {
	case cfg.MaxRetries < 0:
		cfg.MaxRetries = 0
	case cfg.MaxRetries == 0:
		cfg.MaxRetries = DefaultPoolRetries
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = DefaultBackoffBase
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = DefaultBackoffMax
	}
	switch {
	case cfg.BreakerThreshold < 0:
		cfg.BreakerThreshold = 0 // disabled
	case cfg.BreakerThreshold == 0:
		cfg.BreakerThreshold = DefaultBreakerThreshold
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = DefaultBreakerCooldown
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Metrics == nil {
		cfg.Metrics = wire.NewMetrics(cfg.Telemetry)
	}
	return cfg
}

// Pool caches outgoing client connections by address so that daemons
// calling each other repeatedly (lease renewals, notifications,
// lookups) reuse sockets instead of re-handshaking TLS per command.
// Every address additionally carries a circuit breaker, and calls are
// retried with capped exponential backoff, so a dead peer costs its
// callers microseconds once the breaker opens instead of a dial
// timeout per call.
type Pool struct {
	cfg PoolConfig

	mu       sync.Mutex
	clients  map[string]*wire.Client
	breakers map[string]*breaker
	closed   bool

	rngMu sync.Mutex
	rng   *rand.Rand

	// lookups is the client-edge service-discovery cache; directory
	// clients (asd.Client) consult it before calling the directory.
	lookups *LookupCache

	retries     *telemetry.Counter
	busyRetries *telemetry.Counter
	redirects   *telemetry.Counter
	transitions *telemetry.Counter
}

// Metric names recorded by the pool.
const (
	MetricPoolRetries        = "pool.retries"
	MetricPoolBusyRetries    = "pool.busy_retries"
	MetricPoolRedirects      = "pool.redirects"
	MetricBreakerTransitions = "pool.breaker.transitions"
)

// NewPool returns a pool dialing with the given transport (nil =
// plaintext) and default resilience settings.
func NewPool(t *wire.Transport) *Pool {
	return NewPoolConfig(PoolConfig{Transport: t})
}

// NewPoolConfig returns a pool with explicit resilience settings.
func NewPoolConfig(cfg PoolConfig) *Pool {
	cfg = cfg.withDefaults()
	return &Pool{
		cfg:         cfg,
		clients:     make(map[string]*wire.Client),
		breakers:    make(map[string]*breaker),
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		lookups:     NewLookupCache(cfg.LookupPositiveTTL, cfg.LookupNegativeTTL, cfg.Telemetry),
		retries:     cfg.Telemetry.Counter(MetricPoolRetries),
		busyRetries: cfg.Telemetry.Counter(MetricPoolBusyRetries),
		redirects:   cfg.Telemetry.Counter(MetricPoolRedirects),
		transitions: cfg.Telemetry.Counter(MetricBreakerTransitions),
	}
}

// Lookups returns the pool's service-discovery cache.
func (p *Pool) Lookups() *LookupCache { return p.lookups }

// Telemetry returns the registry the pool records into (nil when
// telemetry is disabled).
func (p *Pool) Telemetry() *telemetry.Registry {
	return p.cfg.Telemetry
}

// breakerFor returns the address's breaker, or nil when breakers are
// disabled.
func (p *Pool) breakerFor(addr string) *breaker {
	if p.cfg.BreakerThreshold <= 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	b, ok := p.breakers[addr]
	if !ok {
		b = newBreaker(p.cfg.BreakerThreshold, p.cfg.BreakerCooldown)
		b.onChange = func(from, to breakerState) {
			p.transitions.Inc()
			if p.cfg.OnBreakerChange != nil {
				p.cfg.OnBreakerChange(addr, from.String(), to.String())
			}
		}
		p.breakers[addr] = b
	}
	return b
}

// BreakerState reports the breaker state for addr ("closed", "open",
// "half-open"); "closed" when breakers are disabled or addr unknown.
func (p *Pool) BreakerState(addr string) string {
	p.mu.Lock()
	b := p.breakers[addr]
	p.mu.Unlock()
	if b == nil {
		return breakerClosed.String()
	}
	return b.currentState().String()
}

// Get returns a live client to addr, dialing if necessary. Get does
// not consult the breaker; Call/Send do.
func (p *Pool) Get(addr string) (*wire.Client, error) {
	return p.GetContext(context.Background(), addr)
}

// GetContext is Get with a dial bounded by ctx (and the pool's dial
// timeout, whichever is sooner).
func (p *Pool) GetContext(ctx context.Context, addr string) (*wire.Client, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, wire.ErrClosed
	}
	if c, ok := p.clients[addr]; ok {
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()

	dctx, cancel := context.WithTimeout(ctx, p.cfg.DialTimeout)
	defer cancel()
	c, err := wire.DialContext(dctx, p.cfg.Transport, addr)
	if err != nil {
		return nil, err
	}
	c.SetCallTimeout(p.cfg.CallTimeout)
	c.SetMetrics(p.cfg.Metrics)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		_ = c.Close()
		return nil, wire.ErrClosed
	}
	if existing, ok := p.clients[addr]; ok {
		p.mu.Unlock()
		_ = c.Close()
		return existing, nil
	}
	p.clients[addr] = c
	p.mu.Unlock()
	if p.cfg.HeartbeatInterval > 0 {
		c.StartHeartbeat(p.cfg.HeartbeatInterval)
	}
	return c, nil
}

// drop removes a client after a transport failure so the next call
// redials.
func (p *Pool) drop(addr string, c *wire.Client) {
	p.mu.Lock()
	if p.clients[addr] == c {
		delete(p.clients, addr)
	}
	p.mu.Unlock()
	_ = c.Close()
}

// backoff sleeps the capped exponential delay for retry attempt n
// (1-based) with ±50% jitter, or returns early when ctx expires. A
// positive floor (a server's retry_after hint) raises the delay so
// the retry does not land before the server expects capacity back.
func (p *Pool) backoff(ctx context.Context, attempt int, floor time.Duration) error {
	d := p.cfg.BackoffBase << (attempt - 1)
	if d > p.cfg.BackoffMax || d <= 0 {
		d = p.cfg.BackoffMax
	}
	p.rngMu.Lock()
	jitter := 0.5 + p.rng.Float64() // [0.5, 1.5)
	p.rngMu.Unlock()
	d = time.Duration(float64(d) * jitter)
	if d < floor {
		d = floor
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Call issues a request/response command to addr under the pool's
// default call timeout, retrying transport failures with backoff.
func (p *Pool) Call(addr string, cmd *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
	return p.CallContext(context.Background(), addr, cmd)
}

// CallContext issues a request/response command to addr. The context
// bounds the entire exchange including retries; when it carries no
// deadline the pool's CallTimeout applies, so no call path can block
// forever. Transport failures are retried up to MaxRetries times with
// capped exponential backoff and jitter; remote errors (the daemon
// answered "fail") are returned immediately and never retried — with
// one exception: a "busy" reply is the server's admission controller
// shedding load before execution, so it is retried like a transport
// failure (same attempt budget, backoff raised to any server-supplied
// retry_after hint) but never charges the circuit breaker or drops
// the connection, because the peer is demonstrably alive. A
// "wrong_group" reply (placement redirect) is likewise never a peer
// failure: it is returned immediately for the caller's routing layer
// to re-route after a map refresh, counted under pool.redirects, with
// no retry, no breaker charge, and no connection drop. When the
// address's circuit breaker is open the call fails fast with
// ErrCircuitOpen without touching the network.
//
// A cancelled context (context.Canceled, as opposed to a deadline)
// means the caller abandoned the call: it is returned without retry,
// without charging the breaker, and without dropping the pooled
// connection — the pending reply is discarded by sequence number, so
// the connection remains valid for other callers.
func (p *Pool) CallContext(ctx context.Context, addr string, cmd *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.cfg.CallTimeout)
		defer cancel()
	}
	br := p.breakerFor(addr)
	var lastErr error
	var retryFloor time.Duration // server-suggested wait before the next attempt
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if err := p.backoff(ctx, attempt, retryFloor); err != nil {
				return nil, lastErr
			}
			p.retries.Inc()
		}
		retryFloor = 0
		if br != nil {
			if err := br.allow(); err != nil {
				return nil, fmt.Errorf("daemon: %s: %w", addr, err)
			}
		}
		reply, err := p.callOnce(ctx, addr, cmd)
		if err == nil {
			if br != nil {
				br.success()
			}
			return reply, nil
		}
		if re, isRemote := err.(*cmdlang.RemoteError); isRemote {
			// The daemon answered; the connection and peer are fine.
			if br != nil {
				br.success()
			}
			if re.Code == cmdlang.CodeWrongGroup {
				// Placement redirect: the peer is healthy but is not the
				// partition's group (or the request's epoch is stale).
				// Retrying the same address cannot help — the caller's
				// routing layer must refresh its placement map and
				// re-route — so it is returned immediately, counted, and
				// never charges the breaker.
				p.redirects.Inc()
				return nil, err
			}
			if re.Code != cmdlang.CodeBusy {
				return nil, err
			}
			// Overload push-back: the command was shed before execution,
			// so a retry cannot duplicate side effects. Honor the
			// server's retry_after hint as the backoff floor.
			lastErr = err
			retryFloor = re.RetryAfter
			if ctx.Err() != nil || attempt >= p.cfg.MaxRetries {
				return nil, lastErr
			}
			p.busyRetries.Inc()
			continue
		}
		if errors.Is(err, context.Canceled) {
			// The caller abandoned the call — e.g. a quorum fast-path
			// cancelling a straggler once the outcome was decided. The
			// peer did nothing wrong, so the breaker is not charged and
			// a retry would be pointless. The probe slot this call may
			// hold in a half-open breaker is released unjudged, or the
			// next probe would be refused forever.
			if br != nil {
				br.abandon()
			}
			return nil, err
		}
		if br != nil {
			br.failure()
		}
		lastErr = err
		if ctx.Err() != nil || attempt >= p.cfg.MaxRetries {
			return nil, lastErr
		}
	}
}

func (p *Pool) callOnce(ctx context.Context, addr string, cmd *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
	c, err := p.GetContext(ctx, addr)
	if err != nil {
		return nil, err
	}
	reply, err := c.CallContext(ctx, cmd)
	if err != nil {
		// A transport failure may have corrupted the framing stream, so
		// the connection is dropped and the next call redials. A
		// cancellation is different: the wire client removed the pending
		// entry and will discard the late reply by its seq, the framing
		// stream is intact, and tearing the (shared) connection down
		// would punish every other caller multiplexed onto it.
		_, isRemote := err.(*cmdlang.RemoteError)
		if !isRemote && !errors.Is(err, context.Canceled) {
			p.drop(addr, c)
		}
		return nil, err
	}
	return reply, nil
}

// Send transmits a one-way command (no reply expected) to addr.
//
// Delivery is at-least-once: Send only retries when the pooled
// connection was already known dead before anything was written
// (wire.ErrClosed), in which case no bytes hit the wire and a resend
// cannot duplicate. A failure mid-write is returned without retrying,
// because part of the frame may have reached the peer and a blind
// resend could deliver the notification twice. Callers that need
// exactly-once must deduplicate on the receiving side.
func (p *Pool) Send(addr string, cmd *cmdlang.CmdLine) error {
	return p.SendContext(context.Background(), addr, cmd)
}

// SendContext is Send with a caller context. The context is not a
// deadline for the write (Send's at-least-once contract is unchanged);
// it exists to carry a trace span context onto the one-way frame so
// notifications join the trace of the command that triggered them.
func (p *Pool) SendContext(ctx context.Context, addr string, cmd *cmdlang.CmdLine) error {
	br := p.breakerFor(addr)
	for attempt := 0; attempt < 2; attempt++ {
		if br != nil {
			if err := br.allow(); err != nil {
				return fmt.Errorf("daemon: %s: %w", addr, err)
			}
		}
		c, err := p.GetContext(ctx, addr)
		if err != nil {
			if br != nil {
				br.failure()
			}
			return err
		}
		err = c.SendContext(ctx, cmd)
		if err == nil {
			if br != nil {
				br.success()
			}
			return nil
		}
		p.drop(addr, c)
		if !errors.Is(err, wire.ErrClosed) {
			// Bytes may have hit the wire: surface the failure rather
			// than risk double delivery.
			if br != nil {
				br.failure()
			}
			return err
		}
		// Known-dead before the write: nothing was sent; safe to retry
		// once on a fresh connection. Not a peer failure, so the
		// breaker is not charged.
	}
	return wire.ErrClosed
}

// Close closes every pooled connection.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	clients := p.clients
	p.clients = map[string]*wire.Client{}
	p.mu.Unlock()
	for _, c := range clients {
		_ = c.Close()
	}
}
