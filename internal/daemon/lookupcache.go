package daemon

import (
	"sync"
	"time"

	"ace/internal/telemetry"
)

// LookupCache is the client-edge service-discovery cache attached to
// every Pool. Directory clients (asd.Client) consult it before
// calling the directory, so a lookup storm for a warm name never
// leaves the process.
//
// Coherence is event-driven for positive entries and TTL-driven for
// negative ones:
//
//   - a positive entry (query → resolved addresses) lives until a
//     directory change notification (§2.6 register/unregister/expired
//     events) evicts it — the same machinery placement.Cache uses for
//     the pstore placement map;
//   - a negative entry (query → "no matching service") expires on a
//     short TTL, so discovery storms for absent services are absorbed
//     here while a late registration still becomes visible within one
//     TTL even if its notification was dropped.
//
// Every positive entry indexes the service names it resolved, so one
// event about a name evicts exactly the queries whose answers could
// have changed. A register event additionally flushes all negative
// and scan entries: the newcomer may now satisfy any query that
// previously found nothing or scanned by class/room.
type LookupCache struct {
	mu      sync.Mutex
	entries map[string]*lookupEntry
	byName  map[string]map[string]struct{} // service name → cache keys
	posTTL  time.Duration
	negTTL  time.Duration
	now     func() time.Time

	hits    *telemetry.Counter
	misses  *telemetry.Counter
	negHits *telemetry.Counter
	invals  *telemetry.Counter
	evicts  *telemetry.Counter
}

type lookupEntry struct {
	addrs    []string
	names    []string
	negative bool
	scan     bool      // query was not keyed by one name
	expires  time.Time // zero = no TTL (eviction-driven)
}

// DefaultLookupNegativeTTL bounds how long an absent service stays
// absent in a client's cache after it finally registers (when the
// register notification is dropped or the client is not subscribed).
const DefaultLookupNegativeTTL = time.Second

// Lookup-cache metric names (recorded into the pool's registry).
const (
	// MetricLookupCacheHits counts directory lookups answered from the
	// client-side cache.
	MetricLookupCacheHits = "asd.cache.hits"
	// MetricLookupCacheMisses counts directory lookups that had to
	// call the directory.
	MetricLookupCacheMisses = "asd.cache.misses"
	// MetricLookupCacheNegativeHits counts lookups answered "not
	// found" from a cached negative entry.
	MetricLookupCacheNegativeHits = "asd.cache.negative_hits"
	// MetricLookupCacheInvalidations counts directory change events
	// applied to the cache.
	MetricLookupCacheInvalidations = "asd.cache.invalidations"
	// MetricLookupCacheEvictions counts cache entries removed by
	// invalidation events or TTL expiry.
	MetricLookupCacheEvictions = "asd.cache.evictions"
)

// NewLookupCache builds a cache. posTTL bounds positive entries (0 =
// no TTL, eviction-driven only); negTTL bounds negative entries (0 =
// DefaultLookupNegativeTTL).
func NewLookupCache(posTTL, negTTL time.Duration, tel *telemetry.Registry) *LookupCache {
	if negTTL <= 0 {
		negTTL = DefaultLookupNegativeTTL
	}
	return &LookupCache{
		entries: make(map[string]*lookupEntry),
		byName:  make(map[string]map[string]struct{}),
		posTTL:  posTTL,
		negTTL:  negTTL,
		now:     time.Now,
		hits:    tel.Counter(MetricLookupCacheHits),
		misses:  tel.Counter(MetricLookupCacheMisses),
		negHits: tel.Counter(MetricLookupCacheNegativeHits),
		invals:  tel.Counter(MetricLookupCacheInvalidations),
		evicts:  tel.Counter(MetricLookupCacheEvictions),
	}
}

// SetClock injects a time source (tests).
func (c *LookupCache) SetClock(now func() time.Time) {
	c.mu.Lock()
	c.now = now
	c.mu.Unlock()
}

// Get returns the cached answer for the query key. negative reports a
// cached "no matching service"; ok is false on a miss (including an
// entry that aged out). The returned slice is shared — callers must
// not modify it.
func (c *LookupCache) Get(key string) (addrs []string, negative, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, present := c.entries[key]
	if !present {
		c.misses.Inc()
		return nil, false, false
	}
	if !e.expires.IsZero() && c.now().After(e.expires) {
		c.removeLocked(key, e)
		c.evicts.Inc()
		c.misses.Inc()
		return nil, false, false
	}
	if e.negative {
		c.negHits.Inc()
		return nil, true, true
	}
	c.hits.Inc()
	return e.addrs, false, true
}

// PutPositive records a resolved query: the addresses it returned and
// the service names behind them (which index the entry for event
// eviction). scan marks queries not keyed by a single name.
func (c *LookupCache) PutPositive(key string, names, addrs []string, scan bool) {
	e := &lookupEntry{addrs: addrs, names: names, scan: scan}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.posTTL > 0 {
		e.expires = c.now().Add(c.posTTL)
	}
	if old, ok := c.entries[key]; ok {
		c.removeLocked(key, old)
	}
	c.entries[key] = e
	for _, n := range names {
		keys, ok := c.byName[n]
		if !ok {
			keys = make(map[string]struct{})
			c.byName[n] = keys
		}
		keys[key] = struct{}{}
	}
}

// PutNegative records a "no matching service" answer under the
// negative TTL.
func (c *LookupCache) PutNegative(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[key]; ok {
		c.removeLocked(key, old)
	}
	c.entries[key] = &lookupEntry{negative: true, expires: c.now().Add(c.negTTL)}
}

// Invalidate applies one directory change event. name is the service
// the event concerns; event is the directory verb that fired
// (register, unregister, expired — CmdRegister et al.).
func (c *LookupCache) Invalidate(event, name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.invals.Inc()
	evicted := 0
	// Every query whose answer mentioned this name could have changed
	// (a re-register moves the address; an expiry removes it).
	for key := range c.byName[name] {
		if e, ok := c.entries[key]; ok {
			c.removeLocked(key, e)
			evicted++
		}
	}
	if event == CmdRegister {
		// A newcomer can satisfy queries that previously found nothing
		// and can join any class/room scan's result set.
		for key, e := range c.entries {
			if e.negative || e.scan {
				c.removeLocked(key, e)
				evicted++
			}
		}
	}
	c.evicts.Add(int64(evicted))
}

// removeLocked unlinks an entry and its name index. Callers hold mu.
func (c *LookupCache) removeLocked(key string, e *lookupEntry) {
	delete(c.entries, key)
	for _, n := range e.names {
		if keys, ok := c.byName[n]; ok {
			delete(keys, key)
			if len(keys) == 0 {
				delete(c.byName, n)
			}
		}
	}
}

// Len returns the number of cached entries (positive and negative).
func (c *LookupCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Flush empties the cache (tests and operator tooling).
func (c *LookupCache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*lookupEntry)
	c.byName = make(map[string]map[string]struct{})
}
