package daemon

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ace/internal/cmdlang"
	"ace/internal/telemetry"
)

// tightPool returns a pool tuned so that failures are cheap and the
// breaker's lifecycle is observable within a fast test.
func tightPool(cfg PoolConfig) *Pool {
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 200 * time.Millisecond
	}
	if cfg.CallTimeout == 0 {
		cfg.CallTimeout = 300 * time.Millisecond
	}
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = time.Millisecond
	}
	if cfg.BackoffMax == 0 {
		cfg.BackoffMax = 5 * time.Millisecond
	}
	return NewPoolConfig(cfg)
}

// deadAddr reserves a loopback port and releases it, yielding an
// address that refuses connections.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestBreakerOpensAfterConsecutiveFailures: transport failures open
// the per-address breaker, after which calls fail fast without
// paying the dial timeout.
func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	p := tightPool(PoolConfig{
		MaxRetries:       -1, // isolate breaker behavior from retries
		BreakerThreshold: 3,
		BreakerCooldown:  time.Hour, // stay open for the whole test
	})
	defer p.Close()
	addr := deadAddr(t)

	for i := 0; i < 3; i++ {
		if _, err := p.Call(addr, cmdlang.New(CmdPing)); err == nil {
			t.Fatal("call to dead address succeeded")
		}
	}
	if st := p.BreakerState(addr); st != "open" {
		t.Fatalf("breaker state after %d failures: %s", 3, st)
	}

	start := time.Now()
	_, err := p.Call(addr, cmdlang.New(CmdPing))
	elapsed := time.Since(start)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("want ErrCircuitOpen, got %v", err)
	}
	if elapsed > 50*time.Millisecond {
		t.Fatalf("open-breaker call took %v; not failing fast", elapsed)
	}
}

// TestBreakerHalfOpenProbeRecovers: once the peer is back, the
// half-open probe closes the breaker and traffic flows again.
func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	p := tightPool(PoolConfig{
		MaxRetries:       -1,
		BreakerThreshold: 2,
		BreakerCooldown:  50 * time.Millisecond,
	})
	defer p.Close()
	addr := deadAddr(t)

	for i := 0; i < 2; i++ {
		p.Call(addr, cmdlang.New(CmdPing)) //nolint:errcheck
	}
	if st := p.BreakerState(addr); st != "open" {
		t.Fatalf("breaker state: %s", st)
	}

	// Resurrect the peer on the same address.
	d := New(Config{Name: "lazarus", Listen: addr})
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := d.Start(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("could not rebind address")
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Cleanup(d.Stop)

	// After the cooldown, a half-open probe must succeed and close
	// the breaker.
	deadline = time.Now().Add(5 * time.Second)
	for {
		if _, err := p.Call(addr, cmdlang.New(CmdPing)); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never recovered after peer came back")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st := p.BreakerState(addr); st != "closed" {
		t.Fatalf("breaker state after recovery: %s", st)
	}
}

// TestBreakerFailedProbeReopens: a failed half-open probe snaps the
// breaker back to open rather than letting traffic through.
func TestBreakerFailedProbeReopens(t *testing.T) {
	p := tightPool(PoolConfig{
		MaxRetries:       -1,
		BreakerThreshold: 1,
		BreakerCooldown:  30 * time.Millisecond,
	})
	defer p.Close()
	addr := deadAddr(t)

	p.Call(addr, cmdlang.New(CmdPing)) //nolint:errcheck
	if st := p.BreakerState(addr); st != "open" {
		t.Fatalf("breaker state: %s", st)
	}
	time.Sleep(50 * time.Millisecond)
	// Cooldown elapsed → this call is admitted as the half-open probe
	// and fails (peer still dead) → breaker reopens.
	if _, err := p.Call(addr, cmdlang.New(CmdPing)); err == nil {
		t.Fatal("probe against dead peer succeeded")
	}
	if st := p.BreakerState(addr); st != "open" {
		t.Fatalf("breaker state after failed probe: %s", st)
	}
}

// TestCancelledCallDoesNotChargeBreakerOrDropConnection: a caller
// abandoning a call mid-flight (the quorum fast-path cancelling a
// straggler) is not evidence against the peer — the breaker stays
// closed and the pooled connection survives for other callers.
func TestCancelledCallDoesNotChargeBreakerOrDropConnection(t *testing.T) {
	block := make(chan struct{})
	d := New(Config{Name: "molasses"})
	d.Handle(cmdlang.CommandSpec{Name: "slow"},
		func(_ *Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			<-block
			return cmdlang.OK(), nil
		})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)

	p := tightPool(PoolConfig{
		MaxRetries:       -1,
		BreakerThreshold: 1, // a single charge would open it
		BreakerCooldown:  time.Hour,
	})
	defer p.Close()

	if _, err := p.Call(d.Addr(), cmdlang.New(CmdPing)); err != nil {
		t.Fatal(err)
	}
	before, err := p.Get(d.Addr())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := p.CallContext(ctx, d.Addr(), cmdlang.New("slow"))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the call reach the peer
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned call returned %v, want context.Canceled", err)
	}

	if st := p.BreakerState(d.Addr()); st != "closed" {
		t.Fatalf("breaker state after cancelled call: %s", st)
	}
	after, err := p.Get(d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatal("cancelled call dropped the pooled connection")
	}
	// Unblock the handler (the daemon's control thread executes
	// commands serially, so nothing else answers until it returns);
	// its late reply must be discarded by seq, leaving the shared
	// connection in sync for the next exchange.
	close(block)
	if _, err := p.Call(d.Addr(), cmdlang.New(CmdPing)); err != nil {
		t.Fatalf("ping after cancelled call: %v", err)
	}
}

// TestCancelledProbeReleasesHalfOpenSlot: abandoning the half-open
// probe (cancelled, not failed) must free the slot for the next
// caller instead of wedging the breaker open forever.
func TestCancelledProbeReleasesHalfOpenSlot(t *testing.T) {
	b := newBreaker(1, 0)
	b.failure()
	if st := b.currentState(); st != breakerOpen {
		t.Fatalf("state after failure: %v", st)
	}
	// Cooldown 0: the next allow admits the half-open probe.
	if err := b.allow(); err != nil {
		t.Fatalf("probe refused: %v", err)
	}
	// While the probe is out, other callers are refused.
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("second probe admitted alongside the first: %v", err)
	}
	b.abandon()
	// The slot is free again: a fresh probe is admitted and its
	// success closes the breaker.
	if err := b.allow(); err != nil {
		t.Fatalf("probe after abandon refused: %v", err)
	}
	b.success()
	if st := b.currentState(); st != breakerClosed {
		t.Fatalf("state after successful probe: %v", st)
	}
}

// TestCallRetriesTransportFailureWithBackoff: a flaky peer that dies
// once is reached on the retry, and remote errors are never retried.
func TestCallRetriesTransportFailureWithBackoff(t *testing.T) {
	d := New(Config{Name: "flaky"})
	calls := 0
	var mu sync.Mutex
	d.Handle(cmdlang.CommandSpec{Name: "once"},
		func(_ *Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			mu.Lock()
			calls++
			mu.Unlock()
			return cmdlang.Fail(cmdlang.CodeConflict, "no retries please"), nil
		})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)

	p := tightPool(PoolConfig{MaxRetries: 2})
	defer p.Close()

	// Seed the pool with a connection, then kill it server-side so the
	// next call hits a dead pooled connection and must retry.
	if _, err := p.Call(d.Addr(), cmdlang.New(CmdPing)); err != nil {
		t.Fatal(err)
	}
	d.connsMu.Lock()
	for c := range d.conns {
		c.Close()
	}
	d.connsMu.Unlock()
	time.Sleep(20 * time.Millisecond)

	if _, err := p.Call(d.Addr(), cmdlang.New(CmdPing)); err != nil {
		t.Fatalf("retry did not recover dead pooled connection: %v", err)
	}

	// Remote errors pass through exactly once.
	_, err := p.Call(d.Addr(), cmdlang.New("once"))
	if !cmdlang.IsRemoteCode(err, cmdlang.CodeConflict) {
		t.Fatalf("err=%v", err)
	}
	mu.Lock()
	n := calls
	mu.Unlock()
	if n != 1 {
		t.Fatalf("remote error was retried: handler ran %d times", n)
	}
}

// TestCallContextDeadlineBoundsRetries: the caller's deadline caps
// the whole retry loop, not each attempt.
func TestCallContextDeadlineBoundsRetries(t *testing.T) {
	p := tightPool(PoolConfig{
		MaxRetries:       10,
		BackoffBase:      50 * time.Millisecond,
		BackoffMax:       time.Second,
		BreakerThreshold: -1, // let retries run without the breaker cutting in
	})
	defer p.Close()
	addr := deadAddr(t)

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := p.CallContext(ctx, addr, cmdlang.New(CmdPing)); err == nil {
		t.Fatal("call to dead address succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("retry loop ran %v past the deadline", elapsed)
	}
}

// TestSendRetriesOnlyKnownDeadConnections: Send redials when the
// pooled connection was closed before the write (nothing hit the
// wire), which is the only safe retry under at-least-once delivery.
func TestSendRetriesOnlyKnownDeadConnections(t *testing.T) {
	d := New(Config{Name: "sink"})
	got := make(chan string, 16)
	d.Handle(cmdlang.CommandSpec{Name: "note", AllowExtra: true},
		func(_ *Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			got <- c.Str("id", "")
			return nil, nil
		})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)

	p := tightPool(PoolConfig{})
	defer p.Close()

	// Seed the pool, then close the client locally: the pool holds a
	// known-dead connection, so Send must transparently redial.
	c, err := p.Get(d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := p.Send(d.Addr(), cmdlang.New("note").SetString("id", "after_dead")); err != nil {
		t.Fatalf("Send did not recover known-dead connection: %v", err)
	}
	select {
	case id := <-got:
		if id != "after_dead" {
			t.Fatalf("got %q", id)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("notification never delivered")
	}
}

// busyDaemon starts a daemon whose "work" handler answers busy (with
// the given retry_after hint) for the first n calls and ok afterward.
// It returns the daemon and a counter of handler invocations.
func busyDaemon(t *testing.T, n int, hint time.Duration) (*Daemon, *atomic.Int64) {
	t.Helper()
	calls := &atomic.Int64{}
	d := startTestDaemon(t, Config{Name: "swamped"}, func(d *Daemon) {
		d.Handle(cmdlang.CommandSpec{Name: "work"}, func(_ *Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			if calls.Add(1) <= int64(n) {
				return cmdlang.Busy(hint), nil
			}
			return cmdlang.OK(), nil
		})
	})
	return d, calls
}

// TestCallRetriesBusyHonoringRetryAfter: a busy reply is retried
// within the same attempt budget, the server's retry_after hint
// raises the backoff floor, and the breaker is never charged — the
// peer is alive, just shedding.
func TestCallRetriesBusyHonoringRetryAfter(t *testing.T) {
	const hint = 40 * time.Millisecond
	d, calls := busyDaemon(t, 2, hint)
	p := tightPool(PoolConfig{MaxRetries: 5, Telemetry: telemetry.NewRegistry()})
	defer p.Close()

	start := time.Now()
	reply, err := p.Call(d.Addr(), cmdlang.New("work"))
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("call should succeed after busy retries: %v", err)
	}
	if !cmdlang.IsOK(reply) {
		t.Fatalf("reply: %v", reply)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("handler ran %d times, want 3 (2 busy + 1 ok)", got)
	}
	// Two busy replies → two waits of at least the server hint each.
	if elapsed < 2*hint {
		t.Fatalf("retries ignored retry_after: finished in %v, want >= %v", elapsed, 2*hint)
	}
	if st := p.BreakerState(d.Addr()); st != "closed" {
		t.Fatalf("busy replies must not charge the breaker: state %s", st)
	}
	snap := p.Telemetry().Snapshot()
	if got := snap.Counter(MetricPoolBusyRetries); got != 2 {
		t.Fatalf("%s = %d, want 2", MetricPoolBusyRetries, got)
	}
}

// TestCallBusyExhaustsBudget: a peer that never stops shedding
// eventually surfaces the busy error to the caller instead of
// spinning forever.
func TestCallBusyExhaustsBudget(t *testing.T) {
	d, _ := busyDaemon(t, 1<<30, time.Millisecond)
	p := tightPool(PoolConfig{MaxRetries: 2})
	defer p.Close()

	_, err := p.Call(d.Addr(), cmdlang.New("work"))
	if !cmdlang.IsRemoteCode(err, cmdlang.CodeBusy) {
		t.Fatalf("want busy remote error, got %v", err)
	}
	var re *cmdlang.RemoteError
	if !errors.As(err, &re) || re.RetryAfter != time.Millisecond {
		t.Fatalf("busy error should carry retry_after, got %+v", re)
	}
	if st := p.BreakerState(d.Addr()); st != "closed" {
		t.Fatalf("breaker charged by busy replies: %s", st)
	}
}

// TestCallDoesNotRetryOtherRemoteErrors: only busy is retryable;
// every other fail code is a definitive answer.
func TestCallDoesNotRetryOtherRemoteErrors(t *testing.T) {
	calls := &atomic.Int64{}
	d := startTestDaemon(t, Config{Name: "nope"}, func(d *Daemon) {
		d.Handle(cmdlang.CommandSpec{Name: "find"}, func(_ *Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			calls.Add(1)
			return cmdlang.Fail(cmdlang.CodeNotFound, "no such thing"), nil
		})
	})
	p := tightPool(PoolConfig{MaxRetries: 5})
	defer p.Close()

	_, err := p.Call(d.Addr(), cmdlang.New("find"))
	if !cmdlang.IsRemoteCode(err, cmdlang.CodeNotFound) {
		t.Fatalf("err = %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("non-busy remote error retried: handler ran %d times", got)
	}
}

// TestCallWrongGroupIsRetryableRedirect: a placement redirect is a
// healthy peer telling the caller to re-route, not a failure. The
// pool must return it immediately (exactly one handler execution, no
// transport retries), leave the breaker closed even past its
// threshold, keep the pooled connection, and count the redirect.
func TestCallWrongGroupIsRetryableRedirect(t *testing.T) {
	calls := &atomic.Int64{}
	d := startTestDaemon(t, Config{Name: "shard"}, func(d *Daemon) {
		d.Handle(cmdlang.CommandSpec{Name: "psget", AllowExtra: true}, func(_ *Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			calls.Add(1)
			return cmdlang.Fail(cmdlang.CodeWrongGroup, "partition moved").SetInt("epoch", 7), nil
		})
	})
	p := tightPool(PoolConfig{MaxRetries: 5, BreakerThreshold: 2, Telemetry: telemetry.NewRegistry()})
	defer p.Close()

	// Redirect well past the breaker threshold: still closed.
	for i := 0; i < 5; i++ {
		start := time.Now()
		_, err := p.Call(d.Addr(), cmdlang.New("psget"))
		if !cmdlang.IsRemoteCode(err, cmdlang.CodeWrongGroup) {
			t.Fatalf("want wrong_group remote error, got %v", err)
		}
		// Returned on the first attempt: no backoff sleeps.
		if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
			t.Fatalf("redirect took %v; pool appears to be retrying it", elapsed)
		}
	}
	if got := calls.Load(); got != 5 {
		t.Fatalf("handler ran %d times for 5 calls; redirects must not be retried at the pool", got)
	}
	if st := p.BreakerState(d.Addr()); st != "closed" {
		t.Fatalf("wrong_group charged the breaker: state %s", st)
	}
	snap := p.Telemetry().Snapshot()
	if got := snap.Counter(MetricPoolRedirects); got != 5 {
		t.Fatalf("%s = %d, want 5", MetricPoolRedirects, got)
	}
	if got := snap.Counter(MetricPoolRetries); got != 0 {
		t.Fatalf("%s = %d, want 0", MetricPoolRetries, got)
	}
	// The connection survived: a healthy verb on the same daemon works
	// without redialing (same pooled client).
	c1, err := p.Get(d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Call(d.Addr(), cmdlang.New(CmdPing)); err != nil {
		t.Fatalf("ping after redirects: %v", err)
	}
	c2, err := p.Get(d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("redirect dropped the pooled connection")
	}
}
