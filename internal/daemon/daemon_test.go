package daemon

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"ace/internal/cmdlang"
	"ace/internal/wire"
)

// startTestDaemon starts a plaintext daemon with no infrastructure
// registration and cleans it up with the test.
func startTestDaemon(t *testing.T, cfg Config, setup func(*Daemon)) *Daemon {
	t.Helper()
	d := New(cfg)
	if setup != nil {
		setup(d)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	return d
}

func dialTest(t *testing.T, d *Daemon) *wire.Client {
	t.Helper()
	c, err := wire.Dial(nil, d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestBuiltinPingInfoCommands(t *testing.T) {
	d := startTestDaemon(t, Config{Name: "cam1", Class: "Service.Device.PTZCamera", Room: "hawk", Host: "bar"}, nil)
	c := dialTest(t, d)

	reply, err := c.Call(cmdlang.New(CmdPing))
	if err != nil {
		t.Fatal(err)
	}
	if reply.Str("service", "") != "cam1" {
		t.Fatalf("ping reply=%v", reply)
	}

	info, err := c.Call(cmdlang.New(CmdInfo))
	if err != nil {
		t.Fatal(err)
	}
	if info.Str("room", "") != "hawk" || info.Str("class", "") != "Service.Device.PTZCamera" {
		t.Fatalf("info=%v", info)
	}
	if info.Int("port", 0) != int64(d.Port()) {
		t.Fatalf("port=%d want %d", info.Int("port", 0), d.Port())
	}

	cmds, err := c.Call(cmdlang.New(CmdCommands))
	if err != nil {
		t.Fatal(err)
	}
	names := cmds.Strings("names")
	joined := strings.Join(names, ",")
	for _, want := range []string{CmdPing, CmdInfo, CmdAddNotification} {
		if !strings.Contains(joined, want) {
			t.Errorf("commands missing %s: %v", want, names)
		}
	}
}

func TestHandlerDispatchAndValidation(t *testing.T) {
	d := startTestDaemon(t, Config{Name: "ptz"}, func(d *Daemon) {
		d.Handle(cmdlang.CommandSpec{
			Name: "move",
			Args: []cmdlang.ArgSpec{
				{Name: "x", Kind: cmdlang.KindFloat, Required: true},
				{Name: "y", Kind: cmdlang.KindFloat, Required: true},
			},
		}, func(_ *Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			return cmdlang.OK().SetFloat("sum", c.Float("x", 0)+c.Float("y", 0)), nil
		})
	})
	c := dialTest(t, d)

	reply, err := c.Call(cmdlang.New("move").SetFloat("x", 2).SetFloat("y", 3))
	if err != nil {
		t.Fatal(err)
	}
	if reply.Float("sum", 0) != 5 {
		t.Fatalf("sum=%v", reply)
	}

	// Unknown command.
	_, err = c.Call(cmdlang.New("fly"))
	if !cmdlang.IsRemoteCode(err, cmdlang.CodeUnknownCommand) {
		t.Fatalf("err=%v", err)
	}
	// Missing required argument → semantic failure.
	_, err = c.Call(cmdlang.New("move").SetFloat("x", 2))
	if !cmdlang.IsRemoteCode(err, cmdlang.CodeBadArgument) {
		t.Fatalf("err=%v", err)
	}
	// Undeclared argument rejected.
	_, err = c.Call(cmdlang.New("move").SetFloat("x", 1).SetFloat("y", 1).SetInt("warp", 9))
	if !cmdlang.IsRemoteCode(err, cmdlang.CodeBadArgument) {
		t.Fatalf("err=%v", err)
	}
}

func TestHandlerErrorBecomesFail(t *testing.T) {
	d := startTestDaemon(t, Config{Name: "err"}, func(d *Daemon) {
		d.Handle(cmdlang.CommandSpec{Name: "boom"}, func(_ *Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			return nil, errors.New("kaboom")
		})
	})
	c := dialTest(t, d)
	_, err := c.Call(cmdlang.New("boom"))
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err=%v", err)
	}
	if got := d.Stats().CommandsFail; got == 0 {
		t.Fatal("fail counter not incremented")
	}
}

func TestMalformedSyntaxAnsweredByCommandThread(t *testing.T) {
	d := startTestDaemon(t, Config{Name: "p"}, nil)
	conn, err := net.Dial("tcp", d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, []byte("this is ;;; not a command")); err != nil {
		t.Fatal(err)
	}
	reply, err := wire.ReadCmd(conn)
	if err != nil {
		t.Fatal(err)
	}
	if !cmdlang.IsFail(reply) {
		t.Fatalf("reply=%v", reply)
	}
}

type denyAll struct{}

func (denyAll) Authorize(principal string, cmd *cmdlang.CmdLine) error {
	return fmt.Errorf("principal %s may not %s", principal, cmd.Name())
}

func TestAuthorizerGate(t *testing.T) {
	d := startTestDaemon(t, Config{Name: "locked", Authorizer: denyAll{}}, func(d *Daemon) {
		d.Handle(cmdlang.CommandSpec{Name: "secret"}, func(_ *Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			return nil, nil
		})
	})
	c := dialTest(t, d)

	// Built-ins bypass the gate.
	if _, err := c.Call(cmdlang.New(CmdPing)); err != nil {
		t.Fatalf("ping denied: %v", err)
	}
	// Service commands are gated.
	_, err := c.Call(cmdlang.New("secret"))
	if !cmdlang.IsRemoteCode(err, cmdlang.CodeDenied) {
		t.Fatalf("err=%v", err)
	}
	if d.Stats().Denied != 1 {
		t.Fatalf("denied counter=%d", d.Stats().Denied)
	}
}

func TestTLSPrincipalReachesHandler(t *testing.T) {
	ca, err := wire.NewCA("test")
	if err != nil {
		t.Fatal(err)
	}
	serverT, err := wire.NewTransport(ca, "vault")
	if err != nil {
		t.Fatal(err)
	}
	clientT, err := wire.NewTransport(ca, "john_doe")
	if err != nil {
		t.Fatal(err)
	}

	got := make(chan string, 1)
	d := startTestDaemon(t, Config{Name: "vault", Transport: serverT}, func(d *Daemon) {
		d.Handle(cmdlang.CommandSpec{Name: "whoami"}, func(ctx *Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			got <- ctx.Principal
			return nil, nil
		})
	})

	c, err := wire.Dial(clientT, d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(cmdlang.New("whoami")); err != nil {
		t.Fatal(err)
	}
	if p := <-got; p != "john_doe" {
		t.Fatalf("principal=%q", p)
	}
}

func TestNotificationsFig8(t *testing.T) {
	// The notifying service: a camera whose "move" command is being
	// listened for.
	camera := startTestDaemon(t, Config{Name: "cam"}, func(d *Daemon) {
		d.Handle(cmdlang.CommandSpec{Name: "move", AllowExtra: true},
			func(_ *Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) { return nil, nil })
	})

	// The notified service: a tracker exposing a command-interface
	// method "onCameraMoved".
	events := make(chan *cmdlang.CmdLine, 4)
	tracker := startTestDaemon(t, Config{Name: "tracker"}, func(d *Daemon) {
		d.Handle(cmdlang.CommandSpec{Name: "onCameraMoved", AllowExtra: true},
			func(_ *Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
				events <- c
				return nil, nil
			})
	})

	// Step 0: the tracker subscribes.
	pool := NewPool(nil)
	defer pool.Close()
	if err := Subscribe(pool, camera.Addr(), "move", "tracker", tracker.Addr(), "onCameraMoved"); err != nil {
		t.Fatal(err)
	}

	// Step 1: a client issues the command.
	c := dialTest(t, camera)
	if _, err := c.Call(cmdlang.New("move").SetInt("x", 9)); err != nil {
		t.Fatal(err)
	}

	// Step 3: the tracker's method is invoked.
	select {
	case ev := <-events:
		if ev.Str(NotifySourceArg, "") != "cam" || ev.Str(NotifyEventArg, "") != "move" {
			t.Fatalf("event=%v", ev)
		}
		if !strings.Contains(ev.Str(NotifyDetailArg, ""), "x=9") {
			t.Fatalf("detail=%q", ev.Str(NotifyDetailArg, ""))
		}
	case <-time.After(2 * time.Second):
		t.Fatal("notification not delivered")
	}

	// A failed command must NOT notify.
	if _, err := c.Call(cmdlang.New("noSuchCommand")); err == nil {
		t.Fatal("expected failure")
	}
	select {
	case ev := <-events:
		t.Fatalf("unexpected notification %v", ev)
	case <-time.After(50 * time.Millisecond):
	}

	// Unsubscribe stops delivery.
	if _, err := pool.Call(camera.Addr(), cmdlang.New(CmdRemoveNotification).
		SetWord("cmd", "move").SetWord("service", "tracker").SetWord("method", "onCameraMoved")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(cmdlang.New("move").SetInt("x", 1)); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-events:
		t.Fatalf("notification after removal: %v", ev)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestNotificationFanout(t *testing.T) {
	source := startTestDaemon(t, Config{Name: "src"}, func(d *Daemon) {
		d.Handle(cmdlang.CommandSpec{Name: "tick"},
			func(_ *Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) { return nil, nil })
	})

	const n = 8
	var mu sync.Mutex
	hits := map[string]int{}
	var listeners []*Daemon
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("listener%d", i)
		l := startTestDaemon(t, Config{Name: name}, func(d *Daemon) {
			d.Handle(cmdlang.CommandSpec{Name: "onTick", AllowExtra: true},
				func(_ *Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
					mu.Lock()
					hits[d.Name()]++
					mu.Unlock()
					return nil, nil
				})
		})
		listeners = append(listeners, l)
	}

	pool := NewPool(nil)
	defer pool.Close()
	for _, l := range listeners {
		if err := Subscribe(pool, source.Addr(), "tick", l.Name(), l.Addr(), "onTick"); err != nil {
			t.Fatal(err)
		}
	}
	c := dialTest(t, source)
	if _, err := c.Call(cmdlang.New("tick")); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		total := len(hits)
		mu.Unlock()
		if total == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d listeners notified", total, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := source.Stats().Notifications; got != n {
		t.Fatalf("notification counter=%d want %d", got, n)
	}
}

func TestDuplicateSubscriptionIdempotent(t *testing.T) {
	var tab notifyTable
	nt := notifyTarget{Service: "s", Addr: "a", Method: "m"}
	tab.add("x", nt)
	tab.add("x", nt)
	if got := len(tab.list("x")); got != 1 {
		t.Fatalf("targets=%d", got)
	}
	if removed := tab.remove("x", "s", "m"); removed != 1 {
		t.Fatalf("removed=%d", removed)
	}
	if got := len(tab.list("")); got != 0 {
		t.Fatalf("leftover=%d", got)
	}
}

func TestOneWayCommandNoReply(t *testing.T) {
	ran := make(chan struct{}, 1)
	d := startTestDaemon(t, Config{Name: "oneway"}, func(d *Daemon) {
		d.Handle(cmdlang.CommandSpec{Name: "fire"}, func(_ *Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			ran <- struct{}{}
			return nil, nil
		})
	})
	conn, err := net.Dial("tcp", d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// No seq argument → executed, never answered.
	if err := wire.WriteCmd(conn, cmdlang.New("fire")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ran:
	case <-time.After(2 * time.Second):
		t.Fatal("one-way command not executed")
	}
	conn.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if _, err := wire.ReadFrame(conn); err == nil {
		t.Fatal("one-way command got a reply")
	}
}

func TestDataThread(t *testing.T) {
	got := make(chan []byte, 1)
	recv := startTestDaemon(t, Config{Name: "sink", DataHandler: func(pkt []byte, _ net.Addr) {
		got <- pkt
	}}, nil)
	send := startTestDaemon(t, Config{Name: "source"}, nil)

	if err := send.SendData(recv.DataAddr(), []byte("pcm-frame-0001")); err != nil {
		t.Fatal(err)
	}
	select {
	case pkt := <-got:
		if string(pkt) != "pcm-frame-0001" {
			t.Fatalf("pkt=%q", pkt)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("datagram not delivered")
	}
	if recv.Stats().DataPackets != 1 {
		t.Fatalf("data counter=%d", recv.Stats().DataPackets)
	}
}

func TestStopIsIdempotentAndRejectsDoubleStart(t *testing.T) {
	d := New(Config{Name: "once"})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err == nil {
		t.Fatal("double Start accepted")
	}
	d.Stop()
	d.Stop() // must not panic or hang
}

func TestStatsCounters(t *testing.T) {
	d := startTestDaemon(t, Config{Name: "counted"}, nil)
	c := dialTest(t, d)
	for i := 0; i < 5; i++ {
		if _, err := c.Call(cmdlang.New(CmdPing)); err != nil {
			t.Fatal(err)
		}
	}
	c.CallRaw(cmdlang.New("junkcmd")) //nolint:errcheck
	reply, err := c.Call(cmdlang.New(CmdStats))
	if err != nil {
		t.Fatal(err)
	}
	if reply.Int("ok", 0) < 5 || reply.Int("fail", 0) != 1 {
		t.Fatalf("stats=%v", reply)
	}
}
